// Section 4, executed the way the paper says is "preferable": work
// entirely in the transformed array A' with a three-slice window,
// rotating the input in and the result out as the wavefront passes.
//
// The example compiles the Gauss-Seidel relaxation, derives the
// hyperplane transform and the exact (non-rectangular) loop bounds of
// the skewed domain, and then runs three executions side by side:
//
//   1. the guarded bounding-box interpreter (the rewrite as emitted),
//   2. the exact-bounds interpreter (no guard work outside the image),
//   3. the windowed WavefrontRunner (exact bounds + window-3 storage).
//
// All three produce identical results; the table shows time and the
// storage each needs.
//
//   $ ./examples/exact_wavefront [M] [maxK]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "driver/compiler.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/wavefront.hpp"

namespace {

double time_ms(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void fill(ps::NdArray& in, long m) {
  for (long i = 0; i <= m + 1; ++i)
    for (long j = 0; j <= m + 1; ++j)
      in.set(std::vector<int64_t>{i, j},
             static_cast<double>((3 * i + 2 * j) % 11));
}

double checksum(const ps::NdArray& out, long m) {
  double sum = 0;
  for (long i = 0; i <= m + 1; ++i)
    for (long j = 0; j <= m + 1; ++j)
      sum += out.at(std::vector<int64_t>{i, j}) * static_cast<double>(i - j);
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  const long m = argc > 1 ? atol(argv[1]) : 128;
  const long sweeps = argc > 2 ? atol(argv[2]) : 96;

  ps::CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  ps::Compiler compiler(options);
  ps::CompileResult result = compiler.compile(ps::kGaussSeidelSource);
  if (!result.ok || !result.transformed || !result.exact_nest) {
    fprintf(stderr, "%s", result.diagnostics.c_str());
    return 1;
  }
  printf("transform: %s\n", result.transform->describe().c_str());
  printf("exact bounds of the skewed domain:\n%s\n\n",
         result.exact_nest->to_string().c_str());

  const ps::CompiledModule& t = *result.transformed;
  ps::IntEnv params{{"M", m}, {"maxK", sweeps}};
  ps::ThreadPool pool;
  printf("M=%ld maxK=%ld, %zu threads\n\n", m, sweeps, pool.size());

  // 1. Guarded bounding box.
  ps::InterpreterOptions guarded_opts;
  guarded_opts.pool = &pool;
  ps::Interpreter guarded(*t.module, *t.graph, t.schedule.flowchart, params,
                          {}, guarded_opts);
  fill(guarded.array("InitialA"), m);
  double guarded_ms = time_ms([&] { guarded.run(); });

  // 2. Exact bounds.
  ps::InterpreterOptions exact_opts = guarded_opts;
  exact_opts.exact_bounds = &*result.exact_nest;
  ps::Interpreter exact(*t.module, *t.graph, t.schedule.flowchart, params,
                        {}, exact_opts);
  fill(exact.array("InitialA"), m);
  double exact_ms = time_ms([&] { exact.run(); });

  // 3. Windowed wavefront (rotate/unrotate).
  ps::WavefrontOptions wave_opts;
  wave_opts.pool = &pool;
  ps::WavefrontRunner wave(*t.module, *result.transform, *result.exact_nest,
                           params, {}, wave_opts);
  fill(wave.array("InitialA"), m);
  double wave_ms = time_ms([&] { wave.run(); });

  double c1 = checksum(guarded.array("newA"), m);
  double c2 = checksum(exact.array("newA"), m);
  double c3 = checksum(wave.array("newA"), m);

  printf("%-34s %10s %14s %12s\n", "execution", "time ms", "doubles alloc",
         "checksum");
  printf("%-34s %10.1f %14zu %12.3f\n", "bounding box + guards", guarded_ms,
         guarded.allocated_doubles(), c1);
  printf("%-34s %10.1f %14zu %12.3f\n", "exact bounds", exact_ms,
         exact.allocated_doubles(), c2);
  printf("%-34s %10.1f %14zu %12.3f\n",
         "wavefront, window 3 (rotate/unrotate)", wave_ms,
         wave.allocated_doubles(), c3);

  if (c1 != c2 || c1 != c3) {
    fprintf(stderr, "checksum mismatch!\n");
    return 1;
  }
  printf("\nwavefront stats: %lld hyperplanes, %lld points, %lld flushes\n",
         static_cast<long long>(wave.stats().hyperplanes),
         static_cast<long long>(wave.stats().points),
         static_cast<long long>(wave.stats().flushed));
  printf("A' window: %lld slices (paper: \"window size is three\"), "
         "allocation 3 x maxK x (M+2) = %lld doubles\n",
         static_cast<long long>(wave.window()),
         static_cast<long long>(3 * sweeps * (m + 2)));
  printf("versus the full transformed box (2maxK+2M+1) x maxK x (M+2) = "
         "%lld doubles.\n",
         static_cast<long long>((2 * sweeps + 2 * m + 1) * sweeps * (m + 2)));
  return 0;
}
