// A domain beyond relaxation: dynamic programming. Edit distance is the
// textbook "seemingly iterative" computation -- c[I,J] depends on
// c[I-1,J], c[I,J-1] and c[I-1,J-1], so the paper's scheduler makes both
// loops DO. The hyperplane transform finds t = I + J and turns the table
// fill into anti-diagonal wavefronts with a DOALL inner loop, while the
// result is checked against a plain C++ DP implementation.
//
//   $ ./examples/dp_wavefront [n] [m]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "driver/compiler.hpp"
#include "runtime/interpreter.hpp"

namespace {

const char* kEditDistance = R"PS(
Edit: module (a: array[1 .. n] of int; b: array[1 .. m] of int;
              n: int; m: int):
  [dist: int];
type I = 0 .. n; J = 0 .. m;
var c: array [I, J] of int;
define
  c[I, J] = if I = 0 then J
            else if J = 0 then I
            else min(min(c[I-1, J] + 1, c[I, J-1] + 1),
                     c[I-1, J-1] + (if a[I] = b[J] then 0 else 1));
  dist = c[n, m];
end Edit;
)PS";

int reference_edit_distance(const std::vector<int>& a,
                            const std::vector<int>& b) {
  std::vector<std::vector<int>> c(a.size() + 1,
                                  std::vector<int>(b.size() + 1));
  for (size_t i = 0; i <= a.size(); ++i) c[i][0] = static_cast<int>(i);
  for (size_t j = 0; j <= b.size(); ++j) c[0][j] = static_cast<int>(j);
  for (size_t i = 1; i <= a.size(); ++i)
    for (size_t j = 1; j <= b.size(); ++j)
      c[i][j] = std::min({c[i - 1][j] + 1, c[i][j - 1] + 1,
                          c[i - 1][j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1)});
  return c[a.size()][b.size()];
}

double run_and_time(const ps::CompiledModule& stage, int64_t n, int64_t m,
                    const std::vector<int>& a, const std::vector<int>& b,
                    ps::ThreadPool* pool, double* result) {
  ps::InterpreterOptions options;
  options.pool = pool;
  ps::Interpreter interp(*stage.module, *stage.graph,
                         stage.schedule.flowchart,
                         ps::IntEnv{{"n", n}, {"m", m}}, {}, options);
  for (int64_t i = 1; i <= n; ++i)
    interp.array("a").set(std::vector<int64_t>{i},
                          static_cast<double>(a[static_cast<size_t>(i - 1)]));
  for (int64_t j = 1; j <= m; ++j)
    interp.array("b").set(std::vector<int64_t>{j},
                          static_cast<double>(b[static_cast<size_t>(j - 1)]));
  auto start = std::chrono::steady_clock::now();
  interp.run();
  auto stop = std::chrono::steady_clock::now();
  *result = interp.scalar("dist");
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  int64_t n = argc > 1 ? std::atoll(argv[1]) : 600;
  int64_t m = argc > 2 ? std::atoll(argv[2]) : 600;

  ps::CompileOptions options;
  options.apply_hyperplane = true;
  ps::Compiler compiler(options);
  ps::CompileResult result = compiler.compile(kEditDistance);
  if (!result.ok || !result.transformed) {
    fprintf(stderr, "%s", result.diagnostics.c_str());
    return 1;
  }

  printf("== Edit-distance schedule (both loops iterative) ==\n%s\n",
         ps::flowchart_to_string(result.primary->schedule.flowchart,
                                 *result.primary->graph)
             .c_str());
  printf("== Hyperplane: %s ==\n\n", result.transform->describe().c_str());
  printf("== Wavefront schedule ==\n%s\n",
         ps::flowchart_to_string(result.transformed->schedule.flowchart,
                                 *result.transformed->graph)
             .c_str());

  std::mt19937 rng(7);
  std::uniform_int_distribution<int> sym(0, 3);
  std::vector<int> a(static_cast<size_t>(n));
  std::vector<int> b(static_cast<size_t>(m));
  for (int& v : a) v = sym(rng);
  for (int& v : b) v = sym(rng);
  int expected = reference_edit_distance(a, b);

  double d_seq = 0;
  double d_par = 0;
  double t_seq = run_and_time(*result.primary, n, m, a, b, nullptr, &d_seq);
  double t_par = run_and_time(*result.transformed, n, m, a, b,
                              &ps::ThreadPool::global(), &d_par);

  printf("== Results (n = %lld, m = %lld) ==\n", static_cast<long long>(n),
         static_cast<long long>(m));
  printf("  reference C++ DP        : distance %d\n", expected);
  printf("  sequential PS schedule  : distance %.0f  in %8.2f ms\n", d_seq,
         t_seq);
  printf("  wavefront PS schedule   : distance %.0f  in %8.2f ms (%zu "
         "threads)\n",
         d_par, t_par, ps::ThreadPool::global().size());
  printf("  wavefront speedup       : %.2fx\n", t_seq / t_par);
  if (t_par > t_seq)
    printf("  (the DP body is a handful of integer ops, so at this size the\n"
           "   per-diagonal barriers dominate; try n = m = 3000 to see the\n"
           "   wavefront win -- the crossover is the point of the bench)\n");

  if (static_cast<int>(d_seq) != expected ||
      static_cast<int>(d_par) != expected) {
    fprintf(stderr, "DISTANCE MISMATCH\n");
    return 1;
  }
  return 0;
}
