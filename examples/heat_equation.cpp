// A domain example beyond the paper's relaxation: 1-D explicit heat
// diffusion written as a PS module, compiled, scheduled (outer DO over
// time with a DOALL space loop, window-2 storage), executed in parallel,
// and compared against an analytically-motivated sanity check (heat is
// conserved away from the boundary and the profile flattens).
//
//   $ ./examples/heat_equation [N] [steps]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "driver/compiler.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/interpreter.hpp"

int main(int argc, char** argv) {
  int64_t n = argc > 1 ? std::atoll(argv[1]) : 64;
  int64_t steps = argc > 2 ? std::atoll(argv[2]) : 200;

  ps::Compiler compiler;
  ps::CompileResult result = compiler.compile(ps::kHeat1dSource);
  if (!result.ok) {
    fprintf(stderr, "%s", result.diagnostics.c_str());
    return 1;
  }
  const ps::CompiledModule& stage = *result.primary;

  printf("== Heat1d schedule ==\n%s\n",
         ps::flowchart_to_string(stage.schedule.flowchart, *stage.graph)
             .c_str());
  const auto& vd = stage.schedule.virtual_dims.at("u");
  printf("u dimension 1: %s, window %lld -- only two time slices are ever "
         "allocated\n\n",
         vd[0].is_virtual ? "virtual" : "not virtual",
         static_cast<long long>(vd[0].window));

  ps::InterpreterOptions options;
  options.pool = &ps::ThreadPool::global();
  options.use_virtual_windows = true;
  options.virtual_dims = &stage.schedule.virtual_dims;
  ps::Interpreter interp(*stage.module, *stage.graph,
                         stage.schedule.flowchart,
                         ps::IntEnv{{"N", n}, {"steps", steps}},
                         {{"r", 0.24}}, options);

  // Initial condition: a box of heat in the middle third.
  ps::NdArray& u0 = interp.array("u0");
  double total0 = 0;
  for (int64_t x = 0; x <= n + 1; ++x) {
    double v = (x > n / 3 && x < 2 * n / 3) ? 90.0 : 0.0;
    u0.set(std::vector<int64_t>{x}, v);
    if (x >= 1 && x <= n) total0 += v;
  }

  interp.run();

  // Report: coarse ASCII profile plus conservation check.
  printf("== Final profile after %lld steps ==\n",
         static_cast<long long>(steps));
  double total1 = 0;
  double peak = 0;
  for (int64_t x = 1; x <= n; ++x) {
    double v = interp.array("uOut").at(std::vector<int64_t>{x});
    total1 += v;
    peak = std::max(peak, v);
  }
  for (int64_t x = 1; x <= n; ++x) {
    double v = interp.array("uOut").at(std::vector<int64_t>{x});
    int bars = peak > 0 ? static_cast<int>(v / peak * 50) : 0;
    printf("%4lld |", static_cast<long long>(x));
    for (int b = 0; b < bars; ++b) printf("#");
    printf("\n");
  }
  printf("\ninterior heat: initial %.3f, final %.3f (loss through the "
         "fixed-0 boundary only)\n",
         total0, total1);
  if (total1 > total0 + 1e-9) {
    fprintf(stderr, "heat was created -- schedule bug\n");
    return 1;
  }
  printf("allocated %zu doubles (windowed)\n", interp.allocated_doubles());
  return 0;
}
