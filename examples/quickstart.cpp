// Quickstart: compile the paper's Figure 1 module and inspect every
// artefact the pipeline produces -- the dependency graph, the MSCC table
// (Figure 5), the flowchart (Figure 6), the virtual-dimension analysis,
// and the generated C -- then execute it with the interpreter.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <vector>

#include "driver/compiler.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/interpreter.hpp"
#include "support/text_table.hpp"

int main() {
  // 1. Compile. The source is the module of the paper's Figure 1.
  ps::Compiler compiler;
  ps::CompileResult result = compiler.compile(ps::kRelaxationSource);
  if (!result.ok) {
    fprintf(stderr, "%s", result.diagnostics.c_str());
    return 1;
  }
  const ps::CompiledModule& stage = *result.primary;

  // 2. The dependency graph (Figure 3).
  printf("== Dependency graph ==\n%s\n", stage.graph->summary().c_str());

  // 3. The component table (Figure 5).
  ps::TextTable table({"Component", "Node(s)", "Flowchart"});
  for (size_t i = 0; i < stage.schedule.components.size(); ++i) {
    const auto& comp = stage.schedule.components[i];
    std::string names;
    for (size_t j = 0; j < comp.nodes.size(); ++j) {
      if (j) names += ", ";
      names += stage.graph->node(comp.nodes[j]).name;
    }
    table.add_row({std::to_string(i + 1), names,
                   ps::flowchart_to_line(comp.flowchart, *stage.graph)});
  }
  printf("== Component table (Figure 5) ==\n%s\n", table.render().c_str());

  // 4. The flowchart (Figure 6): DO = iterative, DOALL = concurrent.
  printf("== Flowchart (Figure 6) ==\n%s\n",
         ps::flowchart_to_string(stage.schedule.flowchart, *stage.graph)
             .c_str());

  // 5. Virtual dimensions (section 3.4).
  const auto& vd = stage.schedule.virtual_dims.at("A");
  printf("== Virtual dimensions ==\nA dimension 1: %s, window %lld\n\n",
         vd[0].is_virtual ? "virtual" : "not virtual",
         static_cast<long long>(vd[0].window));

  // 6. Generated C.
  printf("== Generated C ==\n%s\n", stage.c_code.c_str());

  // 7. Execute: a 10x10 grid with hot boundary, 20 sweeps, DOALL loops on
  //    the global thread pool, windowed storage for A.
  ps::InterpreterOptions options;
  options.pool = &ps::ThreadPool::global();
  options.use_virtual_windows = true;
  options.virtual_dims = &stage.schedule.virtual_dims;
  ps::Interpreter interp(*stage.module, *stage.graph,
                         stage.schedule.flowchart,
                         ps::IntEnv{{"M", 8}, {"maxK", 20}}, {}, options);
  ps::NdArray& in = interp.array("InitialA");
  for (int64_t i = 0; i <= 9; ++i)
    for (int64_t j = 0; j <= 9; ++j) {
      bool boundary = i == 0 || j == 0 || i == 9 || j == 9;
      in.set(std::vector<int64_t>{i, j}, boundary ? 100.0 : 0.0);
    }
  interp.run();

  printf("== Relaxed grid after 20 sweeps (hot boundary at 100) ==\n");
  for (int64_t i = 0; i <= 9; ++i) {
    for (int64_t j = 0; j <= 9; ++j)
      printf("%6.1f", interp.array("newA").at(std::vector<int64_t>{i, j}));
    printf("\n");
  }
  return 0;
}
