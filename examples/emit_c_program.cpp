// The code-generation path as a downstream user would drive it: compile
// a PS module (from a file or the bundled Gauss-Seidel example), apply
// the hyperplane restructuring, and write both generated C translation
// units to disk, ready for `cc -fopenmp`.
//
//   $ ./examples/emit_c_program [module.ps] [outdir]

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/compiler.hpp"
#include "driver/paper_modules.hpp"

int main(int argc, char** argv) {
  std::string source;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      fprintf(stderr, "cannot open '%s'\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  } else {
    source = ps::kGaussSeidelSource;
  }
  std::string outdir = argc > 2 ? argv[2] : ".";

  ps::CompileOptions options;
  options.apply_hyperplane = true;
  options.merge_loops = true;
  ps::Compiler compiler(options);
  ps::CompileResult result = compiler.compile(source);
  if (!result.ok) {
    fprintf(stderr, "%s", result.diagnostics.c_str());
    return 1;
  }

  auto write = [&](const std::string& name, const std::string& text) {
    std::string path = outdir + "/" + name;
    std::ofstream out(path);
    out << text;
    printf("wrote %s (%zu bytes)\n", path.c_str(), text.size());
  };

  write(result.primary->module->name + ".c", result.primary->c_code);
  if (result.transformed) {
    write(result.transformed->module->name + ".c",
          result.transformed->c_code);
    write(result.transformed->module->name + ".ps",
          result.transformed->source);
    printf("hyperplane transform: %s\n",
           result.transform->describe().c_str());
  }
  printf("compile with: cc -O2 -fopenmp -c <file>.c\n");
  return 0;
}
