// The paper's "ultimate goal" front end: "a translator of equations in
// the form of (1), perhaps as TeX or Postscript files, to modules in
// this language". This example feeds the TeX-flavoured equation file
// for Equation (1) -- and its Gauss-Seidel variant, Equation (2) --
// through the EQN translator, prints the generated PS modules, and
// runs the whole compiler on them: the Jacobi equations schedule to the
// paper's Figure 6, the Gauss-Seidel equations trigger the section 4
// hyperplane restructuring.
//
//   $ ./examples/equation_frontend

#include <cstdio>

#include "driver/compiler.hpp"
#include "eqn/translate.hpp"

namespace {

constexpr const char* kJacobiEqn = R"EQ(
% Equation (1): all neighbours from the previous iteration.
module Relaxation;
param InitialA : real[0..M+1, 0..M+1];
param M : int;
param maxK : int;
result newA = A^{maxK};

A^{1}_{i,j} = InitialA_{i,j}
  for i in 0..M+1, j in 0..M+1;

A^{k}_{i,j} = A^{k-1}_{i,j}
  if i = 0 \lor j = 0 \lor i = M+1 \lor j = M+1
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;

A^{k}_{i,j} = \frac{A^{k-1}_{i,j-1} + A^{k-1}_{i-1,j}
                    + A^{k-1}_{i,j+1} + A^{k-1}_{i+1,j}}{4}
  otherwise
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;
)EQ";

constexpr const char* kGaussSeidelEqn = R"EQ(
% Equation (2): west and north neighbours from the current iteration.
module Relaxation;
param InitialA : real[0..M+1, 0..M+1];
param M : int;
param maxK : int;
result newA = A^{maxK};

A^{1}_{i,j} = InitialA_{i,j}
  for i in 0..M+1, j in 0..M+1;

A^{k}_{i,j} = A^{k-1}_{i,j}
  if i = 0 \lor j = 0 \lor i = M+1 \lor j = M+1
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;

A^{k}_{i,j} = \frac{A^{k}_{i,j-1} + A^{k}_{i-1,j}
                    + A^{k-1}_{i,j+1} + A^{k-1}_{i+1,j}}{4}
  otherwise
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;
)EQ";

int process(const char* title, const char* eqn_text, bool hyperplane) {
  printf("==== %s ====\n", title);

  ps::DiagnosticEngine diags;
  auto module = ps::eqn::equations_to_ps(eqn_text, diags);
  if (!module) {
    fprintf(stderr, "%s", diags.render().c_str());
    return 1;
  }
  std::string ps_source = to_source(*module);
  printf("-- translated PS module --\n%s\n", ps_source.c_str());

  ps::CompileOptions options;
  options.apply_hyperplane = hyperplane;
  options.exact_bounds = hyperplane;
  ps::Compiler compiler(options);
  ps::CompileResult result = compiler.compile(ps_source);
  if (!result.ok) {
    fprintf(stderr, "%s", result.diagnostics.c_str());
    return 1;
  }

  printf("-- schedule --\n%s\n",
         flowchart_to_string(result.primary->schedule.flowchart,
                             *result.primary->graph)
             .c_str());

  if (result.transform) {
    printf("-- section 4 transform found --\n%s\n",
           result.transform->describe().c_str());
    printf("-- rescheduled --\n%s\n",
           flowchart_to_string(result.transformed->schedule.flowchart,
                               *result.transformed->graph)
               .c_str());
    if (result.exact_nest)
      printf("-- exact loop bounds (Lamport) --\n%s\n\n",
             result.exact_nest->to_string().c_str());
  }
  return 0;
}

}  // namespace

int main() {
  if (process("Equation (1): Jacobi", kJacobiEqn, false) != 0) return 1;
  if (process("Equation (2): Gauss-Seidel + hyperplane", kGaussSeidelEqn,
              true) != 0)
    return 1;
  printf("Both equation files round-trip through the full compiler.\n");
  return 0;
}
