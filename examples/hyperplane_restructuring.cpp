// The paper's section 4, end to end: the Gauss-Seidel-style relaxation
// whose schedule is fully iterative (Figure 7), the dependence
// inequalities and their least solution t = 2K + I + J, the unimodular
// coordinate change, the rewritten module over A', its parallel
// reschedule, and a timed head-to-head of the two programs.
//
//   $ ./examples/hyperplane_restructuring [M] [maxK]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "driver/compiler.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/interpreter.hpp"

namespace {

double run_timed(const ps::CompiledModule& stage, int64_t m, int64_t sweeps,
                 ps::ThreadPool* pool, double* out_checksum) {
  ps::InterpreterOptions options;
  options.pool = pool;
  ps::Interpreter interp(*stage.module, *stage.graph,
                         stage.schedule.flowchart,
                         ps::IntEnv{{"M", m}, {"maxK", sweeps}}, {}, options);
  ps::NdArray& in = interp.array("InitialA");
  auto span = in.raw();
  for (size_t i = 0; i < span.size(); ++i)
    span[i] = std::sin(static_cast<double>(i) * 0.01) * 50.0;

  auto start = std::chrono::steady_clock::now();
  interp.run();
  auto stop = std::chrono::steady_clock::now();

  double sum = 0;
  for (double v : interp.array("newA").raw()) sum += v;
  *out_checksum = sum;
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  int64_t m = argc > 1 ? std::atoll(argv[1]) : 128;
  int64_t sweeps = argc > 2 ? std::atoll(argv[2]) : 8;

  ps::CompileOptions options;
  options.apply_hyperplane = true;
  ps::Compiler compiler(options);
  ps::CompileResult result = compiler.compile(ps::kGaussSeidelSource);
  if (!result.ok || !result.transformed) {
    fprintf(stderr, "compilation failed:\n%s", result.diagnostics.c_str());
    return 1;
  }

  printf("== Original schedule (Figure 7: all loops iterative) ==\n%s\n",
         ps::flowchart_to_string(result.primary->schedule.flowchart,
                                 *result.primary->graph)
             .c_str());

  printf("== Dependences of A ==\n");
  for (const auto& d : result.dependences->vectors) {
    printf("  (");
    for (size_t i = 0; i < d.size(); ++i)
      printf("%s%lld", i ? "," : "", static_cast<long long>(d[i]));
    printf(")\n");
  }
  printf("\n== Coordinate change ==\n%s\n\n",
         result.transform->describe().c_str());

  printf("== Transformed module (over A') ==\n%s\n",
         result.transformed->source.c_str());

  printf("== Rescheduled (shape of Figure 6: inner loops parallel) ==\n%s\n",
         ps::flowchart_to_string(result.transformed->schedule.flowchart,
                                 *result.transformed->graph)
             .c_str());

  double seq_sum = 0;
  double par_sum = 0;
  double t_seq =
      run_timed(*result.primary, m, sweeps, nullptr, &seq_sum);
  double t_par = run_timed(*result.transformed, m, sweeps,
                           &ps::ThreadPool::global(), &par_sum);

  printf("== Execution (M = %lld, maxK = %lld, %zu threads) ==\n",
         static_cast<long long>(m), static_cast<long long>(sweeps),
         ps::ThreadPool::global().size());
  printf("  sequential Gauss-Seidel  : %8.2f ms  (checksum %.6f)\n", t_seq,
         seq_sum);
  printf("  hyperplane wavefront     : %8.2f ms  (checksum %.6f)\n", t_par,
         par_sum);
  printf("  speedup                  : %8.2fx\n", t_seq / t_par);
  if (std::fabs(seq_sum - par_sum) > 1e-6 * (std::fabs(seq_sum) + 1)) {
    fprintf(stderr, "CHECKSUM MISMATCH\n");
    return 1;
  }
  return 0;
}
