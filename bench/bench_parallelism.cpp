// Work/span analysis of every paper schedule (the machine-independent
// counterpart of the timing benches): the DO/DOALL annotations bound the
// achievable speedup by work/span, and the section 4 transform is
// visible as a collapse of the span from maxK*(M+2)^2 to the hyperplane
// count 2*maxK + 2*M + 1. Also times the equation front end (the
// paper's "ultimate goal" translator) through the full pipeline.

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <cstdio>

#include "bench_common.hpp"
#include "core/parallelism.hpp"
#include "eqn/translate.hpp"

namespace {

using ps::bench::compile;

constexpr const char* kJacobiEqn = R"EQ(
module Relaxation;
param InitialA : real[0..M+1, 0..M+1];
param M : int;
param maxK : int;
result newA = A^{maxK};
A^{1}_{i,j} = InitialA_{i,j}
  for i in 0..M+1, j in 0..M+1;
A^{k}_{i,j} = A^{k-1}_{i,j}
  if i = 0 \lor j = 0 \lor i = M+1 \lor j = M+1
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;
A^{k}_{i,j} = \frac{A^{k-1}_{i,j-1} + A^{k-1}_{i-1,j}
                    + A^{k-1}_{i,j+1} + A^{k-1}_{i+1,j}}{4}
  otherwise
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;
)EQ";

void print_work_span_table() {
  auto jacobi = compile(ps::kRelaxationSource);
  ps::CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  auto gs = compile(ps::kGaussSeidelSource, options);

  printf("=== Work/span of the paper's schedules ===\n");
  printf("%-34s %6s %6s | %12s %10s | %12s %9s\n", "schedule", "M", "maxK",
         "work", "span", "avg par", "barriers");
  struct Row {
    const char* name;
    const ps::Flowchart* flowchart;
    const ps::LoopNestBounds* exact;
  };
  Row rows[] = {
      {"Jacobi (Fig 6: DO K, DOALL I,J)", &jacobi.primary->schedule.flowchart,
       nullptr},
      {"Gauss-Seidel (Fig 7: all DO)", &gs.primary->schedule.flowchart,
       nullptr},
      {"transformed, bounding box", &gs.transformed->schedule.flowchart,
       nullptr},
      {"transformed, exact bounds", &gs.transformed->schedule.flowchart,
       &*gs.exact_nest},
  };
  for (auto [m, sweeps] : {std::pair<long, long>{64, 32}, {256, 64}}) {
    ps::IntEnv params{{"M", m}, {"maxK", sweeps}};
    for (const Row& row : rows) {
      auto report = ps::analyze_parallelism(*row.flowchart, params,
                                            row.exact);
      printf("%-34s %6ld %6ld | %12lld %10lld | %12.1f %9lld\n", row.name, m,
             sweeps, static_cast<long long>(report.work),
             static_cast<long long>(report.span),
             report.average_parallelism(),
             static_cast<long long>(report.barriers));
    }
  }
  printf("(span = critical path with unbounded processors; the transform\n"
         " turns the Gauss-Seidel span from maxK*(M+2)^2 into the\n"
         " hyperplane count 2*maxK + 2*M + 1, matching section 4's\n"
         " 2K + I + J sweep; exact bounds shed the bounding-box work at\n"
         " unchanged span)\n\n");
}

void BM_AnalyzeParallelism(benchmark::State& state) {
  auto result = compile(ps::kRelaxationSource);
  ps::IntEnv params{{"M", 256}, {"maxK", 64}};
  for (auto _ : state) {
    auto report =
        ps::analyze_parallelism(result.primary->schedule.flowchart, params);
    benchmark::DoNotOptimize(report.work);
  }
}
BENCHMARK(BM_AnalyzeParallelism)->Unit(benchmark::kMicrosecond);

void BM_EqnFrontendTranslate(benchmark::State& state) {
  for (auto _ : state) {
    ps::DiagnosticEngine diags;
    auto module = ps::eqn::equations_to_ps(kJacobiEqn, diags);
    benchmark::DoNotOptimize(module.has_value());
  }
}
BENCHMARK(BM_EqnFrontendTranslate)->Unit(benchmark::kMicrosecond);

void BM_EqnFrontendFullPipeline(benchmark::State& state) {
  // Equation text -> PS -> sema -> graph -> schedule -> C.
  for (auto _ : state) {
    ps::DiagnosticEngine diags;
    auto module = ps::eqn::equations_to_ps(kJacobiEqn, diags);
    ps::Compiler compiler;
    auto compiled = compiler.analyze(std::move(*module), diags);
    benchmark::DoNotOptimize(compiled->c_code.size());
  }
}
BENCHMARK(BM_EqnFrontendFullPipeline)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  if (!ps::bench::json_to_stdout(argc, argv)) {
    print_work_span_table();
  }
  return ps::bench::run_benchmarks(argc, argv);
}
