// Daemon round-trip throughput: what a client pays on top of the
// in-process service for the reactor, the framing protocol and the
// streamed v2 reply path. BM_DaemonPingPong is the floor (one frame
// each way, no compile); BM_DaemonWarmCorpus serves the replicated
// paper corpus entirely from the artifact cache -- cache probes on the
// reactor thread, raw-byte splicing into UnitReply frames -- and is
// the daemon-side counterpart of BM_ServiceCorpusWarm. Both rate
// counters feed the CI regression gate (BENCH_daemon.json).

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "driver/paper_modules.hpp"
#include "service/daemon.hpp"

namespace {

std::string bench_socket(const char* tag) {
  std::string path = "/tmp/psc_bench_" + std::string(tag) + "_" +
                     std::to_string(getpid()) + ".sock";
  ::unlink(path.c_str());
  return path;
}

std::string bench_cache_dir(const char* tag) {
  std::string dir = std::filesystem::temp_directory_path() /
                    ("psc_bench_daemon_" + std::string(tag) + "_" +
                     std::to_string(getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

/// A daemon served on its own thread for the duration of one benchmark.
class BenchDaemon {
 public:
  explicit BenchDaemon(ps::DaemonOptions options) : daemon_(options) {
    ok_ = daemon_.start();
    if (ok_) thread_ = std::thread([this] { daemon_.serve(); });
  }
  ~BenchDaemon() {
    daemon_.request_stop();
    if (thread_.joinable()) thread_.join();
  }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  ps::Daemon daemon_;
  bool ok_ = false;
  std::thread thread_;
};

ps::ServiceRequest corpus_request(size_t copies) {
  ps::ServiceRequest request;
  for (size_t c = 0; c < copies; ++c)
    for (const ps::PaperModule& module : ps::paper_corpus())
      request.units.push_back({std::string(module.name) + "#" +
                                   std::to_string(c),
                               module.source, false});
  return request;
}

/// One frame each way through the reactor: the fixed per-request
/// overhead every daemon round trip pays.
void BM_DaemonPingPong(benchmark::State& state) {
  ps::DaemonOptions options;
  options.socket_path = bench_socket("ping");
  BenchDaemon daemon(options);
  if (!daemon.ok()) {
    state.SkipWithError("daemon failed to start");
    return;
  }
  ps::DaemonClient client;
  if (!client.connect(options.socket_path)) {
    state.SkipWithError("connect failed");
    return;
  }
  size_t pings = 0;
  for (auto _ : state) {
    if (!client.ping()) {
      state.SkipWithError("ping failed");
      return;
    }
    ++pings;
  }
  state.counters["pings_per_s"] = benchmark::Counter(
      static_cast<double>(pings), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DaemonPingPong)->Unit(benchmark::kMicrosecond)->UseRealTime();

/// The warm developer loop over the wire: every unit is a cache hit,
/// served inline on the reactor and streamed back as raw artifact
/// bytes. Compare modules_per_s against BM_ServiceCorpusWarm for the
/// socket + framing overhead.
void BM_DaemonWarmCorpus(benchmark::State& state) {
  ps::DaemonOptions options;
  options.socket_path = bench_socket("warm");
  options.service.jobs = 1;
  options.service.cache_dir = bench_cache_dir("warm");
  BenchDaemon daemon(options);
  if (!daemon.ok()) {
    state.SkipWithError("daemon failed to start");
    return;
  }
  ps::DaemonClient client;
  if (!client.connect(options.socket_path)) {
    state.SkipWithError("connect failed");
    return;
  }
  ps::ServiceRequest request = corpus_request(8);
  // Seed the cache; every timed iteration is then all hits.
  std::optional<ps::RemoteReply> seed = client.compile(request);
  if (!seed || seed->cache_misses != request.units.size()) {
    state.SkipWithError("cache seed failed");
    return;
  }
  size_t served = 0;
  for (auto _ : state) {
    std::optional<ps::RemoteReply> reply = client.compile(request);
    if (!reply || reply->cache_hits != request.units.size()) {
      state.SkipWithError("expected all hits");
      return;
    }
    benchmark::DoNotOptimize(reply->units.data());
    served += reply->units.size();
  }
  state.counters["modules_per_s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
  std::filesystem::remove_all(options.service.cache_dir);
}
BENCHMARK(BM_DaemonWarmCorpus)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Four clients hammering one daemon concurrently with warm
/// single-unit requests: reactor fairness and the cost of multiplexing
/// connections on one poll loop.
void BM_DaemonConcurrentClients(benchmark::State& state) {
  ps::DaemonOptions options;
  options.socket_path = bench_socket("multi");
  options.service.jobs = 1;
  options.service.cache_dir = bench_cache_dir("multi");
  BenchDaemon daemon(options);
  if (!daemon.ok()) {
    state.SkipWithError("daemon failed to start");
    return;
  }
  constexpr size_t kClients = 4;
  const std::vector<ps::PaperModule>& corpus = ps::paper_corpus();
  // Seed every unit the clients will request.
  {
    ps::DaemonClient seeder;
    if (!seeder.connect(options.socket_path) ||
        !seeder.compile(corpus_request(1))) {
      state.SkipWithError("cache seed failed");
      return;
    }
  }
  size_t served = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    std::atomic<size_t> replies{0};
    std::atomic<bool> failed{false};
    for (size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        const ps::PaperModule& module = corpus[c % corpus.size()];
        ps::DaemonClient client;
        if (!client.connect(options.socket_path)) {
          failed = true;
          return;
        }
        ps::ServiceRequest request;
        request.units.push_back(
            {std::string(module.name) + "#0", module.source, false});
        for (int i = 0; i < 8; ++i) {
          std::optional<ps::RemoteReply> reply = client.compile(request);
          if (!reply || reply->units.size() != 1) {
            failed = true;
            return;
          }
          replies.fetch_add(1);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    if (failed.load()) {
      state.SkipWithError("a client failed");
      return;
    }
    served += replies.load();
  }
  state.counters["replies_per_s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
  std::filesystem::remove_all(options.service.cache_dir);
}
BENCHMARK(BM_DaemonConcurrentClients)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return ps::bench::run_benchmarks(argc, argv);
}
