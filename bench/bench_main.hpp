#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace ps::bench {

/// True when a bare `--json` was passed: the benchmark JSON report goes
/// to stdout, so mains must suppress their narrative printf output to
/// keep the stream parseable.
inline bool json_to_stdout(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) return true;
  return false;
}

/// Run the registered benchmarks, translating the repo-standard
/// `--json[=FILE]` flag into Google Benchmark's native reporter options:
/// `--json` streams the JSON report to stdout, `--json=FILE` writes it
/// to FILE while keeping the console report. This is how perf
/// trajectories get recorded as BENCH_*.json files across PRs.
inline int run_benchmarks(int argc, char** argv) {
  std::vector<std::string> translated;
  translated.reserve(static_cast<size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      translated.push_back("--benchmark_format=json");
    } else if (arg.rfind("--json=", 0) == 0) {
      translated.push_back("--benchmark_out=" + arg.substr(7));
      translated.push_back("--benchmark_out_format=json");
    } else {
      translated.push_back(std::move(arg));
    }
  }
  std::vector<char*> args;
  args.reserve(translated.size() + 1);
  for (std::string& arg : translated) args.push_back(arg.data());
  args.push_back(nullptr);
  int count = static_cast<int>(translated.size());
  benchmark::Initialize(&count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ps::bench
