// The code-generator pathway under real OpenMP: emit C for the Jacobi
// module and for the hyperplane-transformed Gauss-Seidel module, compile
// both with `cc -O2 -fopenmp`, and time the binaries at 1 and N threads.
// This validates that the paper's DO/DOALL annotations, realised as
// OpenMP pragmas, deliver loop-level parallelism in compiled code, not
// just in the interpreter.
//
// Falls back gracefully (prints a notice) when no C compiler is found.

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.hpp"

namespace {

using ps::bench::compile;

constexpr const char* kTimingMain = R"C(
#include <stdio.h>
#include <stdlib.h>
#include <time.h>
void ENTRY(const double* InitialA, long M, long maxK, double* newA);
int main(int argc, char** argv) {
  long M = argc > 1 ? atol(argv[1]) : 256;
  long maxK = argc > 2 ? atol(argv[2]) : 16;
  long n = M + 2;
  double* in = (double*)malloc(sizeof(double) * n * n);
  double* out = (double*)malloc(sizeof(double) * n * n);
  for (long i = 0; i < n * n; ++i) in[i] = (double)(i % 17);
  struct timespec t0, t1;
  clock_gettime(CLOCK_MONOTONIC, &t0);
  ENTRY(in, M, maxK, out);
  clock_gettime(CLOCK_MONOTONIC, &t1);
  double ms = (t1.tv_sec - t0.tv_sec) * 1e3 + (t1.tv_nsec - t0.tv_nsec) / 1e6;
  double sum = 0;
  for (long i = 0; i < n * n; ++i) sum += out[i];
  printf("%.3f %.6f\n", ms, sum);
  free(in); free(out);
  return 0;
}
)C";

bool have_cc() { return std::system("cc --version > /dev/null 2>&1") == 0; }

struct RunResult {
  double ms = -1;
  double checksum = 0;
};

RunResult time_generated(const std::string& c_code,
                         const std::string& entry, long m, long sweeps,
                         int threads, const std::string& tag) {
  std::string dir = "/tmp/psc_bench_" + tag;
  std::string cmd = "mkdir -p " + dir;
  if (std::system(cmd.c_str()) != 0) return {};
  {
    std::ofstream mod(dir + "/module.c");
    mod << c_code;
    std::ofstream main_file(dir + "/main.c");
    std::string main_code = kTimingMain;
    size_t at;
    while ((at = main_code.find("ENTRY")) != std::string::npos)
      main_code.replace(at, 5, entry);
    main_file << main_code;
  }
  cmd = "cc -O2 -fopenmp -std=c99 -o " + dir + "/prog " + dir +
        "/module.c " + dir + "/main.c -lm 2> " + dir + "/cc.log";
  if (std::system(cmd.c_str()) != 0) return {};
  std::string env =
      threads > 0 ? "OMP_NUM_THREADS=" + std::to_string(threads) + " " : "";
  cmd = env + dir + "/prog " + std::to_string(m) + " " +
        std::to_string(sweeps) + " > " + dir + "/out.txt";
  if (std::system(cmd.c_str()) != 0) return {};
  std::ifstream out(dir + "/out.txt");
  RunResult result;
  out >> result.ms >> result.checksum;
  return result;
}

void print_openmp_table() {
  if (!have_cc()) {
    printf("(no system C compiler; skipping generated-code timing)\n");
    return;
  }
  auto jacobi = compile(ps::kRelaxationSource);
  ps::CompileOptions options;
  options.apply_hyperplane = true;
  auto gs = compile(ps::kGaussSeidelSource, options);

  printf("=== Generated C under OpenMP (cc -O2 -fopenmp) ===\n");
  printf("%-36s %6s %6s | %9s %9s %9s | %7s\n", "program", "M", "maxK",
         "1 thr ms", "4 thr ms", "12 thr ms", "best x");
  struct Case {
    const char* name;
    const std::string* code;
    const char* entry;
    long m, sweeps;
  };
  Case cases[] = {
      {"Jacobi (Fig 6 schedule)", &jacobi.primary->c_code, "Relaxation",
       1024, 16},
      {"Gauss-Seidel (Fig 7, sequential)", &gs.primary->c_code, "Relaxation",
       384, 192},
      {"Gauss-Seidel hyperplane (sec 4)", &gs.transformed->c_code,
       "Relaxation_h", 384, 192},
  };
  for (const Case& c : cases) {
    double ms[3] = {-1, -1, -1};
    int threads[3] = {1, 4, 12};
    double checksum = 0;
    bool ok = true;
    for (int t = 0; t < 3; ++t) {
      RunResult r = time_generated(*c.code, c.entry, c.m, c.sweeps,
                                   threads[t],
                                   std::string(c.entry) + "_t" +
                                       std::to_string(threads[t]));
      if (r.ms < 0) {
        ok = false;
        break;
      }
      if (t == 0)
        checksum = r.checksum;
      else if (r.checksum != checksum)
        printf("%-36s  CHECKSUM MISMATCH at %d threads\n", c.name,
               threads[t]);
      ms[t] = r.ms;
    }
    if (!ok) {
      printf("%-36s  (compilation or run failed)\n", c.name);
      continue;
    }
    double best = std::min(ms[1], ms[2]);
    printf("%-36s %6ld %6ld | %9.2f %9.2f %9.2f | %6.2fx\n", c.name, c.m,
           c.sweeps, ms[0], ms[1], ms[2], ms[0] / best);
  }
  printf("(the sequential Gauss-Seidel row is the baseline the transformed\n"
         " row must amortise its bounding-box overhead against; see\n"
         " EXPERIMENTS.md for the discussion)\n\n");
}

void BM_EmitC(benchmark::State& state) {
  auto result = compile(ps::kRelaxationSource);
  const ps::CompiledModule& stage = *result.primary;
  ps::CodegenOptions options;
  options.virtual_dims = &stage.schedule.virtual_dims;
  for (auto _ : state) {
    std::string code = ps::emit_c(*stage.module, *stage.graph,
                                  stage.schedule.flowchart, options);
    benchmark::DoNotOptimize(code.size());
  }
}
BENCHMARK(BM_EmitC)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  if (!ps::bench::json_to_stdout(argc, argv)) {
    print_openmp_table();
  }
  return ps::bench::run_benchmarks(argc, argv);
}
