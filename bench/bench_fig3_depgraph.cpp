// Figure 3: the dependency graph of the Relaxation module.
//
// Prints the node/edge inventory and the Graphviz DOT form of the graph
// (the reproduction of the figure), then benchmarks graph construction
// and MSCC analysis.

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <cstdio>

#include "bench_common.hpp"
#include "graph/scc.hpp"

namespace {

void print_figure() {
  auto result = ps::bench::compile(ps::kRelaxationSource);
  printf("=== Figure 3: dependency graph for the Relaxation module ===\n");
  printf("%s\n", result.primary->graph->summary().c_str());
  printf("--- Graphviz DOT ---\n%s\n", result.primary->graph->to_dot().c_str());
}

void BM_BuildDependencyGraph(benchmark::State& state) {
  auto result = ps::bench::compile(ps::kRelaxationSource);
  const ps::CheckedModule& module = *result.primary->module;
  for (auto _ : state) {
    ps::DepGraph graph = ps::DepGraph::build(module);
    benchmark::DoNotOptimize(graph.edges().size());
  }
}
BENCHMARK(BM_BuildDependencyGraph);

void BM_SccOnRelaxationGraph(benchmark::State& state) {
  auto result = ps::bench::compile(ps::kRelaxationSource);
  const ps::DepGraph& graph = *result.primary->graph;
  std::vector<std::vector<uint32_t>> adj(graph.nodes().size());
  for (const auto& e : graph.edges()) adj[e.src].push_back(e.dst);
  for (auto _ : state) {
    auto sccs = ps::compute_sccs(adj);
    benchmark::DoNotOptimize(sccs.size());
  }
}
BENCHMARK(BM_SccOnRelaxationGraph);

void BM_SccScaling(benchmark::State& state) {
  // Chain of n 2-cycles: 2n nodes, deterministic structure.
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::vector<uint32_t>> adj(2 * n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t a = static_cast<uint32_t>(2 * i);
    uint32_t b = a + 1;
    adj[a].push_back(b);
    adj[b].push_back(a);
    if (i + 1 < n) adj[b].push_back(a + 2);
  }
  for (auto _ : state) {
    auto sccs = ps::compute_sccs(adj);
    benchmark::DoNotOptimize(sccs.size());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_SccScaling)->Range(64, 65536)->Complexity(benchmark::oN);

}  // namespace

int main(int argc, char** argv) {
  if (!ps::bench::json_to_stdout(argc, argv)) {
    print_figure();
  }
  return ps::bench::run_benchmarks(argc, argv);
}
