// Compile-service throughput: the warm-cache incremental story in
// numbers. BM_ServiceCorpus/cold runs the whole replicated paper
// corpus through the pass pipeline (cache disabled); /warm serves the
// identical batch from a pre-populated artifact cache. The acceptance
// bar for the service is >= 10x warm-over-cold on the unchanged
// corpus; both modules/sec counters feed the CI regression gate
// (BENCH_service.json).

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "driver/paper_modules.hpp"
#include "service/compile_service.hpp"
#include "service/protocol.hpp"

namespace {

std::vector<ps::BatchInput> corpus_batch(size_t copies) {
  std::vector<ps::BatchInput> inputs;
  inputs.reserve(copies * ps::paper_corpus().size());
  for (size_t c = 0; c < copies; ++c)
    for (const ps::PaperModule& module : ps::paper_corpus())
      inputs.push_back({std::string(module.name) + "#" + std::to_string(c),
                        module.source, false});
  return inputs;
}

std::string bench_cache_dir(const char* tag) {
  std::string dir = std::filesystem::temp_directory_path() /
                    ("psc_bench_" + std::string(tag) + "_" +
                     std::to_string(getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

/// Cold path: every unit goes through the whole pass pipeline on a warm
/// session (cache off isolates pipeline cost, not disk cost).
void BM_ServiceCorpusCold(benchmark::State& state) {
  const std::vector<ps::BatchInput> inputs = corpus_batch(8);
  ps::ServiceOptions options;
  options.jobs = 1;
  ps::CompileService service(options);
  ps::ServiceRequest request;
  request.units = inputs;
  size_t compiled = 0;
  for (auto _ : state) {
    ps::ServiceResponse response = service.compile(request);
    benchmark::DoNotOptimize(response.units.data());
    if (response.units.size() != inputs.size()) {
      state.SkipWithError("service compile failed");
      return;
    }
    compiled += response.units.size();
  }
  state.counters["modules_per_s"] = benchmark::Counter(
      static_cast<double>(compiled), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServiceCorpusCold)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Warm path: the identical batch served entirely from the disk cache
/// (key hashing + artifact decode; the pipeline never runs). The ratio
/// to the cold run is the incremental-recompilation win.
void BM_ServiceCorpusWarm(benchmark::State& state) {
  const std::vector<ps::BatchInput> inputs = corpus_batch(8);
  ps::ServiceOptions options;
  options.jobs = 1;
  options.cache_dir = bench_cache_dir("warm");
  ps::CompileService service(options);
  ps::ServiceRequest request;
  request.units = inputs;
  // Populate once; every timed iteration is then all hits.
  ps::ServiceResponse seed = service.compile(request);
  if (seed.cache_misses != inputs.size()) {
    state.SkipWithError("cache seed failed");
    return;
  }
  size_t served = 0;
  for (auto _ : state) {
    ps::ServiceResponse response = service.compile(request);
    benchmark::DoNotOptimize(response.units.data());
    if (response.cache_hits != inputs.size()) {
      state.SkipWithError("expected all hits");
      return;
    }
    served += response.units.size();
  }
  state.counters["modules_per_s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
  std::filesystem::remove_all(options.cache_dir);
}
BENCHMARK(BM_ServiceCorpusWarm)->Unit(benchmark::kMillisecond)->UseRealTime();

/// One incremental edit in a sea of unchanged units: the steady-state
/// developer loop (recompile after touching one file).
void BM_ServiceIncrementalEdit(benchmark::State& state) {
  const std::vector<ps::BatchInput> inputs = corpus_batch(8);
  ps::ServiceOptions options;
  options.jobs = 1;
  options.cache_dir = bench_cache_dir("edit");
  ps::CompileService service(options);
  ps::ServiceRequest request;
  request.units = inputs;
  (void)service.compile(request);
  size_t generation = 0;
  size_t served = 0;
  for (auto _ : state) {
    // A fresh edit each iteration so the edited unit is never cached.
    request.units[0].source =
        std::string(inputs[0].source) + "\n" +
        std::string(++generation, '\n');
    ps::ServiceResponse response = service.compile(request);
    benchmark::DoNotOptimize(response.units.data());
    if (response.cache_misses != 1) {
      state.SkipWithError("expected exactly one recompile");
      return;
    }
    served += response.units.size();
  }
  state.counters["modules_per_s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
  std::filesystem::remove_all(options.cache_dir);
}
BENCHMARK(BM_ServiceIncrementalEdit)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The wire cost of one daemon round trip payload: encode + decode of a
/// full corpus reply (what --client pays over the in-process service).
void BM_ServiceReplyCodec(benchmark::State& state) {
  const std::vector<ps::BatchInput> inputs = corpus_batch(1);
  ps::CompileService service;
  ps::ServiceRequest request;
  request.units = inputs;
  ps::ServiceResponse response = service.compile(request);
  ps::RemoteReply reply;
  for (const ps::ServiceUnit& unit : response.units) {
    ps::RemoteUnitResult remote;
    remote.name = unit.name;
    remote.artifact = *unit.artifact;
    reply.units.push_back(std::move(remote));
  }
  size_t bytes = 0;
  for (auto _ : state) {
    std::string encoded = ps::encode_compile_reply(reply);
    bytes += encoded.size();
    ps::RemoteReply decoded = ps::decode_compile_reply(encoded);
    benchmark::DoNotOptimize(decoded.units.data());
  }
  state.counters["bytes_per_s"] = benchmark::Counter(
      static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServiceReplyCodec)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return ps::bench::run_benchmarks(argc, argv);
}
