// Figure 6 (performance shape): executing the Jacobi flowchart.
//
// The paper's DOALL annotations promise loop-level parallelism on a MIMD
// machine; here the schedule's DOALL loops run on the thread pool and we
// measure the speedup over the same schedule executed sequentially
// (honor_doall = false), across grid sizes and thread counts. The shape
// to observe: near-linear scaling for large grids, overhead-dominated
// behaviour for tiny ones.

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <cstdio>

#include "bench_common.hpp"

namespace {

using ps::bench::compile;
using ps::bench::fill_inputs;

void print_figure() {
  auto result = compile(ps::kRelaxationSource);
  printf("=== Figure 6 schedule under benchmark ===\n%s\n",
         ps::flowchart_to_string(result.primary->schedule.flowchart,
                                 *result.primary->graph)
             .c_str());
}

/// args: {M, threads}; threads == 0 means the sequential baseline.
void BM_JacobiSchedule(benchmark::State& state) {
  auto result = compile(ps::kRelaxationSource);
  const ps::CompiledModule& stage = *result.primary;
  int64_t m = state.range(0);
  int64_t threads = state.range(1);
  int64_t sweeps = 8;

  std::unique_ptr<ps::ThreadPool> pool;
  ps::InterpreterOptions options;
  if (threads > 0) {
    pool = std::make_unique<ps::ThreadPool>(static_cast<size_t>(threads));
    options.pool = pool.get();
  } else {
    options.honor_doall = false;
  }
  options.use_virtual_windows = true;
  options.virtual_dims = &stage.schedule.virtual_dims;

  ps::Interpreter interp(*stage.module, *stage.graph,
                         stage.schedule.flowchart,
                         ps::IntEnv{{"M", m}, {"maxK", sweeps}}, {}, options);
  fill_inputs(interp, *stage.module);

  for (auto _ : state) {
    interp.reset();
    interp.run();
    benchmark::DoNotOptimize(ps::bench::checksum(interp, "newA"));
  }
  state.counters["points"] = benchmark::Counter(
      static_cast<double>(m * m * sweeps),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_JacobiSchedule)
    ->ArgsProduct({{32, 128, 384}, {0, 1, 2, 4, 8, 16}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  if (!ps::bench::json_to_stdout(argc, argv)) {
    print_figure();
  }
  return ps::bench::run_benchmarks(argc, argv);
}
