#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>

#include "driver/compiler.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/interpreter.hpp"

namespace ps::bench {

/// Compile a bundled module or abort.
inline CompileResult compile(const char* source, CompileOptions options = {}) {
  Compiler compiler(options);
  CompileResult result = compiler.compile(source);
  if (!result.ok || !result.primary) {
    fprintf(stderr, "bench: compilation failed:\n%s\n",
            result.diagnostics.c_str());
    abort();
  }
  return result;
}

/// Fill every (non-scalar) input of an interpreter with a deterministic
/// pattern.
inline void fill_inputs(Interpreter& interp, const CheckedModule& module) {
  for (const DataItem& item : module.data) {
    if (item.cls != DataClass::Input || item.is_scalar()) continue;
    auto span = interp.array(item.name).raw();
    for (size_t i = 0; i < span.size(); ++i)
      span[i] = std::sin(static_cast<double>(i) * 0.37) * 4.0;
  }
}

/// Checksum of an output array (keeps the optimiser honest).
inline double checksum(const Interpreter& interp, const char* name) {
  double sum = 0;
  auto span = interp.array(name).raw();
  for (double v : span) sum += v;
  return sum;
}

}  // namespace ps::bench
