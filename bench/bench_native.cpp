// The native execution tier's perf surface, recorded as
// BENCH_native.json and gated by scripts/check_bench_regression.py:
//
//   * BM_NativeTier {M, tier}: the three-engine sweep on the same
//     Gauss-Seidel wavefront (0 = tree-walk, 1 = bytecode, 2 = native)
//     -- the end-to-end payoff of JIT-compiling the recurrence to
//     machine code;
//   * BM_NativeStripeAblation {M, stripes}: per-point kernel calls
//     (0) versus the batched stripe kernel (1) -- what amortising the
//     call and cursor overhead over a whole point range buys;
//   * BM_InterpreterTier {M, tier}: the same tier ladder on a plain
//     (non-wavefront) interpreted run -- tier 2 executes the whole
//     scheduled flowchart through one JIT'd module kernel
//     (emit_native_module via the shared EngineHost), tier 3 is the
//     same kernel's parallel form fanned across a four-worker pool
//     (psc_module_par slicing each parallelisable DOALL);
//   * BM_NativeColdStart: compile-included cost of a cold module
//     (every iteration re-runs `cc`; the cc_invocations counter proves
//     it);
//   * BM_NativeWarmStart: the same module loaded from the on-disk
//     shared-object cache (cc_invocations stays 0 -- warm sessions
//     never pay the compiler).

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "runtime/native_engine.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/wavefront.hpp"
#include "service/artifact_cache.hpp"

namespace {

using ps::bench::compile;

ps::CompileResult compile_exact() {
  ps::CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  return compile(ps::kGaussSeidelSource, options);
}

void fill(ps::NdArray& in, long m) {
  for (long i = 0; i <= m + 1; ++i)
    for (long j = 0; j <= m + 1; ++j)
      in.set(std::vector<int64_t>{i, j},
             static_cast<double>((i * 13 + j) % 17));
}

double run_once(const ps::CompileResult& result, long m,
                ps::WavefrontOptions opts) {
  ps::WavefrontRunner wave(*result.transformed->module, *result.transform,
                           *result.exact_nest,
                           ps::IntEnv{{"M", m}, {"maxK", 32}}, {}, opts);
  fill(wave.array("InitialA"), m);
  wave.run();
  return wave.array("newA").raw()[0];
}

// args: {M, tier} with 0 = tree-walk, 1 = bytecode, 2 = native (JIT
// compiled once, then reused from the in-process module cache -- the
// steady-state cost a warm session pays per run).
void BM_NativeTier(benchmark::State& state) {
  auto result = compile_exact();
  const long m = state.range(0);
  ps::WavefrontOptions opts;
  opts.engine = state.range(1) == 0   ? ps::EvalEngine::TreeWalk
                : state.range(1) == 1 ? ps::EvalEngine::Bytecode
                                      : ps::EvalEngine::Native;
  if (opts.engine == ps::EvalEngine::Native &&
      !ps::native_engine_available()) {
    state.SkipWithError("native tier unavailable");
    return;
  }
  for (auto _ : state) {
    double probe = run_once(result, m, opts);
    benchmark::DoNotOptimize(probe);
  }
}
BENCHMARK(BM_NativeTier)
    ->Args({64, 0})->Args({64, 1})->Args({64, 2})
    ->Args({128, 0})->Args({128, 1})->Args({128, 2})
    ->Unit(benchmark::kMillisecond);

// args: {M, stripes}: 0 calls the per-equation point kernel through
// the generic schedule walk, 1 drives the batched stripe kernel over
// whole point ranges (the call/cursor overhead amortisation axis).
void BM_NativeStripeAblation(benchmark::State& state) {
  if (!ps::native_engine_available()) {
    state.SkipWithError("native tier unavailable");
    return;
  }
  auto result = compile_exact();
  const long m = state.range(0);
  ps::WavefrontOptions opts;
  opts.engine = ps::EvalEngine::Native;
  opts.native_stripes = state.range(1) != 0;
  for (auto _ : state) {
    double probe = run_once(result, m, opts);
    benchmark::DoNotOptimize(probe);
  }
}
BENCHMARK(BM_NativeStripeAblation)
    ->Args({96, 0})->Args({96, 1})
    ->Unit(benchmark::kMillisecond);

// args: {M, tier} with 0 = tree-walk, 1 = bytecode, 2 = native,
// 3 = native parallel: the interpreter arm of the ladder. A plain
// (non-hyperplane) compile of the same Gauss-Seidel module runs
// through the flowchart Interpreter; on tier 2 the whole flowchart
// executes as one JIT'd module kernel (compiled once, then reused from
// the in-process cache -- the warm per-run cost, like BM_NativeTier);
// tier 3 runs the parallel form of that kernel across a four-worker
// pool, each worker driving psc_module_site over its slice of every
// parallelisable DOALL.
void BM_InterpreterTier(benchmark::State& state) {
  auto result = compile(ps::kGaussSeidelSource, {});
  const long m = state.range(0);
  ps::ThreadPool pool(4);
  ps::InterpreterOptions opts;
  opts.engine = state.range(1) == 0   ? ps::EvalEngine::TreeWalk
                : state.range(1) == 1 ? ps::EvalEngine::Bytecode
                                      : ps::EvalEngine::Native;
  if (state.range(1) == 3) {
    opts.pool = &pool;
    opts.native_threads = 4;
  }
  if (opts.engine == ps::EvalEngine::Native &&
      !ps::native_engine_available()) {
    state.SkipWithError("native tier unavailable");
    return;
  }
  for (auto _ : state) {
    ps::Interpreter interp(*result.primary->module, *result.primary->graph,
                           result.primary->schedule.flowchart,
                           ps::IntEnv{{"M", m}, {"maxK", 32}}, {}, opts);
    if (interp.engine() != opts.engine) {
      state.SkipWithError(("fell back: " + interp.fallback_reason()).c_str());
      return;
    }
    ps::bench::fill_inputs(interp, *result.primary->module);
    interp.run();
    double probe = interp.array("newA").raw()[0];
    benchmark::DoNotOptimize(probe);
  }
}
BENCHMARK(BM_InterpreterTier)
    ->Args({64, 0})->Args({64, 1})->Args({64, 2})->Args({64, 3})
    ->Args({128, 0})->Args({128, 1})->Args({128, 2})->Args({128, 3})
    ->Unit(benchmark::kMillisecond);

// Cold start: every iteration drops the in-process module cache and
// runs without an object store, so the wavefront pays emit + `cc` +
// dlopen + run. The cc_invocations counter confirms one compile per
// iteration; compile_ms records what the JIT itself cost.
void BM_NativeColdStart(benchmark::State& state) {
  if (!ps::native_engine_available()) {
    state.SkipWithError("native tier unavailable");
    return;
  }
  auto result = compile_exact();
  ps::WavefrontOptions opts;
  opts.engine = ps::EvalEngine::Native;
  const int64_t before = ps::native_cc_invocations();
  double compile_ms = 0;
  for (auto _ : state) {
    ps::native_engine_clear_in_process_cache();
    ps::WavefrontRunner wave(*result.transformed->module, *result.transform,
                             *result.exact_nest,
                             ps::IntEnv{{"M", 64}, {"maxK", 32}}, {}, opts);
    fill(wave.array("InitialA"), 64);
    wave.run();
    compile_ms = wave.stats().native_compile_ms;
    double probe = wave.array("newA").raw()[0];
    benchmark::DoNotOptimize(probe);
  }
  state.counters["cc_invocations"] = benchmark::Counter(
      static_cast<double>(ps::native_cc_invocations() - before));
  state.counters["compile_ms"] = benchmark::Counter(compile_ms);
}
BENCHMARK(BM_NativeColdStart)->Unit(benchmark::kMillisecond);

// Warm start: the shared object sits in an on-disk ArtifactCache and
// the in-process cache is dropped each iteration, so every run path is
// lookup + dlopen + run -- `cc` never runs (cc_invocations must be 0).
void BM_NativeWarmStart(benchmark::State& state) {
  if (!ps::native_engine_available()) {
    state.SkipWithError("native tier unavailable");
    return;
  }
  auto result = compile_exact();
  std::string dir = std::filesystem::temp_directory_path() /
                    ("psc_bench_native_" + std::to_string(getpid()));
  ps::ArtifactCacheOptions cache_options;
  cache_options.dir = dir;
  ps::ArtifactCache cache{cache_options};
  ps::WavefrontOptions opts;
  opts.engine = ps::EvalEngine::Native;
  opts.native_store = &cache;
  // Prime the disk cache outside the timed loop.
  ps::native_engine_clear_in_process_cache();
  benchmark::DoNotOptimize(run_once(result, 64, opts));
  const int64_t before = ps::native_cc_invocations();
  bool cache_hit = false;
  for (auto _ : state) {
    ps::native_engine_clear_in_process_cache();
    ps::WavefrontRunner wave(*result.transformed->module, *result.transform,
                             *result.exact_nest,
                             ps::IntEnv{{"M", 64}, {"maxK", 32}}, {}, opts);
    fill(wave.array("InitialA"), 64);
    wave.run();
    cache_hit = wave.stats().native_cache_hit;
    double probe = wave.array("newA").raw()[0];
    benchmark::DoNotOptimize(probe);
  }
  state.counters["cc_invocations"] = benchmark::Counter(
      static_cast<double>(ps::native_cc_invocations() - before));
  state.counters["cache_hit"] =
      benchmark::Counter(cache_hit ? 1.0 : 0.0);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_NativeWarmStart)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (!ps::bench::json_to_stdout(argc, argv)) {
    if (ps::native_engine_available()) {
      printf("=== native tier ===\ncompiler fingerprint: %s\n\n",
             ps::native_cc_fingerprint().c_str());
    } else {
      printf("=== native tier unavailable: %s ===\n\n",
             ps::native_engine_unavailable_reason().c_str());
    }
  }
  return ps::bench::run_benchmarks(argc, argv);
}
