// Section 4 machinery: the least-time-function solver and the unimodular
// completion, on the paper's instance and on synthetic dependence sets of
// growing dimension/count.

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <cstdio>
#include <random>

#include "support/matrix.hpp"
#include "transform/time_function.hpp"

namespace {

std::vector<std::vector<int64_t>> paper_deps() {
  return {{1, 0, 0}, {0, 0, 1}, {0, 1, 0}, {1, 0, -1}, {1, -1, 0}};
}

void print_derivation() {
  printf("=== Section 4: dependence inequalities and their solution ===\n");
  printf("dependences: (1,0,0) (0,0,1) (0,1,0) (1,0,-1) (1,-1,0)\n");
  auto t = ps::solve_time_function(paper_deps());
  printf("least time function: t = %lldK + %lldI + %lldJ  (paper: 2K+I+J)\n",
         static_cast<long long>((*t)[0]), static_cast<long long>((*t)[1]),
         static_cast<long long>((*t)[2]));
  auto m = ps::unimodular_completion(*t);
  printf("unimodular completion T =\n%s\n", m->to_string().c_str());
  auto inv = m->integer_inverse();
  printf("T^-1 =\n%s\n\n", inv->to_string().c_str());
}

void BM_SolvePaperInstance(benchmark::State& state) {
  auto deps = paper_deps();
  for (auto _ : state) {
    auto t = ps::solve_time_function(deps);
    benchmark::DoNotOptimize(t.has_value());
  }
}
BENCHMARK(BM_SolvePaperInstance);

/// Random feasible dependence sets: all vectors lexicographically
/// positive, components in [-2, 2]. args: {dims, count}.
void BM_SolveRandomFeasible(benchmark::State& state) {
  size_t dims = static_cast<size_t>(state.range(0));
  size_t count = static_cast<size_t>(state.range(1));
  std::mt19937 rng(42);
  std::uniform_int_distribution<int64_t> comp(-2, 2);
  std::vector<std::vector<std::vector<int64_t>>> instances;
  for (int i = 0; i < 16; ++i) {
    std::vector<std::vector<int64_t>> deps;
    while (deps.size() < count) {
      std::vector<int64_t> d(dims);
      for (auto& v : d) v = comp(rng);
      // Keep lexicographically positive vectors: a feasible instance.
      auto it = std::find_if(d.begin(), d.end(),
                             [](int64_t v) { return v != 0; });
      if (it == d.end() || *it < 0) continue;
      deps.push_back(std::move(d));
    }
    instances.push_back(std::move(deps));
  }
  size_t next = 0;
  for (auto _ : state) {
    auto t = ps::solve_time_function(instances[next]);
    benchmark::DoNotOptimize(t.has_value());
    next = (next + 1) % instances.size();
  }
}
BENCHMARK(BM_SolveRandomFeasible)
    ->ArgsProduct({{2, 3, 4}, {2, 8, 32}})
    ->Unit(benchmark::kMicrosecond);

void BM_UnimodularCompletion(benchmark::State& state) {
  std::vector<int64_t> row{2, 1, 1};
  for (auto _ : state) {
    auto m = ps::unimodular_completion(row);
    benchmark::DoNotOptimize(m.has_value());
  }
}
BENCHMARK(BM_UnimodularCompletion);

void BM_GcdCompletionFallback(benchmark::State& state) {
  std::vector<int64_t> row{6, 10, 15};  // gcd 1, no unit coefficient
  for (auto _ : state) {
    auto m = ps::unimodular_completion(row);
    benchmark::DoNotOptimize(m.has_value());
  }
}
BENCHMARK(BM_GcdCompletionFallback);

}  // namespace

int main(int argc, char** argv) {
  if (!ps::bench::json_to_stdout(argc, argv)) {
    print_derivation();
  }
  return ps::bench::run_benchmarks(argc, argv);
}
