// Figure 5: the component graph and per-component flowcharts of the
// Relaxation module, plus Figure 6 (its full flowchart).
//
// Prints both tables, then benchmarks the scheduling phase itself.

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <cstdio>
#include <sstream>

#include "bench_common.hpp"
#include "core/scheduler.hpp"
#include "support/text_table.hpp"

namespace {

void print_figures() {
  auto result = ps::bench::compile(ps::kRelaxationSource);
  const ps::CompiledModule& stage = *result.primary;

  printf("=== Figure 5: component graph and corresponding flowchart ===\n");
  ps::TextTable table({"Component", "Node(s)", "Flowchart"});
  for (size_t i = 0; i < stage.schedule.components.size(); ++i) {
    const auto& comp = stage.schedule.components[i];
    std::string names;
    for (size_t j = 0; j < comp.nodes.size(); ++j) {
      if (j) names += ", ";
      names += stage.graph->node(comp.nodes[j]).name;
    }
    table.add_row({std::to_string(i + 1), names,
                   ps::flowchart_to_line(comp.flowchart, *stage.graph)});
  }
  printf("%s\n", table.render().c_str());

  printf("=== Figure 6: flowchart for the Relaxation module ===\n%s\n",
         ps::flowchart_to_string(stage.schedule.flowchart, *stage.graph)
             .c_str());

  printf("=== Virtual dimensions (section 3.4) ===\n");
  for (const auto& [name, dims] : stage.schedule.virtual_dims) {
    for (size_t d = 0; d < dims.size(); ++d) {
      if (!dims[d].is_virtual) continue;
      printf("  %s dimension %zu: virtual, window %lld\n", name.c_str(),
             d + 1, static_cast<long long>(dims[d].window));
    }
  }
  printf("\n");
}

void BM_ScheduleRelaxation(benchmark::State& state) {
  auto result = ps::bench::compile(ps::kRelaxationSource);
  const ps::DepGraph& graph = *result.primary->graph;
  for (auto _ : state) {
    ps::Scheduler scheduler(graph);
    auto schedule = scheduler.run();
    benchmark::DoNotOptimize(schedule.ok);
  }
}
BENCHMARK(BM_ScheduleRelaxation);

void BM_ScheduleSyntheticChain(benchmark::State& state) {
  // A pipeline of n pointwise stages: scheduling is near-linear in the
  // number of equations.
  int64_t n = state.range(0);
  std::ostringstream os;
  os << "Gen: module (x: array[I] of real; n: int): [y: array[I] of real];\n"
     << "type I = 0 .. n;\nvar\n";
  for (int64_t i = 0; i < n; ++i)
    os << "  a" << i << ": array [I] of real;\n";
  os << "define\n";
  for (int64_t i = 0; i < n; ++i) {
    std::string prev = i == 0 ? "x" : "a" + std::to_string(i - 1);
    os << "  a" << i << "[I] = " << prev << "[I] + 1.0;\n";
  }
  os << "  y[I] = a" << (n - 1) << "[I];\nend Gen;\n";
  auto result = ps::bench::compile(os.str().c_str());
  const ps::DepGraph& graph = *result.primary->graph;
  for (auto _ : state) {
    ps::Scheduler scheduler(graph);
    auto schedule = scheduler.run();
    benchmark::DoNotOptimize(schedule.ok);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ScheduleSyntheticChain)->Range(4, 256)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  if (!ps::bench::json_to_stdout(argc, argv)) {
    print_figures();
  }
  return ps::bench::run_benchmarks(argc, argv);
}
