// Microbenchmarks for the bytecode execution core, the hot path of
// every runtime engine in the repo:
//
//   * BM_BytecodeDispatch -- the Gauss-Seidel stencil RHS under the
//     direct-threaded (computed-goto) dispatcher vs the portable
//     switch loop; the gap is the per-instruction dispatch overhead
//     the threaded table removes.
//   * BM_Superinstructions -- the same program with the peephole
//     superinstruction fusion on vs off (both direct-threaded); the
//     gap is what fusing LoadVar+PushInt+AddI index arithmetic,
//     compare+branch pairs and whole LoadArray subscript chains buys.
//   * BM_DeepNestVars -- a 12-variable frame, past the 8-slot inline
//     buffer, exercising the thread-local spill path that replaced the
//     old hard `kMaxVars = 8` limit.
//
// The macro-level payoff (whole wavefront runs per engine) stays in
// bench_exact_bounds' BM_WavefrontRunner bytecode axis.

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/const_eval.hpp"
#include "runtime/eval_core.hpp"

namespace {

using ps::BcDispatch;
using ps::BcProgram;
using ps::EvalCore;
using ps::VarFrame;

struct StencilFixture {
  ps::CompileResult compiled;
  std::map<std::string, ps::NdArray, std::less<>> arrays;
  EvalCore core;
  BcProgram unfused_rhs;  // folded but not superinstruction-fused

  StencilFixture() : compiled(ps::bench::compile(ps::kGaussSeidelSource)) {
    const ps::CheckedModule& module = *compiled.primary->module;
    ps::IntEnv params{{"M", 64}, {"maxK", 8}};
    for (const ps::DataItem& d : module.data) {
      if (d.is_scalar()) continue;
      std::vector<int64_t> lo, hi, win;
      for (const ps::Type* dim : d.dims) {
        lo.push_back(*ps::eval_const_int(*dim->lo, params));
        hi.push_back(*ps::eval_const_int(*dim->hi, params));
        win.push_back(hi.back() - lo.back() + 1);
      }
      arrays.emplace(d.name, ps::NdArray(std::move(lo), std::move(hi),
                                         std::move(win)));
    }
    core.compile(module);
    core.bind_arrays(arrays);
    for (size_t i = 0; i < module.data.size(); ++i) {
      auto it = params.find(module.data[i].name);
      if (it != params.end())
        core.set_scalar(i, it->second,
                        static_cast<double>(it->second));
    }
    for (auto& [name, array] : arrays) {
      auto span = array.raw();
      for (size_t i = 0; i < span.size(); ++i)
        span[i] = static_cast<double>(i % 23) * 0.125;
    }
    // Equation 3 is the stencil recurrence; rebuild its RHS without the
    // fusion pass for the superinstruction ablation.
    unfused_rhs = ps::compile_expr(*module.equations[2].rhs, module,
                                   core.layout());
    ps::fold_constants(unfused_rhs);
  }

  /// An interior point: the guard chain fails all four boundary tests
  /// and the full four-read stencil arm executes.
  [[nodiscard]] VarFrame interior_frame() const {
    VarFrame frame;
    frame.vars.emplace_back("K", 3);
    frame.vars.emplace_back("I", 30);
    frame.vars.emplace_back("J", 31);
    return frame;
  }
};

StencilFixture& fixture() {
  static StencilFixture instance;
  return instance;
}

// arg 0: dispatch (0 = direct-threaded, 1 = portable switch).
void BM_BytecodeDispatch(benchmark::State& state) {
  StencilFixture& f = fixture();
  f.core.set_dispatch(state.range(0) == 0 ? BcDispatch::Threaded
                                          : BcDispatch::Switch);
  const BcProgram& rhs = f.core.programs(2).rhs;
  VarFrame frame = f.interior_frame();
  ps::EvalScratch scratch;
  for (auto _ : state) {
    ps::EvalSlot slot = f.core.run(rhs, frame, scratch);
    benchmark::DoNotOptimize(slot.d);
  }
  f.core.set_dispatch(BcDispatch::Threaded);
  state.counters["evals_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BytecodeDispatch)->Arg(0)->Arg(1);

// arg 0: superinstruction fusion (0 = fused, 1 = unfused), both under
// the default (threaded where available) dispatcher.
void BM_Superinstructions(benchmark::State& state) {
  StencilFixture& f = fixture();
  const BcProgram& rhs =
      state.range(0) == 0 ? f.core.programs(2).rhs : f.unfused_rhs;
  VarFrame frame = f.interior_frame();
  ps::EvalScratch scratch;
  for (auto _ : state) {
    ps::EvalSlot slot = f.core.run(rhs, frame, scratch);
    benchmark::DoNotOptimize(slot.d);
  }
  state.counters["evals_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Superinstructions)->Arg(0)->Arg(1);

// arg 0: windowed-addressing strength reduction in the fused array
// reads (0 = reduced: fused bounds check + offset, wrap modulo hoisted
// because window == extent; 1 = generic in_bounds + offset with the
// per-dimension wrap test). The fixture's arrays are fully allocated,
// so the gap is exactly what hoisting the modulo buys per stencil read.
void BM_ArrayAddressing(benchmark::State& state) {
  StencilFixture& f = fixture();
  f.core.set_reduced_addressing(state.range(0) == 0);
  const BcProgram& rhs = f.core.programs(2).rhs;
  VarFrame frame = f.interior_frame();
  ps::EvalScratch scratch;
  for (auto _ : state) {
    ps::EvalSlot slot = f.core.run(rhs, frame, scratch);
    benchmark::DoNotOptimize(slot.d);
  }
  f.core.set_reduced_addressing(true);
  state.counters["evals_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ArrayAddressing)->Arg(0)->Arg(1);

// arg 0: scalar quickening (0 = quickened: bound input scalars
// rewritten to immediates and re-folded/re-fused, 1 = plain slot
// loads). Uses a private core so the other fixtures keep the
// unquickened programs.
void BM_QuickenedScalars(benchmark::State& state) {
  StencilFixture& f = fixture();
  const ps::CheckedModule& module = *f.compiled.primary->module;
  EvalCore core;
  core.compile(module);
  core.bind_arrays(f.arrays);
  ps::IntEnv params{{"M", 64}, {"maxK", 8}};
  for (size_t i = 0; i < module.data.size(); ++i) {
    auto it = params.find(module.data[i].name);
    if (it != params.end())
      core.set_scalar(i, it->second, static_cast<double>(it->second));
  }
  if (state.range(0) == 0) core.quicken_scalars();
  const BcProgram& rhs = core.programs(2).rhs;
  VarFrame frame = f.interior_frame();
  ps::EvalScratch scratch;
  for (auto _ : state) {
    ps::EvalSlot slot = core.run(rhs, frame, scratch);
    benchmark::DoNotOptimize(slot.d);
  }
  state.counters["evals_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_QuickenedScalars)->Arg(0)->Arg(1);

// A 12-variable frame: resolves through the thread-local spill buffer
// (the inline frame holds 8), the path that replaced the old hard
// kMaxVars limit and its silent tree-walk fallback.
void BM_DeepNestVars(benchmark::State& state) {
  BcProgram program;
  VarFrame frame;
  const size_t vars = 12;
  // Reserve up front: frame.vars holds string_views into var_names, so
  // the vector must not reallocate (SSO strings move their buffers).
  program.var_names.reserve(vars);
  for (size_t v = 0; v < vars; ++v) {
    std::string name = "v" + std::to_string(v);
    program.var_names.push_back(name);
    frame.vars.emplace_back(program.var_names.back(), // name outlives frame
                            static_cast<int64_t>(v * 3 + 1));
    ps::BcInstr load{ps::BcOp::LoadVar, static_cast<int32_t>(v), 0, 0, 0};
    program.code.push_back(load);
    if (v > 0) program.code.push_back(ps::BcInstr{ps::BcOp::AddI, 0, 0, 0, 0});
  }
  program.code.push_back(ps::BcInstr{ps::BcOp::Halt, 0, 0, 0, 0});
  program.max_stack = vars;
  EvalCore core;
  ps::EvalScratch scratch;
  for (auto _ : state) {
    ps::EvalSlot slot = core.run(program, frame, scratch);
    benchmark::DoNotOptimize(slot.i);
  }
  state.counters["evals_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DeepNestVars);

}  // namespace

int main(int argc, char** argv) {
  return ps::bench::run_benchmarks(argc, argv);
}
