// Figure 7 + section 4 (the paper's headline result, performance shape):
//
//   * the revised relaxation schedules fully iteratively
//     (DO K (DO I (DO J))) -- Figure 7;
//   * after the hyperplane transform (K' = 2K + I + J; I' = K; J' = I)
//     the rescheduled module has DOALL inner loops, the same shape as
//     Figure 6;
//   * executing both, the transformed wavefront beats the sequential
//     original once the grid is large enough to amortise the bounding-box
//     and synchronisation overheads -- who wins and where the crossover
//     falls is the reproduction target, not absolute numbers.

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

namespace {

using ps::bench::compile;
using ps::bench::fill_inputs;

ps::CompileResult& transformed() {
  static ps::CompileResult result = [] {
    ps::CompileOptions options;
    options.apply_hyperplane = true;
    return compile(ps::kGaussSeidelSource, options);
  }();
  return result;
}

void print_figure() {
  auto& result = transformed();
  printf("=== Figure 7: flowchart with revised eq.3 ===\n%s\n",
         ps::flowchart_to_string(result.primary->schedule.flowchart,
                                 *result.primary->graph)
             .c_str());
  printf("=== Section 4 transform ===\n%s\n",
         result.transform->describe().c_str());
  printf("=== Rescheduled transformed module (shape of Figure 6) ===\n%s\n",
         ps::flowchart_to_string(result.transformed->schedule.flowchart,
                                 *result.transformed->graph)
             .c_str());
}

/// Sequential execution of the iterative Gauss-Seidel schedule.
void BM_GaussSeidelSequential(benchmark::State& state) {
  auto& result = transformed();
  const ps::CompiledModule& stage = *result.primary;
  int64_t m = state.range(0);
  int64_t sweeps = std::max<int64_t>(4, m / 2);
  ps::Interpreter interp(*stage.module, *stage.graph,
                         stage.schedule.flowchart,
                         ps::IntEnv{{"M", m}, {"maxK", sweeps}});
  fill_inputs(interp, *stage.module);
  for (auto _ : state) {
    interp.reset();
    interp.run();
    benchmark::DoNotOptimize(ps::bench::checksum(interp, "newA"));
  }
}
BENCHMARK(BM_GaussSeidelSequential)
    ->Arg(32)
    ->Arg(96)
    ->Arg(160)
    ->Unit(benchmark::kMillisecond);

/// The hyperplane-transformed module: outer DO over hyperplanes, DOALL
/// inner loops on the pool. threads == 0: transformed but sequential
/// (isolates the bounding-box overhead from the parallel win).
void BM_GaussSeidelHyperplane(benchmark::State& state) {
  auto& result = transformed();
  const ps::CompiledModule& stage = *result.transformed;
  int64_t m = state.range(0);
  int64_t threads = state.range(1);
  // Hyperplane slabs are maxK x (M+2) points; scale the sweep count with
  // the grid so the parallelism (and the crossover) is visible.
  int64_t sweeps = std::max<int64_t>(4, m / 2);

  std::unique_ptr<ps::ThreadPool> pool;
  ps::InterpreterOptions options;
  if (threads > 0) {
    pool = std::make_unique<ps::ThreadPool>(static_cast<size_t>(threads));
    options.pool = pool.get();
  } else {
    options.honor_doall = false;
  }
  ps::Interpreter interp(*stage.module, *stage.graph,
                         stage.schedule.flowchart,
                         ps::IntEnv{{"M", m}, {"maxK", sweeps}}, {}, options);
  fill_inputs(interp, *stage.module);
  for (auto _ : state) {
    interp.reset();
    interp.run();
    benchmark::DoNotOptimize(ps::bench::checksum(interp, "newA"));
  }
}
BENCHMARK(BM_GaussSeidelHyperplane)
    ->ArgsProduct({{32, 96, 160}, {0, 4, 8, 16}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  if (!ps::bench::json_to_stdout(argc, argv)) {
    print_figure();
  }
  return ps::bench::run_benchmarks(argc, argv);
}
