// Section 3.4 / section 4 (memory): virtual dimensions.
//
// Prints the allocation comparison the paper makes -- the Jacobi A needs
// a window of 2 grids instead of maxK grids; the transformed A' needs
// 3 x maxK x M elements (window 3 over hyperplanes) versus the iterative
// version's 2 x M x M -- then benchmarks execution with and without
// windowed storage (the shape: windowing does not slow execution and
// shrinks footprint dramatically as maxK grows).

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <cstdio>

#include "bench_common.hpp"

namespace {

using ps::bench::compile;
using ps::bench::fill_inputs;

void print_table() {
  auto result = compile(ps::kRelaxationSource);
  const auto& vd = result.primary->schedule.virtual_dims.at("A");
  printf("=== Section 3.4: virtual dimension of A ===\n");
  printf("dimension 1 virtual: %s, window %lld (paper: window two)\n",
         vd[0].is_virtual ? "yes" : "no",
         static_cast<long long>(vd[0].window));

  ps::CompileOptions options;
  options.apply_hyperplane = true;
  auto gs = compile(ps::kGaussSeidelSource, options);
  const auto& tvd = gs.transformed->schedule.virtual_dims.at("A'");
  printf("transformed A' dimension 1 window (within recurrence): %lld "
         "(paper: three)\n\n",
         static_cast<long long>(tvd[0].component_window));

  printf("allocation for M x M grids, maxK sweeps (doubles):\n");
  printf("%8s %8s %16s %16s %16s\n", "M", "maxK", "A full", "A window 2",
         "A' window 3 (3*maxK*M)");
  for (long m : {64L, 256L}) {
    for (long k : {8L, 64L, 512L}) {
      long full = k * (m + 2) * (m + 2);
      long window2 = 2 * (m + 2) * (m + 2);
      long window3 = 3 * k * m;  // the paper's 3 x maxK x M figure
      printf("%8ld %8ld %16ld %16ld %16ld\n", m, k, full, window2, window3);
    }
  }
  printf("\n");
}

/// args: {M, maxK, windowed}.
void BM_JacobiStorage(benchmark::State& state) {
  auto result = compile(ps::kRelaxationSource);
  const ps::CompiledModule& stage = *result.primary;
  int64_t m = state.range(0);
  int64_t sweeps = state.range(1);
  bool windowed = state.range(2) != 0;

  ps::InterpreterOptions options;
  options.use_virtual_windows = windowed;
  options.virtual_dims = &stage.schedule.virtual_dims;
  ps::Interpreter interp(*stage.module, *stage.graph,
                         stage.schedule.flowchart,
                         ps::IntEnv{{"M", m}, {"maxK", sweeps}}, {}, options);
  fill_inputs(interp, *stage.module);
  for (auto _ : state) {
    interp.reset();
    interp.run();
    benchmark::DoNotOptimize(ps::bench::checksum(interp, "newA"));
  }
  state.counters["alloc_doubles"] = benchmark::Counter(
      static_cast<double>(interp.allocated_doubles()));
}
BENCHMARK(BM_JacobiStorage)
    ->ArgsProduct({{64, 128}, {8, 32}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (!ps::bench::json_to_stdout(argc, argv)) {
    print_table();
  }
  return ps::bench::run_benchmarks(argc, argv);
}
