// The telemetry layer's perf surface, recorded as BENCH_telemetry.json
// and gated by scripts/check_bench_regression.py:
//
//   * BM_TelemetryOverhead/disabled: a TraceSpan construct+destroy pair
//     while tracing is off -- the cost every instrumented hot path pays
//     on a normal run. The contract is "one relaxed atomic load",
//     i.e. ~1 ns; this bench is what holds the line on it.
//   * BM_TelemetryOverhead/enabled: the same span with tracing on --
//     two clock reads plus a lock-free ring-buffer append.
//   * BM_TimedSpanFinish: the TimedSpan used by the timing-dedup paths
//     (pass timings, batch units, service wall_ms). Always reads the
//     clock, so this is the floor --time-passes pays span-by-span.
//   * BM_CounterAdd / BM_HistogramRecord: the MetricsRegistry
//     primitives on cached handles, as the instrumented code holds
//     them (one relaxed fetch_add; bucket index + two CAS loops).
//   * BM_RegistryLookup: counter() resolution by name -- the cost of
//     NOT caching the handle, kept visible so instrumentation authors
//     know when to hoist.

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <string>

#include "support/telemetry.hpp"

namespace {

void BM_TelemetryOverhead(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  if (enabled)
    ps::TraceSession::global().enable();
  else
    ps::TraceSession::global().disable();
  for (auto _ : state) {
    ps::TraceSpan span("bench-span", "bench");
    benchmark::DoNotOptimize(&span);
  }
  if (enabled) {
    ps::TraceSession::global().disable();
    ps::TraceSession::global().clear();
  }
  state.SetLabel(enabled ? "enabled" : "disabled");
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kNanosecond);

void BM_TimedSpanFinish(benchmark::State& state) {
  ps::TraceSession::global().disable();
  double sink = 0.0;
  for (auto _ : state) {
    ps::TimedSpan span("bench-timed", "bench");
    sink += span.finish_ms();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_TimedSpanFinish)->Unit(benchmark::kNanosecond);

void BM_CounterAdd(benchmark::State& state) {
  ps::Counter& counter =
      ps::MetricsRegistry::global().counter("bench.counter");
  for (auto _ : state) counter.add(1);
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterAdd)->Unit(benchmark::kNanosecond);

void BM_HistogramRecord(benchmark::State& state) {
  ps::Histogram& histogram =
      ps::MetricsRegistry::global().histogram("bench.histogram_ms");
  double sample = 0.0;
  for (auto _ : state) {
    histogram.record(sample);
    sample += 0.001;
    if (sample > 50.0) sample = 0.0;
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramRecord)->Unit(benchmark::kNanosecond);

void BM_RegistryLookup(benchmark::State& state) {
  ps::MetricsRegistry& registry = ps::MetricsRegistry::global();
  for (auto _ : state) {
    ps::Counter& counter = registry.counter("bench.lookup.counter");
    benchmark::DoNotOptimize(&counter);
  }
}
BENCHMARK(BM_RegistryLookup)->Unit(benchmark::kNanosecond);

}  // namespace

int main(int argc, char** argv) {
  if (!ps::bench::json_to_stdout(argc, argv))
    printf("=== telemetry overhead ===\n\n");
  return ps::bench::run_benchmarks(argc, argv);
}
