// Compiler-throughput benchmarks: the full pipeline (parse -> sema ->
// graph -> schedule -> C emission) on the paper's modules and on
// synthetic programs of growing size, plus the loop-merge ablation.

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <cstdio>
#include <sstream>

#include "bench_common.hpp"

namespace {

void BM_CompileRelaxation(benchmark::State& state) {
  ps::Compiler compiler;
  for (auto _ : state) {
    auto result = compiler.compile(ps::kRelaxationSource);
    benchmark::DoNotOptimize(result.ok);
  }
}
BENCHMARK(BM_CompileRelaxation)->Unit(benchmark::kMicrosecond);

void BM_CompileWithHyperplane(benchmark::State& state) {
  ps::CompileOptions options;
  options.apply_hyperplane = true;
  ps::Compiler compiler(options);
  for (auto _ : state) {
    auto result = compiler.compile(ps::kGaussSeidelSource);
    benchmark::DoNotOptimize(result.transformed.has_value());
  }
}
BENCHMARK(BM_CompileWithHyperplane)->Unit(benchmark::kMicrosecond);

std::string synthetic_module(int64_t stages) {
  std::ostringstream os;
  os << "Gen: module (x: array[I] of real; n: int; s: int): "
        "[y: array[I] of real];\n"
     << "type T = 1 .. s; I = 0 .. n;\nvar\n";
  for (int64_t i = 0; i < stages; ++i) {
    if (i % 3 == 2)
      os << "  a" << i << ": array [T] of array [I] of real;\n";
    else
      os << "  a" << i << ": array [I] of real;\n";
  }
  os << "define\n";
  // Stage i is a time recurrence iff i % 3 == 2 (matching the var
  // declarations above); reading a recurrence stage takes its last slice.
  auto value_of = [](int64_t i) {
    return i % 3 == 2 ? "a" + std::to_string(i) + "[s, I]"
                      : "a" + std::to_string(i) + "[I]";
  };
  for (int64_t i = 0; i < stages; ++i) {
    std::string prev = i == 0 ? "x[I]" : value_of(i - 1);
    if (i % 3 == 2) {
      os << "  a" << i << "[T, I] = if T = 1 then " << prev << " else a" << i
         << "[T-1, I] * 0.5;\n";
    } else {
      os << "  a" << i << "[I] = " << prev << " + 1.0;\n";
    }
  }
  os << "  y[I] = " << value_of(stages - 1) << ";\nend Gen;\n";
  return os.str();
}

void BM_CompileSynthetic(benchmark::State& state) {
  std::string source = synthetic_module(state.range(0));
  // Validate once.
  {
    ps::Compiler compiler;
    auto result = compiler.compile(source);
    if (!result.ok) {
      state.SkipWithError(("synthetic module failed: " +
                           result.diagnostics).c_str());
      return;
    }
  }
  ps::Compiler compiler;
  for (auto _ : state) {
    auto result = compiler.compile(source);
    benchmark::DoNotOptimize(result.ok);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompileSynthetic)->Range(4, 128)->Complexity()
    ->Unit(benchmark::kMicrosecond);

void BM_LoopMergeAblation(benchmark::State& state) {
  bool merge = state.range(0) != 0;
  ps::CompileOptions options;
  options.merge_loops = merge;
  ps::Compiler compiler(options);
  std::string source = synthetic_module(64);
  for (auto _ : state) {
    auto result = compiler.compile(source);
    benchmark::DoNotOptimize(result.ok);
  }
}
BENCHMARK(BM_LoopMergeAblation)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return ps::bench::run_benchmarks(argc, argv);
}
