// Experiment A4 / P2-exact: Lamport's exact loop bounds close the gap
// the guarded bounding-box rewrite leaves open (EXPERIMENTS.md records
// the honest negative for the rectangular version: its ~(2 + 2maxK/M)x
// guard work loses to sequential Gauss-Seidel in optimised C).
//
// Three substrates are compared on the transformed Gauss-Seidel module:
//   1. point counts: bounding box vs exact Fourier-Motzkin scan;
//   2. the flowchart interpreter: guarded vs exact vs the windowed
//      wavefront runner (rotate/unrotate, window 3);
//   3. generated C under cc -O2 -fopenmp: sequential original vs
//      transformed with guards vs transformed with exact bounds.

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "runtime/wavefront.hpp"
#include "transform/polyhedron.hpp"

namespace {

using ps::bench::compile;

ps::CompileResult compile_exact() {
  ps::CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  return compile(ps::kGaussSeidelSource, options);
}

void print_point_counts() {
  auto result = compile_exact();
  printf("=== A4.1: iteration points, bounding box vs exact scan ===\n");
  printf("%6s %6s | %12s %12s | %7s\n", "M", "maxK", "bounding box",
         "exact image", "ratio");
  for (auto [m, sweeps] : {std::pair<long, long>{64, 32},
                           {128, 64}, {256, 128}, {256, 512}}) {
    ps::IntEnv params{{"M", m}, {"maxK", sweeps}};
    long long bbox = static_cast<long long>(2 * sweeps + 2 * m + 1) * sweeps *
                     (m + 2);
    long long exact =
        ps::count_loop_nest_points(*result.exact_nest, params);
    printf("%6ld %6ld | %12lld %12lld | %6.2fx\n", m, sweeps, bbox, exact,
           static_cast<double>(bbox) / static_cast<double>(exact));
  }
  printf("(exact = maxK*(M+2)^2, the image lattice; the bounding box\n"
         " pays the ~(2 + 2*maxK/M)x blow-up in guard evaluations)\n\n");
}

double time_once(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void fill(ps::NdArray& in, long m) {
  for (long i = 0; i <= m + 1; ++i)
    for (long j = 0; j <= m + 1; ++j)
      in.set(std::vector<int64_t>{i, j}, static_cast<double>((i * 13 + j) % 17));
}

double checksum(const ps::NdArray& out, long m) {
  double sum = 0;
  for (long i = 0; i <= m + 1; ++i)
    for (long j = 0; j <= m + 1; ++j)
      sum += out.at(std::vector<int64_t>{i, j}) * static_cast<double>(i + j + 1);
  return sum;
}

void print_interpreter_table() {
  auto result = compile_exact();
  const ps::CompiledModule& t = *result.transformed;
  ps::ThreadPool pool;

  printf("=== A4.2: interpreter, transformed Gauss-Seidel (%zu threads) ===\n",
         pool.size());
  printf("%6s %6s | %10s %10s %10s | %10s\n", "M", "maxK", "guarded ms",
         "exact ms", "wavefrt ms", "wave mem");
  for (auto [m, sweeps] : {std::pair<long, long>{96, 48}, {192, 64}}) {
    ps::IntEnv params{{"M", m}, {"maxK", sweeps}};

    ps::InterpreterOptions guarded_opts;
    guarded_opts.pool = &pool;
    ps::Interpreter guarded(*t.module, *t.graph, t.schedule.flowchart,
                            params, {}, guarded_opts);
    fill(guarded.array("InitialA"), m);
    double guarded_ms = time_once([&] { guarded.run(); });

    ps::InterpreterOptions exact_opts;
    exact_opts.pool = &pool;
    exact_opts.exact_bounds = &*result.exact_nest;
    ps::Interpreter exact(*t.module, *t.graph, t.schedule.flowchart, params,
                          {}, exact_opts);
    fill(exact.array("InitialA"), m);
    double exact_ms = time_once([&] { exact.run(); });

    ps::WavefrontOptions wopts;
    wopts.pool = &pool;
    ps::WavefrontRunner wave(*t.module, *result.transform,
                             *result.exact_nest, params, {}, wopts);
    fill(wave.array("InitialA"), m);
    double wave_ms = time_once([&] { wave.run(); });

    double c1 = checksum(guarded.array("newA"), m);
    double c2 = checksum(exact.array("newA"), m);
    double c3 = checksum(wave.array("newA"), m);
    if (c1 != c2 || c1 != c3)
      printf("  CHECKSUM MISMATCH (%g %g %g)\n", c1, c2, c3);

    printf("%6ld %6ld | %10.1f %10.1f %10.1f | %9.2fM\n", m, sweeps,
           guarded_ms, exact_ms, wave_ms,
           static_cast<double>(wave.allocated_doubles()) / 1e6);
  }
  printf("(wave mem counts every array incl. windowed A' = 3 slices;\n"
         " all three computations are checksummed identical)\n\n");
}

// ---------------------------------------------------------------------------
// Generated C under OpenMP
// ---------------------------------------------------------------------------

constexpr const char* kTimingMain = R"C(
#include <stdio.h>
#include <stdlib.h>
#include <time.h>
void ENTRY(const double* InitialA, long M, long maxK, double* newA);
int main(int argc, char** argv) {
  long M = argc > 1 ? atol(argv[1]) : 256;
  long maxK = argc > 2 ? atol(argv[2]) : 16;
  long n = M + 2;
  double* in = (double*)malloc(sizeof(double) * n * n);
  double* out = (double*)malloc(sizeof(double) * n * n);
  for (long i = 0; i < n * n; ++i) in[i] = (double)(i % 17);
  struct timespec t0, t1;
  clock_gettime(CLOCK_MONOTONIC, &t0);
  ENTRY(in, M, maxK, out);
  clock_gettime(CLOCK_MONOTONIC, &t1);
  double ms = (t1.tv_sec - t0.tv_sec) * 1e3 + (t1.tv_nsec - t0.tv_nsec) / 1e6;
  double sum = 0;
  for (long i = 0; i < n * n; ++i) sum += out[i];
  printf("%.3f %.6f\n", ms, sum);
  free(in); free(out);
  return 0;
}
)C";

bool have_cc() { return std::system("cc --version > /dev/null 2>&1") == 0; }

struct RunResult {
  double ms = -1;
  double checksum = 0;
};

RunResult time_generated(const std::string& c_code, const std::string& entry,
                         long m, long sweeps, int threads,
                         const std::string& tag) {
  std::string dir = "/tmp/psc_exact_" + tag;
  if (std::system(("mkdir -p " + dir).c_str()) != 0) return {};
  {
    std::ofstream mod(dir + "/module.c");
    mod << c_code;
    std::ofstream main_file(dir + "/main.c");
    std::string main_code = kTimingMain;
    size_t at;
    while ((at = main_code.find("ENTRY")) != std::string::npos)
      main_code.replace(at, 5, entry);
    main_file << main_code;
  }
  std::string cmd = "cc -O2 -fopenmp -std=c99 -o " + dir + "/prog " + dir +
                    "/module.c " + dir + "/main.c -lm 2> " + dir + "/cc.log";
  if (std::system(cmd.c_str()) != 0) return {};
  std::string env =
      threads > 0 ? "OMP_NUM_THREADS=" + std::to_string(threads) + " " : "";
  cmd = env + dir + "/prog " + std::to_string(m) + " " +
        std::to_string(sweeps) + " > " + dir + "/out.txt";
  if (std::system(cmd.c_str()) != 0) return {};
  std::ifstream out(dir + "/out.txt");
  RunResult result;
  out >> result.ms >> result.checksum;
  return result;
}

void print_compiled_table() {
  if (!have_cc()) {
    printf("(no system C compiler; skipping generated-code timing)\n");
    return;
  }
  ps::CompileOptions guarded_opts;
  guarded_opts.apply_hyperplane = true;
  auto guarded = compile(ps::kGaussSeidelSource, guarded_opts);
  auto exact = compile_exact();

  printf("=== A4.3: generated C, cc -O2 -fopenmp (P2 revisited) ===\n");
  printf("%-34s | %9s %9s %9s\n", "program (M=384, maxK=192)", "1 thr ms",
         "4 thr ms", "12 thr ms");
  struct Case {
    const char* name;
    const std::string* code;
    const char* entry;
  };
  Case cases[] = {
      {"Gauss-Seidel sequential (Fig 7)", &guarded.primary->c_code,
       "Relaxation"},
      {"transformed, bounding box+guards", &guarded.transformed->c_code,
       "Relaxation_h"},
      {"transformed, exact bounds", &exact.transformed->c_code,
       "Relaxation_h"},
  };
  const long m = 384;
  const long sweeps = 192;
  for (const Case& c : cases) {
    double ms[3];
    bool ok = true;
    int threads[3] = {1, 4, 12};
    for (int t = 0; t < 3 && ok; ++t) {
      RunResult r =
          time_generated(*c.code, c.entry, m, sweeps, threads[t],
                         std::string(c.entry) + std::to_string(threads[t]) +
                             (c.code == &exact.transformed->c_code ? "x"
                                                                   : "g"));
      ok = r.ms >= 0;
      ms[t] = r.ms;
    }
    if (!ok) {
      printf("%-34s | (compilation or run failed)\n", c.name);
      continue;
    }
    printf("%-34s | %9.2f %9.2f %9.2f\n", c.name, ms[0], ms[1], ms[2]);
  }
  printf("(the exact-bounds version eliminates the bounding-box guard\n"
         " work -- the dominant term in the recorded honest negative)\n\n");
}

// The microbenchmarks that used to live here (BM_FourierMotzkin*,
// BM_ExactNestScan, BM_WavefrontRunner) moved to bench_wavefront.cpp,
// which records BENCH_wavefront.json; this binary keeps the A4
// experiment tables.

}  // namespace

int main(int argc, char** argv) {
  if (!ps::bench::json_to_stdout(argc, argv)) {
    print_point_counts();
    print_interpreter_table();
    print_compiled_table();
  }
  return ps::bench::run_benchmarks(argc, argv);
}
