// Batch-compilation throughput: the whole paper corpus (replicated into
// a realistic multi-module workload) through the BatchDriver at growing
// job counts. The acceptance bar for the batch driver is >= 2x
// throughput at -j 4 over -j 1 on this workload; the modules/sec
// counter feeds the CI regression gate (BENCH_batch.json).

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <string>
#include <vector>

#include "driver/batch_driver.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/thread_pool.hpp"

namespace {

/// The paper corpus replicated `copies` times: the multi-module traffic
/// shape the ROADMAP's batch item describes (many units, repeated
/// stencil structure).
std::vector<ps::BatchInput> corpus_batch(size_t copies) {
  std::vector<ps::BatchInput> inputs;
  inputs.reserve(copies * ps::paper_corpus().size());
  for (size_t c = 0; c < copies; ++c)
    for (const ps::PaperModule& module : ps::paper_corpus())
      inputs.push_back({std::string(module.name) + "#" + std::to_string(c),
                        module.source, false});
  return inputs;
}

void BM_BatchCompile(benchmark::State& state) {
  const size_t jobs = static_cast<size_t>(state.range(0));
  const std::vector<ps::BatchInput> inputs = corpus_batch(16);
  // Steady-state service shape: the worker pool persists across
  // batches; only the driver (and its per-batch caches) is fresh.
  ps::ThreadPool pool(jobs);
  size_t compiled = 0;
  for (auto _ : state) {
    ps::BatchOptions bopts;
    bopts.jobs = jobs;
    if (jobs > 1) bopts.pool = &pool;
    ps::BatchDriver driver({}, bopts);
    auto results = driver.compile_all(inputs);
    benchmark::DoNotOptimize(results.data());
    if (driver.summary().failed != 0) {
      state.SkipWithError("batch compilation failed");
      return;
    }
    compiled += results.size();
  }
  state.counters["modules_per_s"] = benchmark::Counter(
      static_cast<double>(compiled), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchCompile)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// The hyperplane pipeline over many instances of the same recurrence:
/// with the shared solution cache one unit pays for the solve and the
/// rest hit the memo table.
void BM_BatchCompileHyperplane(benchmark::State& state) {
  const bool share = state.range(0) != 0;
  std::vector<ps::BatchInput> inputs;
  for (size_t i = 0; i < 16; ++i)
    inputs.push_back({"gs#" + std::to_string(i),
                      ps::kGaussSeidelSource, false});
  ps::CompileOptions copts;
  copts.apply_hyperplane = true;
  ps::ThreadPool pool(4);
  for (auto _ : state) {
    ps::BatchOptions bopts;
    bopts.pool = &pool;
    bopts.share_hyperplane_solutions = share;
    ps::BatchDriver driver(copts, bopts);
    auto results = driver.compile_all(inputs);
    benchmark::DoNotOptimize(results.data());
  }
}
BENCHMARK(BM_BatchCompileHyperplane)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return ps::bench::run_benchmarks(argc, argv);
}
