// Runtime-engine ablations (design choices called out in DESIGN.md):
//   * bytecode VM vs the tree-walking reference evaluator;
//   * collapsing perfectly nested DOALL loops vs honouring the nest
//     shape (the hyperplane slab needs the collapse to expose more than
//     maxK-way parallelism).

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include "bench_common.hpp"

namespace {

using ps::bench::compile;
using ps::bench::fill_inputs;

/// args: {engine: 0 = bytecode, 1 = tree-walk}.
void BM_EngineAblationJacobi(benchmark::State& state) {
  auto result = compile(ps::kRelaxationSource);
  const ps::CompiledModule& stage = *result.primary;
  ps::InterpreterOptions options;
  options.engine = state.range(0) == 0 ? ps::EvalEngine::Bytecode
                                       : ps::EvalEngine::TreeWalk;
  ps::Interpreter interp(*stage.module, *stage.graph,
                         stage.schedule.flowchart,
                         ps::IntEnv{{"M", 128}, {"maxK", 8}}, {}, options);
  fill_inputs(interp, *stage.module);
  for (auto _ : state) {
    interp.reset();
    interp.run();
    benchmark::DoNotOptimize(ps::bench::checksum(interp, "newA"));
  }
}
BENCHMARK(BM_EngineAblationJacobi)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// args: {collapse: 1/0} on the hyperplane-transformed Gauss-Seidel.
void BM_CollapseAblationWavefront(benchmark::State& state) {
  ps::CompileOptions copts;
  copts.apply_hyperplane = true;
  auto result = compile(ps::kGaussSeidelSource, copts);
  const ps::CompiledModule& stage = *result.transformed;
  ps::ThreadPool pool(16);
  ps::InterpreterOptions options;
  options.pool = &pool;
  options.collapse_doall = state.range(0) != 0;
  ps::Interpreter interp(*stage.module, *stage.graph,
                         stage.schedule.flowchart,
                         ps::IntEnv{{"M", 96}, {"maxK", 48}}, {}, options);
  fill_inputs(interp, *stage.module);
  for (auto _ : state) {
    interp.reset();
    interp.run();
    benchmark::DoNotOptimize(ps::bench::checksum(interp, "newA"));
  }
}
BENCHMARK(BM_CollapseAblationWavefront)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return ps::bench::run_benchmarks(argc, argv);
}
