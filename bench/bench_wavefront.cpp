// The wavefront engine's perf surface, recorded as BENCH_wavefront.json
// and gated by scripts/check_bench_regression.py:
//
//   * BM_FourierMotzkinGaussSeidel / BM_ExactNestScan: the exact-bounds
//     machinery the schedule layer is built on;
//   * BM_WavefrontRunner {M, engine}: the historical end-to-end axis
//     (0 = shared bytecode core, 1 = tree-walk reference, 2 = native
//     JIT);
//   * BM_WavefrontBackend {M, backend}: the backend layer head to head
//     (0 = sequential, 1 = pooled-chunked, 2 = sharded, 3 =
//     work-stealing);
//   * BM_WavefrontWorkStealing {M, backend}: sharded (0) versus
//     work-stealing (1) on a module whose per-point cost is skewed
//     across each hyperplane -- the irregular-load case static stripes
//     cannot balance (the steals counter records the rebalancing);
//   * BM_WavefrontStreamingMemory: the streaming-memory axis on a
//     consumer-heavy module -- the peak_bucket_instances counters prove
//     the consumer stream's live set is bounded by one hyperplane, not
//     the module total the old eager buckets held.

#include <benchmark/benchmark.h>

#include "bench_main.hpp"

#include <string>

#include "bench_common.hpp"
#include "runtime/wavefront.hpp"
#include "transform/polyhedron.hpp"

namespace {

using ps::bench::compile;

ps::CompileResult compile_exact(const char* source = ps::kGaussSeidelSource) {
  ps::CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  return compile(source, options);
}

void fill(ps::NdArray& in, long m) {
  for (long i = 0; i <= m + 1; ++i)
    for (long j = 0; j <= m + 1; ++j)
      in.set(std::vector<int64_t>{i, j},
             static_cast<double>((i * 13 + j) % 17));
}

void BM_FourierMotzkinGaussSeidel(benchmark::State& state) {
  auto result = compile_exact();
  auto domain =
      ps::transformed_domain(*result.primary->module, *result.transform);
  for (auto _ : state) {
    auto nest =
        ps::fourier_motzkin_bounds(*domain, result.transform->new_vars);
    benchmark::DoNotOptimize(nest.has_value());
  }
}
BENCHMARK(BM_FourierMotzkinGaussSeidel)->Unit(benchmark::kMicrosecond);

void BM_ExactNestScan(benchmark::State& state) {
  auto result = compile_exact();
  ps::IntEnv params{{"M", state.range(0)}, {"maxK", 32}};
  for (auto _ : state) {
    int64_t points = ps::count_loop_nest_points(*result.exact_nest, params);
    benchmark::DoNotOptimize(points);
  }
  state.SetItemsProcessed(state.iterations() *
                          ps::count_loop_nest_points(*result.exact_nest,
                                                     params));
}
BENCHMARK(BM_ExactNestScan)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// args: {M, engine} with engine 0 = shared bytecode core, 1 = tree-walk
// reference, 2 = native JIT (when a system `cc` answers the probe;
// silently falls back to bytecode otherwise, like the runtime) -- the
// ratios are the payoff of compiling the recurrence once instead of
// re-walking its AST at every point, then of machine code over the VM.
void BM_WavefrontRunner(benchmark::State& state) {
  auto result = compile_exact();
  const long m = state.range(0);
  ps::ThreadPool pool;
  ps::WavefrontOptions opts;
  opts.pool = &pool;
  opts.engine = state.range(1) == 0   ? ps::EvalEngine::Bytecode
                : state.range(1) == 1 ? ps::EvalEngine::TreeWalk
                                      : ps::EvalEngine::Native;
  for (auto _ : state) {
    ps::WavefrontRunner wave(*result.transformed->module, *result.transform,
                             *result.exact_nest,
                             ps::IntEnv{{"M", m}, {"maxK", 32}}, {}, opts);
    fill(wave.array("InitialA"), m);
    wave.run();
    benchmark::DoNotOptimize(wave.stats().points);
  }
}
BENCHMARK(BM_WavefrontRunner)
    ->Args({64, 0})->Args({64, 1})->Args({64, 2})
    ->Args({128, 0})->Args({128, 1})->Args({128, 2})
    ->Unit(benchmark::kMillisecond);

// args: {M, backend} with 0 = sequential (no pool), 1 = pooled-chunked
// (dynamic chunk self-scheduling), 2 = sharded (static point stripes on
// per-worker contexts), 3 = work-stealing (per-worker deques, idle
// workers steal from the back of a victim's band). All four are
// bit-exact; the axis records what the scheduling strategy itself
// costs or buys per hyperplane.
void BM_WavefrontBackend(benchmark::State& state) {
  auto result = compile_exact();
  const long m = state.range(0);
  ps::ThreadPool pool;
  ps::WavefrontOptions opts;
  switch (state.range(1)) {
    case 0:
      opts.backend = ps::WavefrontBackend::Sequential;
      break;
    case 1:
      opts.pool = &pool;
      opts.backend = ps::WavefrontBackend::PooledChunked;
      break;
    case 2:
      opts.pool = &pool;
      opts.backend = ps::WavefrontBackend::Sharded;
      break;
    default:
      opts.pool = &pool;
      opts.backend = ps::WavefrontBackend::WorkStealing;
      break;
  }
  for (auto _ : state) {
    ps::WavefrontRunner wave(*result.transformed->module, *result.transform,
                             *result.exact_nest,
                             ps::IntEnv{{"M", m}, {"maxK", 32}}, {}, opts);
    fill(wave.array("InitialA"), m);
    wave.run();
    benchmark::DoNotOptimize(wave.stats().points);
  }
}
BENCHMARK(BM_WavefrontBackend)
    ->Args({96, 0})->Args({96, 1})->Args({96, 2})->Args({96, 3})
    ->Unit(benchmark::kMillisecond);

/// Gauss-Seidel with skewed per-point cost: points above the diagonal
/// take a two-term average while points on or below it evaluate a
/// sixteen-term sum, so the expensive points cluster at one end of
/// every hyperplane. Static stripes (Sharded) pin that cluster to a
/// subset of the workers; the work-stealing deques rebalance it.
constexpr const char* kIrregularSource = R"PS(
Skewed: module (InitialA: array[I,J] of real; M: int; maxK: int):
  [newA: array [I, J] of real];
type
  I, J = 0 .. M+1;  K = 2 .. maxK;
var
  A: array [1 .. maxK] of array [I, J] of real;
define
  A[1] = InitialA;
  newA = A[maxK];
  A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
             then A[K-1,I,J]
             else if I < J
             then ( A[K,I,J-1] + A[K-1,I,J+1] ) / 2
             else ( A[K,I,J-1] + A[K,I-1,J]
                   +A[K-1,I,J+1] + A[K-1,I+1,J]
                   +A[K,I,J-1] + A[K,I-1,J]
                   +A[K-1,I,J+1] + A[K-1,I+1,J]
                   +A[K,I,J-1] + A[K,I-1,J]
                   +A[K-1,I,J+1] + A[K-1,I+1,J]
                   +A[K,I,J-1] + A[K,I-1,J]
                   +A[K-1,I,J+1] + A[K-1,I+1,J] ) / 16;
end Skewed;
)PS";

// args: {M, backend} with 0 = sharded, 1 = work-stealing, on the
// skewed-cost module above. The axis is the irregular-load case: the
// steals counter records how many chunk bands moved between workers to
// even out the diagonal cost cliff that static stripes cannot see.
void BM_WavefrontWorkStealing(benchmark::State& state) {
  auto result = compile_exact(kIrregularSource);
  const long m = state.range(0);
  ps::ThreadPool pool;
  ps::WavefrontOptions opts;
  opts.pool = &pool;
  opts.backend = state.range(1) == 0 ? ps::WavefrontBackend::Sharded
                                     : ps::WavefrontBackend::WorkStealing;
  int64_t steals = 0;
  for (auto _ : state) {
    ps::WavefrontRunner wave(*result.transformed->module, *result.transform,
                             *result.exact_nest,
                             ps::IntEnv{{"M", m}, {"maxK", 16}}, {}, opts);
    fill(wave.array("InitialA"), m);
    wave.run();
    steals = wave.stats().steals;
    benchmark::DoNotOptimize(wave.stats().points);
  }
  state.counters["steals"] = benchmark::Counter(static_cast<double>(steals));
}
BENCHMARK(BM_WavefrontWorkStealing)
    ->Args({96, 0})->Args({96, 1})
    ->Unit(benchmark::kMillisecond);

/// A consumer-heavy Gauss-Seidel: three output equations read the
/// recurrence array at distinct affine slices, so the old eager bucket
/// map held every one of their instances live before the first point
/// ran. The counters record the streaming bound instead.
constexpr const char* kConsumerHeavySource = R"PS(
Heavy: module (InitialA: array[I,J] of real; M: int; maxK: int):
  [newA: array [I, J] of real; diag: array [I] of real;
   edge: array [J] of real];
type
  I, J = 0 .. M+1;  K = 2 .. maxK;
var
  A: array [1 .. maxK] of array [I, J] of real;
define
  A[1] = InitialA;
  newA = A[maxK];
  diag[I] = A[maxK, I, I];
  edge[J] = A[maxK, 1, J];
  A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
             then A[K-1,I,J]
             else ( A[K,I,J-1] + A[K,I-1,J]
                   +A[K-1,I,J+1] + A[K-1,I+1,J] ) / 4;
end Heavy;
)PS";

// The streaming-memory axis: wall time of the consumer-heavy module,
// with counters proving the live-set bound -- peak_bucket_instances
// (max consumer instances streamed for one hyperplane) versus
// total_flushed (what the eager buckets used to hold live at once).
void BM_WavefrontStreamingMemory(benchmark::State& state) {
  auto result = compile_exact(kConsumerHeavySource);
  const long m = state.range(0);
  int64_t peak = 0;
  int64_t flushed = 0;
  for (auto _ : state) {
    ps::WavefrontRunner wave(*result.transformed->module, *result.transform,
                             *result.exact_nest,
                             ps::IntEnv{{"M", m}, {"maxK", 16}});
    fill(wave.array("InitialA"), m);
    wave.run();
    peak = wave.stats().peak_bucket_instances;
    flushed = wave.stats().flushed;
    benchmark::DoNotOptimize(peak);
  }
  state.counters["peak_bucket_instances"] =
      benchmark::Counter(static_cast<double>(peak));
  state.counters["total_flushed"] =
      benchmark::Counter(static_cast<double>(flushed));
}
BENCHMARK(BM_WavefrontStreamingMemory)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (!ps::bench::json_to_stdout(argc, argv)) {
    auto heavy = compile_exact(kConsumerHeavySource);
    ps::WavefrontRunner wave(*heavy.transformed->module, *heavy.transform,
                             *heavy.exact_nest,
                             ps::IntEnv{{"M", 96}, {"maxK", 16}});
    fill(wave.array("InitialA"), 96);
    wave.run();
    printf("=== streaming consumer memory (M=96, maxK=16) ===\n");
    printf("backend: %s\n", wave.stats().backend.c_str());
    printf("peak live consumer instances (one hyperplane): %lld\n",
           static_cast<long long>(wave.stats().peak_bucket_instances));
    printf("total consumer instances (eager buckets held all of these): "
           "%lld\n\n",
           static_cast<long long>(wave.stats().flushed));
  }
  return ps::bench::run_benchmarks(argc, argv);
}
