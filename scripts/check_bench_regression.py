#!/usr/bin/env python3
"""CI perf regression gate.

Compares a freshly recorded Google Benchmark JSON report against the
checked-in baseline (BENCH_*.json) and fails when any benchmark's
throughput regressed by more than the threshold (default 15%).

Throughput is taken from a rate counter (e.g. modules_per_s) when the
benchmark reports one -- higher is better -- and falls back to
real_time otherwise (lower is better). Benchmarks present in only one
of the two reports are reported but do not fail the gate (they are new
or retired, not regressed). When the baseline was recorded on
different hardware (num_cpus mismatch in the report context),
regressions are advisory and the gate passes with a warning: refresh
the BENCH_*.json baselines from a run on the target runner class to
arm it.

Usage:
  check_bench_regression.py --baseline BENCH_batch.json \
      --current build/bench_batch.json [--threshold 0.15]

Exit status: 0 when no benchmark regressed beyond the threshold,
1 otherwise, 2 on malformed input.
"""

import argparse
import json
import sys


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read benchmark report {path}: {err}",
              file=sys.stderr)
        sys.exit(2)


def load_benchmarks(report):
    """name -> (metric, higher_is_better)."""
    out = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue  # compare raw runs only; aggregates duplicate them
        name = bench.get("name")
        if not name:
            continue
        rate = None
        for key, value in bench.items():
            # Rate counters appear as plain numeric fields; the repo's
            # convention names them *_per_s.
            if key.endswith("_per_s") and isinstance(value, (int, float)):
                rate = float(value)
                break
        if rate is not None:
            out[name] = (rate, True)
        elif isinstance(bench.get("real_time"), (int, float)):
            out[name] = (float(bench["real_time"]), False)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="checked-in BENCH_*.json")
    parser.add_argument("--current", required=True,
                        help="freshly recorded report to check")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional regression (default 0.15)")
    parser.add_argument("--force-absolute", action="store_true",
                        help="fail on regressions even when the baseline "
                             "was recorded on different hardware")
    args = parser.parse_args()

    baseline_report = load_report(args.baseline)
    current_report = load_report(args.current)
    baseline = load_benchmarks(baseline_report)
    current = load_benchmarks(current_report)
    if not baseline:
        print(f"error: no benchmarks in baseline {args.baseline}",
              file=sys.stderr)
        return 2

    # Absolute timings only mean something on comparable hardware. When
    # the recording machine differs from this one (different core
    # count), regressions are reported but do not fail the gate -- the
    # baseline needs re-recording on this runner class instead. Always
    # report both runner classes per bench file so CI logs show at a
    # glance which baselines are armed and which need re-recording.
    base_ctx = baseline_report.get("context", {})
    cur_ctx = current_report.get("context", {})
    base_cpus = base_ctx.get("num_cpus")
    cur_cpus = cur_ctx.get("num_cpus")
    comparable = base_cpus == cur_cpus or args.force_absolute
    print(f"{args.baseline}: baseline runner class "
          f"num_cpus={base_cpus} @ {base_ctx.get('mhz_per_cpu', '?')} MHz; "
          f"current num_cpus={cur_cpus} @ {cur_ctx.get('mhz_per_cpu', '?')} "
          f"MHz -- gate {'ARMED' if comparable else 'advisory only'}")
    if not comparable:
        print(f"warning: baseline hardware (num_cpus={base_cpus}) differs "
              f"from this machine (num_cpus={cur_cpus}); regressions are "
              "advisory only -- re-record the baseline on this runner "
              "class to arm the gate (--force-absolute overrides)")

    # Per-bench delta table, printed pass or fail: CI logs should show
    # the whole perf picture at a glance, not only the regressions.
    failures = []
    rows = []
    for name, (base_value, higher_is_better) in sorted(baseline.items()):
        if name not in current:
            rows.append((name, f"{base_value:.3f}", "-", "-", "retired?"))
            continue
        cur_value, _ = current[name]
        if base_value <= 0:
            continue
        if higher_is_better:
            change = (cur_value - base_value) / base_value
            metric = "rate"
        else:
            change = (base_value - cur_value) / base_value
            metric = "ns"
        regressed = change < -args.threshold
        status = "FAIL" if regressed else "ok"
        rows.append((name, f"{base_value:.3f}", f"{cur_value:.3f}",
                     f"{change * 100:+.1f}% {metric}", status))
        if regressed:
            failures.append(name)

    for name in sorted(set(current) - set(baseline)):
        cur_value, _ = current[name]
        rows.append((name, "-", f"{cur_value:.3f}", "-", "new"))

    headers = ("benchmark", "baseline", "current", "delta", "status")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        cells = [row[0].ljust(widths[0])]
        cells += [row[i].rjust(widths[i]) for i in range(1, len(row))]
        return "  ".join(cells)
    print()
    print(fmt(headers))
    print(fmt(tuple("-" * w for w in widths)))
    for row in rows:
        print(fmt(row))

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed more than "
              f"{args.threshold * 100:.0f}%:", file=sys.stderr)
        for name in failures:
            print(f"  {name}", file=sys.stderr)
        if not comparable:
            print("not failing: baseline is from different hardware "
                  "(see warning above)")
            return 0
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
