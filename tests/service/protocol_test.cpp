// Wire-format tests: the framing protocol and the artifact
// serialisation shared by the daemon and the on-disk cache.

#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <string>
#include <thread>

#include "driver/paper_modules.hpp"

namespace ps {
namespace {

UnitArtifact sample_artifact() {
  UnitArtifact artifact;
  artifact.ok = true;
  artifact.diagnostics = "warn: something\n";
  artifact.module_name = "Relaxation";
  artifact.primary = {"src text",   "DO K (...)\n", "void Relaxation() {}\n",
                      "graph text", "digraph G {}", "components table",
                      "bytecode",   ""};
  artifact.has_transform = true;
  artifact.transform_array = "A";
  artifact.transform_desc = "K' = 2K + I + J";
  artifact.exact_nest = "K' = 2 .. 2*M";
  artifact.transformed = {"src'",     "DOALL I' (...)\n", "void R_h() {}\n",
                          "graph'",   "digraph H {}",     "components'",
                          "tree-walk", "bytecode: unsupported record base"};
  artifact.compile_ms = 12.5;
  return artifact;
}

void expect_same(const UnitArtifact& a, const UnitArtifact& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.diagnostics, b.diagnostics);
  EXPECT_EQ(a.module_name, b.module_name);
  EXPECT_EQ(a.primary.source, b.primary.source);
  EXPECT_EQ(a.primary.schedule, b.primary.schedule);
  EXPECT_EQ(a.primary.c_code, b.primary.c_code);
  EXPECT_EQ(a.primary.graph, b.primary.graph);
  EXPECT_EQ(a.primary.dot, b.primary.dot);
  EXPECT_EQ(a.primary.components, b.primary.components);
  EXPECT_EQ(a.primary.engine_tier, b.primary.engine_tier);
  EXPECT_EQ(a.primary.engine_fallback, b.primary.engine_fallback);
  EXPECT_EQ(a.has_transform, b.has_transform);
  EXPECT_EQ(a.transform_array, b.transform_array);
  EXPECT_EQ(a.transform_desc, b.transform_desc);
  EXPECT_EQ(a.exact_nest, b.exact_nest);
  EXPECT_EQ(a.transformed.source, b.transformed.source);
  EXPECT_EQ(a.transformed.schedule, b.transformed.schedule);
  EXPECT_EQ(a.transformed.c_code, b.transformed.c_code);
  EXPECT_DOUBLE_EQ(a.compile_ms, b.compile_ms);
}

TEST(Wire, ScalarRoundTrip) {
  WireWriter writer;
  writer.u8(0xab);
  writer.u32(0xdeadbeefu);
  writer.u64(0x0123456789abcdefull);
  writer.f64(-0.0);
  writer.f64(std::nan(""));
  writer.str("hello");
  writer.str("");

  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.u8(), 0xab);
  EXPECT_EQ(reader.u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.u64(), 0x0123456789abcdefull);
  // Bit-exact doubles: -0.0 and the NaN payload survive the wire.
  EXPECT_EQ(std::signbit(reader.f64()), true);
  EXPECT_TRUE(std::isnan(reader.f64()));
  EXPECT_EQ(reader.str(), "hello");
  EXPECT_EQ(reader.str(), "");
  EXPECT_TRUE(reader.at_end());
  EXPECT_NO_THROW(reader.expect_end());
}

TEST(Wire, TruncatedReadsThrow) {
  WireWriter writer;
  writer.u32(7);
  WireReader reader(writer.bytes());
  EXPECT_THROW(reader.u64(), WireError);

  // A string whose length prefix promises more bytes than exist.
  WireWriter liar;
  liar.u32(1000);
  WireReader liar_reader(liar.bytes());
  EXPECT_THROW(liar_reader.str(), WireError);
}

TEST(Wire, TrailingBytesAreAnError) {
  WireWriter writer;
  writer.u8(1);
  writer.u8(2);
  WireReader reader(writer.bytes());
  (void)reader.u8();
  EXPECT_THROW(reader.expect_end(), WireError);
}

TEST(Wire, ArtifactRoundTrip) {
  UnitArtifact artifact = sample_artifact();
  WireWriter writer;
  write_artifact(writer, artifact);
  WireReader reader(writer.bytes());
  UnitArtifact decoded = read_artifact(reader);
  EXPECT_TRUE(reader.at_end());
  expect_same(artifact, decoded);
}

TEST(Wire, FailedUnitArtifactRoundTrip) {
  UnitArtifact artifact;
  artifact.ok = false;
  artifact.diagnostics = "bad.ps:1: error: expected module\n";
  WireWriter writer;
  write_artifact(writer, artifact);
  WireReader reader(writer.bytes());
  expect_same(artifact, read_artifact(reader));
}

TEST(Wire, SkipArtifactWalksExactlyOneArtifact) {
  // skip_artifact is the zero-copy validator behind load_raw: it must
  // consume exactly the bytes read_artifact would, for the transform
  // and no-transform shapes alike, and throw where a decode would.
  for (bool with_transform : {true, false}) {
    UnitArtifact artifact = sample_artifact();
    artifact.has_transform = with_transform;
    WireWriter writer;
    write_artifact(writer, artifact);
    writer.str("sentinel");  // trailing field after the artifact
    WireReader reader(writer.bytes());
    skip_artifact(reader);
    EXPECT_EQ(reader.str(), "sentinel");
    EXPECT_TRUE(reader.at_end());
  }
  // Truncation throws instead of reading past the end.
  WireWriter writer;
  write_artifact(writer, sample_artifact());
  std::string bytes = writer.bytes();
  WireReader truncated(std::string_view(bytes).substr(0, bytes.size() / 2));
  EXPECT_THROW(skip_artifact(truncated), WireError);
}

TEST(Wire, RawReplySplicesByteIdenticalFrames) {
  // The daemon's spilled-hit fast path: encoding a reply from raw
  // artifact bytes must produce the exact frame encode_compile_reply
  // builds from the decoded artifacts -- the client cannot tell which
  // path answered.
  RemoteReply reply;
  reply.cache_hits = 2;
  reply.cache_misses = 1;
  reply.jobs = 4;
  reply.wall_ms = 3.25;
  std::vector<RawUnitReply> raw_units;
  for (int i = 0; i < 2; ++i) {
    RemoteUnitResult unit;
    unit.name = "unit" + std::to_string(i);
    unit.cache_hit = i == 0;
    unit.milliseconds = 1.5 * i;
    unit.artifact = sample_artifact();
    unit.artifact.module_name = "M" + std::to_string(i);
    WireWriter artifact_writer;
    write_artifact(artifact_writer, unit.artifact);
    raw_units.push_back({unit.name, unit.cache_hit, unit.milliseconds,
                         artifact_writer.take()});
    reply.units.push_back(std::move(unit));
  }
  std::string decoded_frame = encode_compile_reply(reply);
  std::string raw_frame = encode_compile_reply_raw(
      reply.cache_hits, reply.cache_misses, reply.jobs, reply.wall_ms,
      raw_units);
  EXPECT_EQ(raw_frame, decoded_frame);

  RemoteReply round_trip = decode_compile_reply(raw_frame);
  ASSERT_EQ(round_trip.units.size(), 2u);
  expect_same(reply.units[1].artifact, round_trip.units[1].artifact);
}

TEST(Wire, OptionsRoundTripAllFlagCombinations) {
  for (unsigned bits = 0; bits < 64; ++bits) {
    CompileOptions options;
    options.merge_loops = bits & 1;
    options.apply_hyperplane = bits & 2;
    options.exact_bounds = bits & 4;
    options.emit_c_code = bits & 8;
    options.emit_openmp = bits & 16;
    options.use_virtual_windows = bits & 32;
    options.solver.bound = static_cast<int>(bits) + 3;
    WireWriter writer;
    write_options(writer, options);
    WireReader reader(writer.bytes());
    CompileOptions decoded = read_options(reader);
    EXPECT_EQ(decoded.merge_loops, options.merge_loops);
    EXPECT_EQ(decoded.apply_hyperplane, options.apply_hyperplane);
    EXPECT_EQ(decoded.exact_bounds, options.exact_bounds);
    EXPECT_EQ(decoded.emit_c_code, options.emit_c_code);
    EXPECT_EQ(decoded.emit_openmp, options.emit_openmp);
    EXPECT_EQ(decoded.use_virtual_windows, options.use_virtual_windows);
    EXPECT_EQ(decoded.solver.bound, options.solver.bound);
  }
}

TEST(Wire, CompileRequestRoundTrip) {
  ServiceRequest request;
  request.options.apply_hyperplane = true;
  request.units.push_back({"a.ps", kRelaxationSource, false});
  request.units.push_back({"b.eqn", "module X; ...", true});

  ServiceRequest decoded =
      decode_compile_request(encode_compile_request(request));
  EXPECT_EQ(decoded.client_version, kPscVersion);
  ASSERT_EQ(decoded.units.size(), 2u);
  EXPECT_EQ(decoded.units[0].name, "a.ps");
  EXPECT_EQ(decoded.units[0].source, kRelaxationSource);
  EXPECT_FALSE(decoded.units[0].is_eqn);
  EXPECT_TRUE(decoded.units[1].is_eqn);
  EXPECT_TRUE(decoded.options.apply_hyperplane);
}

TEST(Wire, CompileReplyRoundTrip) {
  RemoteReply reply;
  reply.cache_hits = 3;
  reply.cache_misses = 1;
  reply.jobs = 4;
  reply.wall_ms = 7.25;
  RemoteUnitResult unit;
  unit.name = "a.ps";
  unit.cache_hit = true;
  unit.milliseconds = 0.5;
  unit.artifact = sample_artifact();
  reply.units.push_back(unit);

  RemoteReply decoded = decode_compile_reply(encode_compile_reply(reply));
  EXPECT_EQ(decoded.cache_hits, 3u);
  EXPECT_EQ(decoded.cache_misses, 1u);
  EXPECT_EQ(decoded.jobs, 4u);
  EXPECT_DOUBLE_EQ(decoded.wall_ms, 7.25);
  ASSERT_EQ(decoded.units.size(), 1u);
  EXPECT_EQ(decoded.units[0].name, "a.ps");
  EXPECT_TRUE(decoded.units[0].cache_hit);
  expect_same(decoded.units[0].artifact, reply.units[0].artifact);
}

TEST(Wire, CompileRequestV2DecodesLikeV1) {
  // The v2 request is the v1 body under a new kind byte -- the version
  // bump that announces the client understands streamed replies.
  ServiceRequest request;
  request.options.exact_bounds = true;
  request.units.push_back({"a.ps", kRelaxationSource, false});

  std::string v1 = encode_compile_request(request);
  std::string v2 = encode_compile_request_v2(request);
  EXPECT_EQ(peek_kind(v1), MsgKind::CompileRequest);
  EXPECT_EQ(peek_kind(v2), MsgKind::CompileRequestV2);
  EXPECT_EQ(v1.substr(1), v2.substr(1));

  ServiceRequest decoded = decode_compile_request(v2);
  ASSERT_EQ(decoded.units.size(), 1u);
  EXPECT_EQ(decoded.units[0].name, "a.ps");
  EXPECT_TRUE(decoded.options.exact_bounds);
}

TEST(Wire, StreamedReplyFramesRoundTrip) {
  ReplyBegin begin;
  begin.unit_count = 3;
  begin.jobs = 8;
  ReplyBegin begin_decoded = decode_reply_begin(encode_reply_begin(begin));
  EXPECT_EQ(begin_decoded.unit_count, 3u);
  EXPECT_EQ(begin_decoded.jobs, 8u);

  RemoteUnitResult unit;
  unit.name = "a.ps";
  unit.cache_hit = true;
  unit.milliseconds = 2.5;
  unit.artifact = sample_artifact();
  WireWriter artifact_writer;
  write_artifact(artifact_writer, unit.artifact);
  std::string frame = encode_unit_reply_raw(
      {unit.name, unit.cache_hit, unit.milliseconds, artifact_writer.take()});
  EXPECT_EQ(peek_kind(frame), MsgKind::UnitReply);
  RemoteUnitResult unit_decoded = decode_unit_reply(frame);
  EXPECT_EQ(unit_decoded.name, "a.ps");
  EXPECT_TRUE(unit_decoded.cache_hit);
  EXPECT_DOUBLE_EQ(unit_decoded.milliseconds, 2.5);
  expect_same(unit_decoded.artifact, unit.artifact);

  ReplyEnd end;
  end.cache_hits = 2;
  end.cache_misses = 1;
  end.wall_ms = 4.75;
  ReplyEnd end_decoded = decode_reply_end(encode_reply_end(end));
  EXPECT_EQ(end_decoded.cache_hits, 2u);
  EXPECT_EQ(end_decoded.cache_misses, 1u);
  EXPECT_DOUBLE_EQ(end_decoded.wall_ms, 4.75);

  // Truncated or mis-kinded streamed frames throw, never misparse.
  EXPECT_THROW(decode_unit_reply(encode_reply_end(end)), WireError);
  EXPECT_THROW(decode_reply_begin(frame.substr(0, 3)), WireError);
}

TEST(Wire, StatsAndBusyMessagesRoundTrip) {
  EXPECT_TRUE(decode_stats_request(encode_stats_request(true)));
  EXPECT_FALSE(decode_stats_request(encode_stats_request(false)));
  std::string busy = encode_simple(MsgKind::Busy, "queue full");
  EXPECT_EQ(peek_kind(busy), MsgKind::Busy);
  EXPECT_EQ(decode_text(busy, MsgKind::Busy), "queue full");
  // decode_text checks the kind byte: a Busy frame is not a StatsReply.
  EXPECT_THROW(decode_text(busy, MsgKind::StatsReply), WireError);
  std::string stats = encode_simple(MsgKind::StatsReply, "{}");
  EXPECT_EQ(decode_text(stats, MsgKind::StatsReply), "{}");
}

TEST(Wire, MessageKindsAndErrors) {
  EXPECT_EQ(peek_kind(encode_simple(MsgKind::Ping)), MsgKind::Ping);
  EXPECT_EQ(peek_kind(encode_simple(MsgKind::Shutdown)), MsgKind::Shutdown);
  std::string error = encode_simple(MsgKind::Error, "boom");
  EXPECT_EQ(peek_kind(error), MsgKind::Error);
  EXPECT_EQ(decode_error(error), "boom");
  EXPECT_THROW(peek_kind(""), WireError);
  EXPECT_THROW(decode_compile_request(encode_simple(MsgKind::Ping)),
               WireError);
}

TEST(Wire, FramesRoundTripOverAPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  std::string payload = encode_simple(MsgKind::Error, "hello frame");
  // Writer thread: pipes have finite capacity, so write concurrently.
  std::thread writer([&] {
    EXPECT_TRUE(write_frame(fds[1], payload));
    EXPECT_TRUE(write_frame(fds[1], ""));  // empty frames are legal
    close(fds[1]);
  });
  std::optional<std::string> first = read_frame(fds[0]);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, payload);
  std::optional<std::string> second = read_frame(fds[0]);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->size(), 0u);
  // EOF after the writer closed: clean nullopt, not a hang or throw.
  EXPECT_FALSE(read_frame(fds[0]).has_value());
  writer.join();
  close(fds[0]);
}

TEST(Wire, TruncatedFrameIsRejected) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  // Length prefix promises 100 bytes; only 3 arrive before EOF.
  char header[4] = {100, 0, 0, 0};
  ASSERT_EQ(write(fds[1], header, 4), 4);
  ASSERT_EQ(write(fds[1], "abc", 3), 3);
  close(fds[1]);
  EXPECT_FALSE(read_frame(fds[0]).has_value());
  close(fds[0]);
}

TEST(Wire, OversizedFrameIsRefusedNotAllocated) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  // 4 GiB length prefix: must be rejected from the header alone (a
  // daemon must not be OOM-able by one bogus length).
  unsigned char header[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(write(fds[1], header, 4), 4);
  close(fds[1]);
  EXPECT_FALSE(read_frame(fds[0]).has_value());
  close(fds[0]);
  // And the writer refuses symmetric oversize.
  // (kMaxFrameBytes itself is fine; one past it is not encodable.)
}

}  // namespace
}  // namespace ps
