// The content-addressed on-disk artifact cache: key derivation,
// store/load round trips, and the invalidation edges -- option changes,
// compiler-version bumps, truncated or corrupt files -- that must
// recompile, never crash and never serve stale artifacts.

#include "service/artifact_cache.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "driver/paper_modules.hpp"
#include "service/protocol.hpp"

namespace fs = std::filesystem;

namespace ps {
namespace {

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  std::string dir = std::string(::testing::TempDir()) + "psc_cache_" + tag +
                    "_" + std::to_string(getpid()) + "_" +
                    std::to_string(counter++);
  fs::remove_all(dir);
  return dir;
}

ArtifactCache make_cache(const std::string& dir, size_t max_bytes = 0,
                         const std::string& version = kPscVersion) {
  ArtifactCacheOptions options;
  options.dir = dir;
  options.max_bytes = max_bytes;
  options.version = version;
  return ArtifactCache(std::move(options));
}

UnitArtifact sample_artifact(const std::string& tag = "body") {
  UnitArtifact artifact;
  artifact.ok = true;
  artifact.module_name = "M";
  artifact.primary = {"source " + tag, "schedule " + tag, "c " + tag};
  artifact.compile_ms = 1.0;
  return artifact;
}

BatchInput sample_input() {
  return BatchInput{"relax.ps", kRelaxationSource, false};
}

TEST(ArtifactCache, StoreThenLoadRoundTrips) {
  ArtifactCache cache = make_cache(fresh_dir("roundtrip"));
  std::string key = cache.key(sample_input(), CompileOptions{});
  EXPECT_EQ(key.size(), 64u);  // sha256 hex

  EXPECT_FALSE(cache.load(key).has_value());  // cold: miss
  EXPECT_TRUE(cache.store(key, sample_artifact()));
  std::optional<UnitArtifact> loaded = cache.load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->primary.source, "source body");
  EXPECT_EQ(loaded->primary.schedule, "schedule body");
  EXPECT_EQ(loaded->primary.c_code, "c body");

  ArtifactCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.corrupt, 0u);
}

TEST(ArtifactCache, KeyDependsOnEveryIngredient) {
  ArtifactCache cache = make_cache(fresh_dir("keys"));
  BatchInput input = sample_input();
  CompileOptions options;
  std::string base = cache.key(input, options);

  // Source bytes.
  BatchInput edited = input;
  edited.source = std::string(kRelaxationSource) + "\n";
  EXPECT_NE(cache.key(edited, options), base);

  // Unit name.
  BatchInput renamed = input;
  renamed.name = "other.ps";
  EXPECT_NE(cache.key(renamed, options), base);

  // EQN flag (same bytes, different front end).
  BatchInput eqn = input;
  eqn.is_eqn = true;
  EXPECT_NE(cache.key(eqn, options), base);

  // Every output-changing compile option.
  for (int bit = 0; bit < 6; ++bit) {
    CompileOptions changed = options;
    switch (bit) {
      case 0: changed.merge_loops = !changed.merge_loops; break;
      case 1: changed.apply_hyperplane = !changed.apply_hyperplane; break;
      case 2: changed.exact_bounds = !changed.exact_bounds; break;
      case 3: changed.emit_c_code = !changed.emit_c_code; break;
      case 4: changed.emit_openmp = !changed.emit_openmp; break;
      case 5:
        changed.use_virtual_windows = !changed.use_virtual_windows;
        break;
    }
    EXPECT_NE(cache.key(input, changed), base) << "option bit " << bit;
  }
  CompileOptions solver = options;
  solver.solver.bound += 1;
  EXPECT_NE(cache.key(input, solver), base);

  // Compiler version: a bump invalidates the whole cache.
  ArtifactCache bumped =
      make_cache(fresh_dir("keys2"), 0, "psc-next");
  EXPECT_NE(bumped.key(input, options), base);
}

TEST(ArtifactCache, ContainsProbesWithoutTouchingAccountingOrLru) {
  ArtifactCache cache = make_cache(fresh_dir("contains"));
  std::string key = cache.key(sample_input(), CompileOptions{});
  EXPECT_FALSE(cache.contains(key));
  ASSERT_TRUE(cache.store(key, sample_artifact()));
  EXPECT_TRUE(cache.contains(key));

  // The probe is the daemon reactor's admission check: it must be free
  // of side effects -- no hit/miss counters, no mtime refresh.
  ArtifactCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(ArtifactCache, PruneOlderThanReapsIdleEntriesAndSparesFreshOnes) {
  std::string dir = fresh_dir("prune");
  ArtifactCache cache = make_cache(dir);
  std::string idle_key = cache.key(sample_input(), CompileOptions{});
  BatchInput other = sample_input();
  other.name = "fresh.ps";
  std::string fresh_key = cache.key(other, CompileOptions{});
  ASSERT_TRUE(cache.store(idle_key, sample_artifact()));
  ASSERT_TRUE(cache.store(fresh_key, sample_artifact()));

  // Nothing is older than the TTL yet: prune is a no-op.
  EXPECT_EQ(cache.prune_older_than(std::chrono::seconds(3600)), 0u);

  // Backdate one entry past the TTL; only it is reaped.
  fs::path idle_path = fs::path(dir) / (idle_key + ".art");
  ASSERT_TRUE(fs::exists(idle_path));
  fs::last_write_time(idle_path, fs::file_time_type::clock::now() -
                                     std::chrono::hours(2));
  EXPECT_EQ(cache.prune_older_than(std::chrono::seconds(3600)), 1u);
  EXPECT_FALSE(cache.contains(idle_key));
  EXPECT_TRUE(cache.contains(fresh_key));
  EXPECT_EQ(cache.stats().ttl_pruned, 1u);

  // A load refreshes the mtime, so the TTL measures idle time: a
  // backdated-then-loaded entry survives the next prune.
  fs::path fresh_path = fs::path(dir) / (fresh_key + ".art");
  fs::last_write_time(fresh_path, fs::file_time_type::clock::now() -
                                      std::chrono::hours(2));
  ASSERT_TRUE(cache.load(fresh_key).has_value());
  EXPECT_EQ(cache.prune_older_than(std::chrono::seconds(3600)), 0u);
  EXPECT_TRUE(cache.contains(fresh_key));
}

TEST(ArtifactCache, VersionBumpMissesOldEntries) {
  std::string dir = fresh_dir("version");
  BatchInput input = sample_input();
  std::string old_key;
  {
    ArtifactCache cache = make_cache(dir, 0, "psc-old");
    old_key = cache.key(input, CompileOptions{});
    ASSERT_TRUE(cache.store(old_key, sample_artifact()));
  }
  // Same directory, new compiler version: the old artifact is simply
  // unreachable (different key), never served.
  ArtifactCache cache = make_cache(dir, 0, "psc-new");
  std::string new_key = cache.key(input, CompileOptions{});
  EXPECT_NE(new_key, old_key);
  EXPECT_FALSE(cache.load(new_key).has_value());
}

TEST(ArtifactCache, TruncatedFileIsAMissAndIsRemoved) {
  std::string dir = fresh_dir("truncated");
  ArtifactCache cache = make_cache(dir);
  std::string key = cache.key(sample_input(), CompileOptions{});
  ASSERT_TRUE(cache.store(key, sample_artifact()));

  // Truncate the stored file mid-payload.
  std::string path = dir + "/" + key + ".art";
  ASSERT_TRUE(fs::exists(path));
  fs::resize_file(path, fs::file_size(path) / 2);

  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
  // The bad entry was deleted so it cannot keep wasting probes.
  EXPECT_FALSE(fs::exists(path));
  // And a fresh store over the same key works.
  EXPECT_TRUE(cache.store(key, sample_artifact()));
  EXPECT_TRUE(cache.load(key).has_value());
}

TEST(ArtifactCache, GarbageFileIsAMissNotACrash) {
  std::string dir = fresh_dir("garbage");
  ArtifactCache cache = make_cache(dir);
  std::string key = cache.key(sample_input(), CompileOptions{});
  fs::create_directories(dir);
  {
    std::ofstream out(dir + "/" + key + ".art", std::ios::binary);
    out << "PSART1\n\xff\xff\xff\xff not a real artifact";
  }
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);

  // Bad magic entirely.
  {
    std::ofstream out(dir + "/" + key + ".art", std::ios::binary);
    out << "ELF\x7f whatever";
  }
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 2u);
}

TEST(ArtifactCache, TrailingBytesAreCorrupt) {
  std::string dir = fresh_dir("trailing");
  ArtifactCache cache = make_cache(dir);
  std::string key = cache.key(sample_input(), CompileOptions{});
  ASSERT_TRUE(cache.store(key, sample_artifact()));
  {
    std::ofstream out(dir + "/" + key + ".art",
                      std::ios::binary | std::ios::app);
    out << "junk appended after a valid artifact";
  }
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST(ArtifactCache, LoadRawReturnsTheExactStoredEncoding) {
  std::string dir = fresh_dir("raw");
  ArtifactCache cache = make_cache(dir);
  std::string key = cache.key(sample_input(), CompileOptions{});
  UnitArtifact artifact = sample_artifact();
  ASSERT_TRUE(cache.store(key, artifact));

  std::optional<std::string> raw = cache.load_raw(key);
  ASSERT_TRUE(raw.has_value());
  // The raw bytes are precisely the write_artifact encoding: decoding
  // them reproduces the artifact, and re-encoding the decode
  // reproduces the bytes (so a spliced daemon reply is byte-identical
  // to a decoded-and-re-encoded one).
  WireReader reader(*raw);
  UnitArtifact decoded = read_artifact(reader);
  reader.expect_end();
  EXPECT_EQ(decoded.primary.c_code, artifact.primary.c_code);
  WireWriter writer;
  write_artifact(writer, decoded);
  EXPECT_EQ(writer.bytes(), *raw);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ArtifactCache, LoadRawNeverServesCorruptEntries) {
  std::string dir = fresh_dir("rawcorrupt");
  ArtifactCache cache = make_cache(dir);
  std::string key = cache.key(sample_input(), CompileOptions{});
  ASSERT_TRUE(cache.store(key, sample_artifact()));
  std::string path = dir + "/" + key + ".art";
  fs::resize_file(path, fs::file_size(path) / 2);

  // Same contract as load(): the truncated entry is a recorded miss,
  // deleted, and never spliced onto the wire.
  EXPECT_FALSE(cache.load_raw(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
  EXPECT_FALSE(fs::exists(path));

  // Trailing bytes after a valid artifact are corrupt too.
  ASSERT_TRUE(cache.store(key, sample_artifact()));
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "junk";
  }
  EXPECT_FALSE(cache.load_raw(key).has_value());
  EXPECT_EQ(cache.stats().corrupt, 2u);
}

TEST(ArtifactCache, EvictionKeepsTheBudgetAndTheNewestEntry) {
  std::string dir = fresh_dir("evict");
  // Budget of ~2 artifacts: storing several must evict the oldest.
  UnitArtifact big = sample_artifact();
  big.primary.c_code = std::string(4096, 'x');
  WireWriter writer;
  write_artifact(writer, big);
  size_t entry_size = writer.bytes().size() + 8;
  ArtifactCache cache = make_cache(dir, 2 * entry_size + 16);

  std::vector<std::string> keys;
  for (int i = 0; i < 5; ++i) {
    BatchInput input{"unit" + std::to_string(i) + ".ps", "source", false};
    std::string key = cache.key(input, CompileOptions{});
    ASSERT_TRUE(cache.store(key, big));
    keys.push_back(key);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  // The most recent store always survives (a cache smaller than one
  // entry must not thrash away what was just written).
  EXPECT_TRUE(cache.load(keys.back()).has_value());
  // Directory stayed within budget (pre-eviction peak is one entry over).
  uintmax_t total = 0;
  for (const auto& item : fs::directory_iterator(dir))
    if (item.path().extension() == ".art") total += item.file_size();
  EXPECT_LE(total, 2 * entry_size + 16 + entry_size);
}

TEST(ArtifactCache, ConcurrentStoresAndLoadsAreSafe) {
  std::string dir = fresh_dir("concurrent");
  ArtifactCache cache = make_cache(dir);
  // Hammer one key from several threads: readers must only ever see a
  // complete artifact (temp file + rename) or a miss, never a torn one.
  std::string key = cache.key(sample_input(), CompileOptions{});
  std::vector<std::thread> threads;
  std::atomic<int> torn{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        if (t % 2 == 0) {
          cache.store(key, sample_artifact("writer" + std::to_string(t)));
        } else {
          std::optional<UnitArtifact> got = cache.load(key);
          if (got && got->primary.source.rfind("source writer", 0) != 0)
            ++torn;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(cache.stats().corrupt, 0u);
}

TEST(ArtifactCache, NativeObjectStoreRoundTripsAndCounts) {
  ArtifactCache cache = make_cache(fresh_dir("native"));
  const std::string key(64, 'a');
  EXPECT_FALSE(cache.native_lookup(key).has_value());  // cold: miss

  const std::string so_bytes = "\x7f" "ELF not really, but bytes";
  std::optional<std::string> stored = cache.native_publish(key, so_bytes);
  ASSERT_TRUE(stored.has_value());
  EXPECT_TRUE(fs::exists(*stored));
  EXPECT_EQ(fs::path(*stored).extension(), ".so");

  std::optional<std::string> found = cache.native_lookup(key);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, *stored);
  std::ifstream in(*found, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, so_bytes);

  ArtifactCacheStats stats = cache.stats();
  EXPECT_EQ(stats.native_misses, 1u);
  EXPECT_EQ(stats.native_stores, 1u);
  EXPECT_EQ(stats.native_hits, 1u);

  cache.native_discard(key);
  EXPECT_FALSE(fs::exists(*stored));
  EXPECT_FALSE(cache.native_lookup(key).has_value());
}

TEST(ArtifactCache, NativeObjectsShareTheEvictionBudget) {
  // Unpinned .so entries are ordinary cache tenants: the size budget
  // counts their bytes and eviction reclaims them oldest-first.
  ArtifactCache cache = make_cache(fresh_dir("native_evict"), 1);
  const std::string key(64, 'b');
  std::optional<std::string> stored =
      cache.native_publish(key, std::string(1024, 'x'));
  ASSERT_TRUE(stored.has_value());

  // Nothing pins the object, so the next store's eviction pass (over a
  // 1-byte budget) reclaims it while keeping the entry just written.
  EXPECT_TRUE(cache.store(std::string(64, 'c'), sample_artifact()));
  EXPECT_FALSE(fs::exists(*stored));
  EXPECT_GE(cache.stats().evictions, 1u);
}

}  // namespace
}  // namespace ps
