// The warm compile daemon over its unix-domain socket and optional TCP
// listener: lifecycle, request/reply fidelity (streamed v2 replies),
// concurrent clients on one daemon, admission control under a full
// queue, the stats endpoint, the cache janitor, and resilience to
// malformed frames.

#include "service/daemon.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/json_lint.hpp"
#include "driver/compiler.hpp"
#include "driver/paper_modules.hpp"

namespace fs = std::filesystem;

namespace ps {
namespace {

std::string fresh_socket(const std::string& tag) {
  static int counter = 0;
  // Keep it short: sun_path caps at ~108 bytes and TempDir can be long.
  std::string path = "/tmp/psc_t_" + std::to_string(getpid()) + "_" + tag +
                     std::to_string(counter++) + ".sock";
  ::unlink(path.c_str());
  return path;
}

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  std::string dir = std::string(::testing::TempDir()) + "psc_daemon_" + tag +
                    "_" + std::to_string(getpid()) + "_" +
                    std::to_string(counter++);
  fs::remove_all(dir);
  return dir;
}

/// A daemon on its own thread; stops and joins on destruction.
class DaemonFixture {
 public:
  explicit DaemonFixture(DaemonOptions options) : daemon_(options) {
    started_ = daemon_.start();
    if (started_) thread_ = std::thread([this] { daemon_.serve(); });
  }
  ~DaemonFixture() {
    daemon_.request_stop();
    if (thread_.joinable()) thread_.join();
  }
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] Daemon& daemon() { return daemon_; }

 private:
  Daemon daemon_;
  bool started_ = false;
  std::thread thread_;
};

ServiceRequest corpus_request() {
  ServiceRequest request;
  for (const PaperModule& module : paper_corpus())
    request.units.push_back({module.name, module.source, false});
  return request;
}

TEST(Daemon, PingPongAndGracefulShutdown) {
  std::string sock = fresh_socket("ping");
  DaemonOptions options;
  options.socket_path = sock;
  auto fixture = std::make_unique<DaemonFixture>(options);
  ASSERT_TRUE(fixture->started()) << fixture->daemon().error();

  DaemonClient client;
  ASSERT_TRUE(client.connect(sock)) << client.error();
  EXPECT_TRUE(client.ping());
  EXPECT_TRUE(client.shutdown());
  fixture.reset();  // serve() must have returned; join completes
  // The socket file is removed on shutdown.
  EXPECT_FALSE(fs::exists(sock));
}

TEST(Daemon, CompileReplyMatchesColdOneShot) {
  std::string sock = fresh_socket("compile");
  DaemonOptions options;
  options.socket_path = sock;
  options.service.cache_dir = fresh_dir("compile");
  DaemonFixture fixture(options);
  ASSERT_TRUE(fixture.started()) << fixture.daemon().error();

  DaemonClient client;
  ASSERT_TRUE(client.connect(sock));
  ServiceRequest request = corpus_request();

  std::optional<RemoteReply> cold = client.compile(request);
  ASSERT_TRUE(cold.has_value()) << client.error();
  ASSERT_EQ(cold->units.size(), request.units.size());
  EXPECT_EQ(cold->cache_hits, 0u);

  // Daemon-path artifacts are byte-identical to a cold in-process
  // compile of the same unit.
  for (size_t i = 0; i < request.units.size(); ++i) {
    CompileResult reference = Compiler(request.options)
                                  .compile(request.units[i].source,
                                           request.units[i].name);
    const UnitArtifact& remote = cold->units[i].artifact;
    EXPECT_EQ(remote.ok, reference.ok);
    EXPECT_EQ(remote.diagnostics, reference.diagnostics);
    EXPECT_EQ(remote.primary.c_code, reference.primary->c_code);
    EXPECT_EQ(remote.primary.source, reference.primary->source);
  }

  // Second request on the same warm daemon: all hits, same bytes.
  std::optional<RemoteReply> warm = client.compile(request);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->cache_hits, request.units.size());
  for (size_t i = 0; i < request.units.size(); ++i) {
    EXPECT_TRUE(warm->units[i].cache_hit);
    EXPECT_EQ(warm->units[i].artifact.primary.c_code,
              cold->units[i].artifact.primary.c_code);
    EXPECT_EQ(warm->units[i].artifact.primary.schedule,
              cold->units[i].artifact.primary.schedule);
  }
}

TEST(Daemon, SpilledCacheHitsSpliceRawBytesByteIdentically) {
  // Under spill, a warm request's artifacts live only on disk. The
  // reply path used to decode each spilled artifact from the cache
  // file and re-encode it into the frame; it now splices the validated
  // raw bytes. The client-visible reply must be indistinguishable.
  std::string sock = fresh_socket("spill");
  DaemonOptions options;
  options.socket_path = sock;
  options.service.cache_dir = fresh_dir("spill");
  options.service.spill_after = 1;  // every multi-unit batch spills
  DaemonFixture fixture(options);
  ASSERT_TRUE(fixture.started()) << fixture.daemon().error();

  DaemonClient client;
  ASSERT_TRUE(client.connect(sock));
  ServiceRequest request = corpus_request();

  std::optional<RemoteReply> cold = client.compile(request);
  ASSERT_TRUE(cold.has_value()) << client.error();
  std::optional<RemoteReply> warm = client.compile(request);
  ASSERT_TRUE(warm.has_value()) << client.error();
  EXPECT_EQ(warm->cache_hits, request.units.size());

  for (size_t i = 0; i < request.units.size(); ++i) {
    EXPECT_TRUE(warm->units[i].cache_hit);
    const UnitArtifact& a = cold->units[i].artifact;
    const UnitArtifact& b = warm->units[i].artifact;
    EXPECT_EQ(a.module_name, b.module_name);
    EXPECT_EQ(a.diagnostics, b.diagnostics);
    EXPECT_EQ(a.primary.source, b.primary.source);
    EXPECT_EQ(a.primary.schedule, b.primary.schedule);
    EXPECT_EQ(a.primary.c_code, b.primary.c_code);
    EXPECT_EQ(a.has_transform, b.has_transform);
    EXPECT_EQ(a.transformed.c_code, b.transformed.c_code);
  }
}

TEST(Daemon, ConcurrentClientsGetCorrectIsolatedReplies) {
  std::string sock = fresh_socket("concurrent");
  DaemonOptions options;
  options.socket_path = sock;
  options.service.cache_dir = fresh_dir("concurrent");
  options.service.jobs = 2;
  DaemonFixture fixture(options);
  ASSERT_TRUE(fixture.started()) << fixture.daemon().error();

  // Each client sends a different single-unit request repeatedly; the
  // replies must always be for that client's unit (no cross-talk) and
  // always complete.
  const std::vector<PaperModule>& corpus = paper_corpus();
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const PaperModule& module = corpus[c % corpus.size()];
      DaemonClient client;
      if (!client.connect(sock)) {
        ++bad;
        return;
      }
      ServiceRequest request;
      request.units.push_back({module.name, module.source, false});
      for (int i = 0; i < 5; ++i) {
        std::optional<RemoteReply> reply = client.compile(request);
        if (!reply || reply->units.size() != 1 ||
            reply->units[0].name != module.name ||
            !reply->units[0].artifact.ok)
          ++bad;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GE(fixture.daemon().service().stats().requests, 20u);
}

TEST(Daemon, MalformedFrameGetsErrorReplyAndDaemonSurvives) {
  std::string sock = fresh_socket("malformed");
  DaemonOptions options;
  options.socket_path = sock;
  DaemonFixture fixture(options);
  ASSERT_TRUE(fixture.started()) << fixture.daemon().error();

  // Hand-roll a client that frames garbage bytes.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, sock.c_str(), sock.size() + 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // MsgKind::CompileRequest byte followed by truncated junk.
  std::string junk("\x01junkjunk", 9);
  ASSERT_TRUE(write_frame(fd, junk));
  std::optional<std::string> reply = read_frame(fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(peek_kind(*reply), MsgKind::Error);
  ::close(fd);

  // The daemon is still alive and serving.
  DaemonClient client;
  ASSERT_TRUE(client.connect(sock));
  EXPECT_TRUE(client.ping());
}

TEST(Daemon, RefusesToDoubleBindALiveSocket) {
  std::string sock = fresh_socket("double");
  DaemonOptions options;
  options.socket_path = sock;
  DaemonFixture fixture(options);
  ASSERT_TRUE(fixture.started());

  Daemon second((DaemonOptions{sock, {}}));
  EXPECT_FALSE(second.start());
  EXPECT_NE(second.error().find("already listening"), std::string::npos)
      << second.error();
}

TEST(Daemon, ReclaimsAStaleSocketFile) {
  std::string sock = fresh_socket("stale");
  {
    // Simulate a crash: bind then abandon without unlinking.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, sock.c_str(), sock.size() + 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    ::close(fd);  // file stays behind, nobody listens
  }
  ASSERT_TRUE(fs::exists(sock));
  DaemonOptions options;
  options.socket_path = sock;
  DaemonFixture fixture(options);
  EXPECT_TRUE(fixture.started()) << fixture.daemon().error();
  DaemonClient client;
  EXPECT_TRUE(client.connect(sock));
  EXPECT_TRUE(client.ping());
}

TEST(Daemon, RefusesAClientFromADifferentCompilerVersion) {
  std::string sock = fresh_socket("version");
  DaemonOptions options;
  options.socket_path = sock;
  options.service.version = "psc-daemon-build";
  DaemonFixture fixture(options);
  ASSERT_TRUE(fixture.started());

  DaemonClient client;
  ASSERT_TRUE(client.connect(sock));
  ServiceRequest request;
  request.units.push_back({"a.ps", kRelaxationSource, false});
  // request.client_version defaults to this build's kPscVersion, which
  // differs from the daemon's: the daemon must refuse (the CLI then
  // compiles in-process) rather than serve another build's output.
  EXPECT_FALSE(client.compile(request).has_value());
  EXPECT_NE(client.error().find("version mismatch"), std::string::npos)
      << client.error();
  // The connection survives the refusal.
  EXPECT_TRUE(client.ping());
  // A matching version is served.
  request.client_version = "psc-daemon-build";
  EXPECT_TRUE(client.compile(request).has_value()) << client.error();
}

TEST(DaemonClient, ConnectToNothingFailsCleanly) {
  DaemonClient client;
  EXPECT_FALSE(client.connect("/tmp/psc_nonexistent_daemon.sock"));
  EXPECT_FALSE(client.connected());
  EXPECT_FALSE(client.ping());
  ServiceRequest request;
  request.units.push_back({"a.ps", kRelaxationSource, false});
  EXPECT_FALSE(client.compile(request).has_value());
}

TEST(Daemon, TcpListenerServesByteIdenticalReplies) {
  DaemonOptions options;
  options.socket_path = fresh_socket("tcp");
  options.listen = "127.0.0.1:0";  // ephemeral port, read back below
  options.service.cache_dir = fresh_dir("tcp");
  DaemonFixture fixture(options);
  ASSERT_TRUE(fixture.started()) << fixture.daemon().error();
  ASSERT_NE(fixture.daemon().tcp_port(), 0);

  ServiceRequest request = corpus_request();

  DaemonClient unix_client;
  ASSERT_TRUE(unix_client.connect(options.socket_path)) << unix_client.error();
  std::optional<RemoteReply> cold = unix_client.compile(request);
  ASSERT_TRUE(cold.has_value()) << unix_client.error();

  DaemonClient tcp_client;
  std::string address =
      "127.0.0.1:" + std::to_string(fixture.daemon().tcp_port());
  ASSERT_TRUE(tcp_client.connect_tcp(address)) << tcp_client.error();
  EXPECT_TRUE(tcp_client.ping());
  std::optional<RemoteReply> warm = tcp_client.compile(request);
  ASSERT_TRUE(warm.has_value()) << tcp_client.error();

  // Both transports run the same framing protocol over the same
  // service: the TCP reply must be indistinguishable from the unix one.
  EXPECT_EQ(warm->cache_hits, request.units.size());
  ASSERT_EQ(warm->units.size(), cold->units.size());
  for (size_t i = 0; i < cold->units.size(); ++i) {
    const UnitArtifact& a = cold->units[i].artifact;
    const UnitArtifact& b = warm->units[i].artifact;
    EXPECT_EQ(a.module_name, b.module_name);
    EXPECT_EQ(a.diagnostics, b.diagnostics);
    EXPECT_EQ(a.primary.source, b.primary.source);
    EXPECT_EQ(a.primary.schedule, b.primary.schedule);
    EXPECT_EQ(a.primary.c_code, b.primary.c_code);
  }
}

TEST(Daemon, EightConcurrentClientsAcrossUnixAndTcp) {
  DaemonOptions options;
  options.socket_path = fresh_socket("mixed");
  options.listen = "127.0.0.1:0";
  options.service.cache_dir = fresh_dir("mixed");
  options.service.jobs = 2;
  DaemonFixture fixture(options);
  ASSERT_TRUE(fixture.started()) << fixture.daemon().error();
  std::string address =
      "127.0.0.1:" + std::to_string(fixture.daemon().tcp_port());

  // Eight clients, alternating transport, each hammering its own unit:
  // every reply must be for that client's unit and must complete.
  const std::vector<PaperModule>& corpus = paper_corpus();
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      const PaperModule& module = corpus[c % corpus.size()];
      DaemonClient client;
      bool connected = (c % 2 == 0) ? client.connect(options.socket_path)
                                    : client.connect_tcp(address);
      if (!connected) {
        ++bad;
        return;
      }
      ServiceRequest request;
      request.units.push_back({module.name, module.source, false});
      for (int i = 0; i < 4; ++i) {
        std::optional<RemoteReply> reply = client.compile(request);
        if (!reply || reply->units.size() != 1 ||
            reply->units[0].name != module.name ||
            !reply->units[0].artifact.ok)
          ++bad;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GE(fixture.daemon().service().stats().requests, 8u);
}

TEST(Daemon, FullQueueAnswersBusyButCacheHitsStillServeInline) {
  DaemonOptions options;
  options.socket_path = fresh_socket("busy");
  options.service.cache_dir = fresh_dir("busy");
  options.max_queue = 0;  // every request that would compile is refused
  DaemonFixture fixture(options);
  ASSERT_TRUE(fixture.started()) << fixture.daemon().error();

  ServiceRequest request;
  request.units.push_back({"relax.ps", kRelaxationSource, false});

  // Cold: the artifact is not cached, so the request needs the compile
  // queue -- which admits nothing. The reply is a prompt Busy, never a
  // hang, and the client reports it distinctly from an error.
  DaemonClient client;
  ASSERT_TRUE(client.connect(options.socket_path));
  EXPECT_FALSE(client.compile(request).has_value());
  EXPECT_TRUE(client.busy());
  EXPECT_NE(client.error().find("daemon busy"), std::string::npos)
      << client.error();
  EXPECT_NE(client.error().find("queue full"), std::string::npos)
      << client.error();
  // The connection survives a Busy rejection.
  EXPECT_TRUE(client.ping());

  // Seed the shared artifact cache out of band (same dir + version =
  // same keys), then retry: cache-complete requests bypass the queue
  // and are served inline on the reactor even at max_queue = 0.
  {
    CompileService seeder(options.service);
    ServiceResponse seeded = seeder.compile(request);
    ASSERT_EQ(seeded.units.size(), 1u);
    ASSERT_TRUE(seeded.units[0].artifact != nullptr &&
                seeded.units[0].artifact->ok);
  }
  std::optional<RemoteReply> warm = client.compile(request);
  ASSERT_TRUE(warm.has_value()) << client.error();
  EXPECT_FALSE(client.busy());
  ASSERT_EQ(warm->units.size(), 1u);
  EXPECT_TRUE(warm->units[0].cache_hit);
  EXPECT_TRUE(warm->units[0].artifact.ok);

  // The stats endpoint sees one rejection and one inline serve.
  std::optional<std::string> stats = client.stats(true);
  ASSERT_TRUE(stats.has_value()) << client.error();
  EXPECT_NE(stats->find("\"busy_rejections\": 1"), std::string::npos)
      << *stats;
  EXPECT_NE(stats->find("\"served_inline\": 1"), std::string::npos) << *stats;
}

TEST(Daemon, StatsCountersReconcileWithClientObservations) {
  DaemonOptions options;
  options.socket_path = fresh_socket("stats");
  options.service.cache_dir = fresh_dir("stats");
  DaemonFixture fixture(options);
  ASSERT_TRUE(fixture.started()) << fixture.daemon().error();

  DaemonClient client;
  ASSERT_TRUE(client.connect(options.socket_path));
  ServiceRequest request = corpus_request();
  std::optional<RemoteReply> cold = client.compile(request);
  ASSERT_TRUE(cold.has_value()) << client.error();
  std::optional<RemoteReply> warm = client.compile(request);
  ASSERT_TRUE(warm.has_value()) << client.error();

  // The cold batch went through the compile queue, the warm one was
  // cache-complete and served inline; the daemon's counters must tell
  // exactly that story.
  std::optional<std::string> json = client.stats(true);
  ASSERT_TRUE(json.has_value()) << client.error();
  EXPECT_NE(json->find("\"compile_requests\": 2"), std::string::npos) << *json;
  EXPECT_NE(json->find("\"queued\": 1"), std::string::npos) << *json;
  EXPECT_NE(json->find("\"served_inline\": 1"), std::string::npos) << *json;
  EXPECT_NE(json->find("\"busy_rejections\": 0"), std::string::npos) << *json;
  EXPECT_NE(json->find("\"queue_depth\": 0"), std::string::npos) << *json;
  // Service totals reconcile with what the two replies claimed.
  size_t units = request.units.size();
  EXPECT_NE(json->find("\"cache_hits\": " + std::to_string(warm->cache_hits)),
            std::string::npos)
      << *json;
  EXPECT_NE(json->find("\"units\": " + std::to_string(2 * units)),
            std::string::npos)
      << *json;

  // The text rendering carries the same numbers for humans.
  std::optional<std::string> text = client.stats(false);
  ASSERT_TRUE(text.has_value()) << client.error();
  EXPECT_NE(text->find("compile requests"), std::string::npos) << *text;
  EXPECT_NE(text->find("served inline"), std::string::npos) << *text;
}

TEST(Daemon, VersionMismatchCountsAsRejectedNotAsACompileRequest) {
  DaemonOptions options;
  options.socket_path = fresh_socket("reject");
  options.service.cache_dir = fresh_dir("reject");
  DaemonFixture fixture(options);
  ASSERT_TRUE(fixture.started()) << fixture.daemon().error();

  DaemonClient client;
  ASSERT_TRUE(client.connect(options.socket_path));
  ServiceRequest mismatched = corpus_request();
  mismatched.client_version = "some-other-build";
  std::optional<RemoteReply> refused = client.compile(mismatched);
  EXPECT_FALSE(refused.has_value());
  EXPECT_NE(client.error().find("version mismatch"), std::string::npos)
      << client.error();

  // One good request afterwards. The refusal must appear as `rejected`
  // and never as a compile request: compile_requests counts admitted
  // requests only, so served_inline + queued + busy_rejections always
  // sums back to it (the reconcile identity the stats report).
  ASSERT_TRUE(client.connect(options.socket_path));
  ServiceRequest good = corpus_request();
  ASSERT_TRUE(client.compile(good).has_value()) << client.error();

  std::optional<std::string> json = client.stats(true);
  ASSERT_TRUE(json.has_value()) << client.error();
  EXPECT_NE(json->find("\"rejected\": 1"), std::string::npos) << *json;
  EXPECT_NE(json->find("\"compile_requests\": 1"), std::string::npos)
      << *json;
  EXPECT_NE(json->find("\"queued\": 1"), std::string::npos) << *json;
  EXPECT_NE(json->find("\"served_inline\": 0"), std::string::npos) << *json;
  EXPECT_NE(json->find("\"busy_rejections\": 0"), std::string::npos)
      << *json;
}

TEST(Daemon, StatsCarryLatencyPercentilesAndUptime) {
  DaemonOptions options;
  options.socket_path = fresh_socket("latency");
  options.service.cache_dir = fresh_dir("latency");
  DaemonFixture fixture(options);
  ASSERT_TRUE(fixture.started()) << fixture.daemon().error();

  DaemonClient client;
  ASSERT_TRUE(client.connect(options.socket_path));
  ServiceRequest request = corpus_request();
  ASSERT_TRUE(client.compile(request).has_value()) << client.error();
  ASSERT_TRUE(client.compile(request).has_value()) << client.error();

  std::optional<std::string> json = client.stats(true);
  ASSERT_TRUE(json.has_value()) << client.error();
  // The document must be real JSON, and the admission ledger must
  // reconcile: every admitted request was served inline, queued, or
  // busy-rejected -- nothing else.
  std::string parse_error;
  std::shared_ptr<test::JsonValue> doc =
      test::JsonParser::parse(*json, &parse_error);
  ASSERT_NE(doc, nullptr) << parse_error << "\n" << *json;
  const test::JsonValue* daemon = doc->get("daemon");
  ASSERT_NE(daemon, nullptr) << *json;
  auto field = [&](const char* name) {
    const test::JsonValue* value = daemon->get(name);
    EXPECT_NE(value, nullptr) << name << " missing in " << *json;
    return value == nullptr ? -1.0 : value->number;
  };
  EXPECT_EQ(field("compile_requests"),
            field("served_inline") + field("queued") +
                field("busy_rejections"))
      << *json;
  EXPECT_GT(field("uptime_ms"), 0.0) << *json;
  const test::JsonValue* wait = daemon->get("queue_wait_ms");
  ASSERT_NE(wait, nullptr) << *json;
  ASSERT_NE(wait->get("count"), nullptr) << *json;
  EXPECT_NE(json->find("\"uptime_ms\": "), std::string::npos) << *json;
  EXPECT_NE(json->find("\"queue_wait_ms\": {\"count\": "),
            std::string::npos)
      << *json;
  EXPECT_NE(json->find("\"service_ms\": {\"count\": "), std::string::npos)
      << *json;
  EXPECT_NE(json->find("\"p50\": "), std::string::npos) << *json;
  EXPECT_NE(json->find("\"p95\": "), std::string::npos) << *json;
  EXPECT_NE(json->find("\"p99\": "), std::string::npos) << *json;

  std::optional<std::string> text = client.stats(false);
  ASSERT_TRUE(text.has_value()) << client.error();
  EXPECT_NE(text->find("queue wait: p50 "), std::string::npos) << *text;
  EXPECT_NE(text->find("service time: p50 "), std::string::npos) << *text;
  EXPECT_NE(text->find("uptime "), std::string::npos) << *text;
}

TEST(Daemon, JanitorPrunesIdleCacheEntriesButNotFreshOnes) {
  DaemonOptions options;
  options.socket_path = fresh_socket("janitor");
  options.service.cache_dir = fresh_dir("janitor");
  options.cache_ttl = std::chrono::seconds(1);
  DaemonFixture fixture(options);
  ASSERT_TRUE(fixture.started()) << fixture.daemon().error();

  DaemonClient client;
  ASSERT_TRUE(client.connect(options.socket_path));
  ServiceRequest request = corpus_request();
  ASSERT_TRUE(client.compile(request).has_value()) << client.error();

  // Backdate every artifact beyond the TTL; the janitor (period =
  // ttl / 2, floored at 500ms) must reap them within a few seconds.
  size_t backdated = 0;
  for (const auto& entry :
       fs::directory_iterator(options.service.cache_dir)) {
    if (entry.path().extension() != ".art") continue;
    fs::last_write_time(entry.path(),
                        fs::file_time_type::clock::now() -
                            std::chrono::hours(1));
    ++backdated;
  }
  ASSERT_EQ(backdated, request.units.size());

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  size_t remaining = backdated;
  while (std::chrono::steady_clock::now() < deadline) {
    remaining = 0;
    for (const auto& entry :
         fs::directory_iterator(options.service.cache_dir))
      if (entry.path().extension() == ".art") ++remaining;
    if (remaining == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_EQ(remaining, 0u) << remaining << " artifacts survived the TTL";

  // The daemon is still healthy: a recompile misses (the pruned
  // entries are really gone) and the stats endpoint accounts the
  // reaping. (Idle-vs-fresh selectivity is covered deterministically
  // by the ArtifactCache prune_older_than test -- with a 1s TTL,
  // anything in this daemon's cache is prunable again within a
  // second.)
  std::optional<RemoteReply> recompiled = client.compile(request);
  ASSERT_TRUE(recompiled.has_value()) << client.error();
  EXPECT_EQ(recompiled->cache_hits, 0u);
  std::optional<std::string> stats = client.stats(true);
  ASSERT_TRUE(stats.has_value());
  size_t pos = stats->find("\"ttl_pruned\": ");
  ASSERT_NE(pos, std::string::npos) << *stats;
  size_t pruned = std::stoul(stats->substr(pos + 14));
  EXPECT_GE(pruned, backdated) << *stats;
}

TEST(Daemon, BindFailureReportsTheBindErrno) {
  // A directory at the socket path makes bind() fail with EADDRINUSE,
  // the liveness probe fail (nothing listens), and the unlink-rebind
  // reclaim fail too. The reported errno must be the bind's own --
  // this used to surface whatever errno the probe left behind.
  std::string dir = fresh_socket("errdir");
  ASSERT_TRUE(fs::create_directory(dir));
  DaemonOptions options;
  options.socket_path = dir;
  Daemon daemon(options);
  EXPECT_FALSE(daemon.start());
  EXPECT_NE(daemon.error().find("bind: "), std::string::npos)
      << daemon.error();
  EXPECT_NE(daemon.error().find(std::strerror(EADDRINUSE)),
            std::string::npos)
      << daemon.error();
  fs::remove_all(dir);
}

TEST(Daemon, RefusesABadListenAddress) {
  DaemonOptions options;
  options.socket_path = fresh_socket("badlisten");
  options.listen = "no-port-here";
  Daemon daemon(options);
  EXPECT_FALSE(daemon.start());
  EXPECT_NE(daemon.error().find("HOST:PORT"), std::string::npos)
      << daemon.error();
}

TEST(DaemonClient, ConnectTcpToNothingFailsCleanly) {
  DaemonClient client;
  // Port 1 on localhost: reserved, nothing listens in the sandbox.
  EXPECT_FALSE(client.connect_tcp("127.0.0.1:1"));
  EXPECT_FALSE(client.connected());
  EXPECT_FALSE(client.error().empty());
}

TEST(Daemon, ShutdownDrainsOtherClientsInFlight) {
  std::string sock = fresh_socket("drain");
  DaemonOptions options;
  options.socket_path = sock;
  options.service.cache_dir = fresh_dir("drain");
  DaemonFixture fixture(options);
  ASSERT_TRUE(fixture.started());

  // One client keeps an idle connection open; a second one shuts the
  // daemon down. serve() must still return (the idle client's thread
  // notices the stop flag) -- the fixture destructor would hang
  // otherwise, which is the real assertion here.
  DaemonClient idle;
  ASSERT_TRUE(idle.connect(sock));
  EXPECT_TRUE(idle.ping());

  DaemonClient killer;
  ASSERT_TRUE(killer.connect(sock));
  EXPECT_TRUE(killer.shutdown());
}

}  // namespace
}  // namespace ps
