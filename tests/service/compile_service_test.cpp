// CompileService: the warm session behind the daemon and `psc
// --cache-dir`. The correctness bar is byte-identity -- a unit's
// artifact must be the same whether it was compiled cold by the plain
// Compiler, compiled warm on a reused session, or served from the
// disk cache -- plus the incremental behaviours: edits recompile,
// unchanged units hit, oversized batches spill.

#include "service/compile_service.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/flowchart.hpp"
#include "driver/compiler.hpp"
#include "driver/paper_modules.hpp"
#include "service/protocol.hpp"

namespace fs = std::filesystem;

namespace ps {
namespace {

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  std::string dir = std::string(::testing::TempDir()) + "psc_service_" + tag +
                    "_" + std::to_string(getpid()) + "_" +
                    std::to_string(counter++);
  fs::remove_all(dir);
  return dir;
}

ServiceOptions cached_options(const std::string& dir, size_t jobs = 1) {
  ServiceOptions options;
  options.jobs = jobs;
  options.cache_dir = dir;
  return options;
}

std::vector<BatchInput> corpus_inputs() {
  std::vector<BatchInput> inputs;
  for (const PaperModule& module : paper_corpus())
    inputs.push_back({module.name, module.source, false});
  return inputs;
}

/// The reference artifact: a cold one-shot compile through the plain
/// Compiler facade, rendered the same way the service renders.
UnitArtifact cold_artifact(const BatchInput& input,
                           const CompileOptions& options) {
  BatchUnitResult unit;
  unit.name = input.name;
  unit.result = Compiler(options).compile(input.source, input.name);
  if (unit.result.primary) unit.module_symbol = unit.result.primary->module->name;
  return artifact_from_result(unit);
}

void expect_artifacts_identical(const UnitArtifact& a, const UnitArtifact& b,
                                const std::string& label) {
  EXPECT_EQ(a.ok, b.ok) << label;
  EXPECT_EQ(a.diagnostics, b.diagnostics) << label;
  EXPECT_EQ(a.module_name, b.module_name) << label;
  EXPECT_EQ(a.primary.source, b.primary.source) << label;
  EXPECT_EQ(a.primary.schedule, b.primary.schedule) << label;
  EXPECT_EQ(a.primary.c_code, b.primary.c_code) << label;
  EXPECT_EQ(a.has_transform, b.has_transform) << label;
  EXPECT_EQ(a.transform_array, b.transform_array) << label;
  EXPECT_EQ(a.transform_desc, b.transform_desc) << label;
  EXPECT_EQ(a.exact_nest, b.exact_nest) << label;
  EXPECT_EQ(a.transformed.source, b.transformed.source) << label;
  EXPECT_EQ(a.transformed.schedule, b.transformed.schedule) << label;
  EXPECT_EQ(a.transformed.c_code, b.transformed.c_code) << label;
}

TEST(CompileService, WarmRecompileHitsAndStaysByteIdentical) {
  CompileService service(cached_options(fresh_dir("warm")));
  ServiceRequest request;
  request.units = corpus_inputs();

  ServiceResponse cold = service.compile(request);
  ASSERT_EQ(cold.units.size(), request.units.size());
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, request.units.size());

  ServiceResponse warm = service.compile(request);
  EXPECT_EQ(warm.cache_hits, request.units.size());
  EXPECT_EQ(warm.cache_misses, 0u);

  // Acceptance bar: every corpus module's cached artifact is identical
  // to a cold one-shot compile.
  for (size_t i = 0; i < request.units.size(); ++i) {
    EXPECT_TRUE(warm.units[i].cache_hit);
    std::optional<UnitArtifact> served = service.artifact(warm.units[i]);
    ASSERT_TRUE(served.has_value());
    expect_artifacts_identical(
        *served, cold_artifact(request.units[i], request.options),
        request.units[i].name);
  }
}

TEST(CompileService, HitsSurviveServiceRestart) {
  std::string dir = fresh_dir("restart");
  ServiceRequest request;
  request.units = corpus_inputs();
  {
    CompileService service(cached_options(dir));
    (void)service.compile(request);
  }
  // A new session over the same directory: the disk cache is the
  // persistence layer, not the session.
  CompileService service(cached_options(dir));
  ServiceResponse warm = service.compile(request);
  EXPECT_EQ(warm.cache_hits, request.units.size());
  EXPECT_EQ(warm.cache_misses, 0u);
}

TEST(CompileService, EditedSourceRecompilesOnlyThatUnit) {
  CompileService service(cached_options(fresh_dir("edit")));
  ServiceRequest request;
  request.units = corpus_inputs();
  (void)service.compile(request);

  // Edit one unit (append whitespace -- semantics unchanged, bytes
  // changed: still a different key, still a recompile).
  request.units[1].source = std::string(request.units[1].source) + "\n";
  ServiceResponse response = service.compile(request);
  EXPECT_EQ(response.cache_hits, request.units.size() - 1);
  EXPECT_EQ(response.cache_misses, 1u);
  EXPECT_FALSE(response.units[1].cache_hit);
  EXPECT_TRUE(response.units[0].cache_hit);

  // The edited unit's fresh artifact matches its own cold compile.
  std::optional<UnitArtifact> artifact = service.artifact(response.units[1]);
  ASSERT_TRUE(artifact.has_value());
  expect_artifacts_identical(
      *artifact, cold_artifact(request.units[1], request.options), "edited");
}

TEST(CompileService, OptionChangeIsACacheMiss) {
  CompileService service(cached_options(fresh_dir("options")));
  ServiceRequest request;
  request.units = {{"gs.ps", kGaussSeidelSource, false}};
  (void)service.compile(request);

  ServiceRequest transformed = request;
  transformed.options.apply_hyperplane = true;
  ServiceResponse response = service.compile(transformed);
  EXPECT_EQ(response.cache_hits, 0u);
  EXPECT_EQ(response.cache_misses, 1u);
  std::optional<UnitArtifact> artifact = service.artifact(response.units[0]);
  ASSERT_TRUE(artifact.has_value());
  EXPECT_TRUE(artifact->has_transform);
  expect_artifacts_identical(
      *artifact, cold_artifact(transformed.units[0], transformed.options),
      "hyperplane");

  // And the original options still hit their own entry.
  ServiceResponse original = service.compile(request);
  EXPECT_EQ(original.cache_hits, 1u);
}

TEST(CompileService, VersionBumpInvalidatesEverything) {
  std::string dir = fresh_dir("version");
  ServiceRequest request;
  request.units = corpus_inputs();
  {
    ServiceOptions options = cached_options(dir);
    options.version = "psc-test-1";
    CompileService service(options);
    (void)service.compile(request);
  }
  ServiceOptions options = cached_options(dir);
  options.version = "psc-test-2";
  CompileService service(options);
  ServiceResponse response = service.compile(request);
  EXPECT_EQ(response.cache_hits, 0u);
  EXPECT_EQ(response.cache_misses, request.units.size());
}

TEST(CompileService, FailedUnitsAreCachedWithDiagnostics) {
  CompileService service(cached_options(fresh_dir("failed")));
  ServiceRequest request;
  request.units = {{"bad.ps", "this is not a module", false},
                   {"good.ps", kRelaxationSource, false}};
  ServiceResponse cold = service.compile(request);
  EXPECT_FALSE(cold.units[0].ok);
  EXPECT_TRUE(cold.units[1].ok);

  ServiceResponse warm = service.compile(request);
  EXPECT_EQ(warm.cache_hits, 2u);
  EXPECT_FALSE(warm.units[0].ok);
  std::optional<UnitArtifact> bad = service.artifact(warm.units[0]);
  ASSERT_TRUE(bad.has_value());
  // The cached diagnostics replay exactly what the cold compile said.
  expect_artifacts_identical(
      *bad, cold_artifact(request.units[0], request.options), "bad.ps");
  EXPECT_NE(bad->diagnostics.find("error"), std::string::npos);
}

TEST(CompileService, NoCacheDirMeansEveryUnitCompiles) {
  CompileService service;  // defaults: no cache
  EXPECT_FALSE(service.cache_enabled());
  ServiceRequest request;
  request.units = {{"relax.ps", kRelaxationSource, false}};
  ServiceResponse first = service.compile(request);
  ServiceResponse second = service.compile(request);
  EXPECT_EQ(first.cache_hits + second.cache_hits, 0u);
  EXPECT_EQ(second.cache_misses, 1u);
  // Artifacts are still produced in memory.
  ASSERT_NE(second.units[0].artifact, nullptr);
  EXPECT_TRUE(second.units[0].ok);
}

TEST(CompileService, OversizedBatchSpillsToDisk) {
  ServiceOptions options = cached_options(fresh_dir("spill"));
  options.spill_after = 2;
  CompileService service(options);

  ServiceRequest request;
  request.units = corpus_inputs();  // 4 units > spill_after
  ASSERT_GT(request.units.size(), 2u);
  ServiceResponse response = service.compile(request);
  EXPECT_EQ(response.spilled, request.units.size());
  for (const ServiceUnit& unit : response.units) {
    // Spilled: no in-memory artifact, but the response still knows the
    // outcome, and the artifact reloads on demand from the cache dir.
    EXPECT_TRUE(unit.spilled);
    EXPECT_EQ(unit.artifact, nullptr);
    EXPECT_TRUE(unit.ok);
    std::optional<UnitArtifact> artifact = service.artifact(unit);
    ASSERT_TRUE(artifact.has_value());
    EXPECT_FALSE(artifact->primary.c_code.empty());
  }
  // Warm pass over the oversized batch: hits, still spilled shape.
  ServiceResponse warm = service.compile(request);
  EXPECT_EQ(warm.cache_hits, request.units.size());
  EXPECT_EQ(warm.spilled, request.units.size());

  // Spilled artifacts are byte-identical to cold compiles too.
  std::optional<UnitArtifact> artifact = service.artifact(warm.units[0]);
  ASSERT_TRUE(artifact.has_value());
  expect_artifacts_identical(
      *artifact, cold_artifact(request.units[0], request.options),
      "spilled");
}

TEST(CompileService, WarmDriverOutputMatchesAtAnyJobCount) {
  // The warm-path determinism contract across -j: same artifacts from
  // a 1-worker and a 4-worker session, cache disabled so both compile.
  ServiceRequest request;
  request.units = corpus_inputs();
  ServiceOptions sequential;
  sequential.jobs = 1;
  ServiceOptions parallel;
  parallel.jobs = 4;
  CompileService service_seq(sequential);
  CompileService service_par(parallel);
  ServiceResponse seq = service_seq.compile(request);
  ServiceResponse par = service_par.compile(request);
  for (size_t i = 0; i < request.units.size(); ++i) {
    ASSERT_NE(seq.units[i].artifact, nullptr);
    ASSERT_NE(par.units[i].artifact, nullptr);
    expect_artifacts_identical(*seq.units[i].artifact,
                               *par.units[i].artifact,
                               request.units[i].name);
  }
}

TEST(CompileService, StatsAccumulateAcrossRequests) {
  CompileService service(cached_options(fresh_dir("stats")));
  ServiceRequest request;
  request.units = corpus_inputs();
  (void)service.compile(request);
  (void)service.compile(request);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.units, 2 * request.units.size());
  EXPECT_EQ(stats.compiled, request.units.size());
  EXPECT_EQ(stats.cache_hits, request.units.size());
  EXPECT_EQ(stats.cache_misses, request.units.size());

  std::string described = service.describe_stats();
  EXPECT_NE(described.find("2 requests"), std::string::npos) << described;
  EXPECT_NE(described.find("artifact cache"), std::string::npos);
}

TEST(CompileService, ConcurrentRequestsSerialiseSafely) {
  // Several client threads on one session (the daemon shape): every
  // thread must get complete, correct responses.
  CompileService service(cached_options(fresh_dir("threads"), 2));
  ServiceRequest request;
  request.units = corpus_inputs();
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 3; ++i) {
        ServiceResponse response = service.compile(request);
        if (response.units.size() != request.units.size()) ++bad;
        for (const ServiceUnit& unit : response.units)
          if (!unit.ok) ++bad;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(service.stats().requests, 12u);
}

TEST(CompileService, UnitsCarryModuleNamesOnEveryPath) {
  // The batch report is served from this metadata, so it must be
  // populated for compiled units, in-memory cache hits and spilled
  // hits alike.
  std::string dir = fresh_dir("modnames");
  ServiceRequest request;
  request.units = corpus_inputs();

  CompileService service(cached_options(dir));
  ServiceResponse cold = service.compile(request);
  ASSERT_EQ(cold.units.size(), 4u);
  EXPECT_EQ(cold.units[0].module_name, "Relaxation");
  EXPECT_EQ(cold.units[2].module_name, "Heat1d");
  EXPECT_EQ(cold.units[3].module_name, "Chain");

  ServiceResponse warm = service.compile(request);
  for (size_t i = 0; i < warm.units.size(); ++i) {
    EXPECT_TRUE(warm.units[i].cache_hit);
    EXPECT_EQ(warm.units[i].module_name, cold.units[i].module_name);
  }

  ServiceOptions spill_options = cached_options(dir);
  spill_options.spill_after = 1;
  CompileService spilling(spill_options);
  ServiceResponse spilled = spilling.compile(request);
  for (size_t i = 0; i < spilled.units.size(); ++i) {
    EXPECT_TRUE(spilled.units[i].spilled);
    EXPECT_EQ(spilled.units[i].module_name, cold.units[i].module_name);
  }
}

TEST(CompileService, ServiceReportRendersTextAndJson) {
  std::vector<ServiceReportRow> rows{
      {"a.ps", "ModA", true, true, 0.5},
      {"b.ps", "", false, false, 2.0},
  };
  ServiceReportSummary summary{2, 3.0, 1, 1};

  std::string text = format_service_report(rows, summary);
  EXPECT_NE(text.find("a.ps"), std::string::npos);
  EXPECT_NE(text.find("ModA"), std::string::npos);
  EXPECT_NE(text.find("cache"), std::string::npos);
  EXPECT_NE(text.find("compiled"), std::string::npos);
  EXPECT_NE(text.find("failed"), std::string::npos);
  EXPECT_NE(text.find("1/2 units succeeded, 1 cache hits, 1 compiled"),
            std::string::npos)
      << text;

  std::string json = service_report_json(rows, summary);
  EXPECT_NE(json.find("\"total\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"succeeded\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"a.ps\""), std::string::npos);
  EXPECT_NE(json.find("\"module\": \"ModA\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit\": true"), std::string::npos);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
}

TEST(CompileService, ArtifactBytesMatchTheDecodedArtifact) {
  std::string dir = fresh_dir("rawbytes");
  ServiceRequest request;
  request.units = corpus_inputs();

  ServiceOptions options = cached_options(dir);
  options.spill_after = 1;
  CompileService service(options);
  ServiceResponse cold = service.compile(request);
  ServiceResponse warm = service.compile(request);

  for (const ServiceResponse* response : {&cold, &warm}) {
    for (const ServiceUnit& unit : response->units) {
      std::optional<std::string> bytes = service.artifact_bytes(unit);
      ASSERT_TRUE(bytes.has_value()) << unit.name;
      std::optional<UnitArtifact> decoded = service.artifact(unit);
      ASSERT_TRUE(decoded.has_value()) << unit.name;
      WireWriter writer;
      write_artifact(writer, *decoded);
      EXPECT_EQ(writer.bytes(), *bytes) << unit.name;
    }
  }
}

TEST(CompileService, RenderMatchesEveryFlagCombination) {
  // render_artifact against the exact strings a CompiledModule carries.
  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  BatchInput input{"gs.ps", kGaussSeidelSource, false};
  CompileResult result = Compiler(options).compile(input.source, input.name);
  ASSERT_TRUE(result.ok);
  BatchUnitResult unit;
  unit.name = input.name;
  unit.result = Compiler(options).compile(input.source, input.name);
  unit.module_symbol = unit.result.primary->module->name;
  UnitArtifact artifact = artifact_from_result(unit);

  RenderFlags schedule_only;
  schedule_only.schedule = true;
  std::string rendered = render_artifact(artifact, schedule_only);
  std::string expected =
      flowchart_to_string(result.primary->schedule.flowchart,
                          *result.primary->graph) +
      "\n" + "-- hyperplane transform on '" + result.transform->array +
      "': " + result.transform->describe() + "\n\n" +
      "-- exact loop bounds (Lamport):\n" + result.exact_nest->to_string() +
      "\n\n" +
      flowchart_to_string(result.transformed->schedule.flowchart,
                          *result.transformed->graph) +
      "\n";
  EXPECT_EQ(rendered, expected);

  RenderFlags c_only;
  c_only.c_code = true;
  std::string c_rendered = render_artifact(artifact, c_only);
  EXPECT_NE(c_rendered.find(result.primary->c_code), std::string::npos);
  EXPECT_NE(c_rendered.find(result.transformed->c_code), std::string::npos);
}

TEST(CompileService, ArtifactCarriesStructuralDumpsAndTierMetadata) {
  // Structural dumps (--graph, --dot, --components) are captured as
  // text at artifact-build time, so the service path can serve them
  // byte-identically to the live driver without a CompileResult; the
  // engine-tier probe travels alongside for the batch reports and the
  // daemon's tier counters.
  BatchInput input{"gs.ps", kGaussSeidelSource, false};
  BatchUnitResult unit;
  unit.name = input.name;
  unit.result = Compiler(CompileOptions{}).compile(input.source, input.name);
  ASSERT_TRUE(unit.result.ok);
  unit.module_symbol = unit.result.primary->module->name;
  UnitArtifact artifact = artifact_from_result(unit);

  const CompiledModule& stage = *unit.result.primary;
  RenderFlags graph_only;
  graph_only.graph = true;
  EXPECT_EQ(render_artifact(artifact, graph_only),
            stage.graph->summary() + "\n");
  RenderFlags dot_only;
  dot_only.dot = true;
  EXPECT_EQ(render_artifact(artifact, dot_only),
            stage.graph->to_dot() + "\n");
  RenderFlags components_only;
  components_only.components = true;
  EXPECT_EQ(render_artifact(artifact, components_only),
            components_table(stage) + "\n");

  // Gauss-Seidel is fully inside the bytecode fragment.
  EXPECT_EQ(artifact.primary.engine_tier, "bytecode");
  EXPECT_TRUE(artifact.primary.engine_fallback.empty());
}

}  // namespace
}  // namespace ps
