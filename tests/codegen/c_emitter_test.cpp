#include "codegen/c_emitter.hpp"

#include <gtest/gtest.h>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

TEST(CEmitter, IdentifierSanitisation) {
  EXPECT_EQ(c_identifier("newA"), "newA");
  EXPECT_EQ(c_identifier("A'"), "A_p");
  EXPECT_EQ(c_identifier("K'"), "K_p");
  EXPECT_EQ(c_identifier("1bad"), "v_1bad");
}

TEST(CEmitter, RelaxationSignatureAndAnnotations) {
  auto result = compile_or_die(kRelaxationSource);
  const std::string& code = result.primary->c_code;
  EXPECT_NE(code.find("void Relaxation(const double* InitialA, long M, "
                      "long maxK, double* newA)"),
            std::string::npos)
      << code;
  // Loop annotations, as the paper requires.
  EXPECT_NE(code.find("/* DO K */"), std::string::npos);
  EXPECT_NE(code.find("/* DOALL I */"), std::string::npos);
  EXPECT_NE(code.find("#pragma omp parallel for"), std::string::npos);
  // Local A is allocated and freed.
  EXPECT_NE(code.find("calloc"), std::string::npos);
  EXPECT_NE(code.find("free(A);"), std::string::npos);
}

TEST(CEmitter, VirtualWindowReflectedInAllocation) {
  auto result = compile_or_die(kRelaxationSource);
  const std::string& code = result.primary->c_code;
  // Dimension 1 of A is windowed with 2 slices and indexed modulo the
  // window.
  EXPECT_NE(code.find("dimension 1 is virtual with window 2"),
            std::string::npos)
      << code;
  EXPECT_NE(code.find("% A_p1"), std::string::npos);
}

TEST(CEmitter, NoWindowsWhenDisabled) {
  CompileOptions options;
  options.use_virtual_windows = false;
  auto result = compile_or_die(kRelaxationSource, options);
  EXPECT_EQ(result.primary->c_code.find("virtual with window"),
            std::string::npos);
  EXPECT_EQ(result.primary->c_code.find("% A_p1"), std::string::npos);
}

TEST(CEmitter, OpenMpOptional) {
  CompileOptions options;
  options.emit_openmp = false;
  auto result = compile_or_die(kRelaxationSource, options);
  EXPECT_EQ(result.primary->c_code.find("#pragma"), std::string::npos);
  // Annototation comments stay.
  EXPECT_NE(result.primary->c_code.find("/* DOALL I */"), std::string::npos);
}

TEST(CEmitter, RealDivisionForcedToDouble) {
  auto result = compile_or_die(kRelaxationSource);
  EXPECT_NE(result.primary->c_code.find("/ (double)(4)"), std::string::npos)
      << result.primary->c_code;
}

TEST(CEmitter, ScalarOutputsThroughPointer) {
  auto result = compile_or_die(R"(
M: module (x: real): [y: real];
define y = x * 2.0;
end M;
)");
  const std::string& code = result.primary->c_code;
  EXPECT_NE(code.find("void M(double x, double* y)"), std::string::npos);
  EXPECT_NE(code.find("*y = x * 2"), std::string::npos);
}

TEST(CEmitter, TransformedModuleUsesSanitisedNames) {
  CompileOptions options;
  options.apply_hyperplane = true;
  auto result = compile_or_die(kGaussSeidelSource, options);
  ASSERT_TRUE(result.transformed.has_value());
  const std::string& code = result.transformed->c_code;
  // Primed names (A', K') become valid C identifiers.
  EXPECT_NE(code.find("A_p"), std::string::npos);
  EXPECT_NE(code.find("for (long K_p"), std::string::npos) << code;
}

}  // namespace
}  // namespace ps
