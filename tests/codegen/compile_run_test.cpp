// Integration test: the generated C is compiled with the system C
// compiler, executed, and its output compared against the interpreter --
// closing the loop on the paper's code-generation phase.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/interpreter.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

bool have_cc() { return std::system("cc --version > /dev/null 2>&1") == 0; }

/// Compile `c_code` together with `main_code`, run the binary, return its
/// stdout.
std::string compile_and_run(const std::string& c_code,
                            const std::string& main_code,
                            const std::string& tag) {
  std::string dir = ::testing::TempDir() + "psc_" + tag;
  std::string mkdir = "mkdir -p " + dir;
  EXPECT_EQ(std::system(mkdir.c_str()), 0);
  {
    std::ofstream mod(dir + "/module.c");
    mod << c_code;
    std::ofstream main_file(dir + "/main.c");
    main_file << main_code;
  }
  std::string compile = "cc -O1 -std=c99 -o " + dir + "/prog " + dir +
                        "/module.c " + dir + "/main.c -lm 2> " + dir +
                        "/cc.log";
  int rc = std::system(compile.c_str());
  if (rc != 0) {
    std::ifstream log(dir + "/cc.log");
    std::ostringstream os;
    os << log.rdbuf();
    ADD_FAILURE() << "cc failed:\n" << os.str();
    return "";
  }
  std::string run = dir + "/prog > " + dir + "/out.txt";
  EXPECT_EQ(std::system(run.c_str()), 0);
  std::ifstream out(dir + "/out.txt");
  std::ostringstream os;
  os << out.rdbuf();
  return os.str();
}

constexpr const char* kRelaxationMain = R"C(
#include <stdio.h>
void Relaxation(const double* InitialA, long M, long maxK, double* newA);
int main(void) {
  long M = 6, maxK = 5;
  long n = M + 2;
  double in[64], out[64];
  for (long i = 0; i < n; ++i)
    for (long j = 0; j < n; ++j)
      in[i * n + j] = (double)((i * 13 + j * 7) % 11);
  Relaxation(in, M, maxK, out);
  double sum = 0;
  for (long i = 0; i < n * n; ++i) sum += out[i] * (double)(i + 1);
  printf("%.12f\n", sum);
  return 0;
}
)C";

TEST(CompileRun, GeneratedJacobiMatchesInterpreter) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  auto result = compile_or_die(kRelaxationSource);
  std::string got =
      compile_and_run(result.primary->c_code, kRelaxationMain, "jacobi");
  ASSERT_FALSE(got.empty());

  // Interpreter oracle with the same inputs and checksum.
  const CompiledModule& stage = *result.primary;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"M", 6}, {"maxK", 5}});
  NdArray& in = interp.array("InitialA");
  for (int64_t i = 0; i <= 7; ++i)
    for (int64_t j = 0; j <= 7; ++j)
      in.set(std::vector<int64_t>{i, j},
             static_cast<double>((i * 13 + j * 7) % 11));
  interp.run();
  double sum = 0;
  int64_t linear = 0;
  for (int64_t i = 0; i <= 7; ++i)
    for (int64_t j = 0; j <= 7; ++j) {
      sum += interp.array("newA").at(std::vector<int64_t>{i, j}) *
             static_cast<double>(linear + 1);
      ++linear;
    }
  EXPECT_NEAR(std::stod(got), sum, 1e-9);
}

TEST(CompileRun, GaussSeidelGeneratedCode) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  auto result = compile_or_die(kGaussSeidelSource);
  std::string got =
      compile_and_run(result.primary->c_code, kRelaxationMain, "gs");
  ASSERT_FALSE(got.empty());

  const CompiledModule& stage = *result.primary;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"M", 6}, {"maxK", 5}});
  NdArray& in = interp.array("InitialA");
  for (int64_t i = 0; i <= 7; ++i)
    for (int64_t j = 0; j <= 7; ++j)
      in.set(std::vector<int64_t>{i, j},
             static_cast<double>((i * 13 + j * 7) % 11));
  interp.run();
  double sum = 0;
  int64_t linear = 0;
  for (int64_t i = 0; i <= 7; ++i)
    for (int64_t j = 0; j <= 7; ++j) {
      sum += interp.array("newA").at(std::vector<int64_t>{i, j}) *
             static_cast<double>(linear + 1);
      ++linear;
    }
  EXPECT_NEAR(std::stod(got), sum, 1e-9);
}

TEST(CompileRun, TransformedModuleCompilesAndMatches) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  CompileOptions options;
  options.apply_hyperplane = true;
  auto result = compile_or_die(kGaussSeidelSource, options);
  ASSERT_TRUE(result.transformed.has_value());

  std::string main_code = kRelaxationMain;
  const std::string from = "void Relaxation(";
  const std::string to = "void Relaxation_h(";
  main_code.replace(main_code.find(from), from.size(), to);
  size_t call = main_code.find("Relaxation(in");
  main_code.replace(call, std::string("Relaxation(").size(),
                    "Relaxation_h(");

  std::string got = compile_and_run(result.transformed->c_code, main_code,
                                    "hyper");
  ASSERT_FALSE(got.empty());

  // Oracle: the untransformed interpreter.
  const CompiledModule& stage = *result.primary;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"M", 6}, {"maxK", 5}});
  NdArray& in = interp.array("InitialA");
  for (int64_t i = 0; i <= 7; ++i)
    for (int64_t j = 0; j <= 7; ++j)
      in.set(std::vector<int64_t>{i, j},
             static_cast<double>((i * 13 + j * 7) % 11));
  interp.run();
  double sum = 0;
  int64_t linear = 0;
  for (int64_t i = 0; i <= 7; ++i)
    for (int64_t j = 0; j <= 7; ++j) {
      sum += interp.array("newA").at(std::vector<int64_t>{i, j}) *
             static_cast<double>(linear + 1);
      ++linear;
    }
  EXPECT_NEAR(std::stod(got), sum, 1e-9);
}

TEST(CompileRun, ExactBoundsCodeCompilesAndMatches) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  auto result = compile_or_die(kGaussSeidelSource, options);
  ASSERT_TRUE(result.transformed.has_value());
  ASSERT_TRUE(result.exact_nest.has_value());
  // The non-rectangular loops really are in the code we run.
  ASSERT_NE(result.transformed->c_code.find("psc_ceil_div"),
            std::string::npos);

  std::string main_code = kRelaxationMain;
  const std::string from = "void Relaxation(";
  const std::string to = "void Relaxation_h(";
  main_code.replace(main_code.find(from), from.size(), to);
  size_t call = main_code.find("Relaxation(in");
  main_code.replace(call, std::string("Relaxation(").size(),
                    "Relaxation_h(");

  std::string got = compile_and_run(result.transformed->c_code, main_code,
                                    "exact");
  ASSERT_FALSE(got.empty());

  const CompiledModule& stage = *result.primary;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"M", 6}, {"maxK", 5}});
  NdArray& in = interp.array("InitialA");
  for (int64_t i = 0; i <= 7; ++i)
    for (int64_t j = 0; j <= 7; ++j)
      in.set(std::vector<int64_t>{i, j},
             static_cast<double>((i * 13 + j * 7) % 11));
  interp.run();
  double sum = 0;
  int64_t linear = 0;
  for (int64_t i = 0; i <= 7; ++i)
    for (int64_t j = 0; j <= 7; ++j) {
      sum += interp.array("newA").at(std::vector<int64_t>{i, j}) *
             static_cast<double>(linear + 1);
      ++linear;
    }
  EXPECT_NEAR(std::stod(got), sum, 1e-9);
}

}  // namespace
}  // namespace ps
