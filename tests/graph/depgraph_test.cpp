#include "graph/depgraph.hpp"

#include <gtest/gtest.h>

#include <set>

#include "driver/paper_modules.hpp"
#include "frontend/parser.hpp"

namespace ps {
namespace {

struct Fixture {
  DiagnosticEngine diags;
  std::unique_ptr<CheckedModule> module;
  std::unique_ptr<DepGraph> graph;

  explicit Fixture(const char* src) {
    Parser parser(src, diags);
    auto ast = parser.parse_module();
    EXPECT_TRUE(ast.has_value()) << diags.render();
    Sema sema(diags);
    auto checked = sema.check(std::move(*ast));
    EXPECT_TRUE(checked.has_value()) << diags.render();
    module = std::make_unique<CheckedModule>(std::move(*checked));
    graph = std::make_unique<DepGraph>(DepGraph::build(*module));
  }

  /// All (src, dst) name pairs with the given kind filter.
  std::multiset<std::pair<std::string, std::string>> edge_pairs(
      std::optional<DepEdgeKind> kind = std::nullopt) const {
    std::multiset<std::pair<std::string, std::string>> out;
    for (const auto& e : graph->edges()) {
      if (kind && e.kind != *kind) continue;
      out.emplace(graph->node(e.src).name, graph->node(e.dst).name);
    }
    return out;
  }
};

TEST(DepGraph, Figure3NodeInventory) {
  Fixture f(kRelaxationSource);
  // 5 data items + 3 equations.
  ASSERT_EQ(f.graph->nodes().size(), 8u);
  EXPECT_EQ(f.graph->node(f.graph->data_node("A")).dims.size(), 3u);
  EXPECT_EQ(f.graph->node(f.graph->equation_node(2)).dims.size(), 3u);
  EXPECT_EQ(f.graph->node(f.graph->equation_node(0)).name, "eq.1");
}

TEST(DepGraph, Figure3DataEdges) {
  Fixture f(kRelaxationSource);
  auto data = f.edge_pairs(DepEdgeKind::Data);
  // Producer -> consumer edges.
  EXPECT_EQ(data.count({"InitialA", "eq.1"}), 1u);
  EXPECT_EQ(data.count({"eq.1", "A"}), 1u);       // definition
  EXPECT_EQ(data.count({"A", "eq.3"}), 5u);       // five references
  EXPECT_EQ(data.count({"eq.3", "A"}), 1u);       // definition
  EXPECT_EQ(data.count({"A", "eq.2"}), 1u);
  EXPECT_EQ(data.count({"eq.2", "newA"}), 1u);
  EXPECT_EQ(data.count({"M", "eq.3"}), 1u);       // guard uses M
  EXPECT_EQ(data.count({"maxK", "eq.2"}), 1u);    // subscript uses maxK
}

TEST(DepGraph, Figure3BoundEdges) {
  Fixture f(kRelaxationSource);
  auto bound = f.edge_pairs(DepEdgeKind::Bound);
  // Paper: "a data dependency edge is drawn from M to InitialA, to A, and
  // to NewA ... from maxK to A for the same reason".
  EXPECT_EQ(bound.count({"M", "InitialA"}), 1u);
  EXPECT_EQ(bound.count({"M", "A"}), 1u);
  EXPECT_EQ(bound.count({"M", "newA"}), 1u);
  EXPECT_EQ(bound.count({"maxK", "A"}), 1u);
  // Loop-bound edges to equations whose subranges use the scalars.
  EXPECT_EQ(bound.count({"maxK", "eq.3"}), 1u);
}

TEST(DepGraph, EdgeLabelsCarrySubscriptClasses) {
  Fixture f(kRelaxationSource);
  uint32_t a = f.graph->data_node("A");
  uint32_t eq3 = f.graph->equation_node(2);
  size_t use_edges = 0;
  for (const auto& e : f.graph->edges()) {
    if (e.src != a || e.dst != eq3 || e.ref == nullptr) continue;
    ++use_edges;
    ASSERT_EQ(e.labels.size(), 3u);
    EXPECT_EQ(e.labels[0].kind, SubscriptInfo::Kind::IndexVar);
    EXPECT_EQ(e.labels[0].offset, -1);
    EXPECT_EQ(e.labels[0].target_dim, 0);  // position in target
  }
  EXPECT_EQ(use_edges, 5u);
}

TEST(DepGraph, UpperBoundLabelOnEq2) {
  Fixture f(kRelaxationSource);
  uint32_t a = f.graph->data_node("A");
  uint32_t eq2 = f.graph->equation_node(1);
  bool found = false;
  for (const auto& e : f.graph->edges()) {
    if (e.src != a || e.dst != eq2 || e.ref == nullptr) continue;
    found = true;
    EXPECT_EQ(e.labels[0].kind, SubscriptInfo::Kind::UpperBound);
    EXPECT_EQ(e.labels[1].kind, SubscriptInfo::Kind::IndexVar);
    EXPECT_EQ(e.labels[1].target_dim, 0);
    EXPECT_EQ(e.labels[2].target_dim, 1);
  }
  EXPECT_TRUE(found);
}

TEST(DepGraph, DefinitionEdgesFlagged) {
  Fixture f(kRelaxationSource);
  size_t defs = 0;
  for (const auto& e : f.graph->edges())
    if (e.is_definition) ++defs;
  EXPECT_EQ(defs, 3u);  // one per equation
}

TEST(DepGraph, AdjacencyListsConsistent) {
  Fixture f(kRelaxationSource);
  size_t total_out = 0;
  size_t total_in = 0;
  for (const auto& n : f.graph->nodes()) {
    total_out += f.graph->out_edges(n.id).size();
    total_in += f.graph->in_edges(n.id).size();
    for (uint32_t e : f.graph->out_edges(n.id))
      EXPECT_EQ(f.graph->edge(e).src, n.id);
    for (uint32_t e : f.graph->in_edges(n.id))
      EXPECT_EQ(f.graph->edge(e).dst, n.id);
  }
  EXPECT_EQ(total_out, f.graph->edges().size());
  EXPECT_EQ(total_in, f.graph->edges().size());
}

TEST(DepGraph, DotExportMentionsAllNodes) {
  Fixture f(kRelaxationSource);
  std::string dot = f.graph->to_dot();
  EXPECT_NE(dot.find("A[_,I,J]"), std::string::npos);
  EXPECT_NE(dot.find("eq.3"), std::string::npos);
  EXPECT_NE(dot.find("K - 1"), std::string::npos);
  EXPECT_NE(dot.find("style=\"dashed\""), std::string::npos);  // bound edges
}

TEST(DepGraph, LookupThrowsForUnknown) {
  Fixture f(kRelaxationSource);
  EXPECT_THROW((void)f.graph->data_node("nope"), std::out_of_range);
  EXPECT_THROW((void)f.graph->equation_node(99), std::out_of_range);
}

}  // namespace
}  // namespace ps
