#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace ps {
namespace {

using Adj = std::vector<std::vector<uint32_t>>;

TEST(Scc, EmptyGraph) {
  SccResult r = compute_sccs({});
  EXPECT_EQ(r.size(), 0u);
}

TEST(Scc, Singletons) {
  Adj adj(3);
  adj[0] = {1};
  adj[1] = {2};
  SccResult r = compute_sccs(adj);
  ASSERT_EQ(r.size(), 3u);
  // Topological order: 0 before 1 before 2.
  EXPECT_EQ(r.components[0], (std::vector<uint32_t>{0}));
  EXPECT_EQ(r.components[1], (std::vector<uint32_t>{1}));
  EXPECT_EQ(r.components[2], (std::vector<uint32_t>{2}));
}

TEST(Scc, SimpleCycle) {
  Adj adj(4);
  adj[0] = {1};
  adj[1] = {2};
  adj[2] = {1, 3};
  SccResult r = compute_sccs(adj);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.components[1], (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(r.component_of[1], r.component_of[2]);
  EXPECT_LT(r.component_of[0], r.component_of[1]);
  EXPECT_LT(r.component_of[1], r.component_of[3]);
}

TEST(Scc, SelfLoopIsItsOwnComponent) {
  Adj adj(2);
  adj[0] = {0, 1};
  SccResult r = compute_sccs(adj);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.components[0], (std::vector<uint32_t>{0}));
}

TEST(Scc, DeterministicTieBreakBySmallestNode) {
  // Three independent nodes: order must be 0, 1, 2 regardless of DFS.
  Adj adj(3);
  SccResult r = compute_sccs(adj);
  EXPECT_EQ(r.components[0].front(), 0u);
  EXPECT_EQ(r.components[1].front(), 1u);
  EXPECT_EQ(r.components[2].front(), 2u);
}

TEST(Scc, DeepChainDoesNotOverflowStack) {
  constexpr size_t n = 200000;
  Adj adj(n);
  for (size_t i = 0; i + 1 < n; ++i)
    adj[i] = {static_cast<uint32_t>(i + 1)};
  SccResult r = compute_sccs(adj);
  EXPECT_EQ(r.size(), n);
  EXPECT_EQ(r.component_of[0], 0u);
  EXPECT_EQ(r.component_of[n - 1], n - 1);
}

class SccPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SccPropertyTest, RandomGraphInvariants) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<size_t> size_dist(1, 60);
  size_t n = size_dist(rng);
  std::uniform_int_distribution<uint32_t> node(0, static_cast<uint32_t>(n - 1));
  std::uniform_int_distribution<size_t> edges_dist(0, 3 * n);

  Adj adj(n);
  size_t m = edges_dist(rng);
  for (size_t i = 0; i < m; ++i) adj[node(rng)].push_back(node(rng));

  SccResult r = compute_sccs(adj);

  // Partition: every node in exactly one component.
  std::vector<int> seen(n, 0);
  for (const auto& comp : r.components)
    for (uint32_t v : comp) ++seen[v];
  for (size_t v = 0; v < n; ++v) {
    EXPECT_EQ(seen[v], 1) << "node " << v;
    EXPECT_EQ(r.component_of[v],
              [&] {
                for (uint32_t c = 0; c < r.components.size(); ++c)
                  for (uint32_t w : r.components[c])
                    if (w == v) return c;
                return UINT32_MAX;
              }());
  }

  // Topological property of the condensation.
  for (uint32_t u = 0; u < n; ++u)
    for (uint32_t v : adj[u])
      EXPECT_LE(r.component_of[u], r.component_of[v])
          << u << " -> " << v;

  // Mutual reachability within components; maximality across.
  auto reachable = [&](uint32_t from) {
    std::vector<bool> vis(n, false);
    std::vector<uint32_t> stack{from};
    vis[from] = true;
    while (!stack.empty()) {
      uint32_t u = stack.back();
      stack.pop_back();
      for (uint32_t v : adj[u]) {
        if (!vis[v]) {
          vis[v] = true;
          stack.push_back(v);
        }
      }
    }
    return vis;
  };
  std::vector<std::vector<bool>> reach(n);
  for (uint32_t v = 0; v < n; ++v) reach[v] = reachable(v);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = 0; v < n; ++v) {
      bool same = u == v || (reach[u][v] && reach[v][u]);
      EXPECT_EQ(same, r.component_of[u] == r.component_of[v])
          << "nodes " << u << ", " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SccPropertyTest,
                         ::testing::Range(0u, 25u));

}  // namespace
}  // namespace ps
