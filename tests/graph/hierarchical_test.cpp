// Hierarchical edges (paper section 3.1): a record-typed data item gets
// one materialised node per field, connected by Hierarchical edges that
// the scheduler ignores ("they do not concern us further").

#include <gtest/gtest.h>

#include "../common/test_util.hpp"
#include "frontend/parser.hpp"
#include "graph/depgraph.hpp"

namespace ps {
namespace {

TEST(Hierarchical, FieldNodesAndEdgesMaterialised) {
  DiagnosticEngine diags;
  Parser parser(R"(
M: module (src: Particle): [q: Particle];
type
  Particle = record m: real; v: real; end;
define
  q = src;
end M;
)",
                diags);
  auto ast = parser.parse_module();
  ASSERT_TRUE(ast.has_value()) << diags.render();
  Sema sema(diags);
  auto module = sema.check(std::move(*ast));
  ASSERT_TRUE(module.has_value()) << diags.render();
  DepGraph graph = DepGraph::build(*module);

  // Two field children for each of src and q.
  size_t field_nodes = 0;
  for (const auto& n : graph.nodes())
    if (n.is_record_field) ++field_nodes;
  EXPECT_EQ(field_nodes, 4u);
  EXPECT_NO_THROW((void)graph.data_node("src.m"));
  EXPECT_NO_THROW((void)graph.data_node("q.v"));

  size_t hier_edges = 0;
  for (const auto& e : graph.edges()) {
    if (e.kind != DepEdgeKind::Hierarchical) continue;
    ++hier_edges;
    EXPECT_TRUE(graph.node(e.dst).is_record_field);
    EXPECT_FALSE(graph.node(e.src).is_record_field);
  }
  EXPECT_EQ(hier_edges, 4u);

  // The DOT export styles them dotted; the summary tags them.
  EXPECT_NE(graph.to_dot().find("style=\"dotted\""), std::string::npos);
  EXPECT_NE(graph.summary().find("[field]"), std::string::npos);
}

TEST(Hierarchical, FieldNodesDoNotDisturbScheduling) {
  auto result = testutil::compile_or_die(R"(
M: module (src: P): [sum: real];
type
  P = record a: real; b: real; end;
var
  copy: P;
define
  copy = src;
  sum = src.a + src.b;
end M;
)");
  // Record copy and field reads schedule as plain scalar equations; the
  // field nodes contribute nothing.
  EXPECT_EQ(testutil::schedule_line(*result.primary), "eq.1; eq.2");
}

TEST(Hierarchical, NoFieldNodesWithoutRecords) {
  auto result = testutil::compile_or_die(
      "M: module (x: real): [y: real]; define y = x; end M;");
  for (const auto& n : result.primary->graph->nodes())
    EXPECT_FALSE(n.is_record_field);
}

}  // namespace
}  // namespace ps
