#include "core/validator.hpp"

#include <gtest/gtest.h>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

IntEnv small_params() { return IntEnv{{"M", 4}, {"maxK", 4}}; }

TEST(Validator, AcceptsJacobiSchedule) {
  auto result = compile_or_die(kRelaxationSource);
  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph,
                                  result.primary->schedule.flowchart,
                                  small_params());
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
  EXPECT_GT(report.instances, 0u);
  EXPECT_GT(report.reads, 0u);
}

TEST(Validator, AcceptsGaussSeidelSchedule) {
  auto result = compile_or_die(kGaussSeidelSource);
  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph,
                                  result.primary->schedule.flowchart,
                                  small_params());
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
}

TEST(Validator, RejectsParallelisedGaussSeidel) {
  // Force the Gauss-Seidel I and J loops to DOALL: the validator must
  // detect the cross-iteration races the scheduler avoided.
  auto result = compile_or_die(kGaussSeidelSource);
  Flowchart broken = result.primary->schedule.flowchart;  // copy? Flowchart
  // Flowchart holds unique structure by value; rebuild with all loops
  // parallel.
  struct Rewriter {
    static void parallelise(Flowchart& steps) {
      for (auto& step : steps) {
        if (step.kind == FlowStep::Kind::Loop) {
          step.loop = LoopKind::Parallel;
          parallelise(step.children);
        }
      }
    }
  };
  Rewriter::parallelise(broken);
  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph, broken,
                                  small_params());
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.issues.empty());
  EXPECT_NE(report.issues[0].find("races"), std::string::npos);
}

TEST(Validator, RejectsReversedComponentOrder) {
  auto result = compile_or_die(kRelaxationSource);
  Flowchart reversed;
  const Flowchart& good = result.primary->schedule.flowchart;
  for (size_t i = good.size(); i-- > 0;) {
    // Deep-copy by re-walking (FlowStep is copyable).
    reversed.push_back(good[i]);
  }
  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph, reversed,
                                  small_params());
  EXPECT_FALSE(report.ok);
}

TEST(Validator, RejectsInnerLoopFlippedToParallel) {
  // Jacobi with DO K flipped to DOALL K: K-1 reads race.
  auto result = compile_or_die(kRelaxationSource);
  Flowchart chart = result.primary->schedule.flowchart;
  ASSERT_EQ(chart[1].kind, FlowStep::Kind::Loop);
  chart[1].loop = LoopKind::Parallel;
  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph, chart,
                                  small_params());
  EXPECT_FALSE(report.ok);
}

TEST(Validator, DetectsMissingOutputCoverage) {
  auto result = compile_or_die(kRelaxationSource);
  Flowchart chart = result.primary->schedule.flowchart;
  chart.pop_back();  // drop eq.2, newA never written
  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph, chart,
                                  small_params());
  EXPECT_FALSE(report.ok);
  bool found = false;
  for (const auto& issue : report.issues)
    if (issue.find("newA") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(Validator, DetectsDoubleWrite) {
  auto result = compile_or_die(kRelaxationSource);
  Flowchart chart = result.primary->schedule.flowchart;
  chart.push_back(chart.front());  // run eq.1 twice
  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph, chart,
                                  small_params());
  EXPECT_FALSE(report.ok);
  bool found = false;
  for (const auto& issue : report.issues)
    if (issue.find("more than once") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(Validator, AcceptsTransformedModule) {
  CompileOptions options;
  options.apply_hyperplane = true;
  auto result = compile_or_die(kGaussSeidelSource, options);
  ASSERT_TRUE(result.transformed.has_value()) << result.diagnostics;
  auto report = validate_schedule(*result.transformed->module,
                                  *result.transformed->graph,
                                  result.transformed->schedule.flowchart,
                                  small_params());
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
}

TEST(Validator, UnboundParameterReported) {
  auto result = compile_or_die(kRelaxationSource);
  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph,
                                  result.primary->schedule.flowchart,
                                  IntEnv{{"M", 4}});  // maxK missing
  EXPECT_FALSE(report.ok);
}

}  // namespace
}  // namespace ps
