#include "core/flowchart.hpp"

#include <gtest/gtest.h>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

TEST(Flowchart, DescriptorConstructors) {
  FlowStep eq = FlowStep::equation(7);
  EXPECT_EQ(eq.kind, FlowStep::Kind::Equation);
  EXPECT_EQ(eq.node, 7u);

  Flowchart children;
  children.push_back(FlowStep::equation(7));
  FlowStep loop =
      FlowStep::make_loop("K", nullptr, LoopKind::Iterative,
                          std::move(children));
  EXPECT_EQ(loop.kind, FlowStep::Kind::Loop);
  EXPECT_EQ(loop.var, "K");
  EXPECT_EQ(loop.loop, LoopKind::Iterative);
  ASSERT_EQ(loop.children.size(), 1u);
}

TEST(Flowchart, LoopKindNames) {
  EXPECT_EQ(loop_kind_name(LoopKind::Iterative), "DO");
  EXPECT_EQ(loop_kind_name(LoopKind::Parallel), "DOALL");
}

TEST(Flowchart, MultilineRenderingMatchesFigure6Layout) {
  auto result = compile_or_die(kRelaxationSource);
  std::string text = flowchart_to_string(result.primary->schedule.flowchart,
                                         *result.primary->graph);
  // Figure 6's indentation structure.
  EXPECT_NE(text.find("DOALL I (\n  DOALL J (\n    eq.1\n  )\n)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("DO K (\n  DOALL I (\n    DOALL J (\n      eq.3"),
            std::string::npos);
}

TEST(Flowchart, LineRenderingAndNullFlowchart) {
  auto result = compile_or_die(kRelaxationSource);
  const DepGraph& graph = *result.primary->graph;
  EXPECT_EQ(flowchart_to_line({}, graph), "(null)");
  Flowchart single;
  single.push_back(FlowStep::equation(graph.equation_node(0)));
  EXPECT_EQ(flowchart_to_line(single, graph), "eq.1");
}

TEST(Flowchart, CountsAndDepth) {
  auto result = compile_or_die(kRelaxationSource);
  const Flowchart& chart = result.primary->schedule.flowchart;
  EXPECT_EQ(flowchart_equation_count(chart), 3u);
  EXPECT_EQ(flowchart_depth(chart), 3u);
  EXPECT_EQ(flowchart_depth({}), 0u);
  Flowchart flat;
  flat.push_back(FlowStep::equation(0));
  EXPECT_EQ(flowchart_depth(flat), 0u);
  EXPECT_EQ(flowchart_equation_count(flat), 1u);
}

TEST(Flowchart, StepsAreCopyable) {
  auto result = compile_or_die(kRelaxationSource);
  Flowchart copy = result.primary->schedule.flowchart;
  EXPECT_EQ(flowchart_equation_count(copy), 3u);
  copy.clear();
  EXPECT_EQ(flowchart_equation_count(result.primary->schedule.flowchart),
            3u);
}

}  // namespace
}  // namespace ps
