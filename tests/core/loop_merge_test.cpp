#include "core/loop_merge.hpp"

#include <gtest/gtest.h>

#include "../common/test_util.hpp"
#include "core/validator.hpp"
#include "runtime/interpreter.hpp"
#include "driver/paper_modules.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

TEST(LoopMerge, FusesPointwiseChain) {
  CompileOptions options;
  options.merge_loops = true;
  auto result = compile_or_die(kPointwiseChainSource, options);
  // Four DOALL I nests collapse into one.
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DOALL I (eq.1; eq.2; eq.3; eq.4)");
  EXPECT_EQ(result.primary->merge_stats.merged, 3u);

  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph,
                                  result.primary->schedule.flowchart,
                                  IntEnv{{"N", 10}});
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
}

TEST(LoopMerge, RefusesOffsetDependenceInParallelLoop) {
  CompileOptions options;
  options.merge_loops = true;
  // b reads a[I-1]: fusing the two DOALL I loops would race.
  auto result = compile_or_die(R"(
M: module (x: array[I] of real; n: int): [y: array[I] of real];
type I = 0 .. n;
var a: array [I] of real;
define
  a[I] = x[I] * 2.0;
  y[I] = if I = 0 then a[I] else a[I-1];
end M;
)",
                               options);
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DOALL I (eq.1); DOALL I (eq.2)");
  EXPECT_EQ(result.primary->merge_stats.merged, 0u);
}

TEST(LoopMerge, RelaxationScheduleUnchanged) {
  CompileOptions options;
  options.merge_loops = true;
  auto result = compile_or_die(kRelaxationSource, options);
  // Adjacent loops iterate the same I subrange but the middle component
  // is a DO K nest, so nothing fuses at top level.
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DOALL I (DOALL J (eq.1)); "
            "DO K (DOALL I (DOALL J (eq.3))); "
            "DOALL I (DOALL J (eq.2))");
}

TEST(LoopMerge, FusesNestedLoops) {
  CompileOptions options;
  options.merge_loops = true;
  auto result = compile_or_die(R"(
M: module (x: array[I, J] of real; n: int): [y: array[I, J] of real];
type I = 0 .. n; J = 0 .. n;
var a: array [I, J] of real;
define
  a[I, J] = x[I, J] + 1.0;
  y[I, J] = a[I, J] * 2.0;
end M;
)",
                               options);
  // Outer I loops fuse, then the inner J loops become adjacent and fuse
  // too.
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DOALL I (DOALL J (eq.1; eq.2))");
  EXPECT_EQ(result.primary->merge_stats.merged, 2u);

  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph,
                                  result.primary->schedule.flowchart,
                                  IntEnv{{"N", 6}, {"n", 6}});
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
}

TEST(LoopMerge, IterativeLoopsFuseWithBackwardOffsets) {
  CompileOptions options;
  options.merge_loops = true;
  // Two adjacent DO T nests; the second body reads u at identity T and
  // its own v at T-1 -- legal in a fused iterative loop.
  auto result = compile_or_die(R"(
M: module (n: int; s: int): [y: array[X] of real];
type T = 1 .. s; X = 0 .. n;
var u: array [T] of array [X] of real;
    v: array [T] of array [X] of real;
define
  u[T, X] = if T = 1 then 1.0 else u[T-1, X] + 1.0;
  v[T, X] = if T = 1 then 2.0 else v[T-1, X] + u[T, X];
  y[X] = v[s, X];
end M;
)",
                               options);
  // The T loops fuse, then the newly adjacent DOALL X loops fuse too.
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DO T (DOALL X (eq.1; eq.2)); DOALL X (eq.3)");
  EXPECT_EQ(result.primary->merge_stats.merged, 2u);
  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph,
                                  result.primary->schedule.flowchart,
                                  IntEnv{{"n", 5}, {"s", 4}});
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
}


// ---------------------------------------------------------------------------
// Reordering fusion (merge_loops_reordered)
// ---------------------------------------------------------------------------

constexpr const char* kInterleavedChains = R"(
M: module (x: array[I] of real; p: array[J] of real; n: int; m: int):
  [y: array[I] of real; q: array[J] of real];
type I = 0 .. n; J = 0 .. m;
var a: array[I] of real;
define
  a[I] = x[I] + 1.0;
  q[J] = p[J] * 2.0;
  y[I] = a[I] * 3.0;
end M;
)";

TEST(LoopMergeReorder, SlidesPastUnrelatedLoopToFuse) {
  // The scheduler interleaves the two I chains with the J loop:
  //   DOALL I (eq.1); DOALL J (eq.2); DOALL I (eq.3).
  // Plain adjacency cannot fuse the I loops; the reordering prepass
  // moves eq.3's loop up (it only depends on eq.1) and fuses.
  CompileOptions plain;
  plain.merge_loops = false;
  auto unmerged = compile_or_die(kInterleavedChains, plain);
  EXPECT_EQ(testutil::schedule_line(*unmerged.primary),
            "DOALL I (eq.1); DOALL J (eq.2); DOALL I (eq.3)");

  MergeStats adjacency_stats;
  Flowchart adjacency = merge_loops(
      Flowchart(unmerged.primary->schedule.flowchart),
      *unmerged.primary->graph, &adjacency_stats);
  EXPECT_EQ(adjacency_stats.merged, 0u);  // nothing adjacent to fuse

  CompileOptions options;
  options.merge_loops = true;  // the driver uses the reordering pass
  auto result = compile_or_die(kInterleavedChains, options);
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DOALL I (eq.1; eq.3); DOALL J (eq.2)");
  EXPECT_EQ(result.primary->merge_stats.merged, 1u);
  EXPECT_EQ(result.primary->merge_stats.moved, 1u);

  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph,
                                  result.primary->schedule.flowchart,
                                  IntEnv{{"n", 6}, {"m", 4}});
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
}

TEST(LoopMergeReorder, NeverMovesPastAProducer) {
  // eq.3 reads both a (eq.1) and b (eq.2), so it cannot slide above the
  // J loop even though the variables would match eq.1's loop.
  auto result = compile_or_die(R"(
M: module (x: array[I] of real; n: int): [y: array[I] of real];
type I = 0 .. n; J = 0 .. n;
var a: array[I] of real;  b: array[J] of real;
define
  a[I] = x[I] + 1.0;
  b[J] = a[J] * 2.0;
  y[I] = a[I] + b[I];
end M;
)");
  MergeStats stats;
  Flowchart merged = merge_loops_reordered(
      Flowchart(result.primary->schedule.flowchart), *result.primary->graph,
      &stats);
  EXPECT_EQ(stats.moved, 0u);
  auto report =
      validate_schedule(*result.primary->module, *result.primary->graph,
                        merged, IntEnv{{"n", 5}});
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
}

TEST(LoopMergeReorder, ResultsUnchangedByReorderedFusion) {
  // Semantics check: interpret the module with and without the
  // reordering pass; outputs must agree exactly.
  CompileOptions options;
  options.merge_loops = true;
  auto merged = compile_or_die(kInterleavedChains, options);
  auto plain = compile_or_die(kInterleavedChains);

  const int64_t n = 9;
  const int64_t m = 5;
  auto run = [&](const CompiledModule& stage) {
    Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                       IntEnv{{"n", n}, {"m", m}});
    NdArray& x = interp.array("x");
    for (int64_t i = 0; i <= n; ++i)
      x.set(std::vector<int64_t>{i}, static_cast<double>(i * i % 7));
    NdArray& p = interp.array("p");
    for (int64_t j = 0; j <= m; ++j)
      p.set(std::vector<int64_t>{j}, static_cast<double>(j + 1));
    interp.run();
    std::vector<double> out;
    for (int64_t i = 0; i <= n; ++i)
      out.push_back(interp.array("y").at(std::vector<int64_t>{i}));
    for (int64_t j = 0; j <= m; ++j)
      out.push_back(interp.array("q").at(std::vector<int64_t>{j}));
    return out;
  };
  EXPECT_EQ(run(*merged.primary), run(*plain.primary));
}

TEST(LoopMergeReorder, IncompatibleAnnotationsDoNotAttractMoves) {
  // eq.1 is an iterative DO T recurrence; eq.3 is a DOALL T consumer.
  // DO vs DOALL must not fuse, and nothing useful can move.
  auto result = compile_or_die(R"(
M: module (x: array[T] of real; s: int): [y: array[T] of real];
type T = 1 .. s; J = 1 .. s;
var u: array [T] of real;  w: array [J] of real;
define
  u[T] = if T = 1 then x[1] else u[T-1] + x[T];
  w[J] = x[J] * 2.0;
  y[T] = u[T] + 1.0;
end M;
)");
  MergeStats stats;
  Flowchart merged = merge_loops_reordered(
      Flowchart(result.primary->schedule.flowchart), *result.primary->graph,
      &stats);
  EXPECT_EQ(stats.merged, 0u);
  auto report =
      validate_schedule(*result.primary->module, *result.primary->graph,
                        merged, IntEnv{{"s", 5}});
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
}

}  // namespace
}  // namespace ps

