#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

TEST(Scheduler, Figure5ComponentTable) {
  auto result = compile_or_die(kRelaxationSource);
  const CompiledModule& stage = *result.primary;
  const auto& comps = stage.schedule.components;

  // Seven MSCCs, as in Figure 5.
  ASSERT_EQ(comps.size(), 7u);

  auto names = [&](size_t i) {
    std::string out;
    for (size_t j = 0; j < comps[i].nodes.size(); ++j) {
      if (j) out += ", ";
      out += stage.graph->node(comps[i].nodes[j]).name;
    }
    return out;
  };
  auto chart = [&](size_t i) {
    return flowchart_to_line(comps[i].flowchart, *stage.graph);
  };

  // Scalars and inputs first (M precedes InitialA because InitialA's
  // bounds depend on M), then eq.1, the recursive component, eq.2, newA.
  EXPECT_EQ(names(0), "M");
  EXPECT_EQ(chart(0), "(null)");
  EXPECT_EQ(names(1), "InitialA");
  EXPECT_EQ(names(2), "maxK");
  EXPECT_EQ(names(3), "eq.1");
  EXPECT_EQ(chart(3), "DOALL I (DOALL J (eq.1))");
  EXPECT_EQ(names(4), "A, eq.3");
  EXPECT_EQ(chart(4), "DO K (DOALL I (DOALL J (eq.3)))");
  EXPECT_EQ(names(5), "eq.2");
  EXPECT_EQ(chart(5), "DOALL I (DOALL J (eq.2))");
  EXPECT_EQ(names(6), "newA");
  EXPECT_EQ(chart(6), "(null)");
}

TEST(Scheduler, Figure6JacobiFlowchart) {
  auto result = compile_or_die(kRelaxationSource);
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DOALL I (DOALL J (eq.1)); "
            "DO K (DOALL I (DOALL J (eq.3))); "
            "DOALL I (DOALL J (eq.2))");
  EXPECT_EQ(flowchart_equation_count(result.primary->schedule.flowchart), 3u);
  EXPECT_EQ(flowchart_depth(result.primary->schedule.flowchart), 3u);
}

TEST(Scheduler, Figure7GaussSeidelAllIterative) {
  auto result = compile_or_die(kGaussSeidelSource);
  // Deleting the K-1 edges leaves the two recursive edges (J-1 and I-1 at
  // identity K), so the I and J loops must be iterative.
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DOALL I (DOALL J (eq.1)); "
            "DO K (DO I (DO J (eq.3))); "
            "DOALL I (DOALL J (eq.2))");
}

TEST(Scheduler, DimensionChoiceSkipsIneligible) {
  // The first dimension S cannot be scheduled first because of the "S +
  // 1" subscript (step 3); the algorithm falls through to T, exactly as
  // the paper's walkthrough skips I and J for component 5.
  auto result = compile_or_die(R"(
M: module (x: array[S, T] of real; n: int): [y: array[S, T] of real];
type S = 0 .. n; T = 0 .. n;
var a: array [S, T] of real;
define
  a[S, T] = if T = 0 then x[S, T]
            else if S = n then a[S, T-1]
            else a[S+1, T-1];
  y[S, T] = a[S, T];
end M;
)");
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DO T (DOALL S (eq.1)); DOALL S (DOALL T (eq.2))");
}

TEST(Scheduler, InconsistentPositionFails) {
  // Footnote of the paper: A[K,J] = A[I,J-1] + A[J,I] -- the subscripts I
  // and J are not in a consistent position, so scheduling must fail.
  Compiler compiler;
  auto result = compiler.compile(R"(
M: module (n: int): [y: array[I, J] of real];
type I = 0 .. n; J = 0 .. n;
var a: array [I, J] of real;
define
  a[I, J] = if I = 0 or J = 0 then 1.0 else a[I, J-1] + a[J-1, I];
  y[I, J] = a[I, J];
end M;
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics.find("cannot be scheduled"),
            std::string::npos);
}

TEST(Scheduler, UnschedulableRecurrenceReportsStep2a) {
  // x[I] depends on x[n - I]: general subscript, no dimension eligible.
  Compiler compiler;
  auto result = compiler.compile(R"(
M: module (n: int): [y: array[I] of real];
type I = 0 .. n;
var a: array [I] of real;
define
  a[I] = if I = 0 then 1.0 else a[n - I];
  y[I] = a[I];
end M;
)");
  EXPECT_FALSE(result.ok);
}

TEST(Scheduler, ScalarEquationsAreBareDescriptors) {
  auto result = compile_or_die(R"(
M: module (x: real): [y: real; z: real];
define
  y = x * 2.0;
  z = y + 1.0;
end M;
)");
  EXPECT_EQ(testutil::schedule_line(*result.primary), "eq.1; eq.2");
}

TEST(Scheduler, ChainOfUsesOrderedTopologically) {
  auto result = compile_or_die(kPointwiseChainSource);
  // a before b before c before y.
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DOALL I (eq.1); DOALL I (eq.2); DOALL I (eq.3); DOALL I (eq.4)");
}

TEST(Scheduler, ForwardOffsetMakesLoopRunnableBackwards) {
  // a[I] = a[I+1]: "I + constant" makes dimension I ineligible, and there
  // is no other dimension -- the algorithm (correctly, per the paper)
  // rejects it even though reversing the loop would work.
  Compiler compiler;
  auto result = compiler.compile(R"(
M: module (n: int): [y: array[I] of real];
type I = 0 .. n;
var a: array [I] of real;
define
  a[I] = if I = n then 1.0 else a[I+1];
  y[I] = a[I];
end M;
)");
  EXPECT_FALSE(result.ok);
}

TEST(Scheduler, MutuallyRecursiveEquationsShareLoops) {
  auto result = compile_or_die(R"(
M: module (n: int; s: int): [y: array[T, I] of real];
type T = 1 .. s; I = 0 .. n;
var a: array [T, I] of real;
    b: array [T, I] of real;
define
  a[T, I] = if T = 1 then 1.0 else b[T-1, I];
  b[T, I] = if T = 1 then 2.0 else a[T-1, I] + b[T-1, I];
  y[T, I] = a[T, I] + b[T, I];
end M;
)");
  // a and b sit in one MSCC: the T loop is shared and iterative. Inside
  // it the two equations get separate DOALL I loops -- the paper notes
  // its algorithm does not combine non-recursively-related equations
  // that depend on the same subscripts (that is the loop-merge pass).
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DO T (DOALL I (eq.1); DOALL I (eq.2)); "
            "DOALL T (DOALL I (eq.3))");
}

TEST(Scheduler, TwoDimensionalWavefrontNeedsBothIterative) {
  auto result = compile_or_die(R"(
M: module (n: int): [y: array[I, J] of real];
type I = 0 .. n; J = 0 .. n;
var a: array [I, J] of real;
define
  a[I, J] = if I = 0 or J = 0 then 1.0 else a[I-1, J] + a[I, J-1];
  y[I, J] = a[I, J];
end M;
)");
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DO I (DO J (eq.1)); DOALL I (DOALL J (eq.2))");
}

}  // namespace
}  // namespace ps
