#include "core/parallelism.hpp"

#include <gtest/gtest.h>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

TEST(Parallelism, JacobiScheduleSpanIsSweepCount) {
  auto result = compile_or_die(kRelaxationSource);
  const int64_t m = 8;
  const int64_t sweeps = 5;
  auto report = analyze_parallelism(result.primary->schedule.flowchart,
                                    IntEnv{{"M", m}, {"maxK", sweeps}});
  // eq.1 and eq.2 are (M+2)^2 DOALL instances each (span 1); eq.3 runs
  // maxK-1 sequential sweeps of a (M+2)^2 DOALL.
  int64_t grid = (m + 2) * (m + 2);
  EXPECT_EQ(report.work, grid * 2 + (sweeps - 1) * grid);
  EXPECT_EQ(report.span, 1 + 1 + (sweeps - 1));
  EXPECT_GT(report.average_parallelism(), static_cast<double>(grid) / 2);
}

TEST(Parallelism, GaussSeidelScheduleIsFullySequential) {
  auto result = compile_or_die(kGaussSeidelSource);
  const int64_t m = 6;
  const int64_t sweeps = 4;
  auto report = analyze_parallelism(result.primary->schedule.flowchart,
                                    IntEnv{{"M", m}, {"maxK", sweeps}});
  int64_t grid = (m + 2) * (m + 2);
  // The recurrence contributes span == work (DO K (DO I (DO J))).
  EXPECT_EQ(report.work, grid * 2 + (sweeps - 1) * grid);
  EXPECT_EQ(report.span, 1 + 1 + (sweeps - 1) * grid);
  EXPECT_LT(report.average_parallelism(), 3.0);
}

TEST(Parallelism, HyperplaneTransformShrinksTheSpanToTheTimeRange) {
  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  auto result = compile_or_die(kGaussSeidelSource, options);
  const int64_t m = 16;
  const int64_t sweeps = 10;
  IntEnv params{{"M", m}, {"maxK", sweeps}};

  auto before = analyze_parallelism(result.primary->schedule.flowchart,
                                    params);
  auto after =
      analyze_parallelism(result.transformed->schedule.flowchart, params,
                          &*result.exact_nest);

  // Identical useful work (the exact bounds scan only the image; the
  // original eq.1 plane reappears as the pulled-back K = 1 region of
  // the combined recurrence).
  EXPECT_EQ(after.work, before.work);
  // Span: the recurrence collapses to one step per hyperplane,
  // t = 2 .. 2*maxK + 2M + 2, plus one step for the newA copy (eq.1 is
  // folded into the combined recurrence).
  int64_t hyperplanes = 2 * sweeps + 2 * m + 1;
  EXPECT_EQ(after.span, hyperplanes + 1);
  EXPECT_LT(after.span, before.span / 4);
  EXPECT_GT(after.average_parallelism(), 4.0);
}

TEST(Parallelism, ExactBoundsAvoidTheBoundingBoxWork) {
  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  auto result = compile_or_die(kGaussSeidelSource, options);
  const int64_t m = 12;
  const int64_t sweeps = 8;
  IntEnv params{{"M", m}, {"maxK", sweeps}};

  // Without the exact nest the transformed schedule iterates the
  // rectangular bounding box -- more work than the original program.
  auto bbox = analyze_parallelism(result.transformed->schedule.flowchart,
                                  params);
  auto exact = analyze_parallelism(result.transformed->schedule.flowchart,
                                   params, &*result.exact_nest);
  int64_t grid = (m + 2) * (m + 2);
  int64_t image = sweeps * grid;  // recurrence points incl. the K=1 plane
  EXPECT_EQ(exact.work, image + grid);
  EXPECT_GT(bbox.work, exact.work * 2);  // the ~2 + 2maxK/M blow-up
  // Same span: the extra bounding-box points sit on existing
  // hyperplanes.
  EXPECT_EQ(bbox.span, exact.span);
}

TEST(Parallelism, EmptyLoopsCostNothing) {
  auto result = compile_or_die(kRelaxationSource);
  // maxK = 1: the recurrence range 2..1 is empty.
  auto report = analyze_parallelism(result.primary->schedule.flowchart,
                                    IntEnv{{"M", 4}, {"maxK", 1}});
  int64_t grid = 6 * 6;
  EXPECT_EQ(report.work, 2 * grid);
  EXPECT_EQ(report.span, 2);
}

TEST(Parallelism, BarrierCountMatchesParallelLoopRuns) {
  auto result = compile_or_die(kRelaxationSource);
  const int64_t sweeps = 5;
  auto report = analyze_parallelism(result.primary->schedule.flowchart,
                                    IntEnv{{"M", 4}, {"maxK", sweeps}});
  // One barrier per outermost DOALL execution: eq.1's nest, eq.2's
  // nest, and one per recurrence sweep. Inner DOALL J loops add one
  // barrier per enclosing I iteration.
  EXPECT_GT(report.barriers, sweeps - 1);
  EXPECT_LT(report.barriers, (sweeps + 2) * 7);
}

TEST(Parallelism, ThrowsOnUnboundParameters) {
  auto result = compile_or_die(kRelaxationSource);
  EXPECT_THROW(
      analyze_parallelism(result.primary->schedule.flowchart, IntEnv{}),
      std::runtime_error);
}

}  // namespace
}  // namespace ps
