#include "core/const_eval.hpp"

#include <gtest/gtest.h>

#include "frontend/parser.hpp"

namespace ps {
namespace {

ExprPtr parse(std::string_view src) {
  DiagnosticEngine diags;
  Parser parser(src, diags);
  ExprPtr e = parser.parse_expression_only();
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return e;
}

TEST(ConstEval, Arithmetic) {
  IntEnv env{{"M", 6}, {"K", 3}};
  EXPECT_EQ(eval_const_int(*parse("2 * M + 1"), env), 13);
  EXPECT_EQ(eval_const_int(*parse("K - 1"), env), 2);
  EXPECT_EQ(eval_const_int(*parse("-K"), env), -3);
  EXPECT_EQ(eval_const_int(*parse("M div 4"), env), 1);
  EXPECT_EQ(eval_const_int(*parse("M mod 4"), env), 2);
  EXPECT_EQ(eval_const_int(*parse("abs(1 - M)"), env), 5);
  EXPECT_EQ(eval_const_int(*parse("min(M, K) + max(M, K)"), env), 9);
}

TEST(ConstEval, UnknownNameIsNullopt) {
  IntEnv env;
  EXPECT_FALSE(eval_const_int(*parse("M + 1"), env).has_value());
  EXPECT_FALSE(eval_const_int(*parse("x div 0"), env).has_value());
}

TEST(ConstEval, DivisionByZeroIsNullopt) {
  IntEnv env{{"z", 0}};
  EXPECT_FALSE(eval_const_int(*parse("1 div z"), env).has_value());
  EXPECT_FALSE(eval_const_int(*parse("1 mod z"), env).has_value());
}

TEST(ConstEval, Booleans) {
  IntEnv env{{"I", 0}, {"M", 6}};
  EXPECT_EQ(eval_const_bool(*parse("I = 0"), env), true);
  EXPECT_EQ(eval_const_bool(*parse("I = 0 or I = M + 1"), env), true);
  EXPECT_EQ(eval_const_bool(*parse("I > 0 and I < M"), env), false);
  EXPECT_EQ(eval_const_bool(*parse("not (I = 0)"), env), false);
  EXPECT_EQ(eval_const_bool(*parse("I <> 0"), env), false);
  EXPECT_EQ(eval_const_bool(*parse("I <= 0"), env), true);
  EXPECT_EQ(eval_const_bool(*parse("I >= 1"), env), false);
}

TEST(ConstEval, ShortCircuitToleratesUnknownSide) {
  IntEnv env{{"I", 0}};
  // "I = 0 or <unknown>" is true regardless of the unknown side.
  EXPECT_EQ(eval_const_bool(*parse("I = 0 or zz = 1"), env), true);
  EXPECT_EQ(eval_const_bool(*parse("I = 1 and zz = 1"), env), false);
  // Both unknown: nullopt.
  EXPECT_FALSE(eval_const_bool(*parse("zz = 1 or ww = 2"), env).has_value());
}

TEST(ConstEval, IfExpression) {
  IntEnv env{{"I", 5}, {"M", 6}};
  EXPECT_EQ(eval_const_int(*parse("if I < M then 1 else 2"), env), 1);
  EXPECT_EQ(eval_const_bool(*parse("if I < M then I = 5 else false"), env),
            true);
  EXPECT_FALSE(
      eval_const_int(*parse("if zz = 0 then 1 else 2"), env).has_value());
}

TEST(ConstEval, RealLiteralsAreNotInts) {
  IntEnv env;
  EXPECT_FALSE(eval_const_int(*parse("1.5"), env).has_value());
  EXPECT_FALSE(eval_const_int(*parse("1 + 2.0"), env).has_value());
}

}  // namespace
}  // namespace ps
