#include <gtest/gtest.h>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/interpreter.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

TEST(VirtualDimension, JacobiAWindowTwo) {
  auto result = compile_or_die(kRelaxationSource);
  const auto& vd = result.primary->schedule.virtual_dims.at("A");
  ASSERT_EQ(vd.size(), 3u);
  // Dimension 1 is virtual with window 2: in-component references are all
  // K-1 (form 1), the outside reference A[maxK] is the upper bound
  // (form 2).
  EXPECT_TRUE(vd[0].is_virtual);
  EXPECT_EQ(vd[0].window, 2);
  // Dimensions 2 and 3 are not virtual: "first, they have edges with
  // subscript expression 'I + constant', and second, there are edges
  // going out of the component which don't have the second form".
  EXPECT_FALSE(vd[1].is_virtual);
  EXPECT_FALSE(vd[2].is_virtual);
}

TEST(VirtualDimension, GaussSeidelSameResult) {
  // "The virtual dimension analysis gives the same result as in the
  // previous version: the first dimension of A is virtual with window of
  // two elements."
  auto result = compile_or_die(kGaussSeidelSource);
  const auto& vd = result.primary->schedule.virtual_dims.at("A");
  EXPECT_TRUE(vd[0].is_virtual);
  EXPECT_EQ(vd[0].window, 2);
  EXPECT_FALSE(vd[1].is_virtual);
  EXPECT_FALSE(vd[2].is_virtual);
}

TEST(VirtualDimension, TransformedArrayWindowThree) {
  CompileOptions options;
  options.apply_hyperplane = true;
  auto result = compile_or_die(kGaussSeidelSource, options);
  ASSERT_TRUE(result.transformed.has_value()) << result.diagnostics;
  const auto& vd = result.transformed->schedule.virtual_dims.at("A'");
  ASSERT_EQ(vd.size(), 3u);
  // Within the recurrence the only references are K'-1 and K'-2, so the
  // paper declares the first dimension virtual with window three. The
  // unrotate equation reads A' at a general subscript outside the
  // component, so the strict analysis (which would have to prove the
  // rotate/unrotate pattern safe) does not fire -- exactly the gap the
  // paper's "with a little more intelligence..." paragraph leaves open.
  EXPECT_TRUE(vd[0].virtual_in_component);
  EXPECT_EQ(vd[0].component_window, 3);
  EXPECT_FALSE(vd[0].is_virtual);
}

TEST(VirtualDimension, BackwardOffsetTwoGivesWindowThree) {
  auto result = compile_or_die(R"(
M: module (n: int; s: int): [y: array[X] of real];
type T = 3 .. s; X = 0 .. n;
var u: array [1 .. s] of array [X] of real;
define
  u[1] = 0.0;
  u[2] = 1.0;
  u[T, X] = u[T-1, X] + u[T-2, X];
  y[X] = u[s, X];
end M;
)");
  const auto& vd = result.primary->schedule.virtual_dims.at("u");
  EXPECT_TRUE(vd[0].is_virtual);
  EXPECT_EQ(vd[0].window, 3);
}

TEST(VirtualDimension, NonUpperBoundOutsideUseBlocksWindow) {
  // y reads u[1], not u[s]: form 2 requires the upper bound, so the
  // dimension must not be virtual (the first slice would be overwritten).
  auto result = compile_or_die(R"(
M: module (n: int; s: int): [y: array[X] of real];
type T = 2 .. s; X = 0 .. n;
var u: array [1 .. s] of array [X] of real;
define
  u[1] = 0.0;
  u[T, X] = u[T-1, X] + 1.0;
  y[X] = u[1, X];
end M;
)");
  const auto& vd = result.primary->schedule.virtual_dims.at("u");
  EXPECT_FALSE(vd[0].is_virtual);
  // But inside the component the references are well-behaved.
  EXPECT_TRUE(vd[0].virtual_in_component);
  EXPECT_EQ(vd[0].component_window, 2);
}

TEST(VirtualDimension, OnlyLocalsAnalysed) {
  auto result = compile_or_die(kRelaxationSource);
  // newA is an output: the paper's rule covers local variables only.
  const auto& vd = result.primary->schedule.virtual_dims.at("newA");
  for (const auto& d : vd) EXPECT_FALSE(d.is_virtual);
}

TEST(VirtualDimension, WindowedInterpreterMatchesFull) {
  auto result = compile_or_die(kRelaxationSource);
  const CompiledModule& stage = *result.primary;

  IntEnv params{{"M", 6}, {"maxK", 5}};
  auto make = [&](bool windows) {
    InterpreterOptions opt;
    opt.use_virtual_windows = windows;
    opt.virtual_dims = &stage.schedule.virtual_dims;
    return std::make_unique<Interpreter>(*stage.module, *stage.graph,
                                         stage.schedule.flowchart, params,
                                         std::map<std::string, double>{}, opt);
  };
  auto full = make(false);
  auto windowed = make(true);
  EXPECT_LT(windowed->allocated_doubles(), full->allocated_doubles());

  NdArray& in_full = full->array("InitialA");
  NdArray& in_win = windowed->array("InitialA");
  for (int64_t i = 0; i <= 7; ++i) {
    for (int64_t j = 0; j <= 7; ++j) {
      double v = static_cast<double>(i * 13 + j);
      in_full.set(std::vector<int64_t>{i, j}, v);
      in_win.set(std::vector<int64_t>{i, j}, v);
    }
  }
  full->run();
  windowed->run();
  for (int64_t i = 0; i <= 7; ++i)
    for (int64_t j = 0; j <= 7; ++j) {
      std::vector<int64_t> idx{i, j};
      EXPECT_DOUBLE_EQ(full->array("newA").at(idx),
                       windowed->array("newA").at(idx))
          << i << "," << j;
    }
  // A with window 2 allocates 2 slices instead of maxK.
  EXPECT_EQ(windowed->array("A").allocation(), 2u * 8 * 8);
  EXPECT_EQ(full->array("A").allocation(), 5u * 8 * 8);
}

}  // namespace
}  // namespace ps
