#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "../common/test_util.hpp"
#include "core/validator.hpp"

namespace ps {
namespace {

/// Generates random but well-formed PS modules: a pipeline of stages,
/// each either a pointwise map over earlier arrays or a time recurrence
/// with a random (guarded) stencil, optionally Gauss-Seidel style with
/// same-step backward neighbours. Every generated module must schedule,
/// and every schedule must pass the concrete validator -- the core
/// soundness property of the paper's algorithm.
class ModuleGenerator {
 public:
  explicit ModuleGenerator(uint32_t seed) : rng_(seed) {}

  std::string generate() {
    int stages = pick(1, 4);
    for (int i = 0; i < stages; ++i) kinds_.push_back(chance(0.6));
    std::ostringstream os;
    os << "Gen: module (x: array[X] of real; n: int; s: int):\n"
       << "  [y: array[X] of real];\n"
       << "type T = 1 .. s; X = 0 .. n;\n"
       << "var\n";
    for (int i = 0; i < stages; ++i) {
      if (recurrence_stage(i))
        os << "  a" << i << ": array [T] of array [X] of real;\n";
      else
        os << "  a" << i << ": array [X] of real;\n";
    }
    os << "define\n";
    for (int i = 0; i < stages; ++i) emit_stage(os, i);
    os << "  y[X] = " << read_of(stages - 1, "X") << ";\n";
    os << "end Gen;\n";
    return os.str();
  }

 private:
  int pick(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }
  bool chance(double p) {
    return std::uniform_real_distribution<double>(0, 1)(rng_) < p;
  }
  bool recurrence_stage(int i) { return kinds_.at(static_cast<size_t>(i)); }

  /// Reference to stage i's value at position expr (last time step for
  /// recurrences).
  std::string read_of(int i, const std::string& at) {
    if (recurrence_stage(i)) return "a" + std::to_string(i) + "[s, " + at + "]";
    return "a" + std::to_string(i) + "[" + at + "]";
  }

  void emit_stage(std::ostringstream& os, int i) {
    bool rec = recurrence_stage(i);
    std::string name = "a" + std::to_string(i);
    std::string prev_at_x =
        i == 0 ? "x[X]" : read_of(i - 1, "X");
    if (!rec) {
      os << "  " << name << "[X] = " << prev_at_x << " * 0.5 + "
         << std::to_string(i) << ".0;\n";
      return;
    }
    // Recurrence over T with a guarded spatial stencil. With probability
    // 1/2 add a same-step backward neighbour (Gauss-Seidel flavour),
    // which forces DO X.
    int radius = pick(0, 2);
    bool same_step = chance(0.5);
    os << "  " << name << "[T, X] = if T = 1 then " << prev_at_x << "\n";
    os << "    else if X < " << std::max(radius, same_step ? 1 : 0)
       << " or X > n - " << radius << " then " << name << "[T-1, X]\n";
    os << "    else (" << name << "[T-1, X]";
    for (int r = 1; r <= radius; ++r) {
      os << " + " << name << "[T-1, X-" << r << "]";
      os << " + " << name << "[T-1, X+" << r << "]";
    }
    if (same_step) os << " + " << name << "[T, X-1]";
    os << ") / " << (1 + 2 * radius + (same_step ? 1 : 0)) << ";\n";
  }

  std::mt19937 rng_;
  std::vector<bool> kinds_;
};

class SchedulerPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SchedulerPropertyTest, EveryScheduleValidates) {
  ModuleGenerator gen(GetParam());
  std::string source = gen.generate();
  SCOPED_TRACE(source);

  Compiler compiler;
  CompileResult result = compiler.compile(source);
  ASSERT_TRUE(result.ok) << result.diagnostics;

  std::mt19937 rng(GetParam() * 7919 + 13);
  IntEnv params{{"n", std::uniform_int_distribution<int64_t>(4, 9)(rng)},
                {"s", std::uniform_int_distribution<int64_t>(2, 5)(rng)}};
  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph,
                                  result.primary->schedule.flowchart, params);
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
}

TEST_P(SchedulerPropertyTest, MergedSchedulesStillValidate) {
  ModuleGenerator gen(GetParam() + 1000);
  std::string source = gen.generate();
  SCOPED_TRACE(source);

  CompileOptions options;
  options.merge_loops = true;
  Compiler compiler(options);
  CompileResult result = compiler.compile(source);
  ASSERT_TRUE(result.ok) << result.diagnostics;

  IntEnv params{{"n", 7}, {"s", 4}};
  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph,
                                  result.primary->schedule.flowchart, params);
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
}

TEST_P(SchedulerPropertyTest, SameStepNeighbourForcesIterativeX) {
  // Deterministic instance of the generator's Gauss-Seidel flavour: the
  // X loop of a recurrence with a same-step neighbour must be DO, and
  // without it DOALL.
  std::string with_neighbour = R"(
Gen: module (x: array[X] of real; n: int; s: int): [y: array[X] of real];
type T = 1 .. s; X = 0 .. n;
var a0: array [T] of array [X] of real;
define
  a0[T, X] = if T = 1 then x[X]
             else if X < 1 then a0[T-1, X]
             else a0[T-1, X] + a0[T, X-1];
  y[X] = a0[s, X];
end Gen;
)";
  auto result = testutil::compile_or_die(with_neighbour);
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DO T (DO X (eq.1)); DOALL X (eq.2)");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerPropertyTest,
                         ::testing::Range(0u, 30u));

}  // namespace
}  // namespace ps
