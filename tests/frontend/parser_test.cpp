#include "frontend/parser.hpp"

#include <gtest/gtest.h>

#include "driver/paper_modules.hpp"

namespace ps {
namespace {

ExprPtr parse_expr(std::string_view src) {
  DiagnosticEngine diags;
  Parser parser(src, diags);
  ExprPtr e = parser.parse_expression_only();
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return e;
}

TEST(Parser, ExpressionPrecedence) {
  EXPECT_EQ(to_string(*parse_expr("1 + 2 * 3")), "1 + 2 * 3");
  EXPECT_EQ(to_string(*parse_expr("(1 + 2) * 3")), "(1 + 2) * 3");
  EXPECT_EQ(to_string(*parse_expr("a - b - c")), "a - b - c");
  // '-' is left associative: (a-b)-c, so a-(b-c) needs parens.
  auto e = parse_expr("a - (b - c)");
  EXPECT_EQ(to_string(*e), "a - (b - c)");
}

TEST(Parser, BooleanPrecedence) {
  // 'or' binds loosest, then 'and', then comparisons.
  auto e = parse_expr("I = 0 or J = 0 and K = 0");
  ASSERT_EQ(e->kind, ExprKind::Binary);
  EXPECT_EQ(static_cast<BinaryExpr&>(*e).op, BinaryOp::Or);
}

TEST(Parser, IfExpression) {
  auto e = parse_expr("if a < b then a else b");
  ASSERT_EQ(e->kind, ExprKind::If);
  const auto& i = static_cast<IfExpr&>(*e);
  EXPECT_EQ(i.cond->kind, ExprKind::Binary);
  EXPECT_EQ(i.then_expr->kind, ExprKind::Name);
}

TEST(Parser, SubscriptsAndCalls) {
  auto e = parse_expr("A[K-1, I, J+1] + max(x, y)");
  ASSERT_EQ(e->kind, ExprKind::Binary);
  const auto& b = static_cast<BinaryExpr&>(*e);
  ASSERT_EQ(b.lhs->kind, ExprKind::Index);
  EXPECT_EQ(static_cast<IndexExpr&>(*b.lhs).subs.size(), 3u);
  ASSERT_EQ(b.rhs->kind, ExprKind::Call);
  EXPECT_EQ(static_cast<CallExpr&>(*b.rhs).callee, "max");
}

TEST(Parser, FieldAccess) {
  auto e = parse_expr("p[I].x");
  ASSERT_EQ(e->kind, ExprKind::Field);
  EXPECT_EQ(static_cast<FieldExpr&>(*e).field, "x");
}

TEST(Parser, Figure1ModuleParses) {
  DiagnosticEngine diags;
  Parser parser(kRelaxationSource, diags);
  auto module = parser.parse_module();
  ASSERT_TRUE(module.has_value()) << diags.render();
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  EXPECT_EQ(module->name, "Relaxation");
  ASSERT_EQ(module->params.size(), 3u);
  EXPECT_EQ(module->params[0].names, (std::vector<std::string>{"InitialA"}));
  ASSERT_EQ(module->results.size(), 1u);
  EXPECT_EQ(module->results[0].names, (std::vector<std::string>{"newA"}));
  // "I, J = 0 .. M+1" declares two types in one declaration.
  ASSERT_EQ(module->type_decls.size(), 2u);
  EXPECT_EQ(module->type_decls[0].names,
            (std::vector<std::string>{"I", "J"}));
  ASSERT_EQ(module->locals.size(), 1u);
  ASSERT_EQ(module->equations.size(), 3u);
  EXPECT_EQ(module->equations[0].lhs_name, "A");
  EXPECT_EQ(module->equations[0].lhs_subs.size(), 1u);
  EXPECT_EQ(module->equations[2].lhs_subs.size(), 3u);
}

TEST(Parser, NestedArrayType) {
  DiagnosticEngine diags;
  Parser parser(R"(
M: module (n: int): [y: array[0..n] of real];
var z: array [1 .. 3] of array [0..n, 0..n] of real;
define
  y = z[1, 0];
  z[1] = y;
end M;
)",
                diags);
  auto module = parser.parse_module();
  ASSERT_TRUE(module.has_value());
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  EXPECT_EQ(module->locals[0].type->kind, TypeExprKind::Array);
}

TEST(Parser, RecordAndEnumTypes) {
  DiagnosticEngine diags;
  Parser parser(R"(
M: module (n: int): [y: real];
type
  Color = (red, green, blue);
  Point = record x, y: real; tag: Color; end;
define
  y = 1.0;
end M;
)",
                diags);
  auto module = parser.parse_module();
  ASSERT_TRUE(module.has_value());
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  EXPECT_EQ(module->type_decls[0].type->kind, TypeExprKind::Enum);
  EXPECT_EQ(module->type_decls[0].type->enumerators.size(), 3u);
  EXPECT_EQ(module->type_decls[1].type->kind, TypeExprKind::Record);
  EXPECT_EQ(module->type_decls[1].type->fields.size(), 3u);
}

TEST(Parser, ErrorRecoveryAtSemicolon) {
  DiagnosticEngine diags;
  Parser parser(R"(
M: module (n: int): [y: real; z: real];
define
  y = ) bad syntax ;
  z = 2.0;
end M;
)",
                diags);
  auto module = parser.parse_module();
  ASSERT_TRUE(module.has_value());
  EXPECT_TRUE(diags.has_errors());
  // The good equation after the bad one is still parsed.
  ASSERT_EQ(module->equations.size(), 1u);
  EXPECT_EQ(module->equations[0].lhs_name, "z");
}

TEST(Parser, TrailerNameMismatchWarns) {
  DiagnosticEngine diags;
  Parser parser("M: module (n: int): [y: real]; define y = 1.0; end Other;",
                diags);
  auto module = parser.parse_module();
  ASSERT_TRUE(module.has_value());
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(diags.messages(Severity::Warning).size(), 1u);
}

TEST(Parser, RoundTripThroughToSource) {
  DiagnosticEngine diags;
  Parser parser(kRelaxationSource, diags);
  auto module = parser.parse_module();
  ASSERT_TRUE(module.has_value());
  std::string printed = to_source(*module);

  DiagnosticEngine diags2;
  Parser parser2(printed, diags2);
  auto module2 = parser2.parse_module();
  ASSERT_TRUE(module2.has_value()) << diags2.render() << printed;
  EXPECT_FALSE(diags2.has_errors()) << diags2.render();
  // Second print is a fixed point.
  EXPECT_EQ(to_source(*module2), printed);
  EXPECT_EQ(module2->equations.size(), module->equations.size());
  for (size_t i = 0; i < module->equations.size(); ++i)
    EXPECT_TRUE(expr_equal(*module2->equations[i].rhs,
                           *module->equations[i].rhs))
        << "equation " << i;
}

TEST(Parser, ProgramWithTwoModules) {
  DiagnosticEngine diags;
  Parser parser(R"(
A: module (n: int): [y: real]; define y = 1.0; end A;
B: module (n: int): [y: real]; define y = 2.0; end B;
)",
                diags);
  ProgramAst program = parser.parse_program();
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  ASSERT_EQ(program.modules.size(), 2u);
  EXPECT_EQ(program.modules[1].name, "B");
}

}  // namespace
}  // namespace ps
