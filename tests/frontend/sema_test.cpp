#include "frontend/sema.hpp"

#include <gtest/gtest.h>

#include "driver/paper_modules.hpp"
#include "frontend/parser.hpp"

namespace ps {
namespace {

std::optional<CheckedModule> check(std::string_view src,
                                   DiagnosticEngine* out_diags = nullptr) {
  DiagnosticEngine local;
  DiagnosticEngine& diags = out_diags != nullptr ? *out_diags : local;
  Parser parser(src, diags);
  auto ast = parser.parse_module();
  if (!ast || diags.has_errors()) return std::nullopt;
  Sema sema(diags);
  return sema.check(std::move(*ast));
}

TEST(Sema, Figure1ModuleChecks) {
  DiagnosticEngine diags;
  auto m = check(kRelaxationSource, &diags);
  ASSERT_TRUE(m.has_value()) << diags.render();

  // Data items: 3 inputs, 1 output, 1 local.
  ASSERT_EQ(m->data.size(), 5u);
  EXPECT_EQ(m->data[0].name, "InitialA");
  EXPECT_EQ(m->data[0].cls, DataClass::Input);
  EXPECT_EQ(m->data[0].rank(), 2u);
  EXPECT_EQ(m->data[3].name, "newA");
  EXPECT_EQ(m->data[3].cls, DataClass::Output);
  const DataItem* a = m->find_data("A");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->cls, DataClass::Local);
  // Nested array flattens to three dimensions.
  EXPECT_EQ(a->rank(), 3u);
  EXPECT_EQ(a->elem->kind, TypeKind::Real);

  // Bound dependencies: A's bounds use maxK and M.
  EXPECT_EQ(a->bound_deps, (std::vector<std::string>{"maxK", "M"}));
  EXPECT_EQ(m->data[0].bound_deps, (std::vector<std::string>{"M"}));
}

TEST(Sema, ImplicitDimensionsElaborated) {
  auto m = check(kRelaxationSource);
  ASSERT_TRUE(m.has_value());
  // eq.1: A[1] = InitialA becomes A[1,I,J] = InitialA[I,J].
  const CheckedEquation& eq1 = m->equations[0];
  ASSERT_EQ(eq1.loop_dims.size(), 2u);
  EXPECT_EQ(eq1.loop_dims[0].var, "I");
  EXPECT_EQ(eq1.loop_dims[0].lhs_dim, 1u);
  EXPECT_EQ(eq1.loop_dims[1].var, "J");
  EXPECT_EQ(to_string(*eq1.rhs), "InitialA[I, J]");
  ASSERT_EQ(eq1.lhs_subs.size(), 3u);
  EXPECT_FALSE(eq1.lhs_subs[0].is_index_var);

  // eq.2: newA = A[maxK] becomes newA[I,J] = A[maxK,I,J].
  const CheckedEquation& eq2 = m->equations[1];
  EXPECT_EQ(to_string(*eq2.rhs), "A[maxK, I, J]");
  ASSERT_EQ(eq2.array_refs.size(), 1u);
  EXPECT_EQ(eq2.array_refs[0].subs[0].kind, SubscriptInfo::Kind::UpperBound);
  EXPECT_EQ(eq2.array_refs[0].subs[1].kind, SubscriptInfo::Kind::IndexVar);
  // maxK used as a subscript is a scalar data reference.
  EXPECT_EQ(eq2.scalar_refs, (std::vector<std::string>{"maxK"}));
}

TEST(Sema, SubscriptClassificationFigure2) {
  auto m = check(kRelaxationSource);
  ASSERT_TRUE(m.has_value());
  const CheckedEquation& eq3 = m->equations[2];
  ASSERT_EQ(eq3.loop_dims.size(), 3u);
  EXPECT_EQ(eq3.loop_dims[0].var, "K");
  // Five references to A, all with K-1 in dimension 1 (Jacobi).
  ASSERT_EQ(eq3.array_refs.size(), 5u);
  for (const auto& ref : eq3.array_refs) {
    EXPECT_EQ(ref.array, "A");
    EXPECT_EQ(ref.subs[0].kind, SubscriptInfo::Kind::IndexVar);
    EXPECT_EQ(ref.subs[0].var, "K");
    EXPECT_EQ(ref.subs[0].offset, -1);
  }
  // A[K-1,I,J-1]: offset -1 in dimension 3.
  EXPECT_EQ(eq3.array_refs[1].subs[2].offset, -1);
  // A[K-1,I+1,J]: offset +1 in dimension 2.
  EXPECT_EQ(eq3.array_refs[4].subs[1].offset, 1);
  // M is referenced in the guard: scalar dependency (M -> eq.3).
  EXPECT_EQ(eq3.scalar_refs, (std::vector<std::string>{"M"}));
}

TEST(Sema, LoopRangesComeFromIndexVarTypes) {
  auto m = check(kRelaxationSource);
  ASSERT_TRUE(m.has_value());
  // eq.3's K loops over the declared subrange K = 2..maxK, not over A's
  // full first dimension 1..maxK.
  const CheckedEquation& eq3 = m->equations[2];
  EXPECT_EQ(to_string(*eq3.loop_dims[0].range->lo), "2");
  EXPECT_EQ(to_string(*eq3.loop_dims[0].range->hi), "maxK");
  // A's own first dimension starts at 1.
  const DataItem* a = m->find_data("A");
  EXPECT_EQ(to_string(*a->dims[0]->lo), "1");
}

TEST(Sema, RejectsEquationForInput) {
  DiagnosticEngine diags;
  auto m = check("M: module (x: real): [y: real]; define x = 1.0; y = x; end M;",
                 &diags);
  EXPECT_FALSE(m.has_value());
  EXPECT_TRUE(diags.has_errors());
}

TEST(Sema, RejectsUndefinedOutput) {
  DiagnosticEngine diags;
  auto m = check("M: module (x: real): [y: real; z: real]; define y = x; end M;",
                 &diags);
  EXPECT_FALSE(m.has_value());
  std::string text = diags.render();
  EXPECT_NE(text.find("'z' has no defining equation"), std::string::npos);
}

TEST(Sema, RejectsTypeMismatch) {
  DiagnosticEngine diags;
  auto m = check(
      "M: module (x: real): [y: bool]; define y = x + 1.0; end M;", &diags);
  EXPECT_FALSE(m.has_value());
}

TEST(Sema, RejectsUnknownName) {
  DiagnosticEngine diags;
  auto m = check("M: module (x: real): [y: real]; define y = nope; end M;",
                 &diags);
  EXPECT_FALSE(m.has_value());
}

TEST(Sema, RejectsDuplicateIndexVariable) {
  DiagnosticEngine diags;
  auto m = check(R"(
M: module (n: int): [y: array[I] of real];
type I = 0 .. n;
var b: array [I, I] of real;
define
  b[I, I] = 1.0;
  y[I] = b[I, I];
end M;
)",
                 &diags);
  EXPECT_FALSE(m.has_value());
  EXPECT_NE(diags.render().find("duplicate index variable"),
            std::string::npos);
}

TEST(Sema, RejectsRankMismatch) {
  DiagnosticEngine diags;
  auto m = check(R"(
M: module (x: array[I] of real; n: int): [y: array[I] of real];
type I = 0 .. n;
define
  y[I] = x[I, I];
end M;
)",
                 &diags);
  EXPECT_FALSE(m.has_value());
}

TEST(Sema, EnumConstantsResolve) {
  DiagnosticEngine diags;
  auto m = check(R"(
M: module (n: int): [y: int];
type Color = (red, green, blue);
var c: Color;
define
  c = green;
  y = if c = green then 1 else 0;
end M;
)",
                 &diags);
  ASSERT_TRUE(m.has_value()) << diags.render();
}

TEST(Sema, IntrinsicTyping) {
  DiagnosticEngine diags;
  auto m = check(R"(
M: module (x: real; k: int): [y: real; j: int];
define
  y = sqrt(abs(x)) + max(x, 1.0);
  j = min(k, 3) + floor(x);
end M;
)",
                 &diags);
  ASSERT_TRUE(m.has_value()) << diags.render();
}

TEST(Sema, IntrinsicArityError) {
  DiagnosticEngine diags;
  auto m = check("M: module (x: real): [y: real]; define y = max(x); end M;",
                 &diags);
  EXPECT_FALSE(m.has_value());
}

TEST(Sema, GeneralAffineSubscriptClassifiedGeneral) {
  DiagnosticEngine diags;
  auto m = check(R"(
M: module (x: array[I] of real; n: int): [y: array[I] of real];
type I = 0 .. n;
define
  y[I] = x[n - I];
end M;
)",
                 &diags);
  ASSERT_TRUE(m.has_value()) << diags.render();
  ASSERT_EQ(m->equations[0].array_refs.size(), 1u);
  EXPECT_EQ(m->equations[0].array_refs[0].subs[0].kind,
            SubscriptInfo::Kind::General);
}

TEST(Sema, ConstantSubscriptClassified) {
  DiagnosticEngine diags;
  auto m = check(R"(
M: module (x: array[I] of real; n: int): [y: array[I] of real];
type I = 0 .. n;
define
  y[I] = x[0] + x[I];
end M;
)",
                 &diags);
  ASSERT_TRUE(m.has_value()) << diags.render();
  const auto& refs = m->equations[0].array_refs;
  ASSERT_EQ(refs.size(), 2u);
  // x[0]: 0 equals the lower bound but not the upper -> Constant.
  EXPECT_EQ(refs[0].subs[0].kind, SubscriptInfo::Kind::Constant);
  EXPECT_EQ(refs[0].subs[0].constant, 0);
  EXPECT_EQ(refs[1].subs[0].kind, SubscriptInfo::Kind::IndexVar);
}

TEST(Sema, UpperBoundSubscriptWinsOverGeneral) {
  DiagnosticEngine diags;
  auto m = check(R"(
M: module (x: array[0 .. n] of real; n: int): [y: array[0 .. n] of real];
define
  y[_w: 0] = 0.0;
end M;
)",
                 &diags);
  // Nonsense module; only ensures bad syntax in define is diagnosed, not
  // crashing.
  EXPECT_FALSE(m.has_value());
  EXPECT_TRUE(diags.has_errors());
}

TEST(Sema, AnonymousSubrangesAreInterned) {
  // Two vars with the same inline `1 .. s` dimension: resolve_type must
  // hand back one shared anonymous subrange, not two structural twins.
  DiagnosticEngine diags;
  auto m = check(R"(
P: module (x: array[X] of real; n: int; s: int): [y: array[X] of real];
type X = 0 .. n;
var a: array [1 .. s] of array [X] of real;
    b: array [1 .. s] of array [X] of real;
define
  a[1] = x;
  b[1] = x;
  y[X] = a[s, X] + b[s, X];
end P;
)",
                 &diags);
  ASSERT_TRUE(m.has_value()) << diags.render();
  EXPECT_GE(m->types.subrange_intern_hits(), 1u);
  const DataItem* a = m->find_data("a");
  const DataItem* b = m->find_data("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Pointer-identical first dimension: the interned `1 .. s`.
  EXPECT_EQ(a->dims[0], b->dims[0]);
}

TEST(Sema, GaussSeidelChecks) {
  DiagnosticEngine diags;
  auto m = check(kGaussSeidelSource, &diags);
  ASSERT_TRUE(m.has_value()) << diags.render();
  const CheckedEquation& eq3 = m->equations[2];
  // A[K,I,J-1]: identity in K.
  EXPECT_EQ(eq3.array_refs[1].subs[0].offset, 0);
  EXPECT_EQ(eq3.array_refs[1].subs[2].offset, -1);
}

}  // namespace
}  // namespace ps
