#include "frontend/lexer.hpp"

#include <gtest/gtest.h>

namespace ps {
namespace {

std::vector<Token> lex(std::string_view src, DiagnosticEngine* diags = nullptr) {
  DiagnosticEngine local;
  DiagnosticEngine& d = diags != nullptr ? *diags : local;
  Lexer lexer(src, d);
  return lexer.lex_all();
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  auto toks = lex("MODULE Define tYpe VAR end");
  ASSERT_EQ(toks.size(), 6u);  // includes EOF
  EXPECT_EQ(toks[0].kind, TokenKind::KwModule);
  EXPECT_EQ(toks[1].kind, TokenKind::KwDefine);
  EXPECT_EQ(toks[2].kind, TokenKind::KwType);
  EXPECT_EQ(toks[3].kind, TokenKind::KwVar);
  EXPECT_EQ(toks[4].kind, TokenKind::KwEnd);
}

TEST(Lexer, IdentifiersKeepSpelling) {
  auto toks = lex("InitialA maxK newA A' _tmp");
  EXPECT_EQ(toks[0].text, "InitialA");
  EXPECT_EQ(toks[1].text, "maxK");
  EXPECT_EQ(toks[2].text, "newA");
  EXPECT_EQ(toks[3].text, "A'");  // primed identifiers, as in the paper
  EXPECT_EQ(toks[4].text, "_tmp");
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(toks[i].kind, TokenKind::Identifier);
}

TEST(Lexer, IntegerAndRealLiterals) {
  auto toks = lex("42 3.5 1e3 2.5e-2 7");
  EXPECT_EQ(toks[0].kind, TokenKind::IntLiteral);
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_EQ(toks[1].kind, TokenKind::RealLiteral);
  EXPECT_DOUBLE_EQ(toks[1].real_value, 3.5);
  EXPECT_EQ(toks[2].kind, TokenKind::RealLiteral);
  EXPECT_DOUBLE_EQ(toks[2].real_value, 1000.0);
  EXPECT_DOUBLE_EQ(toks[3].real_value, 0.025);
  EXPECT_EQ(toks[4].int_value, 7);
}

TEST(Lexer, DotDotDoesNotEatIntoReal) {
  // "0..5" must lex as 0 .. 5, not 0. then .5.
  auto toks = lex("0..M+1");
  EXPECT_EQ(toks[0].kind, TokenKind::IntLiteral);
  EXPECT_EQ(toks[1].kind, TokenKind::DotDot);
  EXPECT_EQ(toks[2].kind, TokenKind::Identifier);
  EXPECT_EQ(toks[3].kind, TokenKind::Plus);
  EXPECT_EQ(toks[4].kind, TokenKind::IntLiteral);
}

TEST(Lexer, OperatorsAndPunctuation) {
  auto toks = lex("( ) [ ] , ; : . = <> < <= > >= + - * /");
  std::vector<TokenKind> expected = {
      TokenKind::LParen,   TokenKind::RParen,    TokenKind::LBracket,
      TokenKind::RBracket, TokenKind::Comma,     TokenKind::Semicolon,
      TokenKind::Colon,    TokenKind::Dot,       TokenKind::Equal,
      TokenKind::NotEqual, TokenKind::Less,      TokenKind::LessEqual,
      TokenKind::Greater,  TokenKind::GreaterEqual, TokenKind::Plus,
      TokenKind::Minus,    TokenKind::Star,      TokenKind::Slash,
  };
  ASSERT_GE(toks.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(toks[i].kind, expected[i]) << "token " << i;
}

TEST(Lexer, CommentsAreSkippedAndNest) {
  auto toks = lex("a (* comment (* nested *) still *) b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, PragmaCommentFromFigure1) {
  auto toks = lex("(*$m+v+x+t-*) Relaxation");
  EXPECT_EQ(toks[0].text, "Relaxation");
}

TEST(Lexer, UnterminatedCommentDiagnosed) {
  DiagnosticEngine diags;
  lex("a (* never closed", &diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, UnexpectedCharacterDiagnosed) {
  DiagnosticEngine diags;
  auto toks = lex("a # b", &diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(toks[1].kind, TokenKind::Error);
}

TEST(Lexer, TracksLineAndColumn) {
  auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.column, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.column, 3u);
}

TEST(Lexer, EofIsSticky) {
  DiagnosticEngine diags;
  Lexer lexer("x", diags);
  EXPECT_EQ(lexer.next().kind, TokenKind::Identifier);
  EXPECT_EQ(lexer.next().kind, TokenKind::EndOfFile);
  EXPECT_EQ(lexer.next().kind, TokenKind::EndOfFile);
}

}  // namespace
}  // namespace ps
