// Robustness: the front end must never crash, hang or silently accept
// malformed input -- random token soup, truncations of valid programs,
// and adversarial deletions all have to come back with diagnostics (or,
// if parse/check succeeds, the result must survive the whole pipeline).

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "driver/compiler.hpp"
#include "driver/paper_modules.hpp"

namespace ps {
namespace {

class FuzzTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FuzzTest, RandomTokenSoupNeverCrashes) {
  static const char* const kFragments[] = {
      "module", "define", "end",  "type", "var",  "array", "of",  "if",
      "then",   "else",   "A",    "I",    "J",    "K",     "M",   "maxK",
      "(",      ")",      "[",    "]",    ",",    ";",     ":",   "=",
      "..",     "+",      "-",    "*",    "/",    "0",     "1",   "42",
      "3.5",    "<",      ">",    "<>",   "<=",   ">=",    "and", "or",
      "not",    "real",   "int",  "bool", "(*",   "*)",    ".",   "'",
  };
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<size_t> pick(0, std::size(kFragments) - 1);
  std::uniform_int_distribution<size_t> len(1, 120);
  std::string soup;
  size_t count = len(rng);
  for (size_t i = 0; i < count; ++i) {
    soup += kFragments[pick(rng)];
    soup += ' ';
  }
  Compiler compiler;
  CompileResult result = compiler.compile(soup);
  if (!result.ok) {
    EXPECT_FALSE(result.diagnostics.empty()) << soup;
  }
}

TEST_P(FuzzTest, TruncationsOfFigure1AreRejectedCleanly) {
  std::string full = kRelaxationSource;
  std::mt19937 rng(GetParam() * 31 + 5);
  std::uniform_int_distribution<size_t> cut(1, full.size() - 1);
  std::string truncated = full.substr(0, cut(rng));
  Compiler compiler;
  CompileResult result = compiler.compile(truncated);
  // A strict prefix of the module can never be a complete module.
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.diagnostics.empty());
}

TEST_P(FuzzTest, SingleCharacterDeletionNeverCrashes) {
  std::string full = kRelaxationSource;
  std::mt19937 rng(GetParam() * 17 + 3);
  std::uniform_int_distribution<size_t> at(0, full.size() - 1);
  std::string mutated = full;
  mutated.erase(at(rng), 1);
  Compiler compiler;
  CompileResult result = compiler.compile(mutated);
  if (!result.ok) {
    EXPECT_FALSE(result.diagnostics.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0u, 40u));

}  // namespace
}  // namespace ps
