// BatchDriver: parallel batch compilation must be deterministic --
// byte-identical per-unit output at any job count, identical to the
// sequential single-module facade -- with failed units isolated from
// their neighbours and the shared caches actually shared.

#include "driver/batch_driver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "driver/paper_modules.hpp"
#include "runtime/thread_pool.hpp"
#include "support/interner.hpp"

namespace ps {
namespace {

/// A small pointwise module whose literals are parameterised, so every
/// synthetic unit is a distinct compilation with distinct emitted C.
std::string synthetic_module(size_t index) {
  std::string k = std::to_string(index % 7 + 1);
  std::string name = "Synth" + std::to_string(index);
  return name +
         ": module (x: array[I] of real; n: int): [y: array[I] of real];\n"
         "type I = 0 .. n;\n"
         "var t: array [I] of real;\n"
         "define\n"
         "  t[I] = x[I] * " + k + ".0 + " + std::to_string(index % 11) +
         ".0;\n"
         "  y[I] = t[I] - x[I];\n"
         "end " + name + ";\n";
}

std::vector<BatchInput> synthetic_batch(size_t count) {
  std::vector<BatchInput> inputs;
  inputs.reserve(count);
  for (size_t i = 0; i < count; ++i)
    inputs.push_back({"synth" + std::to_string(i) + ".ps",
                      synthetic_module(i), false});
  return inputs;
}

std::vector<BatchUnitResult> compile_batch(const std::vector<BatchInput>& in,
                                           size_t jobs,
                                           CompileOptions copts = {}) {
  BatchOptions bopts;
  bopts.jobs = jobs;
  BatchDriver driver(copts, bopts);
  return driver.compile_all(in);
}

TEST(BatchDriver, CompilesTheCorpusInOneInvocation) {
  std::vector<BatchInput> inputs;
  for (const PaperModule& module : paper_corpus())
    inputs.push_back({module.name, module.source, false});
  BatchDriver driver;
  auto results = driver.compile_all(inputs);
  ASSERT_EQ(results.size(), paper_corpus().size());
  for (const BatchUnitResult& unit : results) {
    EXPECT_TRUE(unit.result.ok) << unit.name << ": "
                                << unit.result.diagnostics;
    EXPECT_TRUE(unit.result.primary.has_value());
    EXPECT_FALSE(unit.result.primary->c_code.empty());
  }
  EXPECT_EQ(driver.summary().total, inputs.size());
  EXPECT_EQ(driver.summary().succeeded, inputs.size());
  EXPECT_EQ(driver.summary().failed, 0u);
}

TEST(BatchDriver, ResultsComeBackInInputOrder) {
  auto inputs = synthetic_batch(32);
  auto results = compile_batch(inputs, 8);
  ASSERT_EQ(results.size(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(results[i].name, inputs[i].name);
    ASSERT_TRUE(results[i].result.primary.has_value());
    EXPECT_EQ(results[i].result.primary->module->name,
              "Synth" + std::to_string(i));
  }
}

/// The determinism contract: 100+ units, identical emitted C and
/// diagnostics at -j 1, 2 and 8, and identical to the sequential
/// single-module facade.
TEST(BatchDriver, StressDeterministicAcrossJobCounts) {
  auto inputs = synthetic_batch(120);
  auto sequential = compile_batch(inputs, 1);
  ASSERT_EQ(sequential.size(), inputs.size());

  for (size_t jobs : {2u, 8u}) {
    auto parallel = compile_batch(inputs, jobs);
    ASSERT_EQ(parallel.size(), sequential.size()) << "-j " << jobs;
    for (size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(parallel[i].result.ok, sequential[i].result.ok);
      EXPECT_EQ(parallel[i].result.diagnostics,
                sequential[i].result.diagnostics)
          << "-j " << jobs << " unit " << i;
      ASSERT_TRUE(parallel[i].result.primary.has_value());
      EXPECT_EQ(parallel[i].result.primary->c_code,
                sequential[i].result.primary->c_code)
          << "-j " << jobs << " unit " << i;
    }
  }
}

TEST(BatchDriver, BatchUnitsMatchSingleModuleFacadeByteForByte) {
  auto inputs = synthetic_batch(16);
  auto batch = compile_batch(inputs, 8);
  Compiler compiler;
  for (size_t i = 0; i < inputs.size(); ++i) {
    CompileResult single =
        compiler.compile(inputs[i].source, inputs[i].name);
    ASSERT_TRUE(single.primary.has_value());
    ASSERT_TRUE(batch[i].result.primary.has_value());
    EXPECT_EQ(batch[i].result.primary->c_code, single.primary->c_code);
    EXPECT_EQ(batch[i].result.primary->source, single.primary->source);
    EXPECT_EQ(batch[i].result.diagnostics, single.diagnostics);
  }
}

/// A unit with a sema error fails alone: its neighbours' results are
/// byte-identical to a batch without it.
TEST(BatchDriver, ErroredUnitDoesNotPoisonNeighbours) {
  auto inputs = synthetic_batch(20);
  auto clean = compile_batch(inputs, 4);

  auto poisoned = inputs;
  BatchInput bad;
  bad.name = "bad.ps";
  bad.source = "Bad: module (x: array[I] of real; n: int): [y: int];\n"
               "type I = 0 .. n;\n"
               "define\n  y = nosuchname + 1;\nend Bad;\n";
  poisoned.insert(poisoned.begin() + 10, bad);
  auto results = compile_batch(poisoned, 4);

  ASSERT_EQ(results.size(), inputs.size() + 1);
  EXPECT_FALSE(results[10].result.ok);
  EXPECT_NE(results[10].result.diagnostics.find("error"), std::string::npos)
      << results[10].result.diagnostics;
  // The failed unit's diagnostics carry its file name.
  EXPECT_NE(results[10].result.diagnostics.find("bad.ps"), std::string::npos)
      << results[10].result.diagnostics;
  for (size_t i = 0; i < inputs.size(); ++i) {
    size_t shifted = i < 10 ? i : i + 1;
    EXPECT_TRUE(results[shifted].result.ok);
    EXPECT_EQ(results[shifted].result.primary->c_code,
              clean[i].result.primary->c_code)
        << i;
  }
}

TEST(BatchDriver, SummaryCountsFailures) {
  auto inputs = synthetic_batch(6);
  inputs[2].source = "this is not a module";
  inputs[5].source = "neither is this";
  BatchOptions bopts;
  bopts.jobs = 4;
  BatchDriver driver({}, bopts);
  auto results = driver.compile_all(inputs);
  EXPECT_EQ(driver.summary().total, 6u);
  EXPECT_EQ(driver.summary().succeeded, 4u);
  EXPECT_EQ(driver.summary().failed, 2u);
  EXPECT_FALSE(results[2].result.ok);
  EXPECT_FALSE(results[5].result.ok);
}

/// Diagnostics of several failing units merge in input order, not
/// completion order.
TEST(BatchDriver, DiagnosticsMergeDeterministically) {
  std::vector<BatchInput> inputs;
  for (size_t i = 0; i < 12; ++i) {
    if (i % 3 == 0) {
      inputs.push_back({"bad" + std::to_string(i) + ".ps",
                        "garbage " + std::to_string(i), false});
    } else {
      inputs.push_back({"ok" + std::to_string(i) + ".ps",
                        synthetic_module(i), false});
    }
  }
  auto j1 = compile_batch(inputs, 1);
  auto j8 = compile_batch(inputs, 8);
  std::string merged1 = BatchDriver::merged_diagnostics(j1);
  std::string merged8 = BatchDriver::merged_diagnostics(j8);
  EXPECT_EQ(merged1, merged8);
  // Input order: bad0 before bad3 before bad6.
  size_t p0 = merged1.find("bad0.ps");
  size_t p3 = merged1.find("bad3.ps");
  size_t p6 = merged1.find("bad6.ps");
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p3, std::string::npos);
  ASSERT_NE(p6, std::string::npos);
  EXPECT_LT(p0, p3);
  EXPECT_LT(p3, p6);
}

/// N instances of the same recurrence share one hyperplane solution:
/// the shared cache gets exactly one miss for the dependence set and a
/// hit for every other unit -- with byte-identical output to solving
/// each time.
TEST(BatchDriver, HyperplaneSolutionsAreSharedAcrossUnits) {
  std::vector<BatchInput> inputs;
  for (size_t i = 0; i < 8; ++i)
    inputs.push_back({"gs" + std::to_string(i) + ".ps", kGaussSeidelSource,
                      false});
  CompileOptions copts;
  copts.apply_hyperplane = true;
  BatchOptions bopts;
  bopts.jobs = 4;
  BatchDriver driver(copts, bopts);
  auto results = driver.compile_all(inputs);

  EXPECT_GE(driver.hyperplane_cache().hits() +
                driver.hyperplane_cache().misses(),
            8u);
  EXPECT_GE(driver.hyperplane_cache().hits(), 1u);
  EXPECT_LE(driver.hyperplane_cache().size(),
            driver.hyperplane_cache().misses());

  // Cache hits must not change the result: compare against the facade.
  Compiler compiler(copts);
  CompileResult single = compiler.compile(kGaussSeidelSource, "gs0.ps");
  for (const BatchUnitResult& unit : results) {
    ASSERT_TRUE(unit.result.transformed.has_value());
    EXPECT_EQ(unit.result.transformed->c_code, single.transformed->c_code);
    EXPECT_EQ(unit.result.transform->describe(),
              single.transform->describe());
  }
  EXPECT_EQ(driver.summary().hyperplane_hits,
            driver.hyperplane_cache().hits());
}

TEST(BatchDriver, EqnUnitsTranslateInsideTheBatch) {
  constexpr const char* kEqn = R"EQ(
module Relaxation;
param InitialA : real[0..M+1, 0..M+1];
param M : int;
param maxK : int;
result newA = A^{maxK};
A^{1}_{i,j} = InitialA_{i,j}
  for i in 0..M+1, j in 0..M+1;
A^{k}_{i,j} = \frac{A^{k-1}_{i,j-1} + A^{k-1}_{i+1,j}}{2}
  otherwise
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;
)EQ";
  std::vector<BatchInput> inputs;
  inputs.push_back({"relax.eqn", kEqn, true});
  inputs.push_back({"jacobi.ps", kRelaxationSource, false});
  auto results = compile_batch(inputs, 2);
  ASSERT_TRUE(results[0].result.ok) << results[0].result.diagnostics;
  ASSERT_TRUE(results[0].result.primary.has_value());
  EXPECT_EQ(results[0].result.primary->module->name, "Relaxation");
  EXPECT_TRUE(results[1].result.ok);
}

TEST(BatchDriver, EqnTranslationFailureIsIsolated) {
  std::vector<BatchInput> inputs;
  inputs.push_back({"broken.eqn", "\\frac{oops", true});
  inputs.push_back({"jacobi.ps", kRelaxationSource, false});
  auto results = compile_batch(inputs, 2);
  EXPECT_FALSE(results[0].result.ok);
  EXPECT_NE(results[0].result.diagnostics.find("error"), std::string::npos);
  EXPECT_TRUE(results[1].result.ok);
}

TEST(BatchDriver, AggregateTimingsSumEveryUnit) {
  auto inputs = synthetic_batch(10);
  BatchOptions bopts;
  bopts.jobs = 2;
  BatchDriver driver({}, bopts);
  auto results = driver.compile_all(inputs);
  (void)results;
  const BatchSummary& summary = driver.summary();
  ASSERT_FALSE(summary.aggregate_timings.empty());
  EXPECT_EQ(summary.aggregate_timings.front().name, "Parse");
  EXPECT_EQ(summary.aggregate_timings.back().name, "Emit");
  EXPECT_TRUE(summary.aggregate_timings.front().ran);
  EXPECT_GT(summary.cpu_ms, 0.0);
  EXPECT_GT(summary.wall_ms, 0.0);
}

TEST(BatchDriver, InternsSymbolsAcrossTheBatch) {
  // 30 copies of the same module: the shared symbol table must not grow
  // with the unit count.
  std::vector<BatchInput> inputs;
  for (size_t i = 0; i < 30; ++i)
    inputs.push_back({"copy" + std::to_string(i) + ".ps",
                      kRelaxationSource, false});
  BatchOptions bopts;
  bopts.jobs = 4;
  BatchDriver driver({}, bopts);
  driver.compile_all(inputs);
  // Relaxation + InitialA + M + maxK + newA + A = 6 distinct spellings.
  EXPECT_EQ(driver.summary().distinct_symbols, 6u);
  EXPECT_EQ(driver.symbols().size(), 6u);
}

TEST(BatchDriver, ReportTableListsEveryUnit) {
  auto inputs = synthetic_batch(3);
  inputs.push_back({"bad.ps", "nope", false});
  BatchOptions bopts;
  bopts.jobs = 2;
  BatchDriver driver({}, bopts);
  auto results = driver.compile_all(inputs);
  std::string report = BatchDriver::format_report(results, driver.summary());
  for (const BatchInput& input : inputs)
    EXPECT_NE(report.find(input.name), std::string::npos) << report;
  EXPECT_NE(report.find("failed"), std::string::npos);
  EXPECT_NE(report.find("3/4 units succeeded"), std::string::npos) << report;
  EXPECT_NE(report.find("aggregate pass times"), std::string::npos);
}

TEST(BatchDriver, JsonReportIsWellFormed) {
  auto inputs = synthetic_batch(2);
  BatchOptions bopts;
  bopts.jobs = 2;
  BatchDriver driver({}, bopts);
  auto results = driver.compile_all(inputs);
  std::string json = BatchDriver::report_json(results, driver.summary());
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
  EXPECT_NE(json.find("\"total\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"units\""), std::string::npos);
  EXPECT_NE(json.find("\"synth0.ps\""), std::string::npos);
  EXPECT_NE(json.find("\"passes\""), std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(BatchDriver, JobsZeroMeansHardwareConcurrency) {
  auto inputs = synthetic_batch(4);
  BatchOptions bopts;
  bopts.jobs = 0;
  BatchDriver driver({}, bopts);
  driver.compile_all(inputs);
  EXPECT_GE(driver.summary().jobs, 1u);
}

TEST(BatchDriver, EmptyBatchIsANoOp) {
  BatchDriver driver;
  auto results = driver.compile_all({});
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(driver.summary().total, 0u);
  EXPECT_EQ(driver.summary().succeeded, 0u);
}

// ---------------------------------------------------------------------------
// The shared string interner under concurrent interning.
// ---------------------------------------------------------------------------

TEST(StringInterner, ReturnsStableCanonicalViews) {
  StringInterner interner;
  std::string_view a = interner.intern("Relaxation");
  std::string_view b = interner.intern(std::string("Relax") + "ation");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.data(), b.data());  // same canonical storage
  EXPECT_EQ(interner.size(), 1u);
  EXPECT_NE(interner.intern("newA").data(), a.data());
  EXPECT_EQ(interner.size(), 2u);
}

TEST(StringInterner, ConcurrentInterningIsRaceFree) {
  StringInterner interner;
  ThreadPool pool(8);
  pool.parallel_for(0, 4000, [&](int64_t i) {
    std::string name = "sym" + std::to_string(i % 97);
    std::string_view view = interner.intern(name);
    ASSERT_EQ(view, name);
  });
  EXPECT_EQ(interner.size(), 97u);
}

}  // namespace
}  // namespace ps
