// Unit tests for the pass-pipeline compiler core: stage ordering,
// option gating, diagnostic early-exit and per-stage timing.

#include "driver/pass_manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "../common/test_util.hpp"
#include "driver/compiler.hpp"
#include "driver/paper_modules.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

std::vector<std::string> names_of(const PassManager& pm) {
  std::vector<std::string> names;
  for (std::string_view n : pm.pass_names()) names.emplace_back(n);
  return names;
}

TEST(PassManager, DefaultPipelineHasThePaperPhaseStructure) {
  PassManager pm = PassManager::default_pipeline();
  EXPECT_EQ(names_of(pm),
            (std::vector<std::string>{"Parse", "Sema", "DepGraph", "Schedule",
                                      "LoopMerge", "Hyperplane", "ExactBounds",
                                      "Emit"}));
  EXPECT_TRUE(pm.check_order().empty());
}

TEST(PassManager, ModulePipelineIsTheSemaToEmitTail) {
  PassManager pm = PassManager::module_pipeline();
  EXPECT_EQ(names_of(pm),
            (std::vector<std::string>{"Sema", "DepGraph", "Schedule",
                                      "LoopMerge", "Emit"}));
  EXPECT_TRUE(pm.check_order().empty());
}

/// A do-nothing pass with configurable name and prerequisites, for
/// exercising the ordering verifier.
class StubPass : public Pass {
 public:
  StubPass(std::string_view name, std::vector<std::string_view> needs)
      : name_(name), needs_(std::move(needs)) {}
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::vector<std::string_view> requires_passes()
      const override {
    return needs_;
  }
  void run(CompilationUnit&) override {}

 private:
  std::string_view name_;
  std::vector<std::string_view> needs_;
};

TEST(PassManager, CheckOrderFlagsAPassBeforeItsPrerequisite) {
  PassManager pm;
  pm.add(std::make_unique<StubPass>("Late", std::vector<std::string_view>{
                                                "Early"}))
      .add(std::make_unique<StubPass>("Early",
                                      std::vector<std::string_view>{}));
  auto violations = pm.check_order();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("Late requires Early"), std::string::npos)
      << violations[0];
}

TEST(PassManager, CheckOrderFlagsAMissingPrerequisite) {
  PassManager pm;
  pm.add(std::make_unique<StubPass>(
      "Orphan", std::vector<std::string_view>{"Nonexistent"}));
  EXPECT_EQ(pm.check_order().size(), 1u);
}

TEST(PassManager, PlanReflectsTheOptions) {
  CompileOptions options;
  options.merge_loops = true;
  options.emit_c_code = false;
  CompilationUnit unit(options, {});
  PassManager pm = PassManager::default_pipeline();
  std::map<std::string, bool> enabled;
  for (const PassPlanEntry& entry : pm.plan(unit))
    enabled[std::string(entry.name)] = entry.enabled;
  EXPECT_TRUE(enabled.at("Parse"));
  EXPECT_TRUE(enabled.at("LoopMerge"));
  EXPECT_FALSE(enabled.at("Hyperplane"));
  EXPECT_FALSE(enabled.at("ExactBounds"));
  EXPECT_FALSE(enabled.at("Emit"));
}

TEST(PassManager, TimingsPopulatedForEveryStage) {
  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  CompileResult result = compile_or_die(kGaussSeidelSource, options);

  ASSERT_EQ(result.pass_timings.size(), 8u);
  for (const PassTiming& timing : result.pass_timings) {
    if (timing.name == "LoopMerge") {
      EXPECT_FALSE(timing.ran);  // merge_loops off
      continue;
    }
    EXPECT_TRUE(timing.ran) << timing.name;
    EXPECT_GE(timing.milliseconds, 0.0) << timing.name;
  }
  // The render helper mentions every stage.
  std::string table = format_pass_timings(result.pass_timings);
  for (const PassTiming& timing : result.pass_timings)
    EXPECT_NE(table.find(timing.name), std::string::npos) << table;
}

TEST(PassManager, EarlyExitStopsAfterTheDiagnosingStage) {
  // A name that never resolves: Sema diagnoses, DepGraph..Emit must not
  // run (and must still be listed as skipped).
  Compiler compiler;
  CompileResult result = compiler.compile(R"(
Bad: module (M: int): [out: array [I] of real];
type I = 0 .. M;
define out[I] = nosuchname;
end Bad;
)");
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.diagnostics.empty());
  ASSERT_EQ(result.pass_timings.size(), 8u);
  std::map<std::string, bool> ran;
  for (const PassTiming& timing : result.pass_timings)
    ran[timing.name] = timing.ran;
  EXPECT_TRUE(ran.at("Parse"));
  EXPECT_TRUE(ran.at("Sema"));
  EXPECT_FALSE(ran.at("DepGraph"));
  EXPECT_FALSE(ran.at("Schedule"));
  EXPECT_FALSE(ran.at("Emit"));
}

TEST(PassManager, ParseErrorsStopBeforeSema) {
  Compiler compiler;
  CompileResult result = compiler.compile("this is not a module");
  EXPECT_FALSE(result.ok);
  std::map<std::string, bool> ran;
  for (const PassTiming& timing : result.pass_timings)
    ran[timing.name] = timing.ran;
  EXPECT_TRUE(ran.at("Parse"));
  EXPECT_FALSE(ran.at("Sema"));
}

TEST(PassManager, CompilerIsAThinWrapperOverThePipeline) {
  // The facade and a hand-assembled default pipeline agree artefact for
  // artefact on the paper's relaxation module.
  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;

  CompileResult via_facade = compile_or_die(kGaussSeidelSource, options);

  CompilationUnit unit(options, kGaussSeidelSource);
  PassManager pm = PassManager::default_pipeline();
  EXPECT_TRUE(pm.run(unit));
  ASSERT_NE(unit.module, nullptr);
  EXPECT_EQ(unit.c_code, via_facade.primary->c_code);
  ASSERT_TRUE(unit.transformed.has_value());
  ASSERT_TRUE(via_facade.transformed.has_value());
  EXPECT_EQ(unit.transformed->c_code, via_facade.transformed->c_code);
  ASSERT_TRUE(unit.exact_nest.has_value());
  EXPECT_EQ(unit.exact_nest->to_string(),
            via_facade.exact_nest->to_string());
}

}  // namespace
}  // namespace ps
