#include "runtime/wavefront.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/interpreter.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

CompileResult compile_exact_gs() {
  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  return compile_or_die(kGaussSeidelSource, options);
}

void fill_input(NdArray& in, int64_t m) {
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j)
      in.set(std::vector<int64_t>{i, j},
             std::cos(static_cast<double>(i * 5 + j)));
}

/// newA from the untransformed Gauss-Seidel module, the semantic
/// reference for everything below.
NdArray reference_newA(const CompileResult& result, int64_t m,
                       int64_t sweeps) {
  const CompiledModule& stage = *result.primary;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"M", m}, {"maxK", sweeps}});
  fill_input(interp.array("InitialA"), m);
  interp.run();
  return interp.array("newA");
}

// ---------------------------------------------------------------------------
// Compiler plumbing
// ---------------------------------------------------------------------------

TEST(ExactBounds, CompilerProducesTheNest) {
  auto result = compile_exact_gs();
  ASSERT_TRUE(result.exact_nest.has_value());
  ASSERT_EQ(result.exact_nest->levels.size(), 3u);
  EXPECT_EQ(result.exact_nest->levels[0].var, "K'");
  EXPECT_EQ(result.exact_nest->levels[1].var, "I'");
  EXPECT_EQ(result.exact_nest->levels[2].var, "J'");
}

TEST(ExactBounds, TransformedCUsesNonRectangularBounds) {
  auto result = compile_exact_gs();
  ASSERT_TRUE(result.transformed.has_value());
  const std::string& code = result.transformed->c_code;
  EXPECT_NE(code.find("psc_ceil_div"), std::string::npos) << code;
  EXPECT_NE(code.find("psc_floor_div"), std::string::npos);
  EXPECT_NE(code.find("_lo ="), std::string::npos);
  EXPECT_NE(code.find("_hi ="), std::string::npos);
  // The primary (untransformed) module keeps plain subrange loops.
  EXPECT_EQ(result.primary->c_code.find("psc_ceil_div"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Exact-bounds interpreter vs guarded bounding-box interpreter
// ---------------------------------------------------------------------------

TEST(ExactBounds, InterpreterMatchesGuardedExecution) {
  auto result = compile_exact_gs();
  const CompiledModule& t = *result.transformed;
  const int64_t m = 9;
  const int64_t sweeps = 7;
  IntEnv params{{"M", m}, {"maxK", sweeps}};

  Interpreter guarded(*t.module, *t.graph, t.schedule.flowchart, params);
  InterpreterOptions exact_opts;
  exact_opts.exact_bounds = &*result.exact_nest;
  Interpreter exact(*t.module, *t.graph, t.schedule.flowchart, params, {},
                    exact_opts);

  fill_input(guarded.array("InitialA"), m);
  fill_input(exact.array("InitialA"), m);
  guarded.run();
  exact.run();

  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j) {
      std::vector<int64_t> idx{i, j};
      EXPECT_EQ(exact.array("newA").at(idx), guarded.array("newA").at(idx))
          << i << "," << j;
    }
}

TEST(ExactBounds, ParallelExactInterpreterMatchesSequential) {
  auto result = compile_exact_gs();
  const CompiledModule& t = *result.transformed;
  const int64_t m = 12;
  IntEnv params{{"M", m}, {"maxK", 6}};

  ThreadPool pool(6);
  InterpreterOptions par;
  par.exact_bounds = &*result.exact_nest;
  par.pool = &pool;
  InterpreterOptions seq;
  seq.exact_bounds = &*result.exact_nest;

  Interpreter parallel(*t.module, *t.graph, t.schedule.flowchart, params, {},
                       par);
  Interpreter sequential(*t.module, *t.graph, t.schedule.flowchart, params,
                         {}, seq);
  fill_input(parallel.array("InitialA"), m);
  fill_input(sequential.array("InitialA"), m);
  parallel.run();
  sequential.run();
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j) {
      std::vector<int64_t> idx{i, j};
      EXPECT_EQ(parallel.array("newA").at(idx),
                sequential.array("newA").at(idx));
    }
}

TEST(ExactBounds, MatchesTheUntransformedModule) {
  auto result = compile_exact_gs();
  const CompiledModule& t = *result.transformed;
  const int64_t m = 8;
  const int64_t sweeps = 5;
  NdArray expected = reference_newA(result, m, sweeps);

  InterpreterOptions opts;
  opts.exact_bounds = &*result.exact_nest;
  Interpreter exact(*t.module, *t.graph, t.schedule.flowchart,
                    IntEnv{{"M", m}, {"maxK", sweeps}}, {}, opts);
  fill_input(exact.array("InitialA"), m);
  exact.run();
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j) {
      std::vector<int64_t> idx{i, j};
      EXPECT_NEAR(exact.array("newA").at(idx), expected.at(idx), 1e-12);
    }
}

// ---------------------------------------------------------------------------
// The windowed wavefront runner (rotate/unrotate)
// ---------------------------------------------------------------------------

TEST(Wavefront, MatchesTheUntransformedModule) {
  auto result = compile_exact_gs();
  const int64_t m = 10;
  const int64_t sweeps = 6;
  NdArray expected = reference_newA(result, m, sweeps);

  WavefrontRunner runner(*result.transformed->module, *result.transform,
                         *result.exact_nest,
                         IntEnv{{"M", m}, {"maxK", sweeps}});
  fill_input(runner.array("InitialA"), m);
  runner.run();
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j) {
      std::vector<int64_t> idx{i, j};
      EXPECT_NEAR(runner.array("newA").at(idx), expected.at(idx), 1e-12)
          << i << "," << j;
    }
}

TEST(Wavefront, DerivesThePaperWindowOfThree) {
  auto result = compile_exact_gs();
  WavefrontRunner runner(*result.transformed->module, *result.transform,
                         *result.exact_nest, IntEnv{{"M", 6}, {"maxK", 4}});
  EXPECT_EQ(runner.window(), 3);  // references K'-1 and K'-2
}

TEST(Wavefront, WindowedAllocationIsThreeSlices) {
  auto result = compile_exact_gs();
  const int64_t m = 16;
  const int64_t sweeps = 32;
  WavefrontRunner runner(*result.transformed->module, *result.transform,
                         *result.exact_nest,
                         IntEnv{{"M", m}, {"maxK", sweeps}});
  // A' keeps 3 x maxK x (M+2) doubles -- the paper's "3 x maxK x M"
  // allocation (its M elides the padded boundary).
  const NdArray& aprime = runner.array("A'");
  EXPECT_EQ(aprime.allocation(),
            static_cast<size_t>(3 * sweeps * (m + 2)));
  // Versus the full transformed box (2maxK+2M+1) x maxK x (M+2).
  EXPECT_LT(aprime.allocation(), aprime.logical_size() / 10);
}

TEST(Wavefront, StatsCountImagePointsAndHyperplanes) {
  auto result = compile_exact_gs();
  const int64_t m = 6;
  const int64_t sweeps = 5;
  WavefrontRunner runner(*result.transformed->module, *result.transform,
                         *result.exact_nest,
                         IntEnv{{"M", m}, {"maxK", sweeps}});
  fill_input(runner.array("InitialA"), m);
  runner.run();
  // Exactly the image lattice: maxK * (M+2)^2 recurrence points over
  // hyperplanes t = 2 .. 2maxK + 2M + 2.
  EXPECT_EQ(runner.stats().points, sweeps * (m + 2) * (m + 2));
  EXPECT_EQ(runner.stats().hyperplanes, 2 * sweeps + 2 * m + 2 - 2 + 1);
  // One flush per newA element.
  EXPECT_EQ(runner.stats().flushed, (m + 2) * (m + 2));
}

TEST(Wavefront, ParallelPoolMatchesSequential) {
  auto result = compile_exact_gs();
  const int64_t m = 14;
  const int64_t sweeps = 9;
  IntEnv params{{"M", m}, {"maxK", sweeps}};

  ThreadPool pool(8);
  WavefrontOptions par;
  par.pool = &pool;
  WavefrontRunner parallel(*result.transformed->module, *result.transform,
                           *result.exact_nest, params, {}, par);
  WavefrontRunner sequential(*result.transformed->module, *result.transform,
                             *result.exact_nest, params);
  fill_input(parallel.array("InitialA"), m);
  fill_input(sequential.array("InitialA"), m);
  parallel.run();
  sequential.run();
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j) {
      std::vector<int64_t> idx{i, j};
      EXPECT_EQ(parallel.array("newA").at(idx),
                sequential.array("newA").at(idx));
    }
}

TEST(Wavefront, OversizedWindowStillCorrect) {
  auto result = compile_exact_gs();
  const int64_t m = 7;
  const int64_t sweeps = 4;
  NdArray expected = reference_newA(result, m, sweeps);

  WavefrontOptions options;
  options.window = 5;
  WavefrontRunner runner(*result.transformed->module, *result.transform,
                         *result.exact_nest,
                         IntEnv{{"M", m}, {"maxK", sweeps}}, {}, options);
  fill_input(runner.array("InitialA"), m);
  runner.run();
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j) {
      std::vector<int64_t> idx{i, j};
      EXPECT_NEAR(runner.array("newA").at(idx), expected.at(idx), 1e-12);
    }
}

TEST(Wavefront, RejectsWindowSmallerThanRecurrenceDepth) {
  auto result = compile_exact_gs();
  WavefrontOptions options;
  options.window = 2;  // recurrence reaches K'-2: needs 3
  EXPECT_THROW(WavefrontRunner(*result.transformed->module,
                               *result.transform, *result.exact_nest,
                               IntEnv{{"M", 4}, {"maxK", 3}}, {}, options),
               std::runtime_error);
}

TEST(Wavefront, RerunIsDeterministic) {
  auto result = compile_exact_gs();
  const int64_t m = 5;
  const int64_t sweeps = 3;
  WavefrontRunner runner(*result.transformed->module, *result.transform,
                         *result.exact_nest,
                         IntEnv{{"M", m}, {"maxK", sweeps}});
  fill_input(runner.array("InitialA"), m);
  runner.run();
  NdArray first = runner.array("newA");
  runner.run();
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j) {
      std::vector<int64_t> idx{i, j};
      EXPECT_EQ(runner.array("newA").at(idx), first.at(idx));
    }
}

/// Exhaustive parameter sweep: wavefront == reference for every small
/// (M, maxK) combination, sequential and pooled.
class WavefrontSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(WavefrontSweep, MatchesReference) {
  auto [m, sweeps] = GetParam();
  auto result = compile_exact_gs();
  NdArray expected = reference_newA(result, m, sweeps);

  ThreadPool pool(4);
  WavefrontOptions options;
  options.pool = &pool;
  WavefrontRunner runner(*result.transformed->module, *result.transform,
                         *result.exact_nest,
                         IntEnv{{"M", m}, {"maxK", sweeps}}, {}, options);
  fill_input(runner.array("InitialA"), m);
  runner.run();
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j) {
      std::vector<int64_t> idx{i, j};
      EXPECT_NEAR(runner.array("newA").at(idx), expected.at(idx), 1e-12)
          << "M=" << m << " maxK=" << sweeps << " at " << i << "," << j;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SmallGrids, WavefrontSweep,
    ::testing::Combine(::testing::Values<int64_t>(1, 2, 3, 5, 8),
                       ::testing::Values<int64_t>(1, 2, 3, 6)));

// ---------------------------------------------------------------------------
// Bytecode engine vs tree-walk reference
// ---------------------------------------------------------------------------

TEST(WavefrontEngine, BytecodeIsTheDefaultOnThePaperModule) {
  auto result = compile_exact_gs();
  WavefrontRunner runner(*result.transformed->module, *result.transform,
                         *result.exact_nest, IntEnv{{"M", 4}, {"maxK", 3}});
  // The Gauss-Seidel module sits squarely inside the bytecode fragment,
  // so the request must not have silently degraded to the tree walk.
  EXPECT_EQ(runner.engine(), EvalEngine::Bytecode);
}

TEST(WavefrontEngine, TreeWalkCanBeForced) {
  auto result = compile_exact_gs();
  WavefrontOptions options;
  options.engine = EvalEngine::TreeWalk;
  WavefrontRunner runner(*result.transformed->module, *result.transform,
                         *result.exact_nest, IntEnv{{"M", 4}, {"maxK", 3}},
                         {}, options);
  EXPECT_EQ(runner.engine(), EvalEngine::TreeWalk);
  // The forced fallback is observable, not silent.
  EXPECT_EQ(runner.fallback_reason(), "tree-walk: engine requested");
}

TEST(WavefrontEngine, BytecodePathReportsNoFallback) {
  auto result = compile_exact_gs();
  const int64_t m = 4;
  WavefrontRunner runner(*result.transformed->module, *result.transform,
                         *result.exact_nest, IntEnv{{"M", m}, {"maxK", 3}});
  EXPECT_EQ(runner.engine(), EvalEngine::Bytecode);
  EXPECT_TRUE(runner.fallback_reason().empty()) << runner.fallback_reason();
  fill_input(runner.array("InitialA"), m);
  runner.run();
  // stats() carries the (empty) reason so batch reports can surface it.
  EXPECT_TRUE(runner.stats().fallback_reason.empty());
}

TEST(WavefrontEngine, UnboundScalarFallbackRecordsItsReason) {
  // heat1d reads the real parameter r inside the live stencil arm; the
  // tree walk resolves names lazily, so when r is not bound the runner
  // must fall back -- and say why, instead of silently degrading.
  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  auto result = compile_or_die(kHeat1dSource, options);
  ASSERT_TRUE(result.transformed.has_value());
  WavefrontRunner runner(*result.transformed->module, *result.transform,
                         *result.exact_nest,
                         IntEnv{{"N", 6}, {"steps", 4}});  // r not bound
  EXPECT_EQ(runner.engine(), EvalEngine::TreeWalk);
  EXPECT_NE(runner.fallback_reason().find("'r' is unbound"),
            std::string::npos)
      << runner.fallback_reason();
  // And with r bound, the same module runs on bytecode.
  WavefrontRunner bound(*result.transformed->module, *result.transform,
                        *result.exact_nest, IntEnv{{"N", 6}, {"steps", 4}},
                        {{"r", 0.2}});
  EXPECT_EQ(bound.engine(), EvalEngine::Bytecode);
}

TEST(WavefrontEngine, EveryTransformablePaperModuleRunsOnBytecode) {
  // The acceptance bar for the unbounded-var VM: no paper-corpus module
  // may fall back to the tree walk for var-count (or any other) reason.
  for (const PaperModule& paper : paper_corpus()) {
    CompileOptions options;
    options.apply_hyperplane = true;
    options.exact_bounds = true;
    auto result = compile_or_die(paper.source, options);
    if (!result.transformed || !result.exact_nest) continue;
    std::map<std::string, double> reals;
    IntEnv ints;
    for (const DataItem& item : result.transformed->module->data) {
      if (!item.is_scalar() || item.cls != DataClass::Input) continue;
      if (item.elem->scalar_kind() == TypeKind::Real)
        reals[item.name] = 0.25;
      else
        ints[item.name] = 4;
    }
    WavefrontRunner runner(*result.transformed->module, *result.transform,
                           *result.exact_nest, ints, reals);
    EXPECT_EQ(runner.engine(), EvalEngine::Bytecode)
        << paper.name << " fell back: " << runner.fallback_reason();
  }
}

/// Bit-exact cross-check of the two evaluators on the paper's relaxation
/// module: same inputs, same outputs, same stats, sequential and pooled.
TEST(WavefrontEngine, BytecodeMatchesTreeWalkBitExactly) {
  auto result = compile_exact_gs();
  for (auto [m, sweeps] : {std::pair<int64_t, int64_t>{1, 1},
                           {3, 2},
                           {7, 5},
                           {11, 4}}) {
    IntEnv params{{"M", m}, {"maxK", sweeps}};
    WavefrontOptions tree;
    tree.engine = EvalEngine::TreeWalk;
    WavefrontRunner reference(*result.transformed->module, *result.transform,
                              *result.exact_nest, params, {}, tree);
    WavefrontRunner bytecode(*result.transformed->module, *result.transform,
                             *result.exact_nest, params);
    ASSERT_EQ(bytecode.engine(), EvalEngine::Bytecode);
    fill_input(reference.array("InitialA"), m);
    fill_input(bytecode.array("InitialA"), m);
    reference.run();
    bytecode.run();
    EXPECT_EQ(bytecode.stats().points, reference.stats().points);
    EXPECT_EQ(bytecode.stats().hyperplanes, reference.stats().hyperplanes);
    EXPECT_EQ(bytecode.stats().flushed, reference.stats().flushed);
    for (int64_t i = 0; i <= m + 1; ++i)
      for (int64_t j = 0; j <= m + 1; ++j) {
        std::vector<int64_t> idx{i, j};
        // Bit-exact, not EXPECT_NEAR: both engines must perform the
        // same double operations in the same order.
        EXPECT_EQ(bytecode.array("newA").at(idx),
                  reference.array("newA").at(idx))
            << "M=" << m << " maxK=" << sweeps << " at " << i << "," << j;
      }
  }
}

TEST(WavefrontEngine, PooledBytecodeMatchesTreeWalk) {
  auto result = compile_exact_gs();
  const int64_t m = 10;
  const int64_t sweeps = 6;
  IntEnv params{{"M", m}, {"maxK", sweeps}};

  ThreadPool pool(4);
  WavefrontOptions tree;
  tree.engine = EvalEngine::TreeWalk;
  WavefrontOptions pooled;
  pooled.pool = &pool;
  WavefrontRunner reference(*result.transformed->module, *result.transform,
                            *result.exact_nest, params, {}, tree);
  WavefrontRunner bytecode(*result.transformed->module, *result.transform,
                           *result.exact_nest, params, {}, pooled);
  fill_input(reference.array("InitialA"), m);
  fill_input(bytecode.array("InitialA"), m);
  reference.run();
  bytecode.run();
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j) {
      std::vector<int64_t> idx{i, j};
      EXPECT_EQ(bytecode.array("newA").at(idx),
                reference.array("newA").at(idx));
    }
}

}  // namespace
}  // namespace ps
