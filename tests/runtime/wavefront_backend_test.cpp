// The backend layer of the wavefront engine: sequential, pooled-chunked
// and sharded execution must be bit-exact against each other (DOALL
// points write disjoint cells, so scheduling cannot change results),
// and per-worker WorkerContexts must isolate concurrent runners -- the
// old thread_local frames silently coupled engines sharing a thread.

#include "runtime/wavefront_backend.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/wavefront.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

CompileResult compile_exact_gs() {
  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  return compile_or_die(kGaussSeidelSource, options);
}

void fill_input(NdArray& in, int64_t m) {
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j)
      in.set(std::vector<int64_t>{i, j},
             std::cos(static_cast<double>(i * 5 + j)));
}

/// Run the exact gauss-seidel wavefront under `options` and return newA.
NdArray run_newA(const CompileResult& result, int64_t m, int64_t sweeps,
                 WavefrontOptions options, WavefrontStats* stats = nullptr) {
  WavefrontRunner runner(*result.transformed->module, *result.transform,
                         *result.exact_nest,
                         IntEnv{{"M", m}, {"maxK", sweeps}}, {}, options);
  fill_input(runner.array("InitialA"), m);
  runner.run();
  if (stats != nullptr) *stats = runner.stats();
  return runner.array("newA");
}

void expect_bit_identical(const NdArray& a, const NdArray& b, int64_t m,
                          const std::string& label) {
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j) {
      std::vector<int64_t> idx{i, j};
      ASSERT_EQ(std::bit_cast<uint64_t>(a.at(idx)),
                std::bit_cast<uint64_t>(b.at(idx)))
          << label << " at " << i << "," << j;
    }
}

TEST(WavefrontBackendOptions, NamesRoundTripAndRejectUnknown) {
  for (WavefrontBackend backend :
       {WavefrontBackend::Auto, WavefrontBackend::Sequential,
        WavefrontBackend::PooledChunked, WavefrontBackend::Sharded,
        WavefrontBackend::WorkStealing}) {
    auto parsed = parse_wavefront_backend(wavefront_backend_name(backend));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, backend);
  }
  EXPECT_FALSE(parse_wavefront_backend("bogus").has_value());
  EXPECT_FALSE(parse_wavefront_backend("").has_value());
}

TEST(WavefrontBackend, AutoResolvesFromThePool) {
  auto result = compile_exact_gs();
  WavefrontRunner sequential(*result.transformed->module, *result.transform,
                             *result.exact_nest,
                             IntEnv{{"M", 4}, {"maxK", 3}});
  EXPECT_EQ(sequential.backend_description(), "sequential");

  ThreadPool pool(3);
  WavefrontOptions pooled;
  pooled.pool = &pool;
  WavefrontRunner chunked(*result.transformed->module, *result.transform,
                          *result.exact_nest, IntEnv{{"M", 4}, {"maxK", 3}},
                          {}, pooled);
  EXPECT_EQ(chunked.backend_description(), "pooled-chunked (3 workers)");

  WavefrontOptions sharded;
  sharded.pool = &pool;
  sharded.backend = WavefrontBackend::Sharded;
  sharded.shards = 2;
  WavefrontRunner shard_runner(*result.transformed->module,
                               *result.transform, *result.exact_nest,
                               IntEnv{{"M", 4}, {"maxK", 3}}, {}, sharded);
  EXPECT_EQ(shard_runner.backend_description(), "sharded (2 shards)");

  WavefrontOptions stealing;
  stealing.pool = &pool;
  stealing.backend = WavefrontBackend::WorkStealing;
  WavefrontRunner steal_runner(*result.transformed->module,
                               *result.transform, *result.exact_nest,
                               IntEnv{{"M", 4}, {"maxK", 3}}, {}, stealing);
  EXPECT_EQ(steal_runner.backend_description(), "work-stealing (3 workers)");
}

TEST(WavefrontBackend, ShardedIsBitExactAtOneTwoAndEightShards) {
  auto result = compile_exact_gs();
  const int64_t m = 11;
  const int64_t sweeps = 6;
  WavefrontStats reference_stats;
  NdArray reference =
      run_newA(result, m, sweeps, {}, &reference_stats);

  ThreadPool pool(4);
  for (size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    WavefrontOptions options;
    options.pool = &pool;
    options.backend = WavefrontBackend::Sharded;
    options.shards = shards;
    WavefrontStats stats;
    NdArray sharded = run_newA(result, m, sweeps, options, &stats);
    expect_bit_identical(reference, sharded, m,
                         "shards=" + std::to_string(shards));
    EXPECT_EQ(stats.points, reference_stats.points);
    EXPECT_EQ(stats.hyperplanes, reference_stats.hyperplanes);
    EXPECT_EQ(stats.flushed, reference_stats.flushed);
    EXPECT_EQ(stats.backend,
              "sharded (" + std::to_string(shards) + " shards)");
  }
}

TEST(WavefrontBackend, ShardedWithoutAPoolRunsInline) {
  auto result = compile_exact_gs();
  const int64_t m = 6;
  const int64_t sweeps = 4;
  NdArray reference = run_newA(result, m, sweeps, {});
  WavefrontOptions options;
  options.backend = WavefrontBackend::Sharded;  // no pool: one shard
  NdArray sharded = run_newA(result, m, sweeps, options);
  expect_bit_identical(reference, sharded, m, "poolless shard");
}

TEST(WavefrontBackend, PooledChunkedMatchesSequentialAndTreeWalk) {
  auto result = compile_exact_gs();
  const int64_t m = 10;
  const int64_t sweeps = 5;
  NdArray sequential = run_newA(result, m, sweeps, {});

  ThreadPool pool(4);
  WavefrontOptions pooled;
  pooled.pool = &pool;
  pooled.backend = WavefrontBackend::PooledChunked;
  NdArray chunked = run_newA(result, m, sweeps, pooled);
  expect_bit_identical(sequential, chunked, m, "pooled-chunked");

  WavefrontOptions tree;
  tree.pool = &pool;
  tree.backend = WavefrontBackend::Sharded;
  tree.engine = EvalEngine::TreeWalk;
  NdArray tree_sharded = run_newA(result, m, sweeps, tree);
  expect_bit_identical(sequential, tree_sharded, m, "tree-walk sharded");
}

TEST(WavefrontBackend, ShardCountersAccountEveryPoint) {
  auto result = compile_exact_gs();
  const int64_t m = 9;
  const int64_t sweeps = 5;
  ThreadPool pool(4);
  WavefrontOptions options;
  options.pool = &pool;
  options.backend = WavefrontBackend::Sharded;
  options.shards = 4;
  WavefrontRunner runner(*result.transformed->module, *result.transform,
                         *result.exact_nest,
                         IntEnv{{"M", m}, {"maxK", sweeps}}, {}, options);
  fill_input(runner.array("InitialA"), m);
  runner.run();
  std::vector<int64_t> per_shard = runner.context_points();
  ASSERT_EQ(per_shard.size(), 4u);
  EXPECT_EQ(std::accumulate(per_shard.begin(), per_shard.end(), int64_t{0}),
            runner.stats().points);
  // Static striping: every shard gets work on a non-trivial module.
  for (int64_t points : per_shard) EXPECT_GT(points, 0);
}

TEST(WavefrontBackend, WorkStealingIsBitExactAtOneTwoAndEightWorkers) {
  auto result = compile_exact_gs();
  const int64_t m = 11;
  const int64_t sweeps = 6;
  WavefrontStats reference_stats;
  NdArray reference = run_newA(result, m, sweeps, {}, &reference_stats);

  ThreadPool pool(4);
  for (size_t workers : {size_t{1}, size_t{2}, size_t{8}}) {
    WavefrontOptions options;
    options.pool = &pool;
    options.backend = WavefrontBackend::WorkStealing;
    options.shards = workers;
    WavefrontStats stats;
    NdArray stolen = run_newA(result, m, sweeps, options, &stats);
    expect_bit_identical(reference, stolen, m,
                         "stealing workers=" + std::to_string(workers));
    EXPECT_EQ(stats.points, reference_stats.points);
    EXPECT_EQ(stats.hyperplanes, reference_stats.hyperplanes);
    EXPECT_EQ(stats.flushed, reference_stats.flushed);
    EXPECT_EQ(stats.backend, "work-stealing (" + std::to_string(workers) +
                                 " workers)");
    EXPECT_GE(stats.steals, 0);
  }
}

TEST(WavefrontBackend, WorkStealingCountersAccountEveryPoint) {
  auto result = compile_exact_gs();
  const int64_t m = 9;
  const int64_t sweeps = 5;
  ThreadPool pool(4);
  WavefrontOptions options;
  options.pool = &pool;
  options.backend = WavefrontBackend::WorkStealing;
  options.shards = 4;
  WavefrontRunner runner(*result.transformed->module, *result.transform,
                         *result.exact_nest,
                         IntEnv{{"M", m}, {"maxK", sweeps}}, {}, options);
  fill_input(runner.array("InitialA"), m);
  runner.run();
  std::vector<int64_t> per_worker = runner.context_points();
  ASSERT_EQ(per_worker.size(), 4u);
  // Stealing migrates chunks between workers, but every point executes
  // exactly once -- the per-context counters must still account for all
  // of them.
  EXPECT_EQ(std::accumulate(per_worker.begin(), per_worker.end(), int64_t{0}),
            runner.stats().points);
}

TEST(WavefrontBackend, WorkStealingWithoutAPoolRunsInlineWithoutSteals) {
  auto result = compile_exact_gs();
  const int64_t m = 6;
  const int64_t sweeps = 4;
  NdArray reference = run_newA(result, m, sweeps, {});
  WavefrontOptions options;
  options.backend = WavefrontBackend::WorkStealing;  // no pool: one worker
  WavefrontStats stats;
  NdArray stolen = run_newA(result, m, sweeps, options, &stats);
  expect_bit_identical(reference, stolen, m, "poolless stealing");
  EXPECT_EQ(stats.steals, 0);
}

/// The overlapped consumer flush: with a pool and a window that leaves
/// headroom (gauss-seidel's consumer reads exactly one slice), the
/// flush of hyperplane t runs on the flush thread while t+1 executes --
/// observable through stats().overlapped_flushes -- and the outputs are
/// byte-identical to the strictly sequential interleaving.
TEST(WavefrontBackend, OverlappedFlushIsBitExactAndObservable) {
  auto result = compile_exact_gs();
  const int64_t m = 10;
  const int64_t sweeps = 5;

  WavefrontOptions plain;
  plain.overlap_flush = false;
  WavefrontStats plain_stats;
  NdArray reference = run_newA(result, m, sweeps, plain, &plain_stats);
  EXPECT_EQ(plain_stats.overlapped_flushes, 0);

  ThreadPool pool(3);
  for (WavefrontBackend backend :
       {WavefrontBackend::PooledChunked, WavefrontBackend::Sharded,
        WavefrontBackend::WorkStealing}) {
    WavefrontOptions options;
    options.pool = &pool;
    options.backend = backend;
    WavefrontStats stats;
    NdArray overlapped = run_newA(result, m, sweeps, options, &stats);
    expect_bit_identical(reference, overlapped, m,
                         std::string("overlap ") +
                             wavefront_backend_name(backend));
    EXPECT_EQ(stats.flushed, plain_stats.flushed);
    EXPECT_EQ(stats.peak_bucket_instances, plain_stats.peak_bucket_instances);
    // Every main-loop flush overlapped (the pre-loop flushes, if any,
    // stay on the main thread and are not counted).
    EXPECT_GT(stats.overlapped_flushes, 0);
    EXPECT_LE(stats.overlapped_flushes, stats.hyperplanes);
  }

  // Opting out must fully disable the flush thread even with a pool.
  WavefrontOptions opt_out;
  opt_out.pool = &pool;
  opt_out.overlap_flush = false;
  WavefrontStats opt_out_stats;
  NdArray sequential_flush = run_newA(result, m, sweeps, opt_out,
                                      &opt_out_stats);
  expect_bit_identical(reference, sequential_flush, m, "overlap opt-out");
  EXPECT_EQ(opt_out_stats.overlapped_flushes, 0);
}

/// Two runners executing concurrently on separate threads, each with
/// its own pool and sharded contexts, must produce exactly what each
/// produces alone. Under the old thread_local VarFrame/scratch in
/// wavefront.cpp and eval_core this interleaving aliased mutable
/// buffers between unrelated runner instances (e.g. two daemon clients
/// driving wavefront executions in one process).
TEST(WavefrontBackend, TwoConcurrentRunnersDoNotAliasState) {
  auto gs = compile_exact_gs();
  CompileOptions heat_options;
  heat_options.apply_hyperplane = true;
  heat_options.exact_bounds = true;
  auto heat = compile_or_die(kHeat1dSource, heat_options);
  ASSERT_TRUE(heat.transformed.has_value());

  const int64_t m = 13;
  const int64_t sweeps = 7;
  NdArray gs_solo = run_newA(gs, m, sweeps, {});

  auto run_heat = [&](ThreadPool* pool) {
    WavefrontOptions options;
    options.pool = pool;
    options.backend = WavefrontBackend::Sharded;
    WavefrontRunner runner(*heat.transformed->module, *heat.transform,
                           *heat.exact_nest,
                           IntEnv{{"N", 40}, {"steps", 9}}, {{"r", 0.21}},
                           options);
    auto span = runner.array("u0").raw();
    for (size_t i = 0; i < span.size(); ++i)
      span[i] = std::sin(static_cast<double>(i));
    runner.run();
    return runner.array("uOut");
  };
  NdArray heat_solo = run_heat(nullptr);

  // Concurrent phase: both runners live at once, on their own threads
  // (and pools), repeatedly -- any shared mutable scratch between the
  // two engines would corrupt one of the outputs. Alternating the
  // gauss-seidel backend extends the isolation contract to the
  // work-stealing deques (their Bands are per-run state, nothing
  // process-global to alias).
  for (int round = 0; round < 3; ++round) {
    NdArray gs_out;
    NdArray heat_out;
    std::thread gs_thread([&] {
      ThreadPool pool(3);
      WavefrontOptions options;
      options.pool = &pool;
      options.backend = round % 2 == 0 ? WavefrontBackend::Sharded
                                       : WavefrontBackend::WorkStealing;
      options.shards = 3;
      gs_out = run_newA(gs, m, sweeps, options);
    });
    std::thread heat_thread([&] {
      ThreadPool pool(2);
      heat_out = run_heat(&pool);
    });
    gs_thread.join();
    heat_thread.join();

    expect_bit_identical(gs_solo, gs_out, m, "concurrent gauss-seidel");
    auto want = heat_solo.raw();
    auto got = heat_out.raw();
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i)
      ASSERT_EQ(std::bit_cast<uint64_t>(want[i]),
                std::bit_cast<uint64_t>(got[i]))
          << "concurrent heat1d at " << i;
  }
}

}  // namespace
}  // namespace ps
