// The consumer-stream layer against an eager-bucket oracle: the old
// WavefrontRunner materialised every consumer instance up front in a
// bucket map keyed by hyperplane (O(consumers) memory). ConsumerStream
// must yield exactly the same instances in exactly the same order per
// hyperplane -- while holding only per-equation affine forms.

#include "runtime/consumer_stream.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/wavefront.hpp"
#include "transform/polyhedron.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

/// A consumer-heavy variant of the paper's Gauss-Seidel: three output
/// equations read the recurrence array at different affine slices --
/// after the transform, hyperplane subscripts 2maxK+I+J (pivot
/// coefficient 1), 2maxK+2I (pivot coefficient 2: half the candidate
/// solutions are fractional and must be filtered) and 2maxK+1+J.
constexpr const char* kConsumerHeavySource = R"PS(
Heavy: module (InitialA: array[I,J] of real; M: int; maxK: int):
  [newA: array [I, J] of real; diag: array [I] of real;
   edge: array [J] of real];
type
  I, J = 0 .. M+1;  K = 2 .. maxK;
var
  A: array [1 .. maxK] of array [I, J] of real;
define
  A[1] = InitialA;
  newA = A[maxK];
  diag[I] = A[maxK, I, I];
  edge[J] = A[maxK, 1, J];
  A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
             then A[K-1,I,J]
             else ( A[K,I,J-1] + A[K,I-1,J]
                   +A[K-1,I,J+1] + A[K-1,I+1,J] ) / 4;
end Heavy;
)PS";

struct WavefrontSetup {
  CompileResult result;
  const CheckedModule* module = nullptr;
  std::string new_array;
  std::vector<size_t> consumers;
  int64_t window = 0;
};

WavefrontSetup setup_for(const char* source) {
  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  WavefrontSetup setup;
  setup.result = compile_or_die(source, options);
  EXPECT_TRUE(setup.result.transformed.has_value());
  setup.module = setup.result.transformed->module.operator->();
  setup.new_array = setup.result.transform->array + "'";
  size_t target = setup.module->data_index(setup.new_array);
  for (const CheckedEquation& eq : setup.module->equations) {
    if (eq.target == target) continue;
    for (const ArrayRefInfo& ref : eq.array_refs) {
      if (ref.array == setup.new_array) {
        setup.consumers.push_back(eq.id);
        break;
      }
    }
  }
  setup.window = 3;  // the paper's gauss-seidel window
  return setup;
}

using Instance = std::pair<size_t, std::vector<int64_t>>;
using Buckets = std::map<int64_t, std::vector<Instance>>;

/// The old eager construction, kept verbatim as the oracle: scan every
/// consumer box, evaluate the affine hyperplane subscripts, bucket by
/// the newest slice read.
Buckets eager_buckets(const WavefrontSetup& setup, const IntEnv& params) {
  Buckets buckets;
  for (size_t id : setup.consumers) {
    const CheckedEquation& eq = setup.module->equations[id];
    std::vector<AffineForm> reads;
    for (const ArrayRefInfo& ref : eq.array_refs) {
      if (ref.array != setup.new_array) continue;
      reads.push_back(*affine_from_expr(*ref.subs.front().expr));
    }
    std::vector<int64_t> lo(eq.loop_dims.size());
    std::vector<int64_t> hi(eq.loop_dims.size());
    for (size_t d = 0; d < eq.loop_dims.size(); ++d) {
      lo[d] = *eval_const_int(*eq.loop_dims[d].range->lo, params);
      hi[d] = *eval_const_int(*eq.loop_dims[d].range->hi, params);
    }
    std::vector<int64_t> vals = lo;
    bool empty = false;
    for (size_t d = 0; d < lo.size(); ++d)
      if (hi[d] < lo[d]) empty = true;
    if (empty) continue;
    while (true) {
      IntEnv env = params;
      for (size_t d = 0; d < vals.size(); ++d)
        env[eq.loop_dims[d].var] = vals[d];
      int64_t newest = std::numeric_limits<int64_t>::min();
      for (const AffineForm& form : reads)
        newest = std::max(newest, form.evaluate(env)->as_integer());
      buckets[newest].push_back({id, vals});
      size_t d = vals.size();
      bool done = false;
      while (true) {
        if (d == 0) {
          done = true;
          break;
        }
        --d;
        if (++vals[d] <= hi[d]) break;
        vals[d] = lo[d];
      }
      if (done) break;
    }
  }
  return buckets;
}

void expect_stream_matches_eager(const char* source, const IntEnv& params) {
  WavefrontSetup setup = setup_for(source);
  ASSERT_FALSE(setup.consumers.empty());
  Buckets expected = eager_buckets(setup, params);
  ConsumerStream stream(*setup.module, setup.consumers, setup.new_array,
                        setup.window, params);

  // The conservative range covers every occupied bucket.
  ASSERT_FALSE(expected.empty());
  EXPECT_LE(stream.min_t(), expected.begin()->first);
  EXPECT_GE(stream.max_t(), expected.rbegin()->first);

  int64_t total = 0;
  for (int64_t t = stream.min_t(); t <= stream.max_t(); ++t) {
    std::vector<Instance> got;
    int64_t count = stream.for_hyperplane(
        t, [&](size_t eq, const std::vector<int64_t>& vals) {
          got.push_back({eq, vals});
        });
    EXPECT_EQ(count, static_cast<int64_t>(got.size()));
    total += count;
    auto it = expected.find(t);
    if (it == expected.end()) {
      // Same instances: nothing may appear on an unoccupied hyperplane.
      EXPECT_TRUE(got.empty()) << "t=" << t;
    } else {
      // Same instances, same order per hyperplane.
      EXPECT_EQ(got, it->second) << "t=" << t;
    }
  }
  int64_t expected_total = 0;
  for (const auto& [t, instances] : expected)
    expected_total += static_cast<int64_t>(instances.size());
  EXPECT_EQ(total, expected_total);
}

TEST(ConsumerStream, MatchesEagerBucketsOnGaussSeidel) {
  expect_stream_matches_eager(kGaussSeidelSource,
                              IntEnv{{"M", 6}, {"maxK", 5}});
  expect_stream_matches_eager(kGaussSeidelSource,
                              IntEnv{{"M", 1}, {"maxK", 1}});
}

TEST(ConsumerStream, MatchesEagerBucketsOnJacobi) {
  expect_stream_matches_eager(kRelaxationSource,
                              IntEnv{{"M", 5}, {"maxK", 4}});
}

TEST(ConsumerStream, MatchesEagerBucketsOnHeat1d) {
  expect_stream_matches_eager(kHeat1dSource,
                              IntEnv{{"N", 9}, {"steps", 6}});
}

TEST(ConsumerStream, MatchesEagerBucketsOnConsumerHeavyModule) {
  // Three consumer equations with distinct affine forms, including a
  // coefficient-2 pivot whose fractional solutions must be filtered.
  expect_stream_matches_eager(kConsumerHeavySource,
                              IntEnv{{"M", 7}, {"maxK", 5}});
  expect_stream_matches_eager(kConsumerHeavySource,
                              IntEnv{{"M", 2}, {"maxK", 2}});
}

/// A consumer reading two adjacent sweeps: after the transform its two
/// A'-reads are 2 hyperplane slices apart, so the instance needs a
/// window of at least 3 to ever be flushable.
constexpr const char* kSpanningConsumerSource = R"PS(
Span: module (InitialA: array[I,J] of real; M: int; maxK: int):
  [d: array [I, J] of real; s: array [I, J] of real];
type
  I, J = 0 .. M+1;  K = 2 .. maxK;
var
  A: array [1 .. maxK] of array [I, J] of real;
define
  A[1] = InitialA;
  d[I,J] = A[maxK,I,J] - A[maxK-1,I,J];
  s[I,J] = A[maxK,I,J] + A[maxK,J,I];
  A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
             then A[K-1,I,J]
             else ( A[K,I,J-1] + A[K,I-1,J]
                   +A[K-1,I,J+1] + A[K-1,I+1,J] ) / 4;
end Span;
)PS";

TEST(ConsumerStream, ThrowsOnInstancesSpanningTheWindow) {
  WavefrontSetup setup = setup_for(kSpanningConsumerSource);
  IntEnv params{{"M", 4}, {"maxK", 3}};
  auto drain = [&](int64_t window) {
    ConsumerStream stream(*setup.module, setup.consumers, setup.new_array,
                          window, params);
    int64_t total = 0;
    for (int64_t t = stream.min_t(); t <= stream.max_t(); ++t)
      total += stream.for_hyperplane(
          t, [](size_t, const std::vector<int64_t>&) {});
    return total;
  };
  // Window 3 holds both slices the consumer reads; window 2 cannot, and
  // the stream must fail loudly (the old bucket build's contract)
  // instead of flushing an instance whose older slice already rotated
  // out.
  EXPECT_GT(drain(3), 0);
  EXPECT_THROW(drain(2), std::runtime_error);
  // The eager oracle agrees at the workable window.
  expect_stream_matches_eager(kSpanningConsumerSource, params);
}

// ---------------------------------------------------------------------------
// The live-set bound: peak_bucket_instances on the full runner
// ---------------------------------------------------------------------------

TEST(ConsumerStream, RunnerPeakIsBoundedByTheLargestHyperplane) {
  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  auto result = compile_or_die(kConsumerHeavySource, options);
  const int64_t m = 12;
  const int64_t sweeps = 6;
  IntEnv params{{"M", m}, {"maxK", sweeps}};

  WavefrontRunner runner(*result.transformed->module, *result.transform,
                         *result.exact_nest, params);
  auto span = runner.array("InitialA").raw();
  for (size_t i = 0; i < span.size(); ++i)
    span[i] = std::cos(static_cast<double>(i));
  runner.run();

  // Oracle: the largest single-hyperplane instance count.
  WavefrontSetup setup = setup_for(kConsumerHeavySource);
  Buckets buckets = eager_buckets(setup, params);
  int64_t largest = 0;
  int64_t total = 0;
  for (const auto& [t, instances] : buckets) {
    largest = std::max(largest, static_cast<int64_t>(instances.size()));
    total += static_cast<int64_t>(instances.size());
  }

  EXPECT_EQ(runner.stats().flushed, total);
  // The stream's live set is bounded by one hyperplane's instances --
  // the eager map held `total` (the whole module) live instead.
  EXPECT_EQ(runner.stats().peak_bucket_instances, largest);
  EXPECT_LT(runner.stats().peak_bucket_instances, total);
}

}  // namespace
}  // namespace ps
