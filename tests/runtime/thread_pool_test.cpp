#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <numeric>
#include <vector>

namespace ps {
namespace {

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](int64_t i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(5, 5, [&](int64_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(5, 6, [&](int64_t i) {
    EXPECT_EQ(i, 5);
    ++count;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, SizeOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> order;
  pool.parallel_for(0, 10, [&](int64_t i) { order.push_back(static_cast<int>(i)); });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // sequential and ordered
}

TEST(ThreadPool, ChunkedVariantSeesDisjointChunks) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.parallel_for_chunked(0, 10000, [&](int64_t from, int64_t to) {
    EXPECT_LT(from, to);
    total += to - from;
  });
  EXPECT_EQ(total.load(), 10000);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64 * 64);
  pool.parallel_for(0, 64, [&](int64_t i) {
    pool.parallel_for(0, 64, [&](int64_t j) {
      ++hits[static_cast<size_t>(i * 64 + j)];
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 200; ++round)
    pool.parallel_for(0, 100, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 200 * 4950);
}

TEST(ThreadPool, ActuallyUsesMultipleThreads) {
  ThreadPool pool(4);
  // Chunks sleep long enough that a lone thread cannot drain the batch
  // before the workers wake; retry to keep the test robust on loaded
  // machines.
  for (int attempt = 0; attempt < 5; ++attempt) {
    std::set<std::thread::id> ids;
    std::mutex m;
    pool.parallel_for_chunked(0, 64, [&](int64_t, int64_t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      std::lock_guard<std::mutex> lock(m);
      ids.insert(std::this_thread::get_id());
    });
    if (ids.size() >= 2) return;
  }
  FAIL() << "pool never used a second thread in five attempts";
}

TEST(ThreadPool, RapidSmallBatchesNeverLoseCompletionWakeups) {
  // Regression test for a lost-wakeup race: the last worker notified
  // done_ without holding the pool mutex, so the notification could
  // land between the caller's predicate evaluation (active still 1)
  // and its unlock-and-sleep -- deadlocking the caller on a batch that
  // had already finished. Tiny ranges issued back to back maximise the
  // window; before the fix this test hung within seconds.
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 20000; ++round) {
    pool.parallel_for_chunked(0, 3, [&](int64_t from, int64_t to) {
      total.fetch_add(to - from, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 60000);
}

TEST(ThreadPool, EmptyTaskListWakesNoWorkers) {
  // Regression guard: warm-service callers probe with empty task lists;
  // parallel_tasks must bail before touching the pool instead of waking
  // workers (or flipping in_parallel_) for nothing.
  ThreadPool pool(4);
  const uint64_t before = pool.worker_wakeups();
  std::atomic<int> count{0};
  pool.parallel_tasks(0, [&](int64_t) { ++count; });
  pool.parallel_tasks(-3, [&](int64_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
  EXPECT_EQ(pool.worker_wakeups(), before);
}

TEST(ThreadPool, SingleTaskRunsInlineWithoutWakeups) {
  ThreadPool pool(4);
  const uint64_t before = pool.worker_wakeups();
  std::atomic<int> count{0};
  pool.parallel_tasks(1, [&](int64_t i) {
    EXPECT_EQ(i, 0);
    ++count;
  });
  EXPECT_EQ(count.load(), 1);
  EXPECT_EQ(pool.worker_wakeups(), before);
}

TEST(ThreadPool, WakesAtMostChunksMinusOneWorkers) {
  // The wake policy: a batch of k chunks wakes at most min(workers,
  // k - 1) workers (the caller claims one chunk itself). The counter is
  // cumulative, so the bound is asserted over the whole sequence --
  // individual batches may hand a stale notify to the next batch, but
  // the total can never exceed the total notifies issued.
  ThreadPool pool(4);  // 3 workers
  const uint64_t before = pool.worker_wakeups();
  std::atomic<int64_t> total{0};
  const int rounds = 50;
  for (int round = 0; round < rounds; ++round)
    pool.parallel_tasks(2, [&](int64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  EXPECT_EQ(total.load(), 2 * rounds);
  // Two chunks per batch: at most one wake each, never the whole pool.
  EXPECT_LE(pool.worker_wakeups() - before,
            static_cast<uint64_t>(rounds));
}

TEST(ThreadPool, GlobalPoolSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

}  // namespace
}  // namespace ps
