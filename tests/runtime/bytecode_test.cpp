#include "runtime/bytecode.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/interpreter.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

TEST(Bytecode, LayoutAssignsDenseSlots) {
  auto result = compile_or_die(kRelaxationSource);
  BcLayout layout = BcLayout::for_module(*result.primary->module);
  // InitialA, newA, A are arrays; M, maxK scalars.
  EXPECT_EQ(layout.array_count, 3);
  EXPECT_EQ(layout.scalar_count, 2);
  size_t arrays = 0;
  size_t scalars = 0;
  for (size_t i = 0; i < layout.array_slot.size(); ++i) {
    if (layout.array_slot[i] >= 0) ++arrays;
    if (layout.scalar_slot[i] >= 0) ++scalars;
    EXPECT_TRUE((layout.array_slot[i] >= 0) != (layout.scalar_slot[i] >= 0));
  }
  EXPECT_EQ(arrays, 3u);
  EXPECT_EQ(scalars, 2u);
}

TEST(Bytecode, CompilesRelaxationEquations) {
  auto result = compile_or_die(kRelaxationSource);
  const CheckedModule& module = *result.primary->module;
  BcLayout layout = BcLayout::for_module(module);
  for (const CheckedEquation& eq : module.equations) {
    BcProgram program = compile_expr(*eq.rhs, module, layout);
    EXPECT_FALSE(program.code.empty());
    EXPECT_EQ(program.code.back().op, BcOp::Halt);
    EXPECT_TRUE(program.result_real);  // all equations produce reals
    EXPECT_GT(program.max_stack, 0u);
    // The disassembly round-trips every instruction without crashing.
    EXPECT_FALSE(program.disassemble().empty());
  }
}

TEST(Bytecode, Eq3UsesTypedStencilOps) {
  auto result = compile_or_die(kRelaxationSource);
  const CheckedModule& module = *result.primary->module;
  BcLayout layout = BcLayout::for_module(module);
  BcProgram program =
      compile_expr(*module.equations[2].rhs, module, layout);
  std::string dis = program.disassemble();
  EXPECT_NE(dis.find("LoadArrayD"), std::string::npos);
  EXPECT_NE(dis.find("AddD"), std::string::npos);   // stencil sum
  EXPECT_NE(dis.find("CmpEqI"), std::string::npos); // boundary guards
  EXPECT_NE(dis.find("JumpIfFalse"), std::string::npos);
  // PS '/' divides in double even with the integer literal 4.
  EXPECT_NE(dis.find("DivD"), std::string::npos);
  EXPECT_NE(dis.find("IntToReal"), std::string::npos);
}

/// Run a module under both engines and compare all outputs bit-for-bit.
void expect_engines_agree(const char* source, IntEnv params,
                          std::map<std::string, double> reals = {}) {
  CompileOptions options;
  options.apply_hyperplane = true;
  auto result = compile_or_die(source, options);
  std::vector<const CompiledModule*> stages{result.primary.operator->()};
  if (result.transformed) stages.push_back(result.transformed.operator->());

  for (const CompiledModule* stage : stages) {
    InterpreterOptions tree;
    tree.engine = EvalEngine::TreeWalk;
    InterpreterOptions bc;
    bc.engine = EvalEngine::Bytecode;
    Interpreter a(*stage->module, *stage->graph, stage->schedule.flowchart,
                  params, reals, tree);
    Interpreter b(*stage->module, *stage->graph, stage->schedule.flowchart,
                  params, reals, bc);
    for (auto* interp : {&a, &b}) {
      for (const DataItem& item : stage->module->data) {
        if (item.cls != DataClass::Input || item.is_scalar()) continue;
        auto span = interp->array(item.name).raw();
        for (size_t i = 0; i < span.size(); ++i)
          span[i] = std::cos(static_cast<double>(i) * 0.11) * 3.0;
      }
    }
    a.run();
    b.run();
    for (const DataItem& item : stage->module->data) {
      if (item.is_scalar() || item.cls == DataClass::Input) continue;
      auto sa = a.array(item.name).raw();
      auto sb = b.array(item.name).raw();
      ASSERT_EQ(sa.size(), sb.size());
      for (size_t i = 0; i < sa.size(); ++i)
        ASSERT_EQ(sa[i], sb[i])
            << stage->module->name << " " << item.name << "[" << i << "]";
    }
  }
}

TEST(Bytecode, EnginesAgreeOnRelaxation) {
  expect_engines_agree(kRelaxationSource, IntEnv{{"M", 6}, {"maxK", 5}});
}

TEST(Bytecode, EnginesAgreeOnGaussSeidelAndItsTransform) {
  expect_engines_agree(kGaussSeidelSource, IntEnv{{"M", 6}, {"maxK", 5}});
}

TEST(Bytecode, EnginesAgreeOnHeat1d) {
  expect_engines_agree(kHeat1dSource, IntEnv{{"N", 10}, {"steps", 6}},
                       {{"r", 0.21}});
}

TEST(Bytecode, EnginesAgreeOnChain) {
  expect_engines_agree(kPointwiseChainSource, IntEnv{{"N", 16}});
}

TEST(Bytecode, ShortCircuitSemantics) {
  // The right operand of 'and'/'or' must not be evaluated when the left
  // decides: an out-of-bounds read guards behind I > 0.
  auto result = compile_or_die(R"(
M: module (x: array[I] of real; n: int): [y: array[I] of real];
type I = 0 .. n;
define
  y[I] = if I > 0 and x[I - 1] > 0.0 then 1.0
         else if I = n or x[I + 1] > 0.5 then 2.0 else 0.0;
end M;
)");
  const CompiledModule& stage = *result.primary;
  InterpreterOptions options;
  options.engine = EvalEngine::Bytecode;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"n", 4}}, {}, options);
  auto span = interp.array("x").raw();
  for (size_t i = 0; i < span.size(); ++i) span[i] = 1.0;
  // If short-circuiting were broken, I = 0 would read x[-1] and throw.
  EXPECT_NO_THROW(interp.run());
  EXPECT_DOUBLE_EQ(interp.array("y").at(std::vector<int64_t>{0}), 2.0);
  EXPECT_DOUBLE_EQ(interp.array("y").at(std::vector<int64_t>{3}), 1.0);
}

TEST(Bytecode, IntegerArithmetic) {
  auto result = compile_or_die(R"(
M: module (k: int): [a: int; b: int; c: int];
define
  a = (k div 3) * 3 + (k mod 3);
  b = min(k, 10) + max(k, 10) - abs(0 - k);
  c = floor(2.7) + ceil(2.1);
end M;
)");
  const CompiledModule& stage = *result.primary;
  InterpreterOptions options;
  options.engine = EvalEngine::Bytecode;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"k", 17}}, {}, options);
  interp.run();
  EXPECT_DOUBLE_EQ(interp.scalar("a"), 17.0);
  EXPECT_DOUBLE_EQ(interp.scalar("b"), 10.0 + 17.0 - 17.0);
  EXPECT_DOUBLE_EQ(interp.scalar("c"), 2.0 + 3.0);
}

// ---------------------------------------------------------------------------
// Constant folding (applied by EvalCore::compile to every program).
// ---------------------------------------------------------------------------

BcInstr make_instr(BcOp op, int32_t a = 0, int64_t imm = 0, double dimm = 0) {
  BcInstr instr{op, a, 0, imm, dimm};
  return instr;
}

TEST(BytecodeFold, FoldsConstantSubtreesToOnePush) {
  // 1 + 2 * 3 compiles to five instructions and folds to PushInt 7.
  auto result = compile_or_die(R"(
M: module (k: int): [a: int];
define
  a = k + (1 + 2 * 3);
end M;
)");
  const CheckedModule& module = *result.primary->module;
  BcLayout layout = BcLayout::for_module(module);
  BcProgram program = compile_expr(*module.equations[0].rhs, module, layout);
  size_t before = program.code.size();
  size_t removed = fold_constants(program);
  EXPECT_EQ(removed, 4u);  // PushInt 2, PushInt 3, MulI, AddI collapse
  EXPECT_EQ(program.code.size(), before - 4);
  std::string dis = program.disassemble();
  EXPECT_NE(dis.find("PushInt 7"), std::string::npos) << dis;
  EXPECT_EQ(dis.find("MulI"), std::string::npos) << dis;
}

TEST(BytecodeFold, FoldsIntrinsicsOverLiterals) {
  auto result = compile_or_die(R"(
M: module (k: int): [c: int];
define
  c = k + floor(2.7) + ceil(2.1) + min(4, 9) + abs(0 - 3);
end M;
)");
  const CheckedModule& module = *result.primary->module;
  BcLayout layout = BcLayout::for_module(module);
  BcProgram program = compile_expr(*module.equations[0].rhs, module, layout);
  fold_constants(program);
  std::string dis = program.disassemble();
  // floor/ceil/min/abs all evaluated at compile time; only the loads of
  // k and the running additions remain.
  EXPECT_EQ(dis.find("FloorD"), std::string::npos) << dis;
  EXPECT_EQ(dis.find("CeilD"), std::string::npos) << dis;
  EXPECT_EQ(dis.find("MinI"), std::string::npos) << dis;
  EXPECT_EQ(dis.find("AbsI"), std::string::npos) << dis;
  EXPECT_NE(dis.find("PushInt 2"), std::string::npos) << dis;  // floor(2.7)
}

TEST(BytecodeFold, RelaxationStencilDropsTheIntToReal) {
  // The `/ 4` of the stencil average compiles as PushInt 4; IntToReal.
  // Folding turns it into PushReal 4 -- one dispatch less per instance
  // on the hottest path of the whole corpus.
  auto result = compile_or_die(kRelaxationSource);
  const CheckedModule& module = *result.primary->module;
  BcLayout layout = BcLayout::for_module(module);
  BcProgram raw = compile_expr(*module.equations[2].rhs, module, layout);
  BcProgram folded = compile_expr(*module.equations[2].rhs, module, layout);
  size_t removed = fold_constants(folded);
  EXPECT_NE(raw.disassemble().find("IntToReal"), std::string::npos);
  EXPECT_EQ(folded.disassemble().find("IntToReal"), std::string::npos)
      << folded.disassemble();
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(folded.code.size(), raw.code.size() - 1);
}

TEST(BytecodeFold, WholeCorpusNeverGrowsAndIsIdempotent) {
  for (const PaperModule& paper : paper_corpus()) {
    auto result = compile_or_die(paper.source);
    const CheckedModule& module = *result.primary->module;
    BcLayout layout = BcLayout::for_module(module);
    for (const CheckedEquation& eq : module.equations) {
      BcProgram program = compile_expr(*eq.rhs, module, layout);
      size_t before = program.code.size();
      size_t removed = fold_constants(program);
      EXPECT_EQ(program.code.size(), before - removed) << paper.name;
      // A second pass finds nothing: folding reached its fixpoint.
      EXPECT_EQ(fold_constants(program), 0u) << paper.name;
    }
  }
}

TEST(BytecodeFold, JumpTargetsAreRemappedAcrossASplice) {
  // 1 ? (2 + 3) : 9 with explicit jumps: folding the constant arm must
  // shift both targets left by two.
  BcProgram program;
  program.code.push_back(make_instr(BcOp::PushInt, 0, 1));
  program.code.push_back(make_instr(BcOp::JumpIfFalse, 6));
  program.code.push_back(make_instr(BcOp::PushInt, 0, 2));
  program.code.push_back(make_instr(BcOp::PushInt, 0, 3));
  program.code.push_back(make_instr(BcOp::AddI));
  program.code.push_back(make_instr(BcOp::Jump, 7));
  program.code.push_back(make_instr(BcOp::PushInt, 0, 9));
  program.code.push_back(make_instr(BcOp::Halt));
  program.max_stack = 2;

  size_t removed = fold_constants(program);
  EXPECT_EQ(removed, 2u);
  ASSERT_EQ(program.code.size(), 6u);
  EXPECT_EQ(program.code[1].op, BcOp::JumpIfFalse);
  EXPECT_EQ(program.code[1].a, 4);
  EXPECT_EQ(program.code[2].op, BcOp::PushInt);
  EXPECT_EQ(program.code[2].imm, 5);
  EXPECT_EQ(program.code[3].op, BcOp::Jump);
  EXPECT_EQ(program.code[3].a, 5);

  // The folded program still executes correctly.
  EvalCore core;
  EvalSlot slot = core.run(program, VarFrame{});
  EXPECT_EQ(slot.i, 5);
}

TEST(BytecodeFold, SpansAJumpLandsInsideAreLeftAlone) {
  // The Push/Push/AddI window at 2..4 must not fold: position 3 is a
  // jump target.
  BcProgram program;
  program.code.push_back(make_instr(BcOp::PushInt, 0, 0));
  program.code.push_back(make_instr(BcOp::JumpIfFalse, 3));
  program.code.push_back(make_instr(BcOp::PushInt, 0, 1));
  program.code.push_back(make_instr(BcOp::PushInt, 0, 2));
  program.code.push_back(make_instr(BcOp::AddI));
  program.code.push_back(make_instr(BcOp::Halt));
  program.max_stack = 2;
  EXPECT_EQ(fold_constants(program), 0u);
  ASSERT_EQ(program.code.size(), 6u);
}

TEST(BytecodeFold, DivisionByConstantZeroIsNotFolded) {
  // The runtime diagnostic must be preserved, not turned into a
  // compile-time crash or a bogus value.
  BcProgram program;
  program.code.push_back(make_instr(BcOp::PushInt, 0, 1));
  program.code.push_back(make_instr(BcOp::PushInt, 0, 0));
  program.code.push_back(make_instr(BcOp::DivI));
  program.code.push_back(make_instr(BcOp::Halt));
  program.max_stack = 2;
  EXPECT_EQ(fold_constants(program), 0u);
  EvalCore core;
  EXPECT_THROW(core.run(program, VarFrame{}), std::runtime_error);
}

TEST(BytecodeFold, EvalCoreHandsBackFoldedPrograms) {
  // EvalCore::compile folds every program it builds: the constant
  // (1.0 + 2.0) and the subscript-position arithmetic 2*2 below must
  // already be collapsed in the programs the engines execute.
  auto result = compile_or_die(R"(
M: module (x: array[I] of real; n: int): [y: array[I] of real];
type I = 0 .. n;
var A: array [1 .. 4] of array [I] of real;
define
  A[1] = x;
  y[I] = A[1, I] * (1.0 + 2.0) + x[2 * 2];
end M;
)");
  const CheckedModule& module = *result.primary->module;
  EvalCore core;
  core.compile(module);
  std::string dis = core.programs(1).rhs.disassemble();  // the y equation
  EXPECT_NE(dis.find("PushReal 3"), std::string::npos) << dis;
  // No constant arithmetic left: 2 * 2 became PushInt 4.
  EXPECT_NE(dis.find("PushInt 4"), std::string::npos) << dis;
  EXPECT_EQ(dis.find("MulI"), std::string::npos) << dis;

  // Raw compile_expr still carries the unfolded arithmetic, proving the
  // fold happened inside EvalCore::compile.
  BcLayout layout = BcLayout::for_module(module);
  BcProgram raw = compile_expr(*module.equations[1].rhs, module, layout);
  EXPECT_NE(raw.disassemble().find("MulI"), std::string::npos)
      << raw.disassemble();
  EXPECT_GT(raw.code.size(), core.programs(1).rhs.code.size());
}

TEST(Bytecode, CollapseAblationAgrees) {
  CompileOptions copts;
  copts.apply_hyperplane = true;
  auto result = compile_or_die(kGaussSeidelSource, copts);
  ASSERT_TRUE(result.transformed.has_value());
  const CompiledModule& stage = *result.transformed;
  ThreadPool pool(6);
  IntEnv params{{"M", 8}, {"maxK", 6}};

  auto run_with = [&](bool collapse) {
    InterpreterOptions options;
    options.pool = &pool;
    options.collapse_doall = collapse;
    Interpreter interp(*stage.module, *stage.graph,
                       stage.schedule.flowchart, params, {}, options);
    auto span = interp.array("InitialA").raw();
    for (size_t i = 0; i < span.size(); ++i)
      span[i] = static_cast<double>(i % 13);
    interp.run();
    double sum = 0;
    for (double v : interp.array("newA").raw()) sum += v;
    return sum;
  };
  EXPECT_DOUBLE_EQ(run_with(true), run_with(false));
}

}  // namespace
}  // namespace ps
