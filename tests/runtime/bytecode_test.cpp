#include "runtime/bytecode.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/interpreter.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

TEST(Bytecode, LayoutAssignsDenseSlots) {
  auto result = compile_or_die(kRelaxationSource);
  BcLayout layout = BcLayout::for_module(*result.primary->module);
  // InitialA, newA, A are arrays; M, maxK scalars.
  EXPECT_EQ(layout.array_count, 3);
  EXPECT_EQ(layout.scalar_count, 2);
  size_t arrays = 0;
  size_t scalars = 0;
  for (size_t i = 0; i < layout.array_slot.size(); ++i) {
    if (layout.array_slot[i] >= 0) ++arrays;
    if (layout.scalar_slot[i] >= 0) ++scalars;
    EXPECT_TRUE((layout.array_slot[i] >= 0) != (layout.scalar_slot[i] >= 0));
  }
  EXPECT_EQ(arrays, 3u);
  EXPECT_EQ(scalars, 2u);
}

TEST(Bytecode, CompilesRelaxationEquations) {
  auto result = compile_or_die(kRelaxationSource);
  const CheckedModule& module = *result.primary->module;
  BcLayout layout = BcLayout::for_module(module);
  for (const CheckedEquation& eq : module.equations) {
    BcProgram program = compile_expr(*eq.rhs, module, layout);
    EXPECT_FALSE(program.code.empty());
    EXPECT_EQ(program.code.back().op, BcOp::Halt);
    EXPECT_TRUE(program.result_real);  // all equations produce reals
    EXPECT_GT(program.max_stack, 0u);
    // The disassembly round-trips every instruction without crashing.
    EXPECT_FALSE(program.disassemble().empty());
  }
}

TEST(Bytecode, Eq3UsesTypedStencilOps) {
  auto result = compile_or_die(kRelaxationSource);
  const CheckedModule& module = *result.primary->module;
  BcLayout layout = BcLayout::for_module(module);
  BcProgram program =
      compile_expr(*module.equations[2].rhs, module, layout);
  std::string dis = program.disassemble();
  EXPECT_NE(dis.find("LoadArrayD"), std::string::npos);
  EXPECT_NE(dis.find("AddD"), std::string::npos);   // stencil sum
  EXPECT_NE(dis.find("CmpEqI"), std::string::npos); // boundary guards
  EXPECT_NE(dis.find("JumpIfFalse"), std::string::npos);
  // PS '/' divides in double even with the integer literal 4.
  EXPECT_NE(dis.find("DivD"), std::string::npos);
  EXPECT_NE(dis.find("IntToReal"), std::string::npos);
}

/// Run a module under both engines and compare all outputs bit-for-bit.
void expect_engines_agree(const char* source, IntEnv params,
                          std::map<std::string, double> reals = {}) {
  CompileOptions options;
  options.apply_hyperplane = true;
  auto result = compile_or_die(source, options);
  std::vector<const CompiledModule*> stages{result.primary.operator->()};
  if (result.transformed) stages.push_back(result.transformed.operator->());

  for (const CompiledModule* stage : stages) {
    InterpreterOptions tree;
    tree.engine = EvalEngine::TreeWalk;
    InterpreterOptions bc;
    bc.engine = EvalEngine::Bytecode;
    Interpreter a(*stage->module, *stage->graph, stage->schedule.flowchart,
                  params, reals, tree);
    Interpreter b(*stage->module, *stage->graph, stage->schedule.flowchart,
                  params, reals, bc);
    for (auto* interp : {&a, &b}) {
      for (const DataItem& item : stage->module->data) {
        if (item.cls != DataClass::Input || item.is_scalar()) continue;
        auto span = interp->array(item.name).raw();
        for (size_t i = 0; i < span.size(); ++i)
          span[i] = std::cos(static_cast<double>(i) * 0.11) * 3.0;
      }
    }
    a.run();
    b.run();
    for (const DataItem& item : stage->module->data) {
      if (item.is_scalar() || item.cls == DataClass::Input) continue;
      auto sa = a.array(item.name).raw();
      auto sb = b.array(item.name).raw();
      ASSERT_EQ(sa.size(), sb.size());
      for (size_t i = 0; i < sa.size(); ++i)
        ASSERT_EQ(sa[i], sb[i])
            << stage->module->name << " " << item.name << "[" << i << "]";
    }
  }
}

TEST(Bytecode, EnginesAgreeOnRelaxation) {
  expect_engines_agree(kRelaxationSource, IntEnv{{"M", 6}, {"maxK", 5}});
}

TEST(Bytecode, EnginesAgreeOnGaussSeidelAndItsTransform) {
  expect_engines_agree(kGaussSeidelSource, IntEnv{{"M", 6}, {"maxK", 5}});
}

TEST(Bytecode, EnginesAgreeOnHeat1d) {
  expect_engines_agree(kHeat1dSource, IntEnv{{"N", 10}, {"steps", 6}},
                       {{"r", 0.21}});
}

TEST(Bytecode, EnginesAgreeOnChain) {
  expect_engines_agree(kPointwiseChainSource, IntEnv{{"N", 16}});
}

TEST(Bytecode, ShortCircuitSemantics) {
  // The right operand of 'and'/'or' must not be evaluated when the left
  // decides: an out-of-bounds read guards behind I > 0.
  auto result = compile_or_die(R"(
M: module (x: array[I] of real; n: int): [y: array[I] of real];
type I = 0 .. n;
define
  y[I] = if I > 0 and x[I - 1] > 0.0 then 1.0
         else if I = n or x[I + 1] > 0.5 then 2.0 else 0.0;
end M;
)");
  const CompiledModule& stage = *result.primary;
  InterpreterOptions options;
  options.engine = EvalEngine::Bytecode;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"n", 4}}, {}, options);
  auto span = interp.array("x").raw();
  for (size_t i = 0; i < span.size(); ++i) span[i] = 1.0;
  // If short-circuiting were broken, I = 0 would read x[-1] and throw.
  EXPECT_NO_THROW(interp.run());
  EXPECT_DOUBLE_EQ(interp.array("y").at(std::vector<int64_t>{0}), 2.0);
  EXPECT_DOUBLE_EQ(interp.array("y").at(std::vector<int64_t>{3}), 1.0);
}

TEST(Bytecode, IntegerArithmetic) {
  auto result = compile_or_die(R"(
M: module (k: int): [a: int; b: int; c: int];
define
  a = (k div 3) * 3 + (k mod 3);
  b = min(k, 10) + max(k, 10) - abs(0 - k);
  c = floor(2.7) + ceil(2.1);
end M;
)");
  const CompiledModule& stage = *result.primary;
  InterpreterOptions options;
  options.engine = EvalEngine::Bytecode;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"k", 17}}, {}, options);
  interp.run();
  EXPECT_DOUBLE_EQ(interp.scalar("a"), 17.0);
  EXPECT_DOUBLE_EQ(interp.scalar("b"), 10.0 + 17.0 - 17.0);
  EXPECT_DOUBLE_EQ(interp.scalar("c"), 2.0 + 3.0);
}

// ---------------------------------------------------------------------------
// Constant folding (applied by EvalCore::compile to every program).
// ---------------------------------------------------------------------------

BcInstr make_instr(BcOp op, int32_t a = 0, int64_t imm = 0, double dimm = 0) {
  BcInstr instr{op, a, 0, imm, dimm};
  return instr;
}

TEST(BytecodeFold, FoldsConstantSubtreesToOnePush) {
  // 1 + 2 * 3 compiles to five instructions and folds to PushInt 7.
  auto result = compile_or_die(R"(
M: module (k: int): [a: int];
define
  a = k + (1 + 2 * 3);
end M;
)");
  const CheckedModule& module = *result.primary->module;
  BcLayout layout = BcLayout::for_module(module);
  BcProgram program = compile_expr(*module.equations[0].rhs, module, layout);
  size_t before = program.code.size();
  size_t removed = fold_constants(program);
  EXPECT_EQ(removed, 4u);  // PushInt 2, PushInt 3, MulI, AddI collapse
  EXPECT_EQ(program.code.size(), before - 4);
  std::string dis = program.disassemble();
  EXPECT_NE(dis.find("PushInt 7"), std::string::npos) << dis;
  EXPECT_EQ(dis.find("MulI"), std::string::npos) << dis;
}

TEST(BytecodeFold, FoldsIntrinsicsOverLiterals) {
  auto result = compile_or_die(R"(
M: module (k: int): [c: int];
define
  c = k + floor(2.7) + ceil(2.1) + min(4, 9) + abs(0 - 3);
end M;
)");
  const CheckedModule& module = *result.primary->module;
  BcLayout layout = BcLayout::for_module(module);
  BcProgram program = compile_expr(*module.equations[0].rhs, module, layout);
  fold_constants(program);
  std::string dis = program.disassemble();
  // floor/ceil/min/abs all evaluated at compile time; only the loads of
  // k and the running additions remain.
  EXPECT_EQ(dis.find("FloorD"), std::string::npos) << dis;
  EXPECT_EQ(dis.find("CeilD"), std::string::npos) << dis;
  EXPECT_EQ(dis.find("MinI"), std::string::npos) << dis;
  EXPECT_EQ(dis.find("AbsI"), std::string::npos) << dis;
  EXPECT_NE(dis.find("PushInt 2"), std::string::npos) << dis;  // floor(2.7)
}

TEST(BytecodeFold, RelaxationStencilDropsTheIntToReal) {
  // The `/ 4` of the stencil average compiles as PushInt 4; IntToReal.
  // Folding turns it into PushReal 4 -- one dispatch less per instance
  // on the hottest path of the whole corpus.
  auto result = compile_or_die(kRelaxationSource);
  const CheckedModule& module = *result.primary->module;
  BcLayout layout = BcLayout::for_module(module);
  BcProgram raw = compile_expr(*module.equations[2].rhs, module, layout);
  BcProgram folded = compile_expr(*module.equations[2].rhs, module, layout);
  size_t removed = fold_constants(folded);
  EXPECT_NE(raw.disassemble().find("IntToReal"), std::string::npos);
  EXPECT_EQ(folded.disassemble().find("IntToReal"), std::string::npos)
      << folded.disassemble();
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(folded.code.size(), raw.code.size() - 1);
}

TEST(BytecodeFold, WholeCorpusNeverGrowsAndIsIdempotent) {
  for (const PaperModule& paper : paper_corpus()) {
    auto result = compile_or_die(paper.source);
    const CheckedModule& module = *result.primary->module;
    BcLayout layout = BcLayout::for_module(module);
    for (const CheckedEquation& eq : module.equations) {
      BcProgram program = compile_expr(*eq.rhs, module, layout);
      size_t before = program.code.size();
      size_t removed = fold_constants(program);
      EXPECT_EQ(program.code.size(), before - removed) << paper.name;
      // A second pass finds nothing: folding reached its fixpoint.
      EXPECT_EQ(fold_constants(program), 0u) << paper.name;
    }
  }
}

TEST(BytecodeFold, JumpTargetsAreRemappedAcrossASplice) {
  // 1 ? (2 + 3) : 9 with explicit jumps: folding the constant arm must
  // shift both targets left by two.
  BcProgram program;
  program.code.push_back(make_instr(BcOp::PushInt, 0, 1));
  program.code.push_back(make_instr(BcOp::JumpIfFalse, 6));
  program.code.push_back(make_instr(BcOp::PushInt, 0, 2));
  program.code.push_back(make_instr(BcOp::PushInt, 0, 3));
  program.code.push_back(make_instr(BcOp::AddI));
  program.code.push_back(make_instr(BcOp::Jump, 7));
  program.code.push_back(make_instr(BcOp::PushInt, 0, 9));
  program.code.push_back(make_instr(BcOp::Halt));
  program.max_stack = 2;

  size_t removed = fold_constants(program);
  EXPECT_EQ(removed, 2u);
  ASSERT_EQ(program.code.size(), 6u);
  EXPECT_EQ(program.code[1].op, BcOp::JumpIfFalse);
  EXPECT_EQ(program.code[1].a, 4);
  EXPECT_EQ(program.code[2].op, BcOp::PushInt);
  EXPECT_EQ(program.code[2].imm, 5);
  EXPECT_EQ(program.code[3].op, BcOp::Jump);
  EXPECT_EQ(program.code[3].a, 5);

  // The folded program still executes correctly.
  EvalCore core;
  EvalScratch scratch;
  EvalSlot slot = core.run(program, VarFrame{}, scratch);
  EXPECT_EQ(slot.i, 5);
}

TEST(BytecodeFold, SpansAJumpLandsInsideAreLeftAlone) {
  // The Push/Push/AddI window at 2..4 must not fold: position 3 is a
  // jump target.
  BcProgram program;
  program.code.push_back(make_instr(BcOp::PushInt, 0, 0));
  program.code.push_back(make_instr(BcOp::JumpIfFalse, 3));
  program.code.push_back(make_instr(BcOp::PushInt, 0, 1));
  program.code.push_back(make_instr(BcOp::PushInt, 0, 2));
  program.code.push_back(make_instr(BcOp::AddI));
  program.code.push_back(make_instr(BcOp::Halt));
  program.max_stack = 2;
  EXPECT_EQ(fold_constants(program), 0u);
  ASSERT_EQ(program.code.size(), 6u);
}

TEST(BytecodeFold, DivisionByConstantZeroIsNotFolded) {
  // The runtime diagnostic must be preserved, not turned into a
  // compile-time crash or a bogus value.
  BcProgram program;
  program.code.push_back(make_instr(BcOp::PushInt, 0, 1));
  program.code.push_back(make_instr(BcOp::PushInt, 0, 0));
  program.code.push_back(make_instr(BcOp::DivI));
  program.code.push_back(make_instr(BcOp::Halt));
  program.max_stack = 2;
  EXPECT_EQ(fold_constants(program), 0u);
  EvalCore core;
  EvalScratch scratch;
  EXPECT_THROW((void)core.run(program, VarFrame{}, scratch),
               std::runtime_error);
}

TEST(BytecodeFold, EvalCoreHandsBackFoldedPrograms) {
  // EvalCore::compile folds every program it builds: the constant
  // (1.0 + 2.0) and the subscript-position arithmetic 2*2 below must
  // already be collapsed in the programs the engines execute.
  auto result = compile_or_die(R"(
M: module (x: array[I] of real; n: int): [y: array[I] of real];
type I = 0 .. n;
var A: array [1 .. 4] of array [I] of real;
define
  A[1] = x;
  y[I] = A[1, I] * (1.0 + 2.0) + x[2 * 2];
end M;
)");
  const CheckedModule& module = *result.primary->module;
  EvalCore core;
  core.compile(module);
  std::string dis = core.programs(1).rhs.disassemble();  // the y equation
  EXPECT_NE(dis.find("PushReal 3"), std::string::npos) << dis;
  // No constant arithmetic left: 2 * 2 became PushInt 4.
  EXPECT_NE(dis.find("PushInt 4"), std::string::npos) << dis;
  EXPECT_EQ(dis.find("MulI"), std::string::npos) << dis;

  // Raw compile_expr still carries the unfolded arithmetic, proving the
  // fold happened inside EvalCore::compile.
  BcLayout layout = BcLayout::for_module(module);
  BcProgram raw = compile_expr(*module.equations[1].rhs, module, layout);
  EXPECT_NE(raw.disassemble().find("MulI"), std::string::npos)
      << raw.disassemble();
  EXPECT_GT(raw.code.size(), core.programs(1).rhs.code.size());
}

// ---------------------------------------------------------------------------
// Wrapping integer folds (folded and unfolded programs must stay
// bit-identical even on INT64 extremes -- the fold used to evaluate
// with raw signed arithmetic, UB exactly where the VM wraps).
// ---------------------------------------------------------------------------

constexpr int64_t kI64Max = std::numeric_limits<int64_t>::max();
constexpr int64_t kI64Min = std::numeric_limits<int64_t>::min();

/// Build `PushInt lhs; PushInt rhs; op; Halt`, fold a copy, run both
/// through the VM and require identical results.
void expect_fold_matches_vm(BcOp op, int64_t lhs, int64_t rhs) {
  BcProgram program;
  program.code.push_back(make_instr(BcOp::PushInt, 0, lhs));
  program.code.push_back(make_instr(BcOp::PushInt, 0, rhs));
  program.code.push_back(make_instr(op, 0));
  program.code.push_back(make_instr(BcOp::Halt));
  program.max_stack = 2;

  BcProgram folded = program;
  ASSERT_EQ(fold_constants(folded), 2u);
  ASSERT_EQ(folded.code.size(), 2u);
  EXPECT_EQ(folded.code[0].op, BcOp::PushInt);

  EvalCore core;
  EvalScratch scratch;
  EXPECT_EQ(core.run(program, VarFrame{}, scratch).i,
            core.run(folded, VarFrame{}, scratch).i)
      << "op " << static_cast<int>(op) << " on " << lhs << ", " << rhs;
}

TEST(BytecodeFold, IntExtremesFoldExactlyLikeTheVm) {
  expect_fold_matches_vm(BcOp::AddI, kI64Max, 1);
  expect_fold_matches_vm(BcOp::AddI, kI64Min, -1);
  expect_fold_matches_vm(BcOp::SubI, kI64Min, 1);
  expect_fold_matches_vm(BcOp::SubI, kI64Max, -1);
  expect_fold_matches_vm(BcOp::MulI, kI64Max, 2);
  expect_fold_matches_vm(BcOp::MulI, kI64Min, -1);
  expect_fold_matches_vm(BcOp::MulI, kI64Max, kI64Max);
}

TEST(BytecodeFold, NegateAndAbsWrapOnInt64Min) {
  for (BcOp op : {BcOp::NegI, BcOp::AbsI}) {
    BcProgram program;
    program.code.push_back(make_instr(BcOp::PushInt, 0, kI64Min));
    program.code.push_back(make_instr(op, 0));
    program.code.push_back(make_instr(BcOp::Halt));
    program.max_stack = 1;
    BcProgram folded = program;
    ASSERT_EQ(fold_constants(folded), 1u);
    EvalCore core;
    EvalScratch scratch;
    // Two's-complement wrap: both negate and abs of INT64_MIN stay
    // INT64_MIN, in the folder and in the VM alike.
    EXPECT_EQ(core.run(folded, VarFrame{}, scratch).i, kI64Min);
    EXPECT_EQ(core.run(program, VarFrame{}, scratch).i, kI64Min);
  }
}

TEST(BytecodeFold, DivModOfInt64MinByMinusOneAreNotFolded) {
  // The one case integer division overflows; the folder leaves it to
  // the VM, which defines it as a wrapping negate (mod: zero).
  for (BcOp op : {BcOp::DivI, BcOp::ModI}) {
    BcProgram program;
    program.code.push_back(make_instr(BcOp::PushInt, 0, kI64Min));
    program.code.push_back(make_instr(BcOp::PushInt, 0, -1));
    program.code.push_back(make_instr(op, 0));
    program.code.push_back(make_instr(BcOp::Halt));
    program.max_stack = 2;
    EXPECT_EQ(fold_constants(program), 0u);
    EvalCore core;
    EvalScratch scratch;
    EXPECT_EQ(core.run(program, VarFrame{}, scratch).i,
              op == BcOp::DivI ? kI64Min : 0);
  }
}

TEST(BytecodeFold, FloorCeilOutsideInt64StayUnfolded) {
  // A raw double -> int64 cast of NaN or out-of-range values is UB; the
  // fold must not evaluate it at compile time. At run time the VM
  // converts through bc_double_to_int64 (saturating, NaN -> 0), the
  // same defined conversion the tree walk uses. In-range values fold.
  EvalCore core;
  EvalScratch scratch;
  for (double v : {std::nan(""), 1e300, -1e300, 9.3e18, -9.3e18}) {
    for (BcOp op : {BcOp::FloorD, BcOp::CeilD}) {
      BcProgram program;
      program.code.push_back(make_instr(BcOp::PushReal, 0, 0, v));
      program.code.push_back(make_instr(op, 0));
      program.code.push_back(make_instr(BcOp::Halt));
      program.max_stack = 1;
      EXPECT_EQ(fold_constants(program), 0u) << v;
      EXPECT_EQ(program.code[1].op, op) << v;
      int64_t expect = v != v ? 0 : (v < 0 ? kI64Min : kI64Max);
      EXPECT_EQ(core.run(program, VarFrame{}, scratch).i, expect) << v;
    }
  }
  BcProgram program;
  program.code.push_back(make_instr(BcOp::PushReal, 0, 0, 2.5));
  program.code.push_back(make_instr(BcOp::CeilD, 0));
  program.code.push_back(make_instr(BcOp::Halt));
  program.max_stack = 1;
  EXPECT_EQ(fold_constants(program), 1u);
  EXPECT_EQ(program.code[0].op, BcOp::PushInt);
  EXPECT_EQ(program.code[0].imm, 3);
}

// ---------------------------------------------------------------------------
// Superinstruction fusion (applied by EvalCore::compile after folding).
// ---------------------------------------------------------------------------

TEST(BytecodeFuse, StencilSubscriptsFuseToLoadArrayVars) {
  // x[I - 1] compiles as LoadVar I; PushInt 1; SubI; LoadArrayD: four
  // dispatches. Fusion first collapses the index arithmetic into
  // LoadVarAddImm, then folds the whole subscript chain into a single
  // LoadArrayVars superinstruction.
  auto result = compile_or_die(R"(
M: module (x: array[I] of real; n: int): [y: array[I] of real];
type I = 0 .. n;
define
  y[I] = if I = 0 then x[I] else x[I - 1] + x[I + 1];
end M;
)");
  EvalCore core;
  core.compile(*result.primary->module);
  std::string dis = core.programs(0).rhs.disassemble();
  EXPECT_NE(dis.find("LoadArrayVarsD"), std::string::npos) << dis;
  EXPECT_NE(dis.find("[I-1]"), std::string::npos) << dis;
  EXPECT_NE(dis.find("[I+1]"), std::string::npos) << dis;
  // The boundary guard's compare feeds straight into the branch.
  EXPECT_NE(dis.find("CmpEqIJf"), std::string::npos) << dis;
  // Nothing of the unfused sequences survives.
  EXPECT_EQ(dis.find("SubI"), std::string::npos) << dis;
  EXPECT_EQ(dis.find("JumpIfFalse"), std::string::npos) << dis;
  EXPECT_GT(core.fused_instructions(), 0u);
}

TEST(BytecodeFuse, GaussSeidelRecurrenceShrinksSubstantially) {
  auto result = compile_or_die(kGaussSeidelSource);
  const CheckedModule& module = *result.primary->module;
  BcLayout layout = BcLayout::for_module(module);
  BcProgram raw = compile_expr(*module.equations[2].rhs, module, layout);
  BcProgram fused = compile_expr(*module.equations[2].rhs, module, layout);
  fold_constants(fused);
  size_t removed = fuse_superinstructions(fused);
  // Each of the four 3-subscript stencil reads alone fuses 4+ instrs
  // into one; require a sizeable overall reduction.
  EXPECT_GE(removed, 12u) << fused.disassemble();
  EXPECT_LT(fused.code.size(), raw.code.size() - removed + 2);
  // The fused program still evaluates the same (engine agreement over
  // the whole module is covered by the differential tests).
  std::string dis = fused.disassemble();
  EXPECT_NE(dis.find("LoadArrayVarsD"), std::string::npos) << dis;
}

TEST(BytecodeFuse, SpansAJumpLandsInsideAreNotFused) {
  // A jump targeting the PushInt inside LoadVar;PushInt;AddI must keep
  // the triple unfused (fusing would delete the jump target).
  BcProgram program;
  program.var_names.push_back("I");
  program.code.push_back(make_instr(BcOp::PushInt, 0, 1));
  program.code.push_back(make_instr(BcOp::JumpIfFalse, 3));
  program.code.push_back(make_instr(BcOp::LoadVar, 0));
  program.code.push_back(make_instr(BcOp::PushInt, 0, 5));
  program.code.push_back(make_instr(BcOp::AddI));
  program.code.push_back(make_instr(BcOp::Halt));
  program.max_stack = 2;
  BcProgram copy = program;
  // The JumpIfFalse's own pair (PushInt cond; JumpIfFalse) is not an
  // int compare, so only the LoadVar triple is a candidate -- and it
  // must be skipped.
  EXPECT_EQ(fuse_superinstructions(copy), 0u);
}

TEST(BytecodeFuse, FusedBranchTargetsAreRemappedAcrossSplices) {
  // if I = 0 then 1 else (2 + I): the compare+branch fuses and every
  // jump target must survive the shrinking program. Execute both
  // versions at I = 0 and I = 7 and compare.
  auto result = compile_or_die(R"(
M: module (k: int): [a: array[I] of int];
type I = 0 .. k;
define
  a[I] = if I = 0 then 1 else 2 + I;
end M;
)");
  const CheckedModule& module = *result.primary->module;
  BcLayout layout = BcLayout::for_module(module);
  BcProgram raw = compile_expr(*module.equations[0].rhs, module, layout);
  BcProgram fused = raw;
  fold_constants(fused);
  EXPECT_GT(fuse_superinstructions(fused), 0u);
  EvalCore core;
  EvalScratch scratch;
  for (int64_t i : {0, 7}) {
    VarFrame frame;
    frame.vars.emplace_back("I", i);
    EXPECT_EQ(core.run(raw, frame, scratch).i, core.run(fused, frame, scratch).i) << i;
  }
}

TEST(BytecodeFuse, WholeCorpusFusionIsIdempotentAndNeverGrows) {
  for (const PaperModule& paper : paper_corpus()) {
    auto result = compile_or_die(paper.source);
    const CheckedModule& module = *result.primary->module;
    BcLayout layout = BcLayout::for_module(module);
    for (const CheckedEquation& eq : module.equations) {
      BcProgram program = compile_expr(*eq.rhs, module, layout);
      fold_constants(program);
      size_t before = program.code.size();
      size_t removed = fuse_superinstructions(program);
      EXPECT_EQ(program.code.size(), before - removed) << paper.name;
      EXPECT_EQ(fuse_superinstructions(program), 0u) << paper.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Unbounded variable frames and the two dispatch strategies.
// ---------------------------------------------------------------------------

constexpr const char* kDeepNestSource = R"(
Deep: module (x: array[A,B,C,D,E,F,G,H,P] of real; n: int):
  [y: array[A,B,C,D,E,F,G,H,P] of real];
type A, B, C, D, E, F, G, H, P = 0 .. n;
define
  y[A,B,C,D,E,F,G,H,P] = x[A,B,C,D,E,F,G,H,P] * 2.0
                         + x[A,B,C,D,E,F,G,H,0];
end Deep;
)";

TEST(Bytecode, DeepLoopNestsRunOnTheBytecodeEngine) {
  // Nine index variables: beyond the old fixed vars[8] frame, which
  // made run() throw and the wavefront runner silently tree-walk.
  auto result = compile_or_die(kDeepNestSource);
  const CheckedModule& module = *result.primary->module;
  EvalCore core;
  core.compile(module);
  EXPECT_GT(core.programs(0).rhs.var_names.size(), 8u);
  expect_engines_agree(kDeepNestSource, IntEnv{{"n", 1}});
}

TEST(Bytecode, ThreadedAndSwitchDispatchAgreeBitExactly) {
  // The computed-goto loop and the portable switch loop must execute
  // identical operation sequences; compare every value they produce on
  // the corpus stencil (deeper coverage in the differential fuzz).
  auto result = compile_or_die(kGaussSeidelSource);
  const CompiledModule& stage = *result.primary;
  IntEnv params{{"M", 6}, {"maxK", 5}};
  auto run_with = [&](BcDispatch dispatch) {
    InterpreterOptions options;
    options.dispatch = dispatch;
    Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                       params);
    auto span = interp.array("InitialA").raw();
    for (size_t i = 0; i < span.size(); ++i)
      span[i] = std::cos(static_cast<double>(i) * 0.17) * 2.0;
    interp.run();
    auto out = interp.array("newA").raw();
    return std::vector<double>(out.begin(), out.end());
  };
  auto threaded = run_with(BcDispatch::Threaded);
  auto switched = run_with(BcDispatch::Switch);
  ASSERT_EQ(threaded.size(), switched.size());
  for (size_t i = 0; i < threaded.size(); ++i)
    EXPECT_EQ(threaded[i], switched[i]) << i;
}

TEST(Bytecode, ThreadedAvailabilityMatchesTheBuildToggle) {
#if PS_BYTECODE_THREADED && (defined(__GNUC__) || defined(__clang__))
  EXPECT_TRUE(EvalCore::threaded_dispatch_available());
#else
  EXPECT_FALSE(EvalCore::threaded_dispatch_available());
#endif
}

TEST(Bytecode, CollapseAblationAgrees) {
  CompileOptions copts;
  copts.apply_hyperplane = true;
  auto result = compile_or_die(kGaussSeidelSource, copts);
  ASSERT_TRUE(result.transformed.has_value());
  const CompiledModule& stage = *result.transformed;
  ThreadPool pool(6);
  IntEnv params{{"M", 8}, {"maxK", 6}};

  auto run_with = [&](bool collapse) {
    InterpreterOptions options;
    options.pool = &pool;
    options.collapse_doall = collapse;
    Interpreter interp(*stage.module, *stage.graph,
                       stage.schedule.flowchart, params, {}, options);
    auto span = interp.array("InitialA").raw();
    for (size_t i = 0; i < span.size(); ++i)
      span[i] = static_cast<double>(i % 13);
    interp.run();
    double sum = 0;
    for (double v : interp.array("newA").raw()) sum += v;
    return sum;
  };
  EXPECT_DOUBLE_EQ(run_with(true), run_with(false));
}

// ---------------------------------------------------------------------------
// Scalar quickening and strength-reduced array addressing
// ---------------------------------------------------------------------------

/// The Gauss-Seidel stencil with both parameters bound: quickening must
/// erase every scalar load and collapse the boundary guards.
TEST(BytecodeQuicken, BoundInputScalarsBecomeImmediates) {
  auto result = compile_or_die(kGaussSeidelSource);
  const CheckedModule& module = *result.primary->module;
  EvalCore core;
  core.compile(module);
  for (size_t i = 0; i < module.data.size(); ++i) {
    if (module.data[i].name == "M") core.set_scalar(i, 6, 6.0);
    if (module.data[i].name == "maxK") core.set_scalar(i, 5, 5.0);
  }
  size_t before = core.total_instructions();
  size_t rewritten = core.quicken_scalars();
  EXPECT_GT(rewritten, 0u);
  EXPECT_GT(core.quickened_instructions(), 0u);
  // Re-folding `M + 1` and friends shrinks the programs overall.
  EXPECT_LT(core.total_instructions(), before);
  for (size_t eq = 0; eq < module.equations.size(); ++eq) {
    std::string dis = core.programs(eq).rhs.disassemble();
    EXPECT_EQ(dis.find("LoadScalar"), std::string::npos) << dis;
  }
}

TEST(BytecodeQuicken, UnboundAndEquationTargetScalarsKeepTheirLoads) {
  // `k` is bound and quickenable; `y` is an equation target (written
  // mid-run via set_scalar) and must keep its slot load even though a
  // value was seeded; `u` stays unbound and must keep its load too.
  auto result = compile_or_die(R"(
M: module (k: int; u: int): [y: int; z: int];
define
  y = k + 1;
  z = y + u;
end M;
)");
  const CheckedModule& module = *result.primary->module;
  EvalCore core;
  core.compile(module);
  for (size_t i = 0; i < module.data.size(); ++i) {
    if (module.data[i].name == "k") core.set_scalar(i, 41, 41.0);
    if (module.data[i].name == "y") core.set_scalar(i, 0, 0.0);
  }
  core.quicken_scalars();
  // y = k + 1 folded all the way to a constant...
  std::string y_dis = core.programs(0).rhs.disassemble();
  EXPECT_NE(y_dis.find("PushInt 42"), std::string::npos) << y_dis;
  // ...but z still loads both y (target) and u (unbound).
  std::string z_dis = core.programs(1).rhs.disassemble();
  EXPECT_NE(z_dis.find("LoadScalar"), std::string::npos) << z_dis;
  size_t loads = 0;
  for (const BcInstr& instr : core.programs(1).rhs.code)
    if (instr.op == BcOp::LoadScalarI) ++loads;
  EXPECT_EQ(loads, 2u);
}

TEST(BytecodeQuicken, QuickenedRunMatchesUnquickenedBitForBit) {
  auto result = compile_or_die(kGaussSeidelSource);
  const CheckedModule& module = *result.primary->module;
  IntEnv params{{"M", 5}, {"maxK", 4}};
  std::map<std::string, NdArray, std::less<>> arrays;
  for (const DataItem& d : module.data) {
    if (d.is_scalar()) continue;
    std::vector<int64_t> lo, hi, win;
    for (const Type* dim : d.dims) {
      lo.push_back(*eval_const_int(*dim->lo, params));
      hi.push_back(*eval_const_int(*dim->hi, params));
      win.push_back(hi.back() - lo.back() + 1);
    }
    arrays.emplace(d.name,
                   NdArray(std::move(lo), std::move(hi), std::move(win)));
  }
  for (auto& [name, arr] : arrays) {
    auto span = arr.raw();
    for (size_t i = 0; i < span.size(); ++i)
      span[i] = static_cast<double>(i % 17) * 0.0625;
  }
  auto make_core = [&](bool quicken) {
    auto core = std::make_unique<EvalCore>();
    core->compile(module);
    core->bind_arrays(arrays);
    for (size_t i = 0; i < module.data.size(); ++i) {
      auto it = params.find(module.data[i].name);
      if (it != params.end())
        core->set_scalar(i, it->second, static_cast<double>(it->second));
    }
    if (quicken) core->quicken_scalars();
    return core;
  };
  auto plain = make_core(false);
  auto quick = make_core(true);
  EvalScratch scratch;
  for (int64_t k = 2; k <= 4; ++k)
    for (int64_t i = 0; i <= 6; ++i)
      for (int64_t j = 0; j <= 6; ++j) {
        VarFrame frame;
        frame.vars.emplace_back("K", k);
        frame.vars.emplace_back("I", i);
        frame.vars.emplace_back("J", j);
        EvalSlot a = plain->run(plain->programs(2).rhs, frame, scratch);
        EvalSlot b = quick->run(quick->programs(2).rhs, frame, scratch);
        EXPECT_EQ(std::bit_cast<uint64_t>(a.d), std::bit_cast<uint64_t>(b.d))
            << "K=" << k << " I=" << i << " J=" << j;
      }
}

TEST(BytecodeAddressing, ReducedAndGenericPathsAgreeOnWindowedArrays) {
  // A windowed array must keep the modulo path: the reduced-addressing
  // toggle only short-circuits arrays whose windows equal their
  // extents, so windowed reads are identical either way.
  auto result = compile_or_die(kRelaxationSource);
  const CheckedModule& module = *result.primary->module;
  IntEnv params{{"M", 4}, {"maxK", 6}};
  std::map<std::string, NdArray, std::less<>> arrays;
  for (const DataItem& d : module.data) {
    if (d.is_scalar()) continue;
    std::vector<int64_t> lo, hi, win;
    for (const Type* dim : d.dims) {
      lo.push_back(*eval_const_int(*dim->lo, params));
      hi.push_back(*eval_const_int(*dim->hi, params));
      win.push_back(hi.back() - lo.back() + 1);
    }
    // Window the A array's K dimension to 2 slices (the paper's
    // virtual dimension); leave the others fully allocated.
    if (d.name == "A") win[0] = 2;
    arrays.emplace(d.name,
                   NdArray(std::move(lo), std::move(hi), std::move(win)));
  }
  ASSERT_TRUE(arrays.at("A").windowed());
  for (auto& [name, arr] : arrays) {
    auto span = arr.raw();
    for (size_t i = 0; i < span.size(); ++i)
      span[i] = static_cast<double>(i % 11) * 0.25;
  }
  EvalCore core;
  core.compile(module);
  core.bind_arrays(arrays);
  for (size_t i = 0; i < module.data.size(); ++i) {
    auto it = params.find(module.data[i].name);
    if (it != params.end())
      core.set_scalar(i, it->second, static_cast<double>(it->second));
  }
  // The stencil RHS reads the windowed A and, under the guard, the
  // fully allocated InitialA -- both paths in one program.
  EvalScratch scratch;
  for (int64_t k = 2; k <= 6; ++k)
    for (int64_t i = 0; i <= 5; ++i)
      for (int64_t j = 0; j <= 5; ++j) {
        VarFrame frame;
        frame.vars.emplace_back("K", k);
        frame.vars.emplace_back("I", i);
        frame.vars.emplace_back("J", j);
        core.set_reduced_addressing(true);
        EvalSlot fast = core.run(core.programs(2).rhs, frame, scratch);
        core.set_reduced_addressing(false);
        EvalSlot generic = core.run(core.programs(2).rhs, frame, scratch);
        EXPECT_EQ(std::bit_cast<uint64_t>(fast.d),
                  std::bit_cast<uint64_t>(generic.d))
            << "K=" << k << " I=" << i << " J=" << j;
      }
}

TEST(BytecodeAddressing, ReducedPathStillBoundsChecks) {
  // offset_unwindowed fuses the bounds check into the offset pass; an
  // out-of-range fused read must still throw, not read wild memory.
  NdArray arr = NdArray::full({0, 0}, {3, 3});
  size_t off = 0;
  EXPECT_TRUE(arr.offset_unwindowed(std::vector<int64_t>{3, 3}, off));
  EXPECT_EQ(off, 15u);
  EXPECT_FALSE(arr.offset_unwindowed(std::vector<int64_t>{4, 0}, off));
  EXPECT_FALSE(arr.offset_unwindowed(std::vector<int64_t>{0, -1}, off));
  // Extreme subscripts (bytecode arithmetic wraps, so any int64 can
  // reach a read): must reject cleanly, never signed-overflow the
  // relative offset into a bounds-check bypass.
  EXPECT_FALSE(arr.offset_unwindowed(
      std::vector<int64_t>{std::numeric_limits<int64_t>::min(), 0}, off));
  EXPECT_FALSE(arr.offset_unwindowed(
      std::vector<int64_t>{std::numeric_limits<int64_t>::max(), 0}, off));
  NdArray shifted = NdArray::full({2, 2}, {5, 5});
  EXPECT_FALSE(shifted.offset_unwindowed(
      std::vector<int64_t>{std::numeric_limits<int64_t>::min() + 1, 2}, off));
  EXPECT_TRUE(shifted.offset_unwindowed(std::vector<int64_t>{2, 2}, off));
  EXPECT_EQ(off, 0u);
  // Rank mismatch is a clean rejection too.
  EXPECT_FALSE(arr.offset_unwindowed(std::vector<int64_t>{1}, off));

  BcProgram program;
  program.code.push_back(make_instr(BcOp::LoadVar, 0));
  program.var_names.push_back("i");
  BcInstr read{BcOp::LoadArrayVarsI, 0, 1, 0, 0};
  read.imm = 0;  // subscript = var 0 + offset 0
  // Build via the fuser's packing convention: rank 1, var 0, offset 0.
  program.code.clear();
  program.code.push_back(read);
  program.code.push_back(make_instr(BcOp::Halt));
  program.max_stack = 1;

  std::map<std::string, NdArray, std::less<>> arrays;
  auto result = compile_or_die(R"(
M: module (x: array[I] of int; n: int): [y: array[I] of int];
type I = 0 .. n;
define
  y[I] = x[I];
end M;
)");
  const CheckedModule& module = *result.primary->module;
  EvalCore core;
  core.compile(module);
  IntEnv params{{"n", 3}};
  arrays.emplace("x", NdArray::full({0}, {3}));
  arrays.emplace("y", NdArray::full({0}, {3}));
  core.bind_arrays(arrays);
  EvalScratch scratch;
  VarFrame ok_frame;
  ok_frame.vars.emplace_back("i", 2);
  EXPECT_NO_THROW((void)core.run(program, ok_frame, scratch));
  VarFrame bad_frame;
  bad_frame.vars.emplace_back("i", 7);
  EXPECT_THROW((void)core.run(program, bad_frame, scratch),
               std::runtime_error);
}

}  // namespace
}  // namespace ps
