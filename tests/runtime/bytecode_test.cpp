#include "runtime/bytecode.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/interpreter.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

TEST(Bytecode, LayoutAssignsDenseSlots) {
  auto result = compile_or_die(kRelaxationSource);
  BcLayout layout = BcLayout::for_module(*result.primary->module);
  // InitialA, newA, A are arrays; M, maxK scalars.
  EXPECT_EQ(layout.array_count, 3);
  EXPECT_EQ(layout.scalar_count, 2);
  size_t arrays = 0;
  size_t scalars = 0;
  for (size_t i = 0; i < layout.array_slot.size(); ++i) {
    if (layout.array_slot[i] >= 0) ++arrays;
    if (layout.scalar_slot[i] >= 0) ++scalars;
    EXPECT_TRUE((layout.array_slot[i] >= 0) != (layout.scalar_slot[i] >= 0));
  }
  EXPECT_EQ(arrays, 3u);
  EXPECT_EQ(scalars, 2u);
}

TEST(Bytecode, CompilesRelaxationEquations) {
  auto result = compile_or_die(kRelaxationSource);
  const CheckedModule& module = *result.primary->module;
  BcLayout layout = BcLayout::for_module(module);
  for (const CheckedEquation& eq : module.equations) {
    BcProgram program = compile_expr(*eq.rhs, module, layout);
    EXPECT_FALSE(program.code.empty());
    EXPECT_EQ(program.code.back().op, BcOp::Halt);
    EXPECT_TRUE(program.result_real);  // all equations produce reals
    EXPECT_GT(program.max_stack, 0u);
    // The disassembly round-trips every instruction without crashing.
    EXPECT_FALSE(program.disassemble().empty());
  }
}

TEST(Bytecode, Eq3UsesTypedStencilOps) {
  auto result = compile_or_die(kRelaxationSource);
  const CheckedModule& module = *result.primary->module;
  BcLayout layout = BcLayout::for_module(module);
  BcProgram program =
      compile_expr(*module.equations[2].rhs, module, layout);
  std::string dis = program.disassemble();
  EXPECT_NE(dis.find("LoadArrayD"), std::string::npos);
  EXPECT_NE(dis.find("AddD"), std::string::npos);   // stencil sum
  EXPECT_NE(dis.find("CmpEqI"), std::string::npos); // boundary guards
  EXPECT_NE(dis.find("JumpIfFalse"), std::string::npos);
  // PS '/' divides in double even with the integer literal 4.
  EXPECT_NE(dis.find("DivD"), std::string::npos);
  EXPECT_NE(dis.find("IntToReal"), std::string::npos);
}

/// Run a module under both engines and compare all outputs bit-for-bit.
void expect_engines_agree(const char* source, IntEnv params,
                          std::map<std::string, double> reals = {}) {
  CompileOptions options;
  options.apply_hyperplane = true;
  auto result = compile_or_die(source, options);
  std::vector<const CompiledModule*> stages{result.primary.operator->()};
  if (result.transformed) stages.push_back(result.transformed.operator->());

  for (const CompiledModule* stage : stages) {
    InterpreterOptions tree;
    tree.engine = EvalEngine::TreeWalk;
    InterpreterOptions bc;
    bc.engine = EvalEngine::Bytecode;
    Interpreter a(*stage->module, *stage->graph, stage->schedule.flowchart,
                  params, reals, tree);
    Interpreter b(*stage->module, *stage->graph, stage->schedule.flowchart,
                  params, reals, bc);
    for (auto* interp : {&a, &b}) {
      for (const DataItem& item : stage->module->data) {
        if (item.cls != DataClass::Input || item.is_scalar()) continue;
        auto span = interp->array(item.name).raw();
        for (size_t i = 0; i < span.size(); ++i)
          span[i] = std::cos(static_cast<double>(i) * 0.11) * 3.0;
      }
    }
    a.run();
    b.run();
    for (const DataItem& item : stage->module->data) {
      if (item.is_scalar() || item.cls == DataClass::Input) continue;
      auto sa = a.array(item.name).raw();
      auto sb = b.array(item.name).raw();
      ASSERT_EQ(sa.size(), sb.size());
      for (size_t i = 0; i < sa.size(); ++i)
        ASSERT_EQ(sa[i], sb[i])
            << stage->module->name << " " << item.name << "[" << i << "]";
    }
  }
}

TEST(Bytecode, EnginesAgreeOnRelaxation) {
  expect_engines_agree(kRelaxationSource, IntEnv{{"M", 6}, {"maxK", 5}});
}

TEST(Bytecode, EnginesAgreeOnGaussSeidelAndItsTransform) {
  expect_engines_agree(kGaussSeidelSource, IntEnv{{"M", 6}, {"maxK", 5}});
}

TEST(Bytecode, EnginesAgreeOnHeat1d) {
  expect_engines_agree(kHeat1dSource, IntEnv{{"N", 10}, {"steps", 6}},
                       {{"r", 0.21}});
}

TEST(Bytecode, EnginesAgreeOnChain) {
  expect_engines_agree(kPointwiseChainSource, IntEnv{{"N", 16}});
}

TEST(Bytecode, ShortCircuitSemantics) {
  // The right operand of 'and'/'or' must not be evaluated when the left
  // decides: an out-of-bounds read guards behind I > 0.
  auto result = compile_or_die(R"(
M: module (x: array[I] of real; n: int): [y: array[I] of real];
type I = 0 .. n;
define
  y[I] = if I > 0 and x[I - 1] > 0.0 then 1.0
         else if I = n or x[I + 1] > 0.5 then 2.0 else 0.0;
end M;
)");
  const CompiledModule& stage = *result.primary;
  InterpreterOptions options;
  options.engine = EvalEngine::Bytecode;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"n", 4}}, {}, options);
  auto span = interp.array("x").raw();
  for (size_t i = 0; i < span.size(); ++i) span[i] = 1.0;
  // If short-circuiting were broken, I = 0 would read x[-1] and throw.
  EXPECT_NO_THROW(interp.run());
  EXPECT_DOUBLE_EQ(interp.array("y").at(std::vector<int64_t>{0}), 2.0);
  EXPECT_DOUBLE_EQ(interp.array("y").at(std::vector<int64_t>{3}), 1.0);
}

TEST(Bytecode, IntegerArithmetic) {
  auto result = compile_or_die(R"(
M: module (k: int): [a: int; b: int; c: int];
define
  a = (k div 3) * 3 + (k mod 3);
  b = min(k, 10) + max(k, 10) - abs(0 - k);
  c = floor(2.7) + ceil(2.1);
end M;
)");
  const CompiledModule& stage = *result.primary;
  InterpreterOptions options;
  options.engine = EvalEngine::Bytecode;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"k", 17}}, {}, options);
  interp.run();
  EXPECT_DOUBLE_EQ(interp.scalar("a"), 17.0);
  EXPECT_DOUBLE_EQ(interp.scalar("b"), 10.0 + 17.0 - 17.0);
  EXPECT_DOUBLE_EQ(interp.scalar("c"), 2.0 + 3.0);
}

TEST(Bytecode, CollapseAblationAgrees) {
  CompileOptions copts;
  copts.apply_hyperplane = true;
  auto result = compile_or_die(kGaussSeidelSource, copts);
  ASSERT_TRUE(result.transformed.has_value());
  const CompiledModule& stage = *result.transformed;
  ThreadPool pool(6);
  IntEnv params{{"M", 8}, {"maxK", 6}};

  auto run_with = [&](bool collapse) {
    InterpreterOptions options;
    options.pool = &pool;
    options.collapse_doall = collapse;
    Interpreter interp(*stage.module, *stage.graph,
                       stage.schedule.flowchart, params, {}, options);
    auto span = interp.array("InitialA").raw();
    for (size_t i = 0; i < span.size(); ++i)
      span[i] = static_cast<double>(i % 13);
    interp.run();
    double sum = 0;
    for (double v : interp.array("newA").raw()) sum += v;
    return sum;
  };
  EXPECT_DOUBLE_EQ(run_with(true), run_with(false));
}

}  // namespace
}  // namespace ps
