#include "runtime/interpreter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

/// Hand-written Jacobi reference for the Figure 1 module.
std::vector<std::vector<double>> reference_jacobi(
    std::vector<std::vector<double>> grid, int64_t sweeps) {
  size_t n = grid.size();
  for (int64_t k = 2; k <= sweeps; ++k) {
    auto prev = grid;
    for (size_t i = 1; i + 1 < n; ++i)
      for (size_t j = 1; j + 1 < n; ++j)
        grid[i][j] = (prev[i][j - 1] + prev[i - 1][j] + prev[i][j + 1] +
                      prev[i + 1][j]) /
                     4.0;
  }
  return grid;
}

TEST(Interpreter, JacobiMatchesReference) {
  auto result = compile_or_die(kRelaxationSource);
  const CompiledModule& stage = *result.primary;
  int64_t m = 6;
  int64_t sweeps = 5;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"M", m}, {"maxK", sweeps}});

  std::vector<std::vector<double>> grid(
      static_cast<size_t>(m + 2), std::vector<double>(static_cast<size_t>(m + 2)));
  NdArray& in = interp.array("InitialA");
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j) {
      double v = std::cos(static_cast<double>(i * 3 + j));
      grid[static_cast<size_t>(i)][static_cast<size_t>(j)] = v;
      in.set(std::vector<int64_t>{i, j}, v);
    }

  interp.run();
  auto expected = reference_jacobi(grid, sweeps);
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j)
      EXPECT_NEAR(interp.array("newA").at(std::vector<int64_t>{i, j}),
                  expected[static_cast<size_t>(i)][static_cast<size_t>(j)],
                  1e-12)
          << i << "," << j;
}

TEST(Interpreter, ParallelMatchesSequential) {
  auto result = compile_or_die(kRelaxationSource);
  const CompiledModule& stage = *result.primary;
  IntEnv params{{"M", 16}, {"maxK", 6}};

  ThreadPool pool(8);
  InterpreterOptions par;
  par.pool = &pool;
  Interpreter parallel(*stage.module, *stage.graph, stage.schedule.flowchart,
                       params, {}, par);
  Interpreter sequential(*stage.module, *stage.graph,
                         stage.schedule.flowchart, params);

  for (auto* interp : {&parallel, &sequential}) {
    NdArray& in = interp->array("InitialA");
    for (int64_t i = 0; i <= 17; ++i)
      for (int64_t j = 0; j <= 17; ++j)
        in.set(std::vector<int64_t>{i, j},
               static_cast<double>((i * 31 + j * 17) % 23));
  }
  parallel.run();
  sequential.run();
  for (int64_t i = 0; i <= 17; ++i)
    for (int64_t j = 0; j <= 17; ++j) {
      std::vector<int64_t> idx{i, j};
      EXPECT_DOUBLE_EQ(parallel.array("newA").at(idx),
                       sequential.array("newA").at(idx));
    }
}

TEST(Interpreter, HonorDoallFalseIsSequentialBaseline) {
  auto result = compile_or_die(kRelaxationSource);
  const CompiledModule& stage = *result.primary;
  ThreadPool pool(4);
  InterpreterOptions opt;
  opt.pool = &pool;
  opt.honor_doall = false;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"M", 4}, {"maxK", 3}}, {}, opt);
  interp.array("InitialA").fill(1.0);
  interp.run();
  // All-ones grid is a fixed point of the interior average.
  EXPECT_DOUBLE_EQ(interp.array("newA").at(std::vector<int64_t>{2, 2}), 1.0);
}

TEST(Interpreter, ScalarEquationsAndIntrinsics) {
  auto result = compile_or_die(R"(
M: module (x: real; k: int): [y: real; j: int; b: bool];
define
  y = sqrt(abs(x)) + max(x, 2.0) * 2.0;
  j = min(k, 3) + (k div 2) - (k mod 3) + floor(1.9) + ceil(0.1);
  b = (x < 0.0) or (k = 7 and true);
end M;
)");
  const CompiledModule& stage = *result.primary;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"k", 7}}, {{"x", -4.0}});
  interp.run();
  EXPECT_DOUBLE_EQ(interp.scalar("y"), 2.0 + 4.0);
  EXPECT_DOUBLE_EQ(interp.scalar("j"), 3 + 3 - 1 + 1 + 1);
  EXPECT_DOUBLE_EQ(interp.scalar("b"), 1.0);
}

TEST(Interpreter, EnumsAndIntArrays) {
  auto result = compile_or_die(R"(
M: module (n: int): [y: array[I] of int];
type I = 0 .. n; Color = (red, green, blue);
var c: Color;
define
  c = blue;
  y[I] = if c = blue then I * 2 else 0;
end M;
)");
  const CompiledModule& stage = *result.primary;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"n", 4}});
  interp.run();
  for (int64_t i = 0; i <= 4; ++i)
    EXPECT_DOUBLE_EQ(interp.array("y").at(std::vector<int64_t>{i}),
                     static_cast<double>(i * 2));
}

TEST(Interpreter, MissingScalarInputThrows) {
  auto result = compile_or_die(kRelaxationSource);
  const CompiledModule& stage = *result.primary;
  EXPECT_THROW(Interpreter(*stage.module, *stage.graph,
                           stage.schedule.flowchart, IntEnv{{"M", 4}}),
               std::runtime_error);
}

TEST(Interpreter, ResetAllowsRerun) {
  auto result = compile_or_die(kHeat1dSource);
  const CompiledModule& stage = *result.primary;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"N", 8}, {"steps", 4}}, {{"r", 0.25}});
  NdArray& in = interp.array("u0");
  for (int64_t x = 0; x <= 9; ++x)
    in.set(std::vector<int64_t>{x}, x == 5 ? 100.0 : 0.0);
  interp.run();
  double first = interp.array("uOut").at(std::vector<int64_t>{5});
  interp.reset();
  interp.run();
  EXPECT_DOUBLE_EQ(interp.array("uOut").at(std::vector<int64_t>{5}), first);
  EXPECT_LT(first, 100.0);  // heat spread out
  EXPECT_GT(first, 0.0);
}

TEST(Interpreter, Heat1dConservesHeatAwayFromBoundary) {
  auto result = compile_or_die(kHeat1dSource);
  const CompiledModule& stage = *result.primary;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     IntEnv{{"N", 20}, {"steps", 3}}, {{"r", 0.2}});
  NdArray& in = interp.array("u0");
  for (int64_t x = 0; x <= 21; ++x)
    in.set(std::vector<int64_t>{x}, x == 10 ? 60.0 : 0.0);
  interp.run();
  double total = 0;
  for (int64_t x = 1; x <= 20; ++x)
    total += interp.array("uOut").at(std::vector<int64_t>{x});
  EXPECT_NEAR(total, 60.0, 1e-9);  // diffusion conserves the interior sum
}

}  // namespace
}  // namespace ps
