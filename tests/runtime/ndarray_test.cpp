#include "runtime/ndarray.hpp"

#include <gtest/gtest.h>

namespace ps {
namespace {

TEST(NdArray, FullAllocationRoundTrip) {
  NdArray a = NdArray::full({0, 0}, {3, 4});
  EXPECT_EQ(a.rank(), 2u);
  EXPECT_EQ(a.allocation(), 20u);
  EXPECT_EQ(a.logical_size(), 20u);
  EXPECT_FALSE(a.windowed());
  double v = 0;
  for (int64_t i = 0; i <= 3; ++i)
    for (int64_t j = 0; j <= 4; ++j)
      a.set(std::vector<int64_t>{i, j}, v++);
  v = 0;
  for (int64_t i = 0; i <= 3; ++i)
    for (int64_t j = 0; j <= 4; ++j)
      EXPECT_EQ(a.at(std::vector<int64_t>{i, j}), v++);
}

TEST(NdArray, NonZeroLowerBounds) {
  NdArray a = NdArray::full({1, -2}, {3, 2});
  EXPECT_EQ(a.extent(0), 3);
  EXPECT_EQ(a.extent(1), 5);
  a.set(std::vector<int64_t>{1, -2}, 7.0);
  a.set(std::vector<int64_t>{3, 2}, 9.0);
  EXPECT_EQ(a.at(std::vector<int64_t>{1, -2}), 7.0);
  EXPECT_EQ(a.at(std::vector<int64_t>{3, 2}), 9.0);
}

TEST(NdArray, WindowedDimensionSharesSlices) {
  // Window 2 over a 1..5 dimension: slices k and k-2 share storage.
  NdArray a({1, 0}, {5, 3}, {2, 4});
  EXPECT_TRUE(a.windowed());
  EXPECT_EQ(a.allocation(), 2u * 4);
  EXPECT_EQ(a.logical_size(), 5u * 4);
  a.set(std::vector<int64_t>{1, 0}, 1.0);
  a.set(std::vector<int64_t>{2, 0}, 2.0);
  EXPECT_EQ(a.at(std::vector<int64_t>{1, 0}), 1.0);
  // Writing slice 3 overwrites slice 1's storage.
  a.set(std::vector<int64_t>{3, 0}, 3.0);
  EXPECT_EQ(a.at(std::vector<int64_t>{1, 0}), 3.0);
  EXPECT_EQ(a.at(std::vector<int64_t>{2, 0}), 2.0);
}

TEST(NdArray, WindowLargerThanExtentClamps) {
  NdArray a({0}, {2}, {10});
  EXPECT_FALSE(a.windowed());
  EXPECT_EQ(a.allocation(), 3u);
}

TEST(NdArray, InBounds) {
  NdArray a = NdArray::full({0}, {4});
  EXPECT_TRUE(a.in_bounds(std::vector<int64_t>{0}));
  EXPECT_TRUE(a.in_bounds(std::vector<int64_t>{4}));
  EXPECT_FALSE(a.in_bounds(std::vector<int64_t>{5}));
  EXPECT_FALSE(a.in_bounds(std::vector<int64_t>{-1}));
  EXPECT_FALSE(a.in_bounds(std::vector<int64_t>{0, 0}));
}

TEST(NdArray, FillAndRaw) {
  NdArray a = NdArray::full({0}, {9});
  a.fill(2.5);
  for (double v : a.raw()) EXPECT_EQ(v, 2.5);
}

TEST(NdArray, ScalarRankZero) {
  NdArray a = NdArray::full({}, {});
  EXPECT_EQ(a.rank(), 0u);
  EXPECT_EQ(a.allocation(), 1u);
  a.set(std::vector<int64_t>{}, 42.0);
  EXPECT_EQ(a.at(std::vector<int64_t>{}), 42.0);
}

TEST(NdArray, RankMismatchThrows) {
  EXPECT_THROW(NdArray({0}, {1, 2}, {1}), std::invalid_argument);
}

}  // namespace
}  // namespace ps
