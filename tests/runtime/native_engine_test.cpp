// The native execution tier: JIT-compiled kernels must be bit-exact
// against the bytecode VM, fall back to bytecode automatically (and
// observably) when `cc` is unusable, skip the compiler entirely on a
// warm shared-object cache, and never lose the backing .so to cache
// eviction while a live runner still has it dlopen-ed.

#include "runtime/native_engine.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/wavefront.hpp"
#include "service/artifact_cache.hpp"

namespace fs = std::filesystem;

namespace ps {
namespace {

using testutil::compile_or_die;

CompileResult compile_exact_gs() {
  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  return compile_or_die(kGaussSeidelSource, options);
}

void fill_input(NdArray& in, int64_t m) {
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j)
      in.set(std::vector<int64_t>{i, j},
             std::cos(static_cast<double>(i * 5 + j)));
}

std::string fresh_dir(const std::string& tag) {
  static int counter = 0;
  std::string dir = std::string(::testing::TempDir()) + "psc_native_" + tag +
                    "_" + std::to_string(getpid()) + "_" +
                    std::to_string(counter++);
  fs::remove_all(dir);
  return dir;
}

/// Build, fill, run; returns the runner so callers can read stats and
/// outputs.
std::unique_ptr<WavefrontRunner> run_gs(const CompileResult& result,
                                        int64_t m, int64_t sweeps,
                                        WavefrontOptions options) {
  auto runner = std::make_unique<WavefrontRunner>(
      *result.transformed->module, *result.transform, *result.exact_nest,
      IntEnv{{"M", m}, {"maxK", sweeps}}, std::map<std::string, double>{},
      options);
  fill_input(runner->array("InitialA"), m);
  runner->run();
  return runner;
}

void expect_bit_identical(const NdArray& got, const NdArray& want, int64_t m,
                          const char* label) {
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j) {
      std::vector<int64_t> idx{i, j};
      EXPECT_EQ(got.at(idx), want.at(idx)) << label << " at " << i << "," << j;
    }
}

#define SKIP_WITHOUT_NATIVE()                                              \
  if (!native_engine_available())                                          \
    GTEST_SKIP() << "native tier unavailable: "                            \
                 << native_engine_unavailable_reason();

TEST(NativeEngine, MatchesBytecodeBitExact) {
  SKIP_WITHOUT_NATIVE();
  native_engine_clear_in_process_cache();
  auto result = compile_exact_gs();
  const int64_t m = 11;
  const int64_t sweeps = 7;

  auto bytecode = run_gs(result, m, sweeps, {});
  ASSERT_EQ(bytecode->engine(), EvalEngine::Bytecode)
      << bytecode->fallback_reason();

  WavefrontOptions native_opts;
  native_opts.engine = EvalEngine::Native;
  auto native = run_gs(result, m, sweeps, native_opts);
  ASSERT_EQ(native->engine(), EvalEngine::Native) << native->fallback_reason();
  EXPECT_TRUE(native->fallback_reason().empty());

  expect_bit_identical(native->array("newA"), bytecode->array("newA"), m,
                       "native vs bytecode");
  EXPECT_EQ(native->stats().points, bytecode->stats().points);
  EXPECT_EQ(native->stats().hyperplanes, bytecode->stats().hyperplanes);
  EXPECT_EQ(native->stats().flushed, bytecode->stats().flushed);
}

TEST(NativeEngine, StripeAblationAndBackendsAreBitExact) {
  SKIP_WITHOUT_NATIVE();
  auto result = compile_exact_gs();
  const int64_t m = 9;
  const int64_t sweeps = 5;

  WavefrontOptions striped;
  striped.engine = EvalEngine::Native;
  auto reference = run_gs(result, m, sweeps, striped);
  ASSERT_EQ(reference->engine(), EvalEngine::Native)
      << reference->fallback_reason();

  // Per-point kernel calls (the ablation axis of bench_native).
  WavefrontOptions per_point = striped;
  per_point.native_stripes = false;
  auto pointwise = run_gs(result, m, sweeps, per_point);
  ASSERT_EQ(pointwise->engine(), EvalEngine::Native);
  expect_bit_identical(pointwise->array("newA"), reference->array("newA"), m,
                       "per-point vs striped");

  // Striped execution across the parallel backends.
  ThreadPool pool(4);
  for (WavefrontBackend backend :
       {WavefrontBackend::PooledChunked, WavefrontBackend::Sharded}) {
    WavefrontOptions parallel = striped;
    parallel.pool = &pool;
    parallel.backend = backend;
    auto run = run_gs(result, m, sweeps, parallel);
    ASSERT_EQ(run->engine(), EvalEngine::Native) << run->fallback_reason();
    expect_bit_identical(run->array("newA"), reference->array("newA"), m,
                         wavefront_backend_name(backend));
    EXPECT_EQ(run->stats().points, reference->stats().points);
  }
}

TEST(NativeEngine, FallsBackToBytecodeWhenCompilerIsUnusable) {
  SKIP_WITHOUT_NATIVE();
  auto result = compile_exact_gs();
  native_engine_clear_in_process_cache();
  native_engine_set_compiler("false");  // probe fails -> tier unavailable
  WavefrontOptions options;
  options.engine = EvalEngine::Native;
  auto runner = run_gs(result, 7, 4, options);
  native_engine_set_compiler("");
  EXPECT_EQ(runner->engine(), EvalEngine::Bytecode);
  EXPECT_NE(runner->fallback_reason().find("native:"), std::string::npos)
      << runner->fallback_reason();
  EXPECT_EQ(runner->stats().fallback_reason, runner->fallback_reason());
}

TEST(NativeEngine, WarmCacheSkipsTheCompilerEntirely) {
  SKIP_WITHOUT_NATIVE();
  auto result = compile_exact_gs();
  ArtifactCacheOptions cache_options;
  cache_options.dir = fresh_dir("warm");
  ArtifactCache cache{cache_options};

  native_engine_clear_in_process_cache();
  WavefrontOptions options;
  options.engine = EvalEngine::Native;
  options.native_store = &cache;

  const int64_t cold_invocations = native_cc_invocations();
  auto cold = run_gs(result, 8, 5, options);
  ASSERT_EQ(cold->engine(), EvalEngine::Native) << cold->fallback_reason();
  EXPECT_FALSE(cold->stats().native_cache_hit);
  EXPECT_EQ(native_cc_invocations(), cold_invocations + 1);
  EXPECT_GT(cold->stats().native_compile_ms, 0.0);
  EXPECT_EQ(cache.stats().native_stores, 1u);
  EXPECT_EQ(cache.stats().native_misses, 1u);

  // Drop the in-process module so the warm path must go through the
  // on-disk object, exactly like a fresh daemon session.
  cold.reset();
  native_engine_clear_in_process_cache();

  const int64_t warm_invocations = native_cc_invocations();
  auto warm = run_gs(result, 8, 5, options);
  ASSERT_EQ(warm->engine(), EvalEngine::Native) << warm->fallback_reason();
  EXPECT_TRUE(warm->stats().native_cache_hit);
  EXPECT_FALSE(warm->stats().native_in_process_hit);
  EXPECT_EQ(warm->stats().native_compile_ms, 0.0);
  EXPECT_EQ(native_cc_invocations(), warm_invocations);  // cc never ran
  EXPECT_EQ(cache.stats().native_hits, 1u);

  // A third runner while `warm` is alive hits the in-process module.
  auto hot = run_gs(result, 8, 5, options);
  ASSERT_EQ(hot->engine(), EvalEngine::Native);
  EXPECT_TRUE(hot->stats().native_in_process_hit);
  EXPECT_EQ(native_cc_invocations(), warm_invocations);
}

TEST(NativeEngine, EvictionSparesTheSharedObjectOfALiveRunner) {
  SKIP_WITHOUT_NATIVE();
  auto result = compile_exact_gs();
  ArtifactCacheOptions cache_options;
  cache_options.dir = fresh_dir("evict");
  cache_options.max_bytes = 1;  // everything evictable is over budget
  ArtifactCache cache{cache_options};

  native_engine_clear_in_process_cache();
  WavefrontOptions options;
  options.engine = EvalEngine::Native;
  options.native_store = &cache;
  auto runner = run_gs(result, 8, 5, options);
  ASSERT_EQ(runner->engine(), EvalEngine::Native) << runner->fallback_reason();
  fs::path so_path = runner->native_info().so_path;
  ASSERT_TRUE(fs::exists(so_path));
  EXPECT_TRUE(native_object_in_use(so_path));

  // Storing a text artifact pushes the directory over its 1-byte budget
  // and runs eviction -- which must skip the pinned .so.
  UnitArtifact artifact;
  artifact.ok = true;
  artifact.module_name = "M";
  artifact.primary = {"s", "sched", "c"};
  EXPECT_TRUE(cache.store("deadbeef", artifact));
  EXPECT_TRUE(fs::exists(so_path)) << "evicted a dlopen-ed shared object";

  // The runner still executes against the mapped code.
  runner->run();
  EXPECT_GT(runner->stats().points, 0);

  // Release the module (runner + in-process cache): the pin is gone and
  // the next eviction pass may reclaim the object.
  runner.reset();
  native_engine_clear_in_process_cache();
  EXPECT_FALSE(native_object_in_use(so_path));
  EXPECT_TRUE(cache.store("deadbeef2", artifact));
  EXPECT_FALSE(fs::exists(so_path));
}

/// Write an executable fake `cc` that answers --version (so the
/// availability probe passes) and otherwise runs `body`.
std::string write_fake_cc(const std::string& tag, const std::string& body) {
  std::string dir = fresh_dir(tag);
  fs::create_directories(dir);
  fs::path script = fs::path(dir) / "fake-cc";
  std::ofstream f(script);
  f << "#!/bin/sh\n"
    << "case \"$1\" in\n"
    << "  --version) echo fake-cc 1.0; exit 0;;\n"
    << "esac\n"
    << body << "\n";
  f.close();
  fs::permissions(script, fs::perms::owner_all | fs::perms::group_read |
                              fs::perms::others_read);
  return script.string();
}

TEST(NativeEngine, CompilerExitCodeIsDecodedNotReportedRaw) {
  SKIP_WITHOUT_NATIVE();
  auto result = compile_exact_gs();
  native_engine_clear_in_process_cache();
  native_engine_set_compiler(write_fake_cc("exit7", "exit 7"));
  WavefrontOptions options;
  options.engine = EvalEngine::Native;
  auto runner = run_gs(result, 7, 4, options);
  native_engine_set_compiler("");
  EXPECT_EQ(runner->engine(), EvalEngine::Bytecode);
  // std::system returns a wait status; the raw value for exit 7 is
  // 1792 and used to be printed as-is. The reason must name the real
  // exit code.
  EXPECT_NE(runner->fallback_reason().find("cc failed (exit 7)"),
            std::string::npos)
      << runner->fallback_reason();
  EXPECT_EQ(runner->fallback_reason().find("1792"), std::string::npos)
      << runner->fallback_reason();
}

TEST(NativeEngine, WaitStatusDecodeCoversExitSignalAndSpawnFailure) {
  // Feed the decoder real wait(2) statuses from std::system: a shell
  // that exits 7, and one that SIGKILLs itself (the builtin kill
  // targets the outer sh that std::system waits on, so the status is
  // genuinely signal-terminated, not a 128+N exit).
  EXPECT_EQ(native_describe_wait_status(std::system("exit 7")), "exit 7");
  EXPECT_EQ(native_describe_wait_status(std::system("kill -9 $$")),
            "killed by signal 9");
  EXPECT_EQ(native_describe_wait_status(std::system("true")), "exit 0");
  EXPECT_EQ(native_describe_wait_status(-1), "could not spawn shell");
}

TEST(NativeEngine, CompilesFromDirectoriesContainingSpaces) {
  SKIP_WITHOUT_NATIVE();
  auto result = compile_exact_gs();

  // Scratch (TMPDIR) and cache directories both contain spaces; every
  // path in the cc invocation is shell-quoted, so the cold compile must
  // succeed with no fallback -- it used to demote the whole tier.
  std::string scratch = fresh_dir("space scratch");
  std::string cache_dir = fresh_dir("space cache");
  fs::create_directories(scratch);
  const char* old_tmpdir = ::getenv("TMPDIR");
  std::string saved = old_tmpdir != nullptr ? old_tmpdir : "";
  ASSERT_EQ(::setenv("TMPDIR", scratch.c_str(), 1), 0);

  ArtifactCacheOptions cache_options;
  cache_options.dir = cache_dir;
  ArtifactCache cache{cache_options};
  native_engine_clear_in_process_cache();
  WavefrontOptions options;
  options.engine = EvalEngine::Native;
  options.native_store = &cache;
  auto runner = run_gs(result, 8, 5, options);

  if (old_tmpdir != nullptr)
    ::setenv("TMPDIR", saved.c_str(), 1);
  else
    ::unsetenv("TMPDIR");

  ASSERT_EQ(runner->engine(), EvalEngine::Native) << runner->fallback_reason();
  EXPECT_TRUE(runner->fallback_reason().empty()) << runner->fallback_reason();
  EXPECT_FALSE(runner->stats().native_cache_hit);  // genuinely cold
  EXPECT_EQ(cache.stats().native_stores, 1u);
  runner.reset();
  native_engine_clear_in_process_cache();
}

TEST(NativeEngine, TtlPruneSparesThePinnedSharedObject) {
  SKIP_WITHOUT_NATIVE();
  auto result = compile_exact_gs();
  ArtifactCacheOptions cache_options;
  cache_options.dir = fresh_dir("ttl");
  ArtifactCache cache{cache_options};

  native_engine_clear_in_process_cache();
  WavefrontOptions options;
  options.engine = EvalEngine::Native;
  options.native_store = &cache;
  auto runner = run_gs(result, 8, 5, options);
  ASSERT_EQ(runner->engine(), EvalEngine::Native) << runner->fallback_reason();
  fs::path so_path = runner->native_info().so_path;
  ASSERT_TRUE(fs::exists(so_path));
  ASSERT_TRUE(native_object_in_use(so_path));

  UnitArtifact artifact;
  artifact.ok = true;
  artifact.module_name = "M";
  artifact.primary = {"s", "sched", "c"};
  ASSERT_TRUE(cache.store("feedface", artifact));
  fs::path art_path = fs::path(cache.dir()) / "feedface.art";
  ASSERT_TRUE(fs::exists(art_path));

  // Both entries idle past the TTL: the janitor's prune reaps the text
  // artifact but must spare the .so a live runner has dlopen-ed.
  auto ancient =
      fs::file_time_type::clock::now() - std::chrono::hours(2);
  fs::last_write_time(so_path, ancient);
  fs::last_write_time(art_path, ancient);
  EXPECT_EQ(cache.prune_older_than(std::chrono::seconds(3600)), 1u);
  EXPECT_FALSE(fs::exists(art_path));
  EXPECT_TRUE(fs::exists(so_path)) << "pruned a dlopen-ed shared object";
  runner->run();  // the mapped code still executes
  EXPECT_GT(runner->stats().points, 0);

  // Pin released: the next prune may reclaim the object.
  runner.reset();
  native_engine_clear_in_process_cache();
  fs::last_write_time(so_path, ancient);
  EXPECT_EQ(cache.prune_older_than(std::chrono::seconds(3600)), 1u);
  EXPECT_FALSE(fs::exists(so_path));
}

TEST(NativeEngine, KernelKeyFoldsInCompilerFingerprint) {
  SKIP_WITHOUT_NATIVE();
  std::string key = native_kernel_key("int x;");
  EXPECT_EQ(key.size(), 64u);
  EXPECT_NE(key, native_kernel_key("int y;"));
  EXPECT_FALSE(native_cc_fingerprint().empty());
}

}  // namespace
}  // namespace ps
