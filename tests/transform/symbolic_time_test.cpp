#include "transform/symbolic_time.hpp"

#include <gtest/gtest.h>

#include <random>

#include "../common/test_util.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

SymbolicDependence dep(std::vector<int64_t> constant,
                       std::map<std::string, std::vector<int64_t>> symbols =
                           {}) {
  SymbolicDependence d;
  d.constant = std::move(constant);
  d.symbol_coeffs = std::move(symbols);
  return d;
}

// ---------------------------------------------------------------------------
// Solver
// ---------------------------------------------------------------------------

TEST(SymbolicTime, DegeneratesToThePlainSolverWithoutSymbols) {
  // The paper's revised relaxation: five constant vectors, least
  // solution (2, 1, 1).
  std::vector<SymbolicDependence> deps{
      dep({1, 0, 0}), dep({0, 0, 1}), dep({0, 1, 0}),
      dep({1, 0, -1}), dep({1, -1, 0})};
  auto a = solve_time_function_symbolic(deps);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, (std::vector<int64_t>{2, 1, 1}));
  EXPECT_TRUE(satisfies_symbolic(*a, deps));
}

TEST(SymbolicTime, SymbolicShiftNeedsOuterDimensionOnly) {
  // A[K, I] reads A[K-1, I+b] with b >= 1 symbolic: d = (1, -b).
  std::vector<SymbolicDependence> deps{
      dep({1, 0}, {{"b", {0, -1}}}),
  };
  auto a = solve_time_function_symbolic(deps);
  ASSERT_TRUE(a.has_value());
  // a . (0,-1) >= 0 forces a2 <= 0. Two schedules have cost 1:
  // t = K (compute sweep by sweep) and t = -I (sweep right to left --
  // legal because the read is at the larger index I + b). The solver's
  // lexicographic tie-break picks (0, -1).
  EXPECT_EQ(*a, (std::vector<int64_t>{0, -1}));
  EXPECT_TRUE(satisfies_symbolic({1, 0}, deps));  // t = K also valid
}

TEST(SymbolicTime, SymbolWithPositiveCoefficientHelps) {
  // d = (0, b): legal schedules need a2 >= 0 and a2 >= 1 at b = 1.
  std::vector<SymbolicDependence> deps{dep({0, 0}, {{"b", {0, 1}}})};
  auto a = solve_time_function_symbolic(deps);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, (std::vector<int64_t>{0, 1}));
}

TEST(SymbolicTime, InfeasibleWhenSymbolPointsBothWays) {
  // d1 = (0, b), d2 = (0, -b): a2 must be >= 0 and <= 0, and the
  // corners need a2 >= 1 and -a2 >= 1 -- impossible.
  std::vector<SymbolicDependence> deps{dep({0, 0}, {{"b", {0, 1}}}),
                                       dep({0, 0}, {{"b", {0, -1}}})};
  EXPECT_EQ(solve_time_function_symbolic(deps), std::nullopt);
}

TEST(SymbolicTime, MultipleSymbolsInOneDependence) {
  // d = (1, -b, c) with b, c >= 1.
  std::vector<SymbolicDependence> deps{
      dep({1, 0, 0}, {{"b", {0, -1, 0}}, {"c", {0, 0, 1}}})};
  auto a = solve_time_function_symbolic(deps);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(satisfies_symbolic(*a, deps));
  // Cost-1 schedules include (1,0,0) and (0,-1,0); the lexicographic
  // tie-break picks the latter.
  EXPECT_EQ(*a, (std::vector<int64_t>{0, -1, 0}));
  EXPECT_TRUE(satisfies_symbolic({1, 0, 0}, deps));
}

TEST(SymbolicTime, SatisfiesSymbolicRejectsNegativeSymbolDirections) {
  std::vector<SymbolicDependence> deps{dep({2, 0}, {{"b", {0, -1}}})};
  // a = (1, 1): corner (2,-1) dot = 1 >= 1, but the symbol row (0,-1)
  // dots to -1 -- large b breaks it.
  EXPECT_FALSE(satisfies_symbolic({1, 1}, deps));
  EXPECT_TRUE(satisfies_symbolic({1, 0}, deps));
  EXPECT_TRUE(satisfies_symbolic({1, -1}, deps));
}

/// Property: a symbolic solution instantiates to a valid plain time
/// function for every concrete symbol value in 1..5.
class SymbolicInstantiation : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SymbolicInstantiation, SolutionValidForConcreteSymbols) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int64_t> coeff(-1, 1);
  std::uniform_int_distribution<int64_t> constant(-2, 2);

  std::vector<SymbolicDependence> deps;
  for (int i = 0; i < 3; ++i) {
    SymbolicDependence d;
    d.constant = {constant(rng) + 2, constant(rng), constant(rng)};
    d.symbol_coeffs["b"] = {0, coeff(rng), coeff(rng)};
    deps.push_back(std::move(d));
  }
  auto a = solve_time_function_symbolic(deps);
  if (!a) GTEST_SKIP() << "instance infeasible";
  ASSERT_TRUE(satisfies_symbolic(*a, deps));
  for (int64_t b = 1; b <= 5; ++b) {
    std::vector<std::vector<int64_t>> plain;
    for (const SymbolicDependence& d : deps)
      plain.push_back(d.instantiate({{"b", b}}));
    EXPECT_TRUE(satisfies_dependences(*a, plain)) << "b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolicInstantiation,
                         ::testing::Range(1u, 25u));

// ---------------------------------------------------------------------------
// Extraction from PS modules
// ---------------------------------------------------------------------------

constexpr const char* kSymbolicShift = R"PS(
Shift: module (init: array[I] of real; n: int; b: int):
  [y: array[I] of real];
type
  I = 0 .. n;  K = 2 .. n;
var
  X: array [1 .. n] of array [I] of real;
define
  X[1] = init;
  y = X[n];
  X[K, I] = if I + b <= n then X[K - 1, I + b] + 1.0 else 0.0;
end Shift;
)PS";

TEST(SymbolicExtraction, ShiftRecurrenceYieldsSymbolicVector) {
  auto result = compile_or_die(kSymbolicShift);
  DiagnosticEngine diags;
  auto deps = extract_symbolic_dependences(*result.primary->module, "X",
                                           {"b"}, diags);
  ASSERT_TRUE(deps.has_value()) << diags.render();
  EXPECT_EQ(deps->vars, (std::vector<std::string>{"K", "I"}));
  ASSERT_EQ(deps->vectors.size(), 1u);
  EXPECT_EQ(deps->vectors[0].constant, (std::vector<int64_t>{1, 0}));
  ASSERT_TRUE(deps->vectors[0].symbol_coeffs.count("b"));
  EXPECT_EQ(deps->vectors[0].symbol_coeffs.at("b"),
            (std::vector<int64_t>{0, -1}));
  EXPECT_EQ(deps->vectors[0].to_string(), "(1, 0 - b)");

  auto a = solve_time_function_symbolic(deps->vectors);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(satisfies_symbolic(*a, deps->vectors));
  EXPECT_EQ(*a, (std::vector<int64_t>{0, -1}));
}

TEST(SymbolicExtraction, PlainOffsetsStillWork) {
  auto result = compile_or_die(kSymbolicShift);
  DiagnosticEngine diags;
  // No symbols declared: A[K-1, I+b] has 'b' outside the fragment.
  auto deps = extract_symbolic_dependences(*result.primary->module, "X", {},
                                           diags);
  EXPECT_FALSE(deps.has_value());
  EXPECT_NE(diags.render().find("not a declared positive parameter"),
            std::string::npos)
      << diags.render();
}

constexpr const char* kCoupledSubscripts = R"PS(
Bad: module (n: int): [y: array[I] of real];
type
  I = 0 .. n;  K = 2 .. n;
var
  X: array [1 .. n] of array [I] of real;
define
  X[1, I] = 0.0;
  y = X[n];
  X[K, I] = X[K - 1, 2 * I] + 1.0;
end Bad;
)PS";

TEST(SymbolicExtraction, RejectsNonUnitSelfCoefficient) {
  auto result = compile_or_die(kCoupledSubscripts);
  DiagnosticEngine diags;
  auto deps = extract_symbolic_dependences(*result.primary->module, "X",
                                           {"n"}, diags);
  EXPECT_FALSE(deps.has_value());
  EXPECT_NE(diags.render().find("outside the symbolic-offset fragment"),
            std::string::npos);
}

}  // namespace
}  // namespace ps
