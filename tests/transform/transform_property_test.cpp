// Property test for the section-4 pipeline: random guarded recurrences
// with random same-step/previous-step offset sets are transformed,
// rescheduled and executed; the transformed module must (a) validate,
// (b) have a DO outer / DOALL inner shape, and (c) compute bit-equal
// results to the original schedule.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "../common/test_util.hpp"
#include "core/validator.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/wavefront.hpp"

namespace ps {
namespace {

/// A random 2-D recurrence over u[T, X]:
///   u[T,X] = f(u[T-1, X+b] for backward/forward b, u[T, X-c] for c > 0)
/// with guards wide enough that every reference stays in bounds.
std::string random_module(uint32_t seed, bool* has_same_step,
                          bool* has_spatial_offsets) {
  std::mt19937 rng(seed);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  int radius = pick(0, 2);          // previous-step neighbourhood
  int same_step = pick(0, 2);       // current-step backward offsets
  *has_same_step = same_step > 0;
  *has_spatial_offsets = radius > 0 || same_step > 0;
  int guard_lo = std::max(radius, same_step);
  int guard_hi = radius;

  std::ostringstream os;
  os << "Rnd: module (x: array[X] of real; n: int; s: int):\n"
     << "  [y: array[X] of real];\n"
     << "type T = 2 .. s; X = 0 .. n;\n"
     << "var u: array [1 .. s] of array [X] of real;\n"
     << "define\n"
     << "  u[1] = x;\n"
     << "  y = u[s];\n"
     << "  u[T, X] = if X < " << guard_lo << " or X > n - " << guard_hi
     << " then u[T-1, X]\n"
     << "    else (u[T-1, X]";
  int terms = 1;
  for (int r = 1; r <= radius; ++r) {
    os << " + u[T-1, X-" << r << "] + u[T-1, X+" << r << "]";
    terms += 2;
  }
  for (int c = 1; c <= same_step; ++c) {
    os << " + u[T, X-" << c << "]";
    ++terms;
  }
  os << ") / " << terms << ";\n"
     << "end Rnd;\n";
  return os.str();
}

class TransformPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TransformPropertyTest, TransformPreservesSemantics) {
  bool has_same_step = false;
  bool has_spatial_offsets = false;
  std::string source =
      random_module(GetParam(), &has_same_step, &has_spatial_offsets);
  SCOPED_TRACE(source);

  CompileOptions options;
  options.apply_hyperplane = true;
  Compiler compiler(options);
  CompileResult result = compiler.compile(source);
  ASSERT_TRUE(result.ok) << result.diagnostics;

  // Same-step offsets force an iterative X loop in the original.
  std::string original = testutil::schedule_line(*result.primary);
  if (has_same_step)
    EXPECT_NE(original.find("DO T (DO X (eq.3))"), std::string::npos)
        << original;
  else
    EXPECT_NE(original.find("DO T (DOALL X (eq.3))"), std::string::npos)
        << original;

  if (!has_spatial_offsets) {
    // A recurrence whose only dependence is (1,0) is already parallel in
    // X; the driver rightly finds no transform candidate.
    EXPECT_FALSE(result.transformed.has_value());
    return;
  }
  ASSERT_TRUE(result.transformed.has_value()) << result.diagnostics;

  // The transformed module always has parallel inner loops.
  std::string transformed = testutil::schedule_line(*result.transformed);
  EXPECT_NE(transformed.find("DO T' (DOALL X' ("), std::string::npos)
      << transformed;

  IntEnv params{{"n", 11}, {"s", 6}};
  auto report = validate_schedule(*result.transformed->module,
                                  *result.transformed->graph,
                                  result.transformed->schedule.flowchart,
                                  params);
  ASSERT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);

  Interpreter a(*result.primary->module, *result.primary->graph,
                result.primary->schedule.flowchart, params);
  Interpreter b(*result.transformed->module, *result.transformed->graph,
                result.transformed->schedule.flowchart, params);
  for (auto* interp : {&a, &b}) {
    auto span = interp->array("x").raw();
    for (size_t i = 0; i < span.size(); ++i)
      span[i] = std::sin(static_cast<double>(i) * 1.7) * 9.0;
  }
  a.run();
  b.run();
  auto ya = a.array("y").raw();
  auto yb = b.array("y").raw();
  ASSERT_EQ(ya.size(), yb.size());
  for (size_t i = 0; i < ya.size(); ++i)
    EXPECT_NEAR(ya[i], yb[i], 1e-12) << "y[" << i << "]";
}


TEST_P(TransformPropertyTest, ExactBoundsAndWavefrontPreserveSemantics) {
  bool has_same_step = false;
  bool has_spatial_offsets = false;
  std::string source =
      random_module(GetParam(), &has_same_step, &has_spatial_offsets);
  SCOPED_TRACE(source);

  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  Compiler compiler(options);
  CompileResult result = compiler.compile(source);
  ASSERT_TRUE(result.ok) << result.diagnostics;
  if (!result.transformed.has_value()) return;  // no candidate (covered above)
  ASSERT_TRUE(result.exact_nest.has_value()) << result.diagnostics;

  IntEnv params{{"n", 13}, {"s", 7}};
  auto fill = [](Interpreter& interp) {
    auto span = interp.array("x").raw();
    for (size_t i = 0; i < span.size(); ++i)
      span[i] = std::cos(static_cast<double>(i) * 0.9) * 5.0;
  };

  // Reference: the untransformed schedule.
  Interpreter original(*result.primary->module, *result.primary->graph,
                       result.primary->schedule.flowchart, params);
  fill(original);
  original.run();
  auto expected = original.array("y").raw();

  // Exact-bounds interpreter on the transformed module.
  InterpreterOptions exact_opts;
  exact_opts.exact_bounds = &*result.exact_nest;
  Interpreter exact(*result.transformed->module, *result.transformed->graph,
                    result.transformed->schedule.flowchart, params, {},
                    exact_opts);
  fill(exact);
  exact.run();
  auto exact_y = exact.array("y").raw();
  ASSERT_EQ(exact_y.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(exact_y[i], expected[i], 1e-12) << "exact y[" << i << "]";

  // Windowed wavefront runner (2-D path: u'[T', X']).
  ThreadPool pool(4);
  WavefrontOptions wopts;
  wopts.pool = &pool;
  WavefrontRunner wave(*result.transformed->module, *result.transform,
                       *result.exact_nest, params, {}, wopts);
  {
    auto span = wave.array("x").raw();
    for (size_t i = 0; i < span.size(); ++i)
      span[i] = std::cos(static_cast<double>(i) * 0.9) * 5.0;
  }
  wave.run();
  auto wave_y = wave.array("y").raw();
  ASSERT_EQ(wave_y.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(wave_y[i], expected[i], 1e-12) << "wave y[" << i << "]";

  // The window equals 1 + the largest backward hyperplane offset of
  // the rewritten recurrence (>= 2 whenever a transform was needed),
  // and the transformed array is genuinely windowed.
  const NdArray& uprime = wave.array(result.transform->array + "'");
  EXPECT_GE(wave.window(), 2);
  EXPECT_LT(uprime.allocation(), uprime.logical_size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformPropertyTest,
                         ::testing::Range(0u, 25u));

}  // namespace
}  // namespace ps
