#include "transform/polyhedron.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

AffineForm affine(Rational constant,
                  std::vector<std::pair<std::string, Rational>> terms) {
  AffineForm f;
  f.constant = constant;
  for (auto& [v, c] : terms) f.add_term(v, c);
  return f;
}

// ---------------------------------------------------------------------------
// AffineForm
// ---------------------------------------------------------------------------

TEST(AffineForm, ArithmeticAndNormalisation) {
  AffineForm a = affine(1, {{"x", 2}, {"y", -1}});
  AffineForm b = affine(-3, {{"x", -2}, {"z", 5}});
  AffineForm sum = a.plus(b);
  EXPECT_EQ(sum.constant, Rational(-2));
  EXPECT_EQ(sum.coeff("x"), Rational(0));  // cancelled and erased
  EXPECT_EQ(sum.coeffs.count("x"), 0u);
  EXPECT_EQ(sum.coeff("y"), Rational(-1));
  EXPECT_EQ(sum.coeff("z"), Rational(5));

  AffineForm diff = a.minus(a);
  EXPECT_TRUE(diff.is_constant());
  EXPECT_EQ(diff.constant, Rational(0));

  AffineForm scaled = a.scaled(Rational(1, 2));
  EXPECT_EQ(scaled.coeff("x"), Rational(1));
  EXPECT_EQ(scaled.coeff("y"), Rational(-1, 2));
}

TEST(AffineForm, EvaluateNeedsAllVariables) {
  AffineForm f = affine(4, {{"x", 3}});
  IntEnv env{{"x", 5}};
  EXPECT_EQ(f.evaluate(env), Rational(19));
  EXPECT_EQ(affine(0, {{"w", 1}}).evaluate(env), std::nullopt);
}

TEST(AffineForm, ToStringReadable) {
  EXPECT_EQ(affine(1, {{"x", 2}, {"y", -1}}).to_string(), "2*x - y + 1");
  EXPECT_EQ(affine(0, {}).to_string(), "0");
  EXPECT_EQ(affine(-2, {{"x", -1}}).to_string(), "-x - 2");
}

TEST(AffineForm, FromExprHandlesAffineShapes) {
  // 2*maxK + 2*M + 2
  auto two = std::make_unique<IntLitExpr>(2);
  auto expr = std::make_unique<BinaryExpr>(
      BinaryOp::Add,
      std::make_unique<BinaryExpr>(
          BinaryOp::Add,
          std::make_unique<BinaryExpr>(BinaryOp::Mul,
                                       std::make_unique<IntLitExpr>(2),
                                       std::make_unique<NameExpr>("maxK")),
          std::make_unique<BinaryExpr>(BinaryOp::Mul,
                                       std::make_unique<NameExpr>("M"),
                                       std::make_unique<IntLitExpr>(2))),
      std::move(two));
  auto f = affine_from_expr(*expr);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->coeff("maxK"), Rational(2));
  EXPECT_EQ(f->coeff("M"), Rational(2));
  EXPECT_EQ(f->constant, Rational(2));
}

TEST(AffineForm, FromExprRejectsNonAffine) {
  auto product = std::make_unique<BinaryExpr>(
      BinaryOp::Mul, std::make_unique<NameExpr>("x"),
      std::make_unique<NameExpr>("y"));
  EXPECT_EQ(affine_from_expr(*product), std::nullopt);
  auto division = std::make_unique<BinaryExpr>(
      BinaryOp::Div, std::make_unique<NameExpr>("x"),
      std::make_unique<IntLitExpr>(2));
  EXPECT_EQ(affine_from_expr(*division), std::nullopt);
}

// ---------------------------------------------------------------------------
// BoundTerm rounding
// ---------------------------------------------------------------------------

TEST(BoundTerm, CeilAndFloorDivisionAreSignCorrect) {
  BoundTerm t;
  t.divisor = 3;
  t.constant = -7;
  IntEnv env;
  EXPECT_EQ(t.eval_lower(env), -2);  // ceil(-7/3)
  EXPECT_EQ(t.eval_upper(env), -3);  // floor(-7/3)
  t.constant = 7;
  EXPECT_EQ(t.eval_lower(env), 3);  // ceil(7/3)
  EXPECT_EQ(t.eval_upper(env), 2);  // floor(7/3)
  t.constant = 6;
  EXPECT_EQ(t.eval_lower(env), 2);
  EXPECT_EQ(t.eval_upper(env), 2);
}

// ---------------------------------------------------------------------------
// Fourier-Motzkin on simple shapes
// ---------------------------------------------------------------------------

Polyhedron box2d(int64_t x_lo, int64_t x_hi, int64_t y_lo, int64_t y_hi) {
  Polyhedron p;
  p.add_ge(affine(-x_lo, {{"x", 1}}));
  p.add_ge(affine(x_hi, {{"x", -1}}));
  p.add_ge(affine(-y_lo, {{"y", 1}}));
  p.add_ge(affine(y_hi, {{"y", -1}}));
  return p;
}

TEST(FourierMotzkin, RectangularBoxGivesConstantBounds) {
  auto nest = fourier_motzkin_bounds(box2d(0, 9, -2, 4), {"x", "y"});
  ASSERT_TRUE(nest.has_value());
  ASSERT_EQ(nest->levels.size(), 2u);
  IntEnv env;
  EXPECT_EQ(nest->levels[0].lower(env), 0);
  EXPECT_EQ(nest->levels[0].upper(env), 9);
  env["x"] = 3;
  EXPECT_EQ(nest->levels[1].lower(env), -2);
  EXPECT_EQ(nest->levels[1].upper(env), 4);
  EXPECT_EQ(count_loop_nest_points(*nest, {}), 10 * 7);
}

TEST(FourierMotzkin, TriangleInnerBoundsDependOnOuter) {
  // x >= 0, y >= 0, x + y <= 10.
  Polyhedron p;
  p.add_ge(affine(0, {{"x", 1}}));
  p.add_ge(affine(0, {{"y", 1}}));
  p.add_ge(affine(10, {{"x", -1}, {"y", -1}}));
  auto nest = fourier_motzkin_bounds(p, {"x", "y"});
  ASSERT_TRUE(nest.has_value());
  IntEnv env{{"x", 4}};
  EXPECT_EQ(nest->levels[1].upper(env), 6);
  EXPECT_EQ(count_loop_nest_points(*nest, {}), 11 * 12 / 2);  // 66 lattice pts
}

TEST(FourierMotzkin, DivisorBoundsRoundInward) {
  // 0 <= 2x <= 11  =>  x in 0..5.
  Polyhedron p;
  p.add_ge(affine(0, {{"x", 2}}));
  p.add_ge(affine(11, {{"x", -2}}));
  auto nest = fourier_motzkin_bounds(p, {"x"});
  ASSERT_TRUE(nest.has_value());
  IntEnv env;
  EXPECT_EQ(nest->levels[0].lower(env), 0);
  EXPECT_EQ(nest->levels[0].upper(env), 5);
}

TEST(FourierMotzkin, DetectsConstantInfeasibility) {
  Polyhedron p;
  p.add_ge(affine(0, {{"x", 1}}));    // x >= 0
  p.add_ge(affine(-1, {{"x", -1}}));  // x <= -1
  EXPECT_EQ(fourier_motzkin_bounds(p, {"x"}), std::nullopt);
}

TEST(FourierMotzkin, SymbolicParametersSurviveAsPreconditions) {
  // 1 <= x <= N: bounds reference N; the combination 1 <= N becomes a
  // precondition.
  Polyhedron p;
  p.add_ge(affine(-1, {{"x", 1}}));
  p.add_ge(affine(0, {{"x", -1}, {"N", 1}}));
  auto nest = fourier_motzkin_bounds(p, {"x"});
  ASSERT_TRUE(nest.has_value());
  ASSERT_EQ(nest->preconditions.size(), 1u);
  EXPECT_EQ(nest->preconditions[0], "N - 1 >= 0");
  IntEnv env{{"N", 7}};
  EXPECT_EQ(nest->levels[0].lower(env), 1);
  EXPECT_EQ(nest->levels[0].upper(env), 7);
}

TEST(FourierMotzkin, RedundantBoundsAreDeduplicated) {
  Polyhedron p;
  p.add_ge(affine(0, {{"x", 1}}));   // x >= 0
  p.add_ge(affine(2, {{"x", 1}}));   // x >= -2 (dominated)
  p.add_ge(affine(9, {{"x", -1}}));  // x <= 9
  p.add_ge(affine(9, {{"x", -1}}));  // duplicate
  auto nest = fourier_motzkin_bounds(p, {"x"});
  ASSERT_TRUE(nest.has_value());
  EXPECT_EQ(nest->levels[0].lowers.size(), 1u);
  EXPECT_EQ(nest->levels[0].uppers.size(), 1u);
  EXPECT_EQ(nest->levels[0].lowers[0].constant, 0);
}

TEST(FourierMotzkin, EmptyInnerRangesExecuteZeroIterations) {
  // A diagonal strip: 0 <= x <= 4, x <= y <= x - 1 + z with z = 0 at
  // runtime gives an empty y range everywhere; the scan must visit no
  // points rather than fail.
  Polyhedron p;
  p.add_ge(affine(0, {{"x", 1}}));
  p.add_ge(affine(4, {{"x", -1}}));
  p.add_ge(affine(0, {{"y", 1}, {"x", -1}}));
  p.add_ge(affine(-1, {{"y", -1}, {"x", 1}, {"z", 1}}));
  auto nest = fourier_motzkin_bounds(p, {"x", "y"});
  ASSERT_TRUE(nest.has_value());
  EXPECT_EQ(count_loop_nest_points(*nest, {{"z", 0}}), 0);
  EXPECT_EQ(count_loop_nest_points(*nest, {{"z", 3}}), 5 * 3);
}

// ---------------------------------------------------------------------------
// The paper's transformed relaxation domain
// ---------------------------------------------------------------------------

TEST(TransformedDomain, GaussSeidelImageBoundsMatchSection4) {
  CompileOptions options;
  options.apply_hyperplane = true;
  auto result = compile_or_die(kGaussSeidelSource, options);
  ASSERT_TRUE(result.transform.has_value());
  ASSERT_TRUE(result.primary.has_value());

  auto domain = transformed_domain(*result.primary->module, *result.transform);
  ASSERT_TRUE(domain.has_value());
  auto nest = fourier_motzkin_bounds(
      *domain, {result.transform->new_vars[0], result.transform->new_vars[1],
                result.transform->new_vars[2]});
  ASSERT_TRUE(nest.has_value());

  // K' = 2K + I + J over K in 1..maxK, I,J in 0..M+1 spans
  // 2 .. 2*maxK + 2M + 2.
  IntEnv params{{"M", 6}, {"maxK", 5}};
  EXPECT_EQ(nest->levels[0].lower(params), 2);
  EXPECT_EQ(nest->levels[0].upper(params), 2 * 5 + 2 * 6 + 2);

  // The number of scanned points is exactly the box volume: the
  // transform is unimodular, so the image has the same lattice count.
  int64_t expected = 5 * 8 * 8;  // maxK * (M+2)^2
  EXPECT_EQ(count_loop_nest_points(*nest, params), expected);

  // The bounding-box scan the guarded rewrite uses is strictly larger.
  int64_t bbox = (2 * 5 + 2 * 6 + 2 - 2 + 1) * 5 * 8;
  EXPECT_GT(bbox, expected);
}

TEST(TransformedDomain, EveryScannedPointPullsBackIntoTheBox) {
  CompileOptions options;
  options.apply_hyperplane = true;
  auto result = compile_or_die(kGaussSeidelSource, options);
  auto domain = transformed_domain(*result.primary->module, *result.transform);
  ASSERT_TRUE(domain.has_value());
  const auto& h = *result.transform;
  auto nest = fourier_motzkin_bounds(
      *domain, {h.new_vars[0], h.new_vars[1], h.new_vars[2]});
  ASSERT_TRUE(nest.has_value());

  IntEnv params{{"M", 4}, {"maxK", 3}};
  std::set<std::vector<int64_t>> originals;
  scan_loop_nest(*nest, params, [&](const IntEnv& env) {
    std::vector<int64_t> x_new(3);
    for (size_t r = 0; r < 3; ++r) x_new[r] = env.at(h.new_vars[r]);
    std::vector<int64_t> x_old = h.T_inv.apply(x_new);
    EXPECT_GE(x_old[0], 1);
    EXPECT_LE(x_old[0], 3);
    for (size_t d = 1; d < 3; ++d) {
      EXPECT_GE(x_old[d], 0);
      EXPECT_LE(x_old[d], 5);
    }
    EXPECT_TRUE(originals.insert(x_old).second) << "duplicate point";
  });
  EXPECT_EQ(originals.size(), 3u * 6 * 6);
}

// ---------------------------------------------------------------------------
// Property test: FM scan == brute-force image scan for random unimodular
// transforms of random boxes.
// ---------------------------------------------------------------------------

class FourierMotzkinProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FourierMotzkinProperty, ScansExactlyTheImageLattice) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int64_t> lo_dist(-3, 2);
  std::uniform_int_distribution<int64_t> extent_dist(1, 5);
  std::uniform_int_distribution<int> shear_dist(-2, 2);
  const size_t n = 3;

  // Random unimodular T: start from the identity and apply random row
  // shears (det stays 1 throughout).
  IntMatrix T = IntMatrix::identity(n);
  for (int step = 0; step < 6; ++step) {
    size_t i = rng() % n;
    size_t j = rng() % n;
    if (i == j) continue;
    int64_t k = shear_dist(rng);
    for (size_t c = 0; c < n; ++c) T.at(i, c) += k * T.at(j, c);
  }
  ASSERT_TRUE(T.is_unimodular());
  auto T_inv = T.integer_inverse();
  ASSERT_TRUE(T_inv.has_value());

  std::vector<int64_t> lo(n), hi(n);
  for (size_t d = 0; d < n; ++d) {
    lo[d] = lo_dist(rng);
    hi[d] = lo[d] + extent_dist(rng);
  }

  // Constraints over new coordinates y: lo <= T_inv y <= hi.
  std::vector<std::string> vars{"u", "v", "w"};
  Polyhedron p;
  for (size_t j = 0; j < n; ++j) {
    AffineForm old_j;
    for (size_t r = 0; r < n; ++r)
      old_j.add_term(vars[r], Rational(T_inv->at(j, r)));
    p.add_lower(old_j, affine(Rational(lo[j]), {}));
    p.add_upper(old_j, affine(Rational(hi[j]), {}));
  }
  auto nest = fourier_motzkin_bounds(p, vars);
  ASSERT_TRUE(nest.has_value());

  // Brute force: image of every box point under T.
  std::set<std::vector<int64_t>> image;
  for (int64_t a = lo[0]; a <= hi[0]; ++a)
    for (int64_t b = lo[1]; b <= hi[1]; ++b)
      for (int64_t c = lo[2]; c <= hi[2]; ++c)
        image.insert(T.apply({a, b, c}));

  std::set<std::vector<int64_t>> scanned;
  scan_loop_nest(*nest, {}, [&](const IntEnv& env) {
    std::vector<int64_t> y(n);
    for (size_t r = 0; r < n; ++r) y[r] = env.at(vars[r]);
    EXPECT_TRUE(scanned.insert(y).second) << "duplicate scan point";
  });
  EXPECT_EQ(scanned, image);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FourierMotzkinProperty,
                         ::testing::Range(1u, 33u));

/// The same property in four dimensions (deeper elimination chains and
/// more cross-combination constraints).
class FourierMotzkin4D : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FourierMotzkin4D, ScansExactlyTheImageLattice) {
  std::mt19937 rng(GetParam() * 7919u);
  std::uniform_int_distribution<int64_t> lo_dist(-2, 1);
  std::uniform_int_distribution<int64_t> extent_dist(1, 3);
  std::uniform_int_distribution<int> shear_dist(-1, 2);
  const size_t n = 4;

  IntMatrix T = IntMatrix::identity(n);
  for (int step = 0; step < 8; ++step) {
    size_t i = rng() % n;
    size_t j = rng() % n;
    if (i == j) continue;
    int64_t k = shear_dist(rng);
    for (size_t c = 0; c < n; ++c) T.at(i, c) += k * T.at(j, c);
  }
  ASSERT_TRUE(T.is_unimodular());
  auto T_inv = T.integer_inverse();
  ASSERT_TRUE(T_inv.has_value());

  std::vector<int64_t> lo(n), hi(n);
  for (size_t d = 0; d < n; ++d) {
    lo[d] = lo_dist(rng);
    hi[d] = lo[d] + extent_dist(rng);
  }

  std::vector<std::string> vars{"p", "q", "r", "s"};
  Polyhedron poly;
  for (size_t j = 0; j < n; ++j) {
    AffineForm old_j;
    for (size_t c = 0; c < n; ++c)
      old_j.add_term(vars[c], Rational(T_inv->at(j, c)));
    poly.add_lower(old_j, affine(Rational(lo[j]), {}));
    poly.add_upper(old_j, affine(Rational(hi[j]), {}));
  }
  auto nest = fourier_motzkin_bounds(poly, vars);
  ASSERT_TRUE(nest.has_value());

  std::set<std::vector<int64_t>> image;
  for (int64_t a = lo[0]; a <= hi[0]; ++a)
    for (int64_t b = lo[1]; b <= hi[1]; ++b)
      for (int64_t c = lo[2]; c <= hi[2]; ++c)
        for (int64_t d = lo[3]; d <= hi[3]; ++d)
          image.insert(T.apply({a, b, c, d}));

  std::set<std::vector<int64_t>> scanned;
  scan_loop_nest(*nest, {}, [&](const IntEnv& env) {
    std::vector<int64_t> y(n);
    for (size_t c = 0; c < n; ++c) y[c] = env.at(vars[c]);
    EXPECT_TRUE(scanned.insert(y).second) << "duplicate scan point";
  });
  EXPECT_EQ(scanned, image);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FourierMotzkin4D, ::testing::Range(1u, 17u));

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

TEST(LoopNestBounds, RenderingMentionsCeilFloorOnlyWhenDividing) {
  Polyhedron p;
  p.add_ge(affine(0, {{"x", 2}}));
  p.add_ge(affine(9, {{"x", -1}}));
  auto nest = fourier_motzkin_bounds(p, {"x"});
  ASSERT_TRUE(nest.has_value());
  std::string text = nest->to_string();
  EXPECT_NE(text.find("x = 0 .. 9"), std::string::npos) << text;

  Polyhedron q;
  q.add_ge(affine(-1, {{"x", 3}, {"N", -1}}));  // 3x >= N + 1
  q.add_ge(affine(20, {{"x", -1}}));
  auto qnest = fourier_motzkin_bounds(q, {"x"});
  ASSERT_TRUE(qnest.has_value());
  EXPECT_NE(qnest->to_string().find("ceil((N + 1)/3)"), std::string::npos)
      << qnest->to_string();
}

// ---------------------------------------------------------------------------
// NestCursor: the lazy bounds iterator behind the streaming wavefront
// ---------------------------------------------------------------------------

/// The gauss-seidel exact nest, the canonical non-rectangular space.
LoopNestBounds gauss_seidel_nest() {
  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  auto result = compile_or_die(kGaussSeidelSource, options);
  return *result.exact_nest;
}

TEST(NestCursor, EnumeratesExactlyTheScannedPoints) {
  LoopNestBounds nest = gauss_seidel_nest();
  IntEnv params{{"M", 5}, {"maxK", 4}};

  // Oracle: scan_loop_nest in full lexicographic order.
  std::vector<std::vector<int64_t>> expected;
  scan_loop_nest(nest, params, [&](const IntEnv& env) {
    std::vector<int64_t> point;
    for (const LoopLevelBounds& level : nest.levels)
      point.push_back(env.at(level.var));
    expected.push_back(point);
  });

  NestCursor cursor(nest, 0, params);
  std::vector<std::vector<int64_t>> actual;
  while (cursor.next()) actual.push_back(cursor.coords());
  EXPECT_EQ(actual, expected);
  EXPECT_FALSE(cursor.next());  // stays exhausted
}

TEST(NestCursor, SuffixCursorScansOneHyperplane) {
  LoopNestBounds nest = gauss_seidel_nest();
  IntEnv params{{"M", 6}, {"maxK", 5}};
  int64_t t_lo = nest.levels[0].lower(params);
  int64_t t_hi = nest.levels[0].upper(params);

  int64_t total = 0;
  for (int64_t t = t_lo; t <= t_hi; ++t) {
    IntEnv env = params;
    env[nest.levels[0].var] = t;

    std::vector<std::vector<int64_t>> inner;
    NestCursor cursor(nest, 1, env);
    while (cursor.next()) inner.push_back(cursor.coords());

    EXPECT_EQ(static_cast<int64_t>(inner.size()),
              NestCursor::count(nest, 1, env))
        << "t=" << t;
    total += static_cast<int64_t>(inner.size());
  }
  // Every image point lies on exactly one hyperplane.
  EXPECT_EQ(total, count_loop_nest_points(nest, params));
}

TEST(NestCursor, SkipSeeksLikeRepeatedNext) {
  LoopNestBounds nest = gauss_seidel_nest();
  IntEnv params{{"M", 5}, {"maxK", 3}};

  std::vector<std::vector<int64_t>> all;
  {
    NestCursor cursor(nest, 0, params);
    while (cursor.next()) all.push_back(cursor.coords());
  }
  ASSERT_GT(all.size(), 8u);
  for (int64_t seek : {int64_t{0}, int64_t{1}, int64_t{7},
                       static_cast<int64_t>(all.size()) - 1}) {
    NestCursor cursor(nest, 0, params);
    ASSERT_TRUE(cursor.next());
    EXPECT_EQ(cursor.skip(seek), seek);
    EXPECT_EQ(cursor.coords(), all[static_cast<size_t>(seek)]) << seek;
  }
  // Skipping past the end reports how far it actually got.
  NestCursor cursor(nest, 0, params);
  ASSERT_TRUE(cursor.next());
  EXPECT_EQ(cursor.skip(static_cast<int64_t>(all.size()) + 50),
            static_cast<int64_t>(all.size()) - 1);
  EXPECT_FALSE(cursor.next());
}

TEST(NestCursor, RankZeroSubspaceHasOneEmptyPoint) {
  LoopNestBounds nest = gauss_seidel_nest();
  IntEnv env{{"M", 4}, {"maxK", 3}};
  env[nest.levels[0].var] = nest.levels[0].lower(env);
  env[nest.levels[1].var] = nest.levels[1].lower(env);
  env[nest.levels[2].var] = nest.levels[2].lower(env);
  NestCursor cursor(nest, nest.levels.size(), env);
  EXPECT_TRUE(cursor.next());
  EXPECT_TRUE(cursor.coords().empty());
  EXPECT_FALSE(cursor.next());
  EXPECT_EQ(NestCursor::count(nest, nest.levels.size(), env), 1);
}

TEST(LoopNestBounds, FindLocatesLevelsByName) {
  auto nest = fourier_motzkin_bounds(box2d(0, 1, 0, 1), {"x", "y"});
  ASSERT_TRUE(nest.has_value());
  EXPECT_NE(nest->find("x"), nullptr);
  EXPECT_NE(nest->find("y"), nullptr);
  EXPECT_EQ(nest->find("z"), nullptr);
}

}  // namespace
}  // namespace ps
