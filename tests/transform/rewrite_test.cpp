#include "transform/rewrite.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/interpreter.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

CompileResult transformed_gs() {
  CompileOptions options;
  options.apply_hyperplane = true;
  return compile_or_die(kGaussSeidelSource, options);
}

TEST(Rewrite, ProducesPaperRecurrence) {
  auto result = transformed_gs();
  ASSERT_TRUE(result.transformed.has_value()) << result.diagnostics;
  const std::string& src = result.transformed->source;
  // The simplified recurrence of section 4 ("otherwise by
  // simplification"): interior neighbours at hyperplane K'-1.
  EXPECT_NE(src.find("A'[K' - 1, I', J']"), std::string::npos) << src;
  EXPECT_NE(src.find("A'[K' - 1, I', J' - 1]"), std::string::npos);
  EXPECT_NE(src.find("A'[K' - 1, I' - 1, J']"), std::string::npos);
  EXPECT_NE(src.find("A'[K' - 1, I' - 1, J' + 1]"), std::string::npos);
  // Boundary carry-over at K'-2.
  EXPECT_NE(src.find("A'[K' - 2, I' - 1, J']"), std::string::npos);
  // Pulled-back boundary conditions: J = K' - 2I' - J'.
  EXPECT_NE(src.find("K' - 2 * I' - J'"), std::string::npos);
}

TEST(Rewrite, NewSubrangesBoundTheImage) {
  auto result = transformed_gs();
  const std::string& src = result.transformed->source;
  // K' spans [2*1+0+0, 2*maxK + (M+1) + (M+1)]; I' = K in 1..maxK;
  // J' = I in 0..M+1.
  EXPECT_NE(src.find("K' = 2 .. 2 * maxK + (M + 1) + (M + 1)"),
            std::string::npos)
      << src;
  EXPECT_NE(src.find("I' = 1 .. maxK"), std::string::npos);
  EXPECT_NE(src.find("J' = 0 .. M + 1"), std::string::npos);
}

TEST(Rewrite, OtherEquationsRedirectedThroughT) {
  auto result = transformed_gs();
  const std::string& src = result.transformed->source;
  // newA = A[maxK] becomes A'[2*maxK + I + J, maxK, I].
  EXPECT_NE(src.find("newA[I, J] = A'[2 * maxK + I + J, maxK, I]"),
            std::string::npos)
      << src;
}

TEST(Rewrite, TransformedScheduleMatchesFigure6Shape) {
  auto result = transformed_gs();
  // Outer iteration over hyperplanes, inner loops parallel -- the same
  // shape as the Jacobi schedule of Figure 6.
  std::string line = testutil::schedule_line(*result.transformed);
  EXPECT_NE(line.find("DO K' (DOALL I' (DOALL J' ("), std::string::npos)
      << line;
  // And the untransformed module really was fully iterative.
  std::string orig = testutil::schedule_line(*result.primary);
  EXPECT_NE(orig.find("DO K (DO I (DO J (eq.3)))"), std::string::npos);
}

TEST(Rewrite, TransformedResultsMatchOriginal) {
  auto result = transformed_gs();
  IntEnv params{{"M", 5}, {"maxK", 4}};

  Interpreter original(*result.primary->module, *result.primary->graph,
                       result.primary->schedule.flowchart, params);
  Interpreter transformed(*result.transformed->module,
                          *result.transformed->graph,
                          result.transformed->schedule.flowchart, params);

  for (auto* interp : {&original, &transformed}) {
    NdArray& in = interp->array("InitialA");
    for (int64_t i = 0; i <= 6; ++i)
      for (int64_t j = 0; j <= 6; ++j)
        in.set(std::vector<int64_t>{i, j},
               std::sin(static_cast<double>(i * 7 + j)) * 10.0);
  }
  original.run();
  transformed.run();

  for (int64_t i = 0; i <= 6; ++i)
    for (int64_t j = 0; j <= 6; ++j) {
      std::vector<int64_t> idx{i, j};
      EXPECT_NEAR(original.array("newA").at(idx),
                  transformed.array("newA").at(idx), 1e-12)
          << "element " << i << "," << j;
    }
}

TEST(Rewrite, HeatEquationTransformsToo) {
  // 1-D Gauss-Seidel-style smoothing: u[T,X] = f(u[T,X-1], u[T-1,...]).
  const char* src = R"(
GS1: module (u0: array[X] of real; n: int; s: int): [out: array[X] of real];
type X = 0 .. n; T = 2 .. s;
var u: array [1 .. s] of array [X] of real;
define
  u[1] = u0;
  out = u[s];
  u[T, X] = if X = 0 then u[T-1, X]
            else (u[T, X-1] + u[T-1, X]) / 2;
end GS1;
)";
  CompileOptions options;
  options.apply_hyperplane = true;
  auto result = compile_or_die(src, options);
  ASSERT_TRUE(result.transform.has_value()) << result.diagnostics;
  // deps (1,0) and (0,1): time function T+X.
  EXPECT_EQ(result.transform->time, (std::vector<int64_t>{1, 1}));
  ASSERT_TRUE(result.transformed.has_value());

  IntEnv params{{"n", 8}, {"s", 5}};
  Interpreter original(*result.primary->module, *result.primary->graph,
                       result.primary->schedule.flowchart, params);
  Interpreter transformed(*result.transformed->module,
                          *result.transformed->graph,
                          result.transformed->schedule.flowchart, params);
  for (auto* interp : {&original, &transformed}) {
    NdArray& in = interp->array("u0");
    for (int64_t x = 0; x <= 8; ++x)
      in.set(std::vector<int64_t>{x}, static_cast<double>(x * x % 7));
  }
  original.run();
  transformed.run();
  for (int64_t x = 0; x <= 8; ++x) {
    std::vector<int64_t> idx{x};
    EXPECT_NEAR(original.array("out").at(idx),
                transformed.array("out").at(idx), 1e-12);
  }
}

TEST(Rewrite, NameCollisionDiagnosed) {
  // A module that already declares K' must be rejected.
  auto result = compile_or_die(kGaussSeidelSource);
  DiagnosticEngine diags;
  auto deps = extract_dependences(*result.primary->module, "A", diags);
  ASSERT_TRUE(deps.has_value());
  deps->vars = {"I", "I", "I"};  // forces new vars I', I', I' -- collision
  auto h = find_hyperplane(*deps);
  ASSERT_TRUE(h.has_value());
  auto rewritten = hyperplane_rewrite(*result.primary->module, *h, diags);
  EXPECT_FALSE(rewritten.has_value());
  EXPECT_TRUE(diags.has_errors());
}

}  // namespace
}  // namespace ps
