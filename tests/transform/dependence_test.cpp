#include "transform/dependence.hpp"

#include <gtest/gtest.h>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

TEST(Dependence, GaussSeidelVectors) {
  auto result = compile_or_die(kGaussSeidelSource);
  DiagnosticEngine diags;
  auto deps = extract_dependences(*result.primary->module, "A", diags);
  ASSERT_TRUE(deps.has_value()) << diags.render();
  EXPECT_EQ(deps->array, "A");
  EXPECT_EQ(deps->vars, (std::vector<std::string>{"K", "I", "J"}));
  // d = write - read: A[K-1,I,J] -> (1,0,0); A[K,I,J-1] -> (0,0,1);
  // A[K,I-1,J] -> (0,1,0); A[K-1,I,J+1] -> (1,0,-1);
  // A[K-1,I+1,J] -> (1,-1,0).
  ASSERT_EQ(deps->vectors.size(), 5u);
  EXPECT_EQ(deps->vectors[0], (std::vector<int64_t>{1, 0, 0}));
  EXPECT_EQ(deps->vectors[1], (std::vector<int64_t>{0, 0, 1}));
  EXPECT_EQ(deps->vectors[2], (std::vector<int64_t>{0, 1, 0}));
  EXPECT_EQ(deps->vectors[3], (std::vector<int64_t>{1, 0, -1}));
  EXPECT_EQ(deps->vectors[4], (std::vector<int64_t>{1, -1, 0}));
}

TEST(Dependence, JacobiVectorsDeduplicated) {
  auto result = compile_or_die(kRelaxationSource);
  DiagnosticEngine diags;
  auto deps = extract_dependences(*result.primary->module, "A", diags);
  ASSERT_TRUE(deps.has_value()) << diags.render();
  // Five references but (1,0,0) appears once.
  EXPECT_EQ(deps->vectors.size(), 5u);
  for (const auto& d : deps->vectors) EXPECT_EQ(d[0], 1);
}

TEST(Dependence, CandidatesFindGaussSeidelArray) {
  auto jacobi = compile_or_die(kRelaxationSource);
  auto gs = compile_or_die(kGaussSeidelSource);
  // Both have non-first-dimension offsets (the Jacobi J+1/I+1 neighbours
  // count too), so both list A.
  EXPECT_EQ(transform_candidates(*jacobi.primary->module),
            (std::vector<std::string>{"A"}));
  EXPECT_EQ(transform_candidates(*gs.primary->module),
            (std::vector<std::string>{"A"}));
}

TEST(Dependence, NoCandidatesForPointwiseChain) {
  auto result = compile_or_die(kPointwiseChainSource);
  EXPECT_TRUE(transform_candidates(*result.primary->module).empty());
}

TEST(Dependence, UnknownArrayDiagnosed) {
  auto result = compile_or_die(kRelaxationSource);
  DiagnosticEngine diags;
  EXPECT_FALSE(
      extract_dependences(*result.primary->module, "nope", diags).has_value());
  EXPECT_TRUE(diags.has_errors());
}

TEST(Dependence, GeneralSubscriptRejected) {
  // a[0] is a constant subscript: not constant-offset form. (The
  // scheduler rejects this module too, so go through sema directly.)
  DiagnosticEngine diags;
  Parser parser(R"(
M: module (n: int): [y: array[I] of real];
type I = 0 .. n;
var a: array [I] of real;
define
  a[I] = if I = 0 then 1.0 else a[I - 1] * a[0];
  y[I] = a[I];
end M;
)",
                diags);
  auto ast = parser.parse_module();
  ASSERT_TRUE(ast.has_value());
  Sema sema(diags);
  auto module = sema.check(std::move(*ast));
  ASSERT_TRUE(module.has_value()) << diags.render();
  EXPECT_FALSE(extract_dependences(*module, "a", diags).has_value());
  EXPECT_NE(diags.render().find("non-constant-offset"), std::string::npos);
}

TEST(Dependence, NoSelfReferenceDiagnosed) {
  auto result = compile_or_die(kPointwiseChainSource);
  DiagnosticEngine diags;
  EXPECT_FALSE(
      extract_dependences(*result.primary->module, "a", diags).has_value());
}

}  // namespace
}  // namespace ps
