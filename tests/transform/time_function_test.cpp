#include "transform/time_function.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <random>

namespace ps {
namespace {

TEST(TimeFunction, PaperExample) {
  // Section 4's five dependence inequalities:
  //   a > 0, c > 0, b > 0, a > c, a > b  =>  least a=2, b=c=1.
  std::vector<std::vector<int64_t>> deps = {
      {1, 0, 0}, {0, 0, 1}, {0, 1, 0}, {1, 0, -1}, {1, -1, 0}};
  auto t = solve_time_function(deps);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, (std::vector<int64_t>{2, 1, 1}));
  EXPECT_TRUE(satisfies_dependences(*t, deps));
}

TEST(TimeFunction, JacobiNeedsOnlyFirstDim) {
  // Jacobi dependences: all have +1 in K, anything in I/J.
  std::vector<std::vector<int64_t>> deps = {
      {1, 0, 0}, {1, 0, 1}, {1, 1, 0}, {1, 0, -1}, {1, -1, 0}};
  auto t = solve_time_function(deps);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, (std::vector<int64_t>{1, 0, 0}));
}

TEST(TimeFunction, PureWavefront) {
  // a[I,J] = a[I-1,J] + a[I,J-1]: deps (1,0) and (0,1); least is (1,1).
  std::vector<std::vector<int64_t>> deps = {{1, 0}, {0, 1}};
  auto t = solve_time_function(deps);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, (std::vector<int64_t>{1, 1}));
}

TEST(TimeFunction, InfeasibleOppositeDependences) {
  std::vector<std::vector<int64_t>> deps = {{1, -1}, {-1, 1}};
  EXPECT_FALSE(solve_time_function(deps).has_value());
}

TEST(TimeFunction, ZeroVectorInfeasible) {
  std::vector<std::vector<int64_t>> deps = {{0, 0}};
  EXPECT_FALSE(solve_time_function(deps).has_value());
}

TEST(TimeFunction, NegativeCoefficientWhenNeeded) {
  // Single dependence (1, -2): both (1,0) and (0,-1) have |.|-sum 1; the
  // lexicographic tie-break picks (0,-1).
  std::vector<std::vector<int64_t>> deps = {{1, -2}};
  auto t = solve_time_function(deps);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, (std::vector<int64_t>{0, -1}));
  EXPECT_TRUE(satisfies_dependences(*t, deps));
  // Force a negative coefficient: (0,-1) requires b <= -1.
  deps = {{0, -1}};
  t = solve_time_function(deps);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, (std::vector<int64_t>{0, -1}));
}

TEST(TimeFunction, EmptyInputRejected) {
  EXPECT_FALSE(solve_time_function({}).has_value());
  EXPECT_FALSE(
      solve_time_function({{1, 0}, {1}}).has_value());  // ragged
}

TEST(TimeFunction, SatisfiesHelper) {
  EXPECT_TRUE(satisfies_dependences({2, 1, 1}, {{1, 0, -1}}));
  EXPECT_FALSE(satisfies_dependences({1, 1, 1}, {{1, 0, -1}}));
  EXPECT_FALSE(satisfies_dependences({1, 1}, {{1, 0, -1}}));  // size
}

class TimeFunctionPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TimeFunctionPropertyTest, MatchesBruteForceOptimum) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> dims(1, 3);
  std::uniform_int_distribution<int> count(1, 5);
  std::uniform_int_distribution<int64_t> comp(-2, 2);

  size_t n = static_cast<size_t>(dims(rng));
  std::vector<std::vector<int64_t>> deps;
  int m = count(rng);
  for (int i = 0; i < m; ++i) {
    std::vector<int64_t> d(n);
    for (auto& v : d) v = comp(rng);
    deps.push_back(std::move(d));
  }

  TimeFunctionOptions options;
  options.bound = 8;
  auto got = solve_time_function(deps, options);

  // Brute force over the same box: find min (sum |a|, lex) feasible.
  std::optional<std::vector<int64_t>> best;
  int64_t best_cost = 0;
  std::vector<int64_t> a(n, 0);
  auto cost = [&](const std::vector<int64_t>& v) {
    int64_t s = 0;
    for (int64_t x : v) s += x < 0 ? -x : x;
    return s;
  };
  std::function<void(size_t)> enumerate = [&](size_t k) {
    if (k == n) {
      if (!satisfies_dependences(a, deps)) return;
      int64_t c = cost(a);
      if (!best || c < best_cost || (c == best_cost && a < *best)) {
        best = a;
        best_cost = c;
      }
      return;
    }
    for (int64_t v = -8; v <= 8; ++v) {
      a[k] = v;
      enumerate(k + 1);
    }
    a[k] = 0;
  };
  enumerate(0);

  ASSERT_EQ(got.has_value(), best.has_value());
  if (got) {
    EXPECT_TRUE(satisfies_dependences(*got, deps));
    EXPECT_EQ(*got, *best);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeFunctionPropertyTest,
                         ::testing::Range(0u, 40u));

}  // namespace
}  // namespace ps
