#include "transform/ast_builder.hpp"

#include <gtest/gtest.h>

namespace ps {
namespace {

TEST(AstBuilder, ConstantFolding) {
  EXPECT_EQ(to_string(*mk_add(mk_int(2), mk_int(3))), "5");
  EXPECT_EQ(to_string(*mk_sub(mk_int(2), mk_int(5))), "-3");
  EXPECT_EQ(to_string(*mk_mul(4, mk_int(3))), "12");
  EXPECT_EQ(to_string(*mk_mul(0, mk_name("x"))), "0");
}

TEST(AstBuilder, IdentityFolding) {
  EXPECT_EQ(to_string(*mk_add(mk_name("x"), mk_int(0))), "x");
  EXPECT_EQ(to_string(*mk_add(mk_int(0), mk_name("x"))), "x");
  EXPECT_EQ(to_string(*mk_sub(mk_name("x"), mk_int(0))), "x");
  EXPECT_EQ(to_string(*mk_mul(1, mk_name("x"))), "x");
  EXPECT_EQ(to_string(*mk_mul(-1, mk_name("x"))), "-x");
}

TEST(AstBuilder, NegativeConstantsBecomeSubtraction) {
  // "K' + -2" must print as "K' - 2" (the paper's A'[K' - 2, ...]).
  EXPECT_EQ(to_string(*mk_add(mk_name("K'"), mk_int(-2))), "K' - 2");
  EXPECT_EQ(to_string(*mk_sub(mk_name("K'"), mk_int(-2))), "K' + 2");
}

TEST(AstBuilder, AffineExpressions) {
  // The paper's inverse J = K' - 2I' - J'.
  EXPECT_EQ(to_string(*mk_affine(
                {{1, "K'"}, {-2, "I'"}, {-1, "J'"}}, 0)),
            "K' - 2 * I' - J'");
  EXPECT_EQ(to_string(*mk_affine({{2, "K"}, {1, "I"}, {1, "J"}}, 0)),
            "2 * K + I + J");
  EXPECT_EQ(to_string(*mk_affine({{1, "K'"}}, -1)), "K' - 1");
  EXPECT_EQ(to_string(*mk_affine({{0, "K"}}, 7)), "7");
  EXPECT_EQ(to_string(*mk_affine({}, 0)), "0");
}

TEST(AstBuilder, AndChainDropsNull) {
  ExprPtr a = mk_binary(BinaryOp::Eq, mk_name("I"), mk_int(0));
  ExprPtr chained = mk_and(nullptr, std::move(a));
  EXPECT_EQ(to_string(*chained), "I = 0");
  ExprPtr b = mk_binary(BinaryOp::Eq, mk_name("J"), mk_int(0));
  chained = mk_and(std::move(chained), std::move(b));
  EXPECT_EQ(to_string(*chained), "I = 0 and J = 0");
}

TEST(AstBuilder, SubstituteReplacesNames) {
  // (K - 1) + A[K, I]  with K -> I' becomes (I' - 1) + A[I', I].
  ExprPtr expr = mk_add(
      mk_sub(mk_name("K"), mk_int(1)),
      std::make_unique<IndexExpr>(
          mk_name("A"),
          [] {
            std::vector<ExprPtr> subs;
            subs.push_back(mk_name("K"));
            subs.push_back(mk_name("I"));
            return subs;
          }()));
  ExprPtr repl = mk_name("I'");
  std::vector<std::pair<std::string, const Expr*>> subst{{"K", repl.get()}};
  ExprPtr out = substitute(*expr, subst);
  EXPECT_EQ(to_string(*out), "I' - 1 + A[I', I]");
  // Array base names are not substituted.
  std::vector<std::pair<std::string, const Expr*>> subst2{{"A", repl.get()}};
  ExprPtr out2 = substitute(*expr, subst2);
  EXPECT_EQ(to_string(*out2), "K - 1 + A[K, I]");
}

TEST(AstBuilder, IfBuilder) {
  ExprPtr e = mk_if(mk_binary(BinaryOp::Lt, mk_name("a"), mk_name("b")),
                    mk_int(1), mk_int(2));
  EXPECT_EQ(to_string(*e), "if a < b then 1 else 2");
}

}  // namespace
}  // namespace ps
