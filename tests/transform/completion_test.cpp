#include "transform/hyperplane.hpp"

#include <gtest/gtest.h>

namespace ps {
namespace {

DependenceSet paper_deps() {
  DependenceSet deps;
  deps.array = "A";
  deps.vars = {"K", "I", "J"};
  deps.vectors = {{1, 0, 0}, {0, 0, 1}, {0, 1, 0}, {1, 0, -1}, {1, -1, 0}};
  return deps;
}

TEST(Hyperplane, PaperTransform) {
  auto h = find_hyperplane(paper_deps());
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->time, (std::vector<int64_t>{2, 1, 1}));
  // T = [[2,1,1],[1,0,0],[0,1,0]]: K' = 2K+I+J, I' = K, J' = I.
  EXPECT_EQ(h->T, (IntMatrix{{2, 1, 1}, {1, 0, 0}, {0, 1, 0}}));
  EXPECT_EQ(h->T_inv, (IntMatrix{{0, 1, 0}, {0, 0, 1}, {1, -2, -1}}));
  EXPECT_EQ(h->new_vars, (std::vector<std::string>{"K'", "I'", "J'"}));
  EXPECT_EQ(h->describe(), "K' = 2K + I + J; I' = K; J' = I");
}

TEST(Hyperplane, TransformedDependencesAreLexicographicallyForward) {
  auto h = find_hyperplane(paper_deps());
  ASSERT_TRUE(h.has_value());
  for (const auto& d : paper_deps().vectors) {
    auto td = h->T.apply(d);
    // First component is the time distance: strictly positive.
    EXPECT_GE(td[0], 1) << "dependence got slower than one hyperplane";
  }
}

TEST(Hyperplane, InverseRoundTrips) {
  auto h = find_hyperplane(paper_deps());
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->T.multiply(h->T_inv), IntMatrix::identity(3));
  EXPECT_EQ(h->T_inv.multiply(h->T), IntMatrix::identity(3));
}

TEST(Hyperplane, InfeasibleReturnsNull) {
  DependenceSet deps;
  deps.array = "A";
  deps.vars = {"I", "J"};
  deps.vectors = {{1, -1}, {-1, 1}};
  EXPECT_FALSE(find_hyperplane(deps).has_value());
}

TEST(Hyperplane, WavefrontTwoDim) {
  DependenceSet deps;
  deps.array = "a";
  deps.vars = {"I", "J"};
  deps.vectors = {{1, 0}, {0, 1}};
  auto h = find_hyperplane(deps);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->time, (std::vector<int64_t>{1, 1}));
  EXPECT_TRUE(h->T.is_unimodular());
}

}  // namespace
}  // namespace ps
