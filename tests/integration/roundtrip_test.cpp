// Pretty-printer fidelity across every bundled module and every derived
// (hyperplane-transformed) module: parse -> print -> parse -> print must
// reach a fixed point, and the re-parsed module must compile to the same
// schedule.

#include <gtest/gtest.h>

#include "../common/test_util.hpp"
#include "driver/paper_modules.hpp"
#include "frontend/parser.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintParsePrintIsFixedPoint) {
  DiagnosticEngine diags;
  Parser parser(GetParam(), diags);
  auto module = parser.parse_module();
  ASSERT_TRUE(module.has_value()) << diags.render();
  std::string once = to_source(*module);

  DiagnosticEngine diags2;
  Parser parser2(once, diags2);
  auto module2 = parser2.parse_module();
  ASSERT_TRUE(module2.has_value()) << diags2.render() << "\n" << once;
  EXPECT_EQ(to_source(*module2), once);
}

TEST_P(RoundTripTest, ReparsedModuleSchedulesIdentically) {
  auto original = compile_or_die(GetParam());
  auto reparsed = compile_or_die(original.primary->source);
  EXPECT_EQ(testutil::schedule_line(*original.primary),
            testutil::schedule_line(*reparsed.primary));
}

INSTANTIATE_TEST_SUITE_P(Bundled, RoundTripTest,
                         ::testing::Values(kRelaxationSource,
                                           kGaussSeidelSource,
                                           kHeat1dSource,
                                           kPointwiseChainSource));

TEST(RoundTrip, TransformedModuleReparsesAndReschedules) {
  CompileOptions options;
  options.apply_hyperplane = true;
  auto result = compile_or_die(kGaussSeidelSource, options);
  ASSERT_TRUE(result.transformed.has_value());
  // The pretty-printed transformed module (with primed identifiers) is
  // itself a valid PS module that schedules to the same wavefront.
  auto reparsed = compile_or_die(result.transformed->source);
  EXPECT_EQ(testutil::schedule_line(*result.transformed),
            testutil::schedule_line(*reparsed.primary));
}

TEST(RoundTrip, SymbolicFixedSliceOnLhs) {
  // A fixed LHS subscript may be any integer expression over parameters
  // (here the symbolic upper bound s). The slice equation produces into
  // the recursive array, so it is scheduled before the recurrence's
  // component.
  auto result = compile_or_die(R"(
M: module (x: array[X] of real; n: int; s: int): [y: array[X] of real];
type T = 1 .. s - 1; X = 0 .. n;
var u: array [1 .. s] of array [X] of real;
define
  u[T, X] = if T = 1 then x[X] else u[T-1, X] * 0.5;
  u[s] = x;
  y = u[s];
end M;
)");
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DOALL X (eq.2); DO T (DOALL X (eq.1)); DOALL X (eq.3)");
}

TEST(RoundTrip, SliceEquationReadingTheRecurrenceCannotSchedule) {
  // If the slice equation also *reads* the recursive array (u[s] =
  // u[s-1]) it joins the MSCC with a general subscript in the T
  // dimension and no T loop of its own: the paper's algorithm correctly
  // reports the component unschedulable (step 2a).
  Compiler compiler;
  auto result = compiler.compile(R"(
M: module (x: array[X] of real; n: int; s: int): [y: array[X] of real];
type T = 1 .. s - 1; X = 0 .. n;
var u: array [1 .. s] of array [X] of real;
define
  u[T, X] = if T = 1 then x[X] else u[T-1, X] * 0.5;
  u[s] = u[s - 1];
  y = u[s];
end M;
)");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics.find("cannot be scheduled"),
            std::string::npos)
      << result.diagnostics;
}

}  // namespace
}  // namespace ps
