// Further workloads beyond the paper's relaxation: a 3-D stencil (depth-4
// loop nest), SOR with a real relaxation factor, prefix sums (a pure
// recurrence), and a two-array red/black-style alternation. Each checks
// schedule shape, validation and execution.

#include <gtest/gtest.h>

#include <cmath>

#include "../common/test_util.hpp"
#include "core/validator.hpp"
#include "runtime/interpreter.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

TEST(ExtraModules, ThreeDimensionalJacobi) {
  auto result = compile_or_die(R"(
Jac3: module (g0: array[I,J,L] of real; M: int; maxK: int):
  [gOut: array[I,J,L] of real];
type I, J, L = 0 .. M+1;  K = 2 .. maxK;
var g: array [1 .. maxK] of array [I,J,L] of real;
define
  g[1] = g0;
  gOut = g[maxK];
  g[K,I,J,L] = if I = 0 or J = 0 or L = 0
               or I = M+1 or J = M+1 or L = M+1
               then g[K-1,I,J,L]
               else (g[K-1,I-1,J,L] + g[K-1,I+1,J,L]
                    +g[K-1,I,J-1,L] + g[K-1,I,J+1,L]
                    +g[K-1,I,J,L-1] + g[K-1,I,J,L+1]) / 6;
end Jac3;
)");
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DOALL I (DOALL J (DOALL L (eq.1))); "
            "DO K (DOALL I (DOALL J (DOALL L (eq.3)))); "
            "DOALL I (DOALL J (DOALL L (eq.2)))");
  const auto& vd = result.primary->schedule.virtual_dims.at("g");
  EXPECT_TRUE(vd[0].is_virtual);
  EXPECT_EQ(vd[0].window, 2);

  IntEnv params{{"M", 4}, {"maxK", 3}};
  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph,
                                  result.primary->schedule.flowchart, params);
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);

  // An all-constant grid is a fixed point of the 6-point average.
  InterpreterOptions options;
  options.use_virtual_windows = true;
  options.virtual_dims = &result.primary->schedule.virtual_dims;
  Interpreter interp(*result.primary->module, *result.primary->graph,
                     result.primary->schedule.flowchart, params, {}, options);
  interp.array("g0").fill(3.25);
  interp.run();
  EXPECT_DOUBLE_EQ(
      interp.array("gOut").at(std::vector<int64_t>{2, 2, 2}), 3.25);
}

TEST(ExtraModules, SorWithRealFactor) {
  auto result = compile_or_die(R"(
Sor: module (x0: array[X] of real; n: int; s: int; omega: real):
  [xOut: array[X] of real];
type T = 2 .. s; X = 0 .. n;
var x: array [1 .. s] of array [X] of real;
define
  x[1] = x0;
  xOut = x[s];
  x[T,X] = if X = 0 or X = n
           then x[T-1,X]
           else (1.0 - omega) * x[T-1,X]
                + omega * (x[T-1,X-1] + x[T-1,X+1]) / 2;
end Sor;
)");
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DOALL X (eq.1); DO T (DOALL X (eq.3)); DOALL X (eq.2)");

  IntEnv params{{"n", 10}, {"s", 6}};
  Interpreter interp(*result.primary->module, *result.primary->graph,
                     result.primary->schedule.flowchart, params,
                     {{"omega", 1.5}});
  auto span = interp.array("x0").raw();
  for (size_t i = 0; i < span.size(); ++i)
    span[i] = static_cast<double>(i % 4);
  interp.run();
  // Hand-check one interior point of the first sweep at maxK = 2.
  Interpreter one(*result.primary->module, *result.primary->graph,
                  result.primary->schedule.flowchart,
                  IntEnv{{"n", 10}, {"s", 2}}, {{"omega", 1.5}});
  auto span1 = one.array("x0").raw();
  for (size_t i = 0; i < span1.size(); ++i)
    span1[i] = static_cast<double>(i % 4);
  one.run();
  double expected = (1.0 - 1.5) * 1.0 + 1.5 * (0.0 + 2.0) / 2;
  EXPECT_NEAR(one.array("xOut").at(std::vector<int64_t>{1}), expected,
              1e-12);
}

TEST(ExtraModules, PrefixSumIsIterative) {
  auto result = compile_or_die(R"(
Prefix: module (x: array[I] of real; n: int): [p: array[I] of real];
type I = 0 .. n;
var acc: array [I] of real;
define
  acc[I] = if I = 0 then x[I] else acc[I-1] + x[I];
  p[I] = acc[I];
end Prefix;
)");
  // The self-dependence acc[I-1] forces a DO loop (no parallelism without
  // a scan primitive, which the 1987 algorithm does not have).
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DO I (eq.1); DOALL I (eq.2)");

  Interpreter interp(*result.primary->module, *result.primary->graph,
                     result.primary->schedule.flowchart, IntEnv{{"n", 9}});
  auto span = interp.array("x").raw();
  for (size_t i = 0; i < span.size(); ++i) span[i] = 1.0;
  interp.run();
  for (int64_t i = 0; i <= 9; ++i)
    EXPECT_DOUBLE_EQ(interp.array("p").at(std::vector<int64_t>{i}),
                     static_cast<double>(i + 1));
}

TEST(ExtraModules, AlternatingArraysShareIterativeLoop) {
  // Ping-pong between two arrays: both live in one MSCC, scheduling a
  // single shared DO T with both equations inside.
  auto result = compile_or_die(R"(
PingPong: module (x: array[X] of real; n: int; s: int):
  [y: array[X] of real];
type T = 2 .. s; X = 0 .. n;
var a: array [1 .. s] of array [X] of real;
    b: array [1 .. s] of array [X] of real;
define
  a[1] = x;
  b[1] = x;
  a[T,X] = b[T-1,X] * 0.5 + a[T-1,X] * 0.5;
  b[T,X] = a[T-1,X];
  y[X] = a[s,X] + b[s,X];
end PingPong;
)");
  std::string line = testutil::schedule_line(*result.primary);
  EXPECT_NE(line.find("DO T (DOALL X (eq.3); DOALL X (eq.4))"),
            std::string::npos)
      << line;

  IntEnv params{{"n", 6}, {"s", 5}};
  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph,
                                  result.primary->schedule.flowchart, params);
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);
  // Both a and b get window 2: their in-component uses are T-1 and the
  // outside reads are at the upper bound s.
  EXPECT_TRUE(result.primary->schedule.virtual_dims.at("a")[0].is_virtual);
  EXPECT_TRUE(result.primary->schedule.virtual_dims.at("b")[0].is_virtual);
  EXPECT_EQ(result.primary->schedule.virtual_dims.at("a")[0].window, 2);
}

TEST(ExtraModules, TriangularGuardStillSchedules) {
  // Guards may be arbitrary expressions over the index variables; only
  // subscripts constrain the scheduler.
  auto result = compile_or_die(R"(
Tri: module (x: array[I, J] of real; n: int): [y: array[I, J] of real];
type I = 0 .. n; J = 0 .. n;
define
  y[I, J] = if J > I then 0.0 else x[I, J];
end Tri;
)");
  EXPECT_EQ(testutil::schedule_line(*result.primary),
            "DOALL I (DOALL J (eq.1))");
}

}  // namespace
}  // namespace ps
