// Differential testing across every execution engine: for each module
// of the paper corpus and each extra .ps example, the tree-walking
// Interpreter, the EvalCore bytecode engine and the generated C
// (compiled with the system C compiler) must agree bit-for-bit on every
// output -- and the WavefrontRunner's two evaluators must agree on the
// hyperplane-transformed modules. See tests/common/differential.hpp for
// the harness.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/differential.hpp"
#include "driver/paper_modules.hpp"

namespace ps {
namespace {

using testutil::DiffCase;
using testutil::compile_or_die;

// The extra example modules (3-D stencil, SOR, prefix sum, ping-pong,
// triangular guard) exercise shapes the paper corpus does not: depth-4
// nests, real scalar parameters, pure recurrences, multi-array MSCCs.

constexpr const char* kJac3Source = R"(
Jac3: module (g0: array[I,J,L] of real; M: int; maxK: int):
  [gOut: array[I,J,L] of real];
type I, J, L = 0 .. M+1;  K = 2 .. maxK;
var g: array [1 .. maxK] of array [I,J,L] of real;
define
  g[1] = g0;
  gOut = g[maxK];
  g[K,I,J,L] = if I = 0 or J = 0 or L = 0
               or I = M+1 or J = M+1 or L = M+1
               then g[K-1,I,J,L]
               else (g[K-1,I-1,J,L] + g[K-1,I+1,J,L]
                    +g[K-1,I,J-1,L] + g[K-1,I,J+1,L]
                    +g[K-1,I,J,L-1] + g[K-1,I,J,L+1]) / 6;
end Jac3;
)";

constexpr const char* kSorSource = R"(
Sor: module (x0: array[X] of real; n: int; s: int; omega: real):
  [xOut: array[X] of real];
type T = 2 .. s; X = 0 .. n;
var x: array [1 .. s] of array [X] of real;
define
  x[1] = x0;
  xOut = x[s];
  x[T,X] = if X = 0 or X = n
           then x[T-1,X]
           else (1.0 - omega) * x[T-1,X]
                + omega * (x[T-1,X-1] + x[T-1,X+1]) / 2;
end Sor;
)";

constexpr const char* kPrefixSource = R"(
Prefix: module (x: array[I] of real; n: int): [p: array[I] of real];
type I = 0 .. n;
var acc: array [I] of real;
define
  acc[I] = if I = 0 then x[I] else acc[I-1] + x[I];
  p[I] = acc[I];
end Prefix;
)";

constexpr const char* kPingPongSource = R"(
PingPong: module (x: array[X] of real; n: int; s: int):
  [y: array[X] of real];
type T = 2 .. s; X = 0 .. n;
var a: array [1 .. s] of array [X] of real;
    b: array [1 .. s] of array [X] of real;
define
  a[1] = x;
  b[1] = x;
  a[T,X] = b[T-1,X] * 0.5 + a[T-1,X] * 0.5;
  b[T,X] = a[T-1,X];
  y[X] = a[s,X] + b[s,X];
end PingPong;
)";

constexpr const char* kTriangularSource = R"(
Tri: module (x: array[I, J] of real; n: int): [y: array[I, J] of real];
type I = 0 .. n; J = 0 .. n;
define
  y[I, J] = if J > I then 0.0 else x[I, J];
end Tri;
)";

// Integer-element arrays end to end: a 2-D summed-area recurrence over
// int inputs with an int array output. The generated-C leg used to
// cover only real-element arrays; this case pins the `long` signature,
// the integer fill and the %ld output path.
constexpr const char* kIntGridSource = R"(
IntGrid: module (seed: array[I, J] of int; n: int):
  [cnt: array[I, J] of int];
type I = 0 .. n; J = 0 .. n;
define
  cnt[I, J] = if I = 0 or J = 0
              then seed[I, J]
              else seed[I, J] + cnt[I-1, J] + cnt[I, J-1] - cnt[I-1, J-1];
end IntGrid;
)";

// The widened native fragment (ISSUE 8): record fields and real-valued
// fixed LHS subscripts used to be the top fallback causes out of the
// bytecode and native tiers. These two modules pin them inside the
// fragment -- all three interpreter tiers must run them bit-exact, the
// native one with an empty fallback_reason.

// Records end to end: a rank-0 record input broadcast into a record
// array, field reads feeding real arithmetic, and a record-to-record
// copy (with a fixed subscript) into a rank-0 record output.
constexpr const char* kParticlesSource = R"(
Particles: module (p: Pt; scale: array[I] of real; n: int):
  [energy: array[I] of real; pick: Pt];
type I = 0 .. n; Pt = record m: real; v: real; end;
var held: array [I] of Pt;
define
  held[I] = p;
  energy[I] = held[I].m * scale[I] + held[I].v * 0.5;
  pick = held[n];
end Particles;
)";

// A real-valued fixed LHS subscript seeding the first sweep: 1.5
// truncates to row 1 through the tiers' shared defined conversion
// (bc_double_to_int64), so tree walk, bytecode and native must land on
// the same cell.
constexpr const char* kSeedRealSource = R"(
SeedReal: module (x0: array[X] of real; n: int; s: int):
  [xOut: array[X] of real];
type T = 2 .. s; X = 0 .. n;
var x: array [1 .. s] of array [X] of real;
define
  x[1.5] = x0;
  xOut = x[s];
  x[T,X] = if X = 0 or X = n
           then x[T-1,X]
           else (x[T-1,X-1] + x[T-1,X+1]) / 2;
end SeedReal;
)";

std::vector<DiffCase> differential_corpus() {
  std::vector<DiffCase> cases;
  cases.push_back({"jacobi", kRelaxationSource,
                   IntEnv{{"M", 6}, {"maxK", 5}}, {}});
  cases.push_back({"gauss_seidel", kGaussSeidelSource,
                   IntEnv{{"M", 6}, {"maxK", 5}}, {}});
  cases.push_back({"heat1d", kHeat1dSource,
                   IntEnv{{"N", 10}, {"steps", 6}}, {{"r", 0.21}}});
  cases.push_back({"chain", kPointwiseChainSource, IntEnv{{"N", 16}}, {}});
  cases.push_back({"jac3", kJac3Source, IntEnv{{"M", 4}, {"maxK", 3}}, {}});
  cases.push_back({"sor", kSorSource, IntEnv{{"n", 10}, {"s", 6}},
                   {{"omega", 1.5}}});
  cases.push_back({"prefix", kPrefixSource, IntEnv{{"n", 9}}, {}});
  cases.push_back({"pingpong", kPingPongSource,
                   IntEnv{{"n", 6}, {"s", 5}}, {}});
  cases.push_back({"tri", kTriangularSource, IntEnv{{"n", 8}}, {}});
  cases.push_back({"intgrid", kIntGridSource, IntEnv{{"n", 7}}, {}});
  cases.push_back({"particles", kParticlesSource, IntEnv{{"n", 8}}, {}});
  cases.push_back({"seedreal", kSeedRealSource,
                   IntEnv{{"n", 10}, {"s", 6}}, {}});
  return cases;
}

class Differential : public ::testing::TestWithParam<DiffCase> {};

/// Engine 1 vs engine 2: tree walk and bytecode over the primary module
/// and (where the hyperplane transform applies) the rewritten module,
/// comparing every non-input value including locals.
TEST_P(Differential, TreeWalkMatchesBytecode) {
  DiffCase test_case = GetParam();
  CompileOptions options = test_case.options;
  options.apply_hyperplane = true;
  auto result = compile_or_die(test_case.source, options);

  std::vector<const CompiledModule*> stages{result.primary.operator->()};
  if (result.transformed) stages.push_back(result.transformed.operator->());
  for (const CompiledModule* stage : stages) {
    auto tree = testutil::run_interpreter(*stage, test_case,
                                          EvalEngine::TreeWalk);
    auto bytecode = testutil::run_interpreter(*stage, test_case,
                                              EvalEngine::Bytecode);
    testutil::expect_bitwise_equal(
        tree, bytecode, test_case.name + "/" + stage->module->name);
  }
}

/// Engine 3: the generated C, compiled with the system compiler and run
/// on the reference grid, must reproduce the interpreter's outputs to
/// the bit.
TEST_P(Differential, GeneratedCMatchesInterpreter) {
  if (!testutil::have_cc()) GTEST_SKIP() << "no system C compiler";
  DiffCase test_case = GetParam();
  auto result = compile_or_die(test_case.source, test_case.options);
  if (!testutil::make_c_main(*result.primary->module, test_case))
    GTEST_SKIP() << test_case.name
                 << ": record items outside the generated-C driver";

  auto interp = testutil::run_interpreter(*result.primary, test_case,
                                          EvalEngine::Bytecode,
                                          /*outputs_only=*/true);
  auto c_run = testutil::run_generated_c(*result.primary, test_case,
                                         test_case.name);
  ASSERT_TRUE(c_run.has_value()) << test_case.name;
  testutil::expect_bitwise_equal(interp, *c_run, test_case.name + "/C");
}

/// The hyperplane-rewritten module's generated C (with exact Lamport
/// bounds) differentially against its own interpreter run.
TEST_P(Differential, TransformedGeneratedCMatchesInterpreter) {
  if (!testutil::have_cc()) GTEST_SKIP() << "no system C compiler";
  DiffCase test_case = GetParam();
  CompileOptions options = test_case.options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  auto result = compile_or_die(test_case.source, options);
  if (!result.transformed)
    GTEST_SKIP() << test_case.name << " has no hyperplane transform";
  if (!testutil::make_c_main(*result.transformed->module, test_case))
    GTEST_SKIP() << test_case.name
                 << ": record items outside the generated-C driver";

  auto interp = testutil::run_interpreter(*result.transformed, test_case,
                                          EvalEngine::Bytecode,
                                          /*outputs_only=*/true);
  auto c_run = testutil::run_generated_c(*result.transformed, test_case,
                                         test_case.name + "_h");
  ASSERT_TRUE(c_run.has_value()) << test_case.name;
  testutil::expect_bitwise_equal(interp, *c_run,
                                 test_case.name + "/transformed-C");
}

/// Engine 4 (where applicable): the windowed WavefrontRunner under both
/// of its evaluators.
TEST_P(Differential, WavefrontEnginesAgree) {
  DiffCase test_case = GetParam();
  bool checked = testutil::expect_wavefront_engines_agree(test_case);
  if (!checked)
    GTEST_SKIP() << test_case.name << " has no hyperplane transform";
}

/// Engine 5 (ISSUE 8): the interpreter's own native tier. `psc
/// --engine=native` on a plain (non-wavefront) run executes the whole
/// flowchart through one JIT kernel; every corpus module -- including
/// the record-field and fixed-real-subscript shapes the widened emitter
/// fragment just admitted -- must run on it with an empty
/// fallback_reason and agree bit-exactly with the tree walk and the
/// bytecode engine on every non-input value.
TEST_P(Differential, NativeModuleKernelMatchesOtherTiers) {
  DiffCase test_case = GetParam();
  if (!testutil::expect_native_interpreter_agrees(test_case))
    GTEST_SKIP() << "no system C compiler for the native tier";
}

/// The parallel native whole-module kernel (psc_module_par's DOALL
/// sites fanned over a worker pool) at -j 1, 2 and 8: every leg must
/// stay on the native tier (empty fallback_reason) and reproduce the
/// tree walk bit for bit -- slicing a DOALL across workers must not
/// change which cell any instance writes or the order of operations
/// within one instance.
TEST_P(Differential, ParallelNativeModuleKernelMatchesTreeWalk) {
  DiffCase test_case = GetParam();
  if (!testutil::expect_parallel_native_interpreter_agrees(test_case))
    GTEST_SKIP() << "no system C compiler for the native tier";
}

/// The work-stealing wavefront backend at 1, 2 and 8 workers against
/// the sequential tree-walk reference: dynamic chunk migration between
/// workers must be invisible in the outputs and the counters.
TEST_P(Differential, WorkStealingWavefrontMatchesTreeWalk) {
  DiffCase test_case = GetParam();
  if (!testutil::expect_workstealing_wavefront_agrees(test_case))
    GTEST_SKIP() << test_case.name << " has no hyperplane transform";
}

/// The two parallel paths under fuzzed input shapes: random extents
/// through the parallel native kernel and the work-stealing backend,
/// still bit-exact against the tree walk at every worker count.
TEST_P(Differential, FuzzedShapesAgreeOnParallelPaths) {
  DiffCase base = GetParam();
  uint64_t seed = 0x6a09e667u;
  for (char c : base.name) seed = seed * 131 + static_cast<uint64_t>(c);
  for (const DiffCase& fuzzed :
       testutil::fuzz_int_env_cases(base, /*count=*/2, seed)) {
    if (!testutil::expect_parallel_native_interpreter_agrees(fuzzed))
      GTEST_SKIP() << "no system C compiler for the native tier";
    testutil::expect_workstealing_wavefront_agrees(fuzzed);
    if (::testing::Test::HasFatalFailure()) break;
  }
}

/// The native module kernel under fuzzed input shapes and IEEE
/// edge-value array contents: the JIT'd C must reproduce the
/// interpreters' arithmetic bit for bit across random extents,
/// denormals, signed zeroes and overflow-to-infinity -- on the widened
/// fragment too (records, fixed real LHS subscripts).
TEST_P(Differential, FuzzedShapesAndContentsAgreeOnNativeTier) {
  DiffCase base = GetParam();
  uint64_t seed = 0xa0761d64u;
  for (char c : base.name) seed = seed * 131 + static_cast<uint64_t>(c);
  std::vector<DiffCase> fuzzed =
      testutil::fuzz_int_env_cases(base, /*count=*/2, seed);
  for (DiffCase& content :
       testutil::fuzz_array_content_cases(base, /*count=*/1))
    fuzzed.push_back(std::move(content));
  for (const DiffCase& variant : fuzzed) {
    if (!testutil::expect_native_interpreter_agrees(variant))
      GTEST_SKIP() << "no system C compiler for the native tier";
    if (::testing::Test::HasFatalFailure()) break;
  }
}

/// Input fuzzing (ROADMAP item): random IntEnv shapes as module inputs,
/// each fuzzed shape run through the tree walk and the bytecode engine
/// under both dispatch strategies (direct-threaded and portable
/// switch), asserting bit-exact agreement on every non-input value.
TEST_P(Differential, FuzzedIntEnvShapesAgreeAcrossEngines) {
  DiffCase base = GetParam();
  uint64_t seed = 0x9e3779b9;
  for (char c : base.name) seed = seed * 131 + static_cast<uint64_t>(c);
  for (const DiffCase& fuzzed :
       testutil::fuzz_int_env_cases(base, /*count=*/4, seed)) {
    testutil::expect_engines_agree_on_case(fuzzed);
    if (::testing::Test::HasFatalFailure()) break;
  }
}

/// Content fuzzing (ROADMAP item, grown from the shape fuzzer): the
/// same module shapes but with IEEE edge values -- denormals, signed
/// zeroes, huge magnitudes -- as array contents, run through the tree
/// walk and the bytecode engine under both dispatch strategies.
/// Gradual underflow, -0.0 propagation and overflow to infinity must
/// not depend on which evaluator (or which dispatcher) executed the
/// arithmetic.
TEST_P(Differential, FuzzedArrayContentsAgreeAcrossEngines) {
  DiffCase base = GetParam();
  for (const DiffCase& fuzzed :
       testutil::fuzz_array_content_cases(base, /*count=*/3)) {
    testutil::expect_engines_agree_on_case(fuzzed);
    if (::testing::Test::HasFatalFailure()) break;
  }
}

/// The IEEE edge-value content patterns through the generated-C leg:
/// the same fill the interpreters see is embedded as exact hex-float
/// literals in the generated main, and outputs travel back as raw bit
/// patterns -- so denormals, signed zeroes, infinities and NaNs must
/// agree bit for bit between the bytecode engine and cc's code.
TEST_P(Differential, FuzzedArrayContentsMatchGeneratedC) {
  if (!testutil::have_cc()) GTEST_SKIP() << "no system C compiler";
  DiffCase base = GetParam();
  for (const DiffCase& fuzzed :
       testutil::fuzz_array_content_cases(base, /*count=*/2)) {
    auto result = compile_or_die(fuzzed.source, fuzzed.options);
    if (!testutil::make_c_main(*result.primary->module, fuzzed))
      GTEST_SKIP() << fuzzed.name
                   << ": record items outside the generated-C driver";
    auto interp = testutil::run_interpreter(*result.primary, fuzzed,
                                            EvalEngine::Bytecode,
                                            /*outputs_only=*/true);
    auto c_run = testutil::run_generated_c(*result.primary, fuzzed,
                                           fuzzed.name + "_c");
    ASSERT_TRUE(c_run.has_value()) << fuzzed.name;
    testutil::expect_bitwise_equal(interp, *c_run, fuzzed.name + "/C");
    if (::testing::Test::HasFatalFailure()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Differential, ::testing::ValuesIn(differential_corpus()),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      return info.param.name;
    });

/// The corpus accessor feeds the batch driver, the bench and this
/// harness from one list; pin its shape.
TEST(DifferentialCorpus, PaperCorpusIsComplete) {
  const auto& corpus = paper_corpus();
  ASSERT_EQ(corpus.size(), 4u);
  EXPECT_STREQ(corpus[0].name, "jacobi");
  EXPECT_STREQ(corpus[1].name, "gauss-seidel");
  EXPECT_STREQ(corpus[2].name, "heat1d");
  EXPECT_STREQ(corpus[3].name, "chain");
  for (const PaperModule& module : corpus) {
    auto result = compile_or_die(module.source);
    EXPECT_TRUE(result.primary.has_value()) << module.name;
  }
}

}  // namespace
}  // namespace ps
