// Smoke tests for the psc command-line driver.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/paper_modules.hpp"

namespace ps {
namespace {

std::string psc_binary() {
  // Tests run from build/tests; the driver sits in build/src/driver.
  return std::string(PSC_BINARY);
}

struct CliResult {
  int exit_code;
  std::string out;
};

CliResult run_psc(const std::string& args, const char* source) {
  std::string dir = ::testing::TempDir();
  std::string input = dir + "/cli_input.ps";
  {
    std::ofstream f(input);
    f << source;
  }
  std::string out_file = dir + "/cli_out.txt";
  std::string cmd =
      psc_binary() + " " + args + " " + input + " > " + out_file + " 2>&1";
  int rc = std::system(cmd.c_str());
  std::ifstream f(out_file);
  std::ostringstream os;
  os << f.rdbuf();
  return CliResult{WEXITSTATUS(rc), os.str()};
}

TEST(Cli, DefaultPrintsSchedule) {
  CliResult r = run_psc("", kRelaxationSource);
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("DO K ("), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("DOALL I ("), std::string::npos);
}

TEST(Cli, ComponentsTable) {
  CliResult r = run_psc("--components", kRelaxationSource);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("A, eq.3"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("(null)"), std::string::npos);
}

TEST(Cli, HyperplaneReportsTransform) {
  CliResult r = run_psc("--hyperplane", kGaussSeidelSource);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("K' = 2K + I + J; I' = K; J' = I"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("DOALL I' ("), std::string::npos);
}

TEST(Cli, ExactPrintsLamportBounds) {
  CliResult r = run_psc("--exact", kGaussSeidelSource);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("exact loop bounds (Lamport)"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("K' = 2 .. 2*M + 2*maxK + 2"), std::string::npos);
  EXPECT_NE(r.out.find("min(floor((K')/2), maxK)"), std::string::npos);
}

TEST(Cli, ExactEmitsNonRectangularC) {
  CliResult r = run_psc("--exact --c", kGaussSeidelSource);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("psc_ceil_div"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("_hi ="), std::string::npos);
}

TEST(Cli, EmitsC) {
  CliResult r = run_psc("--c", kRelaxationSource);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("void Relaxation("), std::string::npos);
  EXPECT_NE(r.out.find("#pragma omp parallel for"), std::string::npos);
}

TEST(Cli, DotOutput) {
  CliResult r = run_psc("--dot", kRelaxationSource);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("digraph"), std::string::npos);
}

TEST(Cli, BadInputFailsWithDiagnostics) {
  CliResult r = run_psc("", "this is not a module");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.out.find("error"), std::string::npos) << r.out;
}

TEST(Cli, MissingFileFails) {
  std::string cmd = psc_binary() + " /nonexistent.ps > /dev/null 2>&1";
  int rc = std::system(cmd.c_str());
  EXPECT_NE(WEXITSTATUS(rc), 0);
}

TEST(Cli, PassesListsThePipeline) {
  // --passes needs no input file: it lists the stages for the options
  // and verifies their ordering.
  std::string cmd = psc_binary() + " --passes --exact";
  std::string out_file = std::string(::testing::TempDir()) + "/passes.txt";
  int rc = std::system((cmd + " > " + out_file + " 2>&1").c_str());
  EXPECT_EQ(WEXITSTATUS(rc), 0);
  std::ifstream f(out_file);
  std::ostringstream os;
  os << f.rdbuf();
  std::string out = os.str();
  for (const char* stage : {"Parse", "Sema", "DepGraph", "Schedule",
                            "Hyperplane", "ExactBounds", "Emit"})
    EXPECT_NE(out.find(stage), std::string::npos) << out;
  EXPECT_NE(out.find("ordering: ok"), std::string::npos) << out;
  // LoopMerge is off without --merge.
  EXPECT_NE(out.find("LoopMerge  (disabled by options)"), std::string::npos)
      << out;
}

TEST(Cli, TimePassesPrintsPerStageTiming) {
  CliResult r = run_psc("--time-passes --exact", kGaussSeidelSource);
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("Pass"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("Time (ms)"), std::string::npos);
  EXPECT_NE(r.out.find("Hyperplane"), std::string::npos);
  EXPECT_NE(r.out.find("total"), std::string::npos);
}

}  // namespace
}  // namespace ps
