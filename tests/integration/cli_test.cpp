// Smoke tests for the psc command-line driver.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json_lint.hpp"
#include "driver/paper_modules.hpp"

namespace ps {
namespace {

std::string psc_binary() {
  // Tests run from build/tests; the driver sits in build/src/driver.
  return std::string(PSC_BINARY);
}

struct CliResult {
  int exit_code;
  std::string out;
};

CliResult run_psc(const std::string& args, const char* source) {
  // Unique per process and per invocation: ctest runs the CLI tests in
  // parallel out of one TempDir, and a shared fixed file name lets one
  // test clobber another's input mid-run.
  static int invocation = 0;
  std::string tag = std::to_string(getpid()) + "_" +
                    std::to_string(invocation++);
  std::string dir = ::testing::TempDir();
  std::string input = dir + "/cli_input_" + tag + ".ps";
  {
    std::ofstream f(input);
    f << source;
  }
  std::string out_file = dir + "/cli_out_" + tag + ".txt";
  std::string cmd =
      psc_binary() + " " + args + " " + input + " > " + out_file + " 2>&1";
  int rc = std::system(cmd.c_str());
  std::ifstream f(out_file);
  std::ostringstream os;
  os << f.rdbuf();
  return CliResult{WEXITSTATUS(rc), os.str()};
}

TEST(Cli, DefaultPrintsSchedule) {
  CliResult r = run_psc("", kRelaxationSource);
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("DO K ("), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("DOALL I ("), std::string::npos);
}

TEST(Cli, ComponentsTable) {
  CliResult r = run_psc("--components", kRelaxationSource);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("A, eq.3"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("(null)"), std::string::npos);
}

TEST(Cli, HyperplaneReportsTransform) {
  CliResult r = run_psc("--hyperplane", kGaussSeidelSource);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("K' = 2K + I + J; I' = K; J' = I"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("DOALL I' ("), std::string::npos);
}

TEST(Cli, ExactPrintsLamportBounds) {
  CliResult r = run_psc("--exact", kGaussSeidelSource);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("exact loop bounds (Lamport)"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("K' = 2 .. 2*M + 2*maxK + 2"), std::string::npos);
  EXPECT_NE(r.out.find("min(floor((K')/2), maxK)"), std::string::npos);
}

TEST(Cli, ExactEmitsNonRectangularC) {
  CliResult r = run_psc("--exact --c", kGaussSeidelSource);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("psc_ceil_div"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("_hi ="), std::string::npos);
}

TEST(Cli, EmitsC) {
  CliResult r = run_psc("--c", kRelaxationSource);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("void Relaxation("), std::string::npos);
  EXPECT_NE(r.out.find("#pragma omp parallel for"), std::string::npos);
}

TEST(Cli, DotOutput) {
  CliResult r = run_psc("--dot", kRelaxationSource);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("digraph"), std::string::npos);
}

TEST(Cli, BadInputFailsWithDiagnostics) {
  CliResult r = run_psc("", "this is not a module");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.out.find("error"), std::string::npos) << r.out;
}

TEST(Cli, MissingFileFails) {
  std::string cmd = psc_binary() + " /nonexistent.ps > /dev/null 2>&1";
  int rc = std::system(cmd.c_str());
  EXPECT_NE(WEXITSTATUS(rc), 0);
}

TEST(Cli, PassesListsThePipeline) {
  // --passes needs no input file: it lists the stages for the options
  // and verifies their ordering.
  std::string cmd = psc_binary() + " --passes --exact";
  std::string out_file = std::string(::testing::TempDir()) + "/passes.txt";
  int rc = std::system((cmd + " > " + out_file + " 2>&1").c_str());
  EXPECT_EQ(WEXITSTATUS(rc), 0);
  std::ifstream f(out_file);
  std::ostringstream os;
  os << f.rdbuf();
  std::string out = os.str();
  for (const char* stage : {"Parse", "Sema", "DepGraph", "Schedule",
                            "Hyperplane", "ExactBounds", "Emit"})
    EXPECT_NE(out.find(stage), std::string::npos) << out;
  EXPECT_NE(out.find("ordering: ok"), std::string::npos) << out;
  // LoopMerge is off without --merge.
  EXPECT_NE(out.find("LoopMerge  (disabled by options)"), std::string::npos)
      << out;
}

// ---------------------------------------------------------------------------
// Batch mode: several inputs, -j N, --batch-report, --corpus.
// ---------------------------------------------------------------------------

/// Write named sources into a fresh temp dir and run psc over them with
/// extra args; returns exit code and combined output.
CliResult run_psc_files(
    const std::string& args,
    const std::vector<std::pair<std::string, std::string>>& files,
    const std::string& tag) {
  std::string dir = std::string(::testing::TempDir()) + "psc_batch_" + tag;
  std::string mkdir = "mkdir -p " + dir;
  EXPECT_EQ(std::system(mkdir.c_str()), 0);
  std::string cmd = psc_binary() + " " + args;
  for (const auto& [name, source] : files) {
    std::ofstream f(dir + "/" + name);
    f << source;
    cmd += " " + dir + "/" + name;
  }
  std::string out_file = dir + "/out.txt";
  int rc = std::system((cmd + " > " + out_file + " 2>&1").c_str());
  std::ifstream f(out_file);
  std::ostringstream os;
  os << f.rdbuf();
  return CliResult{WEXITSTATUS(rc), os.str()};
}

TEST(CliBatch, MultiFileOutputIsIdenticalAcrossJobCounts) {
  std::vector<std::pair<std::string, std::string>> files = {
      {"a.ps", kRelaxationSource},
      {"b.ps", kGaussSeidelSource},
      {"c.ps", kHeat1dSource},
  };
  // Same directory for both runs so the per-unit headers (which name
  // the input paths) are comparable byte for byte.
  CliResult j1 = run_psc_files("--c -j 1", files, "jx");
  CliResult j8 = run_psc_files("--c -j 8", files, "jx");
  EXPECT_EQ(j1.exit_code, 0) << j1.out;
  EXPECT_EQ(j8.exit_code, 0);
  // Byte-identical batch output regardless of parallelism.
  EXPECT_EQ(j1.out, j8.out);
  EXPECT_NE(j1.out.find("== "), std::string::npos);
  EXPECT_NE(j1.out.find("a.ps ==\n"), std::string::npos) << j1.out;
}

TEST(CliBatch, BatchSectionsMatchSingleFileRuns) {
  CliResult single_a = run_psc("--c", kRelaxationSource);
  CliResult single_b = run_psc("--c", kHeat1dSource);
  ASSERT_EQ(single_a.exit_code, 0);
  ASSERT_EQ(single_b.exit_code, 0);

  std::vector<std::pair<std::string, std::string>> files = {
      {"a.ps", kRelaxationSource},
      {"b.ps", kHeat1dSource},
  };
  CliResult batch = run_psc_files("--c -j 4", files, "match");
  ASSERT_EQ(batch.exit_code, 0);
  // The batch body between the two headers is exactly the single-file
  // output, byte for byte.
  size_t header_b = batch.out.find("b.ps ==\n");
  ASSERT_NE(header_b, std::string::npos);
  size_t body_a_start = batch.out.find("==\n") + 3;
  std::string body_a = batch.out.substr(
      body_a_start, batch.out.rfind("== ", header_b) - body_a_start);
  EXPECT_EQ(body_a, single_a.out);
  std::string body_b = batch.out.substr(header_b + 8);
  EXPECT_EQ(body_b, single_b.out);
}

TEST(CliBatch, FailedUnitIsIsolatedAndSetsExitCode) {
  std::vector<std::pair<std::string, std::string>> files = {
      {"good.ps", kRelaxationSource},
      {"bad.ps", "this is not a module"},
  };
  CliResult r = run_psc_files("-j 2", files, "isolate");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.out.find("bad.ps"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("error"), std::string::npos);
  // The good unit still compiled and printed its schedule.
  EXPECT_NE(r.out.find("good.ps ==\n"), std::string::npos);
  EXPECT_NE(r.out.find("DO K ("), std::string::npos) << r.out;
}

TEST(CliBatch, BatchReportTable) {
  std::vector<std::pair<std::string, std::string>> files = {
      {"a.ps", kRelaxationSource},
      {"b.ps", kPointwiseChainSource},
  };
  CliResult r = run_psc_files("--batch-report -j 2", files, "report");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("Unit"), std::string::npos);
  EXPECT_NE(r.out.find("a.ps"), std::string::npos);
  EXPECT_NE(r.out.find("b.ps"), std::string::npos);
  EXPECT_NE(r.out.find("2/2 units succeeded"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("aggregate pass times"), std::string::npos);
}

TEST(CliBatch, BatchReportJson) {
  std::vector<std::pair<std::string, std::string>> files = {
      {"a.ps", kRelaxationSource},
  };
  CliResult r = run_psc_files("--batch-report --json", files, "json");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("\"summary\""), std::string::npos);
  EXPECT_NE(r.out.find("\"units\""), std::string::npos);
  EXPECT_NE(r.out.find("a.ps\""), std::string::npos) << r.out;
}

TEST(CliBatch, CorpusCompilesInOneInvocation) {
  std::string out_file = std::string(::testing::TempDir()) + "/corpus.txt";
  std::string cmd = psc_binary() + " --corpus --batch-report -j 4 > " +
                    out_file + " 2>&1";
  int rc = std::system(cmd.c_str());
  EXPECT_EQ(WEXITSTATUS(rc), 0);
  std::ifstream f(out_file);
  std::ostringstream os;
  os << f.rdbuf();
  std::string out = os.str();
  EXPECT_NE(out.find("4/4 units succeeded"), std::string::npos) << out;
  for (const char* name : {"jacobi", "gauss-seidel", "heat1d", "chain"})
    EXPECT_NE(out.find(name), std::string::npos) << out;
}

TEST(CliBatch, EqnFilesAreTranslatedByExtension) {
  constexpr const char* kEqn = R"EQ(
module Relaxation;
param InitialA : real[0..M+1, 0..M+1];
param M : int;
param maxK : int;
result newA = A^{maxK};
A^{1}_{i,j} = InitialA_{i,j}
  for i in 0..M+1, j in 0..M+1;
A^{k}_{i,j} = \frac{A^{k-1}_{i,j-1} + A^{k-1}_{i+1,j}}{2}
  otherwise
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;
)EQ";
  // Single .eqn file.
  std::vector<std::pair<std::string, std::string>> single = {
      {"relax.eqn", kEqn}};
  CliResult r = run_psc_files("--schedule", single, "eqn1");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("DO k ("), std::string::npos) << r.out;
  // Mixed .ps + .eqn batch.
  std::vector<std::pair<std::string, std::string>> mixed = {
      {"a.ps", kRelaxationSource}, {"relax.eqn", kEqn}};
  CliResult batch = run_psc_files("-j 2", mixed, "eqn2");
  EXPECT_EQ(batch.exit_code, 0) << batch.out;
  EXPECT_NE(batch.out.find("relax.eqn ==\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Compile service: --cache-dir, --client fallback, daemon lifecycle.
// ---------------------------------------------------------------------------

/// Run psc over an already-written input path (no per-invocation file
/// renaming -- the artifact-cache key includes the unit name, so cache
/// tests need a stable path across runs).
CliResult run_psc_on(const std::string& args, const std::string& input,
                     const std::string& tag) {
  std::string out_file = std::string(::testing::TempDir()) +
                         "psc_svc_out_" + tag + ".txt";
  std::string cmd =
      psc_binary() + " " + args + " " + input + " > " + out_file + " 2>&1";
  int rc = std::system(cmd.c_str());
  std::ifstream f(out_file);
  std::ostringstream os;
  os << f.rdbuf();
  return CliResult{WEXITSTATUS(rc), os.str()};
}

/// Drop the service's "psc: ..." stderr notices, keeping the artifact
/// text (the byte-identity surface).
std::string strip_psc_lines(const std::string& text) {
  std::istringstream in(text);
  std::string out, line;
  while (std::getline(in, line))
    if (line.rfind("psc:", 0) != 0) out += line + "\n";
  return out;
}

TEST(CliService, CacheDirSecondRunIsByteIdenticalAndHits) {
  static int counter = 0;
  std::string tag = std::to_string(getpid()) + "_" +
                    std::to_string(counter++);
  std::string dir = std::string(::testing::TempDir());
  std::string cache = dir + "psc_cli_cache_" + tag;
  std::string input = dir + "psc_cli_in_" + tag + ".ps";
  {
    std::ofstream f(input);
    f << kGaussSeidelSource;
  }
  std::string flags = "--c --hyperplane --cache-dir " + cache + " --verbose";
  CliResult plain = run_psc_on("--c --hyperplane", input, tag + "p");
  CliResult cold = run_psc_on(flags, input, tag + "c");
  CliResult warm = run_psc_on(flags, input, tag + "w");
  ASSERT_EQ(cold.exit_code, 0) << cold.out;
  ASSERT_EQ(warm.exit_code, 0) << warm.out;
  EXPECT_NE(cold.out.find("1 misses"), std::string::npos) << cold.out;
  EXPECT_NE(cold.out.find("void Relaxation"), std::string::npos);
  EXPECT_NE(warm.out.find("1 hits"), std::string::npos) << warm.out;
  EXPECT_NE(warm.out.find("0 compiled"), std::string::npos) << warm.out;
  // Minus the stats notice, cold, warm and plain are byte-identical.
  EXPECT_EQ(strip_psc_lines(cold.out), plain.out);
  EXPECT_EQ(strip_psc_lines(warm.out), plain.out);
}

TEST(CliService, EditedFileRecompilesThroughTheCache) {
  static int counter = 0;
  std::string tag = std::to_string(getpid()) + "_e" +
                    std::to_string(counter++);
  std::string dir = std::string(::testing::TempDir());
  std::string cache = dir + "psc_cli_cache_" + tag;
  std::string input = dir + "psc_cli_in_" + tag + ".ps";
  std::string flags = "--c --cache-dir " + cache + " --verbose";
  {
    std::ofstream f(input);
    f << kRelaxationSource;
  }
  CliResult first = run_psc_on(flags, input, tag + "1");
  ASSERT_EQ(first.exit_code, 0) << first.out;
  // Edit the source (append a blank line -- semantics unchanged, bytes
  // changed): the next run must recompile, and its output must equal a
  // fresh compile of the edited file.
  {
    std::ofstream f(input, std::ios::app);
    f << "\n";
  }
  CliResult edited = run_psc_on(flags, input, tag + "2");
  ASSERT_EQ(edited.exit_code, 0) << edited.out;
  EXPECT_NE(edited.out.find("1 misses"), std::string::npos) << edited.out;
  CliResult reference = run_psc_on("--c", input, tag + "3");
  EXPECT_EQ(strip_psc_lines(edited.out), reference.out);
  // And the edited version is now cached too.
  CliResult warm = run_psc_on(flags, input, tag + "4");
  EXPECT_NE(warm.out.find("1 hits"), std::string::npos) << warm.out;
  EXPECT_EQ(strip_psc_lines(warm.out), reference.out);
}

TEST(CliService, BatchReportIsServedFromTheCache) {
  static int counter = 0;
  std::string tag = "rep" + std::to_string(getpid()) + "_" +
                    std::to_string(counter++);
  std::string dir = std::string(::testing::TempDir());
  std::string cache = dir + "psc_cli_repcache_" + tag;
  std::string input = dir + "psc_cli_repin_" + tag + ".ps";
  {
    std::ofstream f(input);
    f << kGaussSeidelSource;
  }
  std::string flags = "--batch-report --cache-dir " + cache + " --verbose";
  CliResult cold = run_psc_on(flags, input, tag + "c");
  CliResult warm = run_psc_on(flags, input, tag + "w");
  ASSERT_EQ(cold.exit_code, 0) << cold.out;
  ASSERT_EQ(warm.exit_code, 0) << warm.out;
  // Cold: the unit compiled through the service and the report says so.
  EXPECT_NE(cold.out.find("compiled"), std::string::npos) << cold.out;
  EXPECT_NE(cold.out.find("Relaxation"), std::string::npos) << cold.out;
  // Warm: a full cache hit -- the report is served without compiling.
  EXPECT_NE(warm.out.find("| cache"), std::string::npos) << warm.out;
  EXPECT_NE(warm.out.find("1 cache hits, 0 compiled"), std::string::npos)
      << warm.out;
  EXPECT_NE(warm.out.find("0 compiled, 0 spilled"), std::string::npos)
      << warm.out;  // the --verbose service stats agree

  // And the JSON shape, also from the cache.
  CliResult json = run_psc_on(flags + " --json", input, tag + "j");
  ASSERT_EQ(json.exit_code, 0) << json.out;
  EXPECT_NE(json.out.find("\"cache_hit\": true"), std::string::npos)
      << json.out;
  EXPECT_NE(json.out.find("\"module\": \"Relaxation\""), std::string::npos);
}

TEST(Cli, WavefrontBackendFlagValidatesAndReports) {
  CliResult report = run_psc("--exact --verbose --wavefront-backend=sharded",
                             kGaussSeidelSource);
  EXPECT_EQ(report.exit_code, 0) << report.out;
  EXPECT_NE(report.out.find("wavefront backend [Relaxation_h]: sharded"),
            std::string::npos)
      << report.out;

  CliResult defaulted = run_psc("--exact --verbose", kGaussSeidelSource);
  EXPECT_NE(defaulted.out.find("wavefront backend [Relaxation_h]: auto"),
            std::string::npos)
      << defaulted.out;

  CliResult bad = run_psc("--wavefront-backend=bogus", kGaussSeidelSource);
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.out.find("unknown wavefront backend"), std::string::npos)
      << bad.out;
}

TEST(CliService, ClientWithoutDaemonFallsBackInProcess) {
  CliResult plain = run_psc("--c", kRelaxationSource);
  CliResult client = run_psc("--client=/tmp/psc_no_such_daemon.sock --c",
                             kRelaxationSource);
  EXPECT_EQ(client.exit_code, 0) << client.out;
  EXPECT_NE(client.out.find("no daemon"), std::string::npos) << client.out;
  // Minus the fallback notice, output matches the plain run.
  std::string body = client.out;
  size_t notice_end = body.find('\n');
  ASSERT_NE(notice_end, std::string::npos);
  EXPECT_EQ(body.substr(notice_end + 1), plain.out);
}

TEST(CliService, SpillAfterWithoutCacheDirIsAUsageError) {
  CliResult r = run_psc("--spill-after 2", kRelaxationSource);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.out.find("--cache-dir"), std::string::npos) << r.out;
}

TEST(CliService, StopDaemonWithoutDaemonFails) {
  std::string cmd = psc_binary() +
                    " --stop-daemon=/tmp/psc_no_such_daemon.sock "
                    "> /dev/null 2>&1";
  EXPECT_NE(WEXITSTATUS(std::system(cmd.c_str())), 0);
}

TEST(CliService, DaemonLifecycleEndToEnd) {
  static int counter = 0;
  std::string tag = std::to_string(getpid()) + std::to_string(counter++);
  std::string sock = "/tmp/psc_cli_d_" + tag + ".sock";
  std::string cache = std::string(::testing::TempDir()) + "psc_cli_dc_" + tag;
  std::string log = std::string(::testing::TempDir()) + "psc_cli_dlog_" +
                    tag + ".txt";

  // Start the daemon in the background, wait for the socket.
  std::string start = psc_binary() + " --daemon=" + sock + " --cache-dir " +
                      cache + " -j 2 > " + log + " 2>&1 &";
  ASSERT_EQ(std::system(start.c_str()), 0);
  bool up = false;
  for (int i = 0; i < 100 && !up; ++i) {
    std::string probe = "test -S " + sock;
    up = std::system(probe.c_str()) == 0;
    if (!up) usleep(100 * 1000);
  }
  ASSERT_TRUE(up) << "daemon never bound " << sock;

  // A client compile through the daemon matches the plain run.
  CliResult plain = run_psc("--c", kGaussSeidelSource);
  CliResult via_daemon = run_psc("--client=" + sock + " --c",
                                 kGaussSeidelSource);
  EXPECT_EQ(via_daemon.exit_code, 0) << via_daemon.out;
  EXPECT_EQ(via_daemon.out, plain.out);

  // Warm second compile of the same source: also identical.
  CliResult warm = run_psc("--client=" + sock + " --c", kGaussSeidelSource);
  EXPECT_EQ(warm.out, plain.out);

  // Graceful stop.
  std::string stop = psc_binary() + " --stop-daemon=" + sock +
                     " > /dev/null 2>&1";
  EXPECT_EQ(WEXITSTATUS(std::system(stop.c_str())), 0);
  // The daemon exits and removes its socket.
  bool gone = false;
  for (int i = 0; i < 100 && !gone; ++i) {
    std::string probe = "test -S " + sock;
    gone = std::system(probe.c_str()) != 0;
    if (!gone) usleep(100 * 1000);
  }
  EXPECT_TRUE(gone);
}

TEST(CliService, TcpClientAndStatsEndToEnd) {
  static int counter = 0;
  std::string tag = std::to_string(getpid()) + "t" + std::to_string(counter++);
  std::string sock = "/tmp/psc_cli_t_" + tag + ".sock";
  std::string cache = std::string(::testing::TempDir()) + "psc_cli_tc_" + tag;
  std::string log = std::string(::testing::TempDir()) + "psc_cli_tlog_" +
                    tag + ".txt";

  // Daemon with a TCP listener on an ephemeral port; the port is
  // announced on stderr ("... and tcp port N").
  std::string start = psc_binary() + " --daemon=" + sock +
                      " --listen=127.0.0.1:0 --cache-dir " + cache +
                      " -j 2 > " + log + " 2>&1 &";
  ASSERT_EQ(std::system(start.c_str()), 0);
  bool up = false;
  for (int i = 0; i < 100 && !up; ++i) {
    std::string probe = "grep -q 'tcp port' " + log + " 2>/dev/null";
    up = std::system(probe.c_str()) == 0;
    if (!up) usleep(100 * 1000);
  }
  ASSERT_TRUE(up) << "daemon never announced its TCP port";
  std::string port;
  {
    std::ifstream f(log);
    std::string text((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    size_t pos = text.find("tcp port ");
    ASSERT_NE(pos, std::string::npos) << text;
    pos += 9;
    while (pos < text.size() && std::isdigit(text[pos])) port += text[pos++];
  }
  ASSERT_FALSE(port.empty());

  // A TCP client compile is byte-identical to the plain run.
  CliResult plain = run_psc("--c", kGaussSeidelSource);
  CliResult via_tcp = run_psc("--connect=127.0.0.1:" + port + " --c",
                              kGaussSeidelSource);
  EXPECT_EQ(via_tcp.exit_code, 0) << via_tcp.out;
  EXPECT_EQ(via_tcp.out, plain.out);

  // The stats endpoint works over both transports and both renderings.
  std::string stats_out = std::string(::testing::TempDir()) +
                          "psc_cli_tstats_" + tag + ".txt";
  std::string stats_cmd = psc_binary() + " --daemon-stats=" + sock + " > " +
                          stats_out + " 2>&1";
  ASSERT_EQ(WEXITSTATUS(std::system(stats_cmd.c_str())), 0);
  {
    std::ifstream f(stats_out);
    std::string text((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("compile requests"), std::string::npos) << text;
  }
  std::string json_cmd = psc_binary() + " --connect=127.0.0.1:" + port +
                         " --daemon-stats --json > " + stats_out + " 2>&1";
  ASSERT_EQ(WEXITSTATUS(std::system(json_cmd.c_str())), 0);
  {
    std::ifstream f(stats_out);
    std::string text((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"daemon\""), std::string::npos) << text;
    EXPECT_NE(text.find("\"compile_requests\": 1"), std::string::npos)
        << text;
  }

  // Stop over TCP too.
  std::string stop = psc_binary() + " --connect=127.0.0.1:" + port +
                     " --stop-daemon > /dev/null 2>&1";
  EXPECT_EQ(WEXITSTATUS(std::system(stop.c_str())), 0);
  bool gone = false;
  for (int i = 0; i < 100 && !gone; ++i) {
    std::string probe = "test -S " + sock;
    gone = std::system(probe.c_str()) != 0;
    if (!gone) usleep(100 * 1000);
  }
  EXPECT_TRUE(gone);
}

TEST(Cli, TimePassesPrintsPerStageTiming) {
  CliResult r = run_psc("--time-passes --exact", kGaussSeidelSource);
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("Pass"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("Time (ms)"), std::string::npos);
  EXPECT_NE(r.out.find("Hyperplane"), std::string::npos);
  EXPECT_NE(r.out.find("total"), std::string::npos);
}

TEST(Cli, VerboseReportsTheRuntimeEngine) {
  CliResult r = run_psc("--verbose --exact", kGaussSeidelSource);
  EXPECT_EQ(r.exit_code, 0) << r.out;
  // One report per stage: the primary module and the transformed one.
  EXPECT_NE(r.out.find("bytecode engine [Relaxation]: ok:"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("bytecode engine [Relaxation_h]: ok:"),
            std::string::npos);
  EXPECT_NE(r.out.find("fused into superinstructions"), std::string::npos);
  EXPECT_NE(r.out.find("dispatch="), std::string::npos);
}

TEST(Cli, VerboseReportsRecordModulesOnTheBytecodeTier) {
  // Record fields used to be outside the bytecode fragment; the widened
  // compiler now covers them, so --verbose reports the fast tier in
  // charge instead of a tree-walk fallback.
  CliResult r = run_psc("--verbose", R"(
M: module (p: Particle; n: int): [y: array[I] of real];
type
  I = 0 .. n;  Particle = record m: real; v: real; end;
define
  y[I] = p.m + p.v;
end M;
)");
  if (r.exit_code != 0) GTEST_SKIP() << "records rejected upstream";
  EXPECT_NE(r.out.find("bytecode engine [M]: ok:"), std::string::npos)
      << r.out;
}

TEST(Cli, VerboseReportsTreeWalkFallbacks) {
  // Nested records are still outside the bytecode fragment; --verbose
  // must say so instead of leaving the fallback silent.
  CliResult r = run_psc("--verbose", R"(
M: module (p: P; n: int): [y: array[I] of real];
type
  I = 0 .. n;
  Q = record x: real; end;
  P = record m: real; q: Q; end;
define
  y[I] = p.q.x;
end M;
)");
  if (r.exit_code != 0) GTEST_SKIP() << "nested records rejected upstream";
  EXPECT_NE(r.out.find("tree-walk fallback"), std::string::npos) << r.out;
}

TEST(Cli, VerboseNativeEngineReportsThePrimaryModule) {
  // --engine=native is uniform across both runners: a plain interpreted
  // module gets a whole-module native report, not just the transformed
  // wavefront stage.
  CliResult r = run_psc("--verbose --engine=native", R"(
M: module (x: array[I] of real; n: int): [y: array[I] of real];
type I = 0 .. n;
define
  y[I] = x[I] * 2.0 + 1.0;
end M;
)");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("-- native engine [M]: "), std::string::npos) << r.out;
}


// ---------------------------------------------------------------------------
// Observability: --trace and --metrics.
// ---------------------------------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(CliTelemetry, TraceFileIsWellFormedChromeJson) {
  std::string file = std::string(::testing::TempDir()) + "/psc_trace_" +
                     std::to_string(getpid()) + ".json";
  CliResult r = run_psc("--exact --trace=" + file, kGaussSeidelSource);
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("psc: trace written to "), std::string::npos) << r.out;

  std::string body = slurp(file);
  ASSERT_FALSE(body.empty());
  std::string error;
  std::shared_ptr<test::JsonValue> doc = test::JsonParser::parse(body, &error);
  ASSERT_NE(doc, nullptr) << error << "\n" << body;
  const test::JsonValue* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_FALSE(events->array.empty());
  // Every pipeline stage shows up as a complete ("ph":"X") span, and
  // the per-unit pass spans carry the file they ran over.
  bool saw_parse = false;
  bool saw_schedule = false;
  for (const auto& event : events->array) {
    const test::JsonValue* name = event->get("name");
    const test::JsonValue* ph = event->get("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->string, "X");
    if (name->string == "Parse") saw_parse = true;
    if (name->string == "Schedule") saw_schedule = true;
  }
  EXPECT_TRUE(saw_parse) << body;
  EXPECT_TRUE(saw_schedule) << body;
}

TEST(CliTelemetry, BareTraceDefaultsToPscTraceJson) {
  // The bare flag writes psc-trace.json into the working directory;
  // the stderr note names it so the user can find the file.
  CliResult r = run_psc("--trace", kRelaxationSource);
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("psc: trace written to psc-trace.json"),
            std::string::npos)
      << r.out;
  std::remove("psc-trace.json");
}

TEST(CliTelemetry, MetricsJsonFileIsWellFormedAndCountsTheCorpus) {
  std::string file = std::string(::testing::TempDir()) + "/psc_metrics_" +
                     std::to_string(getpid()) + ".json";
  std::string out_file = std::string(::testing::TempDir()) +
                         "/psc_metrics_out_" + std::to_string(getpid()) +
                         ".txt";
  std::string cmd = psc_binary() + " --corpus --metrics=" + file +
                    " --json > " + out_file + " 2>&1";
  int rc = std::system(cmd.c_str());
  EXPECT_EQ(WEXITSTATUS(rc), 0) << slurp(out_file);

  std::string body = slurp(file);
  ASSERT_FALSE(body.empty());
  std::string error;
  std::shared_ptr<test::JsonValue> doc = test::JsonParser::parse(body, &error);
  ASSERT_NE(doc, nullptr) << error << "\n" << body;
  const test::JsonValue* counters = doc->get("counters");
  ASSERT_NE(counters, nullptr);
  const test::JsonValue* units = counters->get("batch.units");
  ASSERT_NE(units, nullptr) << body;
  EXPECT_EQ(units->number, 4.0) << body;  // the paper corpus
  const test::JsonValue* histograms = doc->get("histograms");
  ASSERT_NE(histograms, nullptr);
  const test::JsonValue* unit_ms = histograms->get("batch.unit_ms");
  ASSERT_NE(unit_ms, nullptr) << body;
  const test::JsonValue* count = unit_ms->get("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->number, 4.0) << body;
}

TEST(CliTelemetry, BareMetricsPrintsTextTablesOnStderr) {
  CliResult r = run_psc("--metrics", kRelaxationSource);
  EXPECT_EQ(r.exit_code, 0) << r.out;
  // stdout stays byte-compatible (the schedule still prints); the
  // metrics report rides on stderr after it.
  EXPECT_NE(r.out.find("DO K ("), std::string::npos) << r.out;
  // A plain compile records pass histograms only; empty categories
  // (counters, gauges) print no table at all.
  EXPECT_NE(r.out.find("Histogram"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("p95 (ms)"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("pass.Parse_ms"), std::string::npos) << r.out;
}

TEST(CliTelemetry, EmptyFlagValueIsAUsageError) {
  CliResult trace = run_psc("--trace=", kRelaxationSource);
  EXPECT_EQ(trace.exit_code, 2) << trace.out;
  CliResult metrics = run_psc("--metrics=", kRelaxationSource);
  EXPECT_EQ(metrics.exit_code, 2) << metrics.out;
}

}  // namespace
}  // namespace ps
