// End-to-end pipeline tests over every bundled module: compile, schedule,
// validate, interpret, and cross-check all stages.

#include <gtest/gtest.h>

#include <cmath>

#include "../common/test_util.hpp"
#include "core/validator.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/interpreter.hpp"

namespace ps {
namespace {

using testutil::compile_or_die;

struct NamedModule {
  const char* name;
  const char* source;
  IntEnv params;
  std::map<std::string, double> reals;
};

std::vector<NamedModule> bundled_modules() {
  return {
      {"Relaxation", kRelaxationSource, {{"M", 5}, {"maxK", 4}}, {}},
      {"GaussSeidel", kGaussSeidelSource, {{"M", 5}, {"maxK", 4}}, {}},
      {"Heat1d", kHeat1dSource, {{"N", 9}, {"steps", 5}}, {{"r", 0.2}}},
      {"Chain", kPointwiseChainSource, {{"N", 12}}, {}},
  };
}

class PipelineTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PipelineTest, CompileScheduleValidateInterpret) {
  NamedModule mod = bundled_modules()[GetParam()];
  SCOPED_TRACE(mod.name);

  CompileOptions options;
  options.apply_hyperplane = true;
  options.merge_loops = true;
  auto result = compile_or_die(mod.source, options);

  // Schedule validates.
  auto report = validate_schedule(*result.primary->module,
                                  *result.primary->graph,
                                  result.primary->schedule.flowchart,
                                  mod.params);
  EXPECT_TRUE(report.ok) << (report.issues.empty() ? "" : report.issues[0]);

  // C code was produced and annotated.
  EXPECT_NE(result.primary->c_code.find("void "), std::string::npos);

  // Interpreter runs sequentially and in parallel with equal results.
  ThreadPool pool(6);
  InterpreterOptions par;
  par.pool = &pool;
  Interpreter seq(*result.primary->module, *result.primary->graph,
                  result.primary->schedule.flowchart, mod.params, mod.reals);
  Interpreter p(*result.primary->module, *result.primary->graph,
                result.primary->schedule.flowchart, mod.params, mod.reals,
                par);
  for (auto* interp : {&seq, &p}) {
    for (const DataItem& item : result.primary->module->data) {
      if (item.cls != DataClass::Input || item.is_scalar()) continue;
      NdArray& arr = interp->array(item.name);
      auto span = arr.raw();
      for (size_t i = 0; i < span.size(); ++i)
        span[i] = std::sin(static_cast<double>(i)) * 5.0;
    }
  }
  seq.run();
  p.run();
  for (const DataItem& item : result.primary->module->data) {
    if (item.cls != DataClass::Output || item.is_scalar()) continue;
    auto a = seq.array(item.name).raw();
    auto b = p.array(item.name).raw();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }

  // When a transform fired, its module validates and matches the
  // original numerically.
  if (result.transformed) {
    auto treport = validate_schedule(*result.transformed->module,
                                     *result.transformed->graph,
                                     result.transformed->schedule.flowchart,
                                     mod.params);
    EXPECT_TRUE(treport.ok)
        << (treport.issues.empty() ? "" : treport.issues[0]);

    Interpreter t(*result.transformed->module, *result.transformed->graph,
                  result.transformed->schedule.flowchart, mod.params,
                  mod.reals);
    for (const DataItem& item : result.transformed->module->data) {
      if (item.cls != DataClass::Input || item.is_scalar()) continue;
      NdArray& arr = t.array(item.name);
      auto span = arr.raw();
      for (size_t i = 0; i < span.size(); ++i)
        span[i] = std::sin(static_cast<double>(i)) * 5.0;
    }
    t.run();
    for (const DataItem& item : result.transformed->module->data) {
      if (item.cls != DataClass::Output || item.is_scalar()) continue;
      auto a = seq.array(item.name).raw();
      auto b = t.array(item.name).raw();
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-10) << item.name << "[" << i << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bundled, PipelineTest,
                         ::testing::Range<size_t>(0, 4));

TEST(Pipeline, JacobiDoesNotTransformButGaussSeidelDoes) {
  CompileOptions options;
  options.apply_hyperplane = true;
  auto jacobi = compile_or_die(kRelaxationSource, options);
  auto gs = compile_or_die(kGaussSeidelSource, options);
  // Jacobi transforms too (its dependences admit t = K), but the key
  // observable is Gauss-Seidel's: before, inner loops iterative; after,
  // parallel.
  ASSERT_TRUE(gs.transform.has_value());
  EXPECT_EQ(gs.transform->time, (std::vector<int64_t>{2, 1, 1}));
  ASSERT_TRUE(jacobi.transform.has_value());
  EXPECT_EQ(jacobi.transform->time, (std::vector<int64_t>{1, 0, 0}));
}

TEST(Pipeline, DiagnosticsSurfaceParseErrors) {
  Compiler compiler;
  auto result = compiler.compile("this is not PS");
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.diagnostics.empty());
}

TEST(Pipeline, EmptyInputDiagnosed) {
  Compiler compiler;
  auto result = compiler.compile("");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics.find("no module"), std::string::npos);
}

}  // namespace
}  // namespace ps
