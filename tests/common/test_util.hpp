#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>

#include "driver/compiler.hpp"

namespace ps::testutil {

/// Compile `source` through the full pipeline and assert success.
inline CompileResult compile_or_die(std::string_view source,
                                    CompileOptions options = {}) {
  Compiler compiler(options);
  CompileResult result = compiler.compile(source);
  EXPECT_TRUE(result.ok) << result.diagnostics;
  EXPECT_TRUE(result.primary.has_value()) << result.diagnostics;
  return result;
}

/// One-line flowchart of the full schedule.
inline std::string schedule_line(const CompiledModule& stage) {
  return flowchart_to_line(stage.schedule.flowchart, *stage.graph);
}

}  // namespace ps::testutil
