#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ps::test {

/// A deliberately small recursive-descent JSON parser for validating the
/// documents psc emits (--trace files, --metrics --json, --daemon-stats
/// --json, --batch-report --json). It accepts exactly RFC-8259 JSON --
/// no comments, no trailing commas -- so a test that feeds it a psc
/// output file is asserting real well-formedness, the same property
/// `python3 -m json.tool` checks in CI.
///
/// Values are held in a tiny variant tree; tests mostly use parse() for
/// validity plus the typed accessors to spot-check fields.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::shared_ptr<JsonValue>> array;
  std::map<std::string, std::shared_ptr<JsonValue>> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind == Kind::String; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    if (kind != Kind::Object) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : it->second.get();
  }
};

class JsonParser {
 public:
  /// Parse a complete document. Returns nullptr on any syntax error
  /// (including trailing garbage) and sets error() to a short reason.
  [[nodiscard]] static std::shared_ptr<JsonValue> parse(std::string_view text,
                                                        std::string* error
                                                        = nullptr) {
    JsonParser parser(text);
    std::shared_ptr<JsonValue> value = parser.parse_value();
    parser.skip_ws();
    if (value != nullptr && parser.pos_ != parser.text_.size()) {
      parser.error_ = "trailing characters after document";
      value = nullptr;
    }
    if (error != nullptr) *error = value == nullptr ? parser.error_ : "";
    return value;
  }

 private:
  explicit JsonParser(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::shared_ptr<JsonValue> fail(const char* why) {
    if (error_.empty()) error_ = why;
    return nullptr;
  }

  std::shared_ptr<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string_value();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') {
      if (!literal("null")) return fail("bad literal");
      return std::make_shared<JsonValue>();
    }
    return parse_number();
  }

  std::shared_ptr<JsonValue> parse_bool() {
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::Bool;
    if (literal("true")) {
      value->boolean = true;
      return value;
    }
    if (literal("false")) return value;
    return fail("bad literal");
  }

  std::shared_ptr<JsonValue> parse_number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      return fail("bad number");
    // Leading zero rule: 0 may not be followed by another digit.
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
      return fail("number with leading zero");
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        return fail("bad fraction");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        return fail("bad exponent");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::Number;
    value->number = std::strtod(std::string(text_.substr(start, pos_ - start))
                                    .c_str(),
                                nullptr);
    return value;
  }

  bool parse_string_into(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            for (size_t i = 0; i < 4; ++i)
              if (!std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + i])))
                return false;
            // Validation-oriented: keep the escape verbatim rather than
            // decoding UTF-16 surrogate pairs.
            out += "\\u";
            out += std::string(text_.substr(pos_, 4));
            pos_ += 4;
            break;
          }
          default:
            return false;
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return false;  // unterminated
  }

  std::shared_ptr<JsonValue> parse_string_value() {
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::String;
    if (!parse_string_into(value->string)) return fail("bad string");
    return value;
  }

  std::shared_ptr<JsonValue> parse_array() {
    ++pos_;  // '['
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::Array;
    skip_ws();
    if (consume(']')) return value;
    while (true) {
      std::shared_ptr<JsonValue> element = parse_value();
      if (element == nullptr) return nullptr;
      value->array.push_back(std::move(element));
      if (consume(',')) continue;
      if (consume(']')) return value;
      return fail("expected ',' or ']' in array");
    }
  }

  std::shared_ptr<JsonValue> parse_object() {
    ++pos_;  // '{'
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::Object;
    skip_ws();
    if (consume('}')) return value;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string_into(key)) return fail("expected object key");
      if (!consume(':')) return fail("expected ':' after key");
      std::shared_ptr<JsonValue> member = parse_value();
      if (member == nullptr) return nullptr;
      value->object[key] = std::move(member);
      if (consume(',')) continue;
      if (consume('}')) return value;
      return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace ps::test
