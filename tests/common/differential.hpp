#pragma once

// Differential test harness: run one PS module under every execution
// engine the repo has -- the tree-walking Interpreter, the EvalCore
// bytecode engine, generated C compiled with the system C compiler, and
// (for hyperplane-transformable modules) the WavefrontRunner under both
// evaluators -- and assert bit-exact agreement on every output value.
//
// This promotes PR 1's ad-hoc wavefront cross-check into a reusable
// fixture: tests/integration/differential_test.cpp drives it over the
// whole paper corpus plus the extra example modules.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "codegen/c_emitter.hpp"
#include "core/const_eval.hpp"
#include "driver/compiler.hpp"
#include "runtime/bytecode.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/wavefront.hpp"
#include "common/test_util.hpp"

namespace ps::testutil {

/// One module under differential test.
struct DiffCase {
  std::string name;  // tag for temp dirs and failure messages
  std::string source;
  IntEnv int_inputs;
  std::map<std::string, double> real_inputs;
  CompileOptions options{};
  /// Fill pattern for array inputs, indexed by flat element position;
  /// nullptr uses the default input_value ramp. The content fuzzer
  /// swaps in patterns of IEEE edge values here.
  double (*input_fill)(size_t) = nullptr;
};

/// Deterministic input pattern. Multiples of 1/16 in a small range:
/// every value is exactly representable, so the same fill expression in
/// generated C produces bit-identical inputs with no libm involved.
inline double input_value(size_t i) {
  return static_cast<double>(static_cast<int64_t>(i % 97) - 48) * 0.0625;
}

/// The same pattern as a C expression over index variable `i`.
inline const char* kInputValueC =
    "(double)((long)(i % 97) - 48) * 0.0625";

/// Input pattern for int-element arrays: the plain integer ramp. Int
/// arrays always use this (even under a content-fuzz fill) -- IEEE edge
/// values are a floating-point concern, and double->int casts of
/// out-of-range values are undefined in both C and C++, so no engine
/// could promise bit-stable results for them.
inline int64_t int_input_value(size_t i) {
  return static_cast<int64_t>(i % 97) - 48;
}

/// The same pattern as a C expression over index variable `i`.
inline const char* kIntInputValueC = "(long)(i % 97) - 48";

/// Every non-input value an engine produced, in module data order.
struct EngineOutputs {
  std::vector<std::pair<std::string, std::vector<double>>> arrays;
  std::vector<std::pair<std::string, double>> scalars;
};

/// Record items live in array storage (one trailing field dimension,
/// see bc_is_record_item), so the harness fills and collects them
/// through the array surface even at rank 0.
inline bool takes_array_slot(const DataItem& item) {
  return !item.is_scalar() || bc_is_record_item(item);
}

inline void fill_interpreter_inputs(Interpreter& interp,
                                    const CheckedModule& module,
                                    double (*fill)(size_t) = nullptr) {
  if (fill == nullptr) fill = input_value;
  for (const DataItem& item : module.data) {
    if (item.cls != DataClass::Input || !takes_array_slot(item)) continue;
    bool int_elems = item.elem != nullptr &&
                     item.elem->scalar_kind() == TypeKind::Int;
    auto span = interp.array(item.name).raw();
    for (size_t i = 0; i < span.size(); ++i)
      span[i] = int_elems ? static_cast<double>(int_input_value(i)) : fill(i);
  }
}

/// Snapshot every non-input value (optionally Outputs only) in module
/// data order. Record items travel through the array surface, flattened
/// field by field.
inline EngineOutputs collect_outputs(const Interpreter& interp,
                                     const CheckedModule& module,
                                     bool outputs_only) {
  EngineOutputs out;
  for (const DataItem& item : module.data) {
    if (item.cls == DataClass::Input) continue;
    if (outputs_only && item.cls != DataClass::Output) continue;
    if (takes_array_slot(item)) {
      auto span = interp.array(item.name).raw();
      out.arrays.emplace_back(
          item.name, std::vector<double>(span.begin(), span.end()));
    } else {
      out.scalars.emplace_back(item.name, interp.scalar(item.name));
    }
  }
  return out;
}

/// Run the flowchart interpreter with the given evaluator engine (and,
/// for the bytecode engine, the given VM dispatch strategy -- threaded
/// vs portable switch, which must agree bit-exactly).
/// `outputs_only` restricts collection to Output items (the surface the
/// generated C exposes); otherwise locals are compared too.
inline EngineOutputs run_interpreter(const CompiledModule& stage,
                                     const DiffCase& test_case,
                                     EvalEngine engine,
                                     bool outputs_only = false,
                                     BcDispatch dispatch =
                                         BcDispatch::Threaded) {
  InterpreterOptions options;
  options.engine = engine;
  options.dispatch = dispatch;
  Interpreter interp(*stage.module, *stage.graph, stage.schedule.flowchart,
                     test_case.int_inputs, test_case.real_inputs, options);
  fill_interpreter_inputs(interp, *stage.module, test_case.input_fill);
  interp.run();
  return collect_outputs(interp, *stage.module, outputs_only);
}

/// Bitwise comparison: engines must perform the same double operations
/// in the same order, so outputs agree to the last ulp (including
/// signed zeroes).
inline void expect_bitwise_equal(const EngineOutputs& expected,
                                 const EngineOutputs& actual,
                                 const std::string& label) {
  ASSERT_EQ(expected.arrays.size(), actual.arrays.size()) << label;
  for (size_t a = 0; a < expected.arrays.size(); ++a) {
    const auto& [name, want] = expected.arrays[a];
    const auto& [got_name, got] = actual.arrays[a];
    EXPECT_EQ(name, got_name) << label;
    ASSERT_EQ(want.size(), got.size()) << label << " " << name;
    for (size_t i = 0; i < want.size(); ++i)
      ASSERT_EQ(std::bit_cast<uint64_t>(want[i]),
                std::bit_cast<uint64_t>(got[i]))
          << label << " " << name << "[" << i << "]: " << want[i]
          << " != " << got[i];
  }
  ASSERT_EQ(expected.scalars.size(), actual.scalars.size()) << label;
  for (size_t s = 0; s < expected.scalars.size(); ++s) {
    EXPECT_EQ(expected.scalars[s].first, actual.scalars[s].first) << label;
    EXPECT_EQ(std::bit_cast<uint64_t>(expected.scalars[s].second),
              std::bit_cast<uint64_t>(actual.scalars[s].second))
        << label << " " << expected.scalars[s].first;
  }
}

inline bool have_cc() {
  return std::system("cc --version > /dev/null 2>&1") == 0;
}

/// Total element count of a data item's flattened dimensions under the
/// test case's integer inputs.
inline std::optional<int64_t> element_count(const DataItem& item,
                                            const IntEnv& env) {
  int64_t total = 1;
  for (const Type* dim : item.dims) {
    auto lo = eval_const_int(*dim->lo, env);
    auto hi = eval_const_int(*dim->hi, env);
    if (!lo || !hi || *hi < *lo) return std::nullopt;
    total *= *hi - *lo + 1;
  }
  return total;
}

/// Generate a C main() that fills the module's inputs with the shared
/// pattern (or, under a content-fuzz fill, with the exact per-element
/// hex-float literals of that pattern), calls the generated function,
/// and prints every output value: doubles as their raw 64-bit patterns
/// (%llx over memcpy'd bits -- no printf/strtod round trip, so NaNs and
/// signed zeroes compare exactly) and integers as %ld. Int-element
/// input arrays fill with the integer ramp. Returns nullopt for module
/// shapes the driver generator does not cover (record/bool items).
inline std::optional<std::string> make_c_main(const CheckedModule& module,
                                              const DiffCase& test_case) {
  std::ostringstream os;
  os << "#include <stdio.h>\n#include <stdlib.h>\n#include <string.h>\n\n";

  // Extern declaration, mirroring c_emitter's signature() exactly.
  std::vector<std::string> params;
  std::vector<std::string> args;
  std::ostringstream setup;
  std::ostringstream print;
  for (const DataItem& item : module.data) {
    if (item.cls == DataClass::Local) continue;
    if (item.elem == nullptr) return std::nullopt;
    TypeKind kind = item.elem->scalar_kind();
    if (kind != TypeKind::Real && kind != TypeKind::Int) return std::nullopt;
    const char* scalar_c = kind == TypeKind::Real ? "double" : "long";
    std::string cname = c_identifier(item.name);
    if (item.cls == DataClass::Input) {
      if (item.is_scalar()) {
        params.push_back(std::string(scalar_c) + " " + cname);
        char literal[64];
        if (kind == TypeKind::Int) {
          auto it = test_case.int_inputs.find(item.name);
          if (it == test_case.int_inputs.end()) return std::nullopt;
          snprintf(literal, sizeof(literal), "%lldL",
                   static_cast<long long>(it->second));
        } else {
          auto it = test_case.real_inputs.find(item.name);
          if (it == test_case.real_inputs.end()) return std::nullopt;
          snprintf(literal, sizeof(literal), "%a", it->second);
        }
        args.push_back(literal);
      } else {
        params.push_back("const " + std::string(scalar_c) + "* " + cname);
        auto count = element_count(item, test_case.int_inputs);
        if (!count) return std::nullopt;
        if (kind == TypeKind::Int) {
          // Int arrays always take the integer ramp (see
          // int_input_value for why content patterns do not apply).
          setup << "  long* " << cname << " = malloc(sizeof(long) * "
                << *count << ");\n"
                << "  for (long i = 0; i < " << *count << "; ++i) " << cname
                << "[i] = " << kIntInputValueC << ";\n";
        } else if (test_case.input_fill != nullptr) {
          // Content-fuzz fill: the pattern is a C++ function, so embed
          // its exact values as hex-float literals element by element.
          setup << "  static const double " << cname << "_init[] = {";
          for (int64_t i = 0; i < *count; ++i) {
            char literal[64];
            snprintf(literal, sizeof(literal), "%a",
                     test_case.input_fill(static_cast<size_t>(i)));
            setup << (i ? ", " : "") << literal;
          }
          setup << "};\n"
                << "  double* " << cname << " = malloc(sizeof(double) * "
                << *count << ");\n"
                << "  memcpy(" << cname << ", " << cname
                << "_init, sizeof(double) * " << *count << ");\n";
        } else {
          setup << "  double* " << cname << " = malloc(sizeof(double) * "
                << *count << ");\n"
                << "  for (long i = 0; i < " << *count << "; ++i) " << cname
                << "[i] = " << kInputValueC << ";\n";
        }
        args.push_back(cname);
      }
    } else {  // Output
      params.push_back(std::string(scalar_c) + "* " + cname);
      if (item.is_scalar()) {
        setup << "  " << scalar_c << " " << cname << "_v = 0;\n";
        args.push_back("&" + cname + "_v");
        if (kind == TypeKind::Real)
          print << "  print_bits(" << cname << "_v);\n";
        else
          print << "  printf(\"%ld\\n\", " << cname << "_v);\n";
      } else {
        auto count = element_count(item, test_case.int_inputs);
        if (!count) return std::nullopt;
        setup << "  " << scalar_c << "* " << cname << " = calloc(" << *count
              << ", sizeof(" << scalar_c << "));\n";
        args.push_back(cname);
        if (kind == TypeKind::Real)
          print << "  for (long i = 0; i < " << *count
                << "; ++i) print_bits(" << cname << "[i]);\n";
        else
          print << "  for (long i = 0; i < " << *count
                << "; ++i) printf(\"%ld\\n\", " << cname << "[i]);\n";
      }
    }
  }

  os << "void " << c_identifier(module.name) << "(";
  for (size_t i = 0; i < params.size(); ++i)
    os << (i ? ", " : "") << params[i];
  os << ");\n\n"
     << "static void print_bits(double v) {\n"
     << "  unsigned long long bits;\n"
     << "  memcpy(&bits, &v, sizeof bits);\n"
     << "  printf(\"%llx\\n\", bits);\n"
     << "}\n\nint main(void) {\n"
     << setup.str() << "  " << c_identifier(module.name) << "(";
  for (size_t i = 0; i < args.size(); ++i) os << (i ? ", " : "") << args[i];
  os << ");\n" << print.str() << "  return 0;\n}\n";
  return os.str();
}

/// Compile the emitted module C plus the generated main with the system
/// C compiler (-ffp-contract=off pins IEEE per-operation semantics, the
/// same contract the interpreters follow) and return its stdout.
inline std::optional<std::string> compile_and_run_c(
    const std::string& module_c, const std::string& main_c,
    const std::string& tag) {
  std::string dir = std::string(::testing::TempDir()) + "psdiff_" + tag;
  if (std::system(("mkdir -p " + dir).c_str()) != 0) return std::nullopt;
  {
    std::ofstream mod(dir + "/module.c");
    mod << module_c;
    std::ofstream main_file(dir + "/main.c");
    main_file << main_c;
  }
  std::string compile = "cc -O1 -std=c99 -ffp-contract=off -o " + dir +
                        "/prog " + dir + "/module.c " + dir +
                        "/main.c -lm 2> " + dir + "/cc.log";
  if (std::system(compile.c_str()) != 0) {
    std::ifstream log(dir + "/cc.log");
    std::ostringstream err;
    err << log.rdbuf();
    ADD_FAILURE() << "cc failed for " << tag << ":\n" << err.str();
    return std::nullopt;
  }
  if (std::system((dir + "/prog > " + dir + "/out.txt").c_str()) != 0) {
    ADD_FAILURE() << "generated program failed for " << tag;
    return std::nullopt;
  }
  std::ifstream out(dir + "/out.txt");
  std::ostringstream text;
  text << out.rdbuf();
  return text.str();
}

/// Run the generated C of `stage` and parse its printed outputs back
/// into EngineOutputs (module data order, exact hex-float round trip).
inline std::optional<EngineOutputs> run_generated_c(
    const CompiledModule& stage, const DiffCase& test_case,
    const std::string& tag) {
  auto main_c = make_c_main(*stage.module, test_case);
  if (!main_c) return std::nullopt;
  auto text = compile_and_run_c(stage.c_code, *main_c, tag);
  if (!text) return std::nullopt;

  std::istringstream lines(*text);
  std::string line;
  EngineOutputs out;
  for (const DataItem& item : stage.module->data) {
    if (item.cls != DataClass::Output) continue;
    bool real = item.elem->scalar_kind() == TypeKind::Real;
    auto next_value = [&]() -> std::optional<double> {
      if (!std::getline(lines, line)) return std::nullopt;
      // Doubles travel as raw hex bit patterns (make_c_main's
      // print_bits), so the round trip is exact for every value
      // including NaNs and signed zeroes.
      return real ? std::bit_cast<double>(static_cast<uint64_t>(
                        std::strtoull(line.c_str(), nullptr, 16)))
                  : static_cast<double>(std::strtoll(line.c_str(), nullptr,
                                                     10));
    };
    if (item.is_scalar()) {
      auto value = next_value();
      if (!value) return std::nullopt;
      out.scalars.emplace_back(item.name, *value);
    } else {
      auto count = element_count(item, test_case.int_inputs);
      if (!count) return std::nullopt;
      std::vector<double> values;
      values.reserve(static_cast<size_t>(*count));
      for (int64_t i = 0; i < *count; ++i) {
        auto value = next_value();
        if (!value) return std::nullopt;
        values.push_back(*value);
      }
      out.arrays.emplace_back(item.name, std::move(values));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Input fuzzing: random IntEnv shapes as module inputs
// ---------------------------------------------------------------------------

/// Deterministic 64-bit PRNG (splitmix64) -- no <random> engine, so the
/// fuzzed shapes are identical across platforms and standard libraries.
struct FuzzRng {
  uint64_t state;

  explicit FuzzRng(uint64_t seed) : state(seed) {}

  uint64_t next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [lo, hi].
  int64_t range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(next() %
                                     static_cast<uint64_t>(hi - lo + 1));
  }
};

/// Derive `count` variants of `base` with every integer input replaced
/// by a random value in [2, 9]: big enough that no subrange collapses
/// empty, small enough that a full engine sweep per variant stays
/// cheap. Real inputs are left alone (shapes are integer-typed).
inline std::vector<DiffCase> fuzz_int_env_cases(const DiffCase& base,
                                                size_t count,
                                                uint64_t seed) {
  FuzzRng rng(seed);
  std::vector<DiffCase> cases;
  cases.reserve(count);
  for (size_t variant = 0; variant < count; ++variant) {
    DiffCase fuzzed = base;
    fuzzed.name = base.name + "_fuzz" + std::to_string(variant);
    for (auto& [name, value] : fuzzed.int_inputs) value = rng.range(2, 9);
    cases.push_back(std::move(fuzzed));
  }
  return cases;
}

// ---------------------------------------------------------------------------
// Content fuzzing: IEEE edge values as array inputs
// ---------------------------------------------------------------------------

/// One IEEE edge value chosen by (seed, index) through splitmix64 --
/// denormals, signed zeroes and huge magnitudes mixed with ordinary
/// exactly-representable values so real data keeps flowing through the
/// stencils. Deterministic across platforms and standard libraries.
inline double content_edge_value(uint64_t seed, size_t index) {
  FuzzRng rng(seed ^ (static_cast<uint64_t>(index) * 0xd1b54a32d192ed03ull));
  uint64_t roll = rng.next();
  double sign = (roll & 1) ? -1.0 : 1.0;
  switch ((roll >> 1) % 8) {
    case 0: return sign * 0.0;                       // signed zeroes
    case 1: return sign * 4.9406564584124654e-324;   // min subnormal
    case 2: return sign * 2.2250738585072009e-308;   // max subnormal
    case 3: return sign * 1e308;                     // near-overflow
    case 4: return sign * 1.7976931348623157e+308;   // DBL_MAX
    case 5: return sign * 6.103515625e-05;           // exact 2^-14
    default:
      // Ordinary ramp values (multiples of 1/16, exactly representable).
      return sign * static_cast<double>(roll % 97) * 0.0625;
  }
}

/// The content patterns as plain function pointers (DiffCase must stay
/// a trivially copyable test parameter, so no capturing lambdas).
template <uint64_t Seed>
inline double content_pattern(size_t index) {
  return content_edge_value(Seed, index);
}

/// Derive `count` (at most 6) variants of `base` whose array inputs
/// are filled with IEEE edge-value patterns instead of the smooth
/// ramp: denormals, signed zeroes and huge magnitudes stress the value
/// paths shape fuzzing never reaches (gradual underflow, -0.0
/// propagation, overflow to infinity, inf - inf NaNs). Shapes are left
/// alone -- fuzz_int_env_cases covers those.
inline std::vector<DiffCase> fuzz_array_content_cases(const DiffCase& base,
                                                      size_t count) {
  static constexpr double (*kPatterns[])(size_t) = {
      content_pattern<0x243f6a8885a308d3ull>, content_pattern<0x13198a2e03707344ull>,
      content_pattern<0xa4093822299f31d0ull>, content_pattern<0x082efa98ec4e6c89ull>,
      content_pattern<0x452821e638d01377ull>, content_pattern<0xbe5466cf34e90c6cull>,
  };
  constexpr size_t kPatternCount = sizeof(kPatterns) / sizeof(kPatterns[0]);
  std::vector<DiffCase> cases;
  cases.reserve(std::min(count, kPatternCount));
  for (size_t variant = 0; variant < count && variant < kPatternCount;
       ++variant) {
    DiffCase fuzzed = base;
    fuzzed.name = base.name + "_content" + std::to_string(variant);
    fuzzed.input_fill = kPatterns[variant];
    cases.push_back(std::move(fuzzed));
  }
  return cases;
}

/// Run one fuzzed module shape through the tree-walk reference and the
/// bytecode engine under BOTH dispatch strategies (direct-threaded and
/// portable switch) and assert every non-input value agrees bit for
/// bit, on the primary module and -- when the hyperplane transform
/// applies -- on the rewritten module too.
inline void expect_engines_agree_on_case(const DiffCase& test_case) {
  CompileOptions options = test_case.options;
  options.apply_hyperplane = true;
  auto result = compile_or_die(test_case.source, options);

  std::vector<const CompiledModule*> stages{result.primary.operator->()};
  if (result.transformed) stages.push_back(result.transformed.operator->());
  for (const CompiledModule* stage : stages) {
    const std::string label = test_case.name + "/" + stage->module->name;
    auto tree = run_interpreter(*stage, test_case, EvalEngine::TreeWalk);
    auto threaded =
        run_interpreter(*stage, test_case, EvalEngine::Bytecode,
                        /*outputs_only=*/false, BcDispatch::Threaded);
    auto switched =
        run_interpreter(*stage, test_case, EvalEngine::Bytecode,
                        /*outputs_only=*/false, BcDispatch::Switch);
    expect_bitwise_equal(tree, threaded, label + "/threaded");
    expect_bitwise_equal(tree, switched, label + "/switch");
  }
}

/// The interpreter's native tier (EngineHost's whole-module JIT kernel,
/// `psc --engine=native` on a plain interpreted run) differentially
/// against the tree walk and the bytecode engine on the primary module.
/// Asserts the native tier actually engaged -- an empty fallback_reason
/// and engine() == Native -- so a module silently demoted out of the
/// widened fragment (records, fixed real LHS subscripts) is a failure,
/// not a skipped comparison. Returns false when no C compiler answers
/// the probe (nothing to check).
inline bool expect_native_interpreter_agrees(const DiffCase& test_case) {
  if (!native_engine_available()) return false;
  auto result = compile_or_die(test_case.source, test_case.options);
  const CompiledModule& stage = *result.primary;

  InterpreterOptions options;
  options.engine = EvalEngine::Native;
  Interpreter native(*stage.module, *stage.graph, stage.schedule.flowchart,
                     test_case.int_inputs, test_case.real_inputs, options);
  EXPECT_EQ(native.engine(), EvalEngine::Native)
      << test_case.name << " fell back: " << native.fallback_reason();
  EXPECT_TRUE(native.fallback_reason().empty())
      << test_case.name << ": " << native.fallback_reason();
  fill_interpreter_inputs(native, *stage.module, test_case.input_fill);
  native.run();
  EngineOutputs native_out =
      collect_outputs(native, *stage.module, /*outputs_only=*/false);

  auto tree = run_interpreter(stage, test_case, EvalEngine::TreeWalk);
  auto bytecode = run_interpreter(stage, test_case, EvalEngine::Bytecode);
  expect_bitwise_equal(tree, native_out, test_case.name + "/native");
  expect_bitwise_equal(tree, bytecode, test_case.name + "/native-vs-bytecode");
  return true;
}

/// The parallel native whole-module kernel: psc_module_par's DOALL
/// sites fanned over a worker pool at several worker counts (the -j
/// 1/2/8 ladder), each run bit-exact against the tree walk on every
/// non-input value. Asserts the native tier actually engaged (empty
/// fallback_reason) -- the parallel form must not silently demote the
/// module. Returns false when no C compiler answers the probe.
inline bool expect_parallel_native_interpreter_agrees(
    const DiffCase& test_case) {
  if (!native_engine_available()) return false;
  auto result = compile_or_die(test_case.source, test_case.options);
  const CompiledModule& stage = *result.primary;
  auto tree = run_interpreter(stage, test_case, EvalEngine::TreeWalk);

  for (size_t workers : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(workers);
    InterpreterOptions options;
    options.engine = EvalEngine::Native;
    options.pool = &pool;
    options.native_threads = workers;
    Interpreter native(*stage.module, *stage.graph, stage.schedule.flowchart,
                       test_case.int_inputs, test_case.real_inputs, options);
    EXPECT_EQ(native.engine(), EvalEngine::Native)
        << test_case.name << " fell back: " << native.fallback_reason();
    EXPECT_TRUE(native.fallback_reason().empty())
        << test_case.name << ": " << native.fallback_reason();
    fill_interpreter_inputs(native, *stage.module, test_case.input_fill);
    native.run();
    EngineOutputs native_out =
        collect_outputs(native, *stage.module, /*outputs_only=*/false);
    expect_bitwise_equal(
        tree, native_out,
        test_case.name + "/parallel-native-j" + std::to_string(workers));
  }
  return true;
}

/// The work-stealing wavefront backend at several worker counts (1, 2
/// and 8) against the sequential tree-walk reference: outputs and the
/// points/hyperplanes/flushed counters must agree exactly, and the
/// bytecode tier must be in effect with an empty fallback_reason.
/// Returns false when the module has no hyperplane transform.
inline bool expect_workstealing_wavefront_agrees(const DiffCase& test_case) {
  CompileOptions options = test_case.options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  auto result = compile_or_die(test_case.source, options);
  if (!result.transformed || !result.exact_nest) return false;

  auto run_one = [&](const WavefrontOptions& opts) {
    auto runner = std::make_unique<WavefrontRunner>(
        *result.transformed->module, *result.transform, *result.exact_nest,
        test_case.int_inputs, test_case.real_inputs, opts);
    double (*fill)(size_t) =
        test_case.input_fill != nullptr ? test_case.input_fill : input_value;
    for (const DataItem& item : result.transformed->module->data) {
      if (item.cls != DataClass::Input || item.is_scalar()) continue;
      bool int_elems = item.elem != nullptr &&
                       item.elem->scalar_kind() == TypeKind::Int;
      auto span = runner->array(item.name).raw();
      for (size_t i = 0; i < span.size(); ++i)
        span[i] =
            int_elems ? static_cast<double>(int_input_value(i)) : fill(i);
    }
    runner->run();
    return runner;
  };

  WavefrontOptions reference_opts;
  reference_opts.engine = EvalEngine::TreeWalk;
  auto reference = run_one(reference_opts);

  for (size_t workers : {size_t{1}, size_t{2}, size_t{8}}) {
    ThreadPool pool(workers);
    WavefrontOptions opts;
    opts.pool = &pool;
    opts.backend = WavefrontBackend::WorkStealing;
    opts.shards = workers;
    auto stealing = run_one(opts);
    const std::string label = test_case.name + "/stealing-j" +
                              std::to_string(workers);
    EXPECT_EQ(stealing->engine(), EvalEngine::Bytecode)
        << label << " fell back: " << stealing->fallback_reason();
    EXPECT_TRUE(stealing->fallback_reason().empty())
        << label << ": " << stealing->fallback_reason();
    EXPECT_EQ(reference->stats().points, stealing->stats().points) << label;
    EXPECT_EQ(reference->stats().hyperplanes, stealing->stats().hyperplanes)
        << label;
    EXPECT_EQ(reference->stats().flushed, stealing->stats().flushed) << label;
    for (const DataItem& item : result.transformed->module->data) {
      if (item.cls != DataClass::Output || item.is_scalar()) continue;
      auto expected = reference->array(item.name).raw();
      auto got = stealing->array(item.name).raw();
      EXPECT_EQ(expected.size(), got.size()) << label << " " << item.name;
      if (expected.size() != got.size()) continue;
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(std::bit_cast<uint64_t>(expected[i]),
                  std::bit_cast<uint64_t>(got[i]))
            << label << " " << item.name << "[" << i << "]";
        if (std::bit_cast<uint64_t>(expected[i]) !=
            std::bit_cast<uint64_t>(got[i]))
          break;
      }
    }
  }
  return true;
}

/// The wavefront cross-check as a reusable fixture: compile with the
/// hyperplane + exact-bounds pipeline and, when the module transforms,
/// run the WavefrontRunner under every evaluator tier -- tree-walk,
/// bytecode and (when a C compiler answers the probe) the in-process
/// native JIT -- and compare all outputs (and stats) bit-exactly.
/// Inputs honour the case's content-fuzz fill, with int-element arrays
/// on the integer ramp, exactly like the interpreter legs. Returns
/// false when the module has no hyperplane transform (nothing to
/// check).
inline bool expect_wavefront_engines_agree(const DiffCase& test_case) {
  CompileOptions options = test_case.options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  auto result = compile_or_die(test_case.source, options);
  if (!result.transformed || !result.exact_nest) return false;

  auto make_runner = [&](EvalEngine engine) {
    WavefrontOptions opts;
    opts.engine = engine;
    return std::make_unique<WavefrontRunner>(
        *result.transformed->module, *result.transform, *result.exact_nest,
        test_case.int_inputs, test_case.real_inputs, opts);
  };

  auto reference = make_runner(EvalEngine::TreeWalk);
  auto bytecode = make_runner(EvalEngine::Bytecode);
  // No silent capability cliff: every module the harness feeds through
  // here must actually run on the requested engine tier (the fallback
  // records its reason precisely so this can be asserted).
  EXPECT_EQ(bytecode->engine(), EvalEngine::Bytecode)
      << test_case.name << " fell back: " << bytecode->fallback_reason();
  std::vector<std::pair<const char*, std::unique_ptr<WavefrontRunner>>>
      runners;
  runners.emplace_back("tree-walk", std::move(reference));
  runners.emplace_back("bytecode", std::move(bytecode));
  if (native_engine_available()) {
    auto native = make_runner(EvalEngine::Native);
    EXPECT_EQ(native->engine(), EvalEngine::Native)
        << test_case.name << " fell back: " << native->fallback_reason();
    runners.emplace_back("native", std::move(native));
  }

  double (*fill)(size_t) =
      test_case.input_fill != nullptr ? test_case.input_fill : input_value;
  for (auto& [engine_name, runner] : runners) {
    for (const DataItem& item : result.transformed->module->data) {
      if (item.cls != DataClass::Input || item.is_scalar()) continue;
      bool int_elems = item.elem != nullptr &&
                       item.elem->scalar_kind() == TypeKind::Int;
      auto span = runner->array(item.name).raw();
      for (size_t i = 0; i < span.size(); ++i)
        span[i] =
            int_elems ? static_cast<double>(int_input_value(i)) : fill(i);
    }
    runner->run();
  }

  const WavefrontRunner& want = *runners.front().second;
  for (size_t r = 1; r < runners.size(); ++r) {
    const auto& [engine_name, runner] = runners[r];
    const std::string label = test_case.name + std::string("/") + engine_name;
    EXPECT_EQ(want.stats().points, runner->stats().points) << label;
    EXPECT_EQ(want.stats().hyperplanes, runner->stats().hyperplanes) << label;
    EXPECT_EQ(want.stats().flushed, runner->stats().flushed) << label;
    for (const DataItem& item : result.transformed->module->data) {
      if (item.cls != DataClass::Output || item.is_scalar()) continue;
      auto expected = want.array(item.name).raw();
      auto got = runner->array(item.name).raw();
      EXPECT_EQ(expected.size(), got.size()) << label << " " << item.name;
      if (expected.size() != got.size()) continue;
      for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(std::bit_cast<uint64_t>(expected[i]),
                  std::bit_cast<uint64_t>(got[i]))
            << label << " " << item.name << "[" << i << "]";
    }
  }
  return true;
}

}  // namespace ps::testutil
