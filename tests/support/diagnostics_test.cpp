#include "support/diagnostics.hpp"

#include <gtest/gtest.h>

namespace ps {
namespace {

TEST(Diagnostics, StartsClean) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 0u);
  EXPECT_TRUE(diags.render().empty());
}

TEST(Diagnostics, CountsOnlyErrors) {
  DiagnosticEngine diags;
  diags.note({1, 1, 0}, "fyi");
  diags.warning({1, 2, 1}, "hm");
  EXPECT_FALSE(diags.has_errors());
  diags.error({2, 1, 10}, "bad");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, RenderIncludesSeverityAndLocation) {
  DiagnosticEngine diags;
  diags.error({3, 7, 0}, "unexpected thing");
  std::string text = diags.render();
  EXPECT_NE(text.find("3:7"), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("unexpected thing"), std::string::npos);
}

TEST(Diagnostics, RenderQuotesSourceLineWithCaret) {
  DiagnosticEngine diags;
  std::string src = "line one\nline two\n";
  diags.set_source(src, "test.ps");
  // Error at "two" (line 2, column 6, offset 14).
  diags.error({2, 6, 14}, "boom");
  std::string text = diags.render();
  EXPECT_NE(text.find("test.ps:2:6"), std::string::npos);
  EXPECT_NE(text.find("line two"), std::string::npos);
  EXPECT_NE(text.find("^"), std::string::npos);
}

TEST(Diagnostics, MessagesFilterBySeverity) {
  DiagnosticEngine diags;
  diags.warning({}, "w1");
  diags.error({}, "e1");
  diags.warning({}, "w2");
  auto warnings = diags.messages(Severity::Warning);
  ASSERT_EQ(warnings.size(), 2u);
  EXPECT_EQ(warnings[0], "w1");
  EXPECT_EQ(warnings[1], "w2");
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine diags;
  diags.error({}, "e");
  diags.clear();
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(diags.diagnostics().empty());
}

}  // namespace
}  // namespace ps
