#include <gtest/gtest.h>

#include "support/dot_writer.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"

namespace ps {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"Component", "Node(s)", "Flowchart"});
  table.add_row({"1", "InitialA", "(null)"});
  table.add_row({"5", "A, eq.3", "DO K (DOALL I (DOALL J (eq.3)))"});
  std::string text = table.render();
  EXPECT_NE(text.find("Component | Node(s)  | Flowchart"), std::string::npos);
  EXPECT_NE(text.find("----------+-"), std::string::npos);
  EXPECT_NE(text.find("5         | A, eq.3  | DO K"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, RejectsRaggedRow) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
}

TEST(DotWriter, RendersNodesAndEdges) {
  DotWriter dot("g");
  dot.add_node("n0", "A[K,I,J]");
  dot.add_node("n1", "eq.3", "box");
  dot.add_edge("n0", "n1", "K - 1");
  dot.add_edge("n1", "n0", "", "dashed");
  std::string text = dot.render();
  EXPECT_NE(text.find("digraph g {"), std::string::npos);
  EXPECT_NE(text.find("\"n0\" [label=\"A[K,I,J]\", shape=ellipse];"),
            std::string::npos);
  EXPECT_NE(text.find("\"n0\" -> \"n1\" [label=\"K - 1\"];"),
            std::string::npos);
  EXPECT_NE(text.find("style=\"dashed\""), std::string::npos);
}

TEST(DotWriter, EscapesQuotes) {
  EXPECT_EQ(DotWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(Strings, JoinSplitTrim) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, CaseHelpers) {
  EXPECT_TRUE(iequals("Module", "mOdUlE"));
  EXPECT_FALSE(iequals("mod", "mode"));
  EXPECT_EQ(to_lower("MaxK"), "maxk");
  EXPECT_EQ(repeat("ab", 3), "ababab");
}

}  // namespace
}  // namespace ps
