#include "support/matrix.hpp"

#include <gtest/gtest.h>

#include <random>

namespace ps {
namespace {

TEST(IntMatrix, IdentityAndMultiply) {
  IntMatrix a{{1, 2}, {3, 4}};
  IntMatrix i = IntMatrix::identity(2);
  EXPECT_EQ(a.multiply(i), a);
  EXPECT_EQ(i.multiply(a), a);
  IntMatrix b{{0, 1}, {1, 0}};
  IntMatrix ab = a.multiply(b);
  EXPECT_EQ(ab.at(0, 0), 2);
  EXPECT_EQ(ab.at(0, 1), 1);
  EXPECT_EQ(ab.at(1, 0), 4);
  EXPECT_EQ(ab.at(1, 1), 3);
}

TEST(IntMatrix, Apply) {
  IntMatrix t{{2, 1, 1}, {1, 0, 0}, {0, 1, 0}};
  std::vector<int64_t> v{3, 4, 5};
  auto out = t.apply(v);
  EXPECT_EQ(out, (std::vector<int64_t>{15, 3, 4}));
}

TEST(IntMatrix, DeterminantOfPaperTransform) {
  // K' = 2K + I + J, I' = K, J' = I  (paper section 4).
  IntMatrix t{{2, 1, 1}, {1, 0, 0}, {0, 1, 0}};
  EXPECT_EQ(t.determinant(), Rational(1));
  EXPECT_TRUE(t.is_unimodular());
}

TEST(IntMatrix, SingularDeterminant) {
  IntMatrix t{{1, 2}, {2, 4}};
  EXPECT_EQ(t.determinant(), Rational(0));
  EXPECT_FALSE(t.integer_inverse().has_value());
}

TEST(IntMatrix, IntegerInverseOfPaperTransform) {
  IntMatrix t{{2, 1, 1}, {1, 0, 0}, {0, 1, 0}};
  auto inv = t.integer_inverse();
  ASSERT_TRUE(inv.has_value());
  // K = I', I = J', J = K' - 2I' - J'.
  IntMatrix expected{{0, 1, 0}, {0, 0, 1}, {1, -2, -1}};
  EXPECT_EQ(*inv, expected);
  EXPECT_EQ(t.multiply(*inv), IntMatrix::identity(3));
}

TEST(IntMatrix, NonIntegralInverseRejected) {
  IntMatrix t{{2, 0}, {0, 1}};  // det 2: inverse has 1/2
  EXPECT_FALSE(t.integer_inverse().has_value());
}

TEST(VectorOps, GcdAndDot) {
  EXPECT_EQ(vector_gcd({4, -6, 8}), 2);
  EXPECT_EQ(vector_gcd({0, 0}), 0);
  EXPECT_EQ(vector_gcd({}), 0);
  EXPECT_EQ(dot({1, 2, 3}, {4, 5, 6}), 32);
  EXPECT_THROW((void)dot({1}, {1, 2}), std::invalid_argument);
}

TEST(UnimodularCompletion, PaperVector) {
  auto m = unimodular_completion({2, 1, 1});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->row(0), (std::vector<int64_t>{2, 1, 1}));
  EXPECT_TRUE(m->is_unimodular());
  // Lamport's unit-vector completion omits the last +-1 coordinate,
  // giving exactly the paper's I' = K, J' = I.
  EXPECT_EQ(m->row(1), (std::vector<int64_t>{1, 0, 0}));
  EXPECT_EQ(m->row(2), (std::vector<int64_t>{0, 1, 0}));
}

TEST(UnimodularCompletion, RejectsNonPrimitive) {
  EXPECT_FALSE(unimodular_completion({2, 4}).has_value());
  EXPECT_FALSE(unimodular_completion({0, 0}).has_value());
  EXPECT_FALSE(unimodular_completion({}).has_value());
}

TEST(UnimodularCompletion, GcdFallbackWhenNoUnitCoefficient) {
  // gcd(2, 3) = 1 but no +-1 entry: exercises the extended-gcd path.
  auto m = unimodular_completion({2, 3});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->row(0), (std::vector<int64_t>{2, 3}));
  EXPECT_TRUE(m->is_unimodular());
  ASSERT_TRUE(m->integer_inverse().has_value());
}

TEST(UnimodularCompletion, RandomPrimitiveVectors) {
  std::mt19937 rng(1234);
  std::uniform_int_distribution<int64_t> coef(-9, 9);
  std::uniform_int_distribution<size_t> dims(1, 5);
  size_t produced = 0;
  for (int trial = 0; trial < 500; ++trial) {
    size_t n = dims(rng);
    std::vector<int64_t> v(n);
    for (auto& x : v) x = coef(rng);
    if (vector_gcd(v) != 1) continue;
    ++produced;
    auto m = unimodular_completion(v);
    ASSERT_TRUE(m.has_value()) << "trial " << trial;
    EXPECT_EQ(m->row(0), v);
    EXPECT_TRUE(m->is_unimodular());
    auto inv = m->integer_inverse();
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(m->multiply(*inv), IntMatrix::identity(n));
  }
  EXPECT_GT(produced, 100u);  // the filter should not starve the test
}

}  // namespace
}  // namespace ps
