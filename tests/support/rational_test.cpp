#include "support/rational.hpp"

#include <gtest/gtest.h>

namespace ps {
namespace {

TEST(Rational, NormalisesOnConstruction) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
  Rational neg(3, -9);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 3);
  Rational zero(0, 17);
  EXPECT_EQ(zero.num(), 0);
  EXPECT_EQ(zero.den(), 1);
}

TEST(Rational, Arithmetic) {
  Rational a(1, 2);
  Rational b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GE(Rational(7), Rational(7));
}

TEST(Rational, IntegerDetection) {
  EXPECT_TRUE(Rational(8, 4).is_integer());
  EXPECT_EQ(Rational(8, 4).as_integer(), 2);
  EXPECT_FALSE(Rational(1, 2).is_integer());
  EXPECT_THROW((void)Rational(1, 2).as_integer(), std::domain_error);
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1, 0), std::domain_error);
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(3).to_string(), "3");
  EXPECT_EQ(Rational(-4, 6).to_string(), "-2/3");
}

TEST(Rational, CompoundAssignment) {
  Rational r(1, 2);
  r += Rational(1, 2);
  EXPECT_EQ(r, Rational(1));
  r *= Rational(3, 4);
  EXPECT_EQ(r, Rational(3, 4));
  r -= Rational(1, 4);
  EXPECT_EQ(r, Rational(1, 2));
  r /= Rational(1, 2);
  EXPECT_EQ(r, Rational(1));
}

}  // namespace
}  // namespace ps
