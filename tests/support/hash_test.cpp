#include "support/hash.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ps {
namespace {

// FIPS 180-4 test vectors: an implementation that gets any of these
// right by accident does not exist.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(
      sha256_hex(""),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(
      sha256_hex("abc"),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 hash;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hash.update(chunk);
  EXPECT_EQ(
      hash.hex_digest(),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// Split points must not matter: the streaming interface sees the same
// bytes whatever chunking the cache's key builder uses.
TEST(Sha256, ChunkingIsIrrelevant) {
  std::string text = "the quick brown fox jumps over the lazy dog, twice, "
                     "so the message spans more than one 64-byte block";
  std::string whole = sha256_hex(text);
  for (size_t split = 0; split <= text.size(); split += 7) {
    Sha256 hash;
    hash.update(text.substr(0, split));
    hash.update(text.substr(split));
    EXPECT_EQ(hash.hex_digest(), whole) << "split at " << split;
  }
}

TEST(Sha256, ResetStartsOver) {
  Sha256 hash;
  hash.update("garbage that must not leak into the next digest");
  (void)hash.digest();
  hash.reset();
  hash.update("abc");
  EXPECT_EQ(
      hash.hex_digest(),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

}  // namespace
}  // namespace ps
