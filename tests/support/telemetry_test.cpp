#include "support/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json_lint.hpp"
#include "driver/paper_modules.hpp"
#include "service/compile_service.hpp"

namespace ps {
namespace {

/// Every trace test drives the one global session; this guard makes
/// each test start from a clean, disabled state and leave it that way
/// for whoever runs next in the binary.
struct TraceGuard {
  explicit TraceGuard(size_t ring_capacity
                      = TraceSession::kDefaultRingCapacity) {
    TraceSession::global().disable();
    TraceSession::global().clear();
    TraceSession::global().enable(ring_capacity);
  }
  ~TraceGuard() {
    TraceSession::global().disable();
    TraceSession::global().clear();
  }
};

TEST(Histogram, BucketBoundariesAreExponentialFromOneMicrosecond) {
  // Bucket i spans (limit(i-1), limit(i)] with limit(i) = 0.001 * 2^i.
  EXPECT_DOUBLE_EQ(Histogram::bucket_limit(0), 0.001);
  EXPECT_DOUBLE_EQ(Histogram::bucket_limit(1), 0.002);
  EXPECT_DOUBLE_EQ(Histogram::bucket_limit(10), 1.024);
  EXPECT_TRUE(std::isinf(Histogram::bucket_limit(Histogram::kBuckets - 1)));

  EXPECT_EQ(Histogram::bucket_for(0.0005), 0u);
  EXPECT_EQ(Histogram::bucket_for(0.001), 0u);   // inclusive upper bound
  EXPECT_EQ(Histogram::bucket_for(0.0011), 1u);  // just past it
  EXPECT_EQ(Histogram::bucket_for(0.002), 1u);
  EXPECT_EQ(Histogram::bucket_for(1.0), 10u);
  EXPECT_EQ(Histogram::bucket_for(1.024), 10u);
  EXPECT_EQ(Histogram::bucket_for(1.025), 11u);
  // Degenerate inputs land in the first bucket rather than anywhere odd.
  EXPECT_EQ(Histogram::bucket_for(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_for(-5.0), 0u);
  // Beyond the last finite limit: the overflow bucket.
  EXPECT_EQ(Histogram::bucket_for(1e12), Histogram::kBuckets - 1);
}

TEST(Histogram, PercentilesInterpolateAndClampToRecordedMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);  // empty histogram reads zero

  // 100 samples at ~1ms, one straggler at 100ms: the median must stay
  // near 1ms and p100 must report exactly the recorded maximum, not a
  // bucket boundary above it.
  for (int i = 0; i < 100; ++i) h.record(1.0);
  h.record(100.0);
  EXPECT_EQ(h.count(), 101u);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.sum(), 200.0, 1e-9);
  double p50 = h.percentile(50);
  EXPECT_GT(p50, 0.5);
  EXPECT_LE(p50, 1.024);  // inside the 1ms bucket
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  // p99 of 101 samples is rank 100 -- still one of the 1ms samples.
  EXPECT_LE(h.percentile(99), 1.024);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(95), 0.0);
}

TEST(Histogram, ConcurrentRecordsLoseNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(1.0);
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  // The CAS-accumulated sum must agree exactly: every sample was 1.0.
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
}

TEST(MetricsRegistry, HandlesAreStableAndResetZeroesInPlace) {
  MetricsRegistry& registry = MetricsRegistry::global();
  Counter& counter = registry.counter("test.reset_counter");
  Histogram& histogram = registry.histogram("test.reset_histogram");
  counter.add(7);
  histogram.record(2.5);
  EXPECT_EQ(&registry.counter("test.reset_counter"), &counter);
  EXPECT_EQ(&registry.histogram("test.reset_histogram"), &histogram);
  EXPECT_EQ(counter.value(), 7u);

  registry.reset();
  // The old handles still point at live instruments, now zeroed.
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
  counter.add(1);
  EXPECT_EQ(registry.counter("test.reset_counter").value(), 1u);
}

TEST(MetricsRegistry, RenderJsonIsWellFormed) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.counter("test.render_counter").add(3);
  registry.gauge("test.render_gauge").set(-2);
  registry.histogram("test.render_histogram").record(1.5);

  std::string error;
  std::shared_ptr<test::JsonValue> doc =
      test::JsonParser::parse(registry.render_json(), &error);
  ASSERT_NE(doc, nullptr) << error;
  const test::JsonValue* counters = doc->get("counters");
  ASSERT_NE(counters, nullptr);
  const test::JsonValue* counter = counters->get("test.render_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_GE(counter->number, 3.0);
  const test::JsonValue* histograms = doc->get("histograms");
  ASSERT_NE(histograms, nullptr);
  const test::JsonValue* h = histograms->get("test.render_histogram");
  ASSERT_NE(h, nullptr);
  ASSERT_NE(h->get("p50"), nullptr);
  ASSERT_NE(h->get("p95"), nullptr);
  ASSERT_NE(h->get("p99"), nullptr);
  ASSERT_NE(h->get("count"), nullptr);
}

TEST(MetricsRegistry, ResetSeparatesCompileServiceSessions) {
  MetricsRegistry& registry = MetricsRegistry::global();
  registry.reset();

  ServiceRequest request;
  for (const PaperModule& module : paper_corpus())
    request.units.push_back({module.name, module.source, false});

  {
    CompileService service{ServiceOptions{}};
    (void)service.compile(request);
  }
  uint64_t first_requests = registry.counter("service.requests").value();
  uint64_t first_units = registry.counter("service.units").value();
  EXPECT_EQ(first_requests, 1u);
  EXPECT_EQ(first_units, request.units.size());
  EXPECT_GE(registry.counter("batch.units").value(), request.units.size());
  EXPECT_GT(registry.histogram("service.request_ms").count(), 0u);

  // A fresh session starts from clean numbers: reset between services
  // and the counters tell only the second session's story.
  registry.reset();
  EXPECT_EQ(registry.counter("service.requests").value(), 0u);
  {
    CompileService service{ServiceOptions{}};
    (void)service.compile(request);
    (void)service.compile(request);
  }
  EXPECT_EQ(registry.counter("service.requests").value(), 2u);
  EXPECT_EQ(registry.counter("service.units").value(),
            2 * request.units.size());
  registry.reset();
}

TEST(TraceSession, DisabledSessionRecordsNothingAndSpansStayCheap) {
  TraceSession::global().disable();
  TraceSession::global().clear();
  {
    TraceSpan span("never", "test");
    EXPECT_FALSE(span.live());
    span.arg("key", std::string_view("value"));
  }
  TraceSession::global().record("direct", "test", 0, 1);
  TraceSession::global().enable();
  std::string json = TraceSession::global().flush_json();
  TraceSession::global().disable();
  std::shared_ptr<test::JsonValue> doc = test::JsonParser::parse(json);
  ASSERT_NE(doc, nullptr);
  const test::JsonValue* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  for (const auto& event : events->array) {
    const test::JsonValue* name = event->get("name");
    ASSERT_NE(name, nullptr);
    EXPECT_NE(name->string, "never");
    EXPECT_NE(name->string, "direct");
  }
}

TEST(TraceSession, TimedSpanTimesEvenWhenDisabledButEmitsNoEvent) {
  TraceSession::global().disable();
  TraceSession::global().clear();
  TimedSpan span("timed-disabled", "test");
  double ms = span.finish_ms();
  EXPECT_GE(ms, 0.0);  // the clock ran regardless of the session state
  TraceSession::global().enable();
  std::string json = TraceSession::global().flush_json();
  TraceSession::global().disable();
  EXPECT_EQ(json.find("timed-disabled"), std::string::npos);
}

TEST(TraceSession, ConcurrentSpansFromEightThreadsFlushWellFormedJson) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  TraceGuard guard;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("worker-span", "test");
        span.arg("thread", static_cast<int64_t>(t));
        span.arg("iteration", static_cast<int64_t>(i));
        // A value that must survive JSON escaping intact.
        span.arg("payload", std::string_view("quote\" backslash\\ tab\t"));
      }
    });
  for (std::thread& thread : threads) thread.join();

  std::string json = TraceSession::global().flush_json();
  std::string error;
  std::shared_ptr<test::JsonValue> doc = test::JsonParser::parse(json, &error);
  ASSERT_NE(doc, nullptr) << error << "\n" << json.substr(0, 400);

  const test::JsonValue* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  size_t worker_events = 0;
  std::set<double> tids;
  int64_t last_ts = -1;
  for (const auto& event : events->array) {
    const test::JsonValue* name = event->get("name");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(event->get("ts"), nullptr);
    ASSERT_NE(event->get("dur"), nullptr);
    ASSERT_NE(event->get("tid"), nullptr);
    // flush_json sorts by start time so viewers stream it directly.
    int64_t ts = static_cast<int64_t>(event->get("ts")->number);
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    if (name->string != "worker-span") continue;
    ++worker_events;
    tids.insert(event->get("tid")->number);
    const test::JsonValue* args = event->get("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->get("payload"), nullptr);
    EXPECT_EQ(args->get("payload")->string, "quote\" backslash\\ tab\t");
  }
  // Nothing dropped at this volume, and each OS thread got its own
  // trace lane (distinct tid) -- that is what makes -j worker lanes
  // visible in the viewer.
  EXPECT_EQ(worker_events,
            static_cast<size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(TraceSession::global().dropped_events(), 0u);
  EXPECT_GE(tids.size(), static_cast<size_t>(kThreads));
}

TEST(TraceSession, SaturatedRingOverwritesOldestAndCountsDrops) {
  constexpr size_t kCapacity = 16;  // enable() floors the ring here
  TraceGuard guard(kCapacity);
  for (int i = 0; i < 50; ++i) {
    TraceSpan span("ring-span", "test");
    span.arg("i", static_cast<int64_t>(i));
  }
  EXPECT_EQ(TraceSession::global().dropped_events(),
            static_cast<uint64_t>(50 - kCapacity));

  std::string json = TraceSession::global().flush_json();
  std::shared_ptr<test::JsonValue> doc = test::JsonParser::parse(json);
  ASSERT_NE(doc, nullptr);
  const test::JsonValue* events = doc->get("traceEvents");
  ASSERT_NE(events, nullptr);
  // Only the newest kCapacity events survive, oldest-first.
  std::vector<int64_t> kept;
  for (const auto& event : events->array) {
    if (event->get("name")->string != "ring-span") continue;
    kept.push_back(static_cast<int64_t>(event->get("args")->get("i")->number));
  }
  ASSERT_EQ(kept.size(), kCapacity);
  EXPECT_EQ(kept.front(), static_cast<int64_t>(50 - kCapacity));
  EXPECT_EQ(kept.back(), 49);
  // clear() also zeroes the drop ledger.
  TraceSession::global().clear();
  EXPECT_EQ(TraceSession::global().dropped_events(), 0u);
}

TEST(TraceSession, PassSpansCarryTheUnitFileName) {
  TraceGuard guard;
  ServiceRequest request;
  for (const PaperModule& module : paper_corpus())
    request.units.push_back({module.name, module.source, false});
  {
    CompileService service{ServiceOptions{}};
    (void)service.compile(request);
  }
  std::string json = TraceSession::global().flush_json();
  std::string error;
  std::shared_ptr<test::JsonValue> doc = test::JsonParser::parse(json, &error);
  ASSERT_NE(doc, nullptr) << error;

  // The whole instrumented stack shows up in one trace: the service
  // request, each batch unit, and the per-pass spans tagged with the
  // unit they compiled.
  std::set<std::string> names;
  bool parse_has_unit = false;
  for (const auto& event : doc->get("traceEvents")->array) {
    names.insert(event->get("name")->string);
    if (event->get("name")->string == "Parse") {
      const test::JsonValue* args = event->get("args");
      if (args != nullptr && args->get("unit") != nullptr &&
          !args->get("unit")->string.empty())
        parse_has_unit = true;
    }
  }
  EXPECT_TRUE(names.count("service-request")) << json.substr(0, 400);
  EXPECT_TRUE(names.count("compile-all"));
  EXPECT_TRUE(names.count("compile-unit"));
  EXPECT_TRUE(names.count("Parse"));
  EXPECT_TRUE(names.count("Schedule"));
  EXPECT_TRUE(parse_has_unit);
}

TEST(Counter, ConcurrentAddsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add(1);
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace ps
