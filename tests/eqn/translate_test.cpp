// End-to-end tests for the equation front end: EQN text -> PS module ->
// (unchanged pipeline) dependency graph, scheduler, transform. This is
// the paper's "ultimate goal" -- "a translator of equations in the form
// of (1) ... to modules in this language" -- closed against the rest of
// the compiler.

#include "eqn/translate.hpp"

#include <gtest/gtest.h>

#include "../common/test_util.hpp"
#include "driver/compiler.hpp"
#include "runtime/interpreter.hpp"
#include "runtime/wavefront.hpp"

namespace ps::eqn {
namespace {

constexpr const char* kJacobiEqn = R"EQ(
module Relaxation;
param InitialA : real[0..M+1, 0..M+1];
param M : int;
param maxK : int;
result newA = A^{maxK};

A^{1}_{i,j} = InitialA_{i,j}
  for i in 0..M+1, j in 0..M+1;

A^{k}_{i,j} = A^{k-1}_{i,j}
  if i = 0 \lor j = 0 \lor i = M+1 \lor j = M+1
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;

A^{k}_{i,j} = \frac{A^{k-1}_{i,j-1} + A^{k-1}_{i-1,j}
                    + A^{k-1}_{i,j+1} + A^{k-1}_{i+1,j}}{4}
  otherwise
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;
)EQ";

/// The Gauss-Seidel variant (the paper's Equation 2): two of the four
/// neighbours come from the current sweep.
constexpr const char* kGaussSeidelEqn = R"EQ(
module Relaxation;
param InitialA : real[0..M+1, 0..M+1];
param M : int;
param maxK : int;
result newA = A^{maxK};

A^{1}_{i,j} = InitialA_{i,j}
  for i in 0..M+1, j in 0..M+1;

A^{k}_{i,j} = A^{k-1}_{i,j}
  if i = 0 \lor j = 0 \lor i = M+1 \lor j = M+1
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;

A^{k}_{i,j} = \frac{A^{k}_{i,j-1} + A^{k}_{i-1,j}
                    + A^{k-1}_{i,j+1} + A^{k-1}_{i+1,j}}{4}
  otherwise
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;
)EQ";

ModuleAst translate_or_die(std::string_view text) {
  DiagnosticEngine diags;
  auto module = equations_to_ps(text, diags);
  EXPECT_TRUE(module.has_value()) << diags.render();
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return std::move(*module);
}

TEST(Translate, JacobiProducesTheFigure1Shapes) {
  ModuleAst module = translate_or_die(kJacobiEqn);
  std::string src = to_source(module);

  // Subrange types from the bindings, merged by range.
  EXPECT_NE(src.find("i, j = 0 .. M + 1"), std::string::npos) << src;
  EXPECT_NE(src.find("k = 2 .. maxK"), std::string::npos);
  // The k dimension widens to 1..maxK from the fixed superscript 1.
  EXPECT_NE(src.find("A: array [1 .. maxK, i, j] of real"),
            std::string::npos)
      << src;
  // Fixed-slice equation, merged guarded equation, result copy.
  EXPECT_NE(src.find("A[1, i, j] = InitialA[i, j]"), std::string::npos);
  EXPECT_NE(src.find("A[k, i, j] = if i = 0 or j = 0"), std::string::npos);
  EXPECT_NE(src.find("newA[i, j] = A[maxK, i, j]"), std::string::npos);
}

TEST(Translate, JacobiCompilesToTheFigure6Schedule) {
  ModuleAst module = translate_or_die(kJacobiEqn);
  Compiler compiler;
  DiagnosticEngine diags;
  auto compiled = compiler.analyze(std::move(module), diags);
  ASSERT_TRUE(compiled.has_value()) << diags.render();
  ASSERT_TRUE(compiled->schedule.ok) << diags.render();

  std::string line =
      flowchart_to_line(compiled->schedule.flowchart, *compiled->graph);
  // The Figure 6 shape with the equation file's lower-case indices: the
  // recurrence is DO k (DOALL i (DOALL j ...)), everything else DOALL.
  EXPECT_NE(line.find("DO k (DOALL i (DOALL j"), std::string::npos) << line;
  EXPECT_EQ(line.find("DO i"), std::string::npos) << line;
  EXPECT_EQ(line.find("DO j"), std::string::npos) << line;
}

TEST(Translate, JacobiVirtualWindowIsTwo) {
  ModuleAst module = translate_or_die(kJacobiEqn);
  Compiler compiler;
  DiagnosticEngine diags;
  auto compiled = compiler.analyze(std::move(module), diags);
  ASSERT_TRUE(compiled.has_value());
  auto it = compiled->schedule.virtual_dims.find("A");
  ASSERT_NE(it, compiled->schedule.virtual_dims.end());
  EXPECT_TRUE(it->second[0].is_virtual);
  EXPECT_EQ(it->second[0].window, 2);
}

TEST(Translate, JacobiExecutesCorrectly) {
  ModuleAst module = translate_or_die(kJacobiEqn);
  Compiler compiler;
  DiagnosticEngine diags;
  auto compiled = compiler.analyze(std::move(module), diags);
  ASSERT_TRUE(compiled.has_value());

  const int64_t m = 5;
  Interpreter interp(*compiled->module, *compiled->graph,
                     compiled->schedule.flowchart,
                     IntEnv{{"M", m}, {"maxK", 4}});
  NdArray& in = interp.array("InitialA");
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j)
      in.set(std::vector<int64_t>{i, j},
             static_cast<double>((i * 7 + j) % 5));
  interp.run();

  // Hand-rolled Jacobi oracle.
  std::vector<std::vector<double>> grid(static_cast<size_t>(m + 2),
                                        std::vector<double>(m + 2));
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j)
      grid[i][j] = static_cast<double>((i * 7 + j) % 5);
  for (int64_t k = 2; k <= 4; ++k) {
    auto prev = grid;
    for (int64_t i = 1; i <= m; ++i)
      for (int64_t j = 1; j <= m; ++j)
        grid[i][j] = (prev[i][j - 1] + prev[i - 1][j] + prev[i][j + 1] +
                      prev[i + 1][j]) /
                     4.0;
  }
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j)
      EXPECT_NEAR(interp.array("newA").at(std::vector<int64_t>{i, j}),
                  grid[i][j], 1e-12)
          << i << "," << j;
}

TEST(Translate, GaussSeidelFeedsTheHyperplaneTransform) {
  ModuleAst module = translate_or_die(kGaussSeidelEqn);
  std::string ps_source = to_source(module);

  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  Compiler compiler(options);
  CompileResult result = compiler.compile(ps_source);
  ASSERT_TRUE(result.ok) << result.diagnostics;

  // Without the transform the schedule is fully iterative...
  std::string before =
      flowchart_to_line(result.primary->schedule.flowchart, *result.primary->graph);
  EXPECT_NE(before.find("DO k (DO i (DO j"), std::string::npos) << before;

  // ...and the section 4 machinery recovers the paper's result on the
  // equation-file path too: t = 2k + i + j.
  ASSERT_TRUE(result.transform.has_value()) << result.diagnostics;
  EXPECT_EQ(result.transform->time, (std::vector<int64_t>{2, 1, 1}));
  ASSERT_TRUE(result.transformed.has_value());
  std::string after = flowchart_to_line(result.transformed->schedule.flowchart,
                                        *result.transformed->graph);
  EXPECT_NE(after.find("DO k' (DOALL i' (DOALL j'"), std::string::npos)
      << after;
  ASSERT_TRUE(result.exact_nest.has_value());
}

TEST(Translate, ScalarResultSlicesEveryDimension) {
  ModuleAst module = translate_or_die(
      "module m; param n : int; result last = B^{n}_{0};\n"
      "B^1_i = 1.0 for i in 0..n;\n"
      "B^k_i = B^{k-1}_i + 1.0 for k in 2..n, i in 0..n;");
  std::string src = to_source(module);
  EXPECT_NE(src.find("[last: real]"), std::string::npos) << src;
  EXPECT_NE(src.find("last = B[n, 0]"), std::string::npos) << src;
}

TEST(Translate, MergesEqualRangesIntoOneTypeDecl) {
  ModuleAst module = translate_or_die(kJacobiEqn);
  // i and j share 0..M+1; k stands alone.
  ASSERT_EQ(module.type_decls.size(), 2u);
  EXPECT_EQ(module.type_decls[0].names,
            (std::vector<std::string>{"i", "j"}));
  EXPECT_EQ(module.type_decls[1].names, (std::vector<std::string>{"k"}));
}

TEST(Translate, ParamsReuseNamedSubranges) {
  ModuleAst module = translate_or_die(kJacobiEqn);
  std::string src = to_source(module);
  EXPECT_NE(src.find("InitialA: array [i, j] of real"), std::string::npos)
      << src;
}


TEST(Translate, GaussSeidelEquationFileRunsTheWindowedWavefront) {
  // The longest path through the system: TeX-ish equation file ->
  // EQN translator -> PS -> sema/graph/scheduler -> hyperplane
  // transform -> exact Fourier-Motzkin bounds -> windowed wavefront
  // execution, checked against the plain interpretation of the
  // untransformed module.
  ModuleAst module = translate_or_die(kGaussSeidelEqn);
  std::string ps_source = to_source(module);

  CompileOptions options;
  options.apply_hyperplane = true;
  options.exact_bounds = true;
  Compiler compiler(options);
  CompileResult result = compiler.compile(ps_source);
  ASSERT_TRUE(result.ok) << result.diagnostics;
  ASSERT_TRUE(result.transformed.has_value());
  ASSERT_TRUE(result.exact_nest.has_value());

  const int64_t m = 7;
  const int64_t sweeps = 5;
  IntEnv params{{"M", m}, {"maxK", sweeps}};

  Interpreter reference(*result.primary->module, *result.primary->graph,
                        result.primary->schedule.flowchart, params);
  WavefrontRunner wave(*result.transformed->module, *result.transform,
                       *result.exact_nest, params);
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j) {
      double v = static_cast<double>((2 * i + 3 * j) % 9);
      reference.array("InitialA").set(std::vector<int64_t>{i, j}, v);
      wave.array("InitialA").set(std::vector<int64_t>{i, j}, v);
    }
  reference.run();
  wave.run();
  for (int64_t i = 0; i <= m + 1; ++i)
    for (int64_t j = 0; j <= m + 1; ++j) {
      std::vector<int64_t> idx{i, j};
      EXPECT_NEAR(wave.array("newA").at(idx),
                  reference.array("newA").at(idx), 1e-12)
          << i << "," << j;
    }
  EXPECT_EQ(wave.window(), 3);
}

// -- error paths ------------------------------------------------------------

void expect_translate_error(std::string_view text, std::string_view needle) {
  DiagnosticEngine diags;
  auto module = equations_to_ps(text, diags);
  EXPECT_FALSE(module.has_value());
  EXPECT_NE(diags.render().find(needle), std::string::npos) << diags.render();
}

TEST(TranslateErrors, IncompleteCaseSplit) {
  expect_translate_error(
      "module m; param n : int; result r = B^n;\n"
      "B^k_i = 0.0 if i = 0 for k in 1..n, i in 0..n;",
      "case split is incomplete");
}

TEST(TranslateErrors, TwoUnguardedClauses) {
  expect_translate_error(
      "module m; param n : int; result r = B^n;\n"
      "B^k_i = 0.0 for k in 1..n, i in 0..n;\n"
      "B^k_i = 1.0 for k in 1..n, i in 0..n;",
      "more than one unguarded clause");
}

TEST(TranslateErrors, ClashingBindingRanges) {
  expect_translate_error(
      "module m; param n : int; result r = B^n;\n"
      "B^k_i = 0.0 for k in 1..n, i in 0..n;\n"
      "C^k_i = 1.0 for k in 2..n, i in 0..n;",
      "two different ranges");
}

TEST(TranslateErrors, UnusedBinding) {
  expect_translate_error(
      "module m; param n : int; result r = B^n;\n"
      "B^k_i = 0.0 for k in 1..n, i in 0..n, z in 0..n;",
      "does not appear on the left-hand side");
}

TEST(TranslateErrors, ResultOfUndefinedArray) {
  expect_translate_error(
      "module m; param n : int; result r = C^n;\n"
      "B^k_i = 0.0 for k in 1..n, i in 0..n;",
      "no equation defines");
}

TEST(TranslateErrors, RankMismatchAcrossClauses) {
  expect_translate_error(
      "module m; param n : int; result r = B^n;\n"
      "B^k_i = 0.0 for k in 1..n, i in 0..n;\n"
      "B^k_{i,j} = 1.0 if i = 0 for k in 1..n, i in 0..n, j in 0..n;",
      "scripts");
}

TEST(TranslateErrors, EquationForAParameter) {
  expect_translate_error(
      "module m; param n : int; param B : real[0..n]; result r = C^n;\n"
      "B_i = 0.0 for i in 0..n;\n"
      "C^k_i = 1.0 for k in 1..n, i in 0..n;",
      "cannot be defined by an equation");
}

TEST(TranslateErrors, DifferentBindingsWithinAGroup) {
  expect_translate_error(
      "module m; param n : int; result r = B^n;\n"
      "B^k_i = 0.0 if i = 0 for k in 1..n, i in 0..n;\n"
      "B^k_i = 1.0 for k in 1..n, i in 1..n;",
      "two different ranges");
}

}  // namespace
}  // namespace ps::eqn
