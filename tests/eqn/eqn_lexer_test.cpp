#include "eqn/eqn_lexer.hpp"

#include <gtest/gtest.h>

namespace ps::eqn {
namespace {

std::vector<EqnToken> lex(std::string_view text) {
  DiagnosticEngine diags;
  EqnLexer lexer(text, diags);
  auto tokens = lexer.lex_all();
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return tokens;
}

std::vector<EqnTokKind> kinds(std::string_view text) {
  std::vector<EqnTokKind> out;
  for (const EqnToken& t : lex(text)) out.push_back(t.kind);
  return out;
}

TEST(EqnLexer, ScriptsAndBraces) {
  auto toks = lex("A^{k-1}_{i,j-1}");
  ASSERT_GE(toks.size(), 13u);
  EXPECT_EQ(toks[0].kind, EqnTokKind::Identifier);
  EXPECT_EQ(toks[0].text, "A");
  EXPECT_EQ(toks[1].kind, EqnTokKind::Caret);
  EXPECT_EQ(toks[2].kind, EqnTokKind::LBrace);
  EXPECT_EQ(toks[3].text, "k");
  EXPECT_EQ(toks[4].kind, EqnTokKind::Minus);
  EXPECT_EQ(toks[5].kind, EqnTokKind::IntLit);
  EXPECT_EQ(toks[5].int_value, 1);
  EXPECT_EQ(toks[6].kind, EqnTokKind::RBrace);
  EXPECT_EQ(toks[7].kind, EqnTokKind::Underscore);
}

TEST(EqnLexer, CommandsDropTheBackslash) {
  auto toks = lex(R"(\frac \lor \le \cdot)");
  ASSERT_EQ(toks.size(), 5u);  // four commands + EOF
  for (size_t i = 0; i < 4; ++i)
    EXPECT_EQ(toks[i].kind, EqnTokKind::Command);
  EXPECT_EQ(toks[0].text, "frac");
  EXPECT_EQ(toks[1].text, "lor");
  EXPECT_EQ(toks[2].text, "le");
  EXPECT_EQ(toks[3].text, "cdot");
}

TEST(EqnLexer, KeywordsVersusIdentifiers) {
  auto toks = lex("module m; for k in 2..maxK otherwise");
  EXPECT_EQ(toks[0].kind, EqnTokKind::KwModule);
  EXPECT_EQ(toks[1].kind, EqnTokKind::Identifier);
  EXPECT_EQ(toks[2].kind, EqnTokKind::Semicolon);
  EXPECT_EQ(toks[3].kind, EqnTokKind::KwFor);
  EXPECT_EQ(toks[4].kind, EqnTokKind::Identifier);
  EXPECT_EQ(toks[5].kind, EqnTokKind::KwIn);
  EXPECT_EQ(toks[6].kind, EqnTokKind::IntLit);
  EXPECT_EQ(toks[7].kind, EqnTokKind::DotDot);
  EXPECT_EQ(toks[8].kind, EqnTokKind::Identifier);
  EXPECT_EQ(toks[9].kind, EqnTokKind::KwOtherwise);
}

TEST(EqnLexer, NumbersIntRealAndRanges) {
  auto toks = lex("4 0.25 0..M");
  EXPECT_EQ(toks[0].kind, EqnTokKind::IntLit);
  EXPECT_EQ(toks[0].int_value, 4);
  EXPECT_EQ(toks[1].kind, EqnTokKind::RealLit);
  EXPECT_DOUBLE_EQ(toks[1].real_value, 0.25);
  // "0..M" must lex as 0, .., M -- not a real literal.
  EXPECT_EQ(toks[2].kind, EqnTokKind::IntLit);
  EXPECT_EQ(toks[3].kind, EqnTokKind::DotDot);
  EXPECT_EQ(toks[4].kind, EqnTokKind::Identifier);
}

TEST(EqnLexer, RelationalOperators) {
  EXPECT_EQ(kinds("< <= > >= <> ="),
            (std::vector<EqnTokKind>{
                EqnTokKind::Less, EqnTokKind::LessEq, EqnTokKind::Greater,
                EqnTokKind::GreaterEq, EqnTokKind::NotEq, EqnTokKind::Equal,
                EqnTokKind::EndOfFile}));
}

TEST(EqnLexer, TexCommentsRunToEndOfLine) {
  auto toks = lex("a % this is ignored ^ _ {\nb");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(EqnLexer, PrimedIdentifiers) {
  auto toks = lex("A' k'");
  EXPECT_EQ(toks[0].text, "A'");
  EXPECT_EQ(toks[1].text, "k'");
}

TEST(EqnLexer, ErrorsOnStrayCharactersButRecovers) {
  DiagnosticEngine diags;
  EqnLexer lexer("a ? b", diags);
  auto toks = lexer.lex_all();
  EXPECT_TRUE(diags.has_errors());
  ASSERT_EQ(toks.size(), 3u);  // a, b, EOF -- '?' reported and skipped
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(EqnLexer, LocationsTrackLinesAndColumns) {
  auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.column, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.column, 3u);
}

}  // namespace
}  // namespace ps::eqn
