#include "eqn/eqn_parser.hpp"

#include <gtest/gtest.h>

namespace ps::eqn {
namespace {

constexpr const char* kRelaxationEqn = R"EQ(
% Equation (1) of the paper, as a TeX-flavoured equation file.
module Relaxation;
param InitialA : real[0..M+1, 0..M+1];
param M : int;
param maxK : int;
result newA = A^{maxK};

A^{1}_{i,j} = InitialA_{i,j}
  for i in 0..M+1, j in 0..M+1;

A^{k}_{i,j} = A^{k-1}_{i,j}
  if i = 0 \lor j = 0 \lor i = M+1 \lor j = M+1
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;

A^{k}_{i,j} = \frac{A^{k-1}_{i,j-1} + A^{k-1}_{i-1,j}
                    + A^{k-1}_{i,j+1} + A^{k-1}_{i+1,j}}{4}
  otherwise
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;
)EQ";

std::optional<EqnModule> parse(std::string_view text) {
  DiagnosticEngine diags;
  EqnParser parser(text, diags);
  auto module = parser.parse_module();
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  return module;
}

TEST(EqnParser, ParsesTheRelaxationFile) {
  auto module = parse(kRelaxationEqn);
  ASSERT_TRUE(module.has_value());
  EXPECT_EQ(module->name, "Relaxation");
  ASSERT_EQ(module->params.size(), 3u);
  EXPECT_EQ(module->params[0].name, "InitialA");
  EXPECT_EQ(module->params[0].dims.size(), 2u);
  EXPECT_FALSE(module->params[0].is_int);
  EXPECT_TRUE(module->params[1].is_int);
  ASSERT_EQ(module->results.size(), 1u);
  EXPECT_EQ(module->results[0].name, "newA");
  EXPECT_EQ(module->results[0].ref.name, "A");
  EXPECT_EQ(module->results[0].ref.supers.size(), 1u);
  ASSERT_EQ(module->clauses.size(), 3u);
}

TEST(EqnParser, ScriptsBecomeSuperAndSubscripts) {
  auto module = parse(kRelaxationEqn);
  const EqnClause& init = module->clauses[0];
  EXPECT_EQ(init.lhs.name, "A");
  ASSERT_EQ(init.lhs.supers.size(), 1u);
  EXPECT_EQ(init.lhs.supers[0]->kind, ExprKind::IntLit);
  ASSERT_EQ(init.lhs.subs.size(), 2u);
  EXPECT_EQ(to_string(*init.lhs.subs[0]), "i");
  EXPECT_EQ(init.lhs.rank(), 3u);
}

TEST(EqnParser, GuardAndOtherwiseAndBindings) {
  auto module = parse(kRelaxationEqn);
  const EqnClause& boundary = module->clauses[1];
  ASSERT_NE(boundary.guard, nullptr);
  EXPECT_FALSE(boundary.otherwise);
  EXPECT_EQ(to_string(*boundary.guard),
            "i = 0 or j = 0 or i = M + 1 or j = M + 1");
  ASSERT_EQ(boundary.bindings.size(), 3u);
  EXPECT_EQ(boundary.bindings[0].var, "k");
  EXPECT_EQ(to_string(*boundary.bindings[0].lo), "2");
  EXPECT_EQ(to_string(*boundary.bindings[0].hi), "maxK");

  const EqnClause& interior = module->clauses[2];
  EXPECT_EQ(interior.guard, nullptr);
  EXPECT_TRUE(interior.otherwise);
}

TEST(EqnParser, FracBecomesDivision) {
  auto module = parse(kRelaxationEqn);
  const EqnClause& interior = module->clauses[2];
  ASSERT_EQ(interior.rhs->kind, ExprKind::Binary);
  const auto& div = static_cast<const BinaryExpr&>(*interior.rhs);
  EXPECT_EQ(div.op, BinaryOp::Div);
  EXPECT_EQ(to_string(*div.rhs), "4");
  // Scripts concatenate superscripts-then-subscripts inside references.
  EXPECT_NE(to_string(*div.lhs).find("A[k - 1, i, j - 1]"),
            std::string::npos)
      << to_string(*div.lhs);
}

TEST(EqnParser, ShortScriptsWithoutBraces) {
  auto module = parse(
      "module m; param n : int; result r = B^n;\n"
      "B^k_i = B^{k-1}_i for k in 2..n, i in 0..n;\n"
      "B^1_i = 0.0 for i in 0..n;");
  ASSERT_TRUE(module.has_value());
  EXPECT_EQ(module->clauses[0].lhs.supers.size(), 1u);
  EXPECT_EQ(to_string(*module->clauses[0].lhs.supers[0]), "k");
  EXPECT_EQ(to_string(*module->clauses[0].lhs.subs[0]), "i");
}

TEST(EqnParser, CdotAndTimesMultiply) {
  auto module = parse(
      "module m; param n : int; result r = B^n;\n"
      "B^k_i = 2 \\cdot B^{k-1}_i \\times 3 for k in 2..n, i in 0..n;\n"
      "B^1_i = 1.0 for i in 0..n;");
  ASSERT_TRUE(module.has_value());
  EXPECT_EQ(to_string(*module->clauses[0].rhs), "2 * B[k - 1, i] * 3");
}

TEST(EqnParser, TexRelationalCommandsInGuards) {
  auto module = parse(
      "module m; param n : int; result r = B^n;\n"
      "B^k_i = 0.0 if i \\le 1 \\land k \\ge 2 for k in 2..n, i in 0..n;\n"
      "B^k_i = 1.0 otherwise for k in 2..n, i in 0..n;\n"
      "B^1_i = 1.0 for i in 0..n;");
  ASSERT_TRUE(module.has_value());
  EXPECT_EQ(to_string(*module->clauses[0].guard), "i <= 1 and k >= 2");
}

TEST(EqnParser, IntrinsicCalls) {
  auto module = parse(
      "module m; param n : int; result r = B^n;\n"
      "B^k_i = max(B^{k-1}_i, abs(B^{k-1}_i)) for k in 2..n, i in 0..n;\n"
      "B^1_i = \\sqrt{2} for i in 0..n;");
  ASSERT_TRUE(module.has_value());
  EXPECT_EQ(to_string(*module->clauses[0].rhs),
            "max(B[k - 1, i], abs(B[k - 1, i]))");
  EXPECT_EQ(to_string(*module->clauses[1].rhs), "sqrt(2)");
}

// -- error paths ------------------------------------------------------------

void expect_error(std::string_view text, std::string_view needle) {
  DiagnosticEngine diags;
  EqnParser parser(text, diags);
  auto module = parser.parse_module();
  EXPECT_FALSE(module.has_value());
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(diags.render().find(needle), std::string::npos)
      << diags.render();
}

TEST(EqnParserErrors, MissingModuleHeader) {
  expect_error("param x : int;", "expected 'module'");
}

TEST(EqnParserErrors, MissingSemicolonAfterEquation) {
  expect_error(
      "module m; param n : int; result r = B^n;\n"
      "B^1_i = 0.0 for i in 0..n",
      "expected ';'");
}

TEST(EqnParserErrors, UnknownCommand) {
  expect_error(
      "module m; param n : int; result r = B^n;\n"
      "B^1_i = \\mystery{2} for i in 0..n;",
      "unknown TeX command");
}

TEST(EqnParserErrors, ModuleWithoutResult) {
  expect_error("module m; param n : int;\nB^1_i = 0.0 for i in 0..n;",
               "has no result");
}

TEST(EqnParserErrors, ModuleWithoutEquations) {
  expect_error("module m; param n : int; result r = B^n;", "has no equations");
}

TEST(EqnParserErrors, BadBindingRange) {
  expect_error(
      "module m; param n : int; result r = B^n;\n"
      "B^1_i = 0.0 for i in 0;",
      "expected '..'");
}

}  // namespace
}  // namespace ps::eqn
