// Robustness: the equation front end must turn arbitrary garbage into
// diagnostics, never crashes or hangs -- same contract as the PS
// front-end fuzzer.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "eqn/translate.hpp"

namespace ps::eqn {
namespace {

constexpr const char* kSeedText = R"EQ(
module Relaxation;
param InitialA : real[0..M+1, 0..M+1];
param M : int;
param maxK : int;
result newA = A^{maxK};
A^{1}_{i,j} = InitialA_{i,j}
  for i in 0..M+1, j in 0..M+1;
A^{k}_{i,j} = \frac{A^{k-1}_{i,j-1} + A^{k-1}_{i+1,j}}{2}
  otherwise
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;
)EQ";

/// Feed a buffer through parse + translate; the only acceptable
/// outcomes are success or clean diagnostics.
void must_not_crash(const std::string& text) {
  DiagnosticEngine diags;
  auto module = equations_to_ps(text, diags);
  if (!module) {
    EXPECT_TRUE(diags.has_errors()) << text;
  }
}

TEST(EqnFuzz, SingleCharacterDeletions) {
  std::string seed = kSeedText;
  for (size_t i = 0; i < seed.size(); i += 3) {
    std::string mutated = seed;
    mutated.erase(i, 1);
    must_not_crash(mutated);
  }
}

TEST(EqnFuzz, SingleCharacterSubstitutions) {
  const char replacements[] = {'^', '_', '{', '}', ';', '\\', '%', '0'};
  std::string seed = kSeedText;
  for (size_t i = 0; i < seed.size(); i += 5) {
    for (char r : replacements) {
      std::string mutated = seed;
      mutated[i] = r;
      must_not_crash(mutated);
    }
  }
}

TEST(EqnFuzz, Truncations) {
  std::string seed = kSeedText;
  for (size_t len = 0; len < seed.size(); len += 7)
    must_not_crash(seed.substr(0, len));
}

class EqnFuzzRandom : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EqnFuzzRandom, TokenSoup) {
  std::mt19937 rng(GetParam());
  const char* atoms[] = {"module", "param",  "result", "for",   "in",
                         "if",     "otherwise", "A",   "^{",    "_{",
                         "}",      "\\frac",  "\\lor", "..",    "=",
                         "+",      "-",       "/",     ";",     ":",
                         "real",   "int",     "[",     "]",     "(",
                         ")",      "0",       "42",    "0.5",   ",",
                         "i",      "%",       "\\",    "<",     ">="};
  std::uniform_int_distribution<size_t> pick(0, std::size(atoms) - 1);
  std::uniform_int_distribution<int> len(1, 120);
  std::string text;
  int tokens = len(rng);
  for (int t = 0; t < tokens; ++t) {
    text += atoms[pick(rng)];
    text += (rng() % 4 == 0) ? "\n" : " ";
  }
  must_not_crash(text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqnFuzzRandom, ::testing::Range(1u, 41u));

}  // namespace
}  // namespace ps::eqn
