// Robustness: the equation front end must turn arbitrary garbage into
// diagnostics, never crashes or hangs -- same contract as the PS
// front-end fuzzer.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "eqn/translate.hpp"
#include "frontend/ast.hpp"
#include "frontend/parser.hpp"

namespace ps::eqn {
namespace {

constexpr const char* kSeedText = R"EQ(
module Relaxation;
param InitialA : real[0..M+1, 0..M+1];
param M : int;
param maxK : int;
result newA = A^{maxK};
A^{1}_{i,j} = InitialA_{i,j}
  for i in 0..M+1, j in 0..M+1;
A^{k}_{i,j} = \frac{A^{k-1}_{i,j-1} + A^{k-1}_{i+1,j}}{2}
  otherwise
  for k in 2..maxK, i in 0..M+1, j in 0..M+1;
)EQ";

/// Feed a buffer through parse + translate; the only acceptable
/// outcomes are success or clean diagnostics.
void must_not_crash(const std::string& text) {
  DiagnosticEngine diags;
  auto module = equations_to_ps(text, diags);
  if (!module) {
    EXPECT_TRUE(diags.has_errors()) << text;
  }
}

TEST(EqnFuzz, SingleCharacterDeletions) {
  std::string seed = kSeedText;
  for (size_t i = 0; i < seed.size(); i += 3) {
    std::string mutated = seed;
    mutated.erase(i, 1);
    must_not_crash(mutated);
  }
}

TEST(EqnFuzz, SingleCharacterSubstitutions) {
  const char replacements[] = {'^', '_', '{', '}', ';', '\\', '%', '0'};
  std::string seed = kSeedText;
  for (size_t i = 0; i < seed.size(); i += 5) {
    for (char r : replacements) {
      std::string mutated = seed;
      mutated[i] = r;
      must_not_crash(mutated);
    }
  }
}

TEST(EqnFuzz, Truncations) {
  std::string seed = kSeedText;
  for (size_t len = 0; len < seed.size(); len += 7)
    must_not_crash(seed.substr(0, len));
}

class EqnFuzzRandom : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EqnFuzzRandom, TokenSoup) {
  std::mt19937 rng(GetParam());
  const char* atoms[] = {"module", "param",  "result", "for",   "in",
                         "if",     "otherwise", "A",   "^{",    "_{",
                         "}",      "\\frac",  "\\lor", "..",    "=",
                         "+",      "-",       "/",     ";",     ":",
                         "real",   "int",     "[",     "]",     "(",
                         ")",      "0",       "42",    "0.5",   ",",
                         "i",      "%",       "\\",    "<",     ">="};
  std::uniform_int_distribution<size_t> pick(0, std::size(atoms) - 1);
  std::uniform_int_distribution<int> len(1, 120);
  std::string text;
  int tokens = len(rng);
  for (int t = 0; t < tokens; ++t) {
    text += atoms[pick(rng)];
    text += (rng() % 4 == 0) ? "\n" : " ";
  }
  must_not_crash(text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqnFuzzRandom, ::testing::Range(1u, 41u));

// ---------------------------------------------------------------------------
// Round-trip fuzz: seeded generation of TeX equation trees. For every
// module the translator accepts, its PS pretty-print must reparse
// cleanly and pretty-print to the same text again (translate -> print ->
// reparse -> print is a fixpoint). This pins the translator's output
// inside the PS grammar, not just "some string".
// ---------------------------------------------------------------------------

/// Generates structurally varied but mostly well-formed equation
/// modules: 1-D or 2-D recurrence over A with a fixed base sweep,
/// optional guarded clauses, \frac / \cdot / parenthesised arithmetic.
class EqnTreeGenerator {
 public:
  explicit EqnTreeGenerator(uint32_t seed)
      : rng_(seed), two_d_(pick(3) != 0) {}

  std::string module() {
    std::string subs = two_d_ ? "{i,j}" : "{i}";
    std::string domain = two_d_ ? "i in 0..M+1, j in 0..M+1"
                                : "i in 0..M+1";
    std::string bounds = two_d_ ? "[0..M+1, 0..M+1]" : "[0..M+1]";
    std::string text = "module Gen;\n";
    text += "param A0 : real" + bounds + ";\n";
    text += "param M : int;\nparam maxK : int;\n";
    text += "result out = A^{maxK};\n";
    text += "A^{1}_" + subs + " = " + expr(2, false) + " for " + domain +
            ";\n";
    int guarded = pick(3);  // 0..2 guarded clauses before the otherwise
    for (int g = 0; g < guarded; ++g)
      text += "A^{k}_" + subs + " = " + expr(2, true) + " if " + guard() +
              " for k in 2..maxK, " + domain + ";\n";
    text += "A^{k}_" + subs + " = " + expr(3, true) +
            " otherwise for k in 2..maxK, " + domain + ";\n";
    return text;
  }

 private:
  int pick(int n) { return static_cast<int>(rng_() % static_cast<uint32_t>(n)); }

  std::string offset_index(const char* var) {
    switch (pick(3)) {
      case 0: return std::string(var) + "-1";
      case 1: return std::string(var) + "+1";
      default: return var;
    }
  }

  /// A reference to the recurrence array at sweep k-1 (always the
  /// previous sweep, so the module schedules) or to the input grid.
  std::string ref(bool recurrence) {
    if (recurrence && pick(2) == 0) {
      std::string idx = offset_index("i");
      if (two_d_) idx += "," + offset_index("j");
      return "A^{k-1}_{" + idx + "}";
    }
    return two_d_ ? "A0_{i,j}" : "A0_{i}";
  }

  std::string atom(bool recurrence) {
    switch (pick(5)) {
      case 0: return std::to_string(pick(9) + 1) + ".0";
      case 1: return "0." + std::to_string(pick(9) + 1);
      case 2: return std::to_string(pick(4) + 1);
      default: return ref(recurrence);
    }
  }

  std::string expr(int depth, bool recurrence) {
    if (depth == 0 || pick(3) == 0) return atom(recurrence);
    std::string lhs = expr(depth - 1, recurrence);
    std::string rhs = expr(depth - 1, recurrence);
    switch (pick(6)) {
      case 0: return lhs + " + " + rhs;
      case 1: return lhs + " - " + rhs;
      case 2: return lhs + " * " + rhs;
      case 3: return lhs + " \\cdot " + rhs;
      case 4: return "\\frac{" + lhs + "}{" + rhs + "}";
      default: return "(" + lhs + " + " + rhs + ")";
    }
  }

  std::string guard() {
    std::string g = comparison();
    int extra = pick(2);
    for (int i = 0; i < extra; ++i) g += " \\lor " + comparison();
    return g;
  }

  std::string comparison() {
    const char* var = (two_d_ && pick(2) == 0) ? "j" : "i";
    switch (pick(4)) {
      case 0: return std::string(var) + " = 0";
      case 1: return std::string(var) + " = M+1";
      case 2: return std::string(var) + " <= 1";
      default: return std::string(var) + " >= M";
    }
  }

  std::mt19937 rng_;
  bool two_d_;
};

/// Translate, pretty-print, reparse, re-print; the two prints must be
/// identical. Inputs the translator rejects must leave diagnostics.
void check_round_trip(const std::string& eqn_text) {
  DiagnosticEngine diags;
  auto module = equations_to_ps(eqn_text, diags);
  if (!module) {
    EXPECT_TRUE(diags.has_errors()) << eqn_text;
    return;
  }
  std::string printed = to_source(*module);

  DiagnosticEngine reparse_diags;
  reparse_diags.set_source(printed);
  Parser parser(printed, reparse_diags);
  ProgramAst reparsed = parser.parse_program();
  ASSERT_FALSE(reparse_diags.has_errors())
      << "translator output failed to reparse:\n"
      << printed << "\n"
      << reparse_diags.render() << "\nEQN input was:\n"
      << eqn_text;
  ASSERT_EQ(reparsed.modules.size(), 1u);

  std::string reprinted = to_source(reparsed.modules.front());
  EXPECT_EQ(printed, reprinted)
      << "pretty-print is not a fixpoint for:\n"
      << eqn_text;
}

class EqnRoundTrip : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EqnRoundTrip, TranslatePrintReparseFixpoint) {
  EqnTreeGenerator generator(GetParam());
  check_round_trip(generator.module());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqnRoundTrip, ::testing::Range(1u, 41u));

/// The seed corpus module itself round-trips.
TEST(EqnRoundTrip, SeedCorpusModule) { check_round_trip(kSeedText); }

/// Mutated generator output must still never crash the round trip
/// (either clean diagnostics or a full fixpoint).
class EqnRoundTripMutated : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EqnRoundTripMutated, SingleCharMutationsSurvive) {
  EqnTreeGenerator generator(GetParam());
  std::string text = generator.module();
  std::mt19937 rng(GetParam() * 7919u);
  const char replacements[] = {'^', '_', '{', '}', ';', '\\', '%', '9'};
  for (int m = 0; m < 12; ++m) {
    std::string mutated = text;
    mutated[rng() % mutated.size()] =
        replacements[rng() % std::size(replacements)];
    check_round_trip(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqnRoundTripMutated,
                         ::testing::Range(1u, 13u));

}  // namespace
}  // namespace ps::eqn
