#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/flowchart.hpp"
#include "graph/depgraph.hpp"

namespace ps {

/// Virtual-dimension analysis result for one dimension of one data item
/// (paper section 3.4). `is_virtual` is the sound analysis exactly as
/// stated in the paper (every use edge is form 1 or form 2); `window` is
/// 1 + the largest backward offset.
///
/// `virtual_in_component` ignores edges leaving the component -- this is
/// the variant the paper appeals to in section 4 when it declares the
/// transformed array's first dimension virtual with window three while
/// deferring the rotate/unrotate code generation ("with a little more
/// intelligence...") to future work.
struct VirtualDim {
  bool is_virtual = false;
  int64_t window = 0;
  bool virtual_in_component = false;
  int64_t component_window = 0;
};

/// Per-component record used to reproduce the paper's Figure 5 table.
struct ComponentInfo {
  std::vector<uint32_t> nodes;  // graph node ids, sorted
  Flowchart flowchart;          // schedule of this component alone
};

struct ScheduleResult {
  bool ok = false;
  Flowchart flowchart;
  /// Top-level MSCCs in dependence order with their sub-flowcharts.
  std::vector<ComponentInfo> components;
  /// data item name -> one entry per flattened dimension.
  std::map<std::string, std::vector<VirtualDim>> virtual_dims;
  std::vector<std::string> errors;
};

/// The scheduling phase (paper section 3.3): two mutually recursive
/// procedures. Schedule-Graph splits a (sub)graph into MSCCs and
/// schedules them in dependence order; Schedule-Component picks a
/// schedulable loop dimension, deletes the "I - constant" edges (which
/// reference values produced on earlier iterations of the chosen loop),
/// marks the loop iterative (DO) when edges were deleted and parallel
/// (DOALL) otherwise, and recurses on the reduced graph.
class Scheduler {
 public:
  explicit Scheduler(const DepGraph& graph) : graph_(&graph) {}

  [[nodiscard]] ScheduleResult run();

 private:
  struct DimChoice {
    std::string var;
    const Type* range = nullptr;
    /// data node id -> dimension position of `var` in that node.
    std::map<uint32_t, size_t> data_positions;
  };

  Flowchart schedule_graph(const std::vector<uint32_t>& nodes,
                           ScheduleResult& result,
                           std::vector<ComponentInfo>* top_level);
  Flowchart schedule_component(const std::vector<uint32_t>& comp,
                               ScheduleResult& result);

  /// Try to form an eligible dimension choice for index variable `var`
  /// over the component (paper step 3); nullopt when ineligible.
  [[nodiscard]] std::optional<DimChoice> make_choice(
      const std::vector<uint32_t>& comp, const std::string& var) const;

  void analyze_virtual(const std::vector<uint32_t>& comp,
                       const DimChoice& choice, ScheduleResult& result);

  [[nodiscard]] bool in_set(const std::vector<uint32_t>& nodes,
                            uint32_t id) const {
    return std::binary_search(nodes.begin(), nodes.end(), id);
  }

  const DepGraph* graph_;
  std::vector<bool> edge_active_;
  /// equation node id -> loop variables already scheduled.
  std::map<uint32_t, std::set<std::string>> scheduled_;
};

}  // namespace ps
