#include "core/scheduler.hpp"

#include <algorithm>
#include <cassert>

#include "graph/scc.hpp"

namespace ps {

namespace {

/// Does the expression mention the index variable `var`?
bool expr_mentions(const Expr* e, const std::string& var) {
  if (e == nullptr) return false;
  switch (e->kind) {
    case ExprKind::Name:
      return static_cast<const NameExpr*>(e)->name == var;
    case ExprKind::Index: {
      const auto* ix = static_cast<const IndexExpr*>(e);
      if (expr_mentions(ix->base.get(), var)) return true;
      for (const auto& s : ix->subs)
        if (expr_mentions(s.get(), var)) return true;
      return false;
    }
    case ExprKind::Field:
      return expr_mentions(static_cast<const FieldExpr*>(e)->base.get(), var);
    case ExprKind::Unary:
      return expr_mentions(static_cast<const UnaryExpr*>(e)->operand.get(),
                           var);
    case ExprKind::Binary: {
      const auto* b = static_cast<const BinaryExpr*>(e);
      return expr_mentions(b->lhs.get(), var) ||
             expr_mentions(b->rhs.get(), var);
    }
    case ExprKind::If: {
      const auto* i = static_cast<const IfExpr*>(e);
      return expr_mentions(i->cond.get(), var) ||
             expr_mentions(i->then_expr.get(), var) ||
             expr_mentions(i->else_expr.get(), var);
    }
    case ExprKind::Call: {
      const auto* c = static_cast<const CallExpr*>(e);
      for (const auto& a : c->args)
        if (expr_mentions(a.get(), var)) return true;
      return false;
    }
    default:
      return false;
  }
}

int loop_dim_index(const CheckedEquation& eq, const std::string& var) {
  for (size_t d = 0; d < eq.loop_dims.size(); ++d)
    if (eq.loop_dims[d].var == var) return static_cast<int>(d);
  return -1;
}

bool ranges_compatible(const Type* a, const Type* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (!a->name.empty() && a->name == b->name) return true;
  return types_equal(*a, *b);
}

}  // namespace

ScheduleResult Scheduler::run() {
  ScheduleResult result;
  result.ok = true;
  edge_active_.assign(graph_->edges().size(), true);
  scheduled_.clear();

  // Pre-size the virtual-dimension table so lookups are total.
  for (const auto& item : graph_->module().data)
    result.virtual_dims[item.name] =
        std::vector<VirtualDim>(item.rank());

  std::vector<uint32_t> all(graph_->nodes().size());
  for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
  result.flowchart = schedule_graph(all, result, &result.components);
  if (!result.errors.empty()) result.ok = false;
  return result;
}

Flowchart Scheduler::schedule_graph(const std::vector<uint32_t>& nodes,
                                    ScheduleResult& result,
                                    std::vector<ComponentInfo>* top_level) {
  // Induced subgraph over `nodes` with the currently active edges.
  std::map<uint32_t, uint32_t> local;
  for (uint32_t i = 0; i < nodes.size(); ++i) local.emplace(nodes[i], i);
  std::vector<std::vector<uint32_t>> adj(nodes.size());
  for (const auto& e : graph_->edges()) {
    if (!edge_active_[e.id]) continue;
    auto src = local.find(e.src);
    auto dst = local.find(e.dst);
    if (src == local.end() || dst == local.end()) continue;
    adj[src->second].push_back(dst->second);
  }

  SccResult sccs = compute_sccs(adj);

  Flowchart flowchart;
  for (const auto& comp_local : sccs.components) {
    std::vector<uint32_t> comp;
    comp.reserve(comp_local.size());
    for (uint32_t lid : comp_local) comp.push_back(nodes[lid]);
    std::sort(comp.begin(), comp.end());
    Flowchart sub = schedule_component(comp, result);
    if (top_level != nullptr)
      top_level->push_back(ComponentInfo{comp, sub});
    for (auto& step : sub) flowchart.push_back(std::move(step));
  }
  return flowchart;
}

Flowchart Scheduler::schedule_component(const std::vector<uint32_t>& comp,
                                        ScheduleResult& result) {
  // Step 1: a lone data node contributes no code.
  if (comp.size() == 1 && graph_->node(comp[0]).is_data()) return {};

  std::vector<uint32_t> equations;
  for (uint32_t id : comp)
    if (!graph_->node(id).is_data()) equations.push_back(id);
  if (equations.empty()) {
    result.errors.push_back(
        "component of data nodes with no equations cannot be scheduled");
    return {};
  }

  // Step 2: pick an unscheduled node dimension. Candidates are taken in
  // the loop-dimension order of the first equation of the component,
  // which reproduces the paper's "picks the first dimension (K)".
  const CheckedEquation& primary = graph_->equation_of(
      graph_->node(equations.front()));
  std::vector<std::string> unscheduled;
  for (const LoopDim& dim : primary.loop_dims)
    if (scheduled_[equations.front()].count(dim.var) == 0U)
      unscheduled.push_back(dim.var);

  if (unscheduled.empty()) {
    // Step 2b: all dimensions scheduled, single equation remains.
    if (comp.size() == 1) return {FlowStep::equation(comp[0])};
    // Step 2a: multi-node component with nothing left to schedule.
    result.errors.push_back(
        "equations cannot be scheduled by this algorithm: component "
        "containing " + graph_->node(comp[0]).name +
        " has no remaining schedulable dimension");
    return {};
  }

  // Step 3: find the first eligible dimension.
  std::optional<DimChoice> choice;
  for (const std::string& var : unscheduled) {
    choice = make_choice(comp, var);
    if (choice) break;
  }
  if (!choice) {
    if (comp.size() == 1) {
      // A single recursive equation whose remaining dimensions are all
      // ineligible cannot occur (a lone equation node has no in-component
      // edges), but guard anyway.
      result.errors.push_back("equation " + graph_->node(comp[0]).name +
                              " has no eligible dimension");
      return {};
    }
    result.errors.push_back(
        "equations cannot be scheduled by this algorithm: no dimension of "
        "the component containing " + graph_->node(comp[0]).name +
        " satisfies the subscript restrictions (step 3)");
    return {};
  }

  // Section 3.4: virtual-dimension analysis for this dimension, done
  // before edge deletion so it sees every use edge.
  analyze_virtual(comp, *choice, result);

  // Step 4: delete the "I - constant" edges; they reference elements
  // produced on earlier iterations of the loop being generated.
  bool deleted = false;
  for (const auto& e : graph_->edges()) {
    if (!edge_active_[e.id] || e.ref == nullptr) continue;
    if (!in_set(comp, e.src) || !in_set(comp, e.dst)) continue;
    auto pos_it = choice->data_positions.find(e.src);
    if (pos_it == choice->data_positions.end()) continue;
    const EdgeLabel& label = e.labels[pos_it->second];
    const SubscriptInfo& sub = e.ref->subs[pos_it->second];
    if (label.kind == SubscriptInfo::Kind::IndexVar && sub.var == choice->var &&
        label.offset < 0) {
      edge_active_[e.id] = false;
      deleted = true;
    }
  }

  // Step 5: mark the dimension scheduled for every equation in the
  // component.
  for (uint32_t eq : equations) scheduled_[eq].insert(choice->var);

  // Steps 6-8: create the loop descriptor (iterative iff edges were
  // deleted) and schedule the reduced subgraph beneath it.
  Flowchart children = schedule_graph(comp, result, nullptr);
  LoopKind kind = deleted ? LoopKind::Iterative : LoopKind::Parallel;
  Flowchart out;
  out.push_back(
      FlowStep::make_loop(choice->var, choice->range, kind, std::move(children)));
  return out;
}

std::optional<Scheduler::DimChoice> Scheduler::make_choice(
    const std::vector<uint32_t>& comp, const std::string& var) const {
  DimChoice choice;
  choice.var = var;

  // Every equation of the component must loop over `var`, with a
  // compatible subrange; the variable must sit at a consistent position
  // in each array it defines.
  for (uint32_t id : comp) {
    const DepNode& node = graph_->node(id);
    if (node.is_data()) continue;
    const CheckedEquation& eq = graph_->equation_of(node);
    int idx = loop_dim_index(eq, var);
    if (idx < 0) return std::nullopt;
    const LoopDim& dim = eq.loop_dims[static_cast<size_t>(idx)];
    if (choice.range == nullptr)
      choice.range = dim.range;
    else if (!ranges_compatible(choice.range, dim.range))
      return std::nullopt;

    uint32_t target =
        graph_->data_node(graph_->module().data[eq.target].name);
    if (!in_set(comp, target)) continue;
    auto [it, inserted] = choice.data_positions.emplace(target, dim.lhs_dim);
    if (!inserted && it->second != dim.lhs_dim) return std::nullopt;
  }

  // Every active in-component use edge must reference `var` only at the
  // consistent position and only as "I" or "I - constant" (step 3; "I +
  // constant" and general expressions make the dimension ineligible).
  for (const auto& e : graph_->edges()) {
    if (!edge_active_[e.id] || e.ref == nullptr) continue;
    if (!in_set(comp, e.src) || !in_set(comp, e.dst)) continue;
    auto pos_it = choice.data_positions.find(e.src);
    if (pos_it == choice.data_positions.end()) return std::nullopt;
    size_t pos = pos_it->second;
    for (size_t p = 0; p < e.labels.size(); ++p) {
      const EdgeLabel& label = e.labels[p];
      const SubscriptInfo& sub = e.ref->subs[p];
      bool is_var = label.kind == SubscriptInfo::Kind::IndexVar &&
                    sub.var == var;
      if (p == pos) {
        if (!is_var || label.offset > 0) return std::nullopt;
      } else {
        if (is_var) return std::nullopt;  // inconsistent position
        if (label.kind == SubscriptInfo::Kind::General &&
            expr_mentions(sub.expr, var))
          return std::nullopt;
      }
    }
  }
  return choice;
}

void Scheduler::analyze_virtual(const std::vector<uint32_t>& comp,
                                const DimChoice& choice,
                                ScheduleResult& result) {
  for (uint32_t id : comp) {
    const DepNode& node = graph_->node(id);
    if (!node.is_data()) continue;
    const DataItem& item = graph_->data_of(node);
    if (item.cls != DataClass::Local) continue;
    auto pos_it = choice.data_positions.find(id);
    if (pos_it == choice.data_positions.end()) continue;
    size_t pos = pos_it->second;

    bool strict_ok = true;
    bool comp_ok = true;
    int64_t max_back = 0;
    for (const auto& e : graph_->edges()) {
      if (e.ref == nullptr || e.src != id) continue;
      const EdgeLabel& label = e.labels[pos];
      const SubscriptInfo& sub = e.ref->subs[pos];
      bool in_comp = in_set(comp, e.dst);
      if (in_comp) {
        // Form 1: "I" or "I - constant" with the target inside Mi.
        if (label.kind == SubscriptInfo::Kind::IndexVar &&
            sub.var == choice.var && label.offset <= 0) {
          max_back = std::max(max_back, -label.offset);
        } else {
          strict_ok = false;
          comp_ok = false;
        }
      } else {
        // Form 2: the edge leaves the component and its subscript is the
        // upper bound of the subrange (only the last element is used).
        if (label.kind != SubscriptInfo::Kind::UpperBound) strict_ok = false;
      }
    }

    VirtualDim& vd = result.virtual_dims[item.name][pos];
    vd.is_virtual = strict_ok;
    vd.window = strict_ok ? max_back + 1 : 0;
    vd.virtual_in_component = comp_ok;
    vd.component_window = comp_ok ? max_back + 1 : 0;
  }
}

}  // namespace ps
