#include "core/const_eval.hpp"

namespace ps {

std::optional<int64_t> eval_const_int(const Expr& e, const IntEnv& env) {
  switch (e.kind) {
    case ExprKind::IntLit:
      return static_cast<const IntLitExpr&>(e).value;
    case ExprKind::Name: {
      auto it = env.find(static_cast<const NameExpr&>(e).name);
      if (it == env.end()) return std::nullopt;
      return it->second;
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op != UnaryOp::Neg) return std::nullopt;
      auto v = eval_const_int(*u.operand, env);
      if (!v) return std::nullopt;
      return -*v;
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      auto l = eval_const_int(*b.lhs, env);
      auto r = eval_const_int(*b.rhs, env);
      if (!l || !r) return std::nullopt;
      switch (b.op) {
        case BinaryOp::Add:
          return *l + *r;
        case BinaryOp::Sub:
          return *l - *r;
        case BinaryOp::Mul:
          return *l * *r;
        case BinaryOp::IntDiv:
          if (*r == 0) return std::nullopt;
          return *l / *r;
        case BinaryOp::Mod:
          if (*r == 0) return std::nullopt;
          return *l % *r;
        default:
          return std::nullopt;
      }
    }
    case ExprKind::If: {
      const auto& i = static_cast<const IfExpr&>(e);
      auto c = eval_const_bool(*i.cond, env);
      if (!c) return std::nullopt;
      return eval_const_int(*c ? *i.then_expr : *i.else_expr, env);
    }
    case ExprKind::Call: {
      const auto& c = static_cast<const CallExpr&>(e);
      if (c.callee == "abs" && c.args.size() == 1) {
        auto v = eval_const_int(*c.args[0], env);
        if (!v) return std::nullopt;
        return *v < 0 ? -*v : *v;
      }
      if ((c.callee == "min" || c.callee == "max") && c.args.size() == 2) {
        auto a = eval_const_int(*c.args[0], env);
        auto b = eval_const_int(*c.args[1], env);
        if (!a || !b) return std::nullopt;
        return c.callee == "min" ? std::min(*a, *b) : std::max(*a, *b);
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

std::optional<bool> eval_const_bool(const Expr& e, const IntEnv& env) {
  switch (e.kind) {
    case ExprKind::BoolLit:
      return static_cast<const BoolLitExpr&>(e).value;
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      if (u.op != UnaryOp::Not) return std::nullopt;
      auto v = eval_const_bool(*u.operand, env);
      if (!v) return std::nullopt;
      return !*v;
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      switch (b.op) {
        case BinaryOp::And: {
          auto l = eval_const_bool(*b.lhs, env);
          auto r = eval_const_bool(*b.rhs, env);
          if (l && !*l) return false;
          if (r && !*r) return false;
          if (l && r) return *l && *r;
          return std::nullopt;
        }
        case BinaryOp::Or: {
          auto l = eval_const_bool(*b.lhs, env);
          auto r = eval_const_bool(*b.rhs, env);
          if (l && *l) return true;
          if (r && *r) return true;
          if (l && r) return *l || *r;
          return std::nullopt;
        }
        case BinaryOp::Eq:
        case BinaryOp::Ne:
        case BinaryOp::Lt:
        case BinaryOp::Le:
        case BinaryOp::Gt:
        case BinaryOp::Ge: {
          auto l = eval_const_int(*b.lhs, env);
          auto r = eval_const_int(*b.rhs, env);
          if (!l || !r) return std::nullopt;
          switch (b.op) {
            case BinaryOp::Eq: return *l == *r;
            case BinaryOp::Ne: return *l != *r;
            case BinaryOp::Lt: return *l < *r;
            case BinaryOp::Le: return *l <= *r;
            case BinaryOp::Gt: return *l > *r;
            case BinaryOp::Ge: return *l >= *r;
            default: return std::nullopt;
          }
        }
        default:
          return std::nullopt;
      }
    }
    case ExprKind::If: {
      const auto& i = static_cast<const IfExpr&>(e);
      auto c = eval_const_bool(*i.cond, env);
      if (!c) return std::nullopt;
      return eval_const_bool(*c ? *i.then_expr : *i.else_expr, env);
    }
    default:
      return std::nullopt;
  }
}

}  // namespace ps
