#include "core/loop_merge.hpp"

#include <set>
#include <string>

namespace ps {

namespace {

bool ranges_compatible(const Type* a, const Type* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (!a->name.empty() && a->name == b->name) return true;
  return types_equal(*a, *b);
}

/// Names of the data items defined by equations inside a flowchart.
void collect_defined(const Flowchart& steps, const DepGraph& graph,
                     std::set<std::string>& out) {
  for (const auto& step : steps) {
    if (step.kind == FlowStep::Kind::Equation) {
      const CheckedEquation& eq = graph.equation_of(graph.node(step.node));
      out.insert(graph.module().data[eq.target].name);
    } else {
      collect_defined(step.children, graph, out);
    }
  }
}

/// Check all references in `steps` to arrays in `defined`: the fused
/// dimension must be subscripted with exactly `var` (offset constraint
/// depending on the loop kind); `var` must not appear anywhere else in
/// the reference, and the reference must mention `var` at all.
bool refs_allow_fusion(const Flowchart& steps, const DepGraph& graph,
                       const std::set<std::string>& defined,
                       const std::string& var, LoopKind kind) {
  for (const auto& step : steps) {
    if (step.kind == FlowStep::Kind::Loop) {
      if (!refs_allow_fusion(step.children, graph, defined, var, kind))
        return false;
      continue;
    }
    const CheckedEquation& eq = graph.equation_of(graph.node(step.node));
    for (const ArrayRefInfo& ref : eq.array_refs) {
      if (defined.count(ref.array) == 0U) continue;
      bool var_seen = false;
      for (const SubscriptInfo& sub : ref.subs) {
        if (sub.kind == SubscriptInfo::Kind::IndexVar && sub.var == var) {
          if (var_seen) return false;  // var in two positions
          var_seen = true;
          if (kind == LoopKind::Parallel && sub.offset != 0) return false;
          if (kind == LoopKind::Iterative && sub.offset > 0) return false;
        } else if (sub.kind == SubscriptInfo::Kind::General &&
                   sub.expr != nullptr) {
          // Conservatively reject general subscripts on fused arrays.
          return false;
        }
      }
      if (!var_seen) return false;  // whole-dimension read across iterations
    }
  }
  return true;
}

}  // namespace

namespace {

/// Data items read (arrays and scalars) by the equations of a step.
void collect_used(const FlowStep& step, const DepGraph& graph,
                  std::set<std::string>& out) {
  if (step.kind == FlowStep::Kind::Equation) {
    const CheckedEquation& eq = graph.equation_of(graph.node(step.node));
    for (const ArrayRefInfo& ref : eq.array_refs) out.insert(ref.array);
    for (const std::string& s : eq.scalar_refs) out.insert(s);
    return;
  }
  for (const FlowStep& child : step.children) collect_used(child, graph, out);
}

void collect_defined_step(const FlowStep& step, const DepGraph& graph,
                          std::set<std::string>& out) {
  if (step.kind == FlowStep::Kind::Equation) {
    const CheckedEquation& eq = graph.equation_of(graph.node(step.node));
    out.insert(graph.module().data[eq.target].name);
    return;
  }
  for (const FlowStep& child : step.children)
    collect_defined_step(child, graph, out);
}

bool intersects(const std::set<std::string>& a,
                const std::set<std::string>& b) {
  for (const std::string& x : a)
    if (b.count(x) != 0U) return true;
  return false;
}

/// `later` must stay after `earlier`: it reads something `earlier`
/// defines, or they define (slices of) the same item, or it defines
/// something `earlier` reads (cannot happen in a valid single-
/// assignment schedule, but checked for robustness).
bool must_follow(const FlowStep& later, const FlowStep& earlier,
                 const DepGraph& graph) {
  std::set<std::string> later_use;
  std::set<std::string> later_def;
  std::set<std::string> earlier_use;
  std::set<std::string> earlier_def;
  collect_used(later, graph, later_use);
  collect_defined_step(later, graph, later_def);
  collect_used(earlier, graph, earlier_use);
  collect_defined_step(earlier, graph, earlier_def);
  return intersects(later_use, earlier_def) ||
         intersects(later_def, earlier_def) ||
         intersects(later_def, earlier_use);
}

/// Can `a` be followed directly by `b` and fuse (same variable, range
/// and annotation, references permitting)?
bool fusable(const FlowStep& a, const FlowStep& b, const DepGraph& graph) {
  if (a.kind != FlowStep::Kind::Loop || b.kind != FlowStep::Kind::Loop)
    return false;
  if (a.var != b.var || a.loop != b.loop ||
      !ranges_compatible(a.range, b.range))
    return false;
  std::set<std::string> defined;
  collect_defined(a.children, graph, defined);
  return refs_allow_fusion(b.children, graph, defined, b.var, b.loop);
}

/// Reordering prepass on one descriptor list: each step may slide
/// earlier, stopping at the last predecessor it must follow; it lands
/// at the first position in that legal window that makes it adjacent
/// to a fusable loop (or stays put).
Flowchart reorder_for_fusion(Flowchart steps, const DepGraph& graph,
                             MergeStats* stats) {
  for (FlowStep& step : steps)
    if (step.kind == FlowStep::Kind::Loop)
      step.children = reorder_for_fusion(std::move(step.children), graph,
                                         stats);

  Flowchart out;
  for (FlowStep& step : steps) {
    // The legal window is (last_dep, out.size()]: inserting anywhere
    // after every element the step must follow.
    size_t window_begin = 0;
    for (size_t i = out.size(); i-- > 0;) {
      if (must_follow(step, out[i], graph)) {
        window_begin = i + 1;
        break;
      }
    }
    size_t target = out.size();
    for (size_t pos = window_begin; pos < out.size(); ++pos) {
      if (pos > 0 && fusable(out[pos - 1], step, graph)) {
        target = pos;
        break;
      }
    }
    if (target < out.size()) {
      out.insert(out.begin() + static_cast<ptrdiff_t>(target),
                 std::move(step));
      if (stats != nullptr) ++stats->moved;
    } else {
      out.push_back(std::move(step));
    }
  }
  return out;
}

}  // namespace

Flowchart merge_loops_reordered(Flowchart steps, const DepGraph& graph,
                                MergeStats* stats) {
  steps = reorder_for_fusion(std::move(steps), graph, stats);
  return merge_loops(std::move(steps), graph, stats);
}

Flowchart merge_loops(Flowchart steps, const DepGraph& graph,
                      MergeStats* stats) {
  // First fuse recursively inside every loop.
  for (auto& step : steps)
    if (step.kind == FlowStep::Kind::Loop)
      step.children = merge_loops(std::move(step.children), graph, stats);

  Flowchart out;
  for (auto& step : steps) {
    if (!out.empty() && out.back().kind == FlowStep::Kind::Loop &&
        step.kind == FlowStep::Kind::Loop && out.back().var == step.var &&
        out.back().loop == step.loop &&
        ranges_compatible(out.back().range, step.range)) {
      std::set<std::string> defined;
      collect_defined(out.back().children, graph, defined);
      if (refs_allow_fusion(step.children, graph, defined, step.var,
                            step.loop)) {
        for (auto& child : step.children)
          out.back().children.push_back(std::move(child));
        // Newly adjacent children may fuse in turn.
        out.back().children =
            merge_loops(std::move(out.back().children), graph, stats);
        if (stats != nullptr) ++stats->merged;
        continue;
      }
    }
    out.push_back(std::move(step));
  }
  return out;
}

}  // namespace ps
