#include "core/parallelism.hpp"

#include <algorithm>
#include <stdexcept>

namespace ps {

namespace {

struct Cost {
  int64_t work = 0;
  int64_t span = 0;
  int64_t barriers = 0;
};

Cost analyze_list(const Flowchart& steps, IntEnv& env,
                  const LoopNestBounds* exact);

Cost analyze_step(const FlowStep& step, IntEnv& env,
                  const LoopNestBounds* exact) {
  if (step.kind == FlowStep::Kind::Equation) return Cost{1, 1, 0};

  const LoopLevelBounds* level =
      exact == nullptr ? nullptr : exact->find(step.var);

  // Fast path: rectangular bounds and a body whose cost cannot depend
  // on this index (no inner exact levels) multiply instead of iterate.
  if (level == nullptr) {
    auto lo = eval_const_int(*step.range->lo, env);
    auto hi = eval_const_int(*step.range->hi, env);
    if (!lo || !hi)
      throw std::runtime_error("parallelism: cannot evaluate bounds of '" +
                               step.var + "'");
    int64_t extent = std::max<int64_t>(0, *hi - *lo + 1);
    if (extent == 0) return Cost{};
    // The body may still contain exact-bounds loops referencing this
    // variable; detect by probing one iteration only when needed.
    bool body_varies = false;
    if (exact != nullptr) {
      // Conservative: if any descendant loop has an exact level whose
      // bound terms mention step.var, iterate.
      std::function<bool(const Flowchart&)> scan = [&](const Flowchart& fs) {
        for (const FlowStep& f : fs) {
          if (f.kind != FlowStep::Kind::Loop) continue;
          if (const LoopLevelBounds* l = exact->find(f.var)) {
            for (const auto& terms : {l->lowers, l->uppers})
              for (const BoundTerm& t : terms)
                for (const auto& [v, c] : t.coeffs)
                  if (v == step.var) return true;
          }
          if (scan(f.children)) return true;
        }
        return false;
      };
      body_varies = scan(step.children);
    }
    if (!body_varies) {
      env[step.var] = *lo;  // any in-range value works for inner bounds
      Cost body = analyze_list(step.children, env, exact);
      env.erase(step.var);
      Cost out;
      out.work = body.work * extent;
      if (step.loop == LoopKind::Iterative) {
        out.span = body.span * extent;
        out.barriers = body.barriers * extent;
      } else {
        out.span = body.span;
        out.barriers = body.barriers * extent + 1;
      }
      return out;
    }
    // Fall through to iteration with rectangular bounds.
    Cost out;
    int64_t max_span = 0;
    for (int64_t it = *lo; it <= *hi; ++it) {
      env[step.var] = it;
      Cost body = analyze_list(step.children, env, exact);
      out.work += body.work;
      if (step.loop == LoopKind::Iterative) {
        out.span += body.span;
        out.barriers += body.barriers;
      } else {
        max_span = std::max(max_span, body.span);
        out.barriers += body.barriers;
      }
      env.erase(step.var);
    }
    if (step.loop == LoopKind::Parallel) {
      out.span = max_span;
      ++out.barriers;
    }
    return out;
  }

  // Exact bounds: iterate (hyperplane counts are small by construction).
  int64_t lo = level->lower(env);
  int64_t hi = level->upper(env);
  Cost out;
  int64_t max_span = 0;
  for (int64_t it = lo; it <= hi; ++it) {
    env[step.var] = it;
    Cost body = analyze_list(step.children, env, exact);
    out.work += body.work;
    if (step.loop == LoopKind::Iterative) {
      out.span += body.span;
      out.barriers += body.barriers;
    } else {
      max_span = std::max(max_span, body.span);
      out.barriers += body.barriers;
    }
    env.erase(step.var);
  }
  if (step.loop == LoopKind::Parallel && hi >= lo) {
    out.span = max_span;
    ++out.barriers;
  }
  return out;
}

Cost analyze_list(const Flowchart& steps, IntEnv& env,
                  const LoopNestBounds* exact) {
  Cost total;
  for (const FlowStep& step : steps) {
    Cost c = analyze_step(step, env, exact);
    total.work += c.work;
    total.span += c.span;
    total.barriers += c.barriers;
  }
  return total;
}

}  // namespace

std::string ParallelismReport::to_string() const {
  return "work=" + std::to_string(work) + " span=" + std::to_string(span) +
         " avg-parallelism=" + std::to_string(average_parallelism()) +
         " barriers=" + std::to_string(barriers);
}

ParallelismReport analyze_parallelism(const Flowchart& steps,
                                      const IntEnv& params,
                                      const LoopNestBounds* exact_bounds) {
  IntEnv env = params;
  Cost c = analyze_list(steps, env, exact_bounds);
  return ParallelismReport{c.work, c.span, c.barriers};
}

}  // namespace ps
