#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "frontend/ast.hpp"

namespace ps {

/// Environment for static integer evaluation: index variables and scalar
/// parameter values.
using IntEnv = std::map<std::string, int64_t, std::less<>>;

/// Evaluate an integer expression over `env`. Returns nullopt when the
/// expression references unknown names, non-integer operations, or array
/// elements. Used for loop bounds, subscripts and guard conditions.
[[nodiscard]] std::optional<int64_t> eval_const_int(const Expr& e,
                                                    const IntEnv& env);

/// Evaluate a boolean expression over `env` (comparisons/connectives over
/// integer subexpressions). Returns nullopt when not statically known.
[[nodiscard]] std::optional<bool> eval_const_bool(const Expr& e,
                                                  const IntEnv& env);

}  // namespace ps
