#pragma once

#include <cstdint>
#include <string>

#include "core/const_eval.hpp"
#include "core/flowchart.hpp"
#include "transform/polyhedron.hpp"

namespace ps {

/// Work/span analysis of a flowchart under the paper's machine model:
/// one equation instance costs one unit, DO loops serialise their
/// iterations, DOALL loops run all iterations in one step (unbounded
/// processors -- the PRAM-style upper bound the DO/DOALL annotations
/// expose).
///
/// For the relaxation example this quantifies section 4's payoff
/// exactly: the Gauss-Seidel schedule has span = work = maxK*(M+2)^2,
/// while the transformed schedule's span is the hyperplane count
/// t_max - t_min + 1 = 2*maxK + 2*M + 1 -- the length of the time
/// function's range, since one hyperplane executes per step.
struct ParallelismReport {
  int64_t work = 0;  // total equation instances
  int64_t span = 0;  // critical-path length in sequential steps
  int64_t barriers = 0;  // DOALL joins executed (one per parallel loop run)

  [[nodiscard]] double average_parallelism() const {
    return span == 0 ? 0.0 : static_cast<double>(work) / static_cast<double>(span);
  }
  [[nodiscard]] std::string to_string() const;
};

/// Analyse `steps` with loop bounds taken from the rectangular
/// subranges (evaluated over `params`), or from `exact_bounds` for
/// loop variables that have a level there (the hyperplane-transformed
/// iteration space). Throws std::runtime_error when a bound cannot be
/// evaluated.
[[nodiscard]] ParallelismReport analyze_parallelism(
    const Flowchart& steps, const IntEnv& params,
    const LoopNestBounds* exact_bounds = nullptr);

}  // namespace ps
