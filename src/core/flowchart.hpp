#pragma once

#include <string>
#include <vector>

#include "graph/depgraph.hpp"

namespace ps {

/// Loop annotation: iterative `DO` or concurrent `DOALL` (paper
/// section 3.3 step 6).
enum class LoopKind { Iterative, Parallel };

[[nodiscard]] std::string_view loop_kind_name(LoopKind kind);

/// One flowchart descriptor (paper Figure 4): either a dependency-graph
/// node (an equation to be emitted) or a subrange loop containing a list
/// of nested descriptors. The flowchart is the recursive structure the
/// code generator walks to emit procedural code.
struct FlowStep {
  enum class Kind { Equation, Loop };

  Kind kind = Kind::Equation;

  // Kind::Equation
  uint32_t node = 0;  // dependency-graph node id of the equation

  // Kind::Loop
  std::string var;                // loop index variable
  const Type* range = nullptr;    // subrange iterated over
  LoopKind loop = LoopKind::Parallel;
  std::vector<FlowStep> children;

  [[nodiscard]] static FlowStep equation(uint32_t node_id) {
    FlowStep s;
    s.kind = Kind::Equation;
    s.node = node_id;
    return s;
  }
  [[nodiscard]] static FlowStep make_loop(std::string var, const Type* range,
                                          LoopKind kind,
                                          std::vector<FlowStep> children) {
    FlowStep s;
    s.kind = Kind::Loop;
    s.var = std::move(var);
    s.range = range;
    s.loop = kind;
    s.children = std::move(children);
    return s;
  }
};

using Flowchart = std::vector<FlowStep>;

/// Multi-line rendering with indentation, as in the paper's Figure 6:
///   DOALL I (
///     DOALL J (
///       eq.1
///     )
///   )
[[nodiscard]] std::string flowchart_to_string(const Flowchart& steps,
                                              const DepGraph& graph);

/// One-line rendering, as in the paper's Figure 5 component table:
///   DO K (DOALL I (DOALL J (eq.3)))
/// Empty flowcharts render as "(null)".
[[nodiscard]] std::string flowchart_to_line(const Flowchart& steps,
                                            const DepGraph& graph);

/// Total number of equation descriptors in a flowchart.
[[nodiscard]] size_t flowchart_equation_count(const Flowchart& steps);

/// Maximum loop nesting depth.
[[nodiscard]] size_t flowchart_depth(const Flowchart& steps);

}  // namespace ps
