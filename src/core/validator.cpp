#include "core/validator.hpp"

#include <algorithm>
#include <sstream>

namespace ps {

namespace {

/// Execution timestamp: alternating step indices and loop iteration
/// values, with a parallel flag per coordinate.
struct Stamp {
  std::vector<int64_t> coords;
  std::vector<bool> parallel;
};

/// Ordering verdict for writer-before-reader.
enum class Order { Before, Race, NotBefore };

Order compare(const Stamp& writer, const Stamp& reader) {
  size_t n = std::max(writer.coords.size(), reader.coords.size());
  for (size_t i = 0; i < n; ++i) {
    int64_t w = i < writer.coords.size() ? writer.coords[i] : -1;
    int64_t r = i < reader.coords.size() ? reader.coords[i] : -1;
    if (w == r) continue;
    bool par = (i < writer.parallel.size() && writer.parallel[i]) ||
               (i < reader.parallel.size() && reader.parallel[i]);
    if (par) return Order::Race;
    return w < r ? Order::Before : Order::NotBefore;
  }
  // Identical stamps: the "writer" is the reading instance itself.
  return Order::NotBefore;
}

struct Cell {
  Stamp stamp;
};

class Validator {
 public:
  Validator(const CheckedModule& module, const DepGraph& graph,
            const IntEnv& params)
      : module_(module), graph_(graph), params_(params) {}

  ValidationReport run(const Flowchart& flowchart, bool require_outputs) {
    // Pre-compute extents.
    for (const auto& item : module_.data) {
      Extents ext;
      bool ok = true;
      for (const Type* dim : item.dims) {
        auto lo = eval_const_int(*dim->lo, params_);
        auto hi = eval_const_int(*dim->hi, params_);
        if (!lo || !hi) {
          report_.fail("cannot evaluate bounds of '" + item.name + "'");
          ok = false;
          break;
        }
        ext.lo.push_back(*lo);
        ext.hi.push_back(*hi);
      }
      if (ok) extents_.emplace(item.name, std::move(ext));
    }
    if (!report_.ok) return std::move(report_);

    Stamp stamp;
    IntEnv env = params_;
    exec_list(flowchart, stamp, env);

    if (require_outputs) check_outputs();
    return std::move(report_);
  }

 private:
  struct Extents {
    std::vector<int64_t> lo;
    std::vector<int64_t> hi;
  };

  void exec_list(const Flowchart& steps, Stamp& stamp, IntEnv& env) {
    for (size_t i = 0; i < steps.size(); ++i) {
      stamp.coords.push_back(static_cast<int64_t>(i));
      stamp.parallel.push_back(false);
      exec_step(steps[i], stamp, env);
      stamp.coords.pop_back();
      stamp.parallel.pop_back();
    }
  }

  void exec_step(const FlowStep& step, Stamp& stamp, IntEnv& env) {
    if (step.kind == FlowStep::Kind::Equation) {
      exec_equation(step.node, stamp, env);
      return;
    }
    auto lo = eval_const_int(*step.range->lo, env);
    auto hi = eval_const_int(*step.range->hi, env);
    if (!lo || !hi) {
      report_.fail("cannot evaluate bounds of loop over '" + step.var + "'");
      return;
    }
    bool parallel = step.loop == LoopKind::Parallel;
    for (int64_t it = *lo; it <= *hi; ++it) {
      stamp.coords.push_back(it);
      stamp.parallel.push_back(parallel);
      auto saved = env.find(step.var);
      int64_t saved_value = saved != env.end() ? saved->second : 0;
      bool had = saved != env.end();
      env[step.var] = it;
      exec_list(step.children, stamp, env);
      if (had)
        env[step.var] = saved_value;
      else
        env.erase(step.var);
      stamp.coords.pop_back();
      stamp.parallel.pop_back();
    }
  }

  void exec_equation(uint32_t node_id, const Stamp& stamp, const IntEnv& env) {
    const DepNode& node = graph_.node(node_id);
    const CheckedEquation& eq = graph_.equation_of(node);
    const DataItem& target = module_.data[eq.target];
    ++report_.instances;

    // Every loop dimension must be bound by an enclosing loop.
    for (const LoopDim& dim : eq.loop_dims) {
      if (env.find(dim.var) == env.end()) {
        report_.fail(eq.display_name + ": index variable '" + dim.var +
                     "' is not bound by an enclosing loop");
        return;
      }
    }

    // Target element.
    std::vector<int64_t> idx;
    for (const LhsSubscript& sub : eq.lhs_subs) {
      std::optional<int64_t> v;
      if (sub.is_index_var) {
        v = env.at(sub.var);
      } else {
        v = eval_const_int(*sub.fixed, env);
      }
      if (!v) {
        report_.fail(eq.display_name + ": cannot evaluate LHS subscript");
        return;
      }
      idx.push_back(*v);
    }
    if (!check_bounds(target.name, idx, eq.display_name, "write")) return;

    // Reads first (an instance cannot read its own write).
    eval_reads(*eq.rhs, env, stamp, eq.display_name);

    // Then the write.
    auto& cells = written_[target.name];
    auto [it, inserted] = cells.emplace(idx, Cell{stamp});
    if (!inserted)
      report_.fail(eq.display_name + ": element " +
                   element_name(target.name, idx) +
                   " written more than once (single assignment violated)");
  }

  bool check_bounds(const std::string& name, const std::vector<int64_t>& idx,
                    const std::string& who, const char* what) {
    auto it = extents_.find(name);
    if (it == extents_.end()) return false;
    const Extents& ext = it->second;
    if (idx.size() != ext.lo.size()) {
      report_.fail(who + ": rank mismatch on '" + name + "'");
      return false;
    }
    for (size_t d = 0; d < idx.size(); ++d) {
      if (idx[d] < ext.lo[d] || idx[d] > ext.hi[d]) {
        report_.fail(who + ": out-of-bounds " + what + " " +
                     element_name(name, idx) + " (dimension " +
                     std::to_string(d + 1) + " is " +
                     std::to_string(ext.lo[d]) + ".." +
                     std::to_string(ext.hi[d]) + ")");
        return false;
      }
    }
    return true;
  }

  static std::string element_name(const std::string& name,
                                  const std::vector<int64_t>& idx) {
    std::ostringstream os;
    os << name;
    if (!idx.empty()) {
      os << '[';
      for (size_t i = 0; i < idx.size(); ++i) {
        if (i) os << ',';
        os << idx[i];
      }
      os << ']';
    }
    return os.str();
  }

  /// Walk an RHS expression, resolving statically evaluable guards and
  /// recording/checking every element read.
  void eval_reads(const Expr& e, const IntEnv& env, const Stamp& stamp,
                  const std::string& who) {
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::RealLit:
      case ExprKind::BoolLit:
        return;
      case ExprKind::Name: {
        const auto& name = static_cast<const NameExpr&>(e).name;
        const DataItem* item = module_.find_data(name);
        if (item != nullptr && item->is_scalar()) check_read(name, {}, stamp, who);
        return;
      }
      case ExprKind::Index: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        if (ix.base->kind == ExprKind::Name) {
          const auto& name = static_cast<const NameExpr&>(*ix.base).name;
          const DataItem* item = module_.find_data(name);
          if (item != nullptr && item->rank() == ix.subs.size()) {
            std::vector<int64_t> idx;
            bool all_known = true;
            for (const auto& sub : ix.subs) {
              auto v = eval_const_int(*sub, env);
              if (!v) {
                all_known = false;
                break;
              }
              idx.push_back(*v);
            }
            if (all_known) {
              check_read(name, idx, stamp, who);
            } else {
              report_.fail(who + ": cannot evaluate subscripts of read of '" +
                           name + "'");
            }
          }
        }
        for (const auto& sub : ix.subs) eval_reads(*sub, env, stamp, who);
        return;
      }
      case ExprKind::Field:
        eval_reads(*static_cast<const FieldExpr&>(e).base, env, stamp, who);
        return;
      case ExprKind::Unary:
        eval_reads(*static_cast<const UnaryExpr&>(e).operand, env, stamp, who);
        return;
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        eval_reads(*b.lhs, env, stamp, who);
        eval_reads(*b.rhs, env, stamp, who);
        return;
      }
      case ExprKind::If: {
        const auto& i = static_cast<const IfExpr&>(e);
        auto cond = eval_const_bool(*i.cond, env);
        eval_reads(*i.cond, env, stamp, who);
        if (cond) {
          eval_reads(*cond ? *i.then_expr : *i.else_expr, env, stamp, who);
        } else {
          // Guard not statically known: conservatively require both
          // branches' reads to be legal.
          eval_reads(*i.then_expr, env, stamp, who);
          eval_reads(*i.else_expr, env, stamp, who);
        }
        return;
      }
      case ExprKind::Call:
        for (const auto& a : static_cast<const CallExpr&>(e).args)
          eval_reads(*a, env, stamp, who);
        return;
    }
  }

  void check_read(const std::string& name, const std::vector<int64_t>& idx,
                  const Stamp& stamp, const std::string& who) {
    ++report_.reads;
    const DataItem* item = module_.find_data(name);
    if (item == nullptr) return;
    if (item->cls == DataClass::Input) {
      check_bounds(name, idx, who, "read");
      return;  // inputs are available from the start
    }
    if (!check_bounds(name, idx, who, "read")) return;
    auto map_it = written_.find(name);
    const Cell* cell = nullptr;
    if (map_it != written_.end()) {
      auto cell_it = map_it->second.find(idx);
      if (cell_it != map_it->second.end()) cell = &cell_it->second;
    }
    if (cell == nullptr) {
      report_.fail(who + ": reads " + element_name(name, idx) +
                   " before it is produced");
      return;
    }
    switch (compare(cell->stamp, stamp)) {
      case Order::Before:
        return;
      case Order::Race:
        report_.fail(who + ": read of " + element_name(name, idx) +
                     " races with its write across DOALL iterations");
        return;
      case Order::NotBefore:
        report_.fail(who + ": reads " + element_name(name, idx) +
                     " before it is produced (ordering violation)");
        return;
    }
  }

  void check_outputs() {
    for (const auto& item : module_.data) {
      if (item.cls != DataClass::Output) continue;
      auto ext_it = extents_.find(item.name);
      if (ext_it == extents_.end()) continue;
      const Extents& ext = ext_it->second;
      size_t expected = 1;
      for (size_t d = 0; d < ext.lo.size(); ++d) {
        if (ext.hi[d] < ext.lo[d]) {
          expected = 0;
          break;
        }
        expected *= static_cast<size_t>(ext.hi[d] - ext.lo[d] + 1);
      }
      size_t got = 0;
      auto it = written_.find(item.name);
      if (it != written_.end()) got = it->second.size();
      if (got != expected)
        report_.fail("output '" + item.name + "' has " + std::to_string(got) +
                     " of " + std::to_string(expected) +
                     " elements defined");
    }
  }

  const CheckedModule& module_;
  const DepGraph& graph_;
  const IntEnv& params_;
  std::map<std::string, Extents> extents_;
  std::map<std::string, std::map<std::vector<int64_t>, Cell>> written_;
  ValidationReport report_;
};

}  // namespace

ValidationReport validate_schedule(const CheckedModule& module,
                                   const DepGraph& graph,
                                   const Flowchart& flowchart,
                                   const IntEnv& params,
                                   bool require_outputs_written) {
  Validator v(module, graph, params);
  return v.run(flowchart, require_outputs_written);
}

}  // namespace ps
