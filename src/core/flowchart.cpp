#include "core/flowchart.hpp"

#include <algorithm>
#include <sstream>

namespace ps {

std::string_view loop_kind_name(LoopKind kind) {
  return kind == LoopKind::Iterative ? "DO" : "DOALL";
}

namespace {

void print_multiline(const Flowchart& steps, const DepGraph& graph,
                     std::ostringstream& os, int indent) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  for (const auto& step : steps) {
    if (step.kind == FlowStep::Kind::Equation) {
      os << pad << graph.node(step.node).name << '\n';
    } else {
      os << pad << loop_kind_name(step.loop) << ' ' << step.var << " (\n";
      print_multiline(step.children, graph, os, indent + 1);
      os << pad << ")\n";
    }
  }
}

void print_line(const Flowchart& steps, const DepGraph& graph,
                std::ostringstream& os) {
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i) os << "; ";
    const auto& step = steps[i];
    if (step.kind == FlowStep::Kind::Equation) {
      os << graph.node(step.node).name;
    } else {
      os << loop_kind_name(step.loop) << ' ' << step.var << " (";
      print_line(step.children, graph, os);
      os << ")";
    }
  }
}

}  // namespace

std::string flowchart_to_string(const Flowchart& steps,
                                const DepGraph& graph) {
  std::ostringstream os;
  print_multiline(steps, graph, os, 0);
  return os.str();
}

std::string flowchart_to_line(const Flowchart& steps, const DepGraph& graph) {
  if (steps.empty()) return "(null)";
  std::ostringstream os;
  print_line(steps, graph, os);
  return os.str();
}

size_t flowchart_equation_count(const Flowchart& steps) {
  size_t count = 0;
  for (const auto& step : steps) {
    if (step.kind == FlowStep::Kind::Equation)
      ++count;
    else
      count += flowchart_equation_count(step.children);
  }
  return count;
}

size_t flowchart_depth(const Flowchart& steps) {
  size_t depth = 0;
  for (const auto& step : steps) {
    if (step.kind == FlowStep::Kind::Loop)
      depth = std::max(depth, 1 + flowchart_depth(step.children));
  }
  return depth;
}

}  // namespace ps
