#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/const_eval.hpp"
#include "core/flowchart.hpp"
#include "graph/depgraph.hpp"

namespace ps {

/// Result of concretely checking a schedule.
struct ValidationReport {
  bool ok = true;
  std::vector<std::string> issues;
  size_t instances = 0;  // equation instances executed
  size_t reads = 0;      // element reads checked

  void fail(std::string message) {
    ok = false;
    if (issues.size() < 50) issues.push_back(std::move(message));
  }
};

/// Concretely validate a flowchart against the fundamental dataflow
/// constraint: every value is produced before it is used, and produced
/// exactly once (single assignment).
///
/// The validator symbolically executes the flowchart for the given
/// parameter values, time-stamping each element write with its position
/// in the (partially ordered) execution: DO loops order their iterations,
/// DOALL iterations are concurrent. A read is legal only when the writing
/// instance is strictly ordered before the reading instance; a read whose
/// first ordering difference falls on a DOALL iteration coordinate is a
/// race and is reported. Conditional branches whose guards are statically
/// evaluable (index arithmetic) are resolved; otherwise both branches'
/// reads are checked conservatively.
///
/// This is the oracle used by the scheduler property tests.
[[nodiscard]] ValidationReport validate_schedule(const CheckedModule& module,
                                                 const DepGraph& graph,
                                                 const Flowchart& flowchart,
                                                 const IntEnv& params,
                                                 bool require_outputs_written =
                                                     true);

}  // namespace ps
