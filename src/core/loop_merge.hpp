#pragma once

#include "core/flowchart.hpp"

namespace ps {

struct MergeStats {
  size_t merged = 0;  // number of loop pairs fused
  size_t moved = 0;   // steps relocated by the reordering prepass
};

/// Loop fusion pass: the improvement the paper lists as ongoing work in
/// its conclusion ("Improvement of the scheduler to better merge
/// iterative loops"; see also the comparison with [11] in section 3.3 --
/// the paper's algorithm "performs poorly in ... combining into a single
/// loop those equations which though not recursively related,
/// nevertheless depend on the same subscript(s)").
///
/// Two adjacent loops are fused when they iterate the same variable over
/// compatible subranges with the same DO/DOALL annotation, and every
/// reference in the second loop's body to an array defined in the first
/// loop's body subscripts the fused dimension with exactly the loop
/// variable (offset 0 for DOALL; offset <= 0 for DO, since earlier
/// iterations have completed). The pass applies recursively, so perfectly
/// nested fusable loops collapse together.
[[nodiscard]] Flowchart merge_loops(Flowchart steps, const DepGraph& graph,
                                    MergeStats* stats = nullptr);

/// Fusion with a dependence-respecting reordering prepass: a step may
/// move earlier in its list -- never past a producer of data it reads,
/// nor past another definition of an array it defines -- when that
/// places it next to a loop it can fuse with. This catches the fusions
/// the paper's section 3.3 comparison attributes to [11] ("combining
/// into a single loop those equations which though not recursively
/// related, nevertheless depend on the same subscript(s)") that plain
/// adjacency misses because an unrelated component sits in between.
/// The result is re-validated by the caller's usual schedule validator
/// in the tests; the move rule preserves every producer-before-consumer
/// ordering by construction.
[[nodiscard]] Flowchart merge_loops_reordered(Flowchart steps,
                                              const DepGraph& graph,
                                              MergeStats* stats = nullptr);

}  // namespace ps
