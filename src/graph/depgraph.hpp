#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/sema.hpp"

namespace ps {

// ---------------------------------------------------------------------------
// Dependency graph (paper section 3.1)
// ---------------------------------------------------------------------------
//
// Nodes are the data items and equations of a module; a directed edge runs
// from node i to node j when data produced in i is used in j. Besides
// plain data edges there are subrange-bound edges (e.g. M -> InitialA,
// because InitialA's bounds depend on M) and hierarchical edges between a
// record-typed data item and one materialised node per field ("used to
// show the relationship between the fields of a record and the record
// itself" -- they do not influence scheduling). Each node carries one
// label per dimension; each data edge from an array carries one label per
// source dimension describing the subscript expression used (Figure 2).

enum class DepNodeKind { Data, Equation };
enum class DepEdgeKind { Data, Bound, Hierarchical };

/// Node label: one per dimension of the node (paper: "a node label for
/// each dimension"). For equation nodes these are the loop dimensions;
/// for data nodes, the declared (flattened) dimensions.
struct DimLabel {
  std::string var;            // loop variable (equations) or subrange name
  const Type* range = nullptr;  // subrange of the dimension
};

/// Edge label for one source dimension (Figure 2): the position of this
/// source subscript in the target equation's loop dimensions, the
/// subscript-expression class, and the offset for "I - constant".
struct EdgeLabel {
  SubscriptInfo::Kind kind = SubscriptInfo::Kind::General;
  int target_dim = -1;  // index into the target equation's loop dims, or -1
  int64_t offset = 0;   // subscript is var + offset (IndexVar only)
  std::string display;  // source text of the subscript, for printing
};

struct DepNode {
  uint32_t id = 0;
  DepNodeKind kind = DepNodeKind::Data;
  std::string name;      // data item name, "item.field", or "eq.N"
  size_t sema_index = 0; // into CheckedModule::data or ::equations
  bool is_record_field = false;  // materialised field of a record item
  std::vector<DimLabel> dims;

  [[nodiscard]] bool is_data() const { return kind == DepNodeKind::Data; }
};

struct DepEdge {
  uint32_t id = 0;
  uint32_t src = 0;
  uint32_t dst = 0;
  DepEdgeKind kind = DepEdgeKind::Data;
  /// One label per source dimension for data edges whose source is an
  /// array used in the target equation; empty for scalar/bound/def edges.
  std::vector<EdgeLabel> labels;
  /// The analysed reference this edge came from (array uses only).
  const ArrayRefInfo* ref = nullptr;
  /// True for the equation -> defined-variable edge.
  bool is_definition = false;
};

/// The dependency graph of one checked module.
class DepGraph {
 public:
  /// Build the graph for a checked module (paper section 3.1). The module
  /// must outlive the graph.
  static DepGraph build(const CheckedModule& module);

  [[nodiscard]] const CheckedModule& module() const { return *module_; }
  [[nodiscard]] const std::vector<DepNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<DepEdge>& edges() const { return edges_; }

  [[nodiscard]] const DepNode& node(uint32_t id) const { return nodes_[id]; }
  [[nodiscard]] const DepEdge& edge(uint32_t id) const { return edges_[id]; }

  /// Out-edge / in-edge ids of a node.
  [[nodiscard]] const std::vector<uint32_t>& out_edges(uint32_t node) const {
    return out_[node];
  }
  [[nodiscard]] const std::vector<uint32_t>& in_edges(uint32_t node) const {
    return in_[node];
  }

  /// Node id of a data item / equation (throws when absent).
  [[nodiscard]] uint32_t data_node(std::string_view name) const;
  [[nodiscard]] uint32_t equation_node(size_t eq_index) const;

  /// The checked equation behind an equation node.
  [[nodiscard]] const CheckedEquation& equation_of(const DepNode& n) const;
  /// The data item behind a data node.
  [[nodiscard]] const DataItem& data_of(const DepNode& n) const;

  /// Graphviz DOT rendering (reproduces the paper's Figure 3 layout
  /// information: solid data edges, dashed bound edges, edge labels show
  /// the subscript expressions).
  [[nodiscard]] std::string to_dot() const;

  /// Human-readable inventory used by bench_fig3.
  [[nodiscard]] std::string summary() const;

 private:
  uint32_t add_node(DepNode node);
  uint32_t add_edge(DepEdge edge);

  const CheckedModule* module_ = nullptr;
  std::vector<DepNode> nodes_;
  std::vector<DepEdge> edges_;
  std::vector<std::vector<uint32_t>> out_;
  std::vector<std::vector<uint32_t>> in_;
};

}  // namespace ps
