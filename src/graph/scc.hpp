#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ps {

/// Result of maximally-strongly-connected-component (MSCC) analysis.
struct SccResult {
  /// Components in dependence (topological) order: if any edge runs from
  /// component a to component b (a != b), then a appears before b.
  /// Ties are broken by smallest member node id, which makes the order
  /// deterministic and matches the paper's Figure 5 numbering.
  std::vector<std::vector<uint32_t>> components;
  /// component_of[node] = index into `components`.
  std::vector<uint32_t> component_of;

  [[nodiscard]] size_t size() const { return components.size(); }
};

/// Compute the MSCCs of a directed graph given as an adjacency list
/// (adj[u] = successors of u). Implemented as an iterative Tarjan so very
/// deep graphs in the property tests cannot overflow the call stack,
/// followed by a deterministic Kahn topological sort of the condensation.
[[nodiscard]] SccResult compute_sccs(
    const std::vector<std::vector<uint32_t>>& adj);

}  // namespace ps
