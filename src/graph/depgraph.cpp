#include <algorithm>
#include "graph/depgraph.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

#include "support/dot_writer.hpp"
#include "support/strings.hpp"

namespace ps {

uint32_t DepGraph::add_node(DepNode node) {
  node.id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  out_.emplace_back();
  in_.emplace_back();
  return nodes_.back().id;
}

uint32_t DepGraph::add_edge(DepEdge edge) {
  edge.id = static_cast<uint32_t>(edges_.size());
  out_[edge.src].push_back(edge.id);
  in_[edge.dst].push_back(edge.id);
  edges_.push_back(std::move(edge));
  return edges_.back().id;
}

uint32_t DepGraph::data_node(std::string_view name) const {
  for (const auto& n : nodes_)
    if (n.kind == DepNodeKind::Data && n.name == name) return n.id;
  throw std::out_of_range("no data node named " + std::string(name));
}

uint32_t DepGraph::equation_node(size_t eq_index) const {
  for (const auto& n : nodes_)
    if (n.kind == DepNodeKind::Equation && n.sema_index == eq_index)
      return n.id;
  throw std::out_of_range("no equation node with index " +
                          std::to_string(eq_index));
}

const CheckedEquation& DepGraph::equation_of(const DepNode& n) const {
  return module_->equations[n.sema_index];
}

const DataItem& DepGraph::data_of(const DepNode& n) const {
  return module_->data[n.sema_index];
}

DepGraph DepGraph::build(const CheckedModule& module) {
  DepGraph g;
  g.module_ = &module;

  // Data nodes, in declaration order (inputs, outputs, locals).
  std::map<std::string, uint32_t, std::less<>> data_ids;
  for (size_t i = 0; i < module.data.size(); ++i) {
    const DataItem& item = module.data[i];
    DepNode n;
    n.kind = DepNodeKind::Data;
    n.name = item.name;
    n.sema_index = i;
    for (const Type* dim : item.dims)
      n.dims.push_back(DimLabel{dim->name, dim});
    data_ids.emplace(item.name, g.add_node(std::move(n)));
  }

  // Equation nodes; dimensions are the loop dimensions.
  std::vector<uint32_t> eq_ids(module.equations.size());
  for (size_t i = 0; i < module.equations.size(); ++i) {
    const CheckedEquation& eq = module.equations[i];
    DepNode n;
    n.kind = DepNodeKind::Equation;
    n.name = eq.display_name;
    n.sema_index = i;
    for (const LoopDim& dim : eq.loop_dims)
      n.dims.push_back(DimLabel{dim.var, dim.range});
    eq_ids[i] = g.add_node(std::move(n));
  }

  auto loop_dim_index = [](const CheckedEquation& eq,
                           std::string_view var) -> int {
    for (size_t d = 0; d < eq.loop_dims.size(); ++d)
      if (eq.loop_dims[d].var == var) return static_cast<int>(d);
    return -1;
  };

  for (size_t i = 0; i < module.equations.size(); ++i) {
    const CheckedEquation& eq = module.equations[i];
    uint32_t eq_id = eq_ids[i];

    // Array uses: one edge per reference, labelled per source dimension.
    for (const ArrayRefInfo& ref : eq.array_refs) {
      DepEdge e;
      e.src = data_ids.at(ref.array);
      e.dst = eq_id;
      e.kind = DepEdgeKind::Data;
      e.ref = &ref;
      for (const SubscriptInfo& sub : ref.subs) {
        EdgeLabel label;
        label.kind = sub.kind;
        label.offset = sub.offset;
        label.display = sub.display();
        if (sub.kind == SubscriptInfo::Kind::IndexVar)
          label.target_dim = loop_dim_index(eq, sub.var);
        e.labels.push_back(std::move(label));
      }
      g.add_edge(std::move(e));
    }

    // Scalar uses.
    for (const std::string& name : eq.scalar_refs) {
      DepEdge e;
      e.src = data_ids.at(name);
      e.dst = eq_id;
      e.kind = DepEdgeKind::Data;
      g.add_edge(std::move(e));
    }

    // Definition edge: equation -> defined variable.
    {
      DepEdge e;
      e.src = eq_id;
      e.dst = data_ids.at(module.data[eq.target].name);
      e.kind = DepEdgeKind::Data;
      e.is_definition = true;
      g.add_edge(std::move(e));
    }

    // Bound edges from scalars used in the equation's loop subranges.
    std::vector<std::string> loop_bound_deps;
    for (const LoopDim& dim : eq.loop_dims) {
      // Re-use sema's collector indirectly: bounds are expressions; walk
      // them through the data table.
      std::vector<std::string> names;
      for (const Expr* bound : {dim.range->lo.get(), dim.range->hi.get()}) {
        if (bound == nullptr) continue;
        // Collect names appearing in the bound expression.
        std::vector<const Expr*> stack{bound};
        while (!stack.empty()) {
          const Expr* cur = stack.back();
          stack.pop_back();
          switch (cur->kind) {
            case ExprKind::Name: {
              const auto& nm = static_cast<const NameExpr&>(*cur).name;
              const DataItem* item = module.find_data(nm);
              if (item != nullptr && item->is_scalar()) names.push_back(nm);
              break;
            }
            case ExprKind::Unary:
              stack.push_back(
                  static_cast<const UnaryExpr&>(*cur).operand.get());
              break;
            case ExprKind::Binary: {
              const auto& b = static_cast<const BinaryExpr&>(*cur);
              stack.push_back(b.lhs.get());
              stack.push_back(b.rhs.get());
              break;
            }
            default:
              break;
          }
        }
      }
      for (const auto& nm : names) {
        if (std::find(loop_bound_deps.begin(), loop_bound_deps.end(), nm) ==
            loop_bound_deps.end())
          loop_bound_deps.push_back(nm);
      }
    }
    for (const auto& nm : loop_bound_deps) {
      // Avoid duplicating an existing scalar-use edge.
      if (std::find(eq.scalar_refs.begin(), eq.scalar_refs.end(), nm) !=
          eq.scalar_refs.end())
        continue;
      DepEdge e;
      e.src = data_ids.at(nm);
      e.dst = eq_id;
      e.kind = DepEdgeKind::Bound;
      g.add_edge(std::move(e));
    }
  }

  // Hierarchical edges: one child node per record field (paper section
  // 3.1; they "do not concern us further" for scheduling -- field nodes
  // are leaves the scheduler treats as lone data nodes).
  for (size_t i = 0; i < module.data.size(); ++i) {
    const DataItem& item = module.data[i];
    if (item.elem == nullptr || item.elem->kind != TypeKind::Record)
      continue;
    for (const auto& [fname, ftype] : item.elem->fields) {
      DepNode child;
      child.kind = DepNodeKind::Data;
      child.name = item.name + "." + fname;
      child.sema_index = i;
      child.is_record_field = true;
      uint32_t child_id = g.add_node(std::move(child));
      DepEdge e;
      e.src = data_ids.at(item.name);
      e.dst = child_id;
      e.kind = DepEdgeKind::Hierarchical;
      g.add_edge(std::move(e));
    }
  }

  // Subrange-bound edges between data items (paper: "a data dependency
  // edge is drawn from M to InitialA, to A, and to NewA, since the bounds
  // of these arrays depend on M").
  for (size_t i = 0; i < module.data.size(); ++i) {
    const DataItem& item = module.data[i];
    for (const std::string& dep : item.bound_deps) {
      DepEdge e;
      e.src = data_ids.at(dep);
      e.dst = data_ids.at(item.name);
      e.kind = DepEdgeKind::Bound;
      g.add_edge(std::move(e));
    }
  }

  return g;
}

std::string DepGraph::to_dot() const {
  DotWriter dot("depgraph");
  for (const auto& n : nodes_) {
    std::string label = n.name;
    if (!n.dims.empty()) {
      std::vector<std::string> ds;
      ds.reserve(n.dims.size());
      for (const auto& d : n.dims)
        ds.push_back(d.var.empty() ? std::string("_") : d.var);
      label += "[" + join(ds, ",") + "]";
    }
    dot.add_node("n" + std::to_string(n.id), label,
                 n.kind == DepNodeKind::Data ? "ellipse" : "box");
  }
  for (const auto& e : edges_) {
    std::vector<std::string> parts;
    for (const auto& l : e.labels) parts.push_back(l.display);
    std::string style;
    if (e.kind == DepEdgeKind::Bound) style = "dashed";
    if (e.kind == DepEdgeKind::Hierarchical) style = "dotted";
    dot.add_edge("n" + std::to_string(e.src), "n" + std::to_string(e.dst),
                 join(parts, ", "), style);
  }
  return dot.render();
}

std::string DepGraph::summary() const {
  std::ostringstream os;
  os << "nodes: " << nodes_.size() << ", edges: " << edges_.size() << '\n';
  for (const auto& e : edges_) {
    os << "  " << nodes_[e.src].name << " -> " << nodes_[e.dst].name;
    if (e.kind == DepEdgeKind::Bound) os << "  [bound]";
    if (e.kind == DepEdgeKind::Hierarchical) os << "  [field]";
    if (e.is_definition) os << "  [defines]";
    if (!e.labels.empty()) {
      std::vector<std::string> parts;
      for (const auto& l : e.labels) parts.push_back(l.display);
      os << "  [" << join(parts, ", ") << "]";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ps
