#include "graph/scc.hpp"

#include <algorithm>
#include <queue>
#include <set>

namespace ps {

namespace {

constexpr uint32_t kUnvisited = UINT32_MAX;

struct Frame {
  uint32_t node;
  size_t next_child;
};

}  // namespace

SccResult compute_sccs(const std::vector<std::vector<uint32_t>>& adj) {
  const size_t n = adj.size();
  SccResult result;
  result.component_of.assign(n, kUnvisited);

  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  std::vector<Frame> frames;
  uint32_t next_index = 0;

  std::vector<std::vector<uint32_t>> raw_components;

  for (uint32_t start = 0; start < n; ++start) {
    if (index[start] != kUnvisited) continue;
    frames.push_back(Frame{start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;

    while (!frames.empty()) {
      Frame& frame = frames.back();
      uint32_t u = frame.node;
      if (frame.next_child < adj[u].size()) {
        uint32_t v = adj[u][frame.next_child++];
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          frames.push_back(Frame{v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
        continue;
      }
      // All children explored: maybe pop a component, then retreat.
      if (lowlink[u] == index[u]) {
        std::vector<uint32_t> comp;
        while (true) {
          uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp.push_back(w);
          if (w == u) break;
        }
        std::sort(comp.begin(), comp.end());
        raw_components.push_back(std::move(comp));
      }
      frames.pop_back();
      if (!frames.empty()) {
        uint32_t parent = frames.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
      }
    }
  }

  // Map node -> raw component.
  std::vector<uint32_t> raw_of(n, kUnvisited);
  for (uint32_t c = 0; c < raw_components.size(); ++c)
    for (uint32_t v : raw_components[c]) raw_of[v] = c;

  // Deterministic topological order of the condensation: Kahn's algorithm
  // with a min-heap keyed on the smallest node id in each component.
  size_t num_comp = raw_components.size();
  std::vector<std::set<uint32_t>> succ(num_comp);
  std::vector<uint32_t> in_degree(num_comp, 0);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v : adj[u]) {
      uint32_t cu = raw_of[u];
      uint32_t cv = raw_of[v];
      if (cu != cv && succ[cu].insert(cv).second) ++in_degree[cv];
    }
  }
  auto key = [&](uint32_t c) { return raw_components[c].front(); };
  auto cmp = [&](uint32_t a, uint32_t b) { return key(a) > key(b); };
  std::priority_queue<uint32_t, std::vector<uint32_t>, decltype(cmp)> ready(
      cmp);
  for (uint32_t c = 0; c < num_comp; ++c)
    if (in_degree[c] == 0) ready.push(c);

  while (!ready.empty()) {
    uint32_t c = ready.top();
    ready.pop();
    uint32_t ordered_id = static_cast<uint32_t>(result.components.size());
    for (uint32_t v : raw_components[c]) result.component_of[v] = ordered_id;
    result.components.push_back(std::move(raw_components[c]));
    for (uint32_t s : succ[c])
      if (--in_degree[s] == 0) ready.push(s);
  }

  return result;
}

}  // namespace ps
