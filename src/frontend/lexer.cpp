#include "frontend/lexer.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <utility>

#include "support/strings.hpp"

namespace ps {

namespace {

struct Keyword {
  std::string_view spelling;
  TokenKind kind;
};

constexpr std::array kKeywords = {
    Keyword{"module", TokenKind::KwModule}, Keyword{"type", TokenKind::KwType},
    Keyword{"var", TokenKind::KwVar},       Keyword{"define", TokenKind::KwDefine},
    Keyword{"end", TokenKind::KwEnd},       Keyword{"array", TokenKind::KwArray},
    Keyword{"of", TokenKind::KwOf},         Keyword{"record", TokenKind::KwRecord},
    Keyword{"if", TokenKind::KwIf},         Keyword{"then", TokenKind::KwThen},
    Keyword{"else", TokenKind::KwElse},     Keyword{"or", TokenKind::KwOr},
    Keyword{"and", TokenKind::KwAnd},       Keyword{"not", TokenKind::KwNot},
    Keyword{"div", TokenKind::KwDiv},       Keyword{"mod", TokenKind::KwMod},
    Keyword{"int", TokenKind::KwInt},       Keyword{"integer", TokenKind::KwInt},
    Keyword{"real", TokenKind::KwReal},     Keyword{"bool", TokenKind::KwBool},
    Keyword{"boolean", TokenKind::KwBool},  Keyword{"true", TokenKind::KwTrue},
    Keyword{"false", TokenKind::KwFalse},
};

}  // namespace

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::EndOfFile: return "end of file";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::RealLiteral: return "real literal";
    case TokenKind::KwModule: return "'module'";
    case TokenKind::KwType: return "'type'";
    case TokenKind::KwVar: return "'var'";
    case TokenKind::KwDefine: return "'define'";
    case TokenKind::KwEnd: return "'end'";
    case TokenKind::KwArray: return "'array'";
    case TokenKind::KwOf: return "'of'";
    case TokenKind::KwRecord: return "'record'";
    case TokenKind::KwIf: return "'if'";
    case TokenKind::KwThen: return "'then'";
    case TokenKind::KwElse: return "'else'";
    case TokenKind::KwOr: return "'or'";
    case TokenKind::KwAnd: return "'and'";
    case TokenKind::KwNot: return "'not'";
    case TokenKind::KwDiv: return "'div'";
    case TokenKind::KwMod: return "'mod'";
    case TokenKind::KwInt: return "'int'";
    case TokenKind::KwReal: return "'real'";
    case TokenKind::KwBool: return "'bool'";
    case TokenKind::KwTrue: return "'true'";
    case TokenKind::KwFalse: return "'false'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Comma: return "','";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Colon: return "':'";
    case TokenKind::Dot: return "'.'";
    case TokenKind::DotDot: return "'..'";
    case TokenKind::Equal: return "'='";
    case TokenKind::NotEqual: return "'<>'";
    case TokenKind::Less: return "'<'";
    case TokenKind::LessEqual: return "'<='";
    case TokenKind::Greater: return "'>'";
    case TokenKind::GreaterEqual: return "'>='";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Error: return "invalid token";
  }
  return "?";
}

Lexer::Lexer(std::string_view source, DiagnosticEngine& diags)
    : source_(source), diags_(diags) {}

char Lexer::peek(size_t ahead) const {
  return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  char ch = source_[pos_++];
  if (ch == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return ch;
}

SourceLoc Lexer::here() const {
  return SourceLoc{line_, column_, static_cast<uint32_t>(pos_)};
}

void Lexer::skip_trivia() {
  while (!at_end()) {
    char ch = peek();
    if (std::isspace(static_cast<unsigned char>(ch))) {
      advance();
      continue;
    }
    if (ch == '(' && peek(1) == '*') {
      SourceLoc start = here();
      advance();
      advance();
      int depth = 1;
      while (!at_end() && depth > 0) {
        if (peek() == '(' && peek(1) == '*') {
          advance();
          advance();
          ++depth;
        } else if (peek() == '*' && peek(1) == ')') {
          advance();
          advance();
          --depth;
        } else {
          advance();
        }
      }
      if (depth > 0) diags_.error(start, "unterminated comment");
      continue;
    }
    break;
  }
}

Token Lexer::lex_number(SourceLoc start) {
  size_t begin = pos_;
  while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
  bool is_real = false;
  // A '.' starts a fraction only when not part of the '..' range operator.
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_real = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t mark = pos_;
    char sign = peek(1);
    size_t digits_at = (sign == '+' || sign == '-') ? 2 : 1;
    if (std::isdigit(static_cast<unsigned char>(peek(digits_at)))) {
      is_real = true;
      for (size_t i = 0; i <= digits_at; ++i) advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    } else {
      pos_ = mark;  // 'e' belongs to a following identifier
    }
  }
  std::string text(source_.substr(begin, pos_ - begin));
  Token tok;
  tok.loc = start;
  tok.text = text;
  if (is_real) {
    tok.kind = TokenKind::RealLiteral;
    tok.real_value = std::strtod(text.c_str(), nullptr);
  } else {
    tok.kind = TokenKind::IntLiteral;
    auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), tok.int_value);
    if (ec != std::errc()) {
      diags_.error(start, "integer literal out of range: " + text);
      tok.kind = TokenKind::Error;
    }
  }
  return tok;
}

Token Lexer::lex_identifier(SourceLoc start) {
  size_t begin = pos_;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
         peek() == '\'')
    advance();
  std::string text(source_.substr(begin, pos_ - begin));
  Token tok;
  tok.loc = start;
  tok.text = text;
  tok.kind = TokenKind::Identifier;
  for (const auto& kw : kKeywords) {
    if (iequals(text, kw.spelling)) {
      tok.kind = kw.kind;
      break;
    }
  }
  return tok;
}

Token Lexer::next() {
  skip_trivia();
  SourceLoc start = here();
  if (at_end()) return Token{TokenKind::EndOfFile, "", 0, 0, start};

  char ch = peek();
  if (std::isdigit(static_cast<unsigned char>(ch))) return lex_number(start);
  if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_')
    return lex_identifier(start);

  advance();
  auto simple = [&](TokenKind kind, std::string text) {
    return Token{kind, std::move(text), 0, 0, start};
  };
  switch (ch) {
    case '(': return simple(TokenKind::LParen, "(");
    case ')': return simple(TokenKind::RParen, ")");
    case '[': return simple(TokenKind::LBracket, "[");
    case ']': return simple(TokenKind::RBracket, "]");
    case ',': return simple(TokenKind::Comma, ",");
    case ';': return simple(TokenKind::Semicolon, ";");
    case ':': return simple(TokenKind::Colon, ":");
    case '=': return simple(TokenKind::Equal, "=");
    case '+': return simple(TokenKind::Plus, "+");
    case '-': return simple(TokenKind::Minus, "-");
    case '*': return simple(TokenKind::Star, "*");
    case '/': return simple(TokenKind::Slash, "/");
    case '.':
      if (peek() == '.') {
        advance();
        return simple(TokenKind::DotDot, "..");
      }
      return simple(TokenKind::Dot, ".");
    case '<':
      if (peek() == '>') {
        advance();
        return simple(TokenKind::NotEqual, "<>");
      }
      if (peek() == '=') {
        advance();
        return simple(TokenKind::LessEqual, "<=");
      }
      return simple(TokenKind::Less, "<");
    case '>':
      if (peek() == '=') {
        advance();
        return simple(TokenKind::GreaterEqual, ">=");
      }
      return simple(TokenKind::Greater, ">");
    default:
      diags_.error(start, std::string("unexpected character '") + ch + "'");
      return simple(TokenKind::Error, std::string(1, ch));
  }
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> out;
  while (true) {
    Token tok = next();
    bool done = tok.is(TokenKind::EndOfFile);
    out.push_back(std::move(tok));
    if (done) break;
  }
  return out;
}

}  // namespace ps
