#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "frontend/ast.hpp"
#include "frontend/types.hpp"
#include "support/diagnostics.hpp"

namespace ps {

enum class DataClass { Input, Output, Local };

[[nodiscard]] std::string_view data_class_name(DataClass cls);

/// One module-level data item (input parameter, result, or local
/// variable). Arrays are described by their flattened dimension list --
/// `array [K] of array [I, J] of real` has dims (K, I, J) -- matching the
/// paper's node labels ("a node label for each dimension of the node").
struct DataItem {
  std::string name;
  DataClass cls = DataClass::Local;
  const Type* type = nullptr;        // declared type
  std::vector<const Type*> dims;     // flattened subrange dimensions
  const Type* elem = nullptr;        // scalar element type
  std::vector<std::string> bound_deps;  // scalar items used in dim bounds
  SourceLoc loc;

  [[nodiscard]] bool is_scalar() const { return dims.empty(); }
  [[nodiscard]] size_t rank() const { return dims.size(); }
};

/// Classification of one subscript position of an array reference,
/// mirroring the paper's Figure 2 edge-label attributes.
struct SubscriptInfo {
  enum class Kind {
    IndexVar,    // "I" or "I +- constant" (offset carries the constant)
    Constant,    // integer literal, e.g. A[1]
    UpperBound,  // the upper bound of the dimension's subrange, e.g. A[maxK]
    General,     // any other expression
  };
  Kind kind = Kind::General;
  std::string var;     // IndexVar: which equation loop variable
  int64_t offset = 0;  // IndexVar: subscript is var + offset
  int64_t constant = 0;  // Constant: the literal value
  const Expr* expr = nullptr;  // the (elaborated) subscript expression

  [[nodiscard]] std::string display() const;
};

/// One reference to a dimensioned data item inside an equation RHS,
/// with one classified subscript per flattened dimension (implicit
/// trailing dimensions have been elaborated by sema).
struct ArrayRefInfo {
  std::string array;
  const IndexExpr* expr = nullptr;
  std::vector<SubscriptInfo> subs;
};

/// One loop dimension of an equation: the index variable, the subrange
/// it iterates over, and which flattened dimension of the target (LHS)
/// array it writes.
struct LoopDim {
  std::string var;
  const Type* range = nullptr;
  size_t lhs_dim = 0;
};

/// One LHS subscript position of the target array.
struct LhsSubscript {
  bool is_index_var = false;
  std::string var;             // when is_index_var
  const Expr* fixed = nullptr; // otherwise: the fixed slice expression
};

/// A fully analysed equation. After elaboration the RHS is scalar-typed;
/// all implicit dimensions have been made explicit.
struct CheckedEquation {
  size_t id = 0;                  // 0-based equation index
  std::string display_name;      // "eq.1", "eq.2", ...
  size_t target = 0;             // index into CheckedModule::data
  std::vector<LhsSubscript> lhs_subs;  // one per target dimension
  std::vector<LoopDim> loop_dims;
  ExprPtr rhs;                   // elaborated copy of the AST RHS
  std::vector<ArrayRefInfo> array_refs;
  std::vector<std::string> scalar_refs;  // scalar data items read anywhere
  SourceLoc loc;
};

/// The result of semantic analysis: data items, checked equations, the
/// type table that owns all resolved types, and the original AST.
struct CheckedModule {
  std::string name;
  TypeTable types;
  std::vector<DataItem> data;
  std::vector<CheckedEquation> equations;
  std::map<std::string, const Type*, std::less<>> named_types;
  ModuleAst ast;

  [[nodiscard]] const DataItem* find_data(std::string_view name) const;
  [[nodiscard]] size_t data_index(std::string_view name) const;  // throws
  [[nodiscard]] const Type* find_type(std::string_view name) const;
};

/// Semantic analysis: resolves types (two-pass, so parameter declarations
/// may reference subrange types declared later, as in the paper's Figure
/// 1), elaborates implicit dimensions, classifies subscripts, and type
/// checks every equation.
class Sema {
 public:
  explicit Sema(DiagnosticEngine& diags) : diags_(diags) {}

  /// Analyse one module; returns nullopt (with diagnostics) on error.
  std::optional<CheckedModule> check(ModuleAst module);

 private:
  DiagnosticEngine& diags_;
};

}  // namespace ps
