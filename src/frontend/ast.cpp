#include "frontend/ast.hpp"

#include <cmath>
#include <sstream>

#include "support/strings.hpp"

namespace ps {

ExprPtr IndexExpr::clone() const {
  std::vector<ExprPtr> s;
  s.reserve(subs.size());
  for (const auto& sub : subs) s.push_back(sub->clone());
  return std::make_unique<IndexExpr>(base->clone(), std::move(s), loc);
}

ExprPtr CallExpr::clone() const {
  std::vector<ExprPtr> a;
  a.reserve(args.size());
  for (const auto& arg : args) a.push_back(arg->clone());
  return std::make_unique<CallExpr>(callee, std::move(a), loc);
}

std::string_view unary_op_name(UnaryOp op) {
  switch (op) {
    case UnaryOp::Neg:
      return "-";
    case UnaryOp::Not:
      return "not";
  }
  return "?";
}

std::string_view binary_op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add:
      return "+";
    case BinaryOp::Sub:
      return "-";
    case BinaryOp::Mul:
      return "*";
    case BinaryOp::Div:
      return "/";
    case BinaryOp::IntDiv:
      return "div";
    case BinaryOp::Mod:
      return "mod";
    case BinaryOp::Eq:
      return "=";
    case BinaryOp::Ne:
      return "<>";
    case BinaryOp::Lt:
      return "<";
    case BinaryOp::Le:
      return "<=";
    case BinaryOp::Gt:
      return ">";
    case BinaryOp::Ge:
      return ">=";
    case BinaryOp::And:
      return "and";
    case BinaryOp::Or:
      return "or";
  }
  return "?";
}

namespace {

int precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::Or:
      return 1;
    case BinaryOp::And:
      return 2;
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      return 3;
    case BinaryOp::Add:
    case BinaryOp::Sub:
      return 4;
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::IntDiv:
    case BinaryOp::Mod:
      return 5;
  }
  return 0;
}

void print(const Expr& e, std::ostringstream& os, int parent_prec) {
  switch (e.kind) {
    case ExprKind::IntLit:
      os << static_cast<const IntLitExpr&>(e).value;
      return;
    case ExprKind::RealLit: {
      double v = static_cast<const RealLitExpr&>(e).value;
      std::ostringstream tmp;
      tmp << v;
      std::string s = tmp.str();
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos)
        s += ".0";
      os << s;
      return;
    }
    case ExprKind::BoolLit:
      os << (static_cast<const BoolLitExpr&>(e).value ? "true" : "false");
      return;
    case ExprKind::Name:
      os << static_cast<const NameExpr&>(e).name;
      return;
    case ExprKind::Index: {
      const auto& ix = static_cast<const IndexExpr&>(e);
      print(*ix.base, os, 100);
      os << '[';
      for (size_t i = 0; i < ix.subs.size(); ++i) {
        if (i) os << ", ";
        print(*ix.subs[i], os, 0);
      }
      os << ']';
      return;
    }
    case ExprKind::Field: {
      const auto& f = static_cast<const FieldExpr&>(e);
      print(*f.base, os, 100);
      os << '.' << f.field;
      return;
    }
    case ExprKind::Unary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      os << unary_op_name(u.op);
      if (u.op == UnaryOp::Not) os << ' ';
      print(*u.operand, os, 99);
      return;
    }
    case ExprKind::Binary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      int prec = precedence(b.op);
      bool paren = prec < parent_prec;
      if (paren) os << '(';
      print(*b.lhs, os, prec);
      os << ' ' << binary_op_name(b.op) << ' ';
      print(*b.rhs, os, prec + 1);
      if (paren) os << ')';
      return;
    }
    case ExprKind::If: {
      const auto& i = static_cast<const IfExpr&>(e);
      bool paren = parent_prec > 0;
      if (paren) os << '(';
      os << "if ";
      print(*i.cond, os, 0);
      os << " then ";
      print(*i.then_expr, os, 0);
      os << " else ";
      print(*i.else_expr, os, 0);
      if (paren) os << ')';
      return;
    }
    case ExprKind::Call: {
      const auto& c = static_cast<const CallExpr&>(e);
      os << c.callee << '(';
      for (size_t i = 0; i < c.args.size(); ++i) {
        if (i) os << ", ";
        print(*c.args[i], os, 0);
      }
      os << ')';
      return;
    }
  }
}

}  // namespace

std::string to_string(const Expr& e) {
  std::ostringstream os;
  print(e, os, 0);
  return os.str();
}

bool expr_equal(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::IntLit:
      return static_cast<const IntLitExpr&>(a).value ==
             static_cast<const IntLitExpr&>(b).value;
    case ExprKind::RealLit:
      return static_cast<const RealLitExpr&>(a).value ==
             static_cast<const RealLitExpr&>(b).value;
    case ExprKind::BoolLit:
      return static_cast<const BoolLitExpr&>(a).value ==
             static_cast<const BoolLitExpr&>(b).value;
    case ExprKind::Name:
      return static_cast<const NameExpr&>(a).name ==
             static_cast<const NameExpr&>(b).name;
    case ExprKind::Index: {
      const auto& x = static_cast<const IndexExpr&>(a);
      const auto& y = static_cast<const IndexExpr&>(b);
      if (!expr_equal(*x.base, *y.base)) return false;
      if (x.subs.size() != y.subs.size()) return false;
      for (size_t i = 0; i < x.subs.size(); ++i)
        if (!expr_equal(*x.subs[i], *y.subs[i])) return false;
      return true;
    }
    case ExprKind::Field: {
      const auto& x = static_cast<const FieldExpr&>(a);
      const auto& y = static_cast<const FieldExpr&>(b);
      return x.field == y.field && expr_equal(*x.base, *y.base);
    }
    case ExprKind::Unary: {
      const auto& x = static_cast<const UnaryExpr&>(a);
      const auto& y = static_cast<const UnaryExpr&>(b);
      return x.op == y.op && expr_equal(*x.operand, *y.operand);
    }
    case ExprKind::Binary: {
      const auto& x = static_cast<const BinaryExpr&>(a);
      const auto& y = static_cast<const BinaryExpr&>(b);
      return x.op == y.op && expr_equal(*x.lhs, *y.lhs) &&
             expr_equal(*x.rhs, *y.rhs);
    }
    case ExprKind::If: {
      const auto& x = static_cast<const IfExpr&>(a);
      const auto& y = static_cast<const IfExpr&>(b);
      return expr_equal(*x.cond, *y.cond) &&
             expr_equal(*x.then_expr, *y.then_expr) &&
             expr_equal(*x.else_expr, *y.else_expr);
    }
    case ExprKind::Call: {
      const auto& x = static_cast<const CallExpr&>(a);
      const auto& y = static_cast<const CallExpr&>(b);
      if (x.callee != y.callee || x.args.size() != y.args.size()) return false;
      for (size_t i = 0; i < x.args.size(); ++i)
        if (!expr_equal(*x.args[i], *y.args[i])) return false;
      return true;
    }
  }
  return false;
}

TypeExprPtr TypeExprNode::clone() const {
  auto out = std::make_unique<TypeExprNode>();
  out->kind = kind;
  out->loc = loc;
  out->name = name;
  if (lo) out->lo = lo->clone();
  if (hi) out->hi = hi->clone();
  for (const auto& d : dims) out->dims.push_back(d->clone());
  if (elem) out->elem = elem->clone();
  for (const auto& f : fields)
    out->fields.push_back(TypeExprField{f.name, f.type->clone()});
  out->enumerators = enumerators;
  return out;
}

std::string to_string(const TypeExprNode& t) {
  switch (t.kind) {
    case TypeExprKind::Named:
      return t.name;
    case TypeExprKind::Int:
      return "int";
    case TypeExprKind::Real:
      return "real";
    case TypeExprKind::Bool:
      return "bool";
    case TypeExprKind::Subrange:
      return to_string(*t.lo) + " .. " + to_string(*t.hi);
    case TypeExprKind::Array: {
      std::vector<std::string> ds;
      ds.reserve(t.dims.size());
      for (const auto& d : t.dims) ds.push_back(to_string(*d));
      return "array [" + join(ds, ", ") + "] of " + to_string(*t.elem);
    }
    case TypeExprKind::Record: {
      std::string out = "record ";
      for (const auto& f : t.fields)
        out += f.name + ": " + to_string(*f.type) + "; ";
      return out + "end";
    }
    case TypeExprKind::Enum:
      return "(" + join(t.enumerators, ", ") + ")";
  }
  return "?";
}

namespace {

std::string decl_to_source(const VarDeclAst& d) {
  return join(d.names, ", ") + ": " + to_string(*d.type);
}

}  // namespace

std::string to_source(const ModuleAst& m) {
  std::ostringstream os;
  os << m.name << ": module (";
  for (size_t i = 0; i < m.params.size(); ++i) {
    if (i) os << "; ";
    os << decl_to_source(m.params[i]);
  }
  os << "):\n  [";
  for (size_t i = 0; i < m.results.size(); ++i) {
    if (i) os << "; ";
    os << decl_to_source(m.results[i]);
  }
  os << "];\n";
  if (!m.type_decls.empty()) {
    os << "type\n";
    for (const auto& t : m.type_decls)
      os << "  " << join(t.names, ", ") << " = " << to_string(*t.type)
         << ";\n";
  }
  if (!m.locals.empty()) {
    os << "var\n";
    for (const auto& v : m.locals) os << "  " << decl_to_source(v) << ";\n";
  }
  os << "define\n";
  for (const auto& eq : m.equations) {
    os << "  " << eq.lhs_name;
    if (!eq.lhs_subs.empty()) {
      os << '[';
      for (size_t i = 0; i < eq.lhs_subs.size(); ++i) {
        if (i) os << ", ";
        os << to_string(*eq.lhs_subs[i]);
      }
      os << ']';
    }
    os << " = " << to_string(*eq.rhs) << ";\n";
  }
  os << "end " << m.name << ";\n";
  return os.str();
}

}  // namespace ps
