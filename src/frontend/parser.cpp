#include "frontend/parser.hpp"

#include <utility>

namespace ps {

Parser::Parser(std::string_view source, DiagnosticEngine& diags)
    : lexer_(source, diags), diags_(diags) {
  tok_ = lexer_.next();
}

void Parser::bump() { tok_ = lexer_.next(); }

bool Parser::accept(TokenKind kind) {
  if (!at(kind)) return false;
  bump();
  return true;
}

bool Parser::expect(TokenKind kind, std::string_view context) {
  if (accept(kind)) return true;
  diags_.error(tok_.loc, std::string("expected ") +
                             std::string(token_kind_name(kind)) + " in " +
                             std::string(context) + ", found " +
                             std::string(token_kind_name(tok_.kind)));
  return false;
}

void Parser::sync_to_semicolon() {
  while (!at(TokenKind::EndOfFile) && !at(TokenKind::Semicolon)) bump();
  accept(TokenKind::Semicolon);
}

ProgramAst Parser::parse_program() {
  ProgramAst program;
  while (!at(TokenKind::EndOfFile)) {
    auto module = parse_module();
    if (module) {
      program.modules.push_back(std::move(*module));
    } else {
      // Cannot make progress on garbage between modules.
      if (!at(TokenKind::EndOfFile)) bump();
    }
  }
  return program;
}

std::optional<ModuleAst> Parser::parse_module() {
  ModuleAst m;
  m.loc = tok_.loc;
  if (!at(TokenKind::Identifier)) {
    diags_.error(tok_.loc, "expected module name");
    return std::nullopt;
  }
  m.name = tok_.text;
  bump();
  if (!expect(TokenKind::Colon, "module header")) return std::nullopt;
  if (!expect(TokenKind::KwModule, "module header")) return std::nullopt;
  if (!expect(TokenKind::LParen, "module parameter list")) return std::nullopt;
  m.params = parse_decl_list(TokenKind::RParen);
  expect(TokenKind::RParen, "module parameter list");
  expect(TokenKind::Colon, "module header");
  expect(TokenKind::LBracket, "module result list");
  m.results = parse_decl_list(TokenKind::RBracket);
  expect(TokenKind::RBracket, "module result list");
  expect(TokenKind::Semicolon, "module header");

  if (accept(TokenKind::KwType)) {
    while (at(TokenKind::Identifier)) {
      auto decl = parse_type_decl();
      if (decl) m.type_decls.push_back(std::move(*decl));
    }
  }
  if (accept(TokenKind::KwVar)) {
    while (at(TokenKind::Identifier)) {
      auto decl = parse_decl();
      if (decl) {
        m.locals.push_back(std::move(*decl));
        expect(TokenKind::Semicolon, "variable declaration");
      } else {
        sync_to_semicolon();
      }
    }
  }
  expect(TokenKind::KwDefine, "module body");
  while (!at(TokenKind::KwEnd) && !at(TokenKind::EndOfFile)) {
    auto eq = parse_equation();
    if (eq)
      m.equations.push_back(std::move(*eq));
    else
      sync_to_semicolon();
  }
  expect(TokenKind::KwEnd, "module");
  if (at(TokenKind::Identifier)) {
    if (tok_.text != m.name)
      diags_.warning(tok_.loc, "module trailer name '" + tok_.text +
                                   "' does not match header '" + m.name + "'");
    bump();
  }
  expect(TokenKind::Semicolon, "module trailer");
  return m;
}

std::vector<VarDeclAst> Parser::parse_decl_list(TokenKind terminator) {
  std::vector<VarDeclAst> out;
  if (at(terminator)) return out;
  while (true) {
    auto decl = parse_decl();
    if (decl) out.push_back(std::move(*decl));
    if (!accept(TokenKind::Semicolon)) break;
    if (at(terminator)) break;  // tolerate trailing ';'
  }
  return out;
}

std::optional<VarDeclAst> Parser::parse_decl() {
  VarDeclAst d;
  d.loc = tok_.loc;
  if (!at(TokenKind::Identifier)) {
    diags_.error(tok_.loc, "expected declaration name");
    return std::nullopt;
  }
  d.names.push_back(tok_.text);
  bump();
  while (accept(TokenKind::Comma)) {
    if (!at(TokenKind::Identifier)) {
      diags_.error(tok_.loc, "expected name after ','");
      return std::nullopt;
    }
    d.names.push_back(tok_.text);
    bump();
  }
  if (!expect(TokenKind::Colon, "declaration")) return std::nullopt;
  d.type = parse_type_expr();
  if (!d.type) return std::nullopt;
  return d;
}

std::optional<TypeDeclAst> Parser::parse_type_decl() {
  TypeDeclAst d;
  d.loc = tok_.loc;
  d.names.push_back(tok_.text);
  bump();
  while (accept(TokenKind::Comma)) {
    if (!at(TokenKind::Identifier)) {
      diags_.error(tok_.loc, "expected name after ',' in type declaration");
      sync_to_semicolon();
      return std::nullopt;
    }
    d.names.push_back(tok_.text);
    bump();
  }
  if (!expect(TokenKind::Equal, "type declaration")) {
    sync_to_semicolon();
    return std::nullopt;
  }
  d.type = parse_type_expr();
  if (!d.type) {
    sync_to_semicolon();
    return std::nullopt;
  }
  expect(TokenKind::Semicolon, "type declaration");
  return d;
}

TypeExprPtr Parser::parse_type_expr() {
  SourceLoc loc = tok_.loc;
  auto node = std::make_unique<TypeExprNode>();
  node->loc = loc;

  switch (tok_.kind) {
    case TokenKind::KwInt:
      node->kind = TypeExprKind::Int;
      bump();
      return node;
    case TokenKind::KwReal:
      node->kind = TypeExprKind::Real;
      bump();
      return node;
    case TokenKind::KwBool:
      node->kind = TypeExprKind::Bool;
      bump();
      return node;
    case TokenKind::KwArray: {
      bump();
      node->kind = TypeExprKind::Array;
      if (!expect(TokenKind::LBracket, "array type")) return nullptr;
      while (true) {
        auto dim = parse_type_expr();
        if (!dim) return nullptr;
        node->dims.push_back(std::move(dim));
        if (!accept(TokenKind::Comma)) break;
      }
      if (!expect(TokenKind::RBracket, "array type")) return nullptr;
      if (!expect(TokenKind::KwOf, "array type")) return nullptr;
      node->elem = parse_type_expr();
      if (!node->elem) return nullptr;
      return node;
    }
    case TokenKind::KwRecord: {
      bump();
      node->kind = TypeExprKind::Record;
      while (at(TokenKind::Identifier)) {
        auto decl = parse_decl();
        if (!decl) return nullptr;
        for (auto& fname : decl->names) {
          TypeExprField field;
          field.name = fname;
          field.type = decl->type->clone();
          node->fields.push_back(std::move(field));
        }
        expect(TokenKind::Semicolon, "record field");
      }
      if (!expect(TokenKind::KwEnd, "record type")) return nullptr;
      return node;
    }
    case TokenKind::LParen: {
      // Enumeration: (red, green, blue)
      bump();
      node->kind = TypeExprKind::Enum;
      while (at(TokenKind::Identifier)) {
        node->enumerators.push_back(tok_.text);
        bump();
        if (!accept(TokenKind::Comma)) break;
      }
      if (!expect(TokenKind::RParen, "enumeration type")) return nullptr;
      return node;
    }
    default:
      break;
  }

  // Either a bare type name or a subrange `lo .. hi`, both of which begin
  // with an additive expression.
  ExprPtr lo = parse_add();
  if (!lo) return nullptr;
  if (accept(TokenKind::DotDot)) {
    node->kind = TypeExprKind::Subrange;
    node->lo = std::move(lo);
    node->hi = parse_add();
    if (!node->hi) return nullptr;
    return node;
  }
  if (lo->kind == ExprKind::Name) {
    node->kind = TypeExprKind::Named;
    node->name = static_cast<NameExpr&>(*lo).name;
    return node;
  }
  diags_.error(loc, "expected type expression");
  return nullptr;
}

std::optional<EquationAst> Parser::parse_equation() {
  EquationAst eq;
  eq.loc = tok_.loc;
  if (!at(TokenKind::Identifier)) {
    diags_.error(tok_.loc, "expected equation left-hand side");
    return std::nullopt;
  }
  eq.lhs_name = tok_.text;
  bump();
  if (accept(TokenKind::LBracket)) {
    while (true) {
      ExprPtr sub = parse_expr();
      if (!sub) return std::nullopt;
      eq.lhs_subs.push_back(std::move(sub));
      if (!accept(TokenKind::Comma)) break;
    }
    if (!expect(TokenKind::RBracket, "equation left-hand side"))
      return std::nullopt;
  }
  if (!expect(TokenKind::Equal, "equation")) return std::nullopt;
  eq.rhs = parse_expr();
  if (!eq.rhs) return std::nullopt;
  expect(TokenKind::Semicolon, "equation");
  return eq;
}

ExprPtr Parser::parse_expression_only() {
  ExprPtr e = parse_expr();
  if (e && !at(TokenKind::EndOfFile))
    diags_.error(tok_.loc, "trailing tokens after expression");
  return e;
}

ExprPtr Parser::parse_expr() {
  if (at(TokenKind::KwIf)) {
    SourceLoc loc = tok_.loc;
    bump();
    ExprPtr cond = parse_expr();
    if (!cond) return nullptr;
    if (!expect(TokenKind::KwThen, "if expression")) return nullptr;
    ExprPtr then_expr = parse_expr();
    if (!then_expr) return nullptr;
    if (!expect(TokenKind::KwElse, "if expression")) return nullptr;
    ExprPtr else_expr = parse_expr();
    if (!else_expr) return nullptr;
    return std::make_unique<IfExpr>(std::move(cond), std::move(then_expr),
                                    std::move(else_expr), loc);
  }
  return parse_or();
}

ExprPtr Parser::parse_or() {
  ExprPtr lhs = parse_and();
  while (lhs && at(TokenKind::KwOr)) {
    SourceLoc loc = tok_.loc;
    bump();
    ExprPtr rhs = parse_and();
    if (!rhs) return nullptr;
    lhs = std::make_unique<BinaryExpr>(BinaryOp::Or, std::move(lhs),
                                       std::move(rhs), loc);
  }
  return lhs;
}

ExprPtr Parser::parse_and() {
  ExprPtr lhs = parse_rel();
  while (lhs && at(TokenKind::KwAnd)) {
    SourceLoc loc = tok_.loc;
    bump();
    ExprPtr rhs = parse_rel();
    if (!rhs) return nullptr;
    lhs = std::make_unique<BinaryExpr>(BinaryOp::And, std::move(lhs),
                                       std::move(rhs), loc);
  }
  return lhs;
}

ExprPtr Parser::parse_rel() {
  ExprPtr lhs = parse_add();
  if (!lhs) return nullptr;
  BinaryOp op;
  switch (tok_.kind) {
    case TokenKind::Equal: op = BinaryOp::Eq; break;
    case TokenKind::NotEqual: op = BinaryOp::Ne; break;
    case TokenKind::Less: op = BinaryOp::Lt; break;
    case TokenKind::LessEqual: op = BinaryOp::Le; break;
    case TokenKind::Greater: op = BinaryOp::Gt; break;
    case TokenKind::GreaterEqual: op = BinaryOp::Ge; break;
    default:
      return lhs;
  }
  SourceLoc loc = tok_.loc;
  bump();
  ExprPtr rhs = parse_add();
  if (!rhs) return nullptr;
  return std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs), loc);
}

ExprPtr Parser::parse_add() {
  ExprPtr lhs = parse_mul();
  while (lhs && (at(TokenKind::Plus) || at(TokenKind::Minus))) {
    BinaryOp op = at(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc loc = tok_.loc;
    bump();
    ExprPtr rhs = parse_mul();
    if (!rhs) return nullptr;
    lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs), loc);
  }
  return lhs;
}

ExprPtr Parser::parse_mul() {
  ExprPtr lhs = parse_unary();
  while (lhs) {
    BinaryOp op;
    if (at(TokenKind::Star))
      op = BinaryOp::Mul;
    else if (at(TokenKind::Slash))
      op = BinaryOp::Div;
    else if (at(TokenKind::KwDiv))
      op = BinaryOp::IntDiv;
    else if (at(TokenKind::KwMod))
      op = BinaryOp::Mod;
    else
      break;
    SourceLoc loc = tok_.loc;
    bump();
    ExprPtr rhs = parse_unary();
    if (!rhs) return nullptr;
    lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs), loc);
  }
  return lhs;
}

ExprPtr Parser::parse_unary() {
  if (at(TokenKind::Minus)) {
    SourceLoc loc = tok_.loc;
    bump();
    ExprPtr operand = parse_unary();
    if (!operand) return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(operand), loc);
  }
  if (at(TokenKind::KwNot)) {
    SourceLoc loc = tok_.loc;
    bump();
    ExprPtr operand = parse_unary();
    if (!operand) return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Not, std::move(operand), loc);
  }
  return parse_postfix();
}

ExprPtr Parser::parse_postfix() {
  ExprPtr base = parse_primary();
  while (base) {
    if (accept(TokenKind::LBracket)) {
      std::vector<ExprPtr> subs;
      while (true) {
        ExprPtr sub = parse_expr();
        if (!sub) return nullptr;
        subs.push_back(std::move(sub));
        if (!accept(TokenKind::Comma)) break;
      }
      if (!expect(TokenKind::RBracket, "subscript")) return nullptr;
      SourceLoc loc = base->loc;
      base = std::make_unique<IndexExpr>(std::move(base), std::move(subs), loc);
      continue;
    }
    if (at(TokenKind::Dot)) {
      bump();
      if (!at(TokenKind::Identifier)) {
        diags_.error(tok_.loc, "expected field name after '.'");
        return nullptr;
      }
      SourceLoc loc = base->loc;
      base = std::make_unique<FieldExpr>(std::move(base), tok_.text, loc);
      bump();
      continue;
    }
    break;
  }
  return base;
}

ExprPtr Parser::parse_primary() {
  SourceLoc loc = tok_.loc;
  switch (tok_.kind) {
    case TokenKind::IntLiteral: {
      auto e = std::make_unique<IntLitExpr>(tok_.int_value, loc);
      bump();
      return e;
    }
    case TokenKind::RealLiteral: {
      auto e = std::make_unique<RealLitExpr>(tok_.real_value, loc);
      bump();
      return e;
    }
    case TokenKind::KwTrue:
      bump();
      return std::make_unique<BoolLitExpr>(true, loc);
    case TokenKind::KwFalse:
      bump();
      return std::make_unique<BoolLitExpr>(false, loc);
    case TokenKind::Identifier: {
      std::string name = tok_.text;
      bump();
      if (accept(TokenKind::LParen)) {
        std::vector<ExprPtr> args;
        if (!at(TokenKind::RParen)) {
          while (true) {
            ExprPtr arg = parse_expr();
            if (!arg) return nullptr;
            args.push_back(std::move(arg));
            if (!accept(TokenKind::Comma)) break;
          }
        }
        if (!expect(TokenKind::RParen, "call")) return nullptr;
        return std::make_unique<CallExpr>(std::move(name), std::move(args),
                                          loc);
      }
      return std::make_unique<NameExpr>(std::move(name), loc);
    }
    case TokenKind::LParen: {
      bump();
      ExprPtr inner = parse_expr();
      if (!inner) return nullptr;
      if (!expect(TokenKind::RParen, "parenthesised expression"))
        return nullptr;
      return inner;
    }
    default:
      diags_.error(loc, std::string("expected expression, found ") +
                            std::string(token_kind_name(tok_.kind)));
      return nullptr;
  }
}

}  // namespace ps
