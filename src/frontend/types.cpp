#include "frontend/types.hpp"

#include <sstream>

namespace ps {

std::string Type::display() const {
  if (!name.empty()) return name;
  switch (kind) {
    case TypeKind::Int:
      return "int";
    case TypeKind::Real:
      return "real";
    case TypeKind::Bool:
      return "bool";
    case TypeKind::Subrange:
      return to_string(*lo) + " .. " + to_string(*hi);
    case TypeKind::Array: {
      std::ostringstream os;
      os << "array [";
      for (size_t i = 0; i < dims.size(); ++i) {
        if (i) os << ", ";
        os << dims[i]->display();
      }
      os << "] of " << elem->display();
      return os.str();
    }
    case TypeKind::Record: {
      std::ostringstream os;
      os << "record ";
      for (const auto& [fname, ftype] : fields)
        os << fname << ": " << ftype->display() << "; ";
      os << "end";
      return os.str();
    }
    case TypeKind::Enum: {
      std::ostringstream os;
      os << "(";
      for (size_t i = 0; i < enumerators.size(); ++i) {
        if (i) os << ", ";
        os << enumerators[i];
      }
      os << ")";
      return os.str();
    }
  }
  return "?";
}

bool types_equal(const Type& a, const Type& b) {
  if (&a == &b) return true;
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case TypeKind::Int:
    case TypeKind::Real:
    case TypeKind::Bool:
      return true;
    case TypeKind::Subrange:
      return expr_equal(*a.lo, *b.lo) && expr_equal(*a.hi, *b.hi);
    case TypeKind::Array: {
      if (a.dims.size() != b.dims.size()) return false;
      for (size_t i = 0; i < a.dims.size(); ++i)
        if (!types_equal(*a.dims[i], *b.dims[i])) return false;
      return types_equal(*a.elem, *b.elem);
    }
    case TypeKind::Record: {
      if (a.fields.size() != b.fields.size()) return false;
      for (size_t i = 0; i < a.fields.size(); ++i) {
        if (a.fields[i].first != b.fields[i].first) return false;
        if (!types_equal(*a.fields[i].second, *b.fields[i].second))
          return false;
      }
      return true;
    }
    case TypeKind::Enum:
      return a.enumerators == b.enumerators;
  }
  return false;
}

bool type_assignable(const Type& to, const Type& from) {
  // Subranges are freely interchangeable with int (bounds are a
  // declaration aid, not a checked constraint, as in the paper's usage).
  auto collapses_int = [](const Type& t) {
    return t.kind == TypeKind::Int || t.kind == TypeKind::Subrange;
  };
  if (collapses_int(to) && collapses_int(from)) return true;
  if (to.kind == TypeKind::Real &&
      (collapses_int(from) || from.kind == TypeKind::Real))
    return true;
  if (to.kind == TypeKind::Array && from.kind == TypeKind::Array) {
    FlattenedType ft = flatten_type(to);
    FlattenedType ff = flatten_type(from);
    if (ft.dims.size() != ff.dims.size()) return false;
    // Dimensions must agree in *extent expression*; element types must be
    // assignable.
    for (size_t i = 0; i < ft.dims.size(); ++i) {
      const Type& d1 = *ft.dims[i];
      const Type& d2 = *ff.dims[i];
      if (!expr_equal(*d1.lo, *d2.lo) || !expr_equal(*d1.hi, *d2.hi))
        return false;
    }
    return type_assignable(*ft.elem, *ff.elem);
  }
  return types_equal(to, from);
}

TypeTable::TypeTable() {
  auto make_prim = [&](TypeKind kind, std::string name) {
    auto t = std::make_unique<Type>();
    t->kind = kind;
    t->name = std::move(name);
    storage_.push_back(std::move(t));
    return storage_.back().get();
  };
  int_ = make_prim(TypeKind::Int, "int");
  real_ = make_prim(TypeKind::Real, "real");
  bool_ = make_prim(TypeKind::Bool, "bool");
}

Type* TypeTable::create() {
  storage_.push_back(std::make_unique<Type>());
  return storage_.back().get();
}

const Type* TypeTable::make_subrange(const Expr& lo, const Expr& hi,
                                     std::string name) {
  if (name.empty()) {
    for (const Type* existing : anon_subranges_)
      if (expr_equal(*existing->lo, lo) && expr_equal(*existing->hi, hi)) {
        ++intern_hits_;
        return existing;
      }
  }
  Type* t = create();
  t->kind = TypeKind::Subrange;
  t->name = std::move(name);
  t->lo = lo.clone();
  t->hi = hi.clone();
  if (t->name.empty()) anon_subranges_.push_back(t);
  return t;
}

FlattenedType flatten_type(const Type& t) {
  FlattenedType out;
  const Type* cur = &t;
  while (cur->kind == TypeKind::Array) {
    out.dims.insert(out.dims.end(), cur->dims.begin(), cur->dims.end());
    cur = cur->elem;
  }
  out.elem = cur;
  return out;
}

}  // namespace ps
