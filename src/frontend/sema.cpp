#include "frontend/sema.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>
#include <utility>

#include "support/strings.hpp"

namespace ps {

std::string_view data_class_name(DataClass cls) {
  switch (cls) {
    case DataClass::Input:
      return "input";
    case DataClass::Output:
      return "output";
    case DataClass::Local:
      return "local";
  }
  return "?";
}

std::string SubscriptInfo::display() const {
  switch (kind) {
    case Kind::IndexVar:
      if (offset == 0) return var;
      if (offset < 0) return var + " - " + std::to_string(-offset);
      return var + " + " + std::to_string(offset);
    case Kind::Constant:
      return std::to_string(constant);
    case Kind::UpperBound:
      return expr ? to_string(*expr) : "<upper>";
    case Kind::General:
      return expr ? to_string(*expr) : "<expr>";
  }
  return "?";
}

const DataItem* CheckedModule::find_data(std::string_view name) const {
  for (const auto& d : data)
    if (d.name == name) return &d;
  return nullptr;
}

size_t CheckedModule::data_index(std::string_view name) const {
  for (size_t i = 0; i < data.size(); ++i)
    if (data[i].name == name) return i;
  throw std::out_of_range("no data item named " + std::string(name));
}

const Type* CheckedModule::find_type(std::string_view name) const {
  auto it = named_types.find(name);
  return it == named_types.end() ? nullptr : it->second;
}

namespace {

/// Per-equation scope: index variables introduced by the LHS.
struct EqScope {
  const std::vector<LoopDim>* loop_dims = nullptr;

  [[nodiscard]] const LoopDim* find(std::string_view name) const {
    for (const auto& d : *loop_dims)
      if (d.var == name) return &d;
    return nullptr;
  }
};

class Checker {
 public:
  Checker(DiagnosticEngine& diags, ModuleAst module)
      : diags_(diags), ast_(std::move(module)) {}

  std::optional<CheckedModule> run() {
    out_.name = ast_.name;
    declare_types();
    declare_data();
    compute_bound_deps();
    for (size_t i = 0; i < ast_.equations.size(); ++i)
      check_equation(ast_.equations[i], i);
    check_coverage();
    if (diags_.has_errors()) return std::nullopt;
    out_.ast = std::move(ast_);
    return std::move(out_);
  }

 private:
  // -- declarations ---------------------------------------------------------

  void declare_types() {
    for (const auto& decl : ast_.type_decls) {
      for (const auto& name : decl.names) {
        if (out_.named_types.count(name) != 0U) {
          diags_.error(decl.loc, "duplicate type name '" + name + "'");
          continue;
        }
        const Type* resolved = resolve_type(*decl.type, name);
        if (resolved == nullptr) continue;
        out_.named_types.emplace(name, resolved);
        if (resolved->kind == TypeKind::Enum)
          for (size_t ord = 0; ord < resolved->enumerators.size(); ++ord)
            enum_consts_.emplace(resolved->enumerators[ord],
                                 std::make_pair(resolved, (int64_t)ord));
      }
    }
  }

  /// Resolve a parse-level type expression to a Type owned by the table.
  /// `declared_name` tags the result for display (may be empty).
  const Type* resolve_type(const TypeExprNode& node,
                           const std::string& declared_name = "") {
    switch (node.kind) {
      case TypeExprKind::Int:
        return out_.types.int_type();
      case TypeExprKind::Real:
        return out_.types.real_type();
      case TypeExprKind::Bool:
        return out_.types.bool_type();
      case TypeExprKind::Named: {
        auto it = out_.named_types.find(node.name);
        if (it == out_.named_types.end()) {
          diags_.error(node.loc, "unknown type name '" + node.name + "'");
          return nullptr;
        }
        return it->second;
      }
      case TypeExprKind::Subrange:
        // Anonymous subranges (inline `1 .. maxK` dimension bounds) are
        // interned by the table: structurally equal bounds share one Type.
        return out_.types.make_subrange(*node.lo, *node.hi, declared_name);
      case TypeExprKind::Array: {
        Type* t = out_.types.create();
        t->kind = TypeKind::Array;
        t->name = declared_name;
        for (const auto& dim : node.dims) {
          const Type* d = resolve_type(*dim);
          if (d == nullptr) return nullptr;
          if (d->kind != TypeKind::Subrange) {
            diags_.error(dim->loc,
                         "array dimension must be a subrange, got '" +
                             d->display() + "'");
            return nullptr;
          }
          t->dims.push_back(d);
        }
        t->elem = resolve_type(*node.elem);
        if (t->elem == nullptr) return nullptr;
        return t;
      }
      case TypeExprKind::Record: {
        Type* t = out_.types.create();
        t->kind = TypeKind::Record;
        t->name = declared_name;
        std::set<std::string> seen;
        for (const auto& field : node.fields) {
          if (!seen.insert(field.name).second)
            diags_.error(node.loc,
                         "duplicate record field '" + field.name + "'");
          const Type* ft = resolve_type(*field.type);
          if (ft == nullptr) return nullptr;
          t->fields.emplace_back(field.name, ft);
        }
        return t;
      }
      case TypeExprKind::Enum: {
        Type* t = out_.types.create();
        t->kind = TypeKind::Enum;
        t->name = declared_name;
        t->enumerators = node.enumerators;
        return t;
      }
    }
    return nullptr;
  }

  void declare_data() {
    auto add = [&](const VarDeclAst& decl, DataClass cls) {
      const Type* type = resolve_type(*decl.type);
      for (const auto& name : decl.names) {
        if (out_.named_types.count(name) != 0U) {
          diags_.error(decl.loc, "'" + name +
                                     "' is already a type name; data items "
                                     "and types share one namespace");
          continue;
        }
        if (out_.find_data(name) != nullptr) {
          diags_.error(decl.loc, "duplicate data item '" + name + "'");
          continue;
        }
        if (type == nullptr) continue;
        DataItem item;
        item.name = name;
        item.cls = cls;
        item.type = type;
        item.loc = decl.loc;
        FlattenedType flat = flatten_type(*type);
        item.dims = flat.dims;
        item.elem = flat.elem;
        out_.data.push_back(std::move(item));
      }
    };
    for (const auto& p : ast_.params) add(p, DataClass::Input);
    for (const auto& r : ast_.results) add(r, DataClass::Output);
    for (const auto& l : ast_.locals) add(l, DataClass::Local);
  }

  /// Collect the scalar data items referenced by an expression into `out`.
  void collect_scalar_names(const Expr& e, std::vector<std::string>& out) {
    switch (e.kind) {
      case ExprKind::Name: {
        const auto& n = static_cast<const NameExpr&>(e);
        const DataItem* item = out_.find_data(n.name);
        if (item != nullptr && item->is_scalar() &&
            std::find(out.begin(), out.end(), n.name) == out.end())
          out.push_back(n.name);
        return;
      }
      case ExprKind::Index: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        collect_scalar_names(*ix.base, out);
        for (const auto& s : ix.subs) collect_scalar_names(*s, out);
        return;
      }
      case ExprKind::Field:
        collect_scalar_names(*static_cast<const FieldExpr&>(e).base, out);
        return;
      case ExprKind::Unary:
        collect_scalar_names(*static_cast<const UnaryExpr&>(e).operand, out);
        return;
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        collect_scalar_names(*b.lhs, out);
        collect_scalar_names(*b.rhs, out);
        return;
      }
      case ExprKind::If: {
        const auto& i = static_cast<const IfExpr&>(e);
        collect_scalar_names(*i.cond, out);
        collect_scalar_names(*i.then_expr, out);
        collect_scalar_names(*i.else_expr, out);
        return;
      }
      case ExprKind::Call:
        for (const auto& a : static_cast<const CallExpr&>(e).args)
          collect_scalar_names(*a, out);
        return;
      default:
        return;
    }
  }

  void compute_bound_deps() {
    for (auto& item : out_.data) {
      for (const Type* dim : item.dims) {
        collect_scalar_names(*dim->lo, item.bound_deps);
        collect_scalar_names(*dim->hi, item.bound_deps);
      }
    }
  }

  // -- equations ------------------------------------------------------------

  void check_equation(const EquationAst& eq, size_t index) {
    CheckedEquation ce;
    ce.id = index;
    ce.display_name = "eq." + std::to_string(index + 1);
    ce.loc = eq.loc;

    const DataItem* target = out_.find_data(eq.lhs_name);
    if (target == nullptr) {
      diags_.error(eq.loc, "equation defines unknown data item '" +
                               eq.lhs_name + "'");
      return;
    }
    if (target->cls == DataClass::Input) {
      diags_.error(eq.loc, "equation may not define input parameter '" +
                               eq.lhs_name + "'");
      return;
    }
    ce.target = out_.data_index(eq.lhs_name);

    if (eq.lhs_subs.size() > target->rank()) {
      diags_.error(eq.loc, "'" + eq.lhs_name + "' has " +
                               std::to_string(target->rank()) +
                               " dimension(s) but the left-hand side has " +
                               std::to_string(eq.lhs_subs.size()) +
                               " subscript(s)");
      return;
    }

    // Build LHS subscripts and loop dimensions. An explicit subscript that
    // names a declared subrange type introduces an index variable ranging
    // over that subrange (the paper's A[K,I,J]); any other expression is a
    // fixed slice (the paper's A[1]). Unsubscripted trailing dimensions
    // become implicit index variables named after the dimension's subrange.
    std::set<std::string> used_vars;
    for (size_t p = 0; p < target->rank(); ++p) {
      if (p < eq.lhs_subs.size()) {
        const Expr& sub = *eq.lhs_subs[p];
        if (sub.kind == ExprKind::Name) {
          const auto& name = static_cast<const NameExpr&>(sub).name;
          const Type* named = out_.find_type(name);
          if (named != nullptr) {
            if (named->kind != TypeKind::Subrange) {
              diags_.error(sub.loc, "index variable '" + name +
                                        "' must name a subrange type");
              return;
            }
            if (!used_vars.insert(name).second) {
              diags_.error(sub.loc,
                           "duplicate index variable '" + name + "'");
              return;
            }
            ce.lhs_subs.push_back(LhsSubscript{true, name, nullptr});
            ce.loop_dims.push_back(LoopDim{name, named, p});
            continue;
          }
        }
        // Fixed slice: expression over module scope (no index variables).
        EqScope empty_scope{&kNoLoopDims};
        const Type* sub_type = check_expr(*eq.lhs_subs[p], empty_scope);
        if (sub_type == nullptr) return;
        // Integer expressions index directly; real-valued fixed
        // subscripts are admitted too and truncated at runtime through
        // the engines' shared defined conversion (bc_double_to_int64),
        // so all three tiers land on the same cell.
        if (sub_type->scalar_kind() != TypeKind::Int &&
            sub_type->scalar_kind() != TypeKind::Real) {
          diags_.error(sub.loc, "fixed subscript must be an integer or real");
          return;
        }
        ce.lhs_subs.push_back(LhsSubscript{false, "", &sub});
        collect_scalar_names(sub, ce.scalar_refs);
      } else {
        // Implicit dimension.
        const Type* dim = target->dims[p];
        std::string var = dim->name;
        if (var.empty() || used_vars.count(var) != 0U)
          var = "_i" + std::to_string(p + 1);
        if (used_vars.count(var) != 0U) {
          diags_.error(eq.loc, "cannot synthesise index variable for "
                               "dimension " + std::to_string(p + 1));
          return;
        }
        used_vars.insert(var);
        ce.lhs_subs.push_back(LhsSubscript{true, var, nullptr});
        ce.loop_dims.push_back(LoopDim{var, dim, p});
      }
    }

    // Elaborate a private copy of the RHS, then type check it.
    ce.rhs = eq.rhs->clone();
    EqScope scope{&ce.loop_dims};
    if (!elaborate(ce.rhs, scope)) return;
    const Type* rhs_type = check_expr(*ce.rhs, scope);
    if (rhs_type == nullptr) return;
    if (!type_assignable(*target->elem, *rhs_type)) {
      diags_.error(eq.loc, "equation for '" + eq.lhs_name +
                               "' has element type '" +
                               target->elem->display() +
                               "' but right-hand side is '" +
                               rhs_type->display() + "'");
      return;
    }

    collect_refs(*ce.rhs, scope, ce);
    collect_scalar_names(*ce.rhs, ce.scalar_refs);
    out_.equations.push_back(std::move(ce));
  }

  /// Make implicit trailing dimensions of data references explicit by
  /// appending the equation's trailing loop variables, e.g. rewriting
  /// `newA = A[maxK]` into `newA[I,J] = A[maxK,I,J]`.
  bool elaborate(ExprPtr& e, const EqScope& scope) {
    switch (e->kind) {
      case ExprKind::IntLit:
      case ExprKind::RealLit:
      case ExprKind::BoolLit:
        return true;
      case ExprKind::Name: {
        const auto& name = static_cast<const NameExpr&>(*e).name;
        if (scope.find(name) != nullptr) return true;
        const DataItem* item = out_.find_data(name);
        if (item != nullptr && item->rank() > 0)
          return append_implicit(e, *item, 0, scope);
        return true;
      }
      case ExprKind::Index: {
        auto& ix = static_cast<IndexExpr&>(*e);
        for (auto& sub : ix.subs)
          if (!elaborate(sub, scope)) return false;
        if (ix.base->kind == ExprKind::Name) {
          const auto& name = static_cast<const NameExpr&>(*ix.base).name;
          const DataItem* item = out_.find_data(name);
          if (item != nullptr && ix.subs.size() < item->rank())
            return append_implicit(e, *item, ix.subs.size(), scope);
          return true;
        }
        return elaborate(ix.base, scope);
      }
      case ExprKind::Field:
        return elaborate(static_cast<FieldExpr&>(*e).base, scope);
      case ExprKind::Unary:
        return elaborate(static_cast<UnaryExpr&>(*e).operand, scope);
      case ExprKind::Binary: {
        auto& b = static_cast<BinaryExpr&>(*e);
        return elaborate(b.lhs, scope) && elaborate(b.rhs, scope);
      }
      case ExprKind::If: {
        auto& i = static_cast<IfExpr&>(*e);
        return elaborate(i.cond, scope) && elaborate(i.then_expr, scope) &&
               elaborate(i.else_expr, scope);
      }
      case ExprKind::Call: {
        auto& c = static_cast<CallExpr&>(*e);
        for (auto& a : c.args)
          if (!elaborate(a, scope)) return false;
        return true;
      }
    }
    return true;
  }

  /// Append loop variables for the unsubscripted trailing dimensions of a
  /// reference to `item` that currently has `given` explicit subscripts.
  bool append_implicit(ExprPtr& e, const DataItem& item, size_t given,
                       const EqScope& scope) {
    size_t needed = item.rank() - given;
    const auto& dims = *scope.loop_dims;
    if (dims.size() < needed) {
      diags_.error(e->loc,
                   "reference to '" + item.name + "' needs " +
                       std::to_string(needed) +
                       " implicit subscript(s) but the equation has only " +
                       std::to_string(dims.size()) + " loop dimension(s)");
      return false;
    }
    std::vector<ExprPtr> subs;
    if (e->kind == ExprKind::Index)
      subs = std::move(static_cast<IndexExpr&>(*e).subs);
    ExprPtr base = e->kind == ExprKind::Index
                       ? std::move(static_cast<IndexExpr&>(*e).base)
                       : std::move(e);
    SourceLoc loc = base->loc;
    for (size_t i = dims.size() - needed; i < dims.size(); ++i)
      subs.push_back(std::make_unique<NameExpr>(dims[i].var, loc));
    e = std::make_unique<IndexExpr>(std::move(base), std::move(subs), loc);
    return true;
  }

  // -- subscript classification (Figure 2) ----------------------------------

  SubscriptInfo classify_subscript(const Expr& sub, const Type& dim,
                                   const EqScope& scope) {
    SubscriptInfo info;
    info.expr = &sub;
    // "I" form.
    if (sub.kind == ExprKind::Name) {
      const auto& name = static_cast<const NameExpr&>(sub).name;
      if (scope.find(name) != nullptr) {
        info.kind = SubscriptInfo::Kind::IndexVar;
        info.var = name;
        return info;
      }
    }
    // "I +- constant" form.
    if (sub.kind == ExprKind::Binary) {
      const auto& b = static_cast<const BinaryExpr&>(sub);
      if (b.op == BinaryOp::Add || b.op == BinaryOp::Sub) {
        const Expr* var_side = nullptr;
        const Expr* lit_side = nullptr;
        if (b.lhs->kind == ExprKind::Name && b.rhs->kind == ExprKind::IntLit) {
          var_side = b.lhs.get();
          lit_side = b.rhs.get();
        } else if (b.op == BinaryOp::Add && b.lhs->kind == ExprKind::IntLit &&
                   b.rhs->kind == ExprKind::Name) {
          var_side = b.rhs.get();
          lit_side = b.lhs.get();
        }
        if (var_side != nullptr) {
          const auto& name = static_cast<const NameExpr&>(*var_side).name;
          if (scope.find(name) != nullptr) {
            int64_t c = static_cast<const IntLitExpr&>(*lit_side).value;
            info.kind = SubscriptInfo::Kind::IndexVar;
            info.var = name;
            info.offset = b.op == BinaryOp::Sub ? -c : c;
            return info;
          }
        }
      }
    }
    // Upper-bound form "N" (paper section 3.4, form 2).
    if (dim.hi != nullptr && expr_equal(sub, *dim.hi)) {
      info.kind = SubscriptInfo::Kind::UpperBound;
      return info;
    }
    if (sub.kind == ExprKind::IntLit) {
      info.kind = SubscriptInfo::Kind::Constant;
      info.constant = static_cast<const IntLitExpr&>(sub).value;
      return info;
    }
    info.kind = SubscriptInfo::Kind::General;
    return info;
  }

  void collect_refs(const Expr& e, const EqScope& scope, CheckedEquation& ce) {
    switch (e.kind) {
      case ExprKind::Index: {
        const auto& ix = static_cast<const IndexExpr&>(e);
        if (ix.base->kind == ExprKind::Name) {
          const auto& name = static_cast<const NameExpr&>(*ix.base).name;
          const DataItem* item = out_.find_data(name);
          if (item != nullptr && item->rank() == ix.subs.size()) {
            ArrayRefInfo ref;
            ref.array = name;
            ref.expr = &ix;
            for (size_t p = 0; p < ix.subs.size(); ++p)
              ref.subs.push_back(
                  classify_subscript(*ix.subs[p], *item->dims[p], scope));
            ce.array_refs.push_back(std::move(ref));
          }
        }
        for (const auto& s : ix.subs) collect_refs(*s, scope, ce);
        return;
      }
      case ExprKind::Field:
        collect_refs(*static_cast<const FieldExpr&>(e).base, scope, ce);
        return;
      case ExprKind::Unary:
        collect_refs(*static_cast<const UnaryExpr&>(e).operand, scope, ce);
        return;
      case ExprKind::Binary: {
        const auto& b = static_cast<const BinaryExpr&>(e);
        collect_refs(*b.lhs, scope, ce);
        collect_refs(*b.rhs, scope, ce);
        return;
      }
      case ExprKind::If: {
        const auto& i = static_cast<const IfExpr&>(e);
        collect_refs(*i.cond, scope, ce);
        collect_refs(*i.then_expr, scope, ce);
        collect_refs(*i.else_expr, scope, ce);
        return;
      }
      case ExprKind::Call:
        for (const auto& a : static_cast<const CallExpr&>(e).args)
          collect_refs(*a, scope, ce);
        return;
      default:
        return;
    }
  }

  // -- type checking ---------------------------------------------------------

  const Type* check_expr(Expr& e, const EqScope& scope) {
    const Type* t = check_expr_impl(e, scope);
    e.type = t;
    return t;
  }

  const Type* check_expr_impl(Expr& e, const EqScope& scope) {
    switch (e.kind) {
      case ExprKind::IntLit:
        return out_.types.int_type();
      case ExprKind::RealLit:
        return out_.types.real_type();
      case ExprKind::BoolLit:
        return out_.types.bool_type();
      case ExprKind::Name: {
        const auto& name = static_cast<const NameExpr&>(e).name;
        if (const LoopDim* dim = scope.find(name)) return dim->range;
        if (const DataItem* item = out_.find_data(name)) return item->type;
        auto ec = enum_consts_.find(name);
        if (ec != enum_consts_.end()) return ec->second.first;
        diags_.error(e.loc, "unknown name '" + name + "'");
        return nullptr;
      }
      case ExprKind::Index: {
        auto& ix = static_cast<IndexExpr&>(e);
        const Type* base_type = check_expr(*ix.base, scope);
        if (base_type == nullptr) return nullptr;
        if (base_type->kind != TypeKind::Array) {
          diags_.error(e.loc, "subscripted value is not an array");
          return nullptr;
        }
        FlattenedType flat = flatten_type(*base_type);
        if (ix.subs.size() != flat.dims.size()) {
          diags_.error(e.loc, "expected " + std::to_string(flat.dims.size()) +
                                  " subscript(s), found " +
                                  std::to_string(ix.subs.size()));
          return nullptr;
        }
        for (auto& sub : ix.subs) {
          const Type* st = check_expr(*sub, scope);
          if (st == nullptr) return nullptr;
          if (st->scalar_kind() != TypeKind::Int) {
            diags_.error(sub->loc, "subscript must be an integer");
            return nullptr;
          }
        }
        return flat.elem;
      }
      case ExprKind::Field: {
        auto& f = static_cast<FieldExpr&>(e);
        const Type* base_type = check_expr(*f.base, scope);
        if (base_type == nullptr) return nullptr;
        if (base_type->kind != TypeKind::Record) {
          diags_.error(e.loc, "'.' applied to non-record value");
          return nullptr;
        }
        for (const auto& [fname, ftype] : base_type->fields)
          if (fname == f.field) return ftype;
        diags_.error(e.loc, "record has no field '" + f.field + "'");
        return nullptr;
      }
      case ExprKind::Unary: {
        auto& u = static_cast<UnaryExpr&>(e);
        const Type* ot = check_expr(*u.operand, scope);
        if (ot == nullptr) return nullptr;
        if (u.op == UnaryOp::Neg) {
          if (!ot->is_numeric()) {
            diags_.error(e.loc, "'-' applied to non-numeric value");
            return nullptr;
          }
          return ot->scalar_kind() == TypeKind::Int ? out_.types.int_type()
                                                    : out_.types.real_type();
        }
        if (ot->kind != TypeKind::Bool) {
          diags_.error(e.loc, "'not' applied to non-boolean value");
          return nullptr;
        }
        return out_.types.bool_type();
      }
      case ExprKind::Binary:
        return check_binary(static_cast<BinaryExpr&>(e), scope);
      case ExprKind::If: {
        auto& i = static_cast<IfExpr&>(e);
        const Type* ct = check_expr(*i.cond, scope);
        const Type* tt = check_expr(*i.then_expr, scope);
        const Type* et = check_expr(*i.else_expr, scope);
        if (ct == nullptr || tt == nullptr || et == nullptr) return nullptr;
        if (ct->kind != TypeKind::Bool) {
          diags_.error(i.cond->loc, "if condition must be boolean");
          return nullptr;
        }
        if (type_assignable(*tt, *et)) return widen(tt, et);
        if (type_assignable(*et, *tt)) return widen(tt, et);
        diags_.error(e.loc, "if branches have incompatible types '" +
                                tt->display() + "' and '" + et->display() +
                                "'");
        return nullptr;
      }
      case ExprKind::Call:
        return check_call(static_cast<CallExpr&>(e), scope);
    }
    return nullptr;
  }

  const Type* widen(const Type* a, const Type* b) {
    if (a->scalar_kind() == TypeKind::Real || b->scalar_kind() == TypeKind::Real)
      return out_.types.real_type();
    if (a->scalar_kind() == TypeKind::Int) return out_.types.int_type();
    return a;
  }

  const Type* check_binary(BinaryExpr& b, const EqScope& scope) {
    const Type* lt = check_expr(*b.lhs, scope);
    const Type* rt = check_expr(*b.rhs, scope);
    if (lt == nullptr || rt == nullptr) return nullptr;
    switch (b.op) {
      case BinaryOp::Add:
      case BinaryOp::Sub:
      case BinaryOp::Mul: {
        if (!lt->is_numeric() || !rt->is_numeric()) {
          diags_.error(b.loc, "arithmetic on non-numeric operands");
          return nullptr;
        }
        return widen(lt, rt);
      }
      case BinaryOp::Div: {
        if (!lt->is_numeric() || !rt->is_numeric()) {
          diags_.error(b.loc, "'/' on non-numeric operands");
          return nullptr;
        }
        return out_.types.real_type();
      }
      case BinaryOp::IntDiv:
      case BinaryOp::Mod: {
        if (lt->scalar_kind() != TypeKind::Int ||
            rt->scalar_kind() != TypeKind::Int) {
          diags_.error(b.loc, "'div'/'mod' require integer operands");
          return nullptr;
        }
        return out_.types.int_type();
      }
      case BinaryOp::Eq:
      case BinaryOp::Ne:
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge: {
        bool ok = (lt->is_numeric() && rt->is_numeric()) ||
                  (lt->kind == TypeKind::Bool && rt->kind == TypeKind::Bool) ||
                  (lt->kind == TypeKind::Enum && types_equal(*lt, *rt));
        if (!ok) {
          diags_.error(b.loc, "incomparable operands '" + lt->display() +
                                  "' and '" + rt->display() + "'");
          return nullptr;
        }
        return out_.types.bool_type();
      }
      case BinaryOp::And:
      case BinaryOp::Or: {
        if (lt->kind != TypeKind::Bool || rt->kind != TypeKind::Bool) {
          diags_.error(b.loc, "'and'/'or' require boolean operands");
          return nullptr;
        }
        return out_.types.bool_type();
      }
    }
    return nullptr;
  }

  const Type* check_call(CallExpr& c, const EqScope& scope) {
    std::string name = to_lower(c.callee);
    struct Intrinsic {
      std::string_view name;
      size_t arity;
      enum { Numeric, Real, Int } result;
    };
    static constexpr Intrinsic kIntrinsics[] = {
        {"abs", 1, Intrinsic::Numeric}, {"min", 2, Intrinsic::Numeric},
        {"max", 2, Intrinsic::Numeric}, {"sqrt", 1, Intrinsic::Real},
        {"sin", 1, Intrinsic::Real},    {"cos", 1, Intrinsic::Real},
        {"exp", 1, Intrinsic::Real},    {"ln", 1, Intrinsic::Real},
        {"floor", 1, Intrinsic::Int},   {"ceil", 1, Intrinsic::Int},
    };
    for (const auto& intr : kIntrinsics) {
      if (name != intr.name) continue;
      if (c.args.size() != intr.arity) {
        diags_.error(c.loc, "'" + c.callee + "' expects " +
                                std::to_string(intr.arity) + " argument(s)");
        return nullptr;
      }
      const Type* widest = out_.types.int_type();
      for (auto& arg : c.args) {
        const Type* at = check_expr(*arg, scope);
        if (at == nullptr) return nullptr;
        if (!at->is_numeric()) {
          diags_.error(arg->loc, "'" + c.callee + "' requires numeric "
                                 "arguments");
          return nullptr;
        }
        widest = widen(widest, at);
      }
      switch (intr.result) {
        case Intrinsic::Numeric:
          return widest;
        case Intrinsic::Real:
          return out_.types.real_type();
        case Intrinsic::Int:
          return out_.types.int_type();
      }
    }
    diags_.error(c.loc, "unknown intrinsic '" + c.callee + "'");
    return nullptr;
  }

  // -- completeness -----------------------------------------------------------

  void check_coverage() {
    for (const auto& item : out_.data) {
      if (item.cls == DataClass::Input) continue;
      bool defined = false;
      for (const auto& eq : out_.equations)
        if (out_.data[eq.target].name == item.name) defined = true;
      if (!defined)
        diags_.error(item.loc, std::string(data_class_name(item.cls)) + " '" +
                                   item.name + "' has no defining equation");
    }
  }

  static const std::vector<LoopDim> kNoLoopDims;

  DiagnosticEngine& diags_;
  ModuleAst ast_;
  CheckedModule out_;
  std::map<std::string, std::pair<const Type*, int64_t>, std::less<>>
      enum_consts_;
};

const std::vector<LoopDim> Checker::kNoLoopDims{};

}  // namespace

std::optional<CheckedModule> Sema::check(ModuleAst module) {
  Checker checker(diags_, std::move(module));
  return checker.run();
}

}  // namespace ps
