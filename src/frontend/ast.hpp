#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/source_location.hpp"

namespace ps {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  IntLit,
  RealLit,
  BoolLit,
  Name,
  Index,   // base[sub, ...]
  Field,   // base.field
  Unary,
  Binary,
  If,
  Call,
};

enum class UnaryOp { Neg, Not };

enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,     // '/' -- real division
  IntDiv,  // 'div'
  Mod,     // 'mod'
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base class of all PS expression nodes. Nodes are immutable after
/// construction except for the `type` annotation filled in by sema
/// (an opaque pointer into the module's TypeTable).
struct Expr {
  explicit Expr(ExprKind k, SourceLoc l = {}) : kind(k), loc(l) {}
  virtual ~Expr() = default;

  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  /// Deep copy. Type annotations are not copied; re-run sema on clones.
  [[nodiscard]] virtual ExprPtr clone() const = 0;

  ExprKind kind;
  SourceLoc loc;
  const struct Type* type = nullptr;  // filled by sema
};

struct IntLitExpr final : Expr {
  explicit IntLitExpr(int64_t v, SourceLoc l = {})
      : Expr(ExprKind::IntLit, l), value(v) {}
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<IntLitExpr>(value, loc);
  }
  int64_t value;
};

struct RealLitExpr final : Expr {
  explicit RealLitExpr(double v, SourceLoc l = {})
      : Expr(ExprKind::RealLit, l), value(v) {}
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<RealLitExpr>(value, loc);
  }
  double value;
};

struct BoolLitExpr final : Expr {
  explicit BoolLitExpr(bool v, SourceLoc l = {})
      : Expr(ExprKind::BoolLit, l), value(v) {}
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<BoolLitExpr>(value, loc);
  }
  bool value;
};

/// An identifier use: module parameter, local, result, equation index
/// variable, or enumeration constant -- disambiguated by sema.
struct NameExpr final : Expr {
  explicit NameExpr(std::string n, SourceLoc l = {})
      : Expr(ExprKind::Name, l), name(std::move(n)) {}
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<NameExpr>(name, loc);
  }
  std::string name;
};

/// A subscripted reference `base[s1, ..., sk]`. `base` is a NameExpr in
/// well-formed programs; subscript count may be smaller than the array
/// rank (remaining dimensions are implicit, elaborated by sema).
struct IndexExpr final : Expr {
  IndexExpr(ExprPtr b, std::vector<ExprPtr> s, SourceLoc l = {})
      : Expr(ExprKind::Index, l), base(std::move(b)), subs(std::move(s)) {}
  [[nodiscard]] ExprPtr clone() const override;
  ExprPtr base;
  std::vector<ExprPtr> subs;
};

struct FieldExpr final : Expr {
  FieldExpr(ExprPtr b, std::string f, SourceLoc l = {})
      : Expr(ExprKind::Field, l), base(std::move(b)), field(std::move(f)) {}
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<FieldExpr>(base->clone(), field, loc);
  }
  ExprPtr base;
  std::string field;
};

struct UnaryExpr final : Expr {
  UnaryExpr(UnaryOp o, ExprPtr e, SourceLoc l = {})
      : Expr(ExprKind::Unary, l), op(o), operand(std::move(e)) {}
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<UnaryExpr>(op, operand->clone(), loc);
  }
  UnaryOp op;
  ExprPtr operand;
};

struct BinaryExpr final : Expr {
  BinaryExpr(BinaryOp o, ExprPtr a, ExprPtr b, SourceLoc l = {})
      : Expr(ExprKind::Binary, l), op(o), lhs(std::move(a)), rhs(std::move(b)) {}
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<BinaryExpr>(op, lhs->clone(), rhs->clone(), loc);
  }
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct IfExpr final : Expr {
  IfExpr(ExprPtr c, ExprPtr t, ExprPtr e, SourceLoc l = {})
      : Expr(ExprKind::If, l),
        cond(std::move(c)),
        then_expr(std::move(t)),
        else_expr(std::move(e)) {}
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<IfExpr>(cond->clone(), then_expr->clone(),
                                    else_expr->clone(), loc);
  }
  ExprPtr cond;
  ExprPtr then_expr;
  ExprPtr else_expr;
};

/// Intrinsic function application (abs, min, max, sqrt, ...).
struct CallExpr final : Expr {
  CallExpr(std::string c, std::vector<ExprPtr> a, SourceLoc l = {})
      : Expr(ExprKind::Call, l), callee(std::move(c)), args(std::move(a)) {}
  [[nodiscard]] ExprPtr clone() const override;
  std::string callee;
  std::vector<ExprPtr> args;
};

/// Render an expression back to PS surface syntax (for diagnostics,
/// golden tests and the C emitter's comments).
[[nodiscard]] std::string to_string(const Expr& e);

/// Structural equality, ignoring source locations and type annotations.
[[nodiscard]] bool expr_equal(const Expr& a, const Expr& b);

[[nodiscard]] std::string_view unary_op_name(UnaryOp op);
[[nodiscard]] std::string_view binary_op_name(BinaryOp op);

// ---------------------------------------------------------------------------
// Type expressions (parse-level, resolved by sema)
// ---------------------------------------------------------------------------

enum class TypeExprKind { Named, Int, Real, Bool, Subrange, Array, Record, Enum };

struct TypeExprNode;
using TypeExprPtr = std::unique_ptr<TypeExprNode>;

struct TypeExprField {
  std::string name;
  TypeExprPtr type;
};

struct TypeExprNode {
  TypeExprKind kind = TypeExprKind::Named;
  SourceLoc loc;
  std::string name;                  // Named
  ExprPtr lo, hi;                    // Subrange
  std::vector<TypeExprPtr> dims;     // Array index types
  TypeExprPtr elem;                  // Array element type
  std::vector<TypeExprField> fields; // Record
  std::vector<std::string> enumerators;  // Enum

  [[nodiscard]] TypeExprPtr clone() const;
};

[[nodiscard]] std::string to_string(const TypeExprNode& t);

// ---------------------------------------------------------------------------
// Declarations and module
// ---------------------------------------------------------------------------

struct TypeDeclAst {
  std::vector<std::string> names;  // "I, J = 0 .. M+1" declares two types
  TypeExprPtr type;
  SourceLoc loc;
};

struct VarDeclAst {
  std::vector<std::string> names;
  TypeExprPtr type;
  SourceLoc loc;
};

/// One defining equation: `lhs_name[lhs_subs] = rhs;`.
struct EquationAst {
  std::string lhs_name;
  std::vector<ExprPtr> lhs_subs;
  ExprPtr rhs;
  SourceLoc loc;
};

/// A PS module: functional unit with parameters, results, declarations
/// and a define-section of unordered equations (paper section 2).
struct ModuleAst {
  std::string name;
  std::vector<VarDeclAst> params;
  std::vector<VarDeclAst> results;
  std::vector<TypeDeclAst> type_decls;
  std::vector<VarDeclAst> locals;
  std::vector<EquationAst> equations;
  SourceLoc loc;
};

/// A parsed compilation unit (one or more modules).
struct ProgramAst {
  std::vector<ModuleAst> modules;
};

/// Render a module back to PS surface syntax. Re-parsing the output
/// yields a structurally identical module (round-trip tested).
[[nodiscard]] std::string to_source(const ModuleAst& m);

}  // namespace ps
