#pragma once

#include <string_view>
#include <vector>

#include "frontend/token.hpp"
#include "support/diagnostics.hpp"

namespace ps {

/// Hand-written lexer for PS.
///
/// Comments are Pascal-style `(* ... *)` and nest; compiler pragmas such
/// as `(*$m+v+x+t-*)` (Figure 1 of the paper) are treated as comments.
/// Keywords are matched case-insensitively.
class Lexer {
 public:
  Lexer(std::string_view source, DiagnosticEngine& diags);

  /// Lex the next token; returns EndOfFile forever once exhausted.
  Token next();

  /// Lex the entire buffer (convenience for tests).
  std::vector<Token> lex_all();

 private:
  [[nodiscard]] char peek(size_t ahead = 0) const;
  char advance();
  [[nodiscard]] bool at_end() const { return pos_ >= source_.size(); }
  [[nodiscard]] SourceLoc here() const;
  void skip_trivia();

  Token lex_number(SourceLoc start);
  Token lex_identifier(SourceLoc start);

  std::string_view source_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
  uint32_t line_ = 1;
  uint32_t column_ = 1;
};

}  // namespace ps
