#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "frontend/ast.hpp"

namespace ps {

enum class TypeKind { Int, Real, Bool, Subrange, Array, Record, Enum };

/// A resolved PS type. Types are owned by a TypeTable and referred to by
/// raw pointer everywhere else; pointer identity is not significant
/// (structural equality via `types_equal`).
struct Type {
  TypeKind kind = TypeKind::Int;
  std::string name;  // declared name; empty for anonymous types

  // Subrange: bounds are expressions over module parameters/constants
  // (e.g. 0 .. M+1). `base` is the underlying scalar type (always Int in
  // this implementation).
  ExprPtr lo;
  ExprPtr hi;

  // Array.
  std::vector<const Type*> dims;  // each a Subrange
  const Type* elem = nullptr;

  // Record.
  std::vector<std::pair<std::string, const Type*>> fields;

  // Enum.
  std::vector<std::string> enumerators;

  [[nodiscard]] bool is_scalar() const {
    return kind == TypeKind::Int || kind == TypeKind::Real ||
           kind == TypeKind::Bool || kind == TypeKind::Subrange ||
           kind == TypeKind::Enum;
  }
  [[nodiscard]] bool is_numeric() const {
    return kind == TypeKind::Int || kind == TypeKind::Real ||
           kind == TypeKind::Subrange;
  }
  /// The scalar kind after collapsing subranges to Int.
  [[nodiscard]] TypeKind scalar_kind() const {
    return kind == TypeKind::Subrange ? TypeKind::Int : kind;
  }

  [[nodiscard]] std::string display() const;
};

/// Structural equality: subranges compare their bound expressions,
/// arrays their dimensions and element types, records their fields.
[[nodiscard]] bool types_equal(const Type& a, const Type& b);

/// True when a value of `from` may appear where `to` is expected
/// (equality modulo subrange-to-int collapse, plus int -> real widening).
[[nodiscard]] bool type_assignable(const Type& to, const Type& from);

/// Owns all Type instances for one checked module.
class TypeTable {
 public:
  TypeTable();

  const Type* int_type() const { return int_; }
  const Type* real_type() const { return real_; }
  const Type* bool_type() const { return bool_; }

  /// Create a fresh type owned by this table.
  Type* create();

  /// Create an anonymous subrange lo .. hi (expressions are cloned).
  /// Anonymous subranges are interned: a structurally equal anonymous
  /// subrange created earlier is returned instead of a fresh one, so
  /// the table stays small when sema elaborates the same implicit
  /// dimension many times. Named subranges are always fresh (the name
  /// participates in display()).
  const Type* make_subrange(const Expr& lo, const Expr& hi,
                            std::string name = "");

  [[nodiscard]] size_t size() const { return storage_.size(); }

  /// How many make_subrange calls were satisfied from the intern list.
  [[nodiscard]] size_t subrange_intern_hits() const { return intern_hits_; }

 private:
  std::vector<std::unique_ptr<Type>> storage_;
  std::vector<const Type*> anon_subranges_;  // intern list
  size_t intern_hits_ = 0;
  const Type* int_ = nullptr;
  const Type* real_ = nullptr;
  const Type* bool_ = nullptr;
};

/// Flatten nested arrays: `array [K] of array [I, J] of real` has
/// flattened dimensions (K, I, J) and scalar element `real`.
struct FlattenedType {
  std::vector<const Type*> dims;  // subranges, outermost first
  const Type* elem = nullptr;     // scalar (or record) element type
};
[[nodiscard]] FlattenedType flatten_type(const Type& t);

}  // namespace ps
