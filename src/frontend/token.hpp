#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source_location.hpp"

namespace ps {

enum class TokenKind {
  EndOfFile,
  Identifier,
  IntLiteral,
  RealLiteral,
  // Keywords (PS keywords are case-insensitive, like Pascal's).
  KwModule,
  KwType,
  KwVar,
  KwDefine,
  KwEnd,
  KwArray,
  KwOf,
  KwRecord,
  KwIf,
  KwThen,
  KwElse,
  KwOr,
  KwAnd,
  KwNot,
  KwDiv,
  KwMod,
  KwInt,
  KwReal,
  KwBool,
  KwTrue,
  KwFalse,
  // Punctuation and operators.
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  Dot,
  DotDot,
  Equal,
  NotEqual,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  Plus,
  Minus,
  Star,
  Slash,
  Error,
};

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;       // identifier spelling / literal text
  int64_t int_value = 0;  // IntLiteral
  double real_value = 0;  // RealLiteral
  SourceLoc loc;

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
};

[[nodiscard]] std::string_view token_kind_name(TokenKind kind);

}  // namespace ps
