#pragma once

#include <string_view>

#include "support/token_base.hpp"

namespace ps {

enum class TokenKind {
  EndOfFile,
  Identifier,
  IntLiteral,
  RealLiteral,
  // Keywords (PS keywords are case-insensitive, like Pascal's).
  KwModule,
  KwType,
  KwVar,
  KwDefine,
  KwEnd,
  KwArray,
  KwOf,
  KwRecord,
  KwIf,
  KwThen,
  KwElse,
  KwOr,
  KwAnd,
  KwNot,
  KwDiv,
  KwMod,
  KwInt,
  KwReal,
  KwBool,
  KwTrue,
  KwFalse,
  // Punctuation and operators.
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  Dot,
  DotDot,
  Equal,
  NotEqual,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  Plus,
  Minus,
  Star,
  Slash,
  Error,
};

using Token = BasicToken<TokenKind>;

[[nodiscard]] std::string_view token_kind_name(TokenKind kind);

}  // namespace ps
