#pragma once

#include <optional>
#include <string_view>

#include "frontend/ast.hpp"
#include "frontend/lexer.hpp"
#include "support/diagnostics.hpp"

namespace ps {

/// Recursive-descent parser for PS modules.
///
/// Grammar (reconstructed from section 2 and Figure 1 of the paper):
///
///   program    := module+
///   module     := IDENT ':' 'module' '(' decls ')' ':' '[' decls ']' ';'
///                 ['type' typedecl+] ['var' vardecl+]
///                 'define' equation+ 'end' IDENT ';'
///   decls      := decl (';' decl)*
///   decl       := IDENT (',' IDENT)* ':' typeexpr
///   typedecl   := IDENT (',' IDENT)* '=' typeexpr ';'
///   vardecl    := decl ';'
///   typeexpr   := 'int' | 'real' | 'bool' | IDENT
///               | addexpr '..' addexpr
///               | 'array' '[' typeexpr (',' typeexpr)* ']' 'of' typeexpr
///               | 'record' (decl ';')+ 'end'
///               | '(' IDENT (',' IDENT)* ')'
///   equation   := IDENT ['[' expr (',' expr)* ']'] '=' expr ';'
///   expr       := 'if' expr 'then' expr 'else' expr | orexpr
///   orexpr     := andexpr ('or' andexpr)*
///   andexpr    := relexpr ('and' relexpr)*
///   relexpr    := addexpr [('='|'<>'|'<'|'<='|'>'|'>=') addexpr]
///   addexpr    := mulexpr (('+'|'-') mulexpr)*
///   mulexpr    := unary (('*'|'/'|'div'|'mod') unary)*
///   unary      := ('-'|'not') unary | postfix
///   postfix    := primary ('[' expr (',' expr)* ']' | '.' IDENT)*
///   primary    := NUMBER | 'true' | 'false' | IDENT
///               | IDENT '(' expr (',' expr)* ')'   -- intrinsic call
///               | '(' expr ')'
///
/// The parser recovers at ';' boundaries so several errors can be
/// reported from one run.
class Parser {
 public:
  Parser(std::string_view source, DiagnosticEngine& diags);

  /// Parse an entire compilation unit. Returns the (possibly partial)
  /// AST; check `diags.has_errors()` for success.
  ProgramAst parse_program();

  /// Parse exactly one module.
  std::optional<ModuleAst> parse_module();

  /// Parse a standalone expression (used by tests and tools).
  ExprPtr parse_expression_only();

 private:
  const Token& cur() const { return tok_; }
  void bump();
  bool at(TokenKind kind) const { return tok_.kind == kind; }
  bool accept(TokenKind kind);
  bool expect(TokenKind kind, std::string_view context);
  void sync_to_semicolon();

  std::vector<VarDeclAst> parse_decl_list(TokenKind terminator);
  std::optional<VarDeclAst> parse_decl();
  TypeExprPtr parse_type_expr();
  std::optional<TypeDeclAst> parse_type_decl();
  std::optional<EquationAst> parse_equation();

  ExprPtr parse_expr();
  ExprPtr parse_or();
  ExprPtr parse_and();
  ExprPtr parse_rel();
  ExprPtr parse_add();
  ExprPtr parse_mul();
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();

  Lexer lexer_;
  DiagnosticEngine& diags_;
  Token tok_;
};

}  // namespace ps
