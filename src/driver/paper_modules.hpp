#pragma once

#include <vector>

namespace ps {

/// The paper's Figure 1: the Jacobi-style relaxation module (Equation 1
/// -- every element value is taken from the previous iteration).
/// Scheduling it reproduces Figures 5 and 6.
extern const char* const kRelaxationSource;

/// Section 4's revised module (Equation 2, Gauss-Seidel-style: the J-1
/// and I-1 neighbours come from the current iteration). Scheduling it
/// reproduces Figure 7; the hyperplane transform recovers the parallel
/// schedule of Figure 6.
extern const char* const kGaussSeidelSource;

/// A 1-D heat-diffusion module used by the examples and tests: same
/// structure as Figure 1 one dimension down.
extern const char* const kHeat1dSource;

/// A chain of element-wise array equations over the same subranges; the
/// loop-fusion pass collapses its four DOALL nests into one.
extern const char* const kPointwiseChainSource;

/// One named module of the paper corpus.
struct PaperModule {
  const char* name;    // short display name ("jacobi", "gauss-seidel"...)
  const char* source;  // PS source text
};

/// Every built-in paper module, in a fixed order -- the corpus the batch
/// driver compiles in one invocation (psc --corpus) and the workload of
/// the batch-compilation bench and the differential test harness.
[[nodiscard]] const std::vector<PaperModule>& paper_corpus();

}  // namespace ps
