// psc: command-line front end for the PS compiler reproduction.
//
// Usage:
//   psc [options] <file.ps | file.eqn | -> [more files...]
//     --schedule        print the flowchart (default)
//     --components      print the MSCC table (paper Figure 5)
//     --graph           print the dependency-graph inventory
//     --dot             print the dependency graph as Graphviz DOT
//     --c               print the generated C code
//     --source          print the pretty-printed PS source
//     --hyperplane      apply the section-4 restructuring and report both
//     --merge           run the loop-fusion pass
//     --no-windows      disable virtual-dimension windowing in codegen
//     --passes          list the pipeline stages for the given options
//     --time-passes     print per-stage wall time after compiling
//     --verbose         report the runtime engine per module: whether the
//                       bytecode VM covers it (or why it would fall back
//                       to the tree walk), program sizes, folded/fused
//                       instruction counts and the dispatch mode; for
//                       hyperplane-transformed modules also the wavefront
//                       execution backend in effect
//     --wavefront-backend=K  execution backend of the wavefront runtime
//                       for transformed modules: auto (default), sequential,
//                       pooled (chunk self-scheduling on the worker pool),
//                       sharded (static point striping with per-worker
//                       contexts) or stealing (per-worker chunk deques with
//                       work stealing for irregular hyperplanes); reported
//                       by --verbose
//     --shards=N        worker count of the sharded/stealing backends
//                       (default: the pool size). Must be 1..8x the
//                       hardware concurrency -- out-of-range values are
//                       errors, never silently clamped
//     --native-threads=N  workers fanning the parallel native whole-module
//                       kernel's DOALL sites (default: the pool size;
//                       1 forces the single-threaded kernel). Same
//                       validation as --shards
//     --engine=K        runtime evaluator tier, uniform for both runners
//                       (the flowchart interpreter and the wavefront
//                       runner ride the same EngineHost ladder):
//                       tree-walk, bytecode (default) or native (JIT the
//                       generated C to a shared object with the system cc;
//                       a plain interpreted run compiles to one
//                       whole-module kernel, a transformed module to
//                       per-equation + stripe kernels). With --verbose
//                       --engine=native the driver JITs the kernels and
//                       reports compile time or the cache tier hit; with
//                       --cache-dir the shared object is stored in (and
//                       reloaded from) the artifact cache
//
//   Batch compilation (several inputs, or --corpus):
//     -j N              compile units on N workers (default 1; 0 = all cores)
//     --batch-report    print the per-unit batch table and summary
//     --json            with --batch-report: emit the report as JSON
//     --corpus          compile the built-in paper corpus as a batch
//
//   Compile service (incremental recompilation and the warm daemon):
//     --cache-dir DIR   content-hash artifact cache: unchanged units are
//                       served from DIR instead of recompiling
//     --cache-max-bytes N  evict least-recently-used artifacts over N bytes
//     --spill-after N   batches over N units spill per-unit artifacts to
//                       the cache directory instead of holding them all
//                       in memory (needs --cache-dir)
//     --daemon[=SOCK]   run the warm compile daemon on a unix socket
//                       (foreground; SIGINT/SIGTERM or --stop-daemon stop it)
//     --listen=HOST:PORT  with --daemon: also accept clients over TCP
//                       (port 0 picks an ephemeral port, printed on stderr)
//     --max-queue N     with --daemon: answer Busy once N compile requests
//                       are queued or in flight (cache-complete requests
//                       are served inline and never count; default 16)
//     --cache-ttl N     with --daemon: a janitor thread prunes cache
//                       entries idle longer than N seconds (pinned .so
//                       objects are spared; 0 = off)
//     --client[=SOCK]   send this compile to the daemon; falls back to
//                       in-process compilation when no daemon is up (or
//                       when a saturated daemon answers Busy)
//     --connect=HOST:PORT  like --client, over the daemon's TCP listener
//     --stop-daemon[=SOCK]  ask the daemon to shut down gracefully
//     --daemon-stats[=SOCK]  print the daemon's service/cache/queue
//                       counters (text, or JSON with --json)
//
//   Observability (any mode):
//     --trace[=FILE]    record structured trace spans (per-pass, per
//                       batch unit and -j worker lane, engine tier
//                       decisions, native cc compiles, wavefront
//                       hyperplanes, service requests) and write them as
//                       Chrome trace-event JSON on exit (default
//                       psc-trace.json; load in chrome://tracing or
//                       Perfetto)
//     --metrics[=FILE]  print the process-wide metrics registry on exit:
//                       counters and latency histograms with p50/p95/p99
//                       (text on stderr by default, or to FILE; --json
//                       switches the format)
//
// With more than one input the driver routes everything through the
// BatchDriver: per-unit output and diagnostics are identical to the
// corresponding single-file runs at any -j, printed in input order with
// a "== name ==" separator. The cached, daemon and in-process paths all
// print byte-identical artifacts for every output flag (--source,
// --schedule, --c, and the structural dumps --graph / --dot /
// --components, which are captured as text in the artifact);
// --batch-report (text and --json) is served from cached artifact
// metadata on the service paths -- including the per-unit engine tier
// and fallback cause -- so a fully warm report costs cache probes, not
// compiles. --passes and --time-passes always compile in-process. On
// the service paths --verbose reports cache / daemon statistics on
// stderr instead of the per-module engine reports (those need a live
// CompileResult).

#include <csignal>

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "codegen/native_emitter.hpp"
#include "driver/batch_driver.hpp"
#include "driver/compiler.hpp"
#include "driver/paper_modules.hpp"
#include "runtime/eval_core.hpp"
#include "runtime/native_engine.hpp"
#include "runtime/wavefront_backend.hpp"
#include "service/compile_service.hpp"
#include "service/daemon.hpp"
#include "support/telemetry.hpp"

namespace {

struct OutputFlags {
  bool components = false;
  bool graph = false;
  bool dot = false;
  bool c_code = false;
  bool source = false;
  bool schedule = false;
};

void print_stage(const ps::CompiledModule& stage, const OutputFlags& flags) {
  if (flags.source) std::cout << stage.source << '\n';
  if (flags.graph) std::cout << stage.graph->summary() << '\n';
  if (flags.dot) std::cout << stage.graph->to_dot() << '\n';
  if (flags.components) std::cout << ps::components_table(stage) << '\n';
  if (flags.schedule)
    std::cout << ps::flowchart_to_string(stage.schedule.flowchart,
                                         *stage.graph)
              << '\n';
  if (flags.c_code) std::cout << stage.c_code << '\n';
}

/// Print one unit's compiled artefacts exactly as the single-file path
/// would.
void print_result(const ps::CompileResult& result, const OutputFlags& flags) {
  if (!result.primary) return;
  print_stage(*result.primary, flags);
  if (result.transform) {
    std::cout << "-- hyperplane transform on '" << result.transform->array
              << "': " << result.transform->describe() << "\n\n";
    if (result.exact_nest)
      std::cout << "-- exact loop bounds (Lamport):\n"
                << result.exact_nest->to_string() << "\n\n";
    if (result.transformed) print_stage(*result.transformed, flags);
  }
}

/// --verbose: per-module runtime-engine report. Compiles the module's
/// equations to bytecode the same way the runtime engines do and prints
/// either the program statistics (the fast path is in charge) or the
/// reason the engines would fall back to the tree walk -- the fallback
/// used to be silent, which hid real workloads from the fast engine.
void print_engine_report(const ps::CompiledModule& stage) {
  ps::EvalCore core;
  std::cout << "-- bytecode engine [" << stage.module->name << "]: ";
  try {
    core.compile(*stage.module);
  } catch (const std::exception& error) {
    std::cout << "tree-walk fallback: " << error.what() << '\n';
    return;
  }
  std::cout << "ok: " << core.total_instructions() << " instructions ("
            << core.folded_instructions() << " folded, "
            << core.fused_instructions() << " fused into superinstructions), "
            << "dispatch="
            << (ps::EvalCore::threaded_dispatch_available() ? "threaded"
                                                            : "switch")
            << '\n';
}

/// The machine's hardware concurrency with the standard's "0 = unknown"
/// answer pinned to a usable default.
size_t hardware_workers() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<size_t>(hw);
}

/// --shards / --native-threads: an explicit worker count is validated,
/// never silently clamped -- 0 and anything past 8x the hardware
/// concurrency are configuration errors the user should see, not
/// guesses the driver should paper over.
bool validate_worker_count(const char* flag, size_t value) {
  const size_t limit = hardware_workers() * 8;
  if (value == 0) {
    std::cerr << "psc: " << flag
              << " must be at least 1 (omit the flag for the automatic "
                 "worker count)\n";
    return false;
  }
  if (value > limit) {
    std::cerr << "psc: " << flag << "=" << value
              << " exceeds 8x the hardware concurrency (" << limit
              << " on this machine)\n";
    return false;
  }
  return true;
}

/// --verbose: the wavefront execution backend a transformed module
/// would run under (--wavefront-backend selects it; Auto resolves from
/// whether the caller hands the runner a worker pool). `shards` is the
/// validated --shards value (0 = automatic).
void print_wavefront_backend_report(const ps::CompiledModule& stage,
                                    ps::WavefrontBackend backend,
                                    size_t shards) {
  std::cout << "-- wavefront backend [" << stage.module->name
            << "]: " << ps::wavefront_backend_name(backend);
  if (backend == ps::WavefrontBackend::Auto)
    std::cout << " (pooled with a worker pool, sequential without)";
  const size_t workers = backend == ps::WavefrontBackend::Sequential
                             ? 1
                             : (shards > 0 ? shards : hardware_workers());
  std::cout << ", " << workers << " worker" << (workers == 1 ? "" : "s")
            << (shards > 0 || workers == 1 ? "" : " (hardware concurrency)")
            << ", streaming consumer flushes, O(window) storage\n";
}

/// --verbose with --engine=native: JIT the transformed module's kernels
/// exactly like the WavefrontRunner would and report the outcome --
/// compile milliseconds on a cold run, or the cache tier that made `cc`
/// unnecessary on a warm one. With --cache-dir the shared object goes
/// through the artifact cache, so a later run (or a runner pointed at
/// the same directory) starts from machine code.
void print_native_report(const ps::CompileResult& result,
                         const std::string& cache_dir,
                         size_t cache_max_bytes) {
  if (!result.transformed || !result.transform || !result.exact_nest) return;
  const ps::CompiledModule& stage = *result.transformed;
  std::cout << "-- native engine [" << stage.module->name << "]: ";
  if (!ps::native_engine_available()) {
    std::cout << "unavailable: " << ps::native_engine_unavailable_reason()
              << '\n';
    return;
  }
  // The recurrence equation is the one defining the transformed array
  // (the WavefrontRunner enforces uniqueness; the report just finds it).
  const std::string new_array = result.transform->array + "'";
  size_t recurrence = 0;
  bool found = false;
  if (stage.module->find_data(new_array) != nullptr) {
    size_t target = stage.module->data_index(new_array);
    for (const ps::CheckedEquation& eq : stage.module->equations)
      if (eq.target == target && !found) {
        recurrence = eq.id;
        found = true;
      }
  }
  if (!found) {
    std::cout << "fallback: no recurrence over '" << new_array << "'\n";
    return;
  }
  ps::NativeKernel kernel;
  try {
    kernel = ps::emit_native_kernel(*stage.module,
                                    ps::BcLayout::for_module(*stage.module),
                                    &*result.exact_nest, recurrence,
                                    new_array);
  } catch (const std::exception& error) {
    std::cout << "fallback: " << error.what() << '\n';
    return;
  }
  std::unique_ptr<ps::ArtifactCache> store;
  if (!cache_dir.empty()) {
    ps::ArtifactCacheOptions cache_options;
    cache_options.dir = cache_dir;
    cache_options.max_bytes = cache_max_bytes;
    store = std::make_unique<ps::ArtifactCache>(std::move(cache_options));
  }
  ps::NativeLoadInfo info;
  auto module = ps::load_native_module(kernel, store.get(), info);
  if (module == nullptr) {
    std::cout << "fallback: " << info.error << '\n';
    return;
  }
  std::cout << "ok: " << kernel.equations.size() << " equation kernel"
            << (kernel.equations.size() == 1 ? "" : "s")
            << (kernel.has_stripe ? " + stripe" : "") << ", ";
  if (info.in_process_hit)
    std::cout << "in-process cache hit";
  else if (info.cache_hit)
    std::cout << "shared-object cache hit";
  else
    std::cout << "compiled " << info.compile_ms << " ms with `cc`";
  std::cout << '\n';
}

/// --verbose with --engine=native: JIT the primary (interpreted)
/// module's whole-flowchart kernel exactly like the Interpreter's
/// EngineHost would -- the tier ladder is uniform across both runners,
/// so a plain interpreted run gets the same native report the wavefront
/// runner's transformed module does. With --cache-dir the shared object
/// goes through the artifact cache.
void print_native_module_report(const ps::CompiledModule& stage,
                                const std::string& cache_dir,
                                size_t cache_max_bytes,
                                size_t native_threads) {
  std::cout << "-- native engine [" << stage.module->name << "]: ";
  if (!ps::native_engine_available()) {
    std::cout << "unavailable: " << ps::native_engine_unavailable_reason()
              << '\n';
    return;
  }
  ps::NativeKernel kernel;
  try {
    kernel = ps::emit_native_module(*stage.module,
                                    ps::BcLayout::for_module(*stage.module),
                                    *stage.graph, stage.schedule.flowchart,
                                    nullptr);
  } catch (const std::exception& error) {
    std::cout << "fallback: " << error.what() << '\n';
    return;
  }
  std::unique_ptr<ps::ArtifactCache> store;
  if (!cache_dir.empty()) {
    ps::ArtifactCacheOptions cache_options;
    cache_options.dir = cache_dir;
    cache_options.max_bytes = cache_max_bytes;
    store = std::make_unique<ps::ArtifactCache>(std::move(cache_options));
  }
  ps::NativeLoadInfo info;
  auto module = ps::load_native_module(kernel, store.get(), info);
  if (module == nullptr) {
    std::cout << "fallback: " << info.error << '\n';
    return;
  }
  std::cout << "ok: whole-module kernel";
  if (kernel.has_module_par) {
    const size_t workers =
        native_threads > 0 ? native_threads : hardware_workers();
    std::cout << " + parallel form (" << workers << " worker"
              << (workers == 1 ? "" : "s") << ")";
  }
  std::cout << ", ";
  if (info.in_process_hit)
    std::cout << "in-process cache hit";
  else if (info.cache_hit)
    std::cout << "shared-object cache hit";
  else
    std::cout << "compiled " << info.compile_ms << " ms with `cc`";
  std::cout << '\n';
}

void print_engine_reports(const ps::CompileResult& result,
                          ps::WavefrontBackend wavefront_backend,
                          ps::EvalEngine engine, const std::string& cache_dir,
                          size_t cache_max_bytes, size_t shards,
                          size_t native_threads) {
  if (!result.primary) return;
  print_engine_report(*result.primary);
  if (engine == ps::EvalEngine::Native)
    print_native_module_report(*result.primary, cache_dir, cache_max_bytes,
                               native_threads);
  if (result.transformed) {
    print_engine_report(*result.transformed);
    if (engine == ps::EvalEngine::Native)
      print_native_report(result, cache_dir, cache_max_bytes);
    print_wavefront_backend_report(*result.transformed, wavefront_backend,
                                   shards);
  }
}

bool read_file(const std::string& path, std::string& text) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
    return true;
  }
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  text = buffer.str();
  return true;
}

bool has_suffix(const std::string& path, const char* suffix) {
  std::string s = suffix;
  return path.size() >= s.size() &&
         path.compare(path.size() - s.size(), s.size(), s) == 0;
}

/// Parse a -j worker count: a non-negative decimal integer (0 = all
/// cores), capped to something a machine could plausibly have.
bool parse_jobs(const std::string& text, size_t& jobs) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long value = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  if (value < 0 || value > 4096) return false;
  jobs = static_cast<size_t>(value);
  return true;
}

/// Parse a non-negative size flag value (--cache-max-bytes, --spill-after).
bool parse_size(const std::string& text, size_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  out = static_cast<size_t>(value);
  return true;
}

/// End-of-process telemetry flush, as an RAII object so every one of
/// main()'s return paths (client, daemon, service, batch, single-file)
/// writes the trace and metrics the run collected.
struct TelemetryDump {
  bool trace = false;
  std::string trace_file;
  bool metrics = false;
  std::string metrics_file;  // empty: text report on stderr
  bool json = false;

  ~TelemetryDump() {
    if (trace) {
      std::string body = ps::TraceSession::global().flush_json();
      ps::TraceSession::global().disable();
      std::ofstream out(trace_file, std::ios::binary | std::ios::trunc);
      out << body;
      if (!out)
        std::cerr << "psc: cannot write trace to '" << trace_file << "'\n";
      else
        std::cerr << "psc: trace written to " << trace_file << '\n';
    }
    if (metrics) {
      ps::MetricsRegistry& registry = ps::MetricsRegistry::global();
      std::string body = json ? registry.render_json() : registry.render_text();
      if (metrics_file.empty()) {
        std::cerr << body;
        return;
      }
      std::ofstream out(metrics_file, std::ios::binary | std::ios::trunc);
      out << body;
      if (!out)
        std::cerr << "psc: cannot write metrics to '" << metrics_file
                  << "'\n";
    }
  }
};

// The signal handler needs a target; one foreground daemon per process.
ps::Daemon* g_daemon = nullptr;

void stop_daemon_on_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_stop();
}

/// One unit's client-facing text, whichever path produced it.
struct RenderedUnit {
  std::string name;
  bool ok = false;
  std::string diagnostics;
  std::string body;
};

/// Print rendered units exactly like the in-process paths: diagnostics
/// merged in input order on stderr, bodies in input order on stdout
/// (with the batch separator when in batch shape). Returns the exit
/// code.
int print_rendered_units(const std::vector<RenderedUnit>& units, bool batch) {
  for (const RenderedUnit& unit : units)
    if (!unit.diagnostics.empty()) std::cerr << unit.diagnostics;
  bool all_ok = true;
  for (const RenderedUnit& unit : units) {
    if (batch) std::cout << "== " << unit.name << " ==\n";
    std::cout << unit.body;
    if (!unit.ok) all_ok = false;
  }
  return all_ok ? 0 : 1;
}

/// --batch-report on a service path: diagnostics in input order on
/// stderr (like every other path), then the report built from artifact
/// metadata -- no compile happened for cache hits. Returns the exit
/// code.
int print_service_report(const std::vector<ps::ServiceReportRow>& rows,
                         const ps::ServiceReportSummary& summary,
                         const std::vector<std::string>& diagnostics,
                         bool json) {
  for (const std::string& diagnostic : diagnostics)
    if (!diagnostic.empty()) std::cerr << diagnostic;
  std::cout << (json ? ps::service_report_json(rows, summary)
                     : ps::format_service_report(rows, summary));
  for (const ps::ServiceReportRow& row : rows)
    if (!row.ok) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  OutputFlags flags;
  bool list_passes = false;
  bool time_passes = false;
  bool verbose = false;
  bool batch_report = false;
  bool json = false;
  bool corpus = false;
  bool daemon_mode = false;
  bool client_mode = false;
  bool stop_daemon = false;
  bool daemon_stats = false;
  bool trace = false;
  std::string trace_file = "psc-trace.json";
  bool metrics = false;
  std::string metrics_file;  // empty with `metrics`: text on stderr
  std::string socket_path;   // empty = default_daemon_socket()
  std::string listen_spec;   // --listen=HOST:PORT (daemon TCP listener)
  std::string connect_spec;  // --connect=HOST:PORT (client over TCP)
  std::string cache_dir;
  size_t cache_max_bytes = 0;
  size_t spill_after = 0;
  size_t max_queue = 16;  // daemon admission depth (Busy past this)
  size_t cache_ttl = 0;   // daemon janitor TTL in seconds (0 = off)
  size_t jobs = 1;
  size_t shards = 0;          // --shards (0 = automatic worker count)
  size_t native_threads = 0;  // --native-threads (0 = automatic)
  ps::WavefrontBackend wavefront_backend = ps::WavefrontBackend::Auto;
  ps::EvalEngine engine = ps::EvalEngine::Bytecode;
  std::vector<std::string> paths;

  ps::CompileOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--components") flags.components = true;
    else if (arg == "--graph") flags.graph = true;
    else if (arg == "--dot") flags.dot = true;
    else if (arg == "--c") flags.c_code = true;
    else if (arg == "--source") flags.source = true;
    else if (arg == "--schedule") flags.schedule = true;
    else if (arg == "--hyperplane") options.apply_hyperplane = true;
    else if (arg == "--exact") {
      options.apply_hyperplane = true;
      options.exact_bounds = true;
    }
    else if (arg == "--merge") options.merge_loops = true;
    else if (arg == "--no-windows") options.use_virtual_windows = false;
    else if (arg == "--passes") list_passes = true;
    else if (arg == "--time-passes") time_passes = true;
    else if (arg == "--verbose") verbose = true;
    else if (arg.rfind("--wavefront-backend=", 0) == 0) {
      auto parsed = ps::parse_wavefront_backend(arg.substr(20));
      if (!parsed) {
        std::cerr << "psc: unknown wavefront backend '" << arg.substr(20)
                  << "' (use auto, sequential, pooled, sharded or "
                     "stealing)\n";
        return 2;
      }
      wavefront_backend = *parsed;
    }
    else if (arg.rfind("--shards=", 0) == 0) {
      if (!parse_size(arg.substr(9), shards)) {
        std::cerr << "psc: --shards needs a worker count\n";
        return 2;
      }
      if (!validate_worker_count("--shards", shards)) return 2;
    }
    else if (arg.rfind("--native-threads=", 0) == 0) {
      if (!parse_size(arg.substr(17), native_threads)) {
        std::cerr << "psc: --native-threads needs a worker count\n";
        return 2;
      }
      if (!validate_worker_count("--native-threads", native_threads)) return 2;
    }
    else if (arg.rfind("--engine=", 0) == 0) {
      auto parsed = ps::parse_eval_engine(arg.substr(9));
      if (!parsed) {
        std::cerr << "psc: unknown engine '" << arg.substr(9)
                  << "' (use tree-walk, bytecode or native)\n";
        return 2;
      }
      engine = *parsed;
    }
    else if (arg == "--batch-report") batch_report = true;
    else if (arg == "--json") json = true;
    else if (arg == "--corpus") corpus = true;
    else if (arg == "--daemon") daemon_mode = true;
    else if (arg.rfind("--daemon=", 0) == 0) {
      daemon_mode = true;
      socket_path = arg.substr(9);
    }
    else if (arg == "--client") client_mode = true;
    else if (arg.rfind("--client=", 0) == 0) {
      client_mode = true;
      socket_path = arg.substr(9);
    }
    else if (arg == "--stop-daemon") stop_daemon = true;
    else if (arg.rfind("--stop-daemon=", 0) == 0) {
      stop_daemon = true;
      socket_path = arg.substr(14);
    }
    else if (arg == "--daemon-stats") daemon_stats = true;
    else if (arg.rfind("--daemon-stats=", 0) == 0) {
      daemon_stats = true;
      socket_path = arg.substr(15);
    }
    else if (arg == "--trace") trace = true;
    else if (arg.rfind("--trace=", 0) == 0) {
      trace = true;
      trace_file = arg.substr(8);
      if (trace_file.empty()) {
        std::cerr << "psc: --trace= needs a file name\n";
        return 2;
      }
    }
    else if (arg == "--metrics") metrics = true;
    else if (arg.rfind("--metrics=", 0) == 0) {
      metrics = true;
      metrics_file = arg.substr(10);
      if (metrics_file.empty()) {
        std::cerr << "psc: --metrics= needs a file name\n";
        return 2;
      }
    }
    else if (arg.rfind("--listen=", 0) == 0) listen_spec = arg.substr(9);
    else if (arg.rfind("--connect=", 0) == 0) {
      client_mode = true;
      connect_spec = arg.substr(10);
    }
    else if (arg == "--max-queue") {
      if (i + 1 >= argc || !parse_size(argv[i + 1], max_queue)) {
        std::cerr << "psc: --max-queue needs a request count\n";
        return 2;
      }
      ++i;
    }
    else if (arg.rfind("--max-queue=", 0) == 0) {
      if (!parse_size(arg.substr(12), max_queue)) {
        std::cerr << "psc: --max-queue needs a request count\n";
        return 2;
      }
    }
    else if (arg == "--cache-ttl") {
      if (i + 1 >= argc || !parse_size(argv[i + 1], cache_ttl)) {
        std::cerr << "psc: --cache-ttl needs a duration in seconds\n";
        return 2;
      }
      ++i;
    }
    else if (arg.rfind("--cache-ttl=", 0) == 0) {
      if (!parse_size(arg.substr(12), cache_ttl)) {
        std::cerr << "psc: --cache-ttl needs a duration in seconds\n";
        return 2;
      }
    }
    else if (arg == "--cache-dir") {
      if (i + 1 >= argc) {
        std::cerr << "psc: --cache-dir needs a directory\n";
        return 2;
      }
      cache_dir = argv[++i];
    }
    else if (arg.rfind("--cache-dir=", 0) == 0) cache_dir = arg.substr(12);
    else if (arg == "--cache-max-bytes") {
      if (i + 1 >= argc || !parse_size(argv[i + 1], cache_max_bytes)) {
        std::cerr << "psc: --cache-max-bytes needs a byte count\n";
        return 2;
      }
      ++i;
    }
    else if (arg == "--spill-after") {
      if (i + 1 >= argc || !parse_size(argv[i + 1], spill_after)) {
        std::cerr << "psc: --spill-after needs a unit count\n";
        return 2;
      }
      ++i;
    }
    else if (arg == "-j") {
      if (i + 1 >= argc || !parse_jobs(argv[i + 1], jobs)) {
        std::cerr << "psc: -j needs a worker count (0 = all cores)\n";
        return 2;
      }
      ++i;
    }
    else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
      if (!parse_jobs(arg.substr(2), jobs)) {
        std::cerr << "psc: bad worker count in '" << arg << "'\n";
        return 2;
      }
    }
    else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: psc [--schedule|--components|--graph|--dot|--c|"
                   "--source] [--hyperplane] [--exact] [--merge] "
                   "[--no-windows] [--passes] [--time-passes] [--verbose] "
                   "[--wavefront-backend=auto|sequential|pooled|sharded|"
                   "stealing] [--shards=N] [--native-threads=N] "
                   "[--engine=tree-walk|bytecode|native] "
                   "[-j N] [--batch-report] [--json] [--corpus] "
                   "[--cache-dir DIR] [--cache-max-bytes N] "
                   "[--spill-after N] [--daemon[=SOCK]] "
                   "[--listen=HOST:PORT] [--max-queue N] [--cache-ttl N] "
                   "[--client[=SOCK]] [--connect=HOST:PORT] "
                   "[--stop-daemon[=SOCK]] [--daemon-stats[=SOCK]] "
                   "[--trace[=FILE]] [--metrics[=FILE]] "
                   "<file.ps|file.eqn|-> [more files...]\n";
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (!flags.components && !flags.graph && !flags.dot && !flags.c_code &&
      !flags.source)
    flags.schedule = true;
  if (json && !batch_report && !daemon_stats && !metrics) {
    std::cerr << "psc: --json requires --batch-report, --daemon-stats or "
                 "--metrics\n";
    return 2;
  }
  if (spill_after > 0 && cache_dir.empty()) {
    std::cerr << "psc: --spill-after needs --cache-dir (artifacts spill "
                 "into the cache directory)\n";
    return 2;
  }
  if (!listen_spec.empty() && !daemon_mode) {
    std::cerr << "psc: --listen needs --daemon\n";
    return 2;
  }

  // Telemetry switches on before any compile work and flushes when the
  // dump object unwinds, whichever return path main() takes.
  TelemetryDump dump;
  dump.trace = trace;
  dump.trace_file = trace_file;
  dump.metrics = metrics;
  dump.metrics_file = metrics_file;
  dump.json = json;
  if (trace) ps::TraceSession::global().enable();

  // Where a client-side mode reaches the daemon: the TCP address when
  // --connect was given, the unix socket otherwise.
  auto connect_client = [&](ps::DaemonClient& client, std::string& where) {
    if (!connect_spec.empty()) {
      where = connect_spec;
      return client.connect_tcp(connect_spec);
    }
    where = socket_path.empty() ? ps::default_daemon_socket() : socket_path;
    return client.connect(where);
  };

  if (stop_daemon) {
    ps::DaemonClient client;
    std::string where;
    if (!connect_client(client, where) || !client.shutdown()) {
      std::cerr << "psc: no daemon listening on " << where << '\n';
      return 1;
    }
    std::cerr << "psc: daemon on " << where << " stopped\n";
    return 0;
  }

  if (daemon_stats) {
    ps::DaemonClient client;
    std::string where;
    if (!connect_client(client, where)) {
      std::cerr << "psc: no daemon listening on " << where << '\n';
      return 1;
    }
    std::optional<std::string> stats = client.stats(json);
    if (!stats) {
      std::cerr << "psc: " << client.error() << '\n';
      return 1;
    }
    std::cout << *stats;
    return 0;
  }

  if (daemon_mode) {
    // Foreground warm daemon: the worker pool, hyperplane/interner
    // caches and the artifact cache live for the whole serve() loop.
    // Compile options come from each client's request, not from this
    // command line.
    ps::DaemonOptions daemon_options;
    daemon_options.socket_path = socket_path;
    daemon_options.listen = listen_spec;
    daemon_options.max_queue = max_queue;
    daemon_options.cache_ttl = std::chrono::seconds(cache_ttl);
    daemon_options.service.jobs = jobs;
    daemon_options.service.cache_dir = cache_dir;
    daemon_options.service.cache_max_bytes = cache_max_bytes;
    daemon_options.service.spill_after = spill_after;
    ps::Daemon daemon(daemon_options);
    if (!daemon.start()) {
      std::cerr << "psc: " << daemon.error() << '\n';
      return 1;
    }
    g_daemon = &daemon;
    std::signal(SIGINT, stop_daemon_on_signal);
    std::signal(SIGTERM, stop_daemon_on_signal);
    std::cerr << "psc: daemon listening on " << daemon.socket_path();
    if (daemon.tcp_port() != 0)
      std::cerr << " and tcp port " << daemon.tcp_port();
    std::cerr << '\n';
    daemon.serve();
    std::cerr << "psc: daemon stopped (" << daemon.service().describe_stats()
              << ")\n";
    g_daemon = nullptr;
    return 0;
  }

  if (list_passes) {
    // Show the pipeline the current options assemble, and verify its
    // stage ordering (each pass's prerequisites must come earlier).
    ps::Compiler compiler(options);
    ps::PassManager pipeline = compiler.pipeline();
    ps::CompilationUnit unit(compiler.options(), {});
    std::cout << "pipeline:\n";
    for (const ps::PassPlanEntry& entry : pipeline.plan(unit))
      std::cout << "  " << entry.name
                << (entry.enabled ? "" : "  (disabled by options)") << '\n';
    auto violations = pipeline.check_order();
    if (violations.empty()) {
      std::cout << "ordering: ok\n";
    } else {
      for (const std::string& v : violations)
        std::cout << "ordering violation: " << v << '\n';
      return 1;
    }
    if (paths.empty() && !corpus) return 0;  // listing alone needs no input
  }
  if (paths.empty() && !corpus) {
    std::cerr << "psc: no input file (use '-' for stdin)\n";
    return 2;
  }

  // Assemble the batch inputs: files in command-line order, then the
  // built-in corpus when requested.
  std::vector<ps::BatchInput> inputs;
  for (const std::string& path : paths) {
    ps::BatchInput input;
    input.name = path == "-" ? "<stdin>" : path;
    input.is_eqn = has_suffix(path, ".eqn");
    if (!read_file(path, input.source)) {
      std::cerr << "psc: cannot open '" << path << "'\n";
      return 2;
    }
    inputs.push_back(std::move(input));
  }
  if (corpus)
    for (const ps::PaperModule& module : ps::paper_corpus())
      inputs.push_back(ps::BatchInput{module.name, module.source, false});

  const bool batch = inputs.size() > 1 || corpus || batch_report;

  // The service path (daemon client or the one-shot disk cache) serves
  // stored artifacts, which carry the whole printable output surface
  // (source, schedule, C, and the structural dumps --graph / --dot /
  // --components, captured as text at artifact-build time) plus the
  // metadata --batch-report needs. --passes/--time-passes re-derive
  // state from a live CompileResult, so they always compile in-process.
  const bool service_renderable =
      !list_passes && !time_passes &&
      // The native engine report JITs a live CompileResult (and, with
      // --cache-dir, warms the shared-object cache); keep that
      // combination on the in-process path.
      !(verbose && engine == ps::EvalEngine::Native);
  if ((client_mode || !cache_dir.empty()) && service_renderable) {
    ps::RenderFlags render_flags;
    render_flags.source = flags.source;
    render_flags.schedule = flags.schedule;
    render_flags.c_code = flags.c_code;
    render_flags.graph = flags.graph;
    render_flags.dot = flags.dot;
    render_flags.components = flags.components;
    ps::ServiceRequest request;
    request.options = options;
    request.units = inputs;

    if (client_mode) {
      ps::DaemonClient client;
      std::string where;
      if (connect_client(client, where)) {
        std::optional<ps::RemoteReply> reply = client.compile(request);
        if (reply) {
          if (verbose)
            std::cerr << "psc: daemon on " << where << ": "
                      << reply->cache_hits << " cache hits, "
                      << reply->cache_misses << " compiled, -j "
                      << reply->jobs << '\n';
          if (batch_report) {
            std::vector<ps::ServiceReportRow> rows;
            std::vector<std::string> diagnostics;
            rows.reserve(reply->units.size());
            for (const ps::RemoteUnitResult& unit : reply->units) {
              rows.push_back({unit.name, unit.artifact.module_name,
                              unit.artifact.ok, unit.cache_hit,
                              unit.milliseconds,
                              unit.artifact.primary.engine_tier,
                              unit.artifact.primary.engine_fallback});
              diagnostics.push_back(unit.artifact.diagnostics);
            }
            ps::ServiceReportSummary summary{reply->jobs, reply->wall_ms,
                                             reply->cache_hits,
                                             reply->cache_misses};
            return print_service_report(rows, summary, diagnostics, json);
          }
          std::vector<RenderedUnit> rendered;
          rendered.reserve(reply->units.size());
          for (const ps::RemoteUnitResult& unit : reply->units)
            rendered.push_back({unit.name, unit.artifact.ok,
                                unit.artifact.diagnostics,
                                ps::render_artifact(unit.artifact,
                                                    render_flags)});
          return print_rendered_units(rendered, batch);
        }
        // Daemon refused (version mismatch, a Busy queue) or the
        // connection broke mid-request: nothing has been printed yet,
        // so compiling in-process below is safe and gives the user
        // their output.
        std::cerr << "psc: " << client.error()
                  << "; compiling in-process\n";
      } else {
        // No daemon up: fall through to the in-process service (when a
        // cache directory was given) or the plain driver below.
        std::cerr << "psc: no daemon on " << where
                  << "; compiling in-process\n";
      }
    }

    if (!cache_dir.empty()) {
      ps::ServiceOptions service_options;
      service_options.jobs = jobs;
      service_options.cache_dir = cache_dir;
      service_options.cache_max_bytes = cache_max_bytes;
      service_options.spill_after = spill_after;
      ps::CompileService service(service_options);
      ps::ServiceResponse response = service.compile(request);
      if (batch_report) {
        std::vector<ps::ServiceReportRow> rows;
        std::vector<std::string> diagnostics;
        rows.reserve(response.units.size());
        for (const ps::ServiceUnit& unit : response.units) {
          ps::ServiceReportRow row{unit.name, unit.module_name, unit.ok,
                                   unit.cache_hit, unit.milliseconds,
                                   unit.engine_tier, unit.engine_fallback};
          // Diagnostics live in the artifact. Read in-memory ones in
          // place (no whole-artifact copy just for one string); only
          // spilled units reload from the cache directory (report
          // mode, not the hot path) -- the reload also recovers the
          // tier metadata the spill path dropped.
          if (unit.artifact != nullptr) {
            diagnostics.push_back(unit.artifact->diagnostics);
          } else {
            std::optional<ps::UnitArtifact> artifact =
                service.artifact(unit);
            diagnostics.push_back(artifact ? artifact->diagnostics
                                           : std::string());
            if (artifact) {
              row.engine = artifact->primary.engine_tier;
              row.fallback = artifact->primary.engine_fallback;
            }
          }
          rows.push_back(std::move(row));
        }
        ps::ServiceReportSummary summary{response.jobs, response.wall_ms,
                                         response.cache_hits,
                                         response.cache_misses};
        if (verbose)
          std::cerr << "psc: " << service.describe_stats() << '\n';
        return print_service_report(rows, summary, diagnostics, json);
      }
      std::vector<RenderedUnit> rendered;
      rendered.reserve(response.units.size());
      for (const ps::ServiceUnit& unit : response.units) {
        std::optional<ps::UnitArtifact> artifact = service.artifact(unit);
        if (!artifact) {
          std::cerr << "psc: artifact for '" << unit.name
                    << "' evicted before printing (raise "
                       "--cache-max-bytes)\n";
          return 1;
        }
        rendered.push_back({unit.name, artifact->ok, artifact->diagnostics,
                            ps::render_artifact(*artifact, render_flags)});
      }
      if (verbose) std::cerr << "psc: " << service.describe_stats() << '\n';
      return print_rendered_units(rendered, batch);
    }
  }

  if (!batch) {
    // Single-module path: identical to the historical driver. EQN files
    // reuse the batch driver's translate-then-compile for one unit.
    ps::CompileResult result;
    if (inputs[0].is_eqn) {
      ps::BatchDriver driver(options);
      auto results = driver.compile_all(inputs);
      result = std::move(results[0].result);
    } else {
      result = ps::Compiler(options).compile(inputs[0].source, inputs[0].name);
    }
    if (!result.diagnostics.empty()) std::cerr << result.diagnostics;
    if (time_passes)
      std::cout << ps::format_pass_timings(result.pass_timings) << '\n';
    if (!result.ok || !result.primary) return 1;
    print_result(result, flags);
    if (verbose)
      print_engine_reports(result, wavefront_backend, engine, cache_dir,
                           cache_max_bytes, shards, native_threads);
    return 0;
  }

  ps::BatchOptions batch_options;
  batch_options.jobs = jobs;
  ps::BatchDriver driver(options, batch_options);
  std::vector<ps::BatchUnitResult> results = driver.compile_all(inputs);

  // Deterministic merge: diagnostics in input order on stderr, per-unit
  // artefacts in input order on stdout.
  std::string diagnostics = ps::BatchDriver::merged_diagnostics(results);
  if (!diagnostics.empty()) std::cerr << diagnostics;

  if (batch_report) {
    if (json)
      std::cout << ps::BatchDriver::report_json(results, driver.summary());
    else
      std::cout << ps::BatchDriver::format_report(results, driver.summary());
  } else {
    for (const ps::BatchUnitResult& unit : results) {
      std::cout << "== " << unit.name << " ==\n";
      print_result(unit.result, flags);
      if (verbose)
        print_engine_reports(unit.result, wavefront_backend, engine,
                             cache_dir, cache_max_bytes, shards,
                             native_threads);
    }
  }
  // The report already embeds the aggregate table; only print it here
  // for the per-unit output mode.
  if (time_passes && !batch_report)
    std::cout << ps::format_pass_timings(driver.summary().aggregate_timings)
              << '\n';

  return driver.summary().failed == 0 ? 0 : 1;
}
