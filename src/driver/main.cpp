// psc: command-line front end for the PS compiler reproduction.
//
// Usage:
//   psc [options] <file.ps | ->
//     --schedule        print the flowchart (default)
//     --components      print the MSCC table (paper Figure 5)
//     --graph           print the dependency-graph inventory
//     --dot             print the dependency graph as Graphviz DOT
//     --c               print the generated C code
//     --source          print the pretty-printed PS source
//     --hyperplane      apply the section-4 restructuring and report both
//     --merge           run the loop-fusion pass
//     --no-windows      disable virtual-dimension windowing in codegen
//     --passes          list the pipeline stages for the given options
//     --time-passes     print per-stage wall time after compiling

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "driver/compiler.hpp"
#include "support/text_table.hpp"

namespace {

void print_stage(const ps::CompiledModule& stage, bool components, bool graph,
                 bool dot, bool c_code, bool source, bool schedule) {
  if (source) std::cout << stage.source << '\n';
  if (graph) std::cout << stage.graph->summary() << '\n';
  if (dot) std::cout << stage.graph->to_dot() << '\n';
  if (components) {
    ps::TextTable table({"Component", "Node(s)", "Flowchart"});
    for (size_t i = 0; i < stage.schedule.components.size(); ++i) {
      const auto& comp = stage.schedule.components[i];
      std::string names;
      for (size_t j = 0; j < comp.nodes.size(); ++j) {
        if (j) names += ", ";
        names += stage.graph->node(comp.nodes[j]).name;
      }
      table.add_row({std::to_string(i + 1), names,
                     ps::flowchart_to_line(comp.flowchart, *stage.graph)});
    }
    std::cout << table.render() << '\n';
  }
  if (schedule)
    std::cout << ps::flowchart_to_string(stage.schedule.flowchart,
                                         *stage.graph)
              << '\n';
  if (c_code) std::cout << stage.c_code << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  bool components = false;
  bool graph = false;
  bool dot = false;
  bool c_code = false;
  bool source = false;
  bool schedule = false;
  bool list_passes = false;
  bool time_passes = false;
  std::string path;

  ps::CompileOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--components") components = true;
    else if (arg == "--graph") graph = true;
    else if (arg == "--dot") dot = true;
    else if (arg == "--c") c_code = true;
    else if (arg == "--source") source = true;
    else if (arg == "--schedule") schedule = true;
    else if (arg == "--hyperplane") options.apply_hyperplane = true;
    else if (arg == "--exact") {
      options.apply_hyperplane = true;
      options.exact_bounds = true;
    }
    else if (arg == "--merge") options.merge_loops = true;
    else if (arg == "--no-windows") options.use_virtual_windows = false;
    else if (arg == "--passes") list_passes = true;
    else if (arg == "--time-passes") time_passes = true;
    else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: psc [--schedule|--components|--graph|--dot|--c|"
                   "--source] [--hyperplane] [--exact] [--merge] "
                   "[--no-windows] [--passes] [--time-passes] <file.ps|->\n";
      return 0;
    } else {
      path = arg;
    }
  }
  if (!components && !graph && !dot && !c_code && !source) schedule = true;

  if (list_passes) {
    // Show the pipeline the current options assemble, and verify its
    // stage ordering (each pass's prerequisites must come earlier).
    ps::Compiler compiler(options);
    ps::PassManager pipeline = compiler.pipeline();
    ps::CompilationUnit unit(compiler.options(), {});
    std::cout << "pipeline:\n";
    for (const ps::PassPlanEntry& entry : pipeline.plan(unit))
      std::cout << "  " << entry.name
                << (entry.enabled ? "" : "  (disabled by options)") << '\n';
    auto violations = pipeline.check_order();
    if (violations.empty()) {
      std::cout << "ordering: ok\n";
    } else {
      for (const std::string& v : violations)
        std::cout << "ordering violation: " << v << '\n';
      return 1;
    }
    if (path.empty()) return 0;  // listing alone needs no input
  }
  if (path.empty()) {
    std::cerr << "psc: no input file (use '-' for stdin)\n";
    return 2;
  }

  std::string text;
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "psc: cannot open '" << path << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  ps::Compiler compiler(options);
  ps::CompileResult result = compiler.compile(text);
  if (!result.diagnostics.empty()) std::cerr << result.diagnostics;
  if (time_passes)
    std::cout << ps::format_pass_timings(result.pass_timings) << '\n';
  if (!result.ok || !result.primary) return 1;

  print_stage(*result.primary, components, graph, dot, c_code, source,
              schedule);

  if (result.transform) {
    std::cout << "-- hyperplane transform on '" << result.transform->array
              << "': " << result.transform->describe() << "\n\n";
    if (result.exact_nest)
      std::cout << "-- exact loop bounds (Lamport):\n"
                << result.exact_nest->to_string() << "\n\n";
    if (result.transformed)
      print_stage(*result.transformed, components, graph, dot, c_code, source,
                  schedule);
  }
  return 0;
}
