#include "driver/pass_manager.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "driver/compiler.hpp"
#include "frontend/ast.hpp"
#include "support/telemetry.hpp"
#include "support/text_table.hpp"

namespace ps {

CompilationUnit::CompilationUnit(const CompileOptions& options,
                                 std::string_view source,
                                 std::string file_name)
    : options(&options), source(source) {
  diags.set_source(source, std::move(file_name));
}

CompiledModule CompilationUnit::take_module() {
  CompiledModule out;
  out.module = std::move(module);
  out.graph = std::move(graph);
  out.schedule = std::move(schedule);
  out.merge_stats = merge_stats;
  out.c_code = std::move(c_code);
  out.source = std::move(module_source);
  return out;
}

namespace {

// ---------------------------------------------------------------------------
// The stages
// ---------------------------------------------------------------------------

class ParsePass : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "Parse"; }

  void run(CompilationUnit& unit) override {
    Parser parser(unit.source, unit.diags);
    ProgramAst program = parser.parse_program();
    if (program.modules.empty()) {
      if (!unit.diags.has_errors())
        unit.diags.error({}, "no module found in input");
      return;
    }
    if (unit.diags.has_errors()) return;
    unit.ast = std::move(program.modules.front());
  }
};

class SemaPass : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "Sema"; }

  void run(CompilationUnit& unit) override {
    if (!unit.ast) {
      unit.diags.error({}, "internal: Sema scheduled without a parsed module");
      return;
    }
    unit.module_source = to_source(*unit.ast);
    Sema sema(unit.diags);
    auto checked = sema.check(std::move(*unit.ast));
    unit.ast.reset();
    if (!checked) {
      unit.stop = true;
      return;
    }
    unit.module = std::make_unique<CheckedModule>(std::move(*checked));
  }
};

class DepGraphPass : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "DepGraph"; }
  [[nodiscard]] std::vector<std::string_view> requires_passes()
      const override {
    return {"Sema"};
  }

  void run(CompilationUnit& unit) override {
    unit.graph = std::make_unique<DepGraph>(DepGraph::build(*unit.module));
  }
};

class SchedulePass : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "Schedule"; }
  [[nodiscard]] std::vector<std::string_view> requires_passes()
      const override {
    return {"DepGraph"};
  }

  void run(CompilationUnit& unit) override {
    Scheduler scheduler(*unit.graph);
    unit.schedule = scheduler.run();
    if (!unit.schedule.ok) {
      for (const auto& err : unit.schedule.errors) unit.diags.error({}, err);
      // Analysis artefacts remain useful; the pipeline stops here.
      unit.stop = true;
    }
  }
};

class LoopMergePass : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "LoopMerge"; }
  [[nodiscard]] std::vector<std::string_view> requires_passes()
      const override {
    return {"Schedule"};
  }
  [[nodiscard]] bool enabled(const CompilationUnit& unit) const override {
    return unit.options->merge_loops;
  }

  void run(CompilationUnit& unit) override {
    unit.schedule.flowchart = merge_loops_reordered(
        std::move(unit.schedule.flowchart), *unit.graph, &unit.merge_stats);
  }
};

class HyperplanePass : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "Hyperplane"; }
  [[nodiscard]] std::vector<std::string_view> requires_passes()
      const override {
    return {"Schedule"};
  }
  [[nodiscard]] bool enabled(const CompilationUnit& unit) const override {
    return unit.options->apply_hyperplane;
  }

  void run(CompilationUnit& unit) override {
    const CheckedModule& module = *unit.module;
    for (const std::string& candidate : transform_candidates(module)) {
      DiagnosticEngine probe;  // failures here are not fatal
      auto deps = extract_dependences(module, candidate, probe);
      if (!deps) continue;
      auto transform =
          unit.hyperplane_cache != nullptr
              ? unit.hyperplane_cache->find(*deps, unit.options->solver)
              : find_hyperplane(*deps, unit.options->solver);
      if (!transform) continue;
      auto rewritten = hyperplane_rewrite(module, *transform, probe);
      if (!rewritten) continue;

      // The rewritten module goes through the same per-module stages as
      // the primary one: a nested pipeline over a child unit.
      CompilationUnit child(*unit.options, {});
      child.ast = std::move(*rewritten);
      PassManager nested = PassManager::module_pipeline();
      if (!nested.run(child) || child.module == nullptr) {
        unit.extra_diagnostics += child.diags.render();
        continue;
      }
      unit.dependences = std::move(*deps);
      unit.transform = std::move(*transform);
      unit.transformed = child.take_module();
      break;  // transform the first viable candidate
    }
  }
};

class ExactBoundsPass : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "ExactBounds";
  }
  [[nodiscard]] std::vector<std::string_view> requires_passes()
      const override {
    return {"Hyperplane"};
  }
  [[nodiscard]] bool enabled(const CompilationUnit& unit) const override {
    return unit.options->apply_hyperplane && unit.options->exact_bounds;
  }

  void run(CompilationUnit& unit) override {
    if (!unit.transform || !unit.transformed) return;  // nothing to refine
    // Lamport-style exact scanning of the skewed domain: project the
    // image of the original index box onto per-level loop bounds and
    // regenerate the transformed module's C with them.
    auto domain = transformed_domain(*unit.module, *unit.transform);
    if (!domain) return;
    auto nest = fourier_motzkin_bounds(*domain, unit.transform->new_vars);
    if (!nest) return;
    unit.exact_nest = std::move(*nest);
    if (unit.options->emit_c_code) {
      CodegenOptions cg;
      cg.emit_openmp = unit.options->emit_openmp;
      cg.use_virtual_windows = unit.options->use_virtual_windows;
      cg.virtual_dims = &unit.transformed->schedule.virtual_dims;
      cg.exact_bounds = &*unit.exact_nest;
      unit.transformed->c_code =
          emit_c(*unit.transformed->module, *unit.transformed->graph,
                 unit.transformed->schedule.flowchart, cg);
    }
  }
};

class EmitPass : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "Emit"; }
  [[nodiscard]] std::vector<std::string_view> requires_passes()
      const override {
    return {"Schedule"};
  }
  [[nodiscard]] bool enabled(const CompilationUnit& unit) const override {
    return unit.options->emit_c_code;
  }

  void run(CompilationUnit& unit) override {
    CodegenOptions cg;
    cg.emit_openmp = unit.options->emit_openmp;
    cg.use_virtual_windows = unit.options->use_virtual_windows;
    cg.virtual_dims = &unit.schedule.virtual_dims;
    unit.c_code =
        emit_c(*unit.module, *unit.graph, unit.schedule.flowchart, cg);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// PassManager
// ---------------------------------------------------------------------------

PassManager& PassManager::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

std::vector<std::string> PassManager::check_order() const {
  std::vector<std::string> violations;
  for (size_t i = 0; i < passes_.size(); ++i) {
    for (std::string_view required : passes_[i]->requires_passes()) {
      bool satisfied = false;
      for (size_t j = 0; j < i; ++j)
        if (passes_[j]->name() == required) {
          satisfied = true;
          break;
        }
      if (!satisfied)
        violations.push_back(std::string(passes_[i]->name()) +
                             " requires " + std::string(required) +
                             " earlier in the pipeline");
    }
  }
  return violations;
}

std::vector<std::string_view> PassManager::pass_names() const {
  std::vector<std::string_view> names;
  names.reserve(passes_.size());
  for (const auto& pass : passes_) names.push_back(pass->name());
  return names;
}

std::vector<PassPlanEntry> PassManager::plan(
    const CompilationUnit& unit) const {
  std::vector<PassPlanEntry> entries;
  entries.reserve(passes_.size());
  for (const auto& pass : passes_)
    entries.push_back({pass->name(), pass->enabled(unit)});
  return entries;
}

bool PassManager::run(CompilationUnit& unit) {
  timings_.clear();
  timings_.reserve(passes_.size());
  bool halted = false;
  for (const auto& pass : passes_) {
    PassTiming timing;
    timing.name = std::string(pass->name());
    if (!halted && pass->enabled(unit)) {
      // One timing source: the span's clock reads feed the PassTiming
      // (psc --time-passes), the trace event (psc --trace) and the
      // per-pass latency histogram (psc --metrics) alike -- there is no
      // second hand-rolled timer to drift from the telemetry view.
      TimedSpan span(timing.name.c_str(), "pass");
      span.arg("unit", unit.diags.file_name());
      pass->run(unit);
      timing.milliseconds = span.finish_ms();
      MetricsRegistry::global()
          .histogram("pass." + timing.name + "_ms")
          .record(timing.milliseconds);
      timing.ran = true;
      // Early exit: a pass that diagnosed errors (or requested a stop)
      // ends the pipeline; the remaining stages are recorded as skipped.
      if (unit.diags.has_errors() || unit.stop) halted = true;
    }
    timings_.push_back(std::move(timing));
  }
  return !halted;
}

PassManager PassManager::module_pipeline() {
  PassManager pm;
  pm.add(std::make_unique<SemaPass>())
      .add(std::make_unique<DepGraphPass>())
      .add(std::make_unique<SchedulePass>())
      .add(std::make_unique<LoopMergePass>())
      .add(std::make_unique<EmitPass>());
  return pm;
}

PassManager PassManager::default_pipeline() {
  PassManager pm;
  pm.add(std::make_unique<ParsePass>())
      .add(std::make_unique<SemaPass>())
      .add(std::make_unique<DepGraphPass>())
      .add(std::make_unique<SchedulePass>())
      .add(std::make_unique<LoopMergePass>())
      .add(std::make_unique<HyperplanePass>())
      .add(std::make_unique<ExactBoundsPass>())
      .add(std::make_unique<EmitPass>());
  return pm;
}

std::string format_pass_timings(const std::vector<PassTiming>& timings) {
  TextTable table({"Pass", "Time (ms)", "Ran"});
  double total = 0;
  for (const PassTiming& timing : timings) {
    char buffer[32];
    snprintf(buffer, sizeof(buffer), "%.3f", timing.milliseconds);
    table.add_row({timing.name, timing.ran ? buffer : "-",
                   timing.ran ? "yes" : "no"});
    total += timing.milliseconds;
  }
  char buffer[32];
  snprintf(buffer, sizeof(buffer), "%.3f", total);
  table.add_row({"total", buffer, ""});
  return table.render();
}

}  // namespace ps
