#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include <vector>

#include "codegen/c_emitter.hpp"
#include "core/loop_merge.hpp"
#include "core/scheduler.hpp"
#include "driver/pass_manager.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "graph/depgraph.hpp"
#include "transform/dependence.hpp"
#include "transform/hyperplane.hpp"
#include "transform/polyhedron.hpp"
#include "transform/rewrite.hpp"

namespace ps {

struct CompileResult {
  bool ok = false;
  std::string diagnostics;  // rendered diagnostics (empty on clean success)
  std::optional<CompiledModule> primary;
  /// Populated when apply_hyperplane found and transformed a candidate.
  std::optional<DependenceSet> dependences;
  std::optional<HyperplaneTransform> transform;
  std::optional<CompiledModule> transformed;
  /// Exact loop bounds of the transformed iteration space (set when
  /// CompileOptions::exact_bounds and a transform was applied). Pass to
  /// InterpreterOptions::exact_bounds / CodegenOptions::exact_bounds;
  /// stable for the lifetime of the result.
  std::optional<LoopNestBounds> exact_nest;
  /// Per-stage wall time of the pipeline that produced this result
  /// (psc --time-passes); one entry per pass, skipped stages included.
  std::vector<PassTiming> pass_timings;
};

/// The psc compiler facade: a thin wrapper that assembles the default
/// pass pipeline (Parse -> Sema -> DepGraph -> Schedule -> LoopMerge ->
/// Hyperplane -> ExactBounds -> Emit) from its options and threads a
/// CompilationUnit through it. See driver/pass_manager.hpp for the
/// stages themselves.
class Compiler {
 public:
  explicit Compiler(CompileOptions options = {}) : options_(options) {}

  /// Compile the first module of `source`. `file_name` labels rendered
  /// diagnostics; `hyperplane_cache` (optional) memoises hyperplane
  /// solutions across compiles -- the batch driver passes its shared
  /// cache here. A cache hit returns exactly what solving again would,
  /// so results are byte-identical with or without one.
  [[nodiscard]] CompileResult compile(
      std::string_view source, std::string file_name = "<input>",
      HyperplaneCache* hyperplane_cache = nullptr) const;

  /// Analyse and schedule an already-parsed module: the per-module tail
  /// of the pipeline (Sema..Emit) on a fresh unit. Diagnostics are
  /// replayed into `diags`.
  [[nodiscard]] std::optional<CompiledModule> analyze(
      ModuleAst ast, DiagnosticEngine& diags) const;

  /// The pipeline `compile` runs, for listing and ordering checks
  /// (psc --passes).
  [[nodiscard]] PassManager pipeline() const {
    return PassManager::default_pipeline();
  }

  [[nodiscard]] const CompileOptions& options() const { return options_; }

 private:
  CompileOptions options_;
};

}  // namespace ps
