#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "codegen/c_emitter.hpp"
#include "core/loop_merge.hpp"
#include "core/scheduler.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "graph/depgraph.hpp"
#include "transform/dependence.hpp"
#include "transform/hyperplane.hpp"
#include "transform/polyhedron.hpp"
#include "transform/rewrite.hpp"

namespace ps {

/// End-to-end compilation options.
struct CompileOptions {
  /// Run the loop-fusion pass on the flowchart (the paper's conclusion
  /// lists better loop merging as ongoing work).
  bool merge_loops = false;
  /// Attempt the section-4 hyperplane restructuring on recursively
  /// defined local arrays whose dependences force iterative inner loops.
  bool apply_hyperplane = false;
  /// With apply_hyperplane: also project the transformed iteration
  /// domain to exact non-rectangular loop bounds (Lamport [10]) via
  /// Fourier-Motzkin elimination, and emit the transformed module's C
  /// with those bounds instead of the guarded bounding box. The nest is
  /// returned in CompileResult::exact_nest for the interpreter.
  bool exact_bounds = false;
  /// Generate C code (deliverable of the paper's code generator phase).
  bool emit_c_code = true;
  bool emit_openmp = true;
  bool use_virtual_windows = true;
  TimeFunctionOptions solver;
};

/// One fully analysed and scheduled module.
struct CompiledModule {
  std::unique_ptr<CheckedModule> module;
  std::unique_ptr<DepGraph> graph;  // refers into *module
  ScheduleResult schedule;
  MergeStats merge_stats;
  std::string c_code;
  std::string source;  // PS source text (pretty-printed for derived modules)
};

struct CompileResult {
  bool ok = false;
  std::string diagnostics;  // rendered diagnostics (empty on clean success)
  std::optional<CompiledModule> primary;
  /// Populated when apply_hyperplane found and transformed a candidate.
  std::optional<DependenceSet> dependences;
  std::optional<HyperplaneTransform> transform;
  std::optional<CompiledModule> transformed;
  /// Exact loop bounds of the transformed iteration space (set when
  /// CompileOptions::exact_bounds and a transform was applied). Pass to
  /// InterpreterOptions::exact_bounds / CodegenOptions::exact_bounds;
  /// stable for the lifetime of the result.
  std::optional<LoopNestBounds> exact_nest;
};

/// The psc compiler facade: parse -> sema -> dependency graph ->
/// schedule (-> hyperplane restructure -> reschedule) -> C code.
class Compiler {
 public:
  explicit Compiler(CompileOptions options = {}) : options_(options) {}

  /// Compile the first module of `source`.
  [[nodiscard]] CompileResult compile(std::string_view source) const;

  /// Analyse and schedule an already-parsed module.
  [[nodiscard]] std::optional<CompiledModule> analyze(
      ModuleAst ast, DiagnosticEngine& diags) const;

  [[nodiscard]] const CompileOptions& options() const { return options_; }

 private:
  CompileOptions options_;
};

}  // namespace ps
