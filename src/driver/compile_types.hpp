#pragma once

#include <memory>
#include <string>

#include "core/loop_merge.hpp"
#include "core/scheduler.hpp"
#include "frontend/sema.hpp"
#include "graph/depgraph.hpp"
#include "transform/time_function.hpp"

namespace ps {

/// Compiler version string. Part of every artifact-cache key: bump it
/// whenever a pass, the emitter or the diagnostics renderer changes
/// observable output, and every previously cached artifact silently
/// becomes a miss (never a stale hit).
inline constexpr const char kPscVersion[] = "psc-5.0";

/// End-to-end compilation options.
struct CompileOptions {
  /// Run the loop-fusion pass on the flowchart (the paper's conclusion
  /// lists better loop merging as ongoing work).
  bool merge_loops = false;
  /// Attempt the section-4 hyperplane restructuring on recursively
  /// defined local arrays whose dependences force iterative inner loops.
  bool apply_hyperplane = false;
  /// With apply_hyperplane: also project the transformed iteration
  /// domain to exact non-rectangular loop bounds (Lamport [10]) via
  /// Fourier-Motzkin elimination, and emit the transformed module's C
  /// with those bounds instead of the guarded bounding box. The nest is
  /// returned in CompileResult::exact_nest for the interpreter.
  bool exact_bounds = false;
  /// Generate C code (deliverable of the paper's code generator phase).
  bool emit_c_code = true;
  bool emit_openmp = true;
  bool use_virtual_windows = true;
  TimeFunctionOptions solver;
};

/// One fully analysed and scheduled module.
struct CompiledModule {
  std::unique_ptr<CheckedModule> module;
  std::unique_ptr<DepGraph> graph;  // refers into *module
  ScheduleResult schedule;
  MergeStats merge_stats;
  std::string c_code;
  std::string source;  // PS source text (pretty-printed for derived modules)
};

}  // namespace ps
