#pragma once

#include <string>
#include <vector>

#include "driver/compiler.hpp"
#include "runtime/thread_pool.hpp"
#include "support/interner.hpp"
#include "transform/hyperplane.hpp"

namespace ps {

/// One input of a batch compilation.
struct BatchInput {
  std::string name;    // display name, usually the file path
  std::string source;  // PS source text (EQN text when is_eqn)
  /// Translate TeX-style equation input (.eqn) to PS before compiling.
  bool is_eqn = false;
};

/// The outcome of one unit: the same CompileResult the single-module
/// facade produces (byte-identical C, diagnostics, timings), plus the
/// unit's wall time inside the batch.
struct BatchUnitResult {
  std::string name;
  CompileResult result;
  double milliseconds = 0;
  /// The unit's module name as a view into the driver's shared symbol
  /// table (empty for failed units). Valid while the driver lives.
  std::string_view module_symbol;
  /// The compiled runtime tier the unit's primary module reaches
  /// ("bytecode", or "tree-walk" when the bytecode compiler does not
  /// cover it; empty for failed units), with the structured
  /// "<tier>: <cause>" in `engine_fallback` -- the batch report's tier
  /// column (probe_engine_tier).
  std::string engine_tier;
  std::string engine_fallback;
};

struct BatchOptions {
  /// Total parallelism (workers including the calling thread); 1 runs
  /// strictly sequentially with no pool, 0 uses the hardware count.
  /// Ignored when `pool` is set.
  size_t jobs = 1;
  /// Reuse an existing worker pool instead of spawning one per
  /// compile_all call -- the steady-state shape for a long-lived service
  /// (and the batch bench), where thread creation would otherwise
  /// dominate small batches.
  ThreadPool* pool = nullptr;
  /// Share one HyperplaneCache across every unit of the batch, so
  /// identical dependence sets solve their time function once.
  bool share_hyperplane_solutions = true;
};

/// Whole-batch statistics, filled by compile_all.
struct BatchSummary {
  size_t total = 0;
  size_t succeeded = 0;
  size_t failed = 0;
  size_t jobs = 1;
  double wall_ms = 0;  // batch wall time
  double cpu_ms = 0;   // sum of per-unit pipeline times
  size_t hyperplane_hits = 0;
  size_t hyperplane_misses = 0;
  /// Distinct module/data-item spellings in the driver's shared symbol
  /// table. Unlike the cache hit/miss deltas above, this is the table's
  /// size -- cumulative across batches when a driver is reused, since
  /// vocabulary is a property of the table, not of one call.
  size_t distinct_symbols = 0;
  /// Per-pass wall time summed over every unit, in pipeline order
  /// (aggregate psc --time-passes).
  std::vector<PassTiming> aggregate_timings;
};

/// Compiles N compilation units concurrently on the runtime thread
/// pool: each unit's pass pipeline is one coarse task claimed from the
/// pool's shared work queue (dynamic self-scheduling, so a unit with an
/// expensive Hyperplane solve never serialises its neighbours), with
/// read-only state shared across workers -- the memoised hyperplane
/// solutions and the interned symbol table.
///
/// Determinism contract: results come back in input order; each unit's
/// CompileResult (emitted C, rendered diagnostics, artefacts) is
/// byte-identical to what Compiler::compile produces for the same
/// source sequentially, at any job count. Units are isolated: a unit
/// that fails (diagnostics or an internal error) never affects its
/// neighbours' output.
class BatchDriver {
 public:
  explicit BatchDriver(CompileOptions compile_options = {},
                       BatchOptions batch_options = {});

  /// Compile every input; the result vector parallels `inputs`.
  [[nodiscard]] std::vector<BatchUnitResult> compile_all(
      const std::vector<BatchInput>& inputs);

  /// Statistics of the last compile_all call.
  [[nodiscard]] const BatchSummary& summary() const { return summary_; }

  [[nodiscard]] const HyperplaneCache& hyperplane_cache() const {
    return hyperplane_cache_;
  }
  [[nodiscard]] const StringInterner& symbols() const { return symbols_; }

  /// Per-unit diagnostics concatenated in input order (empty when every
  /// unit was clean) -- the deterministic merge of the per-unit sinks.
  [[nodiscard]] static std::string merged_diagnostics(
      const std::vector<BatchUnitResult>& results);

  /// Human-readable batch report: one row per unit plus summary lines
  /// (psc --batch-report).
  [[nodiscard]] static std::string format_report(
      const std::vector<BatchUnitResult>& results,
      const BatchSummary& summary);

  /// Machine-readable report (psc --batch-report --json).
  [[nodiscard]] static std::string report_json(
      const std::vector<BatchUnitResult>& results,
      const BatchSummary& summary);

 private:
  CompileResult compile_unit(const BatchInput& input);

  CompileOptions compile_options_;
  BatchOptions batch_options_;
  HyperplaneCache hyperplane_cache_;
  StringInterner symbols_;
  BatchSummary summary_;
};

}  // namespace ps
