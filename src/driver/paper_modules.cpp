#include "driver/paper_modules.hpp"

namespace ps {

// Figure 1 of the paper, with the OCR damage repaired: subranges
// I,J = 0..M+1 and K = 2..maxK; A is array [1..maxK] of array [I,J].
const char* const kRelaxationSource = R"PS(
(*$m+v+x+t-*)
Relaxation: module (InitialA: array[I,J] of real;
                    M: int; maxK: int):
  [newA: array [I, J] of real];
type
  I, J = 0 .. M+1;  K = 2 .. maxK;
var
  A: array [1 .. maxK] of array [I, J] of real;
  (* A denotes the succession of grids *)
define
  (*eq.1*) A[1] = InitialA;   (* the first grid is input *)
  (*eq.2*) newA = A[maxK];    (* the grid returned is from
                                 the last iteration *)
  (*eq.3*) A[K,I,J] = if (I = 0)
                      or (J = 0)
                      or (I = M+1)
                      or (J = M+1)
                      then A[K-1,I,J]   (* carry over boundary points *)
                      else ( A[K-1,I,J-1]
                            +A[K-1,I-1,J]
                            +A[K-1,I,J+1]
                            +A[K-1,I+1,J] ) / 4;
end Relaxation;
)PS";

// Section 4's revised equation 3: J-1 and I-1 neighbours are taken from
// the current sweep K, forcing iterative I and J loops (Figure 7).
const char* const kGaussSeidelSource = R"PS(
Relaxation: module (InitialA: array[I,J] of real;
                    M: int; maxK: int):
  [newA: array [I, J] of real];
type
  I, J = 0 .. M+1;  K = 2 .. maxK;
var
  A: array [1 .. maxK] of array [I, J] of real;
define
  (*eq.1*) A[1] = InitialA;
  (*eq.2*) newA = A[maxK];
  (*eq.3*) A[K,I,J] = if (I = 0)
                      or (J = 0)
                      or (I = M+1)
                      or (J = M+1)
                      then A[K-1,I,J]
                      else ( A[K,I,J-1]
                            +A[K,I-1,J]
                            +A[K-1,I,J+1]
                            +A[K-1,I+1,J] ) / 4;
end Relaxation;
)PS";

const char* const kHeat1dSource = R"PS(
Heat1d: module (u0: array[X] of real; N: int; steps: int;
                r: real):
  [uOut: array [X] of real];
type
  X = 0 .. N+1;  T = 2 .. steps;
var
  u: array [1 .. steps] of array [X] of real;
define
  u[1] = u0;
  uOut = u[steps];
  u[T,X] = if (X = 0) or (X = N+1)
           then u[T-1,X]
           else u[T-1,X] + r * (u[T-1,X-1] - 2.0 * u[T-1,X] + u[T-1,X+1]);
end Heat1d;
)PS";

const char* const kPointwiseChainSource = R"PS(
Chain: module (x: array[I] of real; N: int):
  [y: array [I] of real];
type
  I = 0 .. N-1;
var
  a: array [I] of real;
  b: array [I] of real;
  c: array [I] of real;
define
  a[I] = x[I] * 2.0;
  b[I] = a[I] + 1.0;
  c[I] = b[I] * b[I];
  y[I] = c[I] - a[I];
end Chain;
)PS";

const std::vector<PaperModule>& paper_corpus() {
  static const std::vector<PaperModule> corpus = {
      {"jacobi", kRelaxationSource},
      {"gauss-seidel", kGaussSeidelSource},
      {"heat1d", kHeat1dSource},
      {"chain", kPointwiseChainSource},
  };
  return corpus;
}

}  // namespace ps
