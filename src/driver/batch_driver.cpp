#include "driver/batch_driver.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "eqn/translate.hpp"
#include "frontend/ast.hpp"
#include "runtime/engine_host.hpp"
#include "runtime/thread_pool.hpp"
#include "support/report_format.hpp"
#include "support/telemetry.hpp"
#include "support/text_table.hpp"

namespace ps {

namespace {

/// format_ms / json_escape moved to support/report_format.hpp, shared
/// with the compile service's cached-report renderer.
std::string format_ms(double ms) { return format_ms_fixed(ms); }

}  // namespace

BatchDriver::BatchDriver(CompileOptions compile_options,
                         BatchOptions batch_options)
    : compile_options_(compile_options), batch_options_(batch_options) {}

CompileResult BatchDriver::compile_unit(const BatchInput& input) {
  HyperplaneCache* cache = batch_options_.share_hyperplane_solutions
                               ? &hyperplane_cache_
                               : nullptr;
  Compiler compiler(compile_options_);
  if (!input.is_eqn) return compiler.compile(input.source, input.name, cache);

  // EQN front end: translate the equation module to a PS AST, then run
  // its pretty-printed source through the ordinary pipeline.
  DiagnosticEngine eqn_diags;
  eqn_diags.set_source(input.source, input.name);
  auto ast = eqn::equations_to_ps(input.source, eqn_diags);
  if (!ast) {
    CompileResult failed;
    failed.ok = false;
    failed.diagnostics = eqn_diags.render();
    return failed;
  }
  // Locations in any further diagnostics refer to the translated PS
  // text (the user never wrote PS), so say so in the label.
  std::string ps_source = to_source(*ast);
  return compiler.compile(ps_source, input.name + " (translated PS)", cache);
}

std::vector<BatchUnitResult> BatchDriver::compile_all(
    const std::vector<BatchInput>& inputs) {
  summary_ = BatchSummary{};
  summary_.total = inputs.size();
  size_t jobs = batch_options_.jobs;
  if (batch_options_.pool != nullptr) {
    jobs = batch_options_.pool->size();
  } else if (jobs == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    jobs = hw == 0 ? 4 : hw;
  }
  // Report the parallelism that actually runs: single-unit (or -j 1)
  // batches take the sequential path whatever was requested.
  if (jobs <= 1 || inputs.size() <= 1) jobs = 1;
  summary_.jobs = jobs;

  // Results are indexed by input position: whatever order the workers
  // claim units in, output order (and every merge below) is the input
  // order -- the determinism contract.
  std::vector<BatchUnitResult> results(inputs.size());
  // The cache (and interner) outlive individual batches in a reused
  // driver; the summary reports this call's delta, not lifetime totals.
  size_t hits_before = hyperplane_cache_.hits();
  size_t misses_before = hyperplane_cache_.misses();
  TimedSpan batch_span("compile-all", "batch");
  batch_span.arg("units", static_cast<int64_t>(inputs.size()));
  batch_span.arg("jobs", static_cast<int64_t>(jobs));

  auto run_one = [&](int64_t i) {
    const BatchInput& input = inputs[static_cast<size_t>(i)];
    BatchUnitResult& out = results[static_cast<size_t>(i)];
    // The unit span is the unit timer: each -j worker records into its
    // own thread's trace ring, so worker lanes come out as separate tid
    // rows in the trace viewer with the per-pass spans nested inside.
    TimedSpan span("compile-unit", "batch");
    span.arg("unit", input.name);
    out.name = input.name;
    try {
      out.result = compile_unit(input);
    } catch (const std::exception& e) {
      // A throwing unit (e.g. an internal limit) fails alone; its
      // neighbours keep compiling.
      out.result = CompileResult{};
      out.result.ok = false;
      out.result.diagnostics =
          input.name + ": error: internal: " + e.what() + "\n";
    }
    out.milliseconds = span.finish_ms();
    MetricsRegistry& metrics = MetricsRegistry::global();
    metrics.histogram("batch.unit_ms").record(out.milliseconds);
    metrics.counter("batch.units").add(1);
    if (!out.result.ok) metrics.counter("batch.failures").add(1);
    if (out.result.primary) {
      // Fold this unit's spellings into the batch-wide symbol table;
      // the report prints module names from the interned storage.
      out.module_symbol = symbols_.intern(out.result.primary->module->name);
      for (const DataItem& item : out.result.primary->module->data)
        symbols_.intern(item.name);
      // The tier column of the batch report: which compiled runtime
      // tier this unit reaches, and why if it degrades.
      EngineTierProbe probe = probe_engine_tier(*out.result.primary->module);
      out.engine_tier = std::move(probe.tier);
      out.engine_fallback = std::move(probe.fallback);
    }
  };

  if (jobs <= 1 || inputs.size() <= 1) {
    for (size_t i = 0; i < inputs.size(); ++i)
      run_one(static_cast<int64_t>(i));
  } else if (batch_options_.pool != nullptr) {
    // One coarse task per unit, chunk size 1, so a unit with an
    // expensive solve never holds up queued neighbours.
    batch_options_.pool->parallel_tasks(static_cast<int64_t>(inputs.size()),
                                        run_one);
  } else {
    ThreadPool pool(jobs);
    pool.parallel_tasks(static_cast<int64_t>(inputs.size()), run_one);
  }

  summary_.wall_ms = batch_span.finish_ms();
  for (const BatchUnitResult& unit : results) {
    if (unit.result.ok)
      ++summary_.succeeded;
    else
      ++summary_.failed;
    summary_.cpu_ms += unit.milliseconds;
    // Aggregate per-pass timings position-wise (every unit runs the
    // same default pipeline; EQN-translation failures have no timings).
    for (size_t p = 0; p < unit.result.pass_timings.size(); ++p) {
      const PassTiming& timing = unit.result.pass_timings[p];
      if (p >= summary_.aggregate_timings.size()) {
        PassTiming fresh;
        fresh.name = timing.name;
        summary_.aggregate_timings.push_back(std::move(fresh));
      }
      PassTiming& total = summary_.aggregate_timings[p];
      total.milliseconds += timing.milliseconds;
      total.ran = total.ran || timing.ran;
    }
  }
  summary_.hyperplane_hits = hyperplane_cache_.hits() - hits_before;
  summary_.hyperplane_misses = hyperplane_cache_.misses() - misses_before;
  summary_.distinct_symbols = symbols_.size();
  return results;
}

std::string BatchDriver::merged_diagnostics(
    const std::vector<BatchUnitResult>& results) {
  std::string merged;
  for (const BatchUnitResult& unit : results)
    merged += unit.result.diagnostics;
  return merged;
}

std::string BatchDriver::format_report(
    const std::vector<BatchUnitResult>& results, const BatchSummary& summary) {
  TextTable table({"Unit", "Module", "Status", "Engine", "Time (ms)"});
  size_t degraded = 0;
  for (const BatchUnitResult& unit : results) {
    std::string module = unit.module_symbol.empty()
                             ? "-"
                             : std::string(unit.module_symbol);
    if (!unit.engine_fallback.empty()) ++degraded;
    table.add_row({unit.name, module, unit.result.ok ? "ok" : "failed",
                   unit.engine_tier.empty() ? "-" : unit.engine_tier,
                   format_ms(unit.milliseconds)});
  }
  std::ostringstream os;
  os << table.render();
  os << summary.succeeded << "/" << summary.total << " units succeeded, -j "
     << summary.jobs << ", wall " << format_ms(summary.wall_ms)
     << " ms, cpu " << format_ms(summary.cpu_ms) << " ms\n";
  os << "hyperplane cache: " << summary.hyperplane_hits << " hits, "
     << summary.hyperplane_misses << " misses; interned symbols: "
     << summary.distinct_symbols << "\n";
  // Tier degradations are silent per unit (the runtime still runs);
  // surface the causes here so a batch on the slow tier is visible.
  if (degraded > 0) {
    os << "engine fallbacks:\n";
    for (const BatchUnitResult& unit : results)
      if (!unit.engine_fallback.empty())
        os << "  " << unit.name << ": " << unit.engine_fallback << "\n";
  }
  if (!summary.aggregate_timings.empty())
    os << "aggregate pass times:\n"
       << format_pass_timings(summary.aggregate_timings);
  return os.str();
}

std::string BatchDriver::report_json(
    const std::vector<BatchUnitResult>& results, const BatchSummary& summary) {
  std::ostringstream os;
  os << "{\n  \"summary\": {\"total\": " << summary.total
     << ", \"succeeded\": " << summary.succeeded
     << ", \"failed\": " << summary.failed << ", \"jobs\": " << summary.jobs
     << ", \"wall_ms\": " << format_ms(summary.wall_ms)
     << ", \"cpu_ms\": " << format_ms(summary.cpu_ms)
     << ", \"hyperplane_hits\": " << summary.hyperplane_hits
     << ", \"hyperplane_misses\": " << summary.hyperplane_misses
     << ", \"distinct_symbols\": " << summary.distinct_symbols << "},\n";
  os << "  \"units\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const BatchUnitResult& unit = results[i];
    os << "    {\"name\": \"" << json_escape(unit.name) << "\", \"ok\": "
       << (unit.result.ok ? "true" : "false")
       << ", \"engine\": \"" << json_escape(unit.engine_tier)
       << "\", \"fallback\": \"" << json_escape(unit.engine_fallback)
       << "\", \"ms\": " << format_ms(unit.milliseconds) << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"passes\": [\n";
  for (size_t p = 0; p < summary.aggregate_timings.size(); ++p) {
    const PassTiming& timing = summary.aggregate_timings[p];
    os << "    {\"name\": \"" << json_escape(timing.name) << "\", \"ms\": "
       << format_ms(timing.milliseconds) << "}"
       << (p + 1 < summary.aggregate_timings.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace ps
