#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "codegen/c_emitter.hpp"
#include "core/loop_merge.hpp"
#include "core/scheduler.hpp"
#include "driver/compile_types.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "graph/depgraph.hpp"
#include "support/diagnostics.hpp"
#include "transform/dependence.hpp"
#include "transform/hyperplane.hpp"
#include "transform/polyhedron.hpp"
#include "transform/rewrite.hpp"

namespace ps {

/// The state threaded through the pass pipeline: source in, analysis
/// artefacts accumulated stage by stage, C code out. One unit describes
/// one module's journey; the Hyperplane pass runs a nested pipeline over
/// a second unit for the rewritten module.
struct CompilationUnit {
  CompilationUnit(const CompileOptions& options, std::string_view source,
                  std::string file_name = "<input>");

  const CompileOptions* options;  // never null
  std::string_view source;        // must outlive the unit
  DiagnosticEngine diags;

  // -- Parse -------------------------------------------------------------
  std::optional<ModuleAst> ast;

  // -- Sema --------------------------------------------------------------
  std::string module_source;  // pretty-printed PS of the module
  std::unique_ptr<CheckedModule> module;

  // -- DepGraph ----------------------------------------------------------
  std::unique_ptr<DepGraph> graph;  // refers into *module

  // -- Schedule / LoopMerge ----------------------------------------------
  ScheduleResult schedule;
  MergeStats merge_stats;

  // -- Emit --------------------------------------------------------------
  std::string c_code;

  // -- Hyperplane / ExactBounds (top-level unit only) --------------------
  std::optional<DependenceSet> dependences;
  std::optional<HyperplaneTransform> transform;
  std::optional<CompiledModule> transformed;
  std::optional<LoopNestBounds> exact_nest;

  /// Diagnostics rendered by nested pipelines (e.g. a failed analysis of
  /// the hyperplane-rewritten module), appended to the unit's own.
  std::string extra_diagnostics;

  /// Shared memo table for hyperplane solutions, set by the batch driver
  /// so units with identical dependence sets solve once. Optional; null
  /// means solve directly (the single-module path).
  HyperplaneCache* hyperplane_cache = nullptr;

  /// Set by a pass to halt the pipeline without emitting a diagnostic
  /// (diagnosed errors halt it on their own).
  bool stop = false;

  /// Move the per-module artefacts out as the driver-facing result type.
  [[nodiscard]] CompiledModule take_module();
};

/// One named compilation stage. Passes declare the stages they depend
/// on so a pipeline's ordering can be verified statically (the
/// `--passes` reorder check and the pass-manager tests).
class Pass {
 public:
  virtual ~Pass() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Names of passes that must appear (enabled) earlier in the pipeline.
  [[nodiscard]] virtual std::vector<std::string_view> requires_passes()
      const {
    return {};
  }

  /// False when the unit's options turn the stage off; skipped passes
  /// still show up in listings and timing reports (with ran = false).
  [[nodiscard]] virtual bool enabled(const CompilationUnit& unit) const {
    return true;
  }

  virtual void run(CompilationUnit& unit) = 0;
};

/// Wall time and disposition of one pipeline stage.
struct PassTiming {
  std::string name;
  double milliseconds = 0;
  bool ran = false;
};

/// One row of a pipeline listing (psc --passes).
struct PassPlanEntry {
  std::string_view name;
  bool enabled = false;
};

/// Runs passes in order over a CompilationUnit, recording per-stage wall
/// time and early-exiting as soon as a pass leaves error diagnostics or
/// sets `unit.stop`.
class PassManager {
 public:
  PassManager() = default;

  PassManager& add(std::unique_ptr<Pass> pass);

  /// Verify that every pass's `requires_passes()` names a stage added
  /// earlier; returns the violations ("X requires Y") or empty when the
  /// ordering is valid.
  [[nodiscard]] std::vector<std::string> check_order() const;

  /// Run the pipeline. Returns true when every enabled pass ran without
  /// leaving errors. Timings for the completed run are in `timings()`.
  bool run(CompilationUnit& unit);

  [[nodiscard]] const std::vector<PassTiming>& timings() const {
    return timings_;
  }

  [[nodiscard]] std::vector<std::string_view> pass_names() const;

  /// Which stages would run for this unit's options (psc --passes).
  [[nodiscard]] std::vector<PassPlanEntry> plan(
      const CompilationUnit& unit) const;

  [[nodiscard]] size_t size() const { return passes_.size(); }

  /// The stages `Compiler::compile` assembles from its options: Parse,
  /// Sema, DepGraph, Schedule, LoopMerge, Hyperplane, ExactBounds, Emit.
  [[nodiscard]] static PassManager default_pipeline();

  /// The per-module tail of the pipeline (Sema..Emit), used by
  /// `Compiler::analyze` and by the Hyperplane pass for the rewritten
  /// module.
  [[nodiscard]] static PassManager module_pipeline();

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
  std::vector<PassTiming> timings_;
};

/// Render timings as a small right-aligned table (psc --time-passes).
[[nodiscard]] std::string format_pass_timings(
    const std::vector<PassTiming>& timings);

}  // namespace ps
