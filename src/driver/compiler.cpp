#include "driver/compiler.hpp"

#include "driver/pass_manager.hpp"

namespace ps {

std::optional<CompiledModule> Compiler::analyze(ModuleAst ast,
                                                DiagnosticEngine& diags) const {
  CompilationUnit unit(options_, {});
  unit.ast = std::move(ast);
  PassManager pipeline = PassManager::module_pipeline();
  pipeline.run(unit);

  // Replay the unit's diagnostics into the caller's engine (which may
  // carry its own source buffer and earlier diagnostics).
  for (const Diagnostic& d : unit.diags.diagnostics()) {
    switch (d.severity) {
      case Severity::Note: diags.note(d.loc, d.message); break;
      case Severity::Warning: diags.warning(d.loc, d.message); break;
      case Severity::Error: diags.error(d.loc, d.message); break;
    }
  }
  if (unit.module == nullptr) return std::nullopt;
  // A failed schedule still returns the analysis artefacts (with error
  // diagnostics in `diags`), matching the historical facade behaviour.
  return unit.take_module();
}

CompileResult Compiler::compile(std::string_view source,
                                std::string file_name,
                                HyperplaneCache* hyperplane_cache) const {
  CompilationUnit unit(options_, source, std::move(file_name));
  unit.hyperplane_cache = hyperplane_cache;
  PassManager pipeline = PassManager::default_pipeline();
  bool ok = pipeline.run(unit);

  CompileResult result;
  result.ok = ok;
  result.diagnostics = unit.diags.render() + unit.extra_diagnostics;
  result.pass_timings = pipeline.timings();
  if (unit.module != nullptr) result.primary = unit.take_module();
  if (!ok) return result;

  result.dependences = std::move(unit.dependences);
  result.transform = std::move(unit.transform);
  result.transformed = std::move(unit.transformed);
  result.exact_nest = std::move(unit.exact_nest);
  return result;
}

}  // namespace ps
