#include "driver/compiler.hpp"

namespace ps {

std::optional<CompiledModule> Compiler::analyze(ModuleAst ast,
                                                DiagnosticEngine& diags) const {
  CompiledModule out;
  out.source = to_source(ast);

  Sema sema(diags);
  auto checked = sema.check(std::move(ast));
  if (!checked) return std::nullopt;
  out.module = std::make_unique<CheckedModule>(std::move(*checked));

  out.graph = std::make_unique<DepGraph>(DepGraph::build(*out.module));

  Scheduler scheduler(*out.graph);
  out.schedule = scheduler.run();
  if (!out.schedule.ok) {
    for (const auto& err : out.schedule.errors) diags.error({}, err);
    return out;  // schedule failed but analysis artefacts remain useful
  }

  if (options_.merge_loops)
    out.schedule.flowchart =
        merge_loops_reordered(std::move(out.schedule.flowchart), *out.graph,
                              &out.merge_stats);

  if (options_.emit_c_code) {
    CodegenOptions cg;
    cg.emit_openmp = options_.emit_openmp;
    cg.use_virtual_windows = options_.use_virtual_windows;
    cg.virtual_dims = &out.schedule.virtual_dims;
    out.c_code = emit_c(*out.module, *out.graph, out.schedule.flowchart, cg);
  }
  return out;
}

CompileResult Compiler::compile(std::string_view source) const {
  CompileResult result;
  DiagnosticEngine diags;
  diags.set_source(source);

  Parser parser(source, diags);
  ProgramAst program = parser.parse_program();
  if (diags.has_errors() || program.modules.empty()) {
    if (program.modules.empty() && !diags.has_errors())
      diags.error({}, "no module found in input");
    result.diagnostics = diags.render();
    return result;
  }

  auto primary = analyze(std::move(program.modules.front()), diags);
  if (!primary || diags.has_errors()) {
    result.diagnostics = diags.render();
    if (primary) result.primary = std::move(primary);
    return result;
  }
  result.primary = std::move(primary);
  result.ok = true;

  if (options_.apply_hyperplane) {
    const CheckedModule& module = *result.primary->module;
    for (const std::string& candidate : transform_candidates(module)) {
      DiagnosticEngine probe;  // failures here are not fatal
      auto deps = extract_dependences(module, candidate, probe);
      if (!deps) continue;
      auto transform = find_hyperplane(*deps, options_.solver);
      if (!transform) continue;
      auto rewritten = hyperplane_rewrite(module, *transform, probe);
      if (!rewritten) continue;
      DiagnosticEngine tdiags;
      auto transformed = analyze(std::move(*rewritten), tdiags);
      if (!transformed || tdiags.has_errors()) {
        result.diagnostics += tdiags.render();
        continue;
      }
      result.dependences = std::move(*deps);
      result.transform = std::move(*transform);
      result.transformed = std::move(transformed);

      if (options_.exact_bounds) {
        // Lamport-style exact scanning of the skewed domain: project the
        // image of the original index box onto per-level loop bounds and
        // regenerate the transformed module's C with them.
        auto domain = transformed_domain(module, *result.transform);
        if (domain) {
          auto nest =
              fourier_motzkin_bounds(*domain, result.transform->new_vars);
          if (nest) {
            result.exact_nest = std::move(*nest);
            if (options_.emit_c_code) {
              CodegenOptions cg;
              cg.emit_openmp = options_.emit_openmp;
              cg.use_virtual_windows = options_.use_virtual_windows;
              cg.virtual_dims = &result.transformed->schedule.virtual_dims;
              cg.exact_bounds = &*result.exact_nest;
              result.transformed->c_code = emit_c(
                  *result.transformed->module, *result.transformed->graph,
                  result.transformed->schedule.flowchart, cg);
            }
          }
        }
      }
      break;  // transform the first viable candidate
    }
  }

  result.diagnostics += diags.render();
  return result;
}

}  // namespace ps
