#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/compile_service.hpp"
#include "service/protocol.hpp"

namespace ps {

/// The per-user default daemon socket: $XDG_RUNTIME_DIR/psc-daemon.sock
/// when the runtime dir exists, /tmp/psc-daemon-<uid>.sock otherwise.
[[nodiscard]] std::string default_daemon_socket();

struct DaemonOptions {
  /// Unix-domain socket path; empty uses default_daemon_socket().
  std::string socket_path;
  /// Optional TCP listener as "HOST:PORT" (psc --daemon --listen=...).
  /// Port 0 binds an ephemeral port; read it back with tcp_port().
  /// Empty disables TCP -- the unix socket always listens.
  std::string listen;
  /// Admission control: Busy-reject a compile request once this many
  /// requests are queued or in flight (cache-complete requests are
  /// served inline on the reactor and never count). 0 rejects every
  /// request that would have to compile.
  size_t max_queue = 16;
  /// Janitor TTL: prune cache entries idle longer than this (their
  /// mtime refreshes on every load, so this is time-since-last-use).
  /// 0 disables the janitor thread.
  std::chrono::seconds cache_ttl{0};
  ServiceOptions service;
};

/// Reactor-level counters, exported next to the service/cache stats by
/// the Stats request (psc --daemon-stats).
struct DaemonStats {
  size_t connections_accepted = 0;
  size_t connections_open = 0;
  size_t compile_requests = 0;
  /// Requests fully answerable from the artifact cache, served on the
  /// reactor thread without touching the compile queue.
  size_t served_inline = 0;
  size_t queued = 0;  // requests dispatched to the compile queue
  size_t busy_rejections = 0;
  /// Requests refused before admission (version mismatch): these never
  /// enter the inline/queued/busy accounting, so the identity
  /// compile_requests == served_inline + queued + busy_rejections holds.
  size_t rejected = 0;
  size_t queue_depth = 0;  // queued + in-flight right now
};

/// The warm compile daemon behind `psc --daemon`: one long-lived
/// CompileService (worker pool, hyperplane/interner caches and the
/// artifact cache all stay warm across invocations) served by a single
/// poll()-based event loop.
///
/// One reactor thread owns every connection: non-blocking sockets, a
/// per-connection read buffer that frames are parsed out of and a
/// write buffer drained on POLLOUT -- no thread per client, no wakeup
/// polling (a self-pipe wakes the loop for stop requests and finished
/// compiles). An optional TCP listener accepts remote clients next to
/// the unix socket; both speak the same framing protocol.
///
/// Compile dispatch is cache-aware with admission control: a request
/// whose every unit is already cached is answered inline on the
/// reactor (CompileService::serve_cached -- it never blocks behind an
/// in-flight compile), anything else goes to a bounded queue consumed
/// by one dispatcher thread, and past max_queue the daemon answers
/// Busy instead of queueing (the client falls back to in-process
/// compilation; a saturated daemon never hangs its clients). One
/// dispatcher is not a throughput limit: CompileService serialises
/// compile() internally and fans each batch out on its worker pool.
///
/// Replies to protocol-v2 clients are streamed per unit
/// (CompileReplyBegin / UnitReply* / CompileReplyEnd) with a bounded
/// write high-water mark, so a spilled thousand-unit batch never holds
/// more than about one unit's bytes in daemon memory; v1 clients keep
/// getting the monolithic CompileReply.
///
/// Lifecycle: start() binds and listens (refusing to double-bind a
/// live daemon, reclaiming a stale socket file left by a crash);
/// serve() runs the reactor until a Shutdown message or
/// request_stop(), drains queued compiles and unflushed replies, then
/// removes the socket file. A background janitor thread prunes
/// cache entries older than cache_ttl, sparing pinned `.so`s.
class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind and listen on the unix socket (and the TCP address when
  /// configured). False when another daemon is live on the path or a
  /// socket cannot be created -- see error().
  [[nodiscard]] bool start();

  /// Run the reactor until Shutdown or request_stop(). Blocks; run on
  /// a dedicated thread when the caller needs to keep working.
  void serve();

  /// Ask the reactor to stop. Async-signal-safe (an atomic store and a
  /// self-pipe write), callable from any thread or a signal handler.
  void request_stop();

  [[nodiscard]] const std::string& socket_path() const {
    return socket_path_;
  }
  /// The bound TCP port (after start()); 0 when TCP is disabled.
  [[nodiscard]] uint16_t tcp_port() const { return tcp_port_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] CompileService& service() { return service_; }

  /// The Stats reply body: daemon/service/cache counters as aligned
  /// text or JSON.
  [[nodiscard]] std::string render_stats(bool json);

 private:
  /// An in-progress streamed (or deferred monolithic) reply: units are
  /// encoded into the write buffer one at a time as it drains, so
  /// reply memory is bounded by the high-water mark plus one unit.
  struct Stream {
    ServiceResponse response;
    size_t next_unit = 0;
    bool v2 = true;
  };

  /// One accepted connection and its read/write state machine.
  struct Connection {
    int fd = -1;
    std::string in;      // received bytes not yet parsed into frames
    std::string out;     // encoded reply bytes not yet written
    size_t out_pos = 0;  // how much of `out` already went out
    /// One request in flight (queued for compile or mid-stream); the
    /// reactor stops parsing this connection's frames until it clears.
    bool busy = false;
    bool close_after_write = false;
    std::unique_ptr<Stream> stream;
  };

  struct Job {
    uint64_t conn_id = 0;
    ServiceRequest request;
    bool v2 = false;
    /// When the reactor queued it; the dispatcher's dequeue time minus
    /// this feeds the daemon.queue_wait_ms histogram.
    std::chrono::steady_clock::time_point enqueued;
  };
  struct DoneJob {
    uint64_t conn_id = 0;
    bool v2 = false;
    ServiceResponse response;
    std::string error;  // non-empty: compile threw; reply with Error
  };

  [[nodiscard]] bool start_tcp();
  void serve_loop();
  void accept_ready(int listen_fd, bool tcp);
  void read_ready(uint64_t conn_id);
  void write_ready(uint64_t conn_id);
  void parse_frames(uint64_t conn_id);
  /// Serve one decoded request frame; may mark the connection busy.
  void handle_message(uint64_t conn_id, std::string_view payload);
  void handle_compile(uint64_t conn_id, std::string_view payload, bool v2);
  /// Encode ready units into the write buffer up to the high-water
  /// mark; finishes the stream (trailer frame, busy cleared) when the
  /// last unit went out.
  void pump_stream(uint64_t conn_id);
  /// Answer with the whole ServiceResponse at once (protocol v1).
  void reply_monolithic(uint64_t conn_id, const ServiceResponse& response);
  void begin_stream(uint64_t conn_id, ServiceResponse response);
  void append_frame(Connection& conn, std::string_view payload);
  void close_connection(uint64_t conn_id);
  void drain_done_jobs();
  [[nodiscard]] size_t queue_depth();
  void dispatcher_main();
  void janitor_main();
  void wake();

  DaemonOptions options_;
  std::string socket_path_;
  std::string error_;
  CompileService service_;
  int listen_fd_ = -1;      // unix
  int tcp_listen_fd_ = -1;  // optional TCP
  uint16_t tcp_port_ = 0;
  int wake_read_fd_ = -1;  // self-pipe: request_stop / dispatcher wakeups
  int wake_write_fd_ = -1;
  std::atomic<bool> stop_{false};

  std::chrono::steady_clock::time_point start_time_{};  // set by start()
  uint64_t next_conn_id_ = 1;
  std::map<uint64_t, Connection> connections_;  // reactor thread only
  DaemonStats stats_;                           // reactor thread only

  std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::deque<Job> queue_;
  size_t in_flight_ = 0;
  std::vector<DoneJob> done_;
  bool dispatcher_stop_ = false;
  std::thread dispatcher_;

  std::mutex janitor_mutex_;
  std::condition_variable janitor_cv_;
  bool janitor_stop_ = false;
  std::thread janitor_;
};

/// Client half of the daemon protocol: what `psc --client` (and
/// `--connect=HOST:PORT`) speaks. One connection per object;
/// compile()/ping()/shutdown()/stats() frame a request and block for
/// the reply. compile() sends protocol v2 and consumes the streamed
/// reply frame by frame (a monolithic CompileReply from an old daemon
/// is accepted too).
class DaemonClient {
 public:
  DaemonClient() = default;
  ~DaemonClient() { close(); }

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  /// Connect to a daemon's unix socket. False when nothing is
  /// listening -- the CLI falls back to in-process compilation.
  [[nodiscard]] bool connect(const std::string& socket_path);
  /// Connect to a daemon's TCP listener ("HOST:PORT").
  [[nodiscard]] bool connect_tcp(const std::string& host_port);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Round-trip one compile request. nullopt on connection loss, a
  /// daemon-side Error reply, or a Busy rejection (see error() and
  /// busy() -- a Busy daemon is healthy, just saturated).
  [[nodiscard]] std::optional<RemoteReply> compile(
      const ServiceRequest& request);

  /// Liveness probe: true when the daemon answered Pong.
  [[nodiscard]] bool ping();

  /// Graceful shutdown; true when the daemon acknowledged.
  bool shutdown();

  /// The daemon's stats report (text, or JSON when `json`).
  [[nodiscard]] std::optional<std::string> stats(bool json);

  [[nodiscard]] const std::string& error() const { return error_; }
  /// True when the last compile() was refused with Busy.
  [[nodiscard]] bool busy() const { return busy_; }

 private:
  [[nodiscard]] std::optional<std::string> round_trip(
      const std::string& request);

  int fd_ = -1;
  std::string error_;
  bool busy_ = false;
};

}  // namespace ps
