#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/compile_service.hpp"
#include "service/protocol.hpp"

namespace ps {

/// The per-user default daemon socket: $XDG_RUNTIME_DIR/psc-daemon.sock
/// when the runtime dir exists, /tmp/psc-daemon-<uid>.sock otherwise.
[[nodiscard]] std::string default_daemon_socket();

struct DaemonOptions {
  /// Unix-domain socket path; empty uses default_daemon_socket().
  std::string socket_path;
  ServiceOptions service;
};

/// The warm compile daemon behind `psc --daemon`: one long-lived
/// CompileService (worker pool, hyperplane/interner caches and the
/// artifact cache all stay warm across invocations) served over a
/// unix-domain socket with the length-prefixed framing protocol.
///
/// Each accepted client runs on its own thread, so a client streaming
/// a huge batch never blocks a neighbour's ping; compile requests
/// themselves serialise inside CompileService, which is what keeps
/// concurrent clients isolated (one client's units can never interleave
/// into another's batch). A malformed frame gets an Error reply and
/// closes only that client's connection; the daemon stays up.
///
/// Lifecycle: start() binds and listens (refusing to double-bind a
/// live daemon, reclaiming a stale socket file left by a crash);
/// serve() accepts until a Shutdown message or request_stop(), then
/// joins every client thread and removes the socket file.
class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind and listen on the socket. False when another daemon is live
  /// on the path or the socket cannot be created -- see error().
  [[nodiscard]] bool start();

  /// Accept-and-serve until Shutdown or request_stop(). Blocks; run on
  /// a dedicated thread when the caller needs to keep working.
  void serve();

  /// Ask the accept loop to exit (signal handlers, tests). Safe from
  /// any thread; serve() notices within its poll interval.
  void request_stop() { stop_.store(true); }

  [[nodiscard]] const std::string& socket_path() const {
    return socket_path_;
  }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] CompileService& service() { return service_; }

 private:
  void handle_client(int fd);
  /// Serve one decoded message; returns false when the connection
  /// should close (shutdown, EOF-provoking error).
  bool handle_message(int fd, const std::string& payload);

  /// One accepted connection: the serving thread plus a completion
  /// flag so the accept loop can reap finished threads as it goes (a
  /// long-lived daemon must not accumulate one joinable thread per
  /// client it ever served).
  struct ClientThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  void reap_finished_clients();

  DaemonOptions options_;
  std::string socket_path_;
  std::string error_;
  CompileService service_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::mutex clients_mutex_;
  std::vector<ClientThread> clients_;
};

/// Client half of the daemon protocol: what `psc --client` speaks. One
/// connection per object; compile()/ping()/shutdown() frame a request
/// and block for the reply.
class DaemonClient {
 public:
  DaemonClient() = default;
  ~DaemonClient() { close(); }

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  /// Connect to a daemon socket. False when nothing is listening --
  /// the CLI falls back to in-process compilation on that path.
  [[nodiscard]] bool connect(const std::string& socket_path);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Round-trip one compile request. nullopt on connection loss or a
  /// daemon-side Error reply (see error()).
  [[nodiscard]] std::optional<RemoteReply> compile(
      const ServiceRequest& request);

  /// Liveness probe: true when the daemon answered Pong.
  [[nodiscard]] bool ping();

  /// Graceful shutdown; true when the daemon acknowledged.
  bool shutdown();

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  [[nodiscard]] std::optional<std::string> round_trip(
      const std::string& request);

  int fd_ = -1;
  std::string error_;
};

}  // namespace ps
