#include "service/artifact_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "service/protocol.hpp"
#include "support/hash.hpp"
#include "support/telemetry.hpp"

namespace fs = std::filesystem;

namespace ps {

namespace {

/// Leading bytes of every artifact file; a file that does not start
/// with this is not ours (or is a torn write) and reads as a miss.
constexpr char kMagic[] = "PSART1\n";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;

/// Mirror each ArtifactCacheStats bump into the process-wide metrics
/// registry so `psc --metrics` sees cache traffic without a second
/// bookkeeping path. Zero increments stay out of the registry (and out
/// of the report).
void cache_counter(std::string_view name, int64_t n = 1) {
  if (n > 0) MetricsRegistry::global().counter(name).add(n);
}

}  // namespace

ArtifactCache::ArtifactCache(ArtifactCacheOptions options)
    : options_(std::move(options)) {}

std::string ArtifactCache::options_fingerprint(const CompileOptions& options) {
  std::ostringstream os;
  os << "merge=" << options.merge_loops
     << ";hyperplane=" << options.apply_hyperplane
     << ";exact=" << options.exact_bounds << ";c=" << options.emit_c_code
     << ";openmp=" << options.emit_openmp
     << ";windows=" << options.use_virtual_windows
     << ";solver_bound=" << options.solver.bound;
  return os.str();
}

std::string ArtifactCache::key(const BatchInput& input,
                               const CompileOptions& options) const {
  // Each variable-length field is length-prefixed before hashing, so
  // (name="a", source="bc") can never collide with ("ab", "c").
  WireWriter writer;
  writer.str(options_.version);
  writer.str(options_fingerprint(options));
  writer.str(input.name);
  writer.u8(input.is_eqn ? 1 : 0);
  writer.str(input.source);
  return sha256_hex(writer.bytes());
}

std::string ArtifactCache::path_for(const std::string& key) const {
  return options_.dir + "/" + key + ".art";
}

std::string ArtifactCache::so_path_for(const std::string& key) const {
  return options_.dir + "/" + key + ".so";
}

std::optional<std::filesystem::path> ArtifactCache::native_lookup(
    const std::string& key) {
  fs::path path = so_path_for(key);
  std::error_code ec;
  if (!fs::is_regular_file(path, ec) || ec) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.native_misses;
    cache_counter("cache.native_misses");
    return std::nullopt;
  }
  // LRU refresh, same policy as the text artifacts (best effort).
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.native_hits;
  cache_counter("cache.native_hits");
  return path;
}

std::optional<std::filesystem::path> ArtifactCache::native_publish(
    const std::string& key, const std::string& so_bytes) {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  std::string path = so_path_for(key);
  static std::atomic<uint64_t> counter{0};
  std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return std::nullopt;
    out.write(so_bytes.data(), static_cast<std::streamsize>(so_bytes.size()));
    out.flush();
    if (!out) {
      fs::remove(tmp, ec);
      return std::nullopt;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return std::nullopt;
  }
  bool over_budget = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.native_stores;
    cache_counter("cache.native_stores");
    if (dir_bytes_ >= 0) dir_bytes_ += static_cast<int64_t>(so_bytes.size());
    over_budget = options_.max_bytes > 0 &&
                  (dir_bytes_ < 0 ||
                   dir_bytes_ > static_cast<int64_t>(options_.max_bytes));
  }
  if (over_budget) evict_over_budget(path);
  return fs::path(path);
}

void ArtifactCache::native_discard(const std::string& key) {
  fs::path path = so_path_for(key);
  std::error_code ec;
  uintmax_t size = fs::file_size(path, ec);
  if (ec) size = 0;
  if (fs::remove(path, ec)) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (dir_bytes_ >= 0)
      dir_bytes_ -= std::min(dir_bytes_, static_cast<int64_t>(size));
  }
}

std::optional<std::string> ArtifactCache::read_validated(
    const std::string& key) {
  std::string path = path_for(key);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      cache_counter("cache.misses");
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  try {
    if (bytes.size() < kMagicLen ||
        bytes.compare(0, kMagicLen, kMagic, kMagicLen) != 0)
      throw WireError("bad artifact magic");
    WireReader reader(std::string_view(bytes).substr(kMagicLen));
    skip_artifact(reader);  // full structural walk, zero copies
    reader.expect_end();
    // Refresh the timestamp so eviction is least-recently-used, not
    // first-written (best effort; a failure only skews eviction order).
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    cache_counter("cache.hits");
    // In-place header strip: no second allocation of a large artifact.
    bytes.erase(0, kMagicLen);
    return std::move(bytes);
  } catch (const WireError&) {
    // Truncated or corrupt: remove the bad entry so it cannot keep
    // wasting probes, and recompile. Never serve a questionable hit.
    std::error_code ec;
    fs::remove(path, ec);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corrupt;
    ++stats_.misses;
    cache_counter("cache.corrupt");
    cache_counter("cache.misses");
    if (dir_bytes_ >= 0)
      dir_bytes_ -= std::min(dir_bytes_, static_cast<int64_t>(bytes.size()));
    return std::nullopt;
  }
}

std::optional<UnitArtifact> ArtifactCache::load(const std::string& key) {
  std::optional<std::string> payload = read_validated(key);
  if (!payload) return std::nullopt;
  // The payload passed the structural walk, which checks exactly the
  // fields the decoder reads, so this decode cannot throw.
  WireReader reader(*payload);
  UnitArtifact artifact = read_artifact(reader);
  return artifact;
}

std::optional<std::string> ArtifactCache::load_raw(const std::string& key) {
  return read_validated(key);
}

bool ArtifactCache::contains(const std::string& key) const {
  std::error_code ec;
  return fs::is_regular_file(path_for(key), ec) && !ec;
}

size_t ArtifactCache::prune_older_than(std::chrono::seconds ttl) {
  fs::file_time_type cutoff = fs::file_time_type::clock::now() - ttl;
  size_t pruned = 0;
  uintmax_t freed = 0;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(options_.dir, ec)) {
    fs::path ext = item.path().extension();
    if (ext != ".art" && ext != ".so") continue;
    std::error_code item_ec;
    fs::file_time_type mtime = item.last_write_time(item_ec);
    if (item_ec || mtime >= cutoff) continue;
    // Same pinned-.so rule as LRU eviction: never unlink machine code
    // a live NativeModule still has mapped, no matter how old.
    if (ext == ".so" && native_object_in_use(item.path())) continue;
    uintmax_t size = item.file_size(item_ec);
    if (item_ec) size = 0;
    std::error_code remove_ec;
    if (fs::remove(item.path(), remove_ec)) {
      ++pruned;
      freed += size;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.ttl_pruned += pruned;
  cache_counter("cache.ttl_pruned", static_cast<int64_t>(pruned));
  if (dir_bytes_ >= 0)
    dir_bytes_ -= std::min(dir_bytes_, static_cast<int64_t>(freed));
  return pruned;
}

bool ArtifactCache::store(const std::string& key,
                          const UnitArtifact& artifact) {
  std::error_code ec;
  fs::create_directories(options_.dir, ec);

  WireWriter writer;
  write_artifact(writer, artifact);

  // Temp file + rename: concurrent readers (other clients, another
  // daemon on the same directory) either see the old state or the
  // complete new file, never a prefix.
  std::string path = path_for(key);
  static std::atomic<uint64_t> counter{0};
  std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(kMagic, static_cast<std::streamsize>(kMagicLen));
    out.write(writer.bytes().data(),
              static_cast<std::streamsize>(writer.bytes().size()));
    out.flush();
    if (!out) {
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  bool over_budget = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.stores;
    cache_counter("cache.stores");
    if (dir_bytes_ >= 0)
      dir_bytes_ += static_cast<int64_t>(kMagicLen + writer.bytes().size());
    over_budget = options_.max_bytes > 0 &&
                  (dir_bytes_ < 0 ||
                   dir_bytes_ > static_cast<int64_t>(options_.max_bytes));
  }
  if (over_budget) evict_over_budget(path);
  return true;
}

void ArtifactCache::evict_over_budget(const std::string& keep_path) {
  struct Entry {
    fs::path path;
    uintmax_t size;
    fs::file_time_type mtime;
  };
  std::vector<Entry> entries;
  uintmax_t total = 0;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(options_.dir, ec)) {
    fs::path ext = item.path().extension();
    if (ext != ".art" && ext != ".so") continue;
    std::error_code item_ec;
    uintmax_t size = item.file_size(item_ec);
    if (item_ec) continue;
    fs::file_time_type mtime = item.last_write_time(item_ec);
    if (item_ec) continue;
    total += size;
    entries.push_back({item.path(), size, mtime});
  }
  if (total > options_.max_bytes) {
    std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                                 const Entry& b) {
      return a.mtime < b.mtime;
    });
    size_t evicted = 0;
    for (const Entry& entry : entries) {
      if (total <= options_.max_bytes) break;
      // Never evict the artifact just stored: a cache smaller than one
      // entry would otherwise thrash and spilled units would vanish.
      if (entry.path == fs::path(keep_path)) continue;
      // Never unlink a shared object a live NativeModule still has
      // dlopen-ed (the satellite fix: evicting under a running
      // wavefront must not pull its machine code's backing file).
      if (entry.path.extension() == ".so" && native_object_in_use(entry.path))
        continue;
      std::error_code remove_ec;
      if (fs::remove(entry.path, remove_ec)) {
        total -= std::min(total, entry.size);
        ++evicted;
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.evictions += evicted;
    cache_counter("cache.evictions", static_cast<int64_t>(evicted));
    dir_bytes_ = static_cast<int64_t>(total);
    return;
  }
  // Under budget after all: remember the measured total so the next
  // stores can account incrementally instead of rescanning.
  std::lock_guard<std::mutex> lock(mutex_);
  dir_bytes_ = static_cast<int64_t>(total);
}

ArtifactCacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ps
