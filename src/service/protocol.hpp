#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "service/compile_service.hpp"

namespace ps {

/// Malformed wire data (truncated frame, bad magic, overlong string).
/// Every decoder throws this instead of reading past the end; the
/// daemon answers with an error frame, the cache treats the entry as
/// corrupt and recompiles.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only little-endian encoder for the framing protocol and the
/// artifact file format (one serialiser, so a cached artifact and a
/// daemon reply cannot drift apart).
class WireWriter {
 public:
  void u8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void u64(uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void f64(double v);
  void str(std::string_view text) {
    // The length prefix is 32-bit; encoding a >4 GiB string would
    // silently wrap it into a corrupt-by-construction record that
    // round-trips as WireError forever. Fail at write time instead.
    if (text.size() > UINT32_MAX) throw WireError("string too long to encode");
    u32(static_cast<uint32_t>(text.size()));
    out_.append(text.data(), text.size());
  }
  /// Splice already-encoded wire bytes verbatim (no length prefix).
  /// The raw-reply path appends cached artifact encodings with this,
  /// skipping the decode/encode round trip.
  void raw(std::string_view bytes) { out_.append(bytes.data(), bytes.size()); }

  [[nodiscard]] const std::string& bytes() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian decoder; throws WireError on any
/// attempt to read past the payload.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  double f64();
  std::string str();
  /// Advance past one length-prefixed string without materialising it
  /// (bounds-checked like str()). The validation-only walks use this,
  /// so checking a cached artifact costs no string allocations.
  void skip_str();

  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
  /// Throw unless the whole payload was consumed (trailing garbage
  /// means the frame was not what the decoder thought it was).
  void expect_end() const;

 private:
  void need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

// -- artifact serialisation (cache files and daemon replies) ----------------

void write_artifact(WireWriter& writer, const UnitArtifact& artifact);
[[nodiscard]] UnitArtifact read_artifact(WireReader& reader);

/// Walk one serialised artifact without building a UnitArtifact: every
/// length is bounds-checked but no field is copied. Throws WireError on
/// structural corruption exactly where read_artifact would. This is the
/// cheap validation behind ArtifactCache::load_raw -- corrupt entries
/// are still never served, but a valid one is read once instead of
/// decoded and re-encoded.
void skip_artifact(WireReader& reader);

// -- compile options --------------------------------------------------------

void write_options(WireWriter& writer, const CompileOptions& options);
[[nodiscard]] CompileOptions read_options(WireReader& reader);

// -- messages ---------------------------------------------------------------

enum class MsgKind : uint8_t {
  CompileRequest = 1,  // protocol v1: replied to with one CompileReply
  CompileReply = 2,
  Ping = 3,
  Pong = 4,
  Shutdown = 5,
  ShutdownAck = 6,
  Error = 7,  // payload: one string (the daemon-side error text)
  // -- protocol v2 (streamed replies) --
  // Same request body as CompileRequest; the kind is the version bump.
  // The server answers with CompileReplyBegin, one UnitReply per unit
  // in request order, then CompileReplyEnd -- so a spilled batch's
  // reply memory is bounded by one unit on both sides of the wire.
  // v1 clients keep sending kind 1 and keep getting the monolithic
  // CompileReply.
  CompileRequestV2 = 8,
  CompileReplyBegin = 9,
  UnitReply = 10,
  CompileReplyEnd = 11,
  // Admission control: the compile queue is at its configured depth
  // and this request was refused, not queued. Payload: one string.
  // The client falls back to in-process compilation (never a hang).
  Busy = 12,
  StatsRequest = 13,  // payload: u8 json flag
  StatsReply = 14,    // payload: one string (rendered text or JSON)
};

/// One unit of a daemon reply: the artifact plus this request's
/// cache/timing metadata.
struct RemoteUnitResult {
  std::string name;
  bool cache_hit = false;
  double milliseconds = 0;
  UnitArtifact artifact;
};

struct RemoteReply {
  std::vector<RemoteUnitResult> units;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t jobs = 1;
  double wall_ms = 0;
};

[[nodiscard]] std::string encode_compile_request(const ServiceRequest& request);
/// The v2 request: byte-for-byte the v1 body under MsgKind::CompileRequestV2,
/// announcing that this client understands streamed replies.
[[nodiscard]] std::string encode_compile_request_v2(
    const ServiceRequest& request);
/// Decodes both request kinds (the body never changed across versions).
[[nodiscard]] ServiceRequest decode_compile_request(std::string_view payload);
[[nodiscard]] std::string encode_compile_reply(const RemoteReply& reply);
[[nodiscard]] RemoteReply decode_compile_reply(std::string_view payload);

/// One unit of a raw-spliced compile reply: the artifact is supplied as
/// its already-serialised write_artifact bytes (straight from the
/// artifact cache for a spilled hit) instead of a decoded UnitArtifact.
struct RawUnitReply {
  std::string name;
  bool cache_hit = false;
  double milliseconds = 0;
  std::string artifact_bytes;
};

// -- streamed replies (protocol v2) -----------------------------------------

/// Header of a streamed reply: how many UnitReply frames follow.
struct ReplyBegin {
  size_t unit_count = 0;
  size_t jobs = 1;
};

/// Trailer of a streamed reply: totals only known once every unit has
/// been served.
struct ReplyEnd {
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  double wall_ms = 0;
};

[[nodiscard]] std::string encode_reply_begin(const ReplyBegin& begin);
[[nodiscard]] ReplyBegin decode_reply_begin(std::string_view payload);
/// One streamed unit, artifact spliced in as raw write_artifact bytes
/// (straight from the cache for a spilled hit, exactly like the
/// monolithic raw reply path).
[[nodiscard]] std::string encode_unit_reply_raw(const RawUnitReply& unit);
[[nodiscard]] RemoteUnitResult decode_unit_reply(std::string_view payload);
[[nodiscard]] std::string encode_reply_end(const ReplyEnd& end);
[[nodiscard]] ReplyEnd decode_reply_end(std::string_view payload);

// -- stats ------------------------------------------------------------------

[[nodiscard]] std::string encode_stats_request(bool json);
/// Returns the json flag of a StatsRequest payload.
[[nodiscard]] bool decode_stats_request(std::string_view payload);

/// encode_compile_reply with the per-unit artifacts spliced in as raw
/// bytes -- byte-identical to encoding the decoded artifacts, minus the
/// decode. decode_compile_reply reads both alike.
[[nodiscard]] std::string encode_compile_reply_raw(
    size_t cache_hits, size_t cache_misses, size_t jobs, double wall_ms,
    const std::vector<RawUnitReply>& units);
/// Kind-only messages (Ping/Pong/Shutdown/ShutdownAck) and the
/// one-string messages (Error/Busy/StatsReply).
[[nodiscard]] std::string encode_simple(MsgKind kind,
                                        std::string_view text = {});
/// The message kind of an encoded payload (first byte).
[[nodiscard]] MsgKind peek_kind(std::string_view payload);
/// The string payload of a one-string message of `kind`
/// (Error/Busy/StatsReply).
[[nodiscard]] std::string decode_text(std::string_view payload, MsgKind kind);
/// The string payload of an Error message.
[[nodiscard]] std::string decode_error(std::string_view payload);

// -- framing ----------------------------------------------------------------

/// Frames are a 4-byte little-endian payload length followed by the
/// payload. Refuse anything bigger than this (a daemon must not be
/// OOM-able by one bogus length prefix).
inline constexpr size_t kMaxFrameBytes = size_t{1} << 30;

/// Write one frame to `fd`, retrying partial writes. False on error.
bool write_frame(int fd, std::string_view payload);

/// Read one frame from `fd`. nullopt on EOF, error, or an oversized /
/// truncated frame.
[[nodiscard]] std::optional<std::string> read_frame(int fd);

}  // namespace ps
