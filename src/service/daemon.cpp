#include "service/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace ps {

namespace {

/// Fill a sockaddr_un for `path`; false when the path does not fit
/// (sun_path is ~108 bytes).
bool make_address(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return false;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

/// True when a daemon is actually accepting on `path` (distinguishes a
/// live daemon from a stale socket file left behind by a crash).
bool socket_is_live(const std::string& path) {
  sockaddr_un addr;
  if (!make_address(path, addr)) return false;
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  bool live =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  ::close(fd);
  return live;
}

}  // namespace

std::string default_daemon_socket() {
  if (const char* runtime_dir = std::getenv("XDG_RUNTIME_DIR");
      runtime_dir != nullptr && runtime_dir[0] != '\0')
    return std::string(runtime_dir) + "/psc-daemon.sock";
  return "/tmp/psc-daemon-" + std::to_string(::getuid()) + ".sock";
}

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      socket_path_(options_.socket_path.empty() ? default_daemon_socket()
                                                : options_.socket_path),
      service_(options_.service) {}

Daemon::~Daemon() {
  request_stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(socket_path_.c_str());
  }
  std::lock_guard<std::mutex> lock(clients_mutex_);
  for (ClientThread& client : clients_)
    if (client.thread.joinable()) client.thread.join();
}

void Daemon::reap_finished_clients() {
  std::lock_guard<std::mutex> lock(clients_mutex_);
  for (size_t i = 0; i < clients_.size();) {
    if (clients_[i].done->load()) {
      clients_[i].thread.join();
      clients_[i] = std::move(clients_.back());
      clients_.pop_back();
    } else {
      ++i;
    }
  }
}

bool Daemon::start() {
  sockaddr_un addr;
  if (!make_address(socket_path_, addr)) {
    error_ = "socket path too long: " + socket_path_;
    return false;
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno == EADDRINUSE) {
      // Either a live daemon (refuse: two daemons on one socket would
      // steal each other's clients) or a stale file from a crash
      // (reclaim it). The probe-unlink-rebind sequence runs under an
      // exclusive flock on a sibling lock file, so two daemons racing
      // to reclaim the same stale path cannot both unlink-and-bind
      // (the loser would silently orphan the winner's fresh socket).
      std::string lock_path = socket_path_ + ".lock";
      int lock_fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0600);
      if (lock_fd >= 0) ::flock(lock_fd, LOCK_EX);
      bool reclaimed = false;
      if (!socket_is_live(socket_path_)) {
        ::unlink(socket_path_.c_str());
        reclaimed = ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
      }
      int bind_errno = errno;
      if (lock_fd >= 0) ::close(lock_fd);  // releases the flock
      if (!reclaimed) {
        error_ = socket_is_live(socket_path_)
                     ? "a daemon is already listening on " + socket_path_
                     : std::string("bind: ") + std::strerror(bind_errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
      }
    } else {
      error_ = std::string("bind: ") + std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  }
  if (::listen(listen_fd_, 16) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
    return false;
  }
  return true;
}

void Daemon::serve() {
  if (listen_fd_ < 0) return;
  while (!stop_.load()) {
    // Poll with a short timeout so request_stop() (and the Shutdown
    // handler, which sets the same flag) is noticed promptly without
    // busy-waiting in accept().
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    // Socket timeouts so a client that stalls mid-frame (crash between
    // the length header and the payload, or never draining a reply)
    // cannot pin its thread in read_all/write_all forever -- the drain
    // join at shutdown must always complete. Between frames the poll
    // loop handles idleness; these only fire mid-frame.
    timeval timeout{10, 0};
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    // Join whatever finished before adding the next thread, so the
    // live set tracks concurrent clients, not lifetime clients.
    reap_finished_clients();
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread thread([this, client, done] {
      handle_client(client);
      done->store(true);
    });
    std::lock_guard<std::mutex> lock(clients_mutex_);
    clients_.push_back({std::move(thread), std::move(done)});
  }
  // Drain: join every client before tearing the socket down, so a
  // shutdown acknowledges in-flight compiles instead of severing them.
  std::vector<ClientThread> clients;
  {
    std::lock_guard<std::mutex> lock(clients_mutex_);
    clients.swap(clients_);
  }
  for (ClientThread& client : clients)
    if (client.thread.joinable()) client.thread.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(socket_path_.c_str());
}

void Daemon::handle_client(int fd) {
  while (!stop_.load()) {
    // Wait for readability with a timeout instead of blocking in
    // read_frame: an idle connection must notice shutdown too, or it
    // would pin serve()'s final join forever.
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    std::optional<std::string> payload = read_frame(fd);
    if (!payload) break;  // EOF or a torn frame: the client is gone
    if (!handle_message(fd, *payload)) break;
  }
  ::close(fd);
}

bool Daemon::handle_message(int fd, const std::string& payload) {
  try {
    switch (peek_kind(payload)) {
      case MsgKind::Ping:
        return write_frame(fd, encode_simple(MsgKind::Pong));
      case MsgKind::Shutdown:
        // Acknowledge first, then stop the accept loop; other clients'
        // in-flight requests still drain in serve().
        write_frame(fd, encode_simple(MsgKind::ShutdownAck));
        stop_.store(true);
        return false;
      case MsgKind::CompileRequest: {
        ServiceRequest request = decode_compile_request(payload);
        // A client built from a different compiler version must not be
        // served: this daemon's pipeline would produce that build's
        // output, not the client's, silently breaking the byte-identity
        // contract. The client falls back to in-process compilation.
        if (request.client_version != service_.options().version) {
          return write_frame(
              fd, encode_simple(MsgKind::Error,
                                "version mismatch: daemon is " +
                                    service_.options().version +
                                    ", client is " + request.client_version));
        }
        ServiceResponse response = service_.compile(request);
        std::vector<RawUnitReply> units;
        units.reserve(response.units.size());
        for (const ServiceUnit& unit : response.units) {
          RawUnitReply raw;
          raw.name = unit.name;
          raw.cache_hit = unit.cache_hit;
          raw.milliseconds = unit.milliseconds;
          // The wire always carries the full artifact, as raw
          // serialised bytes: in-memory results encode once, and a
          // spilled cache hit splices the validated cache-file payload
          // straight into the frame -- the old path decoded it from
          // disk here only to re-encode it below.
          std::optional<std::string> bytes = service_.artifact_bytes(unit);
          if (!bytes) {
            return write_frame(
                fd, encode_simple(MsgKind::Error,
                                  "artifact for '" + unit.name +
                                      "' evicted before reply"));
          }
          raw.artifact_bytes = std::move(*bytes);
          units.push_back(std::move(raw));
        }
        return write_frame(
            fd, encode_compile_reply_raw(response.cache_hits,
                                         response.cache_misses, response.jobs,
                                         response.wall_ms, units));
      }
      default:
        return write_frame(
            fd, encode_simple(MsgKind::Error, "unexpected message kind"));
    }
  } catch (const WireError& error) {
    // Malformed frame: answer with the error and drop this client;
    // everyone else is unaffected.
    write_frame(fd, encode_simple(MsgKind::Error, error.what()));
    return false;
  } catch (const std::exception& error) {
    write_frame(fd, encode_simple(MsgKind::Error,
                                  std::string("internal: ") + error.what()));
    return true;  // the service survived; keep the connection
  }
}

// -- client -----------------------------------------------------------------

bool DaemonClient::connect(const std::string& socket_path) {
  close();
  sockaddr_un addr;
  if (!make_address(socket_path, addr)) {
    error_ = "socket path too long: " + socket_path;
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = std::string("connect: ") + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

void DaemonClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<std::string> DaemonClient::round_trip(
    const std::string& request) {
  if (fd_ < 0) {
    error_ = "not connected";
    return std::nullopt;
  }
  if (!write_frame(fd_, request)) {
    error_ = "connection lost while sending";
    close();
    return std::nullopt;
  }
  std::optional<std::string> reply = read_frame(fd_);
  if (!reply) {
    error_ = "connection lost while waiting for reply";
    close();
    return std::nullopt;
  }
  return reply;
}

std::optional<RemoteReply> DaemonClient::compile(
    const ServiceRequest& request) {
  std::optional<std::string> reply =
      round_trip(encode_compile_request(request));
  if (!reply) return std::nullopt;
  try {
    if (peek_kind(*reply) == MsgKind::Error) {
      error_ = "daemon error: " + decode_error(*reply);
      return std::nullopt;
    }
    return decode_compile_reply(*reply);
  } catch (const WireError& error) {
    error_ = std::string("bad reply: ") + error.what();
    return std::nullopt;
  }
}

bool DaemonClient::ping() {
  std::optional<std::string> reply = round_trip(encode_simple(MsgKind::Ping));
  if (!reply) return false;
  try {
    return peek_kind(*reply) == MsgKind::Pong;
  } catch (const WireError&) {
    return false;
  }
}

bool DaemonClient::shutdown() {
  std::optional<std::string> reply =
      round_trip(encode_simple(MsgKind::Shutdown));
  if (!reply) return false;
  try {
    return peek_kind(*reply) == MsgKind::ShutdownAck;
  } catch (const WireError&) {
    return false;
  }
}

}  // namespace ps
